package fmsa_test

// One benchmark per table and figure of the paper's evaluation (§V). Each
// benchmark drives the same harness as cmd/fmsa-bench, on a subsampled
// suite so a full -bench=. run stays tractable; run
// `go run ./cmd/fmsa-bench -exp all` for the full-suite regeneration.
//
// Custom metrics attached to the benchmarks report the experiment's
// headline numbers (mean reduction %, overhead ×, CDF coverage %) so the
// paper-vs-measured comparison is visible directly in benchmark output.

import (
	"testing"

	"fmsa"

	"fmsa/internal/experiments"
	"fmsa/internal/stats"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// benchSpec subsamples the SPEC-like suite (every 4th profile) to keep
// benchmark iterations to seconds.
func benchSpec() []workload.Profile {
	var out []workload.Profile
	for i, p := range workload.SPECLike() {
		if i%4 == 0 {
			out = append(out, p)
		}
	}
	return out
}

// benchMiBench subsamples the MiBench-like suite, always keeping rijndael
// (its twin pair is the Fig. 11 headline).
func benchMiBench() []workload.Profile {
	var out []workload.Profile
	for i, p := range workload.MiBenchLike() {
		if i%4 == 0 || p.Name == "rijndael" {
			out = append(out, p)
		}
	}
	return out
}

// BenchmarkFig8RankCDF regenerates the Fig. 8 rank-position CDF at t=10 and
// reports coverage at ranks 1 and 5 (paper: ~89% and ≥98%).
func BenchmarkFig8RankCDF(b *testing.B) {
	var cdf []float64
	for i := 0; i < b.N; i++ {
		cdf = experiments.RankCDF(benchSpec(), tti.X86{}, 10, 10)
	}
	if len(cdf) == 10 {
		b.ReportMetric(cdf[0], "top1-%")
		b.ReportMetric(cdf[4], "top5-%")
	}
}

// fig10Bench runs the Fig. 10 code-size experiment on one target and
// reports the per-technique mean reductions.
func fig10Bench(b *testing.B, target tti.Target) {
	techs := experiments.Fig10Techniques()
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CodeSize(benchSpec(), target, techs)
	}
	b.ReportMetric(experiments.MeanReduction(rows, "Identical"), "identical-%")
	b.ReportMetric(experiments.MeanReduction(rows, "SOA"), "soa-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[t=1]"), "fmsa1-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[t=10]"), "fmsa10-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[oracle]"), "oracle-%")
}

// BenchmarkFig10CodeSizeX86 regenerates Fig. 10 (top, Intel).
func BenchmarkFig10CodeSizeX86(b *testing.B) { fig10Bench(b, tti.X86{}) }

// BenchmarkFig10CodeSizeThumb regenerates Fig. 10 (bottom, ARM Thumb).
func BenchmarkFig10CodeSizeThumb(b *testing.B) { fig10Bench(b, tti.Thumb{}) }

// BenchmarkTable1MergeOps regenerates Table I's merge-operation counts and
// reports the total merges FMSA[t=10] performs versus the baselines.
func BenchmarkTable1MergeOps(b *testing.B) {
	techs := experiments.Fig10Techniques()
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CodeSize(benchSpec(), tti.X86{}, techs)
	}
	total := func(name string) (n int) {
		for _, r := range rows {
			n += r.MergeOps[name]
		}
		return
	}
	b.ReportMetric(float64(total("Identical")), "identical-merges")
	b.ReportMetric(float64(total("SOA")), "soa-merges")
	b.ReportMetric(float64(total("FMSA[t=10]")), "fmsa10-merges")
}

// BenchmarkFig11MiBench regenerates Fig. 11: FMSA is the only technique
// with meaningful reductions on the embedded suite; rijndael dominates.
func BenchmarkFig11MiBench(b *testing.B) {
	techs := experiments.Fig10Techniques()
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CodeSize(benchMiBench(), tti.X86{}, techs)
	}
	b.ReportMetric(experiments.MeanReduction(rows, "Identical"), "identical-%")
	b.ReportMetric(experiments.MeanReduction(rows, "SOA"), "soa-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[t=1]"), "fmsa1-%")
	for _, r := range rows {
		if r.Bench == "rijndael" {
			b.ReportMetric(r.Reduction["FMSA[t=1]"], "rijndael-%")
		}
	}
}

// BenchmarkTable2MergeOps regenerates Table II's merge counts.
func BenchmarkTable2MergeOps(b *testing.B) {
	techs := []experiments.Technique{
		experiments.Identical(), experiments.SOA(), experiments.FMSA(1), experiments.FMSA(10),
	}
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CodeSize(benchMiBench(), tti.X86{}, techs)
	}
	total := 0
	for _, r := range rows {
		total += r.MergeOps["FMSA[t=10]"]
	}
	b.ReportMetric(float64(total), "fmsa10-merges")
}

// BenchmarkFig12CompileTime regenerates the compile-time overhead
// comparison and reports mean normalized times (paper: FMSA[t=1] ≈ 1.15×,
// t=10 ≈ 1.74×).
func BenchmarkFig12CompileTime(b *testing.B) {
	techs := []experiments.Technique{
		experiments.Identical(), experiments.SOA(),
		experiments.FMSA(1), experiments.FMSA(10),
	}
	var rows []experiments.TimeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CompileTime(benchSpec(), tti.X86{}, techs)
	}
	mean := func(name string) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Normalized[name])
		}
		return stats.Mean(xs)
	}
	b.ReportMetric(mean("FMSA[t=1]"), "fmsa1-x")
	b.ReportMetric(mean("FMSA[t=10]"), "fmsa10-x")
	b.ReportMetric(mean("SOA"), "soa-x")
}

// BenchmarkFig13Breakdown regenerates the per-phase breakdown at t=1
// (paper: alignment dominates, then ranking, then code generation).
func BenchmarkFig13Breakdown(b *testing.B) {
	var rows []experiments.BreakdownRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Breakdown(benchSpec(), tti.X86{}, 1)
	}
	agg := map[string]float64{}
	for _, r := range rows {
		for ph, v := range r.Percent {
			agg[ph] += v / float64(len(rows))
		}
	}
	b.ReportMetric(agg["Alignment"], "align-%")
	b.ReportMetric(agg["Ranking"], "rank-%")
	b.ReportMetric(agg["Code-Gen"], "codegen-%")
}

// BenchmarkFig14Runtime regenerates the runtime-overhead experiment
// (paper: ≈1.02–1.03× mean, statistically insignificant for most
// benchmarks).
func BenchmarkFig14Runtime(b *testing.B) {
	techs := []experiments.Technique{experiments.FMSA(1), experiments.FMSA(10)}
	var rows []experiments.RuntimeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Runtime(benchSpec(), tti.X86{}, techs)
		if err != nil {
			b.Fatal(err)
		}
	}
	mean := func(name string) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Normalized[name])
		}
		return stats.Mean(xs)
	}
	b.ReportMetric(mean("FMSA[t=1]"), "fmsa1-x")
	b.ReportMetric(mean("FMSA[t=10]"), "fmsa10-x")
}

// BenchmarkHotExclusion regenerates the §V-D milc experiment: merging only
// cold functions trades size reduction for runtime neutrality.
func BenchmarkHotExclusion(b *testing.B) {
	var res experiments.HotExclusionResult
	for i := 0; i < b.N; i++ {
		var err error
		// 482.sphinx3 at t=1 shows the paper's §V-D effect most clearly.
		res, err = experiments.HotExclusion(workload.SPECLike()[17], tti.X86{}, 1, 0.1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ReductionAll, "all-reduction-%")
	b.ReportMetric(res.OverheadAll, "all-runtime-x")
	b.ReportMetric(res.ReductionCold, "cold-reduction-%")
	b.ReportMetric(res.OverheadCold, "cold-runtime-x")
}

// BenchmarkAblations regenerates the design-choice ablations: parameter
// reuse (§III-E's "up to 7%"), alignment algorithm and linearization order.
func BenchmarkAblations(b *testing.B) {
	techs := experiments.AblationTechniques()
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		rows = experiments.CodeSize(benchSpec(), tti.X86{}, techs)
	}
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[t=1]"), "default-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[no-param-reuse]"), "noreuse-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[hirschberg]"), "hirschberg-%")
	b.ReportMetric(experiments.MeanReduction(rows, "FMSA[order=dfs]"), "dfs-%")
}

// BenchmarkMergePair measures one FMSA merge of a realistic pair, the unit
// of work Figs. 12/13 aggregate.
func BenchmarkMergePair(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := workloadPairModule(int64(i%16) + 1)
		f1 := m.FuncByName("orig")
		f2 := m.FuncByName("variant")
		b.StartTimer()
		res, err := fmsa.Merge(f1, f2)
		if err != nil {
			b.Fatal(err)
		}
		res.Discard()
	}
}

// BenchmarkOptimizeModule measures a whole-module FMSA run on a mid-size
// synthetic benchmark.
func BenchmarkOptimizeModule(b *testing.B) {
	p := workload.Profile{
		Name: "bench", NumFuncs: 40, AvgSize: 30, MaxSize: 120,
		Identical: 0.1, ConstVar: 0.05, TypeVar: 0.1, CFGVar: 0.08, Partial: 0.08,
		InternalFrac: 0.7, Seed: 111,
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := workload.Build(p)
		b.StartTimer()
		if _, err := fmsa.Optimize(m, fmsa.Options{Threshold: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
