// Libquantum: merge the paper's Fig. 2 pair — quantum_cond_phase and
// quantum_cond_phase_inv differ in an extra early-return basic block and a
// negated constant. The state of the art requires isomorphic CFGs and
// cannot merge them; FMSA aligns the shared loop and guards the extra block
// behind the function identifier.
package main

import (
	"fmt"
	"log"

	"fmsa"

	"fmsa/internal/baseline"
	"fmsa/internal/interp"
	"fmsa/internal/tti"
)

const src = `
declare i1 @quantum_objcode_put(i32, i32, i32)
declare void @quantum_decohere({i64, i64*, f64*}*)

define void @quantum_cond_phase_inv(i32 %control, i32 %target, {i64, i64*, f64*}* %reg) {
entry:
  %cmt = sub i32 %control, %target
  %shamt = shl i32 1, %cmt
  %shf = sitofp i32 %shamt to f64
  %z = fdiv f64 -3.141592653589793, %shf
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %szp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 0
  %sz = load i64, i64* %szp
  %c = icmp slt i64 %iv, %sz
  br i1 %c, label %body, label %done
body:
  %stp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 1
  %states = load i64*, i64** %stp
  %sp = getelementptr i64, i64* %states, i64 %iv
  %state = load i64, i64* %sp
  %cbit = zext i32 %control to i64
  %cmask = shl i64 1, %cbit
  %cand = and i64 %state, %cmask
  %ctest = icmp ne i64 %cand, 0
  br i1 %ctest, label %checktgt, label %next
checktgt:
  %tbit = zext i32 %target to i64
  %tmask = shl i64 1, %tbit
  %tand = and i64 %state, %tmask
  %ttest = icmp ne i64 %tand, 0
  br i1 %ttest, label %apply, label %next
apply:
  %ampp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 2
  %amps = load f64*, f64** %ampp
  %ap = getelementptr f64, f64* %amps, i64 %iv
  %amp = load f64, f64* %ap
  %amp2 = fmul f64 %amp, %z
  store f64 %amp2, f64* %ap
  br label %next
next:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  call void @quantum_decohere({i64, i64*, f64*}* %reg)
  ret void
}

define void @quantum_cond_phase(i32 %control, i32 %target, {i64, i64*, f64*}* %reg) {
entry:
  %obj = call i1 @quantum_objcode_put(i32 7, i32 %control, i32 %target)
  br i1 %obj, label %earlyret, label %cont
earlyret:
  ret void
cont:
  %cmt = sub i32 %control, %target
  %shamt = shl i32 1, %cmt
  %shf = sitofp i32 %shamt to f64
  %z = fdiv f64 3.141592653589793, %shf
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %szp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 0
  %sz = load i64, i64* %szp
  %c = icmp slt i64 %iv, %sz
  br i1 %c, label %body, label %done
body:
  %stp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 1
  %states = load i64*, i64** %stp
  %sp = getelementptr i64, i64* %states, i64 %iv
  %state = load i64, i64* %sp
  %cbit = zext i32 %control to i64
  %cmask = shl i64 1, %cbit
  %cand = and i64 %state, %cmask
  %ctest = icmp ne i64 %cand, 0
  br i1 %ctest, label %checktgt, label %next
checktgt:
  %tbit = zext i32 %target to i64
  %tmask = shl i64 1, %tbit
  %tand = and i64 %state, %tmask
  %ttest = icmp ne i64 %tand, 0
  br i1 %ttest, label %apply, label %next
apply:
  %ampp = getelementptr {i64, i64*, f64*}, {i64, i64*, f64*}* %reg, i64 0, i32 2
  %amps = load f64*, f64** %ampp
  %ap = getelementptr f64, f64* %amps, i64 %iv
  %amp = load f64, f64* %ap
  %amp2 = fmul f64 %amp, %z
  store f64 %amp2, f64* %ap
  br label %next
next:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  call void @quantum_decohere({i64, i64*, f64*}* %reg)
  ret void
}
`

func main() {
	mod, err := fmsa.ParseModule("libquantum", src)
	check(err)
	check(fmsa.Verify(mod))

	inv := mod.FuncByName("quantum_cond_phase_inv")
	fwd := mod.FuncByName("quantum_cond_phase")

	// The state of the art cannot even consider this pair.
	fmt.Printf("SOA eligible? %v (different CFGs — Fig. 2)\n", baseline.SOAEligible(inv, fwd))

	res, err := fmsa.Merge(inv, fwd)
	check(err)
	st := res.Stats
	fmt.Printf("aligned %d+%d entries: %d matched, %d divergent, %d selects\n",
		st.Len1, st.Len2, st.MatchedColumns, st.GapColumns, st.Selects)
	fmt.Printf("profit: x86-64 %+d bytes, thumb %+d bytes\n\n",
		res.Profit(tti.X86{}), res.Profit(tti.Thumb{}))

	res.Commit()
	check(fmsa.Verify(mod))
	fmt.Println(fmsa.FormatModule(mod))

	// Exercise the merged code through both original entry points.
	mc := fmsa.NewMachine(mod)
	decoheres := 0
	mc.Register("quantum_objcode_put", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, nil
	})
	mc.Register("quantum_decohere", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		decoheres++
		return 0, nil
	})

	reg := buildReg(mc, []uint64{0b1010, 0b0010})
	_, err = mc.Run("quantum_cond_phase", 3, 1, reg)
	check(err)
	_, err = mc.Run("quantum_cond_phase_inv", 3, 1, reg)
	check(err)
	fmt.Printf("amplitude[0] after fwd+inv: %v (want -(pi/4)^2 = -0.61685...)\n", readAmp(mc, reg, 0))
	fmt.Printf("decohere calls: %d (want 2)\n", decoheres)
}

// buildReg allocates a quantum register {size, states*, amps*} with unit
// amplitudes.
func buildReg(mc *fmsa.Machine, states []uint64) uint64 {
	n := uint64(len(states))
	reg := alloc(mc, 24)
	st := alloc(mc, 8*n)
	amps := alloc(mc, 8*n)
	w64(mc, reg, n)
	w64(mc, reg+8, st)
	w64(mc, reg+16, amps)
	for i, s := range states {
		w64(mc, st+uint64(8*i), s)
		w64(mc, amps+uint64(8*i), interp.F64(1.0))
	}
	return reg
}

func alloc(mc *fmsa.Machine, n uint64) uint64 {
	a, err := mc.Alloc(n)
	check(err)
	return a
}

func w64(mc *fmsa.Machine, addr, v uint64) {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	check(mc.WriteMem(addr, b))
}

func readAmp(mc *fmsa.Machine, reg uint64, i int) float64 {
	b, err := mc.ReadMem(reg+16, 8)
	check(err)
	var amps uint64
	for k := 7; k >= 0; k-- {
		amps = amps<<8 | uint64(b[k])
	}
	b, err = mc.ReadMem(amps+uint64(8*i), 8)
	check(err)
	var v uint64
	for k := 7; k >= 0; k-- {
		v = v<<8 | uint64(b[k])
	}
	return interp.ToF64(v)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
