// Exploration: run the whole-module optimization pipeline (Fig. 7) on a
// synthetic benchmark, comparing all three techniques, then demonstrate the
// profile-guided variant that keeps hot functions out of the merge set
// (§V-D).
package main

import (
	"fmt"
	"log"

	"fmsa"

	"fmsa/internal/profile"
	"fmsa/internal/workload"
)

func main() {
	p := workload.Profile{
		Name: "example-suite", NumFuncs: 60, AvgSize: 35, MaxSize: 150,
		Identical: 0.08, ConstVar: 0.05, TypeVar: 0.1, CFGVar: 0.08, Partial: 0.08,
		InternalFrac: 0.75, Seed: 4242,
	}

	fmt.Println("technique      merges  removed  size before  size after  reduction")
	for _, tech := range []fmsa.Technique{
		fmsa.TechniqueIdentical, fmsa.TechniqueSOA, fmsa.TechniqueFMSA,
	} {
		m := workload.Build(p)
		rep, err := fmsa.Optimize(m, fmsa.Options{Technique: tech, Threshold: 10})
		check(err)
		check(fmsa.Verify(m))
		fmt.Printf("%-12s %7d %8d %12d %11d %9.2f%%\n",
			tech, rep.MergeOps, rep.FullyRemoved, rep.SizeBefore, rep.SizeAfter, rep.Reduction())
	}

	// Profile-guided merging: collect hotness from an interpreter run of
	// @main, then exclude the hottest 10% of functions.
	m := workload.Build(p)
	check(profile.Collect(m, "main", workload.RegisterIntrinsics))
	cutoff := profile.HotThreshold(m, 0.10)
	rep, err := fmsa.Optimize(m, fmsa.Options{
		Technique:  fmsa.TechniqueFMSA,
		Threshold:  10,
		MaxHotness: cutoff,
	})
	check(err)
	check(fmsa.Verify(m))
	fmt.Printf("\nprofile-guided FMSA (hotness cutoff %d): %d merges, %.2f%% reduction\n",
		cutoff, rep.MergeOps, rep.Reduction())

	// Rank positions of the committed merges (the Fig. 8 observation:
	// almost everything merges with the top-ranked candidate).
	top1 := 0
	for _, r := range rep.RankPositions {
		if r == 1 {
			top1++
		}
	}
	if n := len(rep.RankPositions); n > 0 {
		fmt.Printf("top-ranked candidate covered %d/%d merges (%.0f%%)\n",
			top1, n, 100*float64(top1)/float64(n))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
