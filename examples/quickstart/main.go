// Quickstart: merge the paper's Fig. 1 pair — two sphinx3 list-prepend
// functions that differ only in payload type (float32 vs float64). No
// existing technique can merge them (different signatures); FMSA can.
//
// The program parses the pair from textual IR, merges it, prints the merged
// function, shows the cost-model verdict on both targets, and demonstrates
// that the committed module still computes the same results.
package main

import (
	"fmt"
	"log"

	"fmsa"

	"fmsa/internal/interp"
	"fmsa/internal/tti"
)

const src = `
declare i8* @mymalloc(i64)

define internal i8* @glist_add_float32(i8* %g, f32 %val) {
entry:
  %mem = call i8* @mymalloc(i64 16)
  %data = bitcast i8* %mem to f32*
  store f32 %val, f32* %data
  %nextraw = getelementptr i8, i8* %mem, i64 8
  %next = bitcast i8* %nextraw to i8**
  store i8* %g, i8** %next
  ret i8* %mem
}

define internal i8* @glist_add_float64(i8* %g, f64 %val) {
entry:
  %mem = call i8* @mymalloc(i64 16)
  %data = bitcast i8* %mem to f64*
  store f64 %val, f64* %data
  %nextraw = getelementptr i8, i8* %mem, i64 8
  %next = bitcast i8* %nextraw to i8**
  store i8* %g, i8** %next
  ret i8* %mem
}

define i8* @build_list32(f32 %a, f32 %b) {
entry:
  %n1 = call i8* @glist_add_float32(i8* null, f32 %a)
  %n2 = call i8* @glist_add_float32(i8* %n1, f32 %b)
  ret i8* %n2
}

define i8* @build_list64(f64 %a, f64 %b) {
entry:
  %n1 = call i8* @glist_add_float64(i8* null, f64 %a)
  %n2 = call i8* @glist_add_float64(i8* %n1, f64 %b)
  ret i8* %n2
}
`

func main() {
	mod, err := fmsa.ParseModule("sphinx", src)
	check(err)
	check(fmsa.Verify(mod))

	f32fn := mod.FuncByName("glist_add_float32")
	f64fn := mod.FuncByName("glist_add_float64")

	res, err := fmsa.Merge(f32fn, f64fn)
	check(err)

	st := res.Stats
	fmt.Printf("linearized: %d + %d entries\n", st.Len1, st.Len2)
	fmt.Printf("aligned:    %d matched columns, %d divergent\n", st.MatchedColumns, st.GapColumns)
	fmt.Printf("guards:     func_id=%v, selects=%d, dispatch blocks=%d\n\n",
		st.HasFuncID, st.Selects, st.DispatchBlocks)

	for _, tgt := range tti.Targets() {
		fmt.Printf("profit on %-7s %+d bytes\n", tgt.Name()+":", res.Profit(tgt))
	}

	res.Commit()
	check(fmsa.Verify(mod))

	fmt.Println("\n--- merged module ---")
	fmt.Println(fmsa.FormatModule(mod))

	// The merged code still builds the same lists.
	mc := fmsa.NewMachine(mod)
	head, err := mc.Run("build_list64", interp.F64(1.25), interp.F64(2.5))
	check(err)
	payload, err := mc.ReadMem(head, 8)
	check(err)
	var bits uint64
	for i := 7; i >= 0; i-- {
		bits = bits<<8 | uint64(payload[i])
	}
	fmt.Printf("list head payload after merge: %v (want 2.5)\n", interp.ToF64(bits))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
