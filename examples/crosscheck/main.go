// Crosscheck: differential testing of the merger. For a stream of random
// clone pairs (type variants, CFG variants, partial variants), merge and
// commit, then execute original and optimized modules on the same inputs
// and compare results bit for bit. Any divergence is a merger bug.
package main

import (
	"fmt"
	"log"

	"fmsa"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func main() {
	const trials = 40
	checked, merged := 0, 0
	for seed := int64(1); seed <= trials; seed++ {
		base := workload.FuncSpec{
			Name: "orig", Seed: seed * 1009, Scalar: ir.F32(),
			NumParams: int(seed%4) + 1, Regions: int(seed%5) + 1,
			OpsPerBlock: int(seed%7) + 3, Internal: false,
		}
		variant := base
		variant.Name = "variant"
		switch seed % 4 {
		case 0:
			variant.Scalar = ir.F64() // Fig. 1 mutation
		case 1:
			variant.Guard = true // Fig. 2 mutation
		case 2:
			variant.ConstSalt += 7
			variant.DropMod = 9 // partial-similarity mutation
		case 3:
			variant.ReorderParams = true
		}

		build := func() *fmsa.Module {
			m := ir.NewModule("cross")
			workload.Generate(m, base)
			workload.Generate(m, variant)
			return m
		}

		// Reference outputs from the unmerged module.
		ref := build()
		refOut := runBoth(ref)

		// Merge and re-run.
		opt := build()
		res, err := fmsa.Merge(opt.FuncByName("orig"), opt.FuncByName("variant"))
		if err != nil {
			log.Fatalf("seed %d: merge failed: %v", seed, err)
		}
		res.Commit()
		if err := fmsa.Verify(opt); err != nil {
			log.Fatalf("seed %d: merged module invalid: %v", seed, err)
		}
		merged++
		optOut := runBoth(opt)

		if refOut != optOut {
			log.Fatalf("seed %d: DIVERGENCE: original %v, merged %v", seed, refOut, optOut)
		}
		checked++
	}
	fmt.Printf("crosschecked %d/%d merged pairs: all outputs identical\n", checked, merged)
}

// runBoth invokes both functions on a grid of inputs and folds the results.
func runBoth(m *fmsa.Module) [2]uint64 {
	mc := fmsa.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	var out [2]uint64
	for i, name := range []string{"orig", "variant"} {
		f := m.FuncByName(name)
		for trial := uint64(0); trial < 4; trial++ {
			args := make([]uint64, len(f.Params))
			for k, pt := range f.Sig().Fields {
				switch {
				case pt == ir.PointerTo(ir.I64()):
					buf, err := mc.Alloc(64 * 8)
					check(err)
					args[k] = buf
				case pt.IsFloat():
					args[k] = interp.F64(float64(trial) * 1.5)
					if pt == ir.F32() {
						args[k] = uint64(interp.F32(float32(trial) * 1.5))
					}
				default:
					args[k] = trial * 37
				}
			}
			v, err := mc.CallFunc(f, args)
			check(err)
			out[i] = out[i]*1099511628211 + v
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
