module fmsa

go 1.22
