package fmsa_test

import (
	"strings"
	"testing"

	"fmsa"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// workloadPairModule builds a module holding a template function ("orig")
// and a type-variant clone ("variant"), used by facade tests and benches.
func workloadPairModule(seed int64) *fmsa.Module {
	m := ir.NewModule("pair")
	base := workload.FuncSpec{
		Name: "orig", Seed: seed * 7121, Scalar: ir.F32(),
		NumParams: 3, Regions: 4, OpsPerBlock: 8,
	}
	workload.Generate(m, base)
	base.Name = "variant"
	base.Scalar = ir.F64()
	workload.Generate(m, base)
	return m
}

const facadeSrc = `
define internal i64 @double_it(i64 %x) {
entry:
  %r = mul i64 %x, 2
  ret i64 %r
}

define internal i64 @triple_it(i64 %x) {
entry:
  %r = mul i64 %x, 3
  ret i64 %r
}

define i64 @main(i64 %x) {
entry:
  %a = call i64 @double_it(i64 %x)
  %b = call i64 @triple_it(i64 %a)
  ret i64 %b
}
`

func TestFacadeParseFormatRoundTrip(t *testing.T) {
	m, err := fmsa.ParseModule("facade", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := fmsa.Verify(m); err != nil {
		t.Fatal(err)
	}
	text := fmsa.FormatModule(m)
	m2, err := fmsa.ParseModule("facade", text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if fmsa.FormatModule(m2) != text {
		t.Error("facade round trip unstable")
	}
}

func TestFacadeMergeAndRun(t *testing.T) {
	m, err := fmsa.ParseModule("facade", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fmsa.Merge(m.FuncByName("double_it"), m.FuncByName("triple_it"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Selects == 0 {
		t.Error("expected a select for the differing multiplier")
	}
	res.Commit()
	if err := fmsa.Verify(m); err != nil {
		t.Fatal(err)
	}
	mc := fmsa.NewMachine(m)
	got, err := mc.Run("main", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("main(5) = %d, want 30", got)
	}
}

func TestFacadeOptimizeTechniques(t *testing.T) {
	for _, tech := range []fmsa.Technique{
		fmsa.TechniqueIdentical, fmsa.TechniqueSOA, fmsa.TechniqueFMSA,
	} {
		m, err := fmsa.ParseModule("facade", facadeSrc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fmsa.Optimize(m, fmsa.Options{Technique: tech, Threshold: 5})
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if err := fmsa.Verify(m); err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		mc := fmsa.NewMachine(m)
		got, err := mc.Run("main", 5)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if got != 30 {
			t.Errorf("%s: main(5) = %d, want 30", tech, got)
		}
		_ = rep
	}
}

func TestFacadeOptimizeRejectsBadInputs(t *testing.T) {
	m, _ := fmsa.ParseModule("f", facadeSrc)
	if _, err := fmsa.Optimize(m, fmsa.Options{Technique: "bogus"}); err == nil {
		t.Error("bogus technique must error")
	}
	if _, err := fmsa.Optimize(m, fmsa.Options{Target: "riscv"}); err == nil {
		t.Error("bogus target must error")
	}
	if _, err := fmsa.ModuleSize(m, "riscv"); err == nil {
		t.Error("bogus target must error in ModuleSize")
	}
}

func TestFacadeModuleSize(t *testing.T) {
	m, _ := fmsa.ParseModule("f", facadeSrc)
	x86, err := fmsa.ModuleSize(m, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	thumb, err := fmsa.ModuleSize(m, "thumb")
	if err != nil {
		t.Fatal(err)
	}
	if x86 <= 0 || thumb <= 0 {
		t.Error("sizes must be positive")
	}
	def, err := fmsa.ModuleSize(m, "")
	if err != nil || def != x86 {
		t.Error("default target must be x86-64")
	}
}

func TestFacadeDemotePhis(t *testing.T) {
	src := `
define i32 @p(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %j
b:
  br label %j
j:
  %v = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %v
}
`
	m, err := fmsa.ParseModule("demote", src)
	if err != nil {
		t.Fatal(err)
	}
	fmsa.DemotePhis(m)
	if strings.Contains(fmsa.FormatModule(m), "phi") {
		t.Error("phi survived DemotePhis")
	}
	if err := fmsa.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMergeWorkloadPair(t *testing.T) {
	m := workloadPairModule(3)
	res, err := fmsa.Merge(m.FuncByName("orig"), m.FuncByName("variant"))
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	if err := fmsa.Verify(m); err != nil {
		t.Fatal(err)
	}
}
