// Command fmsa-serve runs the warm merge-session daemon: clients open
// sessions, stream fmir modules over the frame protocol and get merge
// reports back, with repeat submissions of a mostly-unchanged corpus paying
// delta cost instead of a cold exploration (see internal/serve and
// DESIGN.md §13).
//
//	fmsa-serve -addr 127.0.0.1:7333 -threshold 10 -ranking lsh
//
// Admission is bounded: beyond -maxinflight concurrently admitted submits,
// clients receive Busy (429-style) responses and retry. SIGINT/SIGTERM
// drain gracefully — admitted work finishes and its results are delivered
// before the process exits. -pprof exposes net/http/pprof on a separate
// listener for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/serve"
	"fmsa/internal/simdb"
	"fmsa/internal/tti"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7333", "listen address")
		threshold   = flag.Int("threshold", 1, "default exploration threshold (t); sessions may override")
		target      = flag.String("target", "x86-64", "cost-model target: x86-64 or thumb")
		workers     = flag.Int("workers", 0, "worker goroutines per merge (0 = all cores; results are identical for any value)")
		ranking     = flag.String("ranking", "exact", "default candidate ranking: exact or lsh; sessions may override")
		verifyLvl   = flag.String("verify", "full", "IR verification level inside exploration: off, fast or full")
		maxInFlight = flag.Int("maxinflight", serve.DefaultMaxInFlight, "admitted-but-unfinished submits across all sessions; beyond it clients get Busy")
		maxPayload  = flag.Int("maxpayload", 0, "largest accepted frame payload in bytes (0 = default)")
		summaries   = flag.Bool("summaries", false, "track per-session function summaries (cross-TU planning input)")
		dbPath      = flag.String("db", "", "persistent similarity database segment shared by all sessions and restarts (empty = off)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		drainWait   = flag.Duration("drain", time.Minute, "graceful-drain budget on SIGINT/SIGTERM before connections are severed")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: fmsa-serve [flags]")
		flag.Usage()
		os.Exit(2)
	}

	opts := explore.DefaultOptions()
	opts.Threshold = *threshold
	opts.Workers = *workers
	mode, err := explore.ParseRankingMode(*ranking)
	fatal(err)
	opts.Ranking = mode
	level, err := ir.ParseVerifyLevel(*verifyLvl)
	fatal(err)
	opts.Verify = level
	tgt := tti.ByName(*target)
	if tgt == nil {
		fatal(fmt.Errorf("unknown target %q", *target))
	}
	opts.Target = tgt

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "fmsa-serve: pprof: %v\n", err)
			}
		}()
	}

	var store *simdb.Store
	if *dbPath != "" {
		store, err = simdb.Open(*dbPath, "fmsa-serve", simdb.Options{})
		fatal(err)
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "fmsa-serve: similarity db %s: %d live records (%d signed), %d bytes\n",
			*dbPath, st.Live, st.Signed, st.SegmentBytes)
	}

	srv := serve.New(serve.Config{
		Explore:     opts,
		MaxInFlight: *maxInFlight,
		MaxPayload:  *maxPayload,
		Summaries:   *summaries,
		Store:       store,
	})
	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	fmt.Fprintf(os.Stderr, "fmsa-serve: listening on %s (threshold %d, ranking %s, maxinflight %d)\n",
		ln.Addr(), *threshold, mode, *maxInFlight)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "fmsa-serve: %v: draining (up to %v)\n", sig, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fmsa-serve: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "fmsa-serve: drained")
	case err := <-done:
		if err != nil && err != serve.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmsa-serve:", err)
		os.Exit(1)
	}
}
