// Command fmsa-db inspects and maintains a persistent similarity database
// segment (internal/simdb, DESIGN.md §14) — the on-disk store behind
// `fmsa -db` and `fmsa-serve -db`.
//
//	fmsa-db -db corpus.fmdb stats
//	fmsa-db -db corpus.fmdb ingest tu0.ll tu1.fmir   # index modules
//	fmsa-db -db corpus.fmdb query glist_add_float32  # merge candidates
//	fmsa-db -db corpus.fmdb remove glist_add_float32
//	fmsa-db -db corpus.fmdb compact
//
// query probes the banded LSH index rehydrated from the segment — no
// signature is recomputed — and prints candidates ordered by estimated
// Jaccard similarity: the corpus-scale "what could merge with f?" lookup
// that otherwise requires a whole batch run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fmsa/internal/fingerprint"
	"fmsa/internal/global"
	"fmsa/internal/lsh"
	"fmsa/internal/passes"
	"fmsa/internal/simdb"
	"fmsa/internal/wire"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "similarity database segment path (required)")
		name    = flag.String("name", "fmsa-db", "store label when creating a new segment")
		topK    = flag.Int("top", 10, "query: maximum candidates printed")
		workers = flag.Int("workers", 0, "ingest: concurrent file loads (0 = all cores)")
	)
	flag.Parse()
	if *dbPath == "" || flag.NArg() < 1 {
		usage()
	}
	store, err := simdb.Open(*dbPath, *name, simdb.Options{})
	fatal(err)

	switch cmd := flag.Arg(0); cmd {
	case "stats":
		printStats(store)
	case "compact":
		fatal(store.Compact())
		st := store.Stats()
		fmt.Printf("compacted: %d live records, %d bytes\n", st.Live, st.SegmentBytes)
	case "ingest":
		if flag.NArg() < 2 {
			usage()
		}
		ingest(store, flag.Args()[1:], *workers)
	case "query":
		if flag.NArg() != 2 {
			usage()
		}
		query(store, flag.Arg(1), *topK)
	case "remove":
		if flag.NArg() != 2 {
			usage()
		}
		remove(store, flag.Arg(1))
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func printStats(store *simdb.Store) {
	st := store.Stats()
	fmt.Printf("store:         %s (%s)\n", st.Name, st.Path)
	fmt.Printf("live records:  %d (%d signed)\n", st.Live, st.Signed)
	fmt.Printf("file entries:  %d (%d dead)\n", st.Written, st.Dead)
	fmt.Printf("segment bytes: %d\n", st.SegmentBytes)
	fmt.Printf("compactions:   %d\n", st.Compactions)
	if st.TailBytes > 0 {
		fmt.Printf("crash tail:    %d bytes (skipped; truncated at next flush or compact)\n", st.TailBytes)
	}
}

// ingest indexes every definition of the given modules: stable key,
// fingerprint and MinHash signature per function, then one flush.
func ingest(store *simdb.Store, paths []string, workers int) {
	units, err := wire.LoadFiles(paths, workers)
	fatal(err)
	added := 0
	for _, m := range units {
		passes.DemotePhisModule(m)
		for _, f := range m.Funcs {
			if f.IsDecl() {
				continue
			}
			key, selfEq := global.AppendStableKey(nil, f)
			fp := fingerprint.Compute(f)
			store.Put(simdb.Record{
				Hash: global.HashStableKey(key), Name: f.Name(), Linkage: f.Linkage,
				SelfEq: selfEq, Size: fp.Total, Key: key, Fp: fp,
				Sig: fingerprint.ComputeSignature(f),
			})
			added++
		}
	}
	fatal(store.Flush())
	st := store.Stats()
	fmt.Printf("ingested %d definitions from %d files: %d live records, %d bytes\n",
		added, len(units), st.Live, st.SegmentBytes)
}

// query probes the rehydrated index with the named function's stored
// signature and prints candidates by estimated Jaccard, descending.
func query(store *simdb.Store, fname string, topK int) {
	ix, recs := store.Rehydrate(lsh.Params{})
	self := int32(-1)
	var target *simdb.Record
	for id, r := range recs {
		if r.Name == fname {
			self = int32(id)
			target = r
			break
		}
	}
	if target == nil {
		fatal(fmt.Errorf("no live record named %q", fname))
	}
	if target.Sig == nil {
		fatal(fmt.Errorf("record %q is unsigned (exact-ranking producer); re-ingest to sign it", fname))
	}
	type cand struct {
		rec     *simdb.Record
		jaccard float64
	}
	var cands []cand
	for _, id := range ix.Probe(target.Sig, self) {
		r := recs[id]
		cands = append(cands, cand{r, fingerprint.EstimateJaccard(target.Sig, r.Sig)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].jaccard != cands[j].jaccard {
			return cands[i].jaccard > cands[j].jaccard
		}
		return cands[i].rec.Name < cands[j].rec.Name
	})
	fmt.Printf("%s: %d bucket-mates among %d live records\n", fname, len(cands), len(recs))
	for i, c := range cands {
		if i >= topK {
			fmt.Printf("... and %d more\n", len(cands)-topK)
			break
		}
		fmt.Printf("  %-40s jaccard≈%.3f size=%d\n", c.rec.Name, c.jaccard, c.rec.Size)
	}
}

// remove tombstones every live record with the given name (names are not
// unique across content variants; all of them go).
func remove(store *simdb.Store, fname string) {
	n := 0
	for _, r := range store.Live() {
		if r.Name == fname {
			store.Remove(r.Hash, r.Key)
			n++
		}
	}
	if n == 0 {
		fatal(fmt.Errorf("no live record named %q", fname))
	}
	fatal(store.Flush())
	fmt.Printf("removed %d record(s) named %s\n", n, fname)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fmsa-db -db <segment> {stats | compact | ingest <files...> | query <func> | remove <func>}")
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmsa-db:", err)
		os.Exit(1)
	}
}
