// Command fmsa runs function merging by sequence alignment on an IR module
// in either format: textual IR (.ll) or binary fmir (.fmir), sniffed by
// magic bytes.
//
// Whole-module mode (default) applies one of the three techniques:
//
//	fmsa -technique fmsa -threshold 10 -target x86-64 module.ll
//	fmsa -technique fmsa -threshold 10 corpus.fmir
//
// Pair mode merges two named functions and prints the merged function:
//
//	fmsa -merge glist_add_float32,glist_add_float64 module.ll
//
// Global mode treats every input file as its own translation unit and runs
// the two-round sharded cross-TU pipeline: round 1 summarizes each unit
// (stable hash + MinHash signature), round 2 plans folds and merge pairs
// from the summaries alone and commits them per unit. Results are
// bit-identical for any -shards and -workers value:
//
//	fmsa -global -shards 8 tu0.ll tu1.ll tu2.fmir
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fmsa"

	"fmsa/internal/analysis"
	"fmsa/internal/callgraph"
	"fmsa/internal/core"
	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/profiling"
	"fmsa/internal/simdb"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
)

func main() {
	var (
		technique   = flag.String("technique", "fmsa", "merging technique: identical, soa, fmsa")
		threshold   = flag.Int("threshold", 1, "FMSA exploration threshold (t)")
		target      = flag.String("target", "x86-64", "cost-model target: x86-64 or thumb")
		oracle      = flag.Bool("oracle", false, "use exhaustive (oracle) exploration")
		workers     = flag.Int("workers", 0, "exploration worker goroutines (0 = all cores; results are identical for any value)")
		ranking     = flag.String("ranking", "exact", "candidate ranking: exact (quadratic scan) or lsh (MinHash index, sub-quadratic)")
		audit       = flag.String("audit", "off", "merge auditing: off, committed (static checks, diagnostics reported) or deep (reject merges whose behavior diverges)")
		kernel      = flag.String("alignkernel", "coded", "alignment kernel: coded (interned codes, default) or closure (reference); results are bit-identical")
		noSeqCache  = flag.Bool("noseqcache", false, "disable the per-function linearization cache (measurement/debugging only)")
		noAlignMemo = flag.Bool("noalignmemo", false, "disable the alignment-result memo (measurement/debugging only)")
		noBound     = flag.Bool("nobound", false, "disable pre-codegen profitability bounding (measurement/debugging only; results are identical either way)")
		verifyLvl   = flag.String("verify", "full", "IR verification at pipeline boundaries and inside exploration: off, fast or full")
		globalMode  = flag.Bool("global", false, "two-round sharded cross-TU merging: each input file is one translation unit")
		shards      = flag.Int("shards", 1, "round-2 shard count for -global (results are bit-identical for any value)")
		mergePair   = flag.String("merge", "", "merge exactly this comma-separated function pair")
		out         = flag.String("o", "", "write the optimized module to this file (default: stdout)")
		quiet       = flag.Bool("q", false, "suppress the statistics report")
		cgDot       = flag.Bool("callgraph", false, "print the call graph as Graphviz DOT instead of optimizing")
		dbPath      = flag.String("db", "", "persistent similarity database segment: reuse fingerprint/signature state across runs (fmsa technique only)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: fmsa [flags] module.{ll,fmir} [more ...]")
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	fatal(err)
	defer stopProf()

	// Multiple translation units are linked into one module before
	// optimizing — the paper's monolithic-LTO pipeline (Fig. 9). Files are
	// loaded concurrently (bounded by -workers) in either format: textual
	// IR or binary fmir, told apart by their magic bytes.
	level, err := ir.ParseVerifyLevel(*verifyLvl)
	fatal(err)
	units, err := wire.LoadFiles(flag.Args(), *workers)
	fatal(err)
	for i, u := range units {
		verifyGate(u, level, "input "+flag.Arg(i))
	}

	tgt := tti.ByName(*target)
	if tgt == nil {
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	if *globalMode {
		runGlobal(units, tgt, level, *shards, *workers, *out, *quiet)
		return
	}

	mod := units[0]
	if len(units) > 1 {
		var err error
		mod, err = ir.LinkModules("linked", units...)
		fatal(err)
		verifyGate(mod, level, "post-link")
	}

	if *cgDot {
		g := callgraph.Build(mod)
		st := g.ComputeStats()
		fmt.Fprintf(os.Stderr, "functions: %d (+%d decls), edges: %d, call sites: %d, recursive: %d, address-taken: %d, unreachable: %d\n",
			st.Functions, st.Declarations, st.Edges, st.CallSites, st.Recursive, st.AddressTaken, st.Unreachable)
		fmt.Print(g.DOT())
		return
	}

	if *mergePair != "" {
		runPair(mod, *mergePair, tgt, level, *quiet)
		emit(mod, *out)
		return
	}

	var store *simdb.Store
	if *dbPath != "" {
		if fmsa.Technique(*technique) != fmsa.TechniqueFMSA {
			fatal(fmt.Errorf("-db requires -technique fmsa"))
		}
		store, err = simdb.Open(*dbPath, "fmsa", simdb.Options{})
		fatal(err)
	}

	before, _ := fmsa.ModuleSize(mod, *target)
	rep, err := fmsa.Optimize(mod, fmsa.Options{
		Technique:   fmsa.Technique(*technique),
		Threshold:   *threshold,
		Target:      *target,
		Oracle:      *oracle,
		Workers:     *workers,
		Ranking:     *ranking,
		Audit:       *audit,
		AlignKernel: *kernel,
		NoSeqCache:  *noSeqCache,
		NoAlignMemo: *noAlignMemo,
		NoBound:     *noBound,
		Verify:      *verifyLvl,
		Store:       store,
	})
	fatal(err)
	if len(rep.VerifyDiags) > 0 {
		fmt.Fprint(os.Stderr, ir.FormatVerifyDiags(rep.VerifyDiags))
		fatal(fmt.Errorf("exploration verifier reported %d findings", len(rep.VerifyDiags)))
	}
	verifyGate(mod, level, "post-optimize")
	after, _ := fmsa.ModuleSize(mod, *target)

	if !*quiet {
		fmt.Fprintf(os.Stderr, "technique:        %s\n", *technique)
		fmt.Fprintf(os.Stderr, "merge operations: %d\n", rep.MergeOps)
		fmt.Fprintf(os.Stderr, "fully removed:    %d\n", rep.FullyRemoved)
		fmt.Fprintf(os.Stderr, "size (%s):    %d -> %d bytes (%.2f%% reduction)\n",
			tgt.Name(), before, after, 100*float64(before-after)/float64(max(before, 1)))
		if *ranking == "lsh" {
			fmt.Fprintf(os.Stderr, "lsh ranking:      %d probes, %d prefilter skips, %d fallbacks\n",
				rep.RankProbes, rep.RankPrefilterSkips, rep.RankFallbacks)
		}
		if store != nil {
			st := store.Stats()
			fmt.Fprintf(os.Stderr, "similarity db:    %d live records (%d signed), %d bytes\n",
				st.Live, st.Signed, st.SegmentBytes)
		}
		if rep.AuditedMerges > 0 {
			fmt.Fprintf(os.Stderr, "audited merges:   %d (%d flagged, %d escalated, %d rejected)\n",
				rep.AuditedMerges, rep.AuditFlagged, rep.AuditEscalated, rep.AuditRejected)
		}
	}
	if len(rep.AuditDiags) > 0 {
		fmt.Fprint(os.Stderr, analysis.FormatDiagnostics(rep.AuditDiags))
	}
	emit(mod, *out)
}

// runGlobal drives the two-round sharded cross-TU pipeline over the loaded
// translation units and emits the linked result.
func runGlobal(units []*fmsa.Module, tgt tti.Target, level ir.VerifyLevel, shards, workers int, out string, quiet bool) {
	opts := global.DefaultOptions()
	opts.Target = tgt
	opts.Shards = shards
	opts.Workers = workers
	linked, rep, err := global.Run(units, opts)
	fatal(err)
	verifyGate(linked, level, "post-global")
	if !quiet {
		fmt.Fprintf(os.Stderr, "translation units: %d (%d shards)\n", rep.TUs, rep.Shards)
		fmt.Fprintf(os.Stderr, "folded functions:  %d (%d groups)\n", rep.FoldedFuncs, rep.FoldGroups)
		fmt.Fprintf(os.Stderr, "merged pairs:      %d of %d planned\n", rep.PairsMerged, rep.PairsPlanned)
		fmt.Fprintf(os.Stderr, "exact scoring:     %d pairs (%d summary probes, %d bound skips)\n",
			rep.ExactScoredPairs, rep.ProbePairs, rep.PrunedByBound)
		fmt.Fprintf(os.Stderr, "size (%s):     %d -> %d bytes (%.2f%% reduction)\n",
			tgt.Name(), rep.SizeBefore, rep.SizeAfter,
			100*float64(rep.SizeBefore-rep.SizeAfter)/float64(max(rep.SizeBefore, 1)))
	}
	emit(linked, out)
}

func runPair(mod *fmsa.Module, pair string, tgt tti.Target, level ir.VerifyLevel, quiet bool) {
	names := strings.SplitN(pair, ",", 2)
	if len(names) != 2 {
		fatal(fmt.Errorf("-merge wants two comma-separated names, got %q", pair))
	}
	f1 := mod.FuncByName(strings.TrimSpace(names[0]))
	f2 := mod.FuncByName(strings.TrimSpace(names[1]))
	if f1 == nil || f2 == nil {
		fatal(fmt.Errorf("function pair %q not found in module", pair))
	}
	fmsa.DemotePhis(mod)
	res, err := core.Merge(f1, f2, core.DefaultOptions())
	fatal(err)
	profit := res.Profit(tgt)
	if !quiet {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "aligned %d + %d entries: %d matched, %d divergent\n",
			st.Len1, st.Len2, st.MatchedColumns, st.GapColumns)
		fmt.Fprintf(os.Stderr, "selects: %d, dispatch blocks: %d, func_id: %v\n",
			st.Selects, st.DispatchBlocks, st.HasFuncID)
		fmt.Fprintf(os.Stderr, "cost-model profit (%s): %d bytes\n", tgt.Name(), profit)
	}
	res.Commit()
	verifyGate(mod, level, "post-merge")
}

// verifyGate runs the staged verifier at a pipeline boundary and exits with
// every finding on the first diagnostic.
func verifyGate(m *fmsa.Module, level ir.VerifyLevel, stage string) {
	if level == ir.VerifyOff {
		return
	}
	if diags := ir.VerifyModuleLevel(m, level); len(diags) > 0 {
		fmt.Fprint(os.Stderr, ir.FormatVerifyDiags(diags))
		fatal(fmt.Errorf("%s: verifier reported %d findings", stage, len(diags)))
	}
}

func emit(mod *fmsa.Module, out string) {
	text := fmsa.FormatModule(mod)
	if out == "" {
		fmt.Print(text)
		return
	}
	fatal(os.WriteFile(out, []byte(text), 0o644))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmsa:", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
