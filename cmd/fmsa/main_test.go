package main

// Integration tests: build the fmsa binary once and drive it end to end on
// real module files.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var fmsaBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fmsa-cli")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	fmsaBin = filepath.Join(dir, "fmsa")
	build := exec.Command("go", "build", "-o", fmsaBin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

const cliModule = `
define internal i64 @dupA(i64 %x) {
entry:
  %a = add i64 %x, 5
  %b = mul i64 %a, 3
  ret i64 %b
}

define internal i64 @dupB(i64 %x) {
entry:
  %a = add i64 %x, 5
  %b = mul i64 %a, 3
  ret i64 %b
}

define i64 @root(i64 %x) {
entry:
  %r1 = call i64 @dupA(i64 %x)
  %r2 = call i64 @dupB(i64 %r1)
  ret i64 %r2
}
`

func writeModule(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mod.ll")
	if err := os.WriteFile(path, []byte(cliModule), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(fmsaBin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("fmsa %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLIOptimize(t *testing.T) {
	mod := writeModule(t)
	stdout, stderr := run(t, "-technique", "fmsa", "-threshold", "5", mod)
	if !strings.Contains(stderr, "merge operations: 1") {
		t.Errorf("expected one merge, stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "reduction") {
		t.Errorf("missing size report:\n%s", stderr)
	}
	if !strings.Contains(stdout, "define i64 @root") {
		t.Errorf("optimized module missing root:\n%s", stdout)
	}
	// Identical folding keeps one representative and deletes the twin.
	if !strings.Contains(stdout, "@dupA") {
		t.Errorf("representative should survive:\n%s", stdout)
	}
	if strings.Contains(stdout, "@dupB") {
		t.Errorf("folded duplicate should be gone:\n%s", stdout)
	}
}

func TestCLIMergePair(t *testing.T) {
	mod := writeModule(t)
	stdout, stderr := run(t, "-merge", "dupA,dupB", mod)
	if !strings.Contains(stderr, "matched") {
		t.Errorf("missing alignment stats:\n%s", stderr)
	}
	if !strings.Contains(stdout, "define i64 @root") {
		t.Errorf("module output missing:\n%s", stdout)
	}
}

func TestCLITechniques(t *testing.T) {
	for _, tech := range []string{"identical", "soa", "fmsa"} {
		mod := writeModule(t)
		_, stderr := run(t, "-technique", tech, mod)
		if !strings.Contains(stderr, "technique:        "+tech) {
			t.Errorf("%s: bad report:\n%s", tech, stderr)
		}
	}
}

func TestCLIOutputFile(t *testing.T) {
	mod := writeModule(t)
	out := filepath.Join(t.TempDir(), "out.ll")
	run(t, "-q", "-o", out, mod)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "define i64 @root") {
		t.Error("output file missing optimized module")
	}
}

func TestCLICallgraph(t *testing.T) {
	mod := writeModule(t)
	stdout, stderr := run(t, "-callgraph", mod)
	if !strings.HasPrefix(stdout, "digraph callgraph {") {
		t.Errorf("expected DOT output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "functions: 3") {
		t.Errorf("expected stats on stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, `"root" -> "dupA"`) {
		t.Errorf("missing call edge:\n%s", stdout)
	}
}

func TestCLIThumbTarget(t *testing.T) {
	mod := writeModule(t)
	_, stderr := run(t, "-target", "thumb", mod)
	if !strings.Contains(stderr, "size (thumb)") {
		t.Errorf("thumb target not reported:\n%s", stderr)
	}
}

func TestCLILinkMultipleUnits(t *testing.T) {
	dir := t.TempDir()
	unitA := filepath.Join(dir, "a.ll")
	unitB := filepath.Join(dir, "b.ll")
	os.WriteFile(unitA, []byte(`
declare i64 @twin(i64)

define internal i64 @twinA(i64 %x) {
entry:
  %r = mul i64 %x, 9
  ret i64 %r
}

define i64 @rootA(i64 %x) {
entry:
  %a = call i64 @twinA(i64 %x)
  %b = call i64 @twin(i64 %a)
  ret i64 %b
}
`), 0o644)
	os.WriteFile(unitB, []byte(`
define i64 @twin(i64 %x) {
entry:
  %r = mul i64 %x, 9
  ret i64 %r
}
`), 0o644)
	stdout, stderr := run(t, "-technique", "fmsa", unitA, unitB)
	// Cross-unit merging: the internal twin in a.ll folds into b.ll's twin.
	if !strings.Contains(stderr, "merge operations: 1") {
		t.Errorf("expected a cross-unit merge:\n%s", stderr)
	}
	if !strings.Contains(stdout, "@rootA") || !strings.Contains(stdout, "@twin") {
		t.Errorf("linked output incomplete:\n%s", stdout)
	}
}

func TestCLIErrors(t *testing.T) {
	mod := writeModule(t)
	cmd := exec.Command(fmsaBin, "-technique", "bogus", mod)
	if err := cmd.Run(); err == nil {
		t.Error("bogus technique should fail")
	}
	cmd = exec.Command(fmsaBin, "-merge", "nope,dupA", mod)
	if err := cmd.Run(); err == nil {
		t.Error("unknown function pair should fail")
	}
	cmd = exec.Command(fmsaBin, "/nonexistent.ll")
	if err := cmd.Run(); err == nil {
		t.Error("missing file should fail")
	}
}
