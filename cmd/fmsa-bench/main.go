// Command fmsa-bench regenerates the paper's tables and figures on the
// synthetic workload suites and prints them as text tables (optionally
// dumping CSV files).
//
//	fmsa-bench -exp fig10 -target x86-64
//	fmsa-bench -exp all -csv results/
//
// Experiments: fig8, fig10, fig11, fig12, fig13, fig14, table1, table2,
// ablation, hotexclusion, perf, rank, audit, kernels, bound, ingest,
// verify, global, serve, simdb, all.
//
// The perf experiment measures the exploration pipeline itself (serial vs
// parallel) and emits one machine-readable JSON line per configuration —
// ns/op, merges/s, DP-cell and cache-hit counters, and the per-phase
// breakdown — for tracking the performance trajectory across revisions.
// -alignkernel and -nocaches select the alignment kernel (coded or closure)
// and toggle the linearization cache plus alignment memo; -nobound disables
// pre-codegen profitability bounding; -runs repeats each measurement and
// reports the median (ns_per_op) plus the minimum (ns_per_op_min);
// -percorpus emits one line per corpus instead of one per suite:
//
//	fmsa-bench -exp perf -workers 8 -json BENCH_explore.json
//	fmsa-bench -exp perf -percorpus -runs 3 -json BENCH_PR5.json
//	fmsa-bench -exp perf -percorpus -runs 3 -nobound -json BENCH_PR5.json
//
// The kernels experiment cross-checks the coded kernel (caches on) against
// the closure kernel (caches off) corpus by corpus and fails on the first
// divergence in merge records or final module text:
//
//	fmsa-bench -exp kernels -quick
//
// The bound experiment is the profitability-bound differential check: each
// corpus runs with bounding off, with pruning on (must commit bit-identical
// merges) and with a bound-vs-exact audit on every materialized pair (zero
// pairs may price above their bound):
//
//	fmsa-bench -exp bound -quick
//
// The ingest experiment emits every corpus as textual IR and as binary fmir,
// measures decode wall time for both paths (per corpus and whole-suite via
// the concurrent multi-file loader), and fails unless fmir ingest produces
// bit-identical merge records and final module text to text ingest:
//
//	fmsa-bench -exp ingest -json BENCH_ingest.json
//	fmsa-bench -exp ingest -quick -workers 1
//
// The verify experiment drives every corpus through the pipeline's IR
// boundaries (print→reparse, wire round trip, split+relink, merge with
// in-pipeline gates on), verifying at the full level after each, checks
// that verification never changes merge decisions, and gates the
// fast-level overhead at 5% of suite exploration wall clock:
//
//	fmsa-bench -exp verify -runs 3 -json BENCH_verify.json
//	fmsa-bench -exp verify -quick
//
// The rank experiment compares the exact quadratic candidate ranking with
// the sub-quadratic MinHash/LSH index on identical pools — per-corpus wall
// time, probe counts and top-1 recall as JSON lines — and fails if the
// aggregate LSH recall drops below 0.95:
//
//	fmsa-bench -exp rank -json BENCH_rank.json
//
// The global experiment measures the two-round sharded cross-TU pipeline
// against monolithic whole-program exploration — per corpus and shard
// count, JSON lines carry the exact-scored pair count, alignment cells,
// wall clock and committed merge records — and fails unless results are
// bit-identical across shard counts 1/2/8, round-1 summaries round-trip
// through the .fmsum wire format, and summary-based planning cuts
// exact-scored pairs by at least 30% in aggregate:
//
//	fmsa-bench -exp global -units 4 -json BENCH_PR8.json
//	fmsa-bench -exp global -quick
//
// The serve experiment measures the warm merge-session daemon: the largest
// corpus is submitted cold, then resubmitted with a 1% delta into a warm
// session, and the run fails unless the warm submit is bit-identical to a
// cold session and at least 5x faster. Further phases record stream
// latency percentiles and throughput, warm/cold identity across worker
// counts, admission backpressure and graceful drain:
//
//	fmsa-bench -exp serve -json BENCH_PR9.json
//	fmsa-bench -exp serve -quick
//
// The simdb experiment measures the persistent similarity database: the
// largest corpus's signature/index state is stored to a segment file, 1% of
// the corpus is edited, and the run fails unless the store-backed startup
// (segment replay + delta recompute) beats the full rebuild by at least 3x,
// every probe of the rehydrated LSH index matches a from-scratch in-memory
// index, and store-backed merge decisions are bit-identical to storeless
// cold runs for workers 1/2/8:
//
//	fmsa-bench -exp simdb -json BENCH_PR10.json
//	fmsa-bench -exp simdb -quick
//
// -cpuprofile and -memprofile write pprof profiles covering whichever
// experiments ran.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"fmsa/internal/experiments"
	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/profiling"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run")
		target    = flag.String("target", "x86-64", "cost-model target: x86-64 or thumb")
		csvDir    = flag.String("csv", "", "also write CSV files to this directory")
		quickly   = flag.Bool("quick", false, "subsample the suites for a fast smoke run")
		workers   = flag.Int("workers", 0, "exploration worker goroutines (0 = all cores)")
		jsonPath  = flag.String("json", "", "append experiment JSON lines (perf, rank, audit) to this file")
		auditMode = flag.String("audit", "committed", "audit experiment mode: committed or deep")
		ranking   = flag.String("ranking", "exact", "perf experiment candidate ranking: exact or lsh")
		kernel    = flag.String("alignkernel", "coded", "alignment kernel: coded or closure")
		noCaches  = flag.Bool("nocaches", false, "disable the linearization cache and alignment memo")
		noBound   = flag.Bool("nobound", false, "disable pre-codegen profitability bounding")
		runs      = flag.Int("runs", 1, "perf experiment: repeat each measurement, report median and min")
		perCorpus = flag.Bool("percorpus", false, "perf experiment: emit one JSON line per corpus")
		units     = flag.Int("units", 4, "global experiment: translation units per corpus")
		verifyLvl = flag.String("verify", "off", "perf experiment: IR verification level inside exploration (off, fast, full)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	fatalIf(err)
	defer stopProf()

	tgt := tti.ByName(*target)
	if tgt == nil {
		fatal(fmt.Errorf("unknown target %q", *target))
	}
	spec := workload.SPECLike()
	mibench := workload.MiBenchLike()
	if *quickly {
		spec = subsample(spec)
		mibench = subsample(mibench)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("fig8") {
		ran = true
		section("Figure 8: CDF of profitable-candidate rank positions (t=10)")
		cdf := experiments.RankCDF(spec, tgt, 10, 10)
		fmt.Print(experiments.FormatCDF(cdf))
	}

	var specRows []experiments.SizeRow
	if run("fig10") || run("table1") {
		specRows = experiments.CodeSize(spec, tgt, experiments.Fig10Techniques())
	}
	if run("fig10") {
		ran = true
		section(fmt.Sprintf("Figure 10: object-size reduction, SPEC-like suite (%s)", tgt.Name()))
		fmt.Print(experiments.FormatSizeTable(specRows, experiments.TechNames(experiments.Fig10Techniques())))
		writeCSV(*csvDir, "fig10_"+tgt.Name()+".csv",
			experiments.SizeCSV(specRows, experiments.TechNames(experiments.Fig10Techniques())))
	}
	if run("table1") {
		ran = true
		section("Table I: SPEC-like population statistics and merge operations")
		fmt.Print(experiments.FormatStatsTable(specRows, experiments.TechNames(experiments.Fig10Techniques())))
	}

	var miRows []experiments.SizeRow
	if run("fig11") || run("table2") {
		miRows = experiments.CodeSize(mibench, tgt, experiments.Fig10Techniques())
	}
	if run("fig11") {
		ran = true
		section(fmt.Sprintf("Figure 11: object-size reduction, MiBench-like suite (%s)", tgt.Name()))
		fmt.Print(experiments.FormatSizeTable(miRows, experiments.TechNames(experiments.Fig10Techniques())))
		writeCSV(*csvDir, "fig11_"+tgt.Name()+".csv",
			experiments.SizeCSV(miRows, experiments.TechNames(experiments.Fig10Techniques())))
	}
	if run("table2") {
		ran = true
		section("Table II: MiBench-like population statistics and merge operations")
		fmt.Print(experiments.FormatStatsTable(miRows, experiments.TechNames(experiments.Fig10Techniques())))
	}

	if run("fig12") {
		ran = true
		section("Figure 12: compile-time overhead, normalized to the non-merging pipeline")
		techs := []experiments.Technique{
			experiments.Identical(), experiments.SOA(),
			experiments.FMSA(1), experiments.FMSA(5), experiments.FMSA(10),
		}
		rows := experiments.CompileTime(spec, tgt, techs)
		fmt.Print(experiments.FormatTimeTable(rows, experiments.TechNames(techs)))
	}

	if run("fig13") {
		ran = true
		section("Figure 13: FMSA compile-time breakdown by phase (t=1)")
		rows := experiments.Breakdown(spec, tgt, 1)
		fmt.Print(experiments.FormatBreakdownTable(rows))
	}

	if run("fig14") {
		ran = true
		section("Figure 14: runtime overhead (weighted dynamic instruction count)")
		techs := []experiments.Technique{
			experiments.Identical(), experiments.SOA(),
			experiments.FMSA(1), experiments.FMSA(5), experiments.FMSA(10),
		}
		rows, err := experiments.Runtime(spec, tgt, techs)
		fatalIf(err)
		fmt.Print(experiments.FormatRuntimeTable(rows, experiments.TechNames(techs)))
	}

	if run("hotexclusion") {
		ran = true
		section("§V-D: profile-guided exclusion of hot functions")
		fmt.Printf("%-16s %-5s %22s %22s\n", "benchmark", "t", "FMSA (all functions)", "FMSA (cold only)")
		show := map[string]int{"433.milc": 10, "462.libquantum": 1, "400.perlbench": 1, "482.sphinx3": 1}
		for _, p := range spec {
			th, ok := show[p.Name]
			if !ok {
				continue
			}
			res, err := experiments.HotExclusion(p, tgt, th, 0.1)
			fatalIf(err)
			fmt.Printf("%-16s t=%-3d %9.2f%%  %.3fx %9.2f%%  %.3fx\n",
				res.Bench, th, res.ReductionAll, res.OverheadAll, res.ReductionCold, res.OverheadCold)
		}
	}

	if run("fig13full") {
		ran = true
		section("Figure 13 at paper scale: phase breakdown on unscaled small benchmarks (t=1)")
		rows := experiments.Breakdown(workload.UnscaledSmall(), tgt, 1)
		fmt.Print(experiments.FormatBreakdownTable(rows))
	}

	if run("lto") {
		ran = true
		section("§IV-B: whole-program (LTO) versus per-translation-unit merging (t=1)")
		units := []int{1, 4, 16}
		rows := experiments.LTOGranularity(spec, tgt, 1, units)
		fmt.Print(experiments.FormatLTOTable(rows, units))
	}

	if run("ablation") {
		ran = true
		section("Ablations: parameter reuse, alignment algorithm, linearization order")
		techs := experiments.AblationTechniques()
		rows := experiments.CodeSize(spec, tgt, techs)
		fmt.Print(experiments.FormatSizeTable(rows, experiments.TechNames(techs)))
	}

	if run("audit") {
		ran = true
		section("Merge-audit sweep: static soundness checks over every committed merge")
		mode, err := explore.ParseAuditMode(*auditMode)
		fatalIf(err)
		if mode == explore.AuditOff {
			mode = explore.AuditCommitted
		}
		suites := append(append([]workload.Profile{}, workload.UnscaledSmall()...), spec...)
		suites = append(suites, mibench...)
		res := experiments.AuditSweep(suites, tgt, 2, mode)
		fmt.Print(experiments.FormatAuditTable(res))
		emitJSON(res, *jsonPath)
		if res.Flagged > 0 {
			fatal(fmt.Errorf("audit flagged %d of %d merges", res.Flagged, res.Audited))
		}
	}

	if run("perf") {
		ran = true
		section("Exploration pipeline performance: serial vs parallel (t=10)")
		mode, err := explore.ParseRankingMode(*ranking)
		fatalIf(err)
		km, err := explore.ParseKernelMode(*kernel)
		fatalIf(err)
		lvl, err := ir.ParseVerifyLevel(*verifyLvl)
		fatalIf(err)
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		cfg := experiments.PerfConfig{
			Threshold: 10, Workers: 1, Runs: *runs,
			Ranking: mode, Kernel: km, NoCaches: *noCaches, NoBound: *noBound,
			Verify: lvl,
		}
		if *perCorpus {
			for _, r := range experiments.PerfCorpora(spec, tgt, cfg) {
				emitPerf(r, *jsonPath)
			}
		} else {
			serial := experiments.Perf(spec, tgt, cfg)
			emitPerf(serial, *jsonPath)
			if w > 1 {
				cfg.Workers = w
				par := experiments.Perf(spec, tgt, cfg)
				if par.NsPerOp > 0 {
					par.SpeedupVsSerial = float64(serial.NsPerOp) / float64(par.NsPerOp)
				}
				emitPerf(par, *jsonPath)
			}
		}
	}

	if run("kernels") {
		ran = true
		section("Kernel cross-check: coded+caches vs closure+nocaches, bit-identical merges (t=5)")
		rows, err := experiments.KernelCrossCheck(spec, tgt, 5, *workers)
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
	}

	if run("bound") {
		ran = true
		section("Bound cross-check: pruning vs exact pipeline, admissibility audit (t=5)")
		rows, err := experiments.BoundCrossCheck(spec, tgt, 5, *workers)
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
	}

	if run("ingest") {
		ran = true
		section("Ingest: text vs binary fmir corpus decode, bit-identical merges gate")
		rows, err := experiments.Ingest(spec, tgt, experiments.IngestConfig{
			Workers: *workers, Runs: *runs, Threshold: 2,
		})
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
		for _, r := range rows {
			if r.Corpus == "aggregate" && r.Format == "fmir" {
				fmt.Printf("\nfmir aggregate: %.2fx ingest speedup over text (%d workers), %.1f%% of text bytes\n",
					r.SpeedupVsText, r.Workers, 100*float64(r.Bytes)/float64(max64(rowBytes(rows, "text"), 1)))
			}
		}
	}

	if run("verify") {
		ran = true
		section("Verify: boundary IR checks, decision invariance, fast-level overhead gate")
		suites := append(append([]workload.Profile{}, workload.UnscaledSmall()...), spec...)
		suites = append(suites, mibench...)
		rows, err := experiments.VerifySweep(suites, tgt, experiments.VerifyConfig{
			Workers: *workers, Runs: *runs, Threshold: 2,
		})
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
		for _, r := range rows {
			if r.Corpus == "aggregate" {
				fmt.Printf("\nverify aggregate: %.1f%% fast-level overhead across %d corpora (%d runs)\n",
					r.OverheadPct, len(rows)-1, r.Runs)
			}
		}
	}

	if run("rank") {
		ran = true
		section("Candidate ranking: exact quadratic scan vs MinHash/LSH index (t=1)")
		rankSpec := spec
		if *quickly {
			// The quick subsample only keeps corpora small enough to fall
			// back to the exact scan, which would gate nothing; measure the
			// one largest corpus instead so the index actually engages.
			for _, p := range workload.SPECLike() {
				if p.Name == "483.xalancbmk" {
					rankSpec = []workload.Profile{p}
				}
			}
		}
		rows := experiments.Rank(rankSpec, 1, *workers)
		var lshAgg experiments.RankModeResult
		for _, r := range rows {
			emitJSON(r, *jsonPath)
			if r.Corpus == "aggregate" && r.Mode == "lsh" {
				lshAgg = r
			}
		}
		if lshAgg.Funcs > 0 {
			fmt.Printf("\nlsh aggregate: %.2fx ranking speedup, %.1f%% top-1 recall, %d fallbacks\n",
				lshAgg.SpeedupVsExact, 100*lshAgg.RecallTop1, lshAgg.Fallbacks)
		}
		if lshAgg.RecallTop1 < 0.95 {
			fatal(fmt.Errorf("lsh aggregate top-1 recall %.3f below the 0.95 floor", lshAgg.RecallTop1))
		}
	}

	if run("serve") {
		ran = true
		section("Serve: warm merge sessions, delta resubmission vs cold exploration (t=20)")
		// Threshold 20 is the gate calibration: deep enough that the cold
		// ranking and evaluation work dominates, shallow enough that the
		// warm floor (merged-function scans plus materialization) stays low.
		rows, err := experiments.Serve(workload.SPECLike(), tgt, experiments.ServeConfig{
			Threshold: 20, Workers: 1, Quick: *quickly,
		})
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
		for _, r := range rows {
			if r.Phase == "speedup" {
				fmt.Printf("\nserve: %.2fx warm speedup at %.0f%% delta on %s (cold %.2fs, warm %.2fs), bit-identical: %v\n",
					r.Speedup, 100*r.DeltaFrac, r.Corpus,
					float64(r.ColdNS)/1e9, float64(r.WarmNS)/1e9, r.BitIdentical)
			}
		}
	}

	if run("simdb") {
		ran = true
		section("SimDB: persistent similarity database, store-backed startup vs full rebuild")
		rows, err := experiments.SimDB(workload.SPECLike(), tgt, experiments.SimDBConfig{
			Quick: *quickly,
		})
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
		for _, r := range rows {
			switch r.Phase {
			case "startup":
				fmt.Printf("\nsimdb: %.2fx store-backed startup at %.0f%% delta on %s (cold %.3fs, warm %.3fs, %d hits/%d misses, %d segment bytes)\n",
					r.Speedup, 100*r.DeltaFrac, r.Corpus,
					float64(r.ColdNS)/1e9, float64(r.WarmNS)/1e9,
					r.StoreHits, r.StoreMisses, r.SegmentBytes)
			case "probe":
				fmt.Printf("simdb: probe p50 %.1fµs, p95 %.1fµs, p99 %.1fµs over %d queries, identical to in-memory index: %v\n",
					float64(r.P50NS)/1e3, float64(r.P95NS)/1e3, float64(r.P99NS)/1e3,
					r.Probes, r.BitIdentical)
			}
		}
	}

	if run("global") {
		ran = true
		section("Global: sharded cross-TU merging vs monolithic exploration (t=1)")
		rows, err := experiments.GlobalSweep(spec, tgt, experiments.GlobalConfig{
			Workers: *workers, Units: *units,
		})
		for _, r := range rows {
			emitJSON(r, *jsonPath)
		}
		fatalIf(err)
		for _, r := range rows {
			if r.Corpus == "aggregate" {
				fmt.Printf("\nglobal aggregate: %.1f%% fewer exact-scored pairs (%d -> %d), bit-identical across shards: %v\n",
					r.ReductionPct, r.ExactMonolithic, r.ExactGlobal, r.BitIdentical)
			}
		}
	}

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// emitPerf prints one machine-readable JSON line and optionally appends it
// to path (the BENCH_*.json trajectory file).
func emitPerf(r experiments.PerfResult, path string) { emitJSON(r, path) }

// emitJSON prints any experiment result as one JSON line and optionally
// appends it to path.
func emitJSON(r any, path string) {
	line, err := json.Marshal(r)
	fatalIf(err)
	fmt.Println(string(line))
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	fatalIf(err)
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	fatalIf(err)
}

// rowBytes returns the aggregate on-disk bytes for one ingest format.
func rowBytes(rows []experiments.IngestResult, format string) int64 {
	for _, r := range rows {
		if r.Corpus == "aggregate" && r.Format == format {
			return r.Bytes
		}
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func subsample(ps []workload.Profile) []workload.Profile {
	var out []workload.Profile
	for i, p := range ps {
		if i%4 == 0 {
			out = append(out, p)
		}
	}
	return out
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmsa-bench:", err)
	os.Exit(1)
}
