// Command fmsa-gen emits the synthetic benchmark modules used by the
// evaluation, as textual IR files or binary fmir corpora.
//
//	fmsa-gen -suite spec -o out/          # all 19 SPEC-like modules
//	fmsa-gen -suite spec -format fmir -o out/
//	fmsa-gen -suite mibench -bench rijndael -o out/
//	fmsa-gen -list                        # show available benchmarks
//
// With -summary, each benchmark additionally gets a binary .fmsum file
// holding the round-1 function summaries (stable hash, size, MinHash
// signature, linkage flags) of its translation units — the publication the
// sharded cross-TU pipeline plans from:
//
//	fmsa-gen -suite spec -units 4 -summary -o out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

func main() {
	var (
		suite   = flag.String("suite", "spec", "benchmark suite: spec or mibench")
		bench   = flag.String("bench", "", "emit only this benchmark (default: all)")
		out     = flag.String("o", ".", "output directory")
		format  = flag.String("format", "ll", "output format: ll (textual IR) or fmir (binary)")
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		units   = flag.Int("units", 1, "split each benchmark into this many translation units (feed them all to `fmsa` to model the Fig. 9 LTO pipeline)")
		verify  = flag.String("verify", "full", "IR verification level for generated modules and split units: off, fast or full")
		summary = flag.Bool("summary", false, "also write a .fmsum file with round-1 function summaries per benchmark")
	)
	flag.Parse()
	level, err := ir.ParseVerifyLevel(*verify)
	if err != nil {
		fatal(err)
	}
	if *format != workload.FormatText && *format != workload.FormatFMIR {
		fatal(fmt.Errorf("unknown format %q (want ll or fmir)", *format))
	}

	var profiles []workload.Profile
	switch *suite {
	case "spec":
		profiles = workload.SPECLike()
	case "mibench":
		profiles = workload.MiBenchLike()
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}

	if *list {
		for _, p := range profiles {
			fmt.Printf("%-18s %5d funcs, avg size %4d, max %5d\n",
				p.Name, p.NumFuncs, p.AvgSize, p.MaxSize)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	emitted := 0
	for _, p := range profiles {
		if *bench != "" && p.Name != *bench {
			continue
		}
		m := workload.Build(p)
		if diags := ir.VerifyModuleLevel(m, level); len(diags) > 0 {
			fatal(fmt.Errorf("%s: generated module invalid:\n%s", p.Name, ir.FormatVerifyDiags(diags)))
		}
		base := strings.ReplaceAll(p.Name, ".", "_")
		if *units > 1 {
			tus, err := ir.SplitModule(m, *units)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
			for k, tu := range tus {
				if diags := ir.VerifyModuleLevel(tu, level); len(diags) > 0 {
					fatal(fmt.Errorf("%s unit %d: split unit invalid:\n%s", p.Name, k, ir.FormatVerifyDiags(diags)))
				}
				path := filepath.Join(*out, fmt.Sprintf("%s_unit%d.%s", base, k, *format))
				if err := workload.WriteModuleFile(path, *format, tu); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s (%d functions)\n", path, len(tu.Definitions()))
			}
			if *summary {
				writeSummary(*out, base, p.Name, tus)
			}
			emitted++
			continue
		}
		path := filepath.Join(*out, base+"."+*format)
		if err := workload.WriteModuleFile(path, *format, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d functions, %d instructions)\n",
			path, len(m.Definitions()), m.NumInsts())
		if *summary {
			writeSummary(*out, base, p.Name, []*ir.Module{m})
		}
		emitted++
	}
	if emitted == 0 {
		fatal(fmt.Errorf("no benchmark named %q in suite %s", *bench, *suite))
	}
}

// writeSummary computes the round-1 summaries for one benchmark's
// translation units and writes them as a binary .fmsum stream.
func writeSummary(dir, base, corpus string, units []*ir.Module) {
	sums := global.Summarize(units, 0)
	path := filepath.Join(dir, base+".fmsum")
	if err := os.WriteFile(path, wire.EncodeSummaries(corpus, sums), 0o644); err != nil {
		fatal(err)
	}
	nf := 0
	for _, tu := range sums {
		nf += len(tu.Funcs)
	}
	fmt.Printf("wrote %s (%d units, %d function summaries)\n", path, len(sums), nf)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmsa-gen:", err)
	os.Exit(1)
}
