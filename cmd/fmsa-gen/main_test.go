package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fmsa/internal/ir"
)

var genBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fmsa-gen-cli")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	genBin = filepath.Join(dir, "fmsa-gen")
	if out, err := exec.Command("go", "build", "-o", genBin, ".").CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func TestGenList(t *testing.T) {
	out, err := exec.Command(genBin, "-suite", "spec", "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, name := range []string{"400.perlbench", "470.lbm", "483.xalancbmk"} {
		if !strings.Contains(s, name) {
			t.Errorf("list missing %s:\n%s", name, s)
		}
	}
	if n := strings.Count(s, "\n"); n != 19 {
		t.Errorf("spec list has %d rows, want 19", n)
	}
}

func TestGenEmitSingleBenchmark(t *testing.T) {
	dir := t.TempDir()
	out, err := exec.Command(genBin, "-suite", "mibench", "-bench", "rijndael", "-o", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "rijndael.ll"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.ParseModule("rijndael", string(data))
	if err != nil {
		t.Fatalf("emitted module unparseable: %v", err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("emitted module invalid: %v", err)
	}
	if m.FuncByName("encrypt") == nil || m.FuncByName("decrypt") == nil {
		t.Error("rijndael twins missing")
	}
	if m.FuncByName("main") == nil {
		t.Error("driver missing")
	}
}

func TestGenUnknownBenchmarkFails(t *testing.T) {
	if err := exec.Command(genBin, "-suite", "spec", "-bench", "nope").Run(); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if err := exec.Command(genBin, "-suite", "nope").Run(); err == nil {
		t.Error("unknown suite should fail")
	}
}
