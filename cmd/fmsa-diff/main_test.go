package main

import (
	"strings"
	"testing"

	"fmsa/internal/align"
	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

const diffFixture = `
define internal i64 @a(i64 %x) {
entry:
  %r = add i64 %x, 1
  %s = mul i64 %r, 2
  ret i64 %s
}

define internal i64 @b(i64 %x) {
entry:
  %r = add i64 %x, 1
  %extra = xor i64 %r, 5
  %s = mul i64 %extra, 2
  ret i64 %s
}
`

func renderFixture(t *testing.T) string {
	t.Helper()
	mod := ir.MustParseModule("d", diffFixture)
	f1, f2 := mod.FuncByName("a"), mod.FuncByName("b")
	seq1 := linearize.Linearize(f1)
	seq2 := linearize.Linearize(f2)
	eq := func(i, j int) bool { return core.EntriesEquivalent(seq1[i], seq2[j]) }
	steps := align.DecomposeMismatches(
		align.Align(len(seq1), len(seq2), eq, align.DefaultScoring))
	return Render(steps, seq1, seq2, 40, f1.Name(), f2.Name())
}

func TestRenderAlignmentView(t *testing.T) {
	out := renderFixture(t)
	if !strings.Contains(out, "@a") || !strings.Contains(out, "@b") {
		t.Errorf("headers missing:\n%s", out)
	}
	// The extra xor must appear as a right-only line.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "xor") {
			if !strings.Contains(line, ">") {
				t.Errorf("xor should be marked right-only: %q", line)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("xor line missing:\n%s", out)
	}
	// Shared entries appear on match lines.
	if !strings.Contains(out, "= ") {
		t.Errorf("no matched lines:\n%s", out)
	}
	if !strings.Contains(out, "matched columns") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestRenderTruncatesLongLines(t *testing.T) {
	out := renderFixture(t)
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") || strings.Contains(line, "=") {
			// Two 40-char cells plus separators.
			if len([]rune(line)) > 2*40+3 {
				t.Errorf("line too long (%d): %q", len(line), line)
			}
		}
	}
}
