// Command fmsa-diff renders the sequence alignment between two functions
// side by side — the paper's Fig. 5 view. Matched entries appear in both
// columns, entries unique to one function appear alone, making it easy to
// see exactly what the merger would share and what it would guard.
//
//	fmsa-diff -f1 glist_add_float32 -f2 glist_add_float64 module.ll
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fmsa/internal/align"
	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
	"fmsa/internal/wire"
)

func main() {
	var (
		name1  = flag.String("f1", "", "first function")
		name2  = flag.String("f2", "", "second function")
		width  = flag.Int("w", 46, "column width")
		verify = flag.String("verify", "full", "IR verification level after loading: off, fast or full")
	)
	flag.Parse()
	if flag.NArg() != 1 || *name1 == "" || *name2 == "" {
		fmt.Fprintln(os.Stderr, "usage: fmsa-diff -f1 <name> -f2 <name> module.{ll,fmir}")
		flag.Usage()
		os.Exit(2)
	}

	level, err := ir.ParseVerifyLevel(*verify)
	fatal(err)

	// Accepts textual IR or binary fmir, sniffed by magic bytes.
	mod, err := wire.LoadFile(flag.Arg(0), 0)
	fatal(err)
	if diags := ir.VerifyModuleLevel(mod, level); len(diags) > 0 {
		fatal(fmt.Errorf("input fails verification:\n%s", ir.FormatVerifyDiags(diags)))
	}
	passes.DemotePhisModule(mod)

	f1 := mod.FuncByName(*name1)
	f2 := mod.FuncByName(*name2)
	if f1 == nil || f2 == nil {
		fatal(fmt.Errorf("functions %q / %q not found", *name1, *name2))
	}
	if f1.IsDecl() || f2.IsDecl() {
		fatal(fmt.Errorf("both functions must be definitions"))
	}

	seq1 := linearize.Linearize(f1)
	seq2 := linearize.Linearize(f2)
	eq := func(i, j int) bool { return core.EntriesEquivalent(seq1[i], seq2[j]) }
	steps := align.DecomposeMismatches(
		align.Align(len(seq1), len(seq2), eq, align.DefaultScoring))

	fmt.Print(Render(steps, seq1, seq2, *width, f1.Name(), f2.Name()))
}

// Render builds the two-column alignment listing.
func Render(steps []align.Step, seq1, seq2 []linearize.Entry, width int, h1, h2 string) string {
	nm1, nm2 := ir.NewNamer(), ir.NewNamer()
	var sb strings.Builder
	cell := func(s string) string {
		if len(s) > width {
			return s[:width-1] + "…"
		}
		return s + strings.Repeat(" ", width-len(s))
	}
	describe := func(e linearize.Entry, nm *ir.Namer) string {
		if e.IsLabel() {
			return nm.Label(e.Block) + ":"
		}
		return "  " + nm.Inst(e.Inst)
	}

	fmt.Fprintf(&sb, "%s | %s\n", cell("@"+h1), cell("@"+h2))
	fmt.Fprintf(&sb, "%s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", width))
	matched, gaps := 0, 0
	for _, s := range steps {
		switch s.Op {
		case align.OpMatch:
			matched++
			fmt.Fprintf(&sb, "%s = %s\n",
				cell(describe(seq1[s.I], nm1)), cell(describe(seq2[s.J], nm2)))
		case align.OpGapA:
			gaps++
			fmt.Fprintf(&sb, "%s <\n", cell(describe(seq1[s.I], nm1)))
		case align.OpGapB:
			gaps++
			fmt.Fprintf(&sb, "%s > %s\n", cell(""), cell(describe(seq2[s.J], nm2)))
		}
	}
	fmt.Fprintf(&sb, "%s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", width))
	total := len(seq1) + len(seq2)
	fmt.Fprintf(&sb, "%d matched columns (shared), %d divergent entries, %.0f%% of %d entries mergeable\n",
		matched, gaps, 100*float64(2*matched)/float64(total), total)
	return sb.String()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmsa-diff:", err)
		os.Exit(1)
	}
}
