// Command fmsa-diff renders the sequence alignment between two functions
// side by side — the paper's Fig. 5 view. Matched entries appear in both
// columns, entries unique to one function appear alone, making it easy to
// see exactly what the merger would share and what it would guard.
//
//	fmsa-diff -f1 glist_add_float32 -f2 glist_add_float64 module.ll
//
// With -summary, the argument is a binary .fmsum stream (fmsa-gen -summary)
// and the tool prints its round-1 function-summary table — one row per
// function with the stable hash and the flags the cross-TU planner keys on:
//
//	fmsa-diff -summary out/462_libquantum.fmsum
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fmsa/internal/align"
	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
	"fmsa/internal/wire"
)

func main() {
	var (
		name1   = flag.String("f1", "", "first function")
		name2   = flag.String("f2", "", "second function")
		width   = flag.Int("w", 46, "column width")
		verify  = flag.String("verify", "full", "IR verification level after loading: off, fast or full")
		summary = flag.Bool("summary", false, "print the round-1 function-summary table of a .fmsum file")
	)
	flag.Parse()
	if *summary {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: fmsa-diff -summary corpus.fmsum")
			flag.Usage()
			os.Exit(2)
		}
		printSummary(flag.Arg(0))
		return
	}
	if flag.NArg() != 1 || *name1 == "" || *name2 == "" {
		fmt.Fprintln(os.Stderr, "usage: fmsa-diff -f1 <name> -f2 <name> module.{ll,fmir}")
		flag.Usage()
		os.Exit(2)
	}

	level, err := ir.ParseVerifyLevel(*verify)
	fatal(err)

	// Accepts textual IR or binary fmir, sniffed by magic bytes.
	mod, err := wire.LoadFile(flag.Arg(0), 0)
	fatal(err)
	if diags := ir.VerifyModuleLevel(mod, level); len(diags) > 0 {
		fatal(fmt.Errorf("input fails verification:\n%s", ir.FormatVerifyDiags(diags)))
	}
	passes.DemotePhisModule(mod)

	f1 := mod.FuncByName(*name1)
	f2 := mod.FuncByName(*name2)
	if f1 == nil || f2 == nil {
		fatal(fmt.Errorf("functions %q / %q not found", *name1, *name2))
	}
	if f1.IsDecl() || f2.IsDecl() {
		fatal(fmt.Errorf("both functions must be definitions"))
	}

	seq1 := linearize.Linearize(f1)
	seq2 := linearize.Linearize(f2)
	eq := func(i, j int) bool { return core.EntriesEquivalent(seq1[i], seq2[j]) }
	steps := align.DecomposeMismatches(
		align.Align(len(seq1), len(seq2), eq, align.DefaultScoring))

	fmt.Print(Render(steps, seq1, seq2, *width, f1.Name(), f2.Name()))
}

// Render builds the two-column alignment listing.
func Render(steps []align.Step, seq1, seq2 []linearize.Entry, width int, h1, h2 string) string {
	nm1, nm2 := ir.NewNamer(), ir.NewNamer()
	var sb strings.Builder
	cell := func(s string) string {
		if len(s) > width {
			return s[:width-1] + "…"
		}
		return s + strings.Repeat(" ", width-len(s))
	}
	describe := func(e linearize.Entry, nm *ir.Namer) string {
		if e.IsLabel() {
			return nm.Label(e.Block) + ":"
		}
		return "  " + nm.Inst(e.Inst)
	}

	fmt.Fprintf(&sb, "%s | %s\n", cell("@"+h1), cell("@"+h2))
	fmt.Fprintf(&sb, "%s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", width))
	matched, gaps := 0, 0
	for _, s := range steps {
		switch s.Op {
		case align.OpMatch:
			matched++
			fmt.Fprintf(&sb, "%s = %s\n",
				cell(describe(seq1[s.I], nm1)), cell(describe(seq2[s.J], nm2)))
		case align.OpGapA:
			gaps++
			fmt.Fprintf(&sb, "%s <\n", cell(describe(seq1[s.I], nm1)))
		case align.OpGapB:
			gaps++
			fmt.Fprintf(&sb, "%s > %s\n", cell(""), cell(describe(seq2[s.J], nm2)))
		}
	}
	fmt.Fprintf(&sb, "%s-+-%s\n", strings.Repeat("-", width), strings.Repeat("-", width))
	total := len(seq1) + len(seq2)
	fmt.Fprintf(&sb, "%d matched columns (shared), %d divergent entries, %.0f%% of %d entries mergeable\n",
		matched, gaps, 100*float64(2*matched)/float64(total), total)
	return sb.String()
}

// printSummary renders a .fmsum stream as per-unit tables: one row per
// function summary, with the planner-relevant flags spelled out.
func printSummary(path string) {
	data, err := os.ReadFile(path)
	fatal(err)
	name, tus, err := wire.DecodeSummaries(data)
	fatal(err)
	fmt.Printf("corpus %s: %d translation units\n", name, len(tus))
	for _, tu := range tus {
		fmt.Printf("\nunit %s (%d functions)\n", tu.Name, len(tu.Funcs))
		fmt.Printf("  %-28s %-16s %5s  %s\n", "function", "stable hash", "insts", "flags")
		for _, fs := range tu.Funcs {
			fmt.Printf("  %-28s %016x %5d  %s\n", fs.Name, fs.Hash, fs.Size, summaryFlags(fs))
		}
	}
}

// summaryFlags spells out one summary's linkage and flag bits.
func summaryFlags(fs wire.FuncSummary) string {
	var parts []string
	if fs.Linkage == ir.InternalLinkage {
		parts = append(parts, "internal")
	}
	for _, f := range []struct {
		bit  byte
		name string
	}{
		{wire.SumSelfEq, "selfeq"},
		{wire.SumUsesGlobals, "uses-globals"},
		{wire.SumUsesInternal, "uses-internal"},
		{wire.SumVariadic, "variadic"},
	} {
		if fs.Flags&f.bit != 0 {
			parts = append(parts, f.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fmsa-diff:", err)
		os.Exit(1)
	}
}
