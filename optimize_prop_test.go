package fmsa_test

// Facade-level semantic property: Optimize never changes what the program
// computes, for any technique, threshold and target, across randomized
// clone-rich modules.

import (
	"testing"

	"fmsa"

	"fmsa/internal/interp"
	"fmsa/internal/workload"
)

func runDriver(t *testing.T, m *fmsa.Module) uint64 {
	t.Helper()
	mc := fmsa.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	v, err := mc.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOptimizePreservesSemanticsProperty(t *testing.T) {
	configs := []fmsa.Options{
		{Technique: fmsa.TechniqueIdentical},
		{Technique: fmsa.TechniqueSOA},
		{Technique: fmsa.TechniqueFMSA, Threshold: 1},
		{Technique: fmsa.TechniqueFMSA, Threshold: 5, Target: "thumb"},
		{Technique: fmsa.TechniqueFMSA, Threshold: 3, Oracle: true},
	}
	for seed := int64(100); seed < 106; seed++ {
		p := workload.Profile{
			Name: "prop", NumFuncs: 18, AvgSize: 26, MaxSize: 90,
			Identical: 0.12, ConstVar: 0.06, TypeVar: 0.12, CFGVar: 0.1, Partial: 0.08,
			InternalFrac: 0.65, Seed: seed,
		}
		want := runDriver(t, workload.Build(p))
		for _, cfg := range configs {
			m := workload.Build(p)
			rep, err := fmsa.Optimize(m, cfg)
			if err != nil {
				t.Fatalf("seed %d %+v: %v", seed, cfg, err)
			}
			if err := fmsa.Verify(m); err != nil {
				t.Fatalf("seed %d %+v: verify: %v", seed, cfg, err)
			}
			if got := runDriver(t, m); got != want {
				t.Fatalf("seed %d %+v: output changed %d -> %d (%d merges)",
					seed, cfg, want, got, rep.MergeOps)
			}
		}
	}
}

// TestInterpDeterminism pins that repeated runs of the same module produce
// identical dynamic statistics (the basis of the Fig. 14 measurements).
func TestInterpDeterminism(t *testing.T) {
	p := workload.Profile{
		Name: "det", NumFuncs: 10, AvgSize: 24, MaxSize: 70,
		TypeVar: 0.2, InternalFrac: 0.5, Seed: 8,
	}
	stats := func() interp.Stats {
		m := workload.Build(p)
		mc := fmsa.NewMachine(m)
		workload.RegisterIntrinsics(mc)
		if _, err := mc.Run("main"); err != nil {
			t.Fatal(err)
		}
		return mc.Stats()
	}
	a, b := stats(), stats()
	if a != b {
		t.Errorf("dynamic stats differ across identical runs: %+v vs %+v", a, b)
	}
}
