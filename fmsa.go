// Package fmsa is a self-contained Go implementation of "Function Merging
// by Sequence Alignment" (Rocha, Petoumenos, Wang, Cole, Leather — CGO
// 2019): a code-size optimization that merges arbitrary pairs of similar
// functions — even with different signatures and control-flow graphs — by
// linearizing them, aligning the sequences with Needleman–Wunsch, and
// generating a combined function whose divergent regions are guarded by a
// function-identifier parameter.
//
// The package exposes the high-level surface:
//
//   - ParseModule / FormatModule: the textual IR the optimizer operates on;
//   - Merge: merge one pair of functions and inspect the result;
//   - Optimize: run a whole-module merging pipeline (the paper's Fig. 7
//     exploration framework, or one of the two baseline techniques);
//   - Verify and Interpret helpers for validating and executing modules.
//
// The underlying building blocks (IR, alignment, cost models, baselines,
// workload generators and experiment harnesses) live in internal/ packages;
// the cmd/ tools and examples/ programs demonstrate them end to end.
package fmsa

import (
	"fmt"

	"fmsa/internal/baseline"
	"fmsa/internal/core"
	"fmsa/internal/explore"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/passes"
	"fmsa/internal/simdb"
	"fmsa/internal/tti"
)

// Re-exported IR surface. These aliases make the optimizer usable without
// reaching into internal packages.
type (
	// Module is a translation unit of the textual IR.
	Module = ir.Module
	// Func is a function definition or declaration.
	Func = ir.Func
	// MergeResult describes one merged pair (see Merge).
	MergeResult = core.Result
	// Report summarizes a whole-module optimization run.
	Report = explore.Report
	// Machine executes modules (differential testing, profiling).
	Machine = interp.Machine
)

// ParseModule parses textual IR (see FormatModule for the syntax).
func ParseModule(name, src string) (*Module, error) {
	return ir.ParseModule(name, src)
}

// FormatModule renders a module in the textual IR format.
func FormatModule(m *Module) string { return ir.FormatModule(m) }

// Verify checks the module's structural and type invariants.
func Verify(m *Module) error { return ir.VerifyModule(m) }

// NewMachine builds an interpreter for the module.
func NewMachine(m *Module) *Machine { return interp.NewMachine(m) }

// Merge merges two functions by sequence alignment (paper §III) with
// default options and returns the uncommitted result. Call
// (*MergeResult).Profit to evaluate the cost model, (*MergeResult).Commit
// to install the merged function and rewrite callers, or
// (*MergeResult).Discard to abandon it. Inputs must be φ-free; use
// DemotePhis first if needed.
func Merge(f1, f2 *Func) (*MergeResult, error) {
	return core.Merge(f1, f2, core.DefaultOptions())
}

// DemotePhis rewrites φ-functions into memory operations, the pre-processing
// the merger requires (§III-A).
func DemotePhis(m *Module) { passes.DemotePhisModule(m) }

// Technique selects a whole-module merging strategy for Optimize.
type Technique string

// Techniques accepted by Optimize.
const (
	// TechniqueIdentical folds structurally identical functions (LLVM's
	// MergeFunctions).
	TechniqueIdentical Technique = "identical"
	// TechniqueSOA is the LCTES'14 state of the art: identical signatures
	// and isomorphic CFGs only, run after identical folding.
	TechniqueSOA Technique = "soa"
	// TechniqueFMSA is the paper's contribution, run after identical
	// folding.
	TechniqueFMSA Technique = "fmsa"
)

// Options configures Optimize. The zero value selects FMSA with the
// paper's defaults (threshold 1, Intel-like target).
type Options struct {
	// Technique selects the merging strategy (default TechniqueFMSA).
	Technique Technique
	// Threshold is FMSA's exploration threshold t (default 1).
	Threshold int
	// Target names the code-size cost model: "x86-64" (default) or
	// "thumb".
	Target string
	// Oracle replaces ranking with exhaustive exploration.
	Oracle bool
	// MaxHotness, when positive, excludes functions with a higher profile
	// weight from merging (profile-guided mode, §V-D).
	MaxHotness uint64
	// Workers bounds the goroutines used by FMSA's exploration pipeline
	// (fingerprinting, ranking, speculative candidate evaluation). Zero
	// uses all available cores; one runs fully serial. The optimized
	// module and the report are identical for every value.
	Workers int
	// Ranking selects FMSA's candidate ranking: "" or "exact" (the paper's
	// quadratic pool scan), or "lsh" (a sub-quadratic banded MinHash index;
	// deterministic across Workers, though its rankings may differ from
	// exact where the index misses a candidate). Small modules fall back to
	// the exact scan.
	Ranking string
	// Audit selects merge auditing: "" or "off" (none, the default),
	// "committed" (statically audit every committed merge and record
	// diagnostics in the report), or "deep" (additionally escalate flagged
	// merges to differential execution and reject confirmed miscompiles).
	// Only TechniqueFMSA audits; the baselines have no merge bodies to
	// check.
	Audit string
	// AlignKernel selects FMSA's alignment kernel: "" or "coded" (interned
	// equivalence codes, flat integer inner loops — the default), or
	// "closure" (the per-cell equivalence-predicate kernels). Both produce
	// bit-identical merges; closure exists as the cross-check reference.
	AlignKernel string
	// NoSeqCache disables the per-function linearization+encoding cache and
	// NoAlignMemo the alignment-result memo. Both caches are semantically
	// invisible — results are identical either way — and exist to be turned
	// off only for measurement and debugging.
	NoSeqCache  bool
	NoAlignMemo bool
	// NoBound disables pre-codegen profitability bounding. Bounding never
	// changes the optimized module — it only skips materializing merge
	// candidates the cost model would reject — so this too exists only for
	// measurement and debugging.
	NoBound bool
	// Verify selects the opt-in IR verification gates inside FMSA's
	// exploration pipeline: "" or "off" (none, the default), "fast"
	// (structural checks on every committed merge and the final module), or
	// "full" (additionally types, phi/pred correspondence, dominance and
	// use-list consistency). Verification is recording-only — findings land
	// in Report.VerifyDiags and never change merge decisions. Only
	// TechniqueFMSA verifies.
	Verify string
	// Store, when non-nil, backs the run with a persistent similarity
	// database (internal/simdb): fingerprints and MinHash signatures of
	// unchanged functions are reused from the store instead of recomputed,
	// and this run's state is written back for the next one. Results are
	// bit-identical with or without a store. Only TechniqueFMSA uses it,
	// and not in Oracle mode (the exploration runs as a one-shot
	// explore.Session, which rejects oracle exploration).
	Store *simdb.Store
}

// Optimize runs a whole-module function-merging pipeline in place and
// reports what happened.
func Optimize(m *Module, opts Options) (*Report, error) {
	target := tti.ByName(opts.Target)
	if opts.Target == "" {
		target = tti.X86{}
	}
	if target == nil {
		return nil, fmt.Errorf("fmsa: unknown target %q", opts.Target)
	}
	switch opts.Technique {
	case TechniqueIdentical:
		return baseline.RunIdentical(m, target), nil
	case TechniqueSOA:
		rep := baseline.RunIdentical(m, target)
		rep.Add(baseline.RunSOA(m, target))
		return rep, nil
	case TechniqueFMSA, "":
		audit, err := explore.ParseAuditMode(opts.Audit)
		if err != nil {
			return nil, fmt.Errorf("fmsa: %w", err)
		}
		ranking, err := explore.ParseRankingMode(opts.Ranking)
		if err != nil {
			return nil, fmt.Errorf("fmsa: %w", err)
		}
		kernel, err := explore.ParseKernelMode(opts.AlignKernel)
		if err != nil {
			return nil, fmt.Errorf("fmsa: %w", err)
		}
		verify, err := ir.ParseVerifyLevel(opts.Verify)
		if err != nil {
			return nil, fmt.Errorf("fmsa: %w", err)
		}
		rep := baseline.RunIdentical(m, target)
		eopts := explore.DefaultOptions()
		eopts.Target = target
		if opts.Threshold > 0 {
			eopts.Threshold = opts.Threshold
		}
		eopts.Oracle = opts.Oracle
		eopts.MaxHotness = opts.MaxHotness
		eopts.Workers = opts.Workers
		eopts.Audit = audit
		eopts.Ranking = ranking
		eopts.Kernel = kernel
		eopts.NoSeqCache = opts.NoSeqCache
		eopts.NoAlignMemo = opts.NoAlignMemo
		eopts.NoBound = opts.NoBound
		eopts.Verify = verify
		if opts.Store != nil {
			sess, err := explore.NewSession(explore.SessionConfig{
				Explore: eopts, Store: opts.Store,
			})
			if err != nil {
				return nil, fmt.Errorf("fmsa: %w", err)
			}
			srep, _, err := sess.Submit(m)
			if err != nil {
				return nil, fmt.Errorf("fmsa: %w", err)
			}
			rep.Add(srep)
			return rep, nil
		}
		rep.Add(explore.Run(m, eopts))
		return rep, nil
	default:
		return nil, fmt.Errorf("fmsa: unknown technique %q", opts.Technique)
	}
}

// ModuleSize estimates the module's object-code size in bytes under the
// named target's cost model.
func ModuleSize(m *Module, targetName string) (int, error) {
	target := tti.ByName(targetName)
	if targetName == "" {
		target = tti.X86{}
	}
	if target == nil {
		return 0, fmt.Errorf("fmsa: unknown target %q", targetName)
	}
	return tti.ModuleSize(target, m), nil
}
