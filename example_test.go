package fmsa_test

import (
	"fmt"

	"fmsa"
)

// ExampleMerge merges two nearly identical functions and prints what the
// alignment found.
func ExampleMerge() {
	mod, _ := fmsa.ParseModule("demo", `
define internal i64 @scale10(i64 %x) {
entry:
  %r = mul i64 %x, 10
  ret i64 %r
}

define internal i64 @scale100(i64 %x) {
entry:
  %r = mul i64 %x, 100
  ret i64 %r
}

define i64 @use(i64 %x) {
entry:
  %a = call i64 @scale10(i64 %x)
  %b = call i64 @scale100(i64 %a)
  ret i64 %b
}
`)
	res, _ := fmsa.Merge(mod.FuncByName("scale10"), mod.FuncByName("scale100"))
	fmt.Printf("matched %d columns, %d selects\n", res.Stats.MatchedColumns, res.Stats.Selects)
	res.Commit()

	mc := fmsa.NewMachine(mod)
	v, _ := mc.Run("use", 3)
	fmt.Printf("use(3) = %d\n", v)
	// Output:
	// matched 3 columns, 1 selects
	// use(3) = 3000
}

// ExampleOptimize runs the whole-module pipeline.
func ExampleOptimize() {
	mod, _ := fmsa.ParseModule("demo", `
define internal i32 @dup1(i32 %x) {
entry:
  %r = add i32 %x, 7
  ret i32 %r
}

define internal i32 @dup2(i32 %x) {
entry:
  %r = add i32 %x, 7
  ret i32 %r
}

define i32 @use(i32 %x) {
entry:
  %a = call i32 @dup1(i32 %x)
  %b = call i32 @dup2(i32 %a)
  ret i32 %b
}
`)
	rep, _ := fmsa.Optimize(mod, fmsa.Options{Technique: fmsa.TechniqueFMSA, Threshold: 10})
	fmt.Printf("merges: %d, removed: %d\n", rep.MergeOps, rep.FullyRemoved)

	mc := fmsa.NewMachine(mod)
	v, _ := mc.Run("use", 1)
	fmt.Printf("use(1) = %d\n", v)
	// Output:
	// merges: 1, removed: 1
	// use(1) = 15
}
