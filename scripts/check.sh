#!/bin/sh
# Tier-1 gate suite. Each gate is named, individually timed, and fails the
# run on first breakage with the gate name in the failure line.
#
# What the gates enforce:
#  - vet/build: the usual compiler-visible hygiene.
#  - lint: the repo linter's analyzer registry (use-list locking, pool
#    get/put pairing, map-range ordering, wall-clock purity, goroutine
#    captures); lint-registry first asserts the expected analyzers exist.
#  - race-tests: the full suite under the race detector — the parallel
#    exploration pipeline must stay deterministic and data-race-free.
#  - audit-corpus: the static merge auditor reports zero diagnostics across
#    the whole workload corpus; any finding is a merger bug or an auditor
#    false positive, and both block.
#  - fuzz-roundtrip / fuzz-decode-verify: short smoke-fuzz of the textual
#    parse/print round trip and of the wire decoder + staged IR verifier
#    (the decoder must never accept a module the verifier rejects).
#  - verify-sweep: the staged verifier finds zero diagnostics at every
#    pipeline boundary on the quick corpus, verification never changes
#    merge decisions, and the fast level stays within its overhead budget.
#  - rank/kernels/bound/ingest: the cross-check experiments (LSH recall,
#    kernel equivalence, bound admissibility, fmir ingest bit-identity).
#  - fuzz-stablehash: short smoke-fuzz of the cross-TU stable hash (hash
#    equality on self-comparable functions must imply structural equality,
#    and hashing must survive print->reparse).
#  - global: the sharded cross-TU experiment (bit-identity across shard
#    counts, .fmsum summary round trip, exact-scoring reduction floor).
#  - fuzz-serve-frame: short smoke-fuzz of the daemon frame codec (decode
#    must reject what it cannot re-encode byte-identically, and never
#    panic or over-read).
#  - serve: the warm merge-session daemon experiment in quick mode — a
#    load test over a live server (cold submit, warm delta resubmission,
#    stream latency, warm/cold bit-identity across worker counts,
#    admission backpressure, graceful drain). The 5x warm-speedup floor
#    applies to the full-size run (fmsa-bench -exp serve), not quick mode.
#  - fuzz-simdb: short smoke-fuzz of the fmdb segment walker (corrupt or
#    truncated segments must error, never panic or over-read, and accepted
#    input must walk->encode->walk losslessly).
#  - simdb: the persistent similarity database experiment in quick mode —
#    store-backed startup vs full rebuild, probe answers checked against a
#    from-scratch index, merge-decision bit-identity across worker counts
#    on a shared segment. The 3x startup-speedup floor applies to the
#    full-size run (fmsa-bench -exp simdb), not quick mode.
#
# Run this before every commit that touches internal/explore, internal/ir,
# internal/align, internal/encode, internal/core, internal/analysis or
# internal/wire.
set -eu

cd "$(dirname "$0")/.."

# gate <name> <cmd...>: run one named section, timed, fail fast.
gate() {
    name="$1"
    shift
    echo "=== gate: $name ==="
    start=$(date +%s)
    if ! "$@"; then
        echo "=== gate FAILED: $name ($*) ===" >&2
        exit 1
    fi
    echo "=== gate ok: $name ($(($(date +%s) - start))s) ==="
}

check_registry() {
    got=$(go run ./scripts/lint -list | awk '{print $1}' | tr '\n' ' ')
    want="uselist poolpair maprange walltime goloopcapture "
    if [ "$got" != "$want" ]; then
        echo "lint registry mismatch: got '$got', want '$want'" >&2
        return 1
    fi
}

gate vet                go vet ./...
gate build              go build ./...
gate lint-registry      check_registry
gate lint               go run ./scripts/lint
gate race-tests         go test -race ./...
gate audit-corpus       go test -run 'TestAuditCleanCorpus' -count=1 ./internal/explore/
gate fuzz-roundtrip     go test -run '^$' -fuzz 'FuzzRoundTrip' -fuzztime 10s ./internal/ir/
gate fuzz-decode-verify go test -run '^$' -fuzz 'FuzzDecodeVerify' -fuzztime 10s ./internal/wire/
gate fuzz-stablehash    go test -run '^$' -fuzz 'FuzzStableHash' -fuzztime 10s ./internal/global/
gate verify-sweep       go run ./cmd/fmsa-bench -exp verify -quick -runs 3
gate rank               go run ./cmd/fmsa-bench -exp rank -quick
gate kernels            go run ./cmd/fmsa-bench -exp kernels -quick
gate bound              go run ./cmd/fmsa-bench -exp bound -quick
gate ingest             go run ./cmd/fmsa-bench -exp ingest -quick
gate global             go run ./cmd/fmsa-bench -exp global -quick
gate fuzz-serve-frame   go test -run '^$' -fuzz 'FuzzServeFrame' -fuzztime 10s ./internal/wire/
gate serve              go run ./cmd/fmsa-bench -exp serve -quick
gate fuzz-simdb         go test -run '^$' -fuzz 'FuzzSimDBSegment' -fuzztime 10s ./internal/wire/
gate simdb              go run ./cmd/fmsa-bench -exp simdb -quick

echo "all gates passed"
