#!/bin/sh
# Tier-1 gate: vet + build + repo linter + race-enabled suite + merge-audit
# sweep. The parallel exploration pipeline must stay deterministic and
# data-race-free; the concurrency invariants the compiler cannot see
# (use-list locking, pool get/put pairing) are enforced by scripts/lint;
# and the static merge auditor must report zero diagnostics across the
# whole workload corpus — any finding is either a merger bug or an auditor
# false positive, and both block; the LSH candidate-ranking index must
# keep >= 95% top-1 recall against the exact scan (-exp rank -quick);
# the coded alignment kernel (caches on) must commit bit-identical merges
# to the closure reference kernel (caches off) on every quick corpus
# (-exp kernels -quick); and pre-codegen profitability bounding must be
# decision-invisible — bit-identical merges with pruning on vs off, and
# zero audited pairs whose exact profit exceeds their bound
# (-exp bound -quick); binary fmir ingest must commit bit-identical merges
# and final module text to text ingest on every quick corpus
# (-exp ingest -quick), with the parse/print/encode/decode round trip also
# smoke-fuzzed for 10 seconds.
# Run this before every commit that touches internal/explore, internal/ir,
# internal/align, internal/encode, internal/core, internal/analysis or
# internal/wire.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go run ./scripts/lint
go test -race ./...
go test -run 'TestAuditCleanCorpus' -count=1 ./internal/explore/
go test -run '^$' -fuzz 'FuzzRoundTrip' -fuzztime 10s ./internal/ir/
go run ./cmd/fmsa-bench -exp rank -quick
go run ./cmd/fmsa-bench -exp kernels -quick
go run ./cmd/fmsa-bench -exp bound -quick
go run ./cmd/fmsa-bench -exp ingest -quick
