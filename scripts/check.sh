#!/bin/sh
# Tier-1 gate plus the race-enabled suite. The parallel exploration
# pipeline must stay deterministic and data-race-free; run this before
# every commit that touches internal/explore, internal/ir or
# internal/align.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
