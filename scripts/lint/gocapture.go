package main

// Analyzer "goloopcapture": two goroutine-capture hazards the compiler and
// race detector only catch when the schedule cooperates.
//
// First, a goroutine closure that captures a pooled buffer (a variable bound
// from a <name>Pool.Get or a pool-getter call) races against the buffer's
// release: once the launching function Puts it back, the pool may hand the
// same backing array to another goroutine. Pooled buffers must be handed to
// goroutines explicitly (as arguments, transferring the release obligation),
// never captured.
//
// Second, a goroutine closure inside a loop that captures a variable the
// loop body reassigns (`v = ...` on a variable declared outside the loop)
// reads whatever iteration the scheduler lands on. Go 1.22 made `:=` loop
// variables per-iteration, but manual reassignment reintroduces exactly the
// old sharing bug.

import (
	"fmt"
	"go/ast"
	"go/token"
)

// lintGoCapture checks one package directory.
func lintGoCapture(dir string) []string {
	fset := token.NewFileSet()
	var decls []*ast.FuncDecl
	for _, f := range parseDir(fset, dir) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	getters, _ := classifyPoolFuncs(decls)

	var bad []string
	for _, fd := range decls {
		pooled := gotVars(fd, getters)
		var loops []*ast.BlockStmt
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch x := n.(type) {
			case *ast.ForStmt:
				walkChildren(x.Init, walk)
				walkChildren(x.Cond, walk)
				walkChildren(x.Post, walk)
				loops = append(loops, x.Body)
				walkChildren(x.Body, walk)
				loops = loops[:len(loops)-1]
				return
			case *ast.RangeStmt:
				walkChildren(x.X, walk)
				loops = append(loops, x.Body)
				walkChildren(x.Body, walk)
				loops = loops[:len(loops)-1]
				return
			case *ast.GoStmt:
				lit, ok := x.Call.Fun.(*ast.FuncLit)
				if !ok {
					break
				}
				for v := range freeIdents(lit) {
					if pool, isPooled := pooled[v]; isPooled {
						bad = append(bad, fmt.Sprintf("%s: %s: goroutine captures pooled buffer %q from %s (pass it as an argument instead)",
							fset.Position(x.Pos()), fd.Name.Name, v, pool))
					} else if len(loops) > 0 && reassignedOutsideLit(loops[len(loops)-1], lit, v) {
						bad = append(bad, fmt.Sprintf("%s: %s: goroutine captures %q, reassigned by the enclosing loop",
							fset.Position(x.Pos()), fd.Name.Name, v))
					}
				}
			}
			walkChildren(n, walk)
		}
		walk(fd.Body)
	}
	return sortedStrings(bad)
}

// walkChildren applies walk to each direct child of n (nil-safe).
func walkChildren(n ast.Node, walk func(ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		walk(c)
		return false
	})
}

// freeIdents approximates the identifiers a function literal captures from
// its environment: every referenced name not declared inside the literal,
// excluding selector members and composite-literal field keys.
func freeIdents(lit *ast.FuncLit) map[string]bool {
	declared := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				declared[n.Name] = true
			}
		}
	}
	addFields(lit.Type.Params)
	addFields(lit.Type.Results)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for _, l := range x.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		case *ast.RangeStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			if id, ok := x.Key.(*ast.Ident); ok {
				declared[id.Name] = true
			}
			if id, ok := x.Value.(*ast.Ident); ok {
				declared[id.Name] = true
			}
		case *ast.ValueSpec:
			for _, n := range x.Names {
				declared[n.Name] = true
			}
		}
		return true
	})
	skip := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			skip[x.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	free := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !skip[id] && !declared[id.Name] {
			free[id.Name] = true
		}
		return true
	})
	return free
}

// reassignedOutsideLit reports whether the loop body plain-assigns (`=`) to
// the named variable somewhere outside the given function literal — the
// shared-variable shape that makes capturing it in a goroutine racy.
func reassignedOutsideLit(body *ast.BlockStmt, lit *ast.FuncLit, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n == ast.Node(lit) {
			return false // assignments inside the goroutine are its own business
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}

// sortedStrings returns the findings in deterministic order — the linter
// must satisfy its own determinism bar.
func sortedStrings(in []string) []string {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j] < in[j-1]; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
	return in
}
