package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintRepoIsClean(t *testing.T) {
	root := "../.."
	for _, a := range analyzers {
		if bad := a.run(root); len(bad) != 0 {
			t.Errorf("%s lint on the repo: %v", a.name, bad)
		}
	}
}

func TestLintUseListMutation(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "value.go", `package ir
type usable struct{ uses []int }
func (u *usable) addUse(x int) { u.uses = append(u.uses, x) }
`)
	write(t, dir, "rogue.go", `package ir
func rogue(u *usable) {
	u.addUse(1)
	u.uses = nil
	_ = &u.uses
}
func reader(u *usable) int { return len(u.uses) }
`)
	bad := lintUseLists(dir)
	if len(bad) != 3 {
		t.Fatalf("want 3 violations (call, assign, address-of), got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b, "rogue.go") {
			t.Errorf("violation outside rogue.go: %s", b)
		}
	}
}

func TestLintPoolPairing(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var bufPool sync.Pool
func getBuf(n int) []byte {
	if p, ok := bufPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}
func putBuf(s []byte) { bufPool.Put(&s) }
`)
	// ok.go: paired, handed off, and transitively handed off uses.
	write(t, dir, "ok.go", `package p
func paired() {
	b := getBuf(8)
	_ = b
	putBuf(b)
}
func handoff() []byte {
	b := getBuf(8)
	return b[:4]
}
func transitive() {
	b := handoff()
	putBuf(b)
}
`)
	if bad := lintPools(dir); len(bad) != 0 {
		t.Fatalf("clean package flagged: %v", bad)
	}

	// leak.go: a get with neither put nor return.
	write(t, dir, "leak.go", `package p
func leak() int {
	b := getBuf(8)
	return len(b)
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "leak") {
		t.Fatalf("want 1 leak violation, got: %v", bad)
	}
}

// TestLintPoolCodedKernelShape mirrors the coded alignment kernels' scratch
// usage — several buffers from distinct pools in one function — and checks a
// single missing put among them is still flagged.
func TestLintPoolCodedKernelShape(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var rowPool, dirPool sync.Pool
func getRow(n int) []int32 {
	if p, ok := rowPool.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}
func putRow(s []int32) { rowPool.Put(&s) }
func getDirs(n int) []byte {
	if p, ok := dirPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}
func putDirs(s []byte) { dirPool.Put(&s) }
`)
	write(t, dir, "kernel.go", `package p
func kernelOK(n, m int) []int {
	prev := getRow(m + 1)
	cur := getRow(m + 1)
	dirs := getDirs((n + 1) * (m + 1))
	out := make([]int, 0)
	putRow(prev)
	putRow(cur)
	putDirs(dirs)
	return out
}
func kernelLeaky(n, m int) []int {
	prev := getRow(m + 1)
	cur := getRow(m + 1)
	dirs := getDirs((n + 1) * (m + 1))
	out := make([]int, 0)
	putRow(prev)
	putDirs(dirs)
	_ = cur
	return out
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "kernelLeaky") || !strings.Contains(bad[0], `"cur"`) {
		t.Fatalf("want exactly the kernelLeaky cur leak, got: %v", bad)
	}
}

// TestLintPoolFieldHandoff mirrors the merger-scratch shape: a pooled value
// parked in a struct field is a hand-off (the owner releases it later), but
// a get that neither puts, returns nor parks is still a leak.
func TestLintPoolFieldHandoff(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var scratchPool sync.Pool
type scratch struct{ m map[int]int }
type result struct{ sc *scratch }
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	return s
}
func putScratch(s *scratch) { scratchPool.Put(s) }
`)
	write(t, dir, "ok.go", `package p
func parked() *result {
	sc := getScratch()
	res := &result{}
	res.sc = sc
	return res
}
func errorPathPaired(fail bool) *result {
	sc := getScratch()
	if fail {
		putScratch(sc)
		return nil
	}
	res := &result{}
	res.sc = sc
	return res
}
`)
	if bad := lintPools(dir); len(bad) != 0 {
		t.Fatalf("field hand-off flagged: %v", bad)
	}

	write(t, dir, "leak.go", `package p
func leaky() int {
	sc := getScratch()
	return len(sc.m)
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "leaky") {
		t.Fatalf("want 1 leak violation, got: %v", bad)
	}
}

func TestLintPoolDiscardedGet(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var bufPool sync.Pool
func discard() { bufPool.Get() }
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "discarded") {
		t.Fatalf("want 1 discarded-get violation, got: %v", bad)
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"uselist", "poolpair", "maprange", "walltime", "goloopcapture"}
	if len(analyzers) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(analyzers), len(want))
	}
	for i, a := range analyzers {
		if a.name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.name, want[i])
		}
		if a.doc == "" || a.run == nil {
			t.Errorf("analyzer %q missing doc or run", a.name)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	sel, err := selectAnalyzers(analyzers, "maprange,walltime", "")
	if err != nil || len(sel) != 2 || sel[0].name != "maprange" || sel[1].name != "walltime" {
		t.Fatalf("-only selection wrong: %v, err %v", names(sel), err)
	}
	sel, err = selectAnalyzers(analyzers, "", "poolpair")
	if err != nil || len(sel) != 4 {
		t.Fatalf("-skip selection wrong: %v, err %v", names(sel), err)
	}
	for _, a := range sel {
		if a.name == "poolpair" {
			t.Error("skipped analyzer still selected")
		}
	}
	if _, err := selectAnalyzers(analyzers, "nosuch", ""); err == nil {
		t.Error("unknown -only name not rejected")
	}
	if _, err := selectAnalyzers(analyzers, "", "nosuch"); err == nil {
		t.Error("unknown -skip name not rejected")
	}
	if _, err := selectAnalyzers(analyzers, "uselist", "uselist"); err == nil {
		t.Error("empty selection not rejected")
	}
}

func TestLintMapRange(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "bad.go", `package p
import "fmt"
func printUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
type fold struct{ leader string }
func foldsFromGroups(groups map[string][]string) []fold {
	// Summary-table shape: emitting plan entries straight out of a
	// hash-keyed group map leaks map order into the plan.
	var folds []fold
	for h, members := range groups {
		_ = members
		folds = append(folds, fold{leader: h})
	}
	return folds
}
type record struct{ hash uint64 }
func liveUnsorted(table map[uint64][]*record) []*record {
	// Store-table shape: flattening a hash-keyed record table straight into
	// a slice leaks map order into segment bytes.
	var all []*record
	for _, recs := range table {
		all = append(all, recs...)
	}
	return all
}
`)
	write(t, dir, "ok.go", `package p
import "sort"
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
func madeHere() map[int]bool {
	seen := make(map[int]bool)
	for k := range seen {
		delete(seen, k)
	}
	return seen
}
func overSlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
type fold struct{ leader string }
func foldsInFirstSeenOrder(order []string, groups map[string][]string) []fold {
	// The summary-table idiom internal/global uses: iterate a first-seen
	// order slice and look entries up in the map, never ranging over it.
	var folds []fold
	for _, h := range order {
		if len(groups[h]) > 1 {
			folds = append(folds, fold{leader: h})
		}
	}
	return folds
}
type record struct{ hash uint64 }
func liveSorted(table map[uint64][]*record) []*record {
	// The canonical-order idiom internal/simdb uses: collect the table,
	// then sort by content so the result is history-independent.
	all := make([]*record, 0, len(table))
	for _, recs := range table {
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].hash < all[j].hash })
	return all
}
`)
	bad := lintMapRange(dir)
	if len(bad) != 4 {
		t.Fatalf("want 4 violations (print, unsorted append, group-map append, record-table append), got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b, "bad.go") {
			t.Errorf("violation outside bad.go: %s", b)
		}
	}
}

func TestLintWallTime(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "bad.go", `package p
import (
	"math/rand"
	"time"
)
func stamp() int64 { return time.Now().UnixNano() }
func jitter() int  { return rand.Intn(3) }
func elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
`)
	write(t, dir, "ok.go", `package p
import "time"
func timeout() time.Duration { return 5 * time.Second }
func format(t0 time.Time) string { return t0.Format(time.RFC3339) }
`)
	bad := lintWallTime(dir)
	if len(bad) != 3 {
		t.Fatalf("want 3 violations (Now, Since, math/rand import), got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b, "bad.go") {
			t.Errorf("violation outside bad.go: %s", b)
		}
	}
}

func TestLintGoCapture(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var bufPool sync.Pool
func getBuf(n int) []byte {
	if p, ok := bufPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}
func putBuf(s []byte) { bufPool.Put(&s) }
`)
	write(t, dir, "bad.go", `package p
func capturesPooled(done chan struct{}) {
	buf := getBuf(8)
	go func() {
		buf[0] = 1
		close(done)
	}()
	<-done
	putBuf(buf)
}
func capturesReassigned(items [][]byte, done chan struct{}) {
	var cur []byte
	for _, it := range items {
		cur = it
		go func() {
			_ = cur[0]
			done <- struct{}{}
		}()
	}
}
`)
	write(t, dir, "ok.go", `package p
func passesAsArg(done chan struct{}) {
	buf := getBuf(8)
	go func(b []byte) {
		b[0] = 1
		putBuf(b)
		close(done)
	}(buf)
	<-done
}
func perIterationVar(items [][]byte, done chan struct{}) {
	for _, it := range items {
		go func() {
			_ = it[0]
			done <- struct{}{}
		}()
	}
}
func shadowedInside(done chan struct{}) {
	go func() {
		buf := getBuf(8)
		putBuf(buf)
		close(done)
	}()
	<-done
}
`)
	bad := lintGoCapture(dir)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations (pooled capture, reassigned capture), got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b, "bad.go") {
			t.Errorf("violation outside bad.go: %s", b)
		}
	}
}

func names(as []analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.name
	}
	return out
}
