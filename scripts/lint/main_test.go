package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintRepoIsClean(t *testing.T) {
	root := "../.."
	if bad := lintUseLists(filepath.Join(root, "internal", "ir")); len(bad) != 0 {
		t.Errorf("use-list lint on the repo: %v", bad)
	}
	for _, dir := range []string{"align", "linearize", "encode", "core"} {
		if bad := lintPools(filepath.Join(root, "internal", dir)); len(bad) != 0 {
			t.Errorf("pool lint on internal/%s: %v", dir, bad)
		}
	}
}

func TestLintUseListMutation(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "value.go", `package ir
type usable struct{ uses []int }
func (u *usable) addUse(x int) { u.uses = append(u.uses, x) }
`)
	write(t, dir, "rogue.go", `package ir
func rogue(u *usable) {
	u.addUse(1)
	u.uses = nil
	_ = &u.uses
}
func reader(u *usable) int { return len(u.uses) }
`)
	bad := lintUseLists(dir)
	if len(bad) != 3 {
		t.Fatalf("want 3 violations (call, assign, address-of), got %d: %v", len(bad), bad)
	}
	for _, b := range bad {
		if !strings.Contains(b, "rogue.go") {
			t.Errorf("violation outside rogue.go: %s", b)
		}
	}
}

func TestLintPoolPairing(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var bufPool sync.Pool
func getBuf(n int) []byte {
	if p, ok := bufPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}
func putBuf(s []byte) { bufPool.Put(&s) }
`)
	// ok.go: paired, handed off, and transitively handed off uses.
	write(t, dir, "ok.go", `package p
func paired() {
	b := getBuf(8)
	_ = b
	putBuf(b)
}
func handoff() []byte {
	b := getBuf(8)
	return b[:4]
}
func transitive() {
	b := handoff()
	putBuf(b)
}
`)
	if bad := lintPools(dir); len(bad) != 0 {
		t.Fatalf("clean package flagged: %v", bad)
	}

	// leak.go: a get with neither put nor return.
	write(t, dir, "leak.go", `package p
func leak() int {
	b := getBuf(8)
	return len(b)
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "leak") {
		t.Fatalf("want 1 leak violation, got: %v", bad)
	}
}

// TestLintPoolCodedKernelShape mirrors the coded alignment kernels' scratch
// usage — several buffers from distinct pools in one function — and checks a
// single missing put among them is still flagged.
func TestLintPoolCodedKernelShape(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var rowPool, dirPool sync.Pool
func getRow(n int) []int32 {
	if p, ok := rowPool.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}
func putRow(s []int32) { rowPool.Put(&s) }
func getDirs(n int) []byte {
	if p, ok := dirPool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}
func putDirs(s []byte) { dirPool.Put(&s) }
`)
	write(t, dir, "kernel.go", `package p
func kernelOK(n, m int) []int {
	prev := getRow(m + 1)
	cur := getRow(m + 1)
	dirs := getDirs((n + 1) * (m + 1))
	out := make([]int, 0)
	putRow(prev)
	putRow(cur)
	putDirs(dirs)
	return out
}
func kernelLeaky(n, m int) []int {
	prev := getRow(m + 1)
	cur := getRow(m + 1)
	dirs := getDirs((n + 1) * (m + 1))
	out := make([]int, 0)
	putRow(prev)
	putDirs(dirs)
	_ = cur
	return out
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "kernelLeaky") || !strings.Contains(bad[0], `"cur"`) {
		t.Fatalf("want exactly the kernelLeaky cur leak, got: %v", bad)
	}
}

// TestLintPoolFieldHandoff mirrors the merger-scratch shape: a pooled value
// parked in a struct field is a hand-off (the owner releases it later), but
// a get that neither puts, returns nor parks is still a leak.
func TestLintPoolFieldHandoff(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var scratchPool sync.Pool
type scratch struct{ m map[int]int }
type result struct{ sc *scratch }
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	return s
}
func putScratch(s *scratch) { scratchPool.Put(s) }
`)
	write(t, dir, "ok.go", `package p
func parked() *result {
	sc := getScratch()
	res := &result{}
	res.sc = sc
	return res
}
func errorPathPaired(fail bool) *result {
	sc := getScratch()
	if fail {
		putScratch(sc)
		return nil
	}
	res := &result{}
	res.sc = sc
	return res
}
`)
	if bad := lintPools(dir); len(bad) != 0 {
		t.Fatalf("field hand-off flagged: %v", bad)
	}

	write(t, dir, "leak.go", `package p
func leaky() int {
	sc := getScratch()
	return len(sc.m)
}
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "leaky") {
		t.Fatalf("want 1 leak violation, got: %v", bad)
	}
}

func TestLintPoolDiscardedGet(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "pool.go", `package p
import "sync"
var bufPool sync.Pool
func discard() { bufPool.Get() }
`)
	bad := lintPools(dir)
	if len(bad) != 1 || !strings.Contains(bad[0], "discarded") {
		t.Fatalf("want 1 discarded-get violation, got: %v", bad)
	}
}
