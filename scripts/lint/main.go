// Command lint enforces the repository's concurrency invariants that the
// compiler cannot check. It is stdlib-only (go/ast + go/parser, no type
// information) and is wired into scripts/check.sh.
//
// Invariant 1 — use-list confinement (internal/ir): the use lists behind
// the IR's def-use chains may be MUTATED only inside ir/value.go and
// ir/func.go. Function and global use lists are shared across goroutines
// during the parallel evaluation wave and are guarded by sharedUseMu in
// func.go; a mutation added anywhere else would bypass the lock. Reads of
// .uses elsewhere in the package are fine (block/inst/param lists are
// goroutine-private).
//
// Invariant 2 — pool pairing (internal/align, internal/linearize,
// internal/encode, internal/core): every
// buffer obtained from a sync.Pool getter must, within the same function,
// either be released to the matching putter or be handed off — by returning
// it to the caller (who then inherits the obligation — e.g. nwScoreRow
// returns its prev row for the caller to recycle, and Linearize returns
// the pooled sequence that exploration later passes to Recycle), or by
// assigning it to a struct field (the owning object's lifecycle inherits
// the obligation — e.g. generate parks its mergerScratch in Result.scratch,
// which Discard and Commit release). Getter
// and putter functions are derived from the AST: a function that calls
// <name>Pool.Get without putting is a getter of that pool; a function
// that calls <name>Pool.Put is a putter. Getter status propagates to
// functions that hand a gotten buffer off by returning it.
//
// The linter is a registry of independent analyzers; see `-list` for the
// full set and registry.go for the determinism passes (map-range ordering,
// wall-clock reads in pure packages, goroutine captures of pooled or
// reassigned variables).
//
//	go run ./scripts/lint [flags] [repo-root]
//	go run ./scripts/lint -list
//	go run ./scripts/lint -only maprange,walltime
//	go run ./scripts/lint -skip poolpair
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// parseDir parses the non-test Go files of dir, keyed by base filename.
func parseDir(fset *token.FileSet, dir string) map[string]*ast.File {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	files := map[string]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			fatal(err)
		}
		files[name] = f
	}
	return files
}

// guardedFiles are the only files allowed to mutate use lists.
var guardedFiles = map[string]bool{"value.go": true, "func.go": true}

// lintUseLists flags use-list mutations outside the guarded files.
func lintUseLists(dir string) []string {
	fset := token.NewFileSet()
	var bad []string
	report := func(n ast.Node, msg string) {
		bad = append(bad, fmt.Sprintf("%s: %s", fset.Position(n.Pos()), msg))
	}
	for name, f := range parseDir(fset, dir) {
		if guardedFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "addUse" || sel.Sel.Name == "removeUse" {
						report(x, fmt.Sprintf("use-list mutation %s outside ir/value.go+ir/func.go (bypasses sharedUseMu)", sel.Sel.Name))
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "uses" {
						report(x, "direct assignment to a use list outside ir/value.go+ir/func.go")
					}
				}
			case *ast.UnaryExpr:
				if sel, ok := x.X.(*ast.SelectorExpr); ok && x.Op == token.AND && sel.Sel.Name == "uses" {
					report(x, "taking the address of a use list outside ir/value.go+ir/func.go")
				}
			}
			return true
		})
	}
	return bad
}

// poolGet/poolPut recognize <name>Pool.Get / <name>Pool.Put calls and
// return the pool identifier.
func poolCall(n ast.Node, method string) (string, *ast.CallExpr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !strings.HasSuffix(id.Name, "Pool") {
		return "", nil
	}
	return id.Name, call
}

// containsIdent reports whether the identifier name occurs anywhere in n.
func containsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// lintPools checks the get/put pairing of one package directory.
func lintPools(dir string) []string {
	fset := token.NewFileSet()
	var decls []*ast.FuncDecl
	for _, f := range parseDir(fset, dir) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	// Pass 1: classify putters (call <pool>.Put) and seed getters (call
	// <pool>.Get without putting to the same pool).
	getters, putters := classifyPoolFuncs(decls)

	// Pass 2: propagate getter status through hand-offs — a function that
	// returns a buffer obtained from a getter is itself a getter. Iterate
	// to a fixed point (the call graph is tiny).
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if _, isGetter := getters[fd.Name.Name]; isGetter {
				continue
			}
			for v, pool := range gotVars(fd, getters) {
				if returnsIdent(fd, v) && !releases(fd, v, pool, putters) {
					getters[fd.Name.Name] = pool
					changed = true
				}
			}
		}
	}

	// Pass 3: every gotten buffer must be released or handed off.
	var bad []string
	for _, fd := range decls {
		for v, pool := range gotVars(fd, getters) {
			if releases(fd, v, pool, putters) || returnsIdent(fd, v) || assignsToField(fd, v) {
				continue
			}
			bad = append(bad, fmt.Sprintf("%s: %s: buffer %q from %s is neither released (Put) nor handed off (returned)",
				fset.Position(fd.Pos()), fd.Name.Name, v, pool))
		}
	}

	// Pass 4: a raw Get whose result is not bound to a variable can never
	// be released.
	for _, fd := range decls {
		bound := map[ast.Node]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, rhs := range as.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if _, call := poolCall(m, "Get"); call != nil {
							bound[call] = true
						}
						return true
					})
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if pool, call := poolCall(n, "Get"); call != nil && !bound[call] {
				bad = append(bad, fmt.Sprintf("%s: %s: %s.Get() result is discarded",
					fset.Position(call.Pos()), fd.Name.Name, pool))
			}
			return true
		})
	}
	return bad
}

// classifyPoolFuncs seeds the pool ownership maps from raw Get/Put calls:
// a function that calls <pool>.Put is a putter of that pool; one that calls
// <pool>.Get without putting to the same pool is a getter.
func classifyPoolFuncs(decls []*ast.FuncDecl) (getters, putters map[string]string) {
	getters = map[string]string{} // func name -> pool it hands out
	putters = map[string]string{} // func name -> pool it releases
	for _, fd := range decls {
		gets, puts := map[string]bool{}, map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if pool, _ := poolCall(n, "Get"); pool != "" {
				gets[pool] = true
			}
			if pool, _ := poolCall(n, "Put"); pool != "" {
				puts[pool] = true
			}
			return true
		})
		for pool := range puts {
			putters[fd.Name.Name] = pool
		}
		for pool := range gets {
			if !puts[pool] {
				getters[fd.Name.Name] = pool
			}
		}
	}
	return getters, putters
}

// gotVars returns the variables of fd bound to a pooled buffer: assigned
// from a raw <pool>.Get or from a call to a known getter function.
func gotVars(fd *ast.FuncDecl, getters map[string]string) map[string]string {
	out := map[string]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		for _, rhs := range as.Rhs {
			if pool, call := rawOrGetterCall(rhs, getters); call != nil {
				out[id.Name] = pool
			}
		}
		return true
	})
	return out
}

// rawOrGetterCall reports whether expr contains a raw pool Get or a call to
// a getter function, and which pool the buffer belongs to.
func rawOrGetterCall(expr ast.Expr, getters map[string]string) (string, *ast.CallExpr) {
	var pool string
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if p, call := poolCall(n, "Get"); call != nil {
			pool, found = p, call
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if p, ok := getters[id.Name]; ok {
					pool, found = p, call
					return false
				}
			}
		}
		return true
	})
	return pool, found
}

// releases reports whether fd passes variable v to a putter of pool (a
// known putter function or a raw <pool>.Put call).
func releases(fd *ast.FuncDecl, v, pool string, putters map[string]string) bool {
	rel := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rel {
			return false
		}
		if p, call := poolCall(n, "Put"); call != nil && p == pool {
			for _, a := range call.Args {
				if containsIdent(a, v) {
					rel = true
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || putters[id.Name] != pool {
			return true
		}
		for _, a := range call.Args {
			if containsIdent(a, v) {
				rel = true
			}
		}
		return true
	})
	return rel
}

// returnsIdent reports whether any return statement of fd hands the buffer
// v off to the caller — who then inherits the release obligation. Only
// expressions that structurally ARE the buffer count (the identifier, a
// reslice, a dereference); a derived scalar like len(v) does not release
// anything.
func returnsIdent(fd *ast.FuncDecl, v string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if isBufferExpr(r, v) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// assignsToField reports whether fd hands the buffer v off by assigning it
// to a struct field (`x.field = v`): ownership transfers to the containing
// object, whose lifecycle inherits the release obligation (e.g. the merger
// scratch parked in Result.scratch until Discard or Commit). Only assignments
// whose right-hand side structurally IS the buffer count.
func assignsToField(fd *ast.FuncDecl, v string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for i, lhs := range as.Lhs {
			if _, ok := lhs.(*ast.SelectorExpr); !ok {
				continue
			}
			if i < len(as.Rhs) && isBufferExpr(as.Rhs[i], v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBufferExpr reports whether expr evaluates to the buffer named v (possibly
// resliced, dereferenced or re-addressed), as opposed to a value derived
// from it.
func isBufferExpr(expr ast.Expr, v string) bool {
	switch x := expr.(type) {
	case *ast.Ident:
		return x.Name == v
	case *ast.SliceExpr:
		return isBufferExpr(x.X, v)
	case *ast.StarExpr:
		return isBufferExpr(x.X, v)
	case *ast.ParenExpr:
		return isBufferExpr(x.X, v)
	case *ast.UnaryExpr:
		return x.Op == token.AND && isBufferExpr(x.X, v)
	case *ast.TypeAssertExpr:
		return isBufferExpr(x.X, v)
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lint:", err)
	os.Exit(1)
}
