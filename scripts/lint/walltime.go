package main

// Analyzer "walltime": the packages that decide what gets merged must be
// pure functions of their inputs — the parallel pipeline's bit-identical
// contract depends on it. A wall-clock read (time.Now/Since/Until) or any
// math/rand use inside them introduces run-to-run variation the tests
// cannot reliably catch. Timing belongs in the orchestration layers
// (internal/core's Timings accumulators, internal/explore, the experiment
// harnesses), which are deliberately not on this list; seeded generation
// randomness belongs in internal/workload.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
)

// purePackages are the internal packages that must stay free of wall-clock
// and randomness reads.
var purePackages = []string{
	"align", "analysis", "callgraph", "encode", "fingerprint", "global",
	"interp", "ir", "linearize", "lsh", "passes", "profile", "stats",
	"tti", "wire",
}

// clockFuncs are the time-package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// lintWallTime checks one package directory.
func lintWallTime(dir string) []string {
	fset := token.NewFileSet()
	var bad []string
	for _, f := range parseDir(fset, dir) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				bad = append(bad, fmt.Sprintf("%s: deterministic package imports %s",
					fset.Position(imp.Pos()), path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
				bad = append(bad, fmt.Sprintf("%s: wall-clock read time.%s in a deterministic package",
					fset.Position(call.Pos()), sel.Sel.Name))
			}
			return true
		})
	}
	return bad
}
