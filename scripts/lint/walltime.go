package main

// Analyzer "walltime": the packages that decide what gets merged must be
// pure functions of their inputs — the parallel pipeline's bit-identical
// contract depends on it. A wall-clock read (time.Now/Since/Until) or any
// math/rand use inside them introduces run-to-run variation the tests
// cannot reliably catch. Timing belongs in the orchestration layers
// (internal/core's Timings accumulators, internal/explore's session.go and
// explore.go, the experiment harnesses, the serve daemon), which are
// deliberately not on the pure list; seeded generation randomness belongs
// in internal/workload.
//
// Two weaker tiers extend coverage to the exploration and serving layers:
// pureFiles names the decision-core files of packages that otherwise may
// time themselves (the session's warm-state logic and the speculative
// evaluation wave must stay wall-clock free even though their package
// reports timings), and noRandDirs bans math/rand from the daemon and the
// whole exploration package, where randomness would silently break the
// warm/cold bit-identity contract while timestamps are legitimate.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
)

// purePackages are the internal packages that must stay free of wall-clock
// and randomness reads.
var purePackages = []string{
	"align", "analysis", "callgraph", "encode", "fingerprint", "global",
	"interp", "ir", "linearize", "lsh", "passes", "profile", "simdb",
	"stats", "tti", "wire",
}

// pureFiles are single files held to the full purity rule inside packages
// that otherwise time themselves: the session's warm state and candidate
// caches, and the parallel evaluation wave, all decide what gets merged.
var pureFiles = []string{
	"internal/explore/warm.go",
	"internal/explore/cache.go",
	"internal/explore/parallel.go",
}

// noRandDirs are packages where wall-clock reads are legitimate (request
// timing, latency accounting) but math/rand would break determinism.
var noRandDirs = []string{
	"internal/explore", "internal/serve", "cmd/fmsa-serve",
}

// clockFuncs are the time-package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// lintWallTime checks one package directory.
func lintWallTime(dir string) []string {
	fset := token.NewFileSet()
	var bad []string
	for _, f := range parseDir(fset, dir) {
		bad = append(bad, lintRandImports(fset, f)...)
		bad = append(bad, lintClockCalls(fset, f)...)
	}
	return bad
}

// lintWallTimeFile applies the full purity rule to one file.
func lintWallTimeFile(fset *token.FileSet, path string) []string {
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		fatal(err)
	}
	return append(lintRandImports(fset, f), lintClockCalls(fset, f)...)
}

// lintNoRand applies only the randomness ban to one package directory.
func lintNoRand(root, dir string) []string {
	fset := token.NewFileSet()
	var bad []string
	for _, f := range parseDir(fset, filepath.Join(root, filepath.FromSlash(dir))) {
		bad = append(bad, lintRandImports(fset, f)...)
	}
	return bad
}

func lintRandImports(fset *token.FileSet, f *ast.File) []string {
	var bad []string
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			bad = append(bad, fmt.Sprintf("%s: deterministic package imports %s",
				fset.Position(imp.Pos()), path))
		}
	}
	return bad
}

func lintClockCalls(fset *token.FileSet, f *ast.File) []string {
	var bad []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !clockFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			bad = append(bad, fmt.Sprintf("%s: wall-clock read time.%s in a deterministic package",
				fset.Position(call.Pos()), sel.Sel.Name))
		}
		return true
	})
	return bad
}
