package main

// The analyzer registry. Each analyzer is independent, stdlib-only, and
// returns its findings as position-prefixed strings; main runs the selected
// set and fails on any finding. `-list` prints the registry so check.sh can
// assert the expected analyzers are present.

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// analyzer is one registered check over the repository tree.
type analyzer struct {
	name string
	doc  string
	run  func(root string) []string
}

// analyzers is the registry, in execution order. Names are stable: check.sh
// and -only/-skip select by them.
var analyzers = []analyzer{
	{
		name: "uselist",
		doc:  "use-list mutations outside ir/value.go+ir/func.go (bypass sharedUseMu)",
		run: func(root string) []string {
			return lintUseLists(filepath.Join(root, "internal", "ir"))
		},
	},
	{
		name: "poolpair",
		doc:  "sync.Pool buffers neither released nor handed off",
		run: func(root string) []string {
			var bad []string
			for _, dir := range []string{"align", "linearize", "encode", "core", "wire"} {
				bad = append(bad, lintPools(filepath.Join(root, "internal", dir))...)
			}
			return bad
		},
	},
	{
		name: "maprange",
		doc:  "map iteration feeding ordered output (print/append) without a sort",
		run: func(root string) []string {
			var bad []string
			for _, dir := range lintableDirs(root) {
				bad = append(bad, lintMapRange(dir)...)
			}
			return bad
		},
	},
	{
		name: "walltime",
		doc:  "wall-clock reads or global math/rand in deterministic packages",
		run: func(root string) []string {
			var bad []string
			for _, dir := range purePackages {
				bad = append(bad, lintWallTime(filepath.Join(root, "internal", dir))...)
			}
			fset := token.NewFileSet()
			for _, file := range pureFiles {
				bad = append(bad, lintWallTimeFile(fset, filepath.Join(root, filepath.FromSlash(file)))...)
			}
			for _, dir := range noRandDirs {
				bad = append(bad, lintNoRand(root, dir)...)
			}
			return bad
		},
	},
	{
		name: "goloopcapture",
		doc:  "goroutine closures capturing pooled buffers or per-iteration reassigned variables",
		run: func(root string) []string {
			var bad []string
			for _, dir := range lintableDirs(root) {
				bad = append(bad, lintGoCapture(dir)...)
			}
			return bad
		},
	},
}

// lintableDirs enumerates every package directory the whole-tree analyzers
// walk: all of internal/, the cmd tools and the scripts.
func lintableDirs(root string) []string {
	var dirs []string
	for _, parent := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(filepath.Join(root, parent))
		if err != nil {
			fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(root, parent, e.Name()))
			}
		}
	}
	dirs = append(dirs, filepath.Join(root, "scripts", "lint"))
	sort.Strings(dirs)
	return dirs
}

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		skip = flag.String("skip", "", "comma-separated analyzer names to skip")
		list = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.name, a.doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	selected, err := selectAnalyzers(analyzers, *only, *skip)
	if err != nil {
		fatal(err)
	}

	var bad []string
	for _, a := range selected {
		findings := a.run(root)
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s [%s]\n", f, a.name)
		}
		bad = append(bad, findings...)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
	names := make([]string, len(selected))
	for i, a := range selected {
		names[i] = a.name
	}
	fmt.Printf("lint: ok (%s)\n", strings.Join(names, ", "))
}

// selectAnalyzers filters the registry by the -only and -skip flag values,
// rejecting unknown names so typos fail loudly instead of silently passing.
func selectAnalyzers(all []analyzer, only, skip string) ([]analyzer, error) {
	known := map[string]bool{}
	for _, a := range all {
		known[a.name] = true
	}
	parse := func(csv string) (map[string]bool, error) {
		set := map[string]bool{}
		if csv == "" {
			return set, nil
		}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				return nil, fmt.Errorf("unknown analyzer %q (run -list for the registry)", n)
			}
			set[n] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.name] {
			continue
		}
		if skipSet[a.name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selection matches no analyzers")
	}
	return out, nil
}
