package main

// Analyzer "maprange": Go map iteration order is deliberately randomized, so
// a `for ... range m` over a map that feeds ordered output — writing to a
// printer or builder inside the loop, or appending to a slice the function
// never sorts — produces nondeterministic results run to run. The pipeline's
// bit-identical-output contract makes this a bug, not a style issue. The
// idiomatic fix (collect keys, sort, then iterate) passes because the
// appended slice is sorted before use.
//
// Without type information, map-typed variables are recognized
// syntactically: parameters and declarations with a map type, and variables
// initialized from make(map[...]...) or a map literal.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// lintMapRange checks one package directory.
func lintMapRange(dir string) []string {
	fset := token.NewFileSet()
	var bad []string
	for _, f := range parseDir(fset, dir) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			maps := mapTypedVars(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				id, ok := rng.X.(*ast.Ident)
				if !ok || !maps[id.Name] {
					return true
				}
				if emitsOutput(rng.Body) {
					bad = append(bad, fmt.Sprintf("%s: %s: map range over %q writes output in iteration order",
						fset.Position(rng.Pos()), fd.Name.Name, id.Name))
					return true
				}
				for _, target := range appendTargets(rng.Body) {
					if !sortedInFunc(fd, target) {
						bad = append(bad, fmt.Sprintf("%s: %s: map range over %q appends to %q, which is never sorted",
							fset.Position(rng.Pos()), fd.Name.Name, id.Name, target))
					}
				}
				return true
			})
		}
	}
	return bad
}

// mapTypedVars collects the names in fd that syntactically hold maps.
func mapTypedVars(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if _, ok := f.Type.(*ast.MapType); !ok {
				continue
			}
			for _, n := range f.Names {
				out[n.Name] = true
			}
		}
	}
	addFields(fd.Type.Params)
	addFields(fd.Recv)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			if _, ok := x.Type.(*ast.MapType); ok {
				for _, n := range x.Names {
					out[n.Name] = true
				}
				return true
			}
			for i, v := range x.Values {
				if i < len(x.Names) && isMapExpr(v) {
					out[x.Names[i].Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !isMapExpr(rhs) || i >= len(x.Lhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// isMapExpr recognizes make(map[...]...) calls and map literals.
func isMapExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(x.Args) == 0 {
			return false
		}
		_, isMap := x.Args[0].(*ast.MapType)
		return isMap
	case *ast.CompositeLit:
		_, isMap := x.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// emitWriters are method/function names that emit output directly, making
// iteration order observable.
var emitWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true,
}

// emitsOutput reports whether the loop body calls an output writer.
func emitsOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if emitWriters[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if emitWriters[fun.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// appendTargets collects the slice variables the loop body grows via
// `s = append(s, ...)`.
func appendTargets(body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var order []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || seen[id.Name] {
				continue
			}
			seen[id.Name] = true
			order = append(order, id.Name)
		}
		return true
	})
	return order
}

// sortedInFunc reports whether fd sorts the named slice anywhere: a
// sort.*/slices.* call taking it, or a call to a function whose name
// mentions sorting.
func sortedInFunc(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sorter := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				sorter = true
			}
		case *ast.Ident:
			sorter = strings.Contains(strings.ToLower(fun.Name), "sort")
		}
		if !sorter {
			return true
		}
		for _, a := range call.Args {
			if containsIdent(a, name) {
				found = true
			}
		}
		return true
	})
	return found
}
