package workload

import (
	"math"
	"testing"

	"fmsa/internal/ir"
)

// TestSuiteStatsTrackTableI verifies the generated populations track the
// scaled Table I statistics: function counts exactly, average sizes within
// a factor of the target (size draws are lognormal, so exact matches are
// not expected).
func TestSuiteStatsTrackTableI(t *testing.T) {
	for _, p := range SPECLike() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if p.NumFuncs > 600 {
				t.Skip("large population; covered by the bench harness")
			}
			m := Build(p)
			defs := 0
			total := 0
			for _, f := range m.Funcs {
				if f.IsDecl() || f.Name() == "main" {
					continue
				}
				defs++
				total += f.NumInsts()
			}
			if defs != p.NumFuncs {
				t.Errorf("definitions = %d, want %d", defs, p.NumFuncs)
			}
			if defs == 0 {
				return
			}
			avg := float64(total) / float64(defs)
			// The generator's entry scaffolding (slots, driver wiring)
			// imposes a floor of roughly 20 instructions per function.
			target := math.Max(float64(p.AvgSize), 20)
			ratio := avg / target
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("average size %.1f vs target %.0f (ratio %.2f)", avg, target, ratio)
			}
		})
	}
}

// TestRijndaelTwinsDominate mirrors §V-B: rijndael's twin pair must hold
// most of the program's code.
func TestRijndaelTwinsDominate(t *testing.T) {
	var rij Profile
	for _, p := range MiBenchLike() {
		if p.Name == "rijndael" {
			rij = p
		}
	}
	if rij.TwinSize == 0 {
		t.Fatal("rijndael profile missing twins")
	}
	m := Build(rij)
	enc, dec := m.FuncByName("encrypt"), m.FuncByName("decrypt")
	if enc == nil || dec == nil {
		t.Fatal("twins missing")
	}
	twinSize := enc.NumInsts() + dec.NumInsts()
	total := 0
	for _, f := range m.Funcs {
		if !f.IsDecl() && f.Name() != "main" {
			total += f.NumInsts()
		}
	}
	frac := float64(twinSize) / float64(total)
	if frac < 0.5 {
		t.Errorf("twins hold %.0f%% of code, want the majority (paper: >70%%)", frac*100)
	}
	// The twins differ only by guard+salt: sizes should be close.
	diff := math.Abs(float64(enc.NumInsts()) - float64(dec.NumInsts()))
	if diff/float64(enc.NumInsts()) > 0.2 {
		t.Errorf("twin sizes diverge: %d vs %d", enc.NumInsts(), dec.NumInsts())
	}
}

// TestUnscaledSmallProfiles checks the paper-scale profiles carry the
// exact Table I numbers.
func TestUnscaledSmallProfiles(t *testing.T) {
	want := map[string][3]int{ // #Fns, avg, max from Table I
		"429.mcf":        {24, 87, 297},
		"433.milc":       {235, 68, 416},
		"462.libquantum": {95, 57, 626},
		"482.sphinx3":    {326, 80, 924},
	}
	got := UnscaledSmall()
	if len(got) != len(want) {
		t.Fatalf("profiles = %d, want %d", len(got), len(want))
	}
	for _, p := range got {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %s", p.Name)
			continue
		}
		if p.NumFuncs != w[0] || p.AvgSize != w[1] || p.MaxSize != w[2] {
			t.Errorf("%s: (%d, %d, %d), want %v", p.Name, p.NumFuncs, p.AvgSize, p.MaxSize, w)
		}
	}
}

// TestCallWeightDistribution pins the hot/cold skew the runtime experiments
// rely on.
func TestCallWeightDistribution(t *testing.T) {
	veryHot, warm, cold := 0, 0, 0
	n := 1000
	for i := 0; i < n; i++ {
		switch CallWeight(i) {
		case 200:
			veryHot++
		case 40:
			warm++
		case 1:
			cold++
		default:
			t.Fatalf("unexpected weight %d", CallWeight(i))
		}
	}
	if veryHot == 0 || warm == 0 {
		t.Error("hot classes missing")
	}
	if frac := float64(cold) / float64(n); frac < 0.8 || frac > 0.95 {
		t.Errorf("cold fraction %.2f outside [0.8, 0.95]", frac)
	}
}

// TestDriverLiveness: every generated function is reachable from @main, so
// dead-function stripping cannot trivialize the suites.
func TestDriverLiveness(t *testing.T) {
	p := Profile{
		Name: "live", NumFuncs: 12, AvgSize: 20, MaxSize: 60,
		Identical: 0.2, InternalFrac: 0.9, Seed: 9,
	}
	m := Build(p)
	for _, f := range m.Funcs {
		if f.IsDecl() || f.Name() == "main" {
			continue
		}
		if f.NumUses() == 0 {
			t.Errorf("%s has no uses", f.Name())
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}
