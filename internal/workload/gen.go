// Package workload synthesizes deterministic IR modules that stand in for
// the paper's benchmark suites (SPEC CPU2006 and MiBench). The generator
// controls exactly the variable the evaluation measures — how much
// mergeable similarity a program contains — by emitting families of
// function clones with parameterized differences:
//
//   - identical clones (what LLVM's MergeFunctions can already merge);
//   - type-variant clones (different parameter/payload types, Fig. 1);
//   - CFG-variant clones (extra early-exit blocks, Fig. 2);
//   - constant-variant and dropped-operation clones (partial similarity);
//   - reordered-parameter clones;
//   - unrelated functions (no similarity).
//
// Every function is generated from a seeded template, so variants of the
// same template align structurally exactly the way the paper's real-world
// clone pairs do, and the whole suite is reproducible bit for bit.
package workload

import (
	"fmt"
	"math/rand"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

// FuncSpec is a deterministic recipe for one generated function. Two specs
// sharing Seed and structure parameters but differing in Scalar, ConstSalt,
// Guard, DropMod or ReorderParams produce structurally aligned variants.
type FuncSpec struct {
	// Name of the generated function.
	Name string
	// Seed drives all structural randomness of the template.
	Seed int64
	// Scalar is the payload scalar type (i32/i64/f32/f64).
	Scalar *ir.Type
	// NumParams is the number of parameters (at least 1).
	NumParams int
	// Regions is the number of structured control-flow regions.
	Regions int
	// OpsPerBlock is the straight-line operation budget per block.
	OpsPerBlock int
	// ConstSalt perturbs constants without changing structure.
	ConstSalt int64
	// Guard adds an early-exit block at the entry (CFG variant).
	Guard bool
	// ReorderParams rotates the parameter list by one position.
	ReorderParams bool
	// DropMod, when positive, drops roughly 1/DropMod of the operations
	// (insertion/deletion variant).
	DropMod int
	// Internal marks the function as module-private.
	Internal bool
	// VoidRet forces a void return type.
	VoidRet bool
}

// RegisterIntrinsics installs deterministic interpreter implementations of
// the externs declared by Externs.
func RegisterIntrinsics(mc *interp.Machine) {
	mc.Register("ext_i64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return args[0]*2 + 1, nil
	})
	mc.Register("ext_f64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return interp.F64(interp.ToF64(args[0])*1.5 + 0.25), nil
	})
	mc.Register("sink_i64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, nil
	})
}

// Externs returns the external declarations generated modules rely on.
// Callers running modules under the interpreter must register matching
// intrinsics (interp.RegisterDefaultIntrinsics covers them).
func Externs(m *ir.Module) {
	if m.FuncByName("ext_i64") == nil {
		m.AddFunc(ir.NewFunc("ext_i64", ir.FuncOf(ir.I64(), ir.I64())))
	}
	if m.FuncByName("ext_f64") == nil {
		m.AddFunc(ir.NewFunc("ext_f64", ir.FuncOf(ir.F64(), ir.F64())))
	}
	if m.FuncByName("sink_i64") == nil {
		m.AddFunc(ir.NewFunc("sink_i64", ir.FuncOf(ir.Void(), ir.I64())))
	}
}

// Generate emits the function described by spec into m.
func Generate(m *ir.Module, spec FuncSpec) *ir.Func {
	Externs(m)
	g := &bodyGen{
		mod:  m,
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
	}
	return g.run()
}

// bodyGen carries the state of one function's generation.
type bodyGen struct {
	mod  *ir.Module
	spec FuncSpec
	rng  *rand.Rand

	fn  *ir.Func
	bd  *ir.Builder
	cur *ir.Block

	// slots are entry-block allocas used for cross-region dataflow, in the
	// φ-demoted style the merger expects.
	slotI *ir.Inst // i64 accumulator
	slotS *ir.Inst // scalar accumulator
	arr   *ir.Inst // [16 x i64] scratch array

	// pool holds values available in the current block, by type.
	pool map[*ir.Type][]ir.Value

	opIndex int // counts generated ops for DropMod decisions
	blockID int
}

func (g *bodyGen) scalar() *ir.Type { return g.spec.Scalar }

// paramTypes derives the deterministic parameter list.
func (g *bodyGen) paramTypes() []*ir.Type {
	base := []*ir.Type{g.scalar(), ir.I64(), ir.PointerTo(ir.I64())}
	var types []*ir.Type
	for i := 0; i < g.spec.NumParams; i++ {
		types = append(types, base[i%len(base)])
	}
	if g.spec.ReorderParams && len(types) > 1 {
		types = append(types[1:], types[0])
	}
	return types
}

func (g *bodyGen) run() *ir.Func {
	ret := ir.I64()
	if g.spec.VoidRet {
		ret = ir.Void()
	}
	sig := ir.FuncOf(ret, g.paramTypes()...)
	g.fn = g.mod.NewFuncIn(g.mod.UniqueName(g.spec.Name), sig)
	if g.spec.Internal {
		g.fn.Linkage = ir.InternalLinkage
	}
	for i, p := range g.fn.Params {
		p.SetName(fmt.Sprintf("p%d", i))
	}

	entry := g.fn.NewBlockIn("entry")
	g.bd = ir.NewBuilder(entry)
	g.cur = entry

	// Entry allocas and initial stores (φ-demoted style).
	g.slotI = g.bd.Alloca(ir.I64())
	g.slotS = g.bd.Alloca(g.scalar())
	g.arr = g.bd.Alloca(ir.ArrayOf(16, ir.I64()))
	g.bd.Store(g.seedI64(), g.slotI)
	g.bd.Store(g.seedScalar(), g.slotS)

	if g.spec.Guard {
		g.emitGuard()
	}

	g.resetPool()
	for r := 0; r < g.spec.Regions; r++ {
		switch g.rng.Intn(3) {
		case 0:
			g.emitStraight()
		case 1:
			g.emitDiamond()
		case 2:
			g.emitLoop()
		}
	}

	// Final block: combine accumulators and return.
	acc := g.bd.Load(g.slotI)
	if g.spec.VoidRet {
		sink := g.mod.FuncByName("sink_i64")
		g.bd.Call(sink, acc)
		g.bd.Ret(nil)
	} else {
		sv := g.bd.Load(g.slotS)
		si := g.toI64(sv)
		sum := g.bd.Add(acc, si)
		g.bd.Ret(sum)
	}
	return g.fn
}

// seedI64 returns the first available i64 seed value (an i64 parameter or a
// salted constant).
func (g *bodyGen) seedI64() ir.Value {
	for _, p := range g.fn.Params {
		if p.Type() == ir.I64() {
			return p
		}
	}
	return ir.NewConstInt(ir.I64(), 17+g.spec.ConstSalt)
}

// seedScalar returns a scalar-typed seed value.
func (g *bodyGen) seedScalar() ir.Value {
	for _, p := range g.fn.Params {
		if p.Type() == g.scalar() {
			return p
		}
	}
	return g.constScalar(3)
}

func (g *bodyGen) constScalar(base int64) ir.Value {
	v := base + g.spec.ConstSalt
	if g.scalar().IsFloat() {
		return ir.NewConstFloat(g.scalar(), float64(v)+0.5)
	}
	return ir.NewConstInt(g.scalar(), v)
}

// toI64 widens or reinterprets a scalar value to i64.
func (g *bodyGen) toI64(v ir.Value) ir.Value {
	t := v.Type()
	switch {
	case t == ir.I64():
		return v
	case t.IsInt():
		return g.bd.Cast(ir.OpZExt, v, ir.I64())
	case t == ir.F64():
		return g.bd.Cast(ir.OpBitCast, v, ir.I64())
	case t == ir.F32():
		i32 := g.bd.Cast(ir.OpBitCast, v, ir.I32())
		return g.bd.Cast(ir.OpZExt, i32, ir.I64())
	default:
		return ir.NewConstInt(ir.I64(), 0)
	}
}

// emitGuard inserts an early-exit block: if the i64 seed equals a sentinel,
// return immediately (the Fig. 2 shape).
func (g *bodyGen) emitGuard() {
	seed := g.bd.Load(g.slotI)
	cmp := g.bd.ICmp(ir.PredEQ, seed, ir.NewConstInt(ir.I64(), -9999))
	earlyB := g.fn.NewBlockIn(fmt.Sprintf("early%d", g.blockID))
	contB := g.fn.NewBlockIn(fmt.Sprintf("cont%d", g.blockID))
	g.blockID++
	g.bd.CondBr(cmp, earlyB, contB)
	g.bd.SetBlock(earlyB)
	if g.spec.VoidRet {
		g.bd.Ret(nil)
	} else {
		g.bd.Ret(ir.NewConstInt(ir.I64(), 0))
	}
	g.bd.SetBlock(contB)
	g.cur = contB
}

// resetPool clears per-block available values (cross-block dataflow goes
// through the slots, keeping the generated code φ-demotion-shaped).
func (g *bodyGen) resetPool() {
	g.pool = map[*ir.Type][]ir.Value{}
	for _, p := range g.fn.Params {
		g.addPool(p)
	}
}

func (g *bodyGen) addPool(v ir.Value) {
	t := v.Type()
	g.pool[t] = append(g.pool[t], v)
}

// pick returns a pool value of type t, or a fresh constant.
func (g *bodyGen) pick(t *ir.Type) ir.Value {
	vs := g.pool[t]
	if len(vs) > 0 && g.rng.Intn(4) != 0 {
		return vs[g.rng.Intn(len(vs))]
	}
	switch {
	case t.IsInt():
		return ir.NewConstInt(t, int64(g.rng.Intn(90)+1)+g.spec.ConstSalt)
	case t.IsFloat():
		return ir.NewConstFloat(t, float64(g.rng.Intn(50)+1)/4+float64(g.spec.ConstSalt))
	default:
		if len(vs) > 0 {
			return vs[g.rng.Intn(len(vs))]
		}
		return ir.NewConstNull(t)
	}
}

// dropOp decides whether the current operation should be skipped in this
// variant. The RNG consumption happens regardless, keeping variants aligned.
func (g *bodyGen) dropOp() bool {
	g.opIndex++
	if g.spec.DropMod <= 0 {
		return false
	}
	return (g.opIndex*2654435761)%g.spec.DropMod == 0
}

// emitOps generates the straight-line operation mix of one block.
func (g *bodyGen) emitOps(n int) {
	for i := 0; i < n; i++ {
		kind := g.rng.Intn(100)
		drop := g.dropOp()
		switch {
		case kind < 30:
			g.opIntArith(drop)
		case kind < 45:
			g.opScalarArith(drop)
		case kind < 55:
			g.opCmpSelect(drop)
		case kind < 70:
			g.opSlotUpdate(drop)
		case kind < 85:
			g.opArray(drop)
		case kind < 93:
			g.opCast(drop)
		default:
			g.opCall(drop)
		}
	}
}

func (g *bodyGen) opIntArith(drop bool) {
	ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr}
	op := ops[g.rng.Intn(len(ops))]
	a := g.pick(ir.I64())
	b := g.pick(ir.I64())
	if drop {
		return
	}
	if op == ir.OpShl || op == ir.OpLShr {
		b = ir.NewConstInt(ir.I64(), int64(g.rng.Intn(8)))
	}
	g.addPool(g.bd.Binary(op, a, b))
}

func (g *bodyGen) opScalarArith(drop bool) {
	t := g.scalar()
	a := g.pick(t)
	b := g.pick(t)
	var op ir.Opcode
	if t.IsFloat() {
		ops := []ir.Opcode{ir.OpFAdd, ir.OpFSub, ir.OpFMul}
		op = ops[g.rng.Intn(len(ops))]
	} else {
		ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul}
		op = ops[g.rng.Intn(len(ops))]
	}
	if drop {
		return
	}
	g.addPool(g.bd.Binary(op, a, b))
}

func (g *bodyGen) opCmpSelect(drop bool) {
	a := g.pick(ir.I64())
	b := g.pick(ir.I64())
	preds := []ir.CmpPred{ir.PredSLT, ir.PredSGT, ir.PredEQ, ir.PredULE}
	pred := preds[g.rng.Intn(len(preds))]
	if drop {
		return
	}
	c := g.bd.ICmp(pred, a, b)
	x := g.pick(ir.I64())
	y := g.pick(ir.I64())
	g.addPool(g.bd.Select(c, x, y))
}

func (g *bodyGen) opSlotUpdate(drop bool) {
	if g.rng.Intn(2) == 0 {
		v := g.pick(ir.I64())
		if drop {
			return
		}
		old := g.bd.Load(g.slotI)
		sum := g.bd.Add(old, v)
		g.bd.Store(sum, g.slotI)
		g.addPool(sum)
	} else {
		t := g.scalar()
		v := g.pick(t)
		if drop {
			return
		}
		old := g.bd.Load(g.slotS)
		var upd *ir.Inst
		if t.IsFloat() {
			upd = g.bd.Binary(ir.OpFAdd, old, v)
		} else {
			upd = g.bd.Binary(ir.OpAdd, old, v)
		}
		g.bd.Store(upd, g.slotS)
		g.addPool(upd)
	}
}

func (g *bodyGen) opArray(drop bool) {
	idx := g.rng.Intn(16)
	write := g.rng.Intn(2) == 0
	v := g.pick(ir.I64())
	if drop {
		return
	}
	p := g.bd.GEP(g.arr, ir.NewConstInt(ir.I64(), 0), ir.NewConstInt(ir.I64(), int64(idx)))
	if write {
		g.bd.Store(v, p)
	} else {
		g.addPool(g.bd.Load(p))
	}
}

func (g *bodyGen) opCast(drop bool) {
	v := g.pick(ir.I64())
	choice := g.rng.Intn(3)
	if drop {
		return
	}
	switch choice {
	case 0:
		g.addPool(g.bd.Cast(ir.OpTrunc, v, ir.I32()))
	case 1:
		tr := g.bd.Cast(ir.OpTrunc, v, ir.I32()) // keep i64 dominant
		g.addPool(g.bd.Cast(ir.OpSExt, tr, ir.I64()))
	case 2:
		g.addPool(g.bd.Cast(ir.OpSIToFP, v, ir.F64()))
	}
}

func (g *bodyGen) opCall(drop bool) {
	v := g.pick(ir.I64())
	if drop {
		return
	}
	ext := g.mod.FuncByName("ext_i64")
	g.addPool(g.bd.Call(ext, v))
}

// newBlock starts a new block, resetting the per-block value pool.
func (g *bodyGen) newBlock(prefix string) *ir.Block {
	b := g.fn.NewBlockIn(fmt.Sprintf("%s%d", prefix, g.blockID))
	g.blockID++
	return b
}

func (g *bodyGen) emitStraight() {
	next := g.newBlock("s")
	g.bd.Br(next)
	g.bd.SetBlock(next)
	g.cur = next
	g.resetPool()
	g.emitOps(g.spec.OpsPerBlock)
}

func (g *bodyGen) emitDiamond() {
	v := g.bd.Load(g.slotI)
	bit := ir.NewConstInt(ir.I64(), int64(g.rng.Intn(8)))
	masked := g.bd.Binary(ir.OpAnd, g.bd.Binary(ir.OpLShr, v, bit), ir.NewConstInt(ir.I64(), 1))
	c := g.bd.ICmp(ir.PredNE, masked, ir.NewConstInt(ir.I64(), 0))
	thenB := g.newBlock("then")
	elseB := g.newBlock("else")
	joinB := g.newBlock("join")
	g.bd.CondBr(c, thenB, elseB)

	g.bd.SetBlock(thenB)
	g.cur = thenB
	g.resetPool()
	g.emitOps(g.spec.OpsPerBlock / 2)
	g.bd.Br(joinB)

	g.bd.SetBlock(elseB)
	g.cur = elseB
	g.resetPool()
	g.emitOps(g.spec.OpsPerBlock / 2)
	g.bd.Br(joinB)

	g.bd.SetBlock(joinB)
	g.cur = joinB
	g.resetPool()
}

func (g *bodyGen) emitLoop() {
	n := int64(g.rng.Intn(12) + 2)
	ctr := g.bd.Alloca(ir.I64())
	g.bd.Store(ir.NewConstInt(ir.I64(), 0), ctr)
	head := g.newBlock("head")
	body := g.newBlock("body")
	exit := g.newBlock("exit")
	g.bd.Br(head)

	g.bd.SetBlock(head)
	iv := g.bd.Load(ctr)
	c := g.bd.ICmp(ir.PredSLT, iv, ir.NewConstInt(ir.I64(), n))
	g.bd.CondBr(c, body, exit)

	g.bd.SetBlock(body)
	g.cur = body
	g.resetPool()
	iv2 := g.bd.Load(ctr) // reload the counter: φ-demoted loop style
	g.addPool(iv2)
	g.emitOps(g.spec.OpsPerBlock)
	next := g.bd.Add(iv2, ir.NewConstInt(ir.I64(), 1))
	g.bd.Store(next, ctr)
	g.bd.Br(head)

	g.bd.SetBlock(exit)
	g.cur = exit
	g.resetPool()
}
