package workload

import (
	"testing"
	"testing/quick"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

func baseSpec(name string, seed int64) FuncSpec {
	return FuncSpec{
		Name:        name,
		Seed:        seed,
		Scalar:      ir.F32(),
		NumParams:   3,
		Regions:     4,
		OpsPerBlock: 6,
	}
}

func TestGenerateProducesValidIR(t *testing.T) {
	m := ir.NewModule("g")
	for seed := int64(0); seed < 30; seed++ {
		Generate(m, baseSpec("", seed*31+1))
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("generated module invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m1 := ir.NewModule("a")
	m2 := ir.NewModule("b")
	f1 := Generate(m1, baseSpec("f", 42))
	f2 := Generate(m2, baseSpec("f", 42))
	if ir.FormatFunc(f1) != ir.FormatFunc(f2) {
		t.Error("same spec must generate identical functions")
	}
}

func TestIdenticalClonesAreIdentical(t *testing.T) {
	m := ir.NewModule("c")
	s := baseSpec("a", 7)
	f1 := Generate(m, s)
	s.Name = "b"
	f2 := Generate(m, s)
	body1 := ir.FormatFunc(f1)[len("define i64 @a"):]
	body2 := ir.FormatFunc(f2)[len("define i64 @b"):]
	if body1 != body2 {
		t.Error("identical-clone bodies differ")
	}
}

func TestVariantsDiffer(t *testing.T) {
	m := ir.NewModule("v")
	base := baseSpec("base", 9)
	orig := Generate(m, base)

	typ := base
	typ.Name = "typ"
	typ.Scalar = ir.F64()
	tv := Generate(m, typ)

	cfg := base
	cfg.Name = "cfg"
	cfg.Guard = true
	cv := Generate(m, cfg)

	if ir.FormatFunc(orig)[13:] == ir.FormatFunc(tv)[12:] {
		t.Error("type variant should differ from original")
	}
	if len(cv.Blocks) <= len(orig.Blocks) {
		t.Error("guard variant should add blocks")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("variants invalid: %v", err)
	}
}

func TestDropVariantSmaller(t *testing.T) {
	m := ir.NewModule("d")
	base := baseSpec("full", 11)
	base.OpsPerBlock = 10
	full := Generate(m, base)
	drop := base
	drop.Name = "dropped"
	drop.DropMod = 5
	dv := Generate(m, drop)
	if dv.NumInsts() >= full.NumInsts() {
		t.Errorf("drop variant should be smaller: %d vs %d", dv.NumInsts(), full.NumInsts())
	}
}

func TestGeneratedFunctionsExecutable(t *testing.T) {
	m := ir.NewModule("e")
	var funcs []*ir.Func
	for seed := int64(1); seed <= 10; seed++ {
		s := baseSpec("", seed*17)
		s.VoidRet = seed%5 == 0
		funcs = append(funcs, Generate(m, s))
	}
	buildDriver(m, funcs, 1)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	mc := interp.NewMachine(m)
	registerWorkloadIntrinsics(mc)
	if _, err := mc.Run("main"); err != nil {
		t.Fatalf("driver run: %v", err)
	}
}

func registerWorkloadIntrinsics(mc *interp.Machine) {
	mc.Register("ext_i64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return args[0]*2 + 1, nil
	})
	mc.Register("ext_f64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return interp.F64(interp.ToF64(args[0]) * 1.5), nil
	})
}

func TestBuildProfileDeterministic(t *testing.T) {
	p := Profile{
		Name: "demo", NumFuncs: 25, AvgSize: 30, MaxSize: 120,
		Identical: 0.1, TypeVar: 0.1, CFGVar: 0.1, Partial: 0.1,
		InternalFrac: 0.5, Seed: 33,
	}
	m1 := Build(p)
	m2 := Build(p)
	if ir.FormatModule(m1) != ir.FormatModule(m2) {
		t.Error("Build must be deterministic")
	}
	if err := ir.VerifyModule(m1); err != nil {
		t.Fatalf("built module invalid: %v", err)
	}
	if len(m1.Definitions()) != 26 { // 25 functions + driver
		t.Errorf("definitions = %d, want 26", len(m1.Definitions()))
	}
}

func TestBuildRunnable(t *testing.T) {
	p := Profile{
		Name: "run", NumFuncs: 15, AvgSize: 25, MaxSize: 80,
		Identical: 0.2, TypeVar: 0.1, CFGVar: 0.1, Partial: 0.1,
		InternalFrac: 0.6, Seed: 77,
	}
	m := Build(p)
	mc := interp.NewMachine(m)
	registerWorkloadIntrinsics(mc)
	v1, err := mc.Run("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	mc2 := interp.NewMachine(Build(p))
	registerWorkloadIntrinsics(mc2)
	v2, err := mc2.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("driver output not deterministic: %d vs %d", v1, v2)
	}
}

func TestSuiteProfilesComplete(t *testing.T) {
	spec := SPECLike()
	if len(spec) != 19 {
		t.Errorf("SPEC-like suite has %d profiles, want 19 (Table I)", len(spec))
	}
	mi := MiBenchLike()
	if len(mi) != 23 {
		t.Errorf("MiBench-like suite has %d profiles, want 23 (Table II)", len(mi))
	}
	names := map[string]bool{}
	for _, p := range append(spec, mi...) {
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.NumFuncs < 2 || p.AvgSize < 1 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
	}
	// lbm must have no mergeable similarity (Table I row with 0 merges).
	for _, p := range spec {
		if p.Name == "470.lbm" && p.Identical+p.TypeVar+p.CFGVar+p.Partial > 0 {
			t.Error("470.lbm must have an empty clone mix")
		}
	}
}

func TestGenerateQuickProperty(t *testing.T) {
	// Property: any seed/shape combination yields verifiable IR.
	f := func(seed int64, regions, ops uint8, scalarPick uint8, guard, reorder bool) bool {
		scalars := []*ir.Type{ir.I32(), ir.I64(), ir.F32(), ir.F64()}
		m := ir.NewModule("q")
		Generate(m, FuncSpec{
			Name:          "f",
			Seed:          seed,
			Scalar:        scalars[int(scalarPick)%4],
			NumParams:     int(ops%4) + 1,
			Regions:       int(regions%6) + 1,
			OpsPerBlock:   int(ops%8) + 2,
			Guard:         guard,
			ReorderParams: reorder,
			DropMod:       int(seed % 7),
		})
		return ir.VerifyModule(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
