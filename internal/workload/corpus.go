package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fmsa/internal/ir"
	"fmsa/internal/wire"
)

// Corpus formats accepted by EmitCorpus and cmd/fmsa-gen -format.
const (
	FormatText = "ll"   // textual IR, one .ll file per corpus
	FormatFMIR = "fmir" // binary fmir, one .fmir file per corpus
)

// WriteModuleFile writes m to path in the given format, streaming through a
// buffered writer in both cases.
func WriteModuleFile(path, format string, m *ir.Module) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case FormatText:
		err = ir.PrintModule(f, m)
	case FormatFMIR:
		// The textual format materializes printer-assigned names on disk,
		// so round-trip through it first: a .fmir and a .ll emission of the
		// same module then decode to identical modules, names included.
		var norm *ir.Module
		if norm, err = ir.ParseModule(m.Name, ir.FormatModule(m)); err == nil {
			err = wire.WriteModule(f, norm)
		}
	default:
		err = fmt.Errorf("workload: unknown corpus format %q", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// EmitCorpus builds every profile's module and writes it to dir in the
// given format (FormatText or FormatFMIR), returning file paths in profile
// order. The same profile list emitted in both formats yields semantically
// identical corpora, which the ingest experiment relies on.
func EmitCorpus(dir, format string, profiles []Profile) ([]string, error) {
	paths := make([]string, 0, len(profiles))
	for _, p := range profiles {
		m := Build(p)
		base := strings.ReplaceAll(p.Name, ".", "_")
		path := filepath.Join(dir, base+"."+format)
		if err := WriteModuleFile(path, format, m); err != nil {
			return nil, fmt.Errorf("emitting %s: %w", p.Name, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
