package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fmsa/internal/ir"
)

// Profile describes one synthetic benchmark: its population size, function
// size distribution and clone-family mix. The SPEC-like and MiBench-like
// profiles are calibrated from Tables I and II of the paper (function
// counts and sizes are scaled down — see the Scale* constants — to keep the
// quadratic alignment tractable in tests; the similarity mix is chosen per
// suite so the relative behaviour of the three techniques matches the
// paper).
type Profile struct {
	// Name of the benchmark (paper names are reused).
	Name string
	// NumFuncs is the (already scaled) number of functions.
	NumFuncs int
	// AvgSize and MaxSize bound the per-function instruction counts
	// (already scaled).
	AvgSize, MaxSize int
	// Identical, ConstVar, TypeVar, CFGVar, Partial and Reorder are the
	// probabilities that a generated function is the corresponding clone
	// kind of an earlier template; the remainder are unrelated functions.
	//
	// Identical clones are mergeable by all three techniques; ConstVar
	// clones (same shape, different constants) additionally by SOA and
	// FMSA; the remaining kinds (different signatures, CFGs or lengths)
	// only by FMSA — mirroring which real-world clone classes each
	// technique can express (§II, §VI-A).
	Identical, ConstVar, TypeVar, CFGVar, Partial, Reorder float64
	// TwinSize, when positive, guarantees one pair of large CFG-variant
	// clones of roughly this instruction count (the rijndael
	// encrypt/decrypt pair of §V-B).
	TwinSize int
	// InternalFrac is the fraction of functions with internal linkage.
	InternalFrac float64
	// Seed drives the whole benchmark's generation.
	Seed int64
}

// Scale factors applied when deriving profiles from the paper's tables.
const (
	// ScaleFuncs divides the paper's function counts.
	ScaleFuncs = 4
	// ScaleSize divides the paper's function sizes.
	ScaleSize = 8
)

func scaled(n, div, min int) int {
	v := n / div
	if v < min {
		return min
	}
	return v
}

// specProfile builds a Profile from Table I numbers plus a similarity mix.
func specProfile(name string, fns, avg, max int, ident, cnst, typ, cfg, part, reord float64, seed int64) Profile {
	return Profile{
		Name:      name,
		NumFuncs:  scaled(fns, ScaleFuncs, 6),
		AvgSize:   scaled(avg, ScaleSize, 8),
		MaxSize:   scaled(max, ScaleSize, 24),
		Identical: ident, ConstVar: cnst, TypeVar: typ, CFGVar: cfg, Partial: part, Reorder: reord,
		InternalFrac: 0.7,
		Seed:         seed,
	}
}

// SPECLike returns the 19 benchmark profiles mirroring Table I. The clone
// mixes encode the paper's observations: the templated C++ benchmarks
// (dealII, xalancbmk, omnetpp, soplex, povray) carry many identical and
// near-identical clones; several C benchmarks (libquantum, sphinx3, milc)
// carry type- and CFG-variant clones invisible to the baselines; lbm has
// nothing to merge.
func SPECLike() []Profile {
	return []Profile{
		specProfile("400.perlbench", 1699, 125, 12501, 0.004, 0.006, 0.018, 0.014, 0.014, 0.004, 1),
		specProfile("401.bzip2", 74, 206, 5997, 0.000, 0.000, 0.030, 0.040, 0.080, 0.000, 2),
		specProfile("403.gcc", 4541, 128, 20688, 0.005, 0.006, 0.020, 0.014, 0.014, 0.004, 3),
		specProfile("429.mcf", 24, 87, 297, 0.000, 0.010, 0.015, 0.010, 0.010, 0.000, 4),
		specProfile("433.milc", 235, 68, 416, 0.002, 0.010, 0.045, 0.035, 0.025, 0.008, 5),
		specProfile("444.namd", 99, 571, 1698, 0.002, 0.006, 0.012, 0.008, 0.010, 0.000, 6),
		specProfile("445.gobmk", 2511, 43, 3140, 0.006, 0.008, 0.016, 0.012, 0.012, 0.004, 7),
		specProfile("447.dealII", 7380, 61, 4856, 0.030, 0.020, 0.042, 0.028, 0.028, 0.010, 8),
		specProfile("450.soplex", 1035, 73, 1719, 0.020, 0.015, 0.038, 0.028, 0.028, 0.008, 9),
		specProfile("453.povray", 1585, 98, 5324, 0.012, 0.010, 0.028, 0.020, 0.022, 0.006, 10),
		specProfile("456.hmmer", 487, 100, 1511, 0.002, 0.005, 0.016, 0.012, 0.012, 0.002, 11),
		specProfile("458.sjeng", 134, 145, 1252, 0.000, 0.004, 0.012, 0.010, 0.012, 0.000, 12),
		specProfile("462.libquantum", 95, 57, 626, 0.000, 0.008, 0.055, 0.045, 0.028, 0.008, 13),
		specProfile("464.h264ref", 523, 171, 5445, 0.002, 0.005, 0.016, 0.012, 0.012, 0.002, 14),
		specProfile("470.lbm", 17, 123, 680, 0.000, 0.000, 0.000, 0.000, 0.000, 0.000, 15),
		specProfile("471.omnetpp", 1406, 27, 611, 0.022, 0.016, 0.040, 0.028, 0.028, 0.010, 16),
		specProfile("473.astar", 101, 67, 584, 0.000, 0.004, 0.014, 0.010, 0.012, 0.000, 17),
		specProfile("482.sphinx3", 326, 80, 924, 0.002, 0.008, 0.055, 0.042, 0.028, 0.008, 18),
		specProfile("483.xalancbmk", 14191, 39, 3809, 0.030, 0.020, 0.042, 0.028, 0.028, 0.010, 19),
	}
}

// UnscaledSmall returns paper-scale (ScaleFuncs=ScaleSize=1) profiles for
// the suite's smaller benchmarks. At full function sizes the quadratic
// Needleman–Wunsch cost dominates the pipeline the way Fig. 13 reports;
// the scaled suite shrinks alignment 64× but code generation only 8×, so
// only the unscaled profiles reproduce the paper's phase breakdown shape.
func UnscaledSmall() []Profile {
	full := func(name string, fns, avg, max int, ident, cnst, typ, cfg, part, reord float64, seed int64) Profile {
		return Profile{
			Name:      name,
			NumFuncs:  fns,
			AvgSize:   avg,
			MaxSize:   max,
			Identical: ident, ConstVar: cnst, TypeVar: typ, CFGVar: cfg, Partial: part, Reorder: reord,
			InternalFrac: 0.7,
			Seed:         seed,
		}
	}
	return []Profile{
		full("429.mcf", 24, 87, 297, 0.000, 0.010, 0.015, 0.010, 0.010, 0.000, 4),
		full("433.milc", 235, 68, 416, 0.002, 0.010, 0.045, 0.035, 0.025, 0.008, 5),
		full("462.libquantum", 95, 57, 626, 0.000, 0.008, 0.055, 0.045, 0.028, 0.008, 13),
		full("482.sphinx3", 326, 80, 924, 0.002, 0.008, 0.055, 0.042, 0.028, 0.008, 18),
	}
}

// mibenchProfile builds a Profile from Table II numbers. MiBench programs
// are tiny; counts are scaled less aggressively.
func mibenchProfile(name string, fns, avg, max int, ident, typ, cfg, part float64, seed int64) Profile {
	nf := fns / 2
	if nf < 2 {
		nf = 2
	}
	return Profile{
		Name:      name,
		NumFuncs:  nf,
		AvgSize:   scaled(avg, ScaleSize, 8),
		MaxSize:   scaled(max, ScaleSize, 16),
		Identical: ident, TypeVar: typ, CFGVar: cfg, Partial: part,
		InternalFrac: 0.5,
		Seed:         seed,
	}
}

// MiBenchLike returns the 23 benchmark profiles mirroring Table II. Most
// programs have no mergeable similarity at all; rijndael carries one large
// near-identical pair (encrypt/decrypt), ghostscript and typeset carry many.
func MiBenchLike() []Profile {
	profiles := []Profile{
		mibenchProfile("CRC32", 4, 25, 39, 0, 0, 0, 0, 101),
		mibenchProfile("FFT", 7, 50, 144, 0, 0, 0, 0, 102),
		mibenchProfile("adpcm_c", 3, 73, 100, 0, 0, 0, 0, 103),
		mibenchProfile("adpcm_d", 3, 73, 100, 0, 0, 0, 0, 104),
		mibenchProfile("basicmath", 5, 71, 232, 0, 0, 0, 0, 105),
		mibenchProfile("bitcount", 19, 22, 63, 0, 0.10, 0.05, 0.10, 106),
		mibenchProfile("blowfish_d", 8, 245, 824, 0, 0, 0, 0, 107),
		mibenchProfile("blowfish_e", 8, 245, 824, 0, 0, 0, 0, 108),
		mibenchProfile("jpeg_c", 322, 101, 1269, 0.004, 0.010, 0.008, 0.010, 109),
		mibenchProfile("dijkstra", 6, 33, 89, 0, 0, 0, 0, 110),
		mibenchProfile("jpeg_d", 310, 99, 1269, 0.004, 0.010, 0.008, 0.010, 111),
		mibenchProfile("ghostscript", 3446, 54, 4218, 0.004, 0.022, 0.016, 0.018, 112),
		mibenchProfile("gsm", 69, 97, 737, 0, 0.030, 0.025, 0.030, 113),
		mibenchProfile("ispell", 84, 106, 1082, 0, 0.018, 0.014, 0.018, 114),
		mibenchProfile("patricia", 5, 77, 167, 0, 0, 0, 0, 115),
		mibenchProfile("pgp", 310, 89, 1845, 0, 0.010, 0.008, 0.012, 116),
		mibenchProfile("qsort", 2, 50, 89, 0, 0, 0, 0, 117),
		mibenchProfile("rijndael", 7, 472, 1247, 0, 0, 0, 0, 118),
		mibenchProfile("rsynth", 46, 97, 778, 0, 0.005, 0.005, 0.005, 119),
		mibenchProfile("sha", 7, 53, 150, 0, 0, 0, 0, 120),
		mibenchProfile("stringsearch", 10, 48, 99, 0, 0.06, 0.03, 0.03, 121),
		mibenchProfile("susan", 19, 292, 1212, 0, 0.015, 0.015, 0.015, 122),
		mibenchProfile("typeset", 362, 354, 12125, 0.004, 0.014, 0.010, 0.016, 123),
	}
	for i := range profiles {
		if profiles[i].Name == "rijndael" {
			// The encrypt/decrypt twins dominate rijndael's code (§V-B:
			// "the two functions contain over 70% of the code").
			profiles[i].TwinSize = scaled(1247, ScaleSize, 16)
		}
	}
	return profiles
}

// Build synthesizes the module for a profile, including a driver function
// (@main) that exercises every generated function so the whole call graph
// is live under the interpreter.
func Build(p Profile) *ir.Module {
	m := ir.NewModule(p.Name)
	Externs(m)
	rng := rand.New(rand.NewSource(p.Seed))

	type template struct {
		spec FuncSpec
	}
	var templates []template
	var funcs []*ir.Func

	for i := 0; i < p.NumFuncs; i++ {
		r := rng.Float64()
		var spec FuncSpec
		fresh := len(templates) == 0
		c1 := p.Identical
		c2 := c1 + p.ConstVar
		c3 := c2 + p.TypeVar
		c4 := c3 + p.CFGVar
		c5 := c4 + p.Partial
		c6 := c5 + p.Reorder
		switch {
		case !fresh && r < c1:
			spec = templates[rng.Intn(len(templates))].spec
		case !fresh && r < c2:
			spec = templates[rng.Intn(len(templates))].spec
			spec.ConstSalt += int64(rng.Intn(5) + 1)
		case !fresh && r < c3:
			spec = templates[rng.Intn(len(templates))].spec
			spec.Scalar = otherScalar(spec.Scalar)
		case !fresh && r < c4:
			spec = templates[rng.Intn(len(templates))].spec
			spec.Guard = !spec.Guard
		case !fresh && r < c5:
			spec = templates[rng.Intn(len(templates))].spec
			spec.ConstSalt += int64(rng.Intn(5) + 1)
			spec.DropMod = 9 + rng.Intn(8)
		case !fresh && r < c6:
			spec = templates[rng.Intn(len(templates))].spec
			spec.ReorderParams = !spec.ReorderParams
		default:
			spec = freshSpec(p, rng, i)
			templates = append(templates, template{spec: spec})
		}
		spec.Name = fmt.Sprintf("f%03d", i)
		spec.Internal = rng.Float64() < p.InternalFrac
		funcs = append(funcs, Generate(m, spec))
	}

	if p.TwinSize > 0 {
		// One guaranteed pair of large CFG-variant clones (rijndael's
		// encrypt/decrypt, §V-B).
		regions := p.TwinSize / 24
		if regions < 2 {
			regions = 2
		}
		if regions > 10 {
			regions = 10
		}
		twin := FuncSpec{
			Seed:        p.Seed*31337 + 7,
			Scalar:      ir.I64(),
			NumParams:   3,
			Regions:     regions,
			OpsPerBlock: p.TwinSize / (regions * 2),
			Internal:    true,
			Name:        "encrypt",
		}
		funcs = append(funcs, Generate(m, twin))
		twin.Name = "decrypt"
		twin.Guard = true
		twin.ConstSalt += 3
		funcs = append(funcs, Generate(m, twin))
	}

	buildDriver(m, funcs, p.Seed)
	return m
}

// freshSpec draws a new template: size from a clamped lognormal around
// AvgSize, structural parameters derived from it.
func freshSpec(p Profile, rng *rand.Rand, i int) FuncSpec {
	size := int(float64(p.AvgSize) * math.Exp(rng.NormFloat64()*0.7))
	if size < 6 {
		size = 6
	}
	if size > p.MaxSize {
		size = p.MaxSize
	}
	regions := size / 24
	if regions < 1 {
		regions = 1
	}
	if regions > 10 {
		regions = 10
	}
	ops := size / (regions * 2)
	if ops < 2 {
		ops = 2
	}
	scalars := []*ir.Type{ir.I32(), ir.I64(), ir.F32(), ir.F64()}
	return FuncSpec{
		Seed:        p.Seed*100003 + int64(i)*7919,
		Scalar:      scalars[rng.Intn(len(scalars))],
		NumParams:   rng.Intn(4) + 1,
		Regions:     regions,
		OpsPerBlock: ops,
		ConstSalt:   int64(rng.Intn(40)),
		VoidRet:     rng.Intn(6) == 0,
	}
}

// otherScalar swaps a scalar type for its sibling of the other width
// (i32↔i64, f32↔f64), the Fig. 1 mutation.
func otherScalar(t *ir.Type) *ir.Type {
	switch t {
	case ir.I32():
		return ir.I64()
	case ir.I64():
		return ir.I32()
	case ir.F32():
		return ir.F64()
	case ir.F64():
		return ir.F32()
	default:
		return ir.I64()
	}
}

// CallWeight returns the driver's call count for the i-th generated
// function. The distribution is heavily skewed, like real program profiles:
// ~3% of functions are very hot (200 calls), ~8% warm (40 calls), the rest
// cold (1 call). Runtime-impact experiments (Fig. 14, §V-D) depend on this
// skew — merging a cold function is free at runtime, merging a hot one is
// not.
func CallWeight(i int) int64 {
	h := (i*2654435761 + 97) % 97
	switch {
	case h < 3:
		return 200
	case h < 11:
		return 40
	default:
		return 1
	}
}

// buildDriver emits @main calling every generated function with
// deterministic arguments inside counted loops whose trip counts follow
// CallWeight, accumulating results into a sink.
func buildDriver(m *ir.Module, funcs []*ir.Func, seed int64) {
	main := m.NewFuncIn("main", ir.FuncOf(ir.I64()))
	entry := main.NewBlockIn("entry")
	bd := ir.NewBuilder(entry)
	buf := bd.Alloca(ir.ArrayOf(64, ir.I64()))
	bufPtr := bd.GEP(buf, ir.NewConstInt(ir.I64(), 0), ir.NewConstInt(ir.I64(), 0))
	acc := bd.Alloca(ir.I64())
	bd.Store(ir.NewConstInt(ir.I64(), 0), acc)
	cnt := bd.Alloca(ir.I64())

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i, f := range funcs {
		args := make([]ir.Value, len(f.Params))
		for k, pt := range f.Sig().Fields {
			switch {
			case pt == ir.PointerTo(ir.I64()):
				args[k] = bufPtr
			case pt.IsInt():
				args[k] = ir.NewConstInt(pt, int64(rng.Intn(1000)))
			case pt.IsFloat():
				args[k] = ir.NewConstFloat(pt, float64(rng.Intn(100))/3)
			case pt.IsPointer():
				args[k] = ir.NewConstNull(pt)
			default:
				args[k] = ir.NewUndef(pt)
			}
		}
		weight := CallWeight(i)

		head := main.NewBlockIn(fmt.Sprintf("head%d", i))
		body := main.NewBlockIn(fmt.Sprintf("body%d", i))
		next := main.NewBlockIn(fmt.Sprintf("next%d", i))
		bd.Store(ir.NewConstInt(ir.I64(), 0), cnt)
		bd.Br(head)

		bd.SetBlock(head)
		cv := bd.Load(cnt)
		cond := bd.ICmp(ir.PredSLT, cv, ir.NewConstInt(ir.I64(), weight))
		bd.CondBr(cond, body, next)

		bd.SetBlock(body)
		call := bd.Call(f, args...)
		if call.Type() == ir.I64() {
			old := bd.Load(acc)
			sum := bd.Add(old, call)
			bd.Store(sum, acc)
		}
		cv2 := bd.Load(cnt)
		bd.Store(bd.Add(cv2, ir.NewConstInt(ir.I64(), 1)), cnt)
		bd.Br(head)

		bd.SetBlock(next)
	}
	out := bd.Load(acc)
	bd.Ret(out)
}
