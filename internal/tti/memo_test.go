package tti

import (
	"sync"
	"testing"

	"fmsa/internal/ir"
)

const memoSrc = `
define i64 @g(i64 %a) {
entry:
  %s = add i64 %a, 1
  %q = mul i64 %s, 3
  ret i64 %q
}

define void @h(i64 %a) {
entry:
  %r = call i64 @g(i64 %a)
  ret void
}
`

func TestCostMemoMatchesDirect(t *testing.T) {
	m := parse(t, memoSrc)
	memo := NewCostMemo()
	for _, tgt := range Targets() {
		for _, f := range m.Funcs {
			want := FuncSize(tgt, f)
			if got := memo.FuncSize(tgt, f); got != want {
				t.Errorf("%s/%s: memo miss = %d, direct = %d", tgt.Name(), f.Name(), got, want)
			}
			if got := memo.FuncSize(tgt, f); got != want {
				t.Errorf("%s/%s: memo hit = %d, direct = %d", tgt.Name(), f.Name(), got, want)
			}
		}
	}
	if memo.Len() != len(m.Funcs) {
		t.Errorf("Len = %d, want %d", memo.Len(), len(m.Funcs))
	}
}

// TestCostMemoDropInvalidates is the drop-only invalidation contract: a
// stale entry survives mutation until Drop, and the next lookup after Drop
// re-measures the changed body.
func TestCostMemoDropInvalidates(t *testing.T) {
	m := parse(t, memoSrc)
	g := m.FuncByName("g")
	tgt := X86{}
	memo := NewCostMemo()
	before := memo.FuncSize(tgt, g)

	// Mutate g: append an instruction to the entry block.
	entry := g.Blocks[0]
	ret := entry.Insts[len(entry.Insts)-1]
	entry.InsertBefore(ir.NewInst(ir.OpAdd, ir.I64(), g.Params[0], g.Params[0]), ret)
	if got := memo.FuncSize(tgt, g); got != before {
		t.Fatalf("pre-Drop lookup re-measured: %d, want cached %d", got, before)
	}
	memo.Drop(g)
	after := memo.FuncSize(tgt, g)
	if after <= before {
		t.Fatalf("post-Drop size = %d, want > %d", after, before)
	}
	if want := FuncSize(tgt, g); after != want {
		t.Fatalf("post-Drop size = %d, direct = %d", after, want)
	}
}

// TestCostMemoNilSafe checks the nil receiver computes directly, so an
// optional memo can be threaded through unconditionally.
func TestCostMemoNilSafe(t *testing.T) {
	m := parse(t, memoSrc)
	g := m.FuncByName("g")
	var memo *CostMemo
	if got, want := memo.FuncSize(X86{}, g), FuncSize(X86{}, g); got != want {
		t.Errorf("nil memo FuncSize = %d, want %d", got, want)
	}
	memo.Drop(g) // must not panic
	if memo.Len() != 0 {
		t.Errorf("nil memo Len = %d, want 0", memo.Len())
	}
}

// TestCostMemoConcurrentLookups races many lookups across targets and
// functions (run under -race): all must agree with the direct computation.
func TestCostMemoConcurrentLookups(t *testing.T) {
	m := parse(t, memoSrc)
	memo := NewCostMemo()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, tgt := range Targets() {
					for _, f := range m.Funcs {
						if got, want := memo.FuncSize(tgt, f), FuncSize(tgt, f); got != want {
							t.Errorf("%s/%s: concurrent lookup = %d, want %d", tgt.Name(), f.Name(), got, want)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
