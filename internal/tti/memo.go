package tti

import (
	"sync"

	"fmsa/internal/ir"
)

// CostMemo caches FuncSize results per function and target so repeated cost
// evaluations of the same (unchanged) function — one per speculative merge
// attempt it participates in — collapse to one instruction walk. It backs
// both the pre-codegen profitability bound and the exact profit evaluation
// in the exploration pipeline.
//
// Invalidation contract (drop-only, mirroring the exploration linearization
// cache): a cached size is valid until the function's instructions change.
// The only mutation during exploration is a merge commit, which rewrites the
// call sites of every caller of the two merged inputs (widened argument
// lists change call-instruction sizes) and drops/thunkifies the inputs
// themselves — so the caller must Drop exactly the staleAfterCommit set
// after every commit. Dropped functions are re-measured lazily on the next
// lookup.
//
// Concurrency: safe for concurrent FuncSize lookups (the evaluation wave);
// Drop must not race with lookups of the same function, which holds because
// drops run serially between waves — the same discipline the linearization
// cache relies on. Sizing on a miss happens outside the lock: FuncSize is a
// pure read of the function body, so racing computations agree and the
// first writer wins.
type CostMemo struct {
	mu      sync.RWMutex
	entries map[*ir.Func]map[string]int
}

// NewCostMemo returns an empty memo.
func NewCostMemo() *CostMemo {
	return &CostMemo{entries: map[*ir.Func]map[string]int{}}
}

// FuncSize returns the memoized FuncSize(t, f), computing and caching it on
// a miss. A nil receiver computes directly without caching, so callers can
// thread an optional memo through unconditionally.
func (m *CostMemo) FuncSize(t Target, f *ir.Func) int {
	if m == nil {
		return FuncSize(t, f)
	}
	name := t.Name()
	m.mu.RLock()
	size, ok := m.entries[f][name]
	m.mu.RUnlock()
	if ok {
		return size
	}
	size = FuncSize(t, f)
	m.mu.Lock()
	byTarget := m.entries[f]
	if byTarget == nil {
		byTarget = map[string]int{}
		m.entries[f] = byTarget
	}
	if won, ok := byTarget[name]; ok {
		size = won // racing computations agree; keep the first
	} else {
		byTarget[name] = size
	}
	m.mu.Unlock()
	return size
}

// Drop invalidates every cached size of f (all targets). Nil-safe.
func (m *CostMemo) Drop(f *ir.Func) {
	if m == nil {
		return
	}
	m.mu.Lock()
	delete(m.entries, f)
	m.mu.Unlock()
}

// Len reports the number of memoized functions (for tests).
func (m *CostMemo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}
