package tti

import (
	"testing"

	"fmsa/internal/ir"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const costSrc = `
define i64 @f(i64 %a, i64 %b) {
entry:
  %p = alloca i64
  store i64 %a, i64* %p
  %v = load i64, i64* %p
  %s = add i64 %v, %b
  %q = mul i64 %s, 3
  %c = icmp slt i64 %q, 100
  %r = select i1 %c, i64 %q, i64 %s
  ret i64 %r
}
`

func TestFuncSizePositive(t *testing.T) {
	m := parse(t, costSrc)
	f := m.FuncByName("f")
	for _, tgt := range Targets() {
		size := FuncSize(tgt, f)
		if size <= tgt.FuncOverhead() {
			t.Errorf("%s: FuncSize = %d, must exceed overhead %d", tgt.Name(), size, tgt.FuncOverhead())
		}
	}
}

func TestDeclarationsCostNothing(t *testing.T) {
	m := parse(t, "declare void @ext(i64)")
	for _, tgt := range Targets() {
		if s := FuncSize(tgt, m.FuncByName("ext")); s != 0 {
			t.Errorf("%s: declaration size = %d, want 0", tgt.Name(), s)
		}
	}
}

func TestModuleSizeIsSumOfFuncs(t *testing.T) {
	m := parse(t, costSrc+`
define void @g() {
entry:
  ret void
}
`)
	for _, tgt := range Targets() {
		sum := 0
		for _, f := range m.Funcs {
			sum += FuncSize(tgt, f)
		}
		if got := ModuleSize(tgt, m); got != sum {
			t.Errorf("%s: ModuleSize = %d, want %d", tgt.Name(), got, sum)
		}
	}
}

func TestThumbDenserThanX86(t *testing.T) {
	// Thumb is a compact encoding: on integer-heavy straight-line code it
	// should not be larger than x86-64.
	m := parse(t, costSrc)
	f := m.FuncByName("f")
	x := FuncSize(X86{}, f)
	th := FuncSize(Thumb{}, f)
	if th > x {
		t.Errorf("thumb (%d) larger than x86-64 (%d) on integer code", th, x)
	}
}

func TestFreeCastsAndAllocas(t *testing.T) {
	m := parse(t, `
define i64 @f(i64 %a) {
entry:
  %p = alloca f64
  %b = bitcast i64 %a to f64
  store f64 %b, f64* %p
  %i = ptrtoint f64* %p to i64
  ret i64 %i
}
`)
	var frees int
	m.FuncByName("f").Insts(func(in *ir.Inst) {
		for _, tgt := range Targets() {
			switch in.Op {
			case ir.OpAlloca, ir.OpBitCast, ir.OpPtrToInt:
				if tgt.InstSize(in) != 0 {
					t.Errorf("%s: %s should fold to zero bytes", tgt.Name(), in.Op)
				}
				frees++
			}
		}
	})
	if frees == 0 {
		t.Fatal("test matched no instructions")
	}
}

func TestCallCostScalesWithArity(t *testing.T) {
	m := parse(t, `
declare void @few(i64)
declare void @many(i64, i64, i64, i64, i64)

define void @f(i64 %a) {
entry:
  call void @few(i64 %a)
  call void @many(i64 %a, i64 %a, i64 %a, i64 %a, i64 %a)
  ret void
}
`)
	var callFew, callMany *ir.Inst
	m.FuncByName("f").Insts(func(in *ir.Inst) {
		if in.Op == ir.OpCall {
			if len(in.CallArgs()) == 1 {
				callFew = in
			} else {
				callMany = in
			}
		}
	})
	for _, tgt := range Targets() {
		if tgt.InstSize(callMany) <= tgt.InstSize(callFew) {
			t.Errorf("%s: call cost must grow with arity", tgt.Name())
		}
	}
}

func TestWideOpsCostMore(t *testing.T) {
	m := parse(t, `
define void @f(i32 %a, i64 %b) {
entry:
  %x = add i32 %a, 1
  %y = add i64 %b, 1
  ret void
}
`)
	var add32, add64 *ir.Inst
	m.FuncByName("f").Insts(func(in *ir.Inst) {
		if in.Op == ir.OpAdd {
			if in.Type() == ir.I32() {
				add32 = in
			} else {
				add64 = in
			}
		}
	})
	for _, tgt := range Targets() {
		if tgt.InstSize(add64) <= tgt.InstSize(add32) {
			t.Errorf("%s: 64-bit add should cost more than 32-bit", tgt.Name())
		}
	}
}

// exhaustiveIR exercises every opcode the cost models size.
const exhaustiveIR = `
declare void @may_throw()
declare void @h(i64)

define i64 @everything(i64 %a, i64 %b, f64 %x, f32 %y, i64* %p, i1 %c) {
entry:
  %t01 = add i64 %a, %b
  %t02 = sub i64 %a, %b
  %t03 = mul i64 %a, %b
  %t04 = sdiv i64 %a, 3
  %t05 = udiv i64 %a, 3
  %t06 = srem i64 %a, 3
  %t07 = urem i64 %a, 3
  %t08 = shl i64 %a, 2
  %t09 = lshr i64 %a, 2
  %t10 = ashr i64 %a, 2
  %t11 = and i64 %a, %b
  %t12 = or i64 %a, %b
  %t13 = xor i64 %a, %b
  %f01 = fadd f64 %x, %x
  %f02 = fsub f64 %x, %x
  %f03 = fmul f64 %x, %x
  %f04 = fdiv f64 %x, %x
  %f05 = frem f64 %x, %x
  %m1 = alloca {i64, f64}
  %g1 = getelementptr {i64, f64}, {i64, f64}* %m1, i64 0, i32 1
  store f64 %f01, f64* %g1
  %l1 = load f64, f64* %g1
  %c1 = trunc i64 %a to i32
  %c2 = zext i32 %c1 to i64
  %c3 = sext i32 %c1 to i64
  %c4 = fptrunc f64 %x to f32
  %c5 = fpext f32 %y to f64
  %c6 = fptosi f64 %x to i64
  %c7 = fptoui f64 %x to i64
  %c8 = sitofp i64 %a to f64
  %c9 = uitofp i64 %a to f64
  %ca = ptrtoint i64* %p to i64
  %cb = inttoptr i64 %ca to i64*
  %cc = bitcast f64 %x to i64
  %i1 = icmp slt i64 %a, %b
  %fc = fcmp olt f64 %x, %f01
  %s1 = select i1 %c, i64 %a, i64 %b
  call void @h(i64 %s1)
  invoke void @may_throw() to label %mid unwind label %lpad
mid:
  switch i64 %a, label %def [ i64 1, label %one i64 2, label %two ]
one:
  br label %def
two:
  br i1 %c, label %def, label %dead
dead:
  unreachable
def:
  ret i64 %t01
lpad:
  %lp = landingpad cleanup
  resume token %lp
}
`

func TestEveryOpcodeHasACost(t *testing.T) {
	m := parse(t, exhaustiveIR)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	f := m.FuncByName("everything")
	seen := map[ir.Opcode]bool{}
	for _, tgt := range Targets() {
		f.Insts(func(in *ir.Inst) {
			seen[in.Op] = true
			size := tgt.InstSize(in)
			if size < 0 {
				t.Errorf("%s: negative size for %s", tgt.Name(), in.Op)
			}
			// Only known-free instructions may cost zero.
			switch in.Op {
			case ir.OpAlloca, ir.OpBitCast, ir.OpPtrToInt, ir.OpIntToPtr:
			default:
				if size == 0 {
					t.Errorf("%s: %s costs zero", tgt.Name(), in.Op)
				}
			}
		})
	}
	// The fixture must cover nearly the whole opcode space (phi is absent
	// by construction).
	covered := 0
	for op := ir.OpRet; op < ir.NumOpcodes; op++ {
		if seen[op] {
			covered++
		}
	}
	if covered < int(ir.NumOpcodes)-2 {
		t.Errorf("fixture covers %d/%d opcodes", covered, int(ir.NumOpcodes)-1)
	}
}

func TestByName(t *testing.T) {
	if ByName("x86-64") == nil || ByName("thumb") == nil || ByName("intel") == nil || ByName("arm") == nil {
		t.Error("known target names must resolve")
	}
	if ByName("riscv") != nil {
		t.Error("unknown target must return nil")
	}
}
