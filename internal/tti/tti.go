// Package tti provides target-specific code-size cost models, standing in
// for LLVM's target transformation interface (TTI). The merging pass
// queries it to estimate the object-code size of IR instructions, functions
// and modules when lowered to a particular instruction set (paper §IV-A).
//
// Two targets are modelled, mirroring the paper's evaluation platforms: an
// x86-64-like CISC encoding with variable-length instructions, and an ARM
// Thumb-like compact RISC encoding mixing 16- and 32-bit instructions.
// The byte counts are calibrated approximations — profitability decisions
// only need relative accuracy, not exact encodings.
package tti

import "fmsa/internal/ir"

// Target estimates code-size costs for one instruction set.
type Target interface {
	// Name identifies the target ("x86-64" or "thumb").
	Name() string
	// InstSize returns the estimated lowered size of one instruction in
	// bytes. Instructions that typically fold away (allocas merged into
	// the frame, bitcasts) cost zero or near zero.
	InstSize(in *ir.Inst) int
	// FuncOverhead returns the fixed per-function cost in bytes:
	// prologue, epilogue and linker alignment padding. Merging two
	// functions into one recovers this overhead once.
	FuncOverhead() int
}

// FuncSize returns the estimated object-code size of a function definition
// in bytes, including per-function overhead. Declarations cost nothing.
func FuncSize(t Target, f *ir.Func) int {
	if f.IsDecl() {
		return 0
	}
	size := t.FuncOverhead()
	f.Insts(func(in *ir.Inst) {
		size += t.InstSize(in)
	})
	return size
}

// ModuleSize returns the estimated total object-code size of all function
// definitions in the module, in bytes.
func ModuleSize(t Target, m *ir.Module) int {
	size := 0
	for _, f := range m.Funcs {
		size += FuncSize(t, f)
	}
	return size
}

// ByName returns the target with the given name, or nil.
func ByName(name string) Target {
	switch name {
	case "x86-64", "x86", "intel":
		return X86{}
	case "thumb", "arm":
		return Thumb{}
	default:
		return nil
	}
}

// Targets returns all modelled targets in a stable order.
func Targets() []Target { return []Target{X86{}, Thumb{}} }

// X86 models an x86-64-like variable-length CISC encoding.
type X86 struct{}

// Name returns "x86-64".
func (X86) Name() string { return "x86-64" }

// FuncOverhead returns the prologue/epilogue/padding cost.
func (X86) FuncOverhead() int { return 12 }

// InstSize estimates the lowered byte size of in for x86-64.
func (X86) InstSize(in *ir.Inst) int {
	wide := 0 // REX-prefix style penalty for 64-bit operations
	if in.Type().IsInt() && in.Type().Bits == 64 {
		wide = 1
	}
	switch in.Op {
	case ir.OpRet:
		return 1
	case ir.OpBr:
		if in.NumOperands() == 1 {
			return 2 // jmp rel8
		}
		return 4 // test + jcc (cmp usually fused with the icmp)
	case ir.OpSwitch:
		// cmp+jcc chain (small switches) / jump table dispatch.
		cases := (in.NumOperands() - 2) / 2
		return 6 + 5*cases
	case ir.OpUnreachable:
		return 1 // ud2 fits in 2, but trailing; keep it cheap
	case ir.OpInvoke:
		return 5 + 2*len(in.CallArgs()) // call + arg moves + EH tables amortized
	case ir.OpResume:
		return 5
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor:
		return 3 + wide
	case ir.OpMul:
		return 4 + wide
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		return 6 + wide // cdq + idiv + moves
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFRem:
		return 4 // SSE scalar op
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return 3 + wide
	case ir.OpAlloca:
		return 0 // folded into frame setup
	case ir.OpLoad:
		return 3 + wide
	case ir.OpStore:
		return 3 + wide
	case ir.OpGEP:
		// lea with complex addressing; extra indices need arithmetic.
		extra := in.NumOperands() - 2
		if extra < 0 {
			extra = 0
		}
		return 4 + 2*extra
	case ir.OpTrunc:
		return 2
	case ir.OpZExt, ir.OpSExt:
		return 3
	case ir.OpFPTrunc, ir.OpFPExt, ir.OpFPToSI, ir.OpFPToUI, ir.OpSIToFP, ir.OpUIToFP:
		return 4 // cvt* instructions
	case ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitCast:
		return 0 // no-op moves, usually coalesced
	case ir.OpICmp:
		return 3 + wide
	case ir.OpFCmp:
		return 4 // ucomiss/ucomisd
	case ir.OpPhi:
		return 2 // register shuffles on edges, amortized
	case ir.OpSelect:
		return 4 // cmov
	case ir.OpCall:
		return 5 + 2*len(in.CallArgs()) // call rel32 + arg moves
	case ir.OpLandingPad:
		return 4 // EH table entries amortized into text estimate
	default:
		return 4
	}
}

// Thumb models an ARM Thumb-2-like encoding with freeform mixing of 16- and
// 32-bit instructions.
type Thumb struct{}

// Name returns "thumb".
func (Thumb) Name() string { return "thumb" }

// FuncOverhead returns the prologue/epilogue/padding cost.
func (Thumb) FuncOverhead() int { return 8 }

// InstSize estimates the lowered byte size of in for Thumb.
func (Thumb) InstSize(in *ir.Inst) int {
	wide := 0 // 64-bit integer ops need instruction pairs
	if in.Type().IsInt() && in.Type().Bits == 64 {
		wide = 2
	}
	switch in.Op {
	case ir.OpRet:
		return 2 // bx lr / pop {pc}
	case ir.OpBr:
		if in.NumOperands() == 1 {
			return 2
		}
		return 4 // cmp + bcc
	case ir.OpSwitch:
		cases := (in.NumOperands() - 2) / 2
		return 4 + 4*cases
	case ir.OpUnreachable:
		return 2
	case ir.OpInvoke:
		return 4 + 2*len(in.CallArgs())
	case ir.OpResume:
		return 4
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor:
		return 2 + wide
	case ir.OpMul:
		return 4 + wide
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		return 4 + wide // sdiv + mls for rem
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFRem:
		return 4 // VFP
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return 2 + wide
	case ir.OpAlloca:
		return 0
	case ir.OpLoad:
		return 2 + wide
	case ir.OpStore:
		return 2 + wide
	case ir.OpGEP:
		extra := in.NumOperands() - 2
		if extra < 0 {
			extra = 0
		}
		return 2 + 2*extra
	case ir.OpTrunc:
		return 2
	case ir.OpZExt, ir.OpSExt:
		return 2 // uxt*/sxt*
	case ir.OpFPTrunc, ir.OpFPExt, ir.OpFPToSI, ir.OpFPToUI, ir.OpSIToFP, ir.OpUIToFP:
		return 4
	case ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitCast:
		return 0
	case ir.OpICmp:
		return 2 + wide
	case ir.OpFCmp:
		return 4
	case ir.OpPhi:
		return 2
	case ir.OpSelect:
		return 6 // IT block + conditional moves
	case ir.OpCall:
		return 4 + 2*len(in.CallArgs()) // bl + arg moves
	case ir.OpLandingPad:
		return 4
	default:
		return 4
	}
}
