package explore

// Pure warm-session state: the content-key table and negative-attempt memo
// shared across a session's runs, the name-keyed stored candidate lists a
// delta submission reconciles instead of rescanning, and the seed structure
// that carries all of it into a runner. Everything here is a pure function
// of its inputs — the session orchestration (and all of its wall-clock
// timing) lives in session.go.
//
// Correctness contracts, in one place:
//
//   - keyTable: a funcKey with ok=true means the function's canonical
//     structural key (global.AppendStableKey) is byte-equal to the table
//     entry for its hash AND the function is self-comparable (selfEq). Key
//     equality at that strength implies column-for-column structural
//     equality, so two ok funcKeys with equal hashes denote structurally
//     identical bodies — across runs and across modules.
//   - negMemo: an entry (h1, h2, s1, s2) asserts that merging a function
//     with verified key h1 into one with verified key h2, under caller
//     snapshots s1/s2 and the session's pinned options, failed or priced
//     unprofitable. Merge outcome and exact profit are pure functions of
//     the two bodies and those snapshots, so the assertion transfers to any
//     later attempt with the same verified keys and snapshots. Skipping
//     such an attempt is invisible in the merge records: an unprofitable
//     attempt commits nothing and CandidatesEvaluated follows sequential
//     semantics (the winner's rank), not the set of attempts actually run.
//   - warmList: a stored list is the exact top-depth prefix (or, when
//     complete, the entire set) of its owner's initial candidate ranking
//     under the corpus it was stored for, ordered by (similarity desc,
//     size desc, pool index asc). prune/offer preserve that invariant
//     under member eviction and candidate insertion, so a reconciled list
//     seeds the next run with exactly what a cold scan would build.

import (
	"bytes"
	"sync"
	"sync/atomic"

	"fmsa/internal/core"
	"fmsa/internal/fingerprint"
	"fmsa/internal/global"
	"fmsa/internal/ir"
)

// DefaultKeyTableCap bounds the session content-key table (entries). A full
// table stops verifying new content; affected functions simply lose
// negative-memo coverage.
const DefaultKeyTableCap = 1 << 17

// DefaultNegMemoCap bounds the negative-attempt memo (entries). A full memo
// stops inserting; results are unaffected either way.
const DefaultNegMemoCap = 1 << 17

// DefaultSessionAlignMemoCap is the alignment-memo bound a session uses
// when Options.AlignMemoCap is zero — larger than the per-run default
// because the memo now amortizes across every submission.
const DefaultSessionAlignMemoCap = 1 << 16

// funcKey is a function's verified content identity: hash is its stable
// structural hash, and ok reports that the hash was verified byte-for-byte
// against the session content table (see keyTable). Functions with ok=false
// (phi/unmodeled-invoke bodies, hash collisions, a full table) never
// participate in the negative memo.
type funcKey struct {
	hash uint64
	ok   bool
}

// keyTable maps content hashes to verified canonical keys (session-lived)
// and caches per-function identities (per-run; function pointers die with
// their module). Safe for concurrent use.
type keyTable struct {
	mu  sync.RWMutex
	cap int
	// tab is the content table: hash → the canonical key bytes the hash was
	// first seen with. First writer wins; a later mismatch marks the
	// function not-memoizable instead of evicting.
	tab map[uint64][]byte
	// funcs caches the identity per function pointer for the current run.
	funcs map[*ir.Func]funcKey
}

func newKeyTable(capEntries int) *keyTable {
	if capEntries <= 0 {
		capEntries = DefaultKeyTableCap
	}
	return &keyTable{cap: capEntries, tab: make(map[uint64][]byte), funcs: make(map[*ir.Func]funcKey)}
}

// reset begins a new run: the per-function cache is dropped (its pointers
// belong to the previous module), the content table survives.
func (kt *keyTable) reset() {
	kt.mu.Lock()
	kt.funcs = make(map[*ir.Func]funcKey)
	kt.mu.Unlock()
}

// register installs a precomputed key for f and returns its identity.
// Verification happens here, once: an ok identity needs no byte comparison
// at lookup time. Concurrent duplicate registration of the same function
// computes the same identity.
func (kt *keyTable) register(f *ir.Func, key []byte, selfEq bool, hash uint64) funcKey {
	k := funcKey{}
	kt.mu.Lock()
	if selfEq {
		if cur, ok := kt.tab[hash]; ok {
			if bytes.Equal(cur, key) {
				k = funcKey{hash: hash, ok: true}
			}
		} else if len(kt.tab) < kt.cap {
			kt.tab[hash] = key
			k = funcKey{hash: hash, ok: true}
		}
	}
	kt.funcs[f] = k
	kt.mu.Unlock()
	return k
}

// of returns f's verified identity, computing and registering it on first
// sight — merged functions appear mid-run, after the session pre-registered
// the submitted pool.
func (kt *keyTable) of(f *ir.Func) funcKey {
	kt.mu.RLock()
	k, ok := kt.funcs[f]
	kt.mu.RUnlock()
	if ok {
		return k
	}
	key, selfEq := global.AppendStableKey(nil, f)
	return kt.register(f, key, selfEq, global.HashStableKey(key))
}

// negKey identifies one attempt class: the two verified content hashes plus
// every cost-model input the structural key does not capture — the
// caller-stat snapshots and the linkages (an internal, non-address-taken
// function pays no thunk on deletion, so body-identical functions of
// different linkage price differently).
type negKey struct {
	h1, h2 uint64
	s1, s2 core.CallerStats
	l1, l2 ir.Linkage
}

// negMemo records attempt classes known to fail or price unprofitable.
// Bounded insert-if-room; never evicts, so an entry's assertion stays valid
// for the session's lifetime (options are pinned).
type negMemo struct {
	mu   sync.Mutex
	cap  int
	m    map[negKey]struct{}
	hits int64
}

func newNegMemo(capEntries int) *negMemo {
	if capEntries <= 0 {
		capEntries = DefaultNegMemoCap
	}
	return &negMemo{cap: capEntries, m: make(map[negKey]struct{})}
}

// known reports whether the attempt class is recorded as unprofitable.
func (nm *negMemo) known(k negKey) bool {
	nm.mu.Lock()
	_, ok := nm.m[k]
	nm.mu.Unlock()
	if ok {
		atomic.AddInt64(&nm.hits, 1)
	}
	return ok
}

// insert records an attempt class as unprofitable.
func (nm *negMemo) insert(k negKey) {
	nm.mu.Lock()
	if len(nm.m) < nm.cap {
		nm.m[k] = struct{}{}
	}
	nm.mu.Unlock()
}

// warmCand is one stored candidate-list entry, held by name so it survives
// across modules (function pointers do not).
type warmCand struct {
	name string
	sim  float64
	size int32
}

// warmList is one owner's stored initial candidate list at the session's
// storage depth (2t). complete reports that the list holds the owner's
// entire candidate set above MinSimilarity — not just a depth-bounded
// prefix — so evictions can never expose an unstored candidate.
type warmList struct {
	cands    []warmCand
	complete bool
}

// warmBefore reports whether entry a at pool index ai ranks strictly before
// entry b at pool index bi under the ranking order: similarity desc, size
// desc, pool-insertion index asc.
func warmBefore(a warmCand, ai int32, b warmCand, bi int32) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	if a.size != b.size {
		return a.size > b.size
	}
	return ai < bi
}

// prune drops every member the keep predicate rejects (members that changed
// or left the corpus). Order is preserved; completeness is unaffected — a
// complete list stays the complete set of surviving candidates.
func (wl *warmList) prune(keep func(string) bool) {
	out := wl.cands[:0]
	for _, c := range wl.cands {
		if keep(c.name) {
			out = append(out, c)
		}
	}
	wl.cands = out
}

// offer inserts cand (at pool index candIdx in the new corpus) into the
// list at its full-key position, bounded by depth. idxOf resolves existing
// members' new pool indices for tie comparison — unlike the runner's
// insertRanked, an offered candidate may carry a smaller pool index than
// existing members. Two guards preserve the exactness invariant:
//
//   - an incomplete list cannot grow at its tail: a candidate ranking after
//     the stored suffix may also rank after unstored candidates, so its
//     true position is unknown (it is dropped — it cannot enter the top-t
//     the list exists to seed, because the final list keeps at least t
//     stored entries or is rescanned);
//   - inserting into a full list truncates the tail, and truncating marks
//     the list incomplete (a real candidate fell off the stored window).
func (wl *warmList) offer(cand warmCand, candIdx int32, idxOf map[string]int32, depth int) {
	pos := len(wl.cands)
	for pos > 0 {
		prev := wl.cands[pos-1]
		if !warmBefore(cand, candIdx, prev, idxOf[prev.name]) {
			break
		}
		pos--
	}
	if pos == len(wl.cands) && !wl.complete {
		return
	}
	if pos >= depth {
		return
	}
	wl.cands = append(wl.cands, warmCand{})
	copy(wl.cands[pos+1:], wl.cands[pos:])
	wl.cands[pos] = cand
	if len(wl.cands) > depth {
		wl.cands = wl.cands[:depth]
		wl.complete = false
	}
}

// seedable reports whether the list can seed a run at threshold t: it must
// either hold at least t entries (the exact-prefix invariant then makes the
// first t the true top-t) or be complete (there is nothing beyond it).
func (wl *warmList) seedable(t int) bool {
	return wl.complete || len(wl.cands) >= t
}

// seedList is one reconciled stored list handed to the runner: the full
// surviving prefix (up to the storage depth, pointer-resolved against the
// new pool) plus its completeness flag, freshly allocated per run — the
// runner mutates it in place.
type seedList struct {
	cands    []candidate
	complete bool
}

// warmSeed carries one submission's precomputed warm state into a runner.
// All per-function slices are parallel to the pool the runner derives from
// the module — the session derives the identical pool first (same
// eligibility scan over the same φ-demoted module) and the runner asserts
// the lengths agree.
type warmSeed struct {
	// fps[i] is pool[i]'s fingerprint; the runner skips recomputation.
	fps []*fingerprint.Fingerprint
	// lists[i], when non-nil, is pool[i]'s reconciled initial candidate
	// list — an exact prefix of its full ranking, seedable at the run's
	// threshold. nil entries are built by the setup scan.
	lists []*seedList
	// scanDepth is the depth at which setup scans unseeded owners; the
	// session asks for 2t so stored lists survive member evictions.
	scanDepth int
	// onScan receives every setup-built list at scanDepth, before
	// truncation to t, so the session can store it. Invoked from
	// parallelFor with distinct pool indices; it must touch only
	// per-owner state.
	onScan func(poolIdx int, cands []candidate)
	// lsh, when non-nil, is the warm index state (session member ids).
	lsh *lshState
	// fallback mirrors cold RankFallbacks accounting: LSH ranking was
	// requested but this corpus ranks exactly.
	fallback bool
	// keys, neg and memo are the session-lived content tables.
	keys *keyTable
	neg  *negMemo
	memo *alignMemo
}
