package explore

import (
	"slices"
	"sync/atomic"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
)

// rankCache maintains, for every function awaiting its worklist pop, a
// candidate list whose leading entries are exactly what a full scan would
// produce — without performing that scan on every pop. The sequential
// framework rescanned the whole pool per pop (O(n) each, O(n²) per run);
// the cache builds all lists once, in parallel, at depth 2t (twice the
// threshold), and afterwards touches only what a commit actually changes:
//
//   - the two consumed functions' own lists are dropped (they will never be
//     popped again); entries NAMING a consumed function simply go stale in
//     place and are purged when their list is next read — no per-commit
//     walk over every list;
//   - every list receives the merged function as a candidate offer, a
//     single similarity computation plus a bounded sorted insert (when the
//     merged function is ineligible, a commit touches no list at all).
//
// Invariant: a list's live entries — stored entries whose function is still
// in the pool — form an exact prefix of the ranking scanTop would build
// over the current pool at unbounded depth (and, in LSH mode, the current
// index — a commit offer applies exactly when the merged function would be
// probed, see offer); complete means they are the entire qualifying set.
// Stale entries never reorder live ones (an entry's sim/size/insertion
// keys are fixed), so filtering preserves the prefix. A pop whose purged
// list retains at least t entries (or is complete) reads the true top-t
// straight off the prefix; only a list that consumptions shrank below t
// while candidates beyond the stored window may exist falls back to a
// rescan. The depth-2t window makes that fallback rare: it takes t+1
// consumed members of one list before its owner pops. The ordering
// (similarity desc, size desc, pool-insertion order asc) is identical to
// the sequential bounded-insertion scan, so exploration results are
// bit-for-bit unchanged — a deeper scan only widens the insertion bound,
// and every take returns the same top-t the sequential rescan would.
type rankCache struct {
	r *runner
	t int
	// depth is the stored-list depth: 2t, or the warm seed's storage depth
	// when that is deeper (the session also stores at 2t, so they agree).
	depth int
	// lists maps each not-yet-popped pool member to its candidate list.
	// Entries are removed at pop (each function pops at most once) and on
	// consumption by a commit.
	lists map[*ir.Func]*rankList
}

// rankList mirrors the session's warmList invariant inside one run: the
// live entries of cands are an exact prefix of the owner's full current
// ranking above MinSimilarity (restricted, in LSH mode, to the probe
// relation), and complete reports that they are the entire qualifying set
// rather than a depth-bounded window. Entries of consumed functions linger
// until purge.
type rankList struct {
	// fp is the owner's fingerprint, cached so the commit-offer hot path
	// (every live list, every commit) needs no lookup.
	fp       *fingerprint.Fingerprint
	cands    []candidate
	complete bool
}

// newRankCache builds the initial candidate list of every pool member, in
// parallel across the run's worker pool. In LSH mode the bucket probes for
// the whole pool run first as one batched, worker-pool-parallel pass.
//
// Under a warm seed, owners with a reconciled session list adopt it without
// scanning, and the remaining scans run at the seed's storage depth with
// each result handed back to the session (onScan) before truncation to t —
// both paths leave the installed lists exactly what a cold build produces.
func newRankCache(r *runner, t int) *rankCache {
	c := &rankCache{r: r, t: t, depth: 2 * t, lists: make(map[*ir.Func]*rankList, len(r.pool))}
	built := make([]*rankList, len(r.pool))
	var scan []int32
	if seed := r.seed; seed != nil {
		if seed.scanDepth > c.depth {
			c.depth = seed.scanDepth
		}
		for i := range r.pool {
			if sl := seed.lists[i]; sl != nil {
				built[i] = &rankList{fp: r.poolFPs[i], cands: sl.cands, complete: sl.complete}
			} else {
				scan = append(scan, int32(i))
			}
		}
	} else {
		scan = make([]int32, len(r.pool))
		for i := range scan {
			scan[i] = int32(i)
		}
	}
	depth := c.depth
	if ls := r.lsh; ls != nil {
		sigs := make([]*fingerprint.Signature, len(scan))
		selves := make([]int32, len(scan))
		for j, i := range scan {
			id := ls.id[r.pool[i]]
			selves[j] = id
			sigs[j] = ls.sigs[id]
		}
		probes := ls.idx.ProbeBatch(sigs, selves, r.workers)
		parallelFor(len(scan), r.workers, func(j int) {
			i := scan[j]
			built[i] = c.finishScan(int(i), c.rankIDsDepth(r.pool[i], probes[j], depth))
		})
	} else {
		parallelFor(len(scan), r.workers, func(j int) {
			i := scan[j]
			built[i] = c.finishScan(int(i), c.scanTopExactDepth(r.pool[i], depth))
		})
	}
	for i, f := range r.pool {
		c.lists[f] = built[i]
	}
	return c
}

// finishScan hands a setup-scan result to the session store (when seeded)
// and installs it at the storage depth. A scan that came back shorter than
// the depth visited every qualifying candidate, so the list is complete.
// The stored session copy and the run's list never alias: onScan converts
// to name-keyed entries.
func (c *rankCache) finishScan(poolIdx int, cands []candidate) *rankList {
	if seed := c.r.seed; seed != nil && seed.onScan != nil {
		seed.onScan(poolIdx, cands)
	}
	return &rankList{fp: c.r.poolFPs[poolIdx], cands: cands, complete: len(cands) < c.depth}
}

// take returns f's candidate ranking — the first t live entries of its
// purged stored prefix — and drops it from the cache; a worklist entry is
// popped at most once, so the list has no further readers. Only when
// consumptions shrank the live prefix below t while unstored candidates
// may exist beyond it (incomplete) is the ranking rebuilt by a scan.
func (c *rankCache) take(f *ir.Func) []candidate {
	rl := c.lists[f]
	delete(c.lists, f)
	if rl != nil {
		rl.purge(c.r)
		if rl.complete || len(rl.cands) >= c.t {
			if len(rl.cands) > c.t {
				return rl.cands[:c.t]
			}
			return rl.cands
		}
	}
	return c.scanTop(f)
}

// applyCommit updates pending rankings after f1 and f2 left the pool (and
// the index) and entered (nil when the merged function is ineligible)
// joined it. Entries naming the consumed functions go stale in place (see
// purge); the only per-list work is offering the merged function.
func (c *rankCache) applyCommit(f1, f2, entered *ir.Func) {
	delete(c.lists, f1)
	delete(c.lists, f2)
	if entered == nil {
		return
	}
	fpg := c.r.fpOf(entered)
	for owner, rl := range c.lists {
		c.offer(owner, rl, entered, fpg)
	}
	// The merged function's own ranking is built lazily at its pop: take
	// finds no cache entry and falls back to a full scan.
}

// purge drops entries whose function left the pool, in one walk, preserving
// order and completeness: a complete list stays the complete set of
// survivors, a window stays an exact (shorter) prefix. Staleness cannot
// reorder survivors — entry keys are fixed — so purging commutes with the
// inserts that happened since. The common case — nothing stale — writes
// nothing.
func (rl *rankList) purge(r *runner) {
	w := 0
	for i := range rl.cands {
		if !r.live(rl.cands[i].fn) {
			continue
		}
		if w != i {
			rl.cands[w] = rl.cands[i]
		}
		w++
	}
	rl.cands = rl.cands[:w]
}

// scanTop selects the top-t candidates for f from the current pool: an
// exhaustive insertion-order scan in exact mode, a bucket probe of the
// MinHash index in LSH mode.
func (c *rankCache) scanTop(f *ir.Func) []candidate {
	if ls := c.r.lsh; ls != nil {
		return c.rankIDs(f, ls.idx.Probe(ls.sigOf(f), ls.id[f]))
	}
	return c.scanTopExact(f)
}

// scanTopExact selects the top-t pool members most similar to f with a
// bounded insertion scan over the pool in insertion order (the paper's
// priority queue). Safe for concurrent use against a frozen pool.
func (c *rankCache) scanTopExact(f *ir.Func) []candidate {
	return c.scanTopExactDepth(f, c.t)
}

// scanTopExactDepth is scanTopExact at an explicit depth (the seed's
// storage depth during a warm setup build; c.t everywhere else). A deeper
// scan visits the same candidates — only the insertion bound widens — so
// its depth-t prefix is exactly the depth-t scan's result.
func (c *rankCache) scanTopExactDepth(f *ir.Func, depth int) []candidate {
	r := c.r
	fp := r.fpOf(f)
	best := make([]candidate, 0, min(depth, 16)+1)
	var probes, skips int64
	for i, g := range r.pool {
		if g == f || !r.poolLive[i] || !samePartition(r.opts, f, g) {
			continue
		}
		probes++
		best = r.consider(fp, best, g, r.poolFPs[i], r.poolSizes[i], depth, &skips)
	}
	atomic.AddInt64(&r.rankProbes, probes)
	atomic.AddInt64(&r.rankSkips, skips)
	return best
}

// rankIDs ranks the probed bucket-mates of f. ids arrive sorted ascending —
// pool insertion order — so the bounded insertion produces exactly the
// ordering scanTopExact would give the same candidate set. The ids come from
// a probe of the live index, which holds exactly the live pool members, so no
// inPool check is needed; fingerprints come from the id-indexed mirror.
func (c *rankCache) rankIDs(f *ir.Func, ids []int32) []candidate {
	return c.rankIDsDepth(f, ids, c.t)
}

// rankIDsDepth is rankIDs at an explicit depth. On warm runs the probed ids
// are session ids in session order, not pool order — they are mapped
// through toPool and re-sorted so the bounded insertion still sees pool
// insertion order, the ranking's deterministic tie-break.
func (c *rankCache) rankIDsDepth(f *ir.Func, ids []int32, depth int) []candidate {
	r := c.r
	ls := r.lsh
	fp := r.fpOf(f)
	best := make([]candidate, 0, min(depth, 16)+1)
	var probes, skips int64
	if ls.toPool != nil {
		pis := make([]int32, 0, len(ids))
		for _, id := range ids {
			pis = append(pis, ls.toPool[id])
		}
		slices.Sort(pis)
		for _, pi := range pis {
			g := r.pool[pi]
			if g == f || !samePartition(r.opts, f, g) {
				continue
			}
			probes++
			best = r.consider(fp, best, g, r.poolFPs[pi], r.poolSizes[pi], depth, &skips)
		}
	} else {
		for _, id := range ids {
			g := r.pool[id]
			if g == f || !samePartition(r.opts, f, g) {
				continue
			}
			probes++
			fpg := ls.fps[id]
			best = r.consider(fp, best, g, fpg, fpg.Total, depth, &skips)
		}
	}
	atomic.AddInt64(&r.rankProbes, probes)
	atomic.AddInt64(&r.rankSkips, skips)
	return best
}

// consider applies the alignment-avoidance prefilters to candidate g — its
// instruction count sg arrives separately so the bound check touches no
// fingerprint memory — and, if it survives, exactly scores it and inserts
// it into best. The prefilters never change the outcome:
// SimilarityUpperBound dominates the exact score, so a candidate filtered
// against MinSimilarity (or against the current t-th entry of a full list)
// could not have entered the list anyway.
func (r *runner) consider(fp *fingerprint.Fingerprint, best []candidate, g *ir.Func, fpg *fingerprint.Fingerprint, sg int32, t int, skips *int64) []candidate {
	floor := r.opts.MinSimilarity
	if len(best) == t && best[len(best)-1].sim > floor {
		floor = best[len(best)-1].sim
	}
	if ub := fingerprint.SimilarityUpperBoundSized(fp, sg); ub < floor {
		*skips++
		return best
	}
	// A score below floor could not enter the list (a full list admits only
	// scores reaching its tail, and insertRanked breaks a tail tie by
	// size), so the floor short-circuit never changes the outcome.
	s := fingerprint.SimilarityFloor(fp, fpg, floor)
	if s < floor {
		return best
	}
	return insertRanked(best, candidate{fn: g, sim: s, size: sg}, t)
}

// offer considers g (which just joined the pool, and therefore carries the
// highest insertion number) as a candidate for owner's list. Because the
// list was an exact prefix before g joined, a bounded sorted insert of g
// keeps it one afterwards — with the same two guards the session's
// warmList.offer applies: an incomplete list cannot grow at its tail (g's
// position relative to unstored candidates is unknown), and truncating a
// full window marks it incomplete. In LSH mode the offer applies only when
// g and owner share a band bucket — precisely the condition under which a
// fresh probe of owner would visit g — so lists keep matching what scanTop
// would rebuild. The upper-bound prefilter never changes the outcome: a
// candidate bounded below the stored tail could only have been a dropped
// tail-append (incomplete) or a truncated insert (full window).
func (c *rankCache) offer(owner *ir.Func, rl *rankList, g *ir.Func, fpg *fingerprint.Fingerprint) {
	r := c.r
	if !samePartition(r.opts, owner, g) {
		return
	}
	if ls := r.lsh; ls != nil && !lsh.Collide(ls.sigOf(owner), ls.sigOf(g), ls.params) {
		return
	}
	atomic.AddInt64(&r.rankProbes, 1)
	fp := rl.fp
	// The insertion floor: a candidate below the stored tail could only
	// have been a dropped tail-append (incomplete) or a truncated insert
	// (full window), so it may be dropped as soon as any bound falls
	// below the tail (insert breaks a tail tie by size, so equality must
	// still go the long way).
	floor := r.opts.MinSimilarity
	if len(rl.cands) > 0 && (len(rl.cands) >= c.depth || !rl.complete) {
		if last := rl.cands[len(rl.cands)-1].sim; last > floor {
			floor = last
		}
	}
	if ub := fingerprint.SimilarityUpperBound(fp, fpg); ub < floor {
		atomic.AddInt64(&r.rankSkips, 1)
		return
	}
	s := fingerprint.SimilarityFloor(fp, fpg, floor)
	if s < floor {
		return
	}
	rl.insert(candidate{fn: g, sim: s, size: fpg.Total}, c.depth)
}

// insert places cand — the latest pool insertion, so equal keys rank it
// last — into the list at its full-key position, bounded by depth. The
// structure mirrors warmList.offer: a tail append on an incomplete list is
// dropped, and a truncation marks the list incomplete.
func (rl *rankList) insert(cand candidate, depth int) {
	pos := len(rl.cands)
	for pos > 0 {
		prev := rl.cands[pos-1]
		if !(prev.sim < cand.sim || (prev.sim == cand.sim && prev.size < cand.size)) {
			break
		}
		pos--
	}
	if pos == len(rl.cands) && !rl.complete {
		return
	}
	if pos >= depth {
		return
	}
	rl.cands = append(rl.cands, candidate{})
	copy(rl.cands[pos+1:], rl.cands[pos:])
	rl.cands[pos] = cand
	if len(rl.cands) > depth {
		rl.cands = rl.cands[:depth]
		rl.complete = false
	}
}

// insertRanked inserts cand into best — sorted by (similarity desc, size
// desc, insertion order asc) — keeping at most t entries. cand must be the
// latest pool insertion among the entries, which the bounded scan and the
// commit offer both guarantee, so placing it after equal keys preserves the
// insertion-order tie-break.
func insertRanked(best []candidate, cand candidate, t int) []candidate {
	pos := len(best)
	for pos > 0 && (best[pos-1].sim < cand.sim ||
		(best[pos-1].sim == cand.sim && best[pos-1].size < cand.size)) {
		pos--
	}
	if pos >= t {
		return best
	}
	best = append(best, candidate{})
	copy(best[pos+1:], best[pos:])
	best[pos] = cand
	if len(best) > t {
		best = best[:t]
	}
	return best
}
