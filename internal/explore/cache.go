package explore

import (
	"sync/atomic"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
)

// rankCache maintains, for every function awaiting its worklist pop, the
// top-t candidate list a full scan would produce — without performing that
// scan on every pop. The sequential framework rescanned the whole pool per
// pop (O(n) each, O(n²) per run); the cache builds all lists once, in
// parallel, and afterwards touches only the entries a commit actually
// invalidates:
//
//   - the two consumed functions' own lists are dropped (they will never be
//     popped again);
//   - lists containing a consumed function are marked dirty — their stored
//     top-t lost a member, so the true top-t may now admit a pool member
//     that was never stored — and are rebuilt by one full scan if and when
//     their owner is popped;
//   - clean lists receive the merged function as a candidate offer, a
//     single similarity computation plus a bounded sorted insert.
//
// Invariant: a clean list always equals scanTop over the current pool (and,
// in LSH mode, the current index — a commit offer applies exactly when the
// merged function would be probed, see offer). The ordering (similarity
// desc, size desc, pool-insertion order asc) is identical to the sequential
// bounded-insertion scan, so exploration results are bit-for-bit unchanged.
type rankCache struct {
	r *runner
	t int
	// lists maps each not-yet-popped pool member to its candidate list.
	// Entries are removed at pop (each function pops at most once) and on
	// consumption by a commit.
	lists map[*ir.Func]*rankList
}

type rankList struct {
	cands []candidate
	dirty bool
}

// newRankCache builds the initial candidate list of every pool member, in
// parallel across the run's worker pool. In LSH mode the bucket probes for
// the whole pool run first as one batched, worker-pool-parallel pass.
func newRankCache(r *runner, t int) *rankCache {
	c := &rankCache{r: r, t: t, lists: make(map[*ir.Func]*rankList, len(r.pool))}
	built := make([]*rankList, len(r.pool))
	if ls := r.lsh; ls != nil {
		selves := make([]int32, len(r.pool))
		for i := range selves {
			selves[i] = int32(i)
		}
		probes := ls.idx.ProbeBatch(ls.sigs, selves, r.workers)
		parallelFor(len(r.pool), r.workers, func(i int) {
			built[i] = &rankList{cands: c.rankIDs(r.pool[i], probes[i])}
		})
	} else {
		parallelFor(len(r.pool), r.workers, func(i int) {
			built[i] = &rankList{cands: c.scanTopExact(r.pool[i])}
		})
	}
	for i, f := range r.pool {
		c.lists[f] = built[i]
	}
	return c
}

// take returns f's candidate ranking, rebuilding it when a commit left it
// dirty, and drops it from the cache — a worklist entry is popped at most
// once, so the list has no further readers.
func (c *rankCache) take(f *ir.Func) []candidate {
	rl := c.lists[f]
	delete(c.lists, f)
	if rl != nil && !rl.dirty {
		return rl.cands
	}
	return c.scanTop(f)
}

// applyCommit updates pending rankings after f1 and f2 left the pool (and
// the index) and entered (nil when the merged function is ineligible) joined
// it.
func (c *rankCache) applyCommit(f1, f2, entered *ir.Func) {
	delete(c.lists, f1)
	delete(c.lists, f2)
	for owner, rl := range c.lists {
		if rl.dirty {
			continue
		}
		if containsFn(rl.cands, f1) || containsFn(rl.cands, f2) {
			rl.dirty = true
			rl.cands = nil
			continue
		}
		if entered != nil {
			c.offer(owner, rl, entered)
		}
	}
	// The merged function's own ranking is built lazily at its pop: take
	// finds no cache entry and falls back to a full scan.
}

// scanTop selects the top-t candidates for f from the current pool: an
// exhaustive insertion-order scan in exact mode, a bucket probe of the
// MinHash index in LSH mode.
func (c *rankCache) scanTop(f *ir.Func) []candidate {
	if ls := c.r.lsh; ls != nil {
		return c.rankIDs(f, ls.idx.Probe(ls.sigOf(f), ls.id[f]))
	}
	return c.scanTopExact(f)
}

// scanTopExact selects the top-t pool members most similar to f with a
// bounded insertion scan over the pool in insertion order (the paper's
// priority queue). Safe for concurrent use against a frozen pool.
func (c *rankCache) scanTopExact(f *ir.Func) []candidate {
	r := c.r
	fp := r.fps[f]
	best := make([]candidate, 0, min(c.t, 16)+1)
	var probes, skips int64
	for _, g := range r.pool {
		if g == f || !r.inPool[g] || !samePartition(r.opts, f, g) {
			continue
		}
		probes++
		best = r.consider(fp, best, g, r.fps[g], c.t, &skips)
	}
	atomic.AddInt64(&r.rankProbes, probes)
	atomic.AddInt64(&r.rankSkips, skips)
	return best
}

// rankIDs ranks the probed bucket-mates of f. ids arrive sorted ascending —
// pool insertion order — so the bounded insertion produces exactly the
// ordering scanTopExact would give the same candidate set. The ids come from
// a probe of the live index, which holds exactly the live pool members, so no
// inPool check is needed; fingerprints come from the id-indexed mirror.
func (c *rankCache) rankIDs(f *ir.Func, ids []int32) []candidate {
	r := c.r
	ls := r.lsh
	fp := r.fps[f]
	best := make([]candidate, 0, min(c.t, 16)+1)
	var probes, skips int64
	for _, id := range ids {
		g := r.pool[id]
		if g == f || !samePartition(r.opts, f, g) {
			continue
		}
		probes++
		best = r.consider(fp, best, g, ls.fps[id], c.t, &skips)
	}
	atomic.AddInt64(&r.rankProbes, probes)
	atomic.AddInt64(&r.rankSkips, skips)
	return best
}

// consider applies the alignment-avoidance prefilters to candidate g and, if
// it survives, exactly scores it and inserts it into best. The prefilters
// never change the outcome: SimilarityUpperBound dominates the exact score,
// so a candidate filtered against MinSimilarity (or against the current t-th
// entry of a full list) could not have entered the list anyway.
func (r *runner) consider(fp *fingerprint.Fingerprint, best []candidate, g *ir.Func, fpg *fingerprint.Fingerprint, t int, skips *int64) []candidate {
	if ub := fingerprint.SimilarityUpperBound(fp, fpg); ub < r.opts.MinSimilarity ||
		(len(best) == t && ub < best[len(best)-1].sim) {
		*skips++
		return best
	}
	s := fingerprint.Similarity(fp, fpg)
	if s < r.opts.MinSimilarity {
		return best
	}
	return insertRanked(best, candidate{fn: g, sim: s, size: fpg.Total}, t)
}

// offer considers g (which just joined the pool, and therefore carries the
// highest insertion number) as a candidate for owner's clean list. Because
// the list was the exact top-t before g joined, a bounded sorted insert of
// g keeps it the exact top-t afterwards. In LSH mode the offer applies only
// when g and owner share a band bucket — precisely the condition under
// which a fresh probe of owner would visit g — so clean lists keep matching
// what scanTop would rebuild.
func (c *rankCache) offer(owner *ir.Func, rl *rankList, g *ir.Func) {
	r := c.r
	if !samePartition(r.opts, owner, g) {
		return
	}
	if ls := r.lsh; ls != nil && !lsh.Collide(ls.sigOf(owner), ls.sigOf(g), ls.params) {
		return
	}
	var skips int64
	atomic.AddInt64(&r.rankProbes, 1)
	rl.cands = r.consider(r.fps[owner], rl.cands, g, r.fps[g], c.t, &skips)
	atomic.AddInt64(&r.rankSkips, skips)
}

// insertRanked inserts cand into best — sorted by (similarity desc, size
// desc, insertion order asc) — keeping at most t entries. cand must be the
// latest pool insertion among the entries, which the bounded scan and the
// commit offer both guarantee, so placing it after equal keys preserves the
// insertion-order tie-break.
func insertRanked(best []candidate, cand candidate, t int) []candidate {
	pos := len(best)
	for pos > 0 && (best[pos-1].sim < cand.sim ||
		(best[pos-1].sim == cand.sim && best[pos-1].size < cand.size)) {
		pos--
	}
	if pos >= t {
		return best
	}
	best = append(best, candidate{})
	copy(best[pos+1:], best[pos:])
	best[pos] = cand
	if len(best) > t {
		best = best[:t]
	}
	return best
}

func containsFn(cands []candidate, f *ir.Func) bool {
	for _, c := range cands {
		if c.fn == f {
			return true
		}
	}
	return false
}
