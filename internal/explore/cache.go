package explore

import (
	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
)

// rankCache maintains, for every function awaiting its worklist pop, the
// top-t candidate list a full pool scan would produce — without performing
// that scan on every pop. The sequential framework rescanned the whole pool
// per pop (O(n) each, O(n²) per run); the cache builds all lists once, in
// parallel, and afterwards touches only the entries a commit actually
// invalidates:
//
//   - the two consumed functions' own lists are dropped (they will never be
//     popped again);
//   - lists containing a consumed function are marked dirty — their stored
//     top-t lost a member, so the true top-t may now admit a pool member
//     that was never stored — and are rebuilt by one full scan if and when
//     their owner is popped;
//   - clean lists receive the merged function as a candidate offer, a
//     single similarity computation plus a bounded sorted insert.
//
// Invariant: a clean list always equals scanTop over the current pool. The
// ordering (similarity desc, size desc, pool-insertion order asc) is
// identical to the sequential bounded-insertion scan, so exploration
// results are bit-for-bit unchanged.
type rankCache struct {
	r *runner
	t int
	// lists maps each not-yet-popped pool member to its candidate list.
	// Entries are removed at pop (each function pops at most once) and on
	// consumption by a commit.
	lists map[*ir.Func]*rankList
}

type rankList struct {
	cands []candidate
	dirty bool
}

// newRankCache builds the initial candidate list of every pool member, in
// parallel across the run's worker pool.
func newRankCache(r *runner, t int) *rankCache {
	c := &rankCache{r: r, t: t, lists: make(map[*ir.Func]*rankList, len(r.pool))}
	built := make([]*rankList, len(r.pool))
	parallelFor(len(r.pool), r.workers, func(i int) {
		built[i] = &rankList{cands: c.scanTop(r.pool[i])}
	})
	for i, f := range r.pool {
		c.lists[f] = built[i]
	}
	return c
}

// take returns f's candidate ranking, rebuilding it when a commit left it
// dirty, and drops it from the cache — a worklist entry is popped at most
// once, so the list has no further readers.
func (c *rankCache) take(f *ir.Func) []candidate {
	rl := c.lists[f]
	delete(c.lists, f)
	if rl != nil && !rl.dirty {
		return rl.cands
	}
	return c.scanTop(f)
}

// applyCommit updates pending rankings after f1 and f2 left the pool and
// entered (nil when the merged function is ineligible) joined it.
func (c *rankCache) applyCommit(f1, f2, entered *ir.Func) {
	delete(c.lists, f1)
	delete(c.lists, f2)
	for owner, rl := range c.lists {
		if rl.dirty {
			continue
		}
		if containsFn(rl.cands, f1) || containsFn(rl.cands, f2) {
			rl.dirty = true
			rl.cands = nil
			continue
		}
		if entered != nil {
			c.offer(owner, rl, entered)
		}
	}
	// The merged function's own ranking is built lazily at its pop: take
	// finds no cache entry and falls back to a full scan.
}

// scanTop selects the top-t pool members most similar to f with a bounded
// insertion scan over the pool in insertion order (the paper's priority
// queue). Safe for concurrent use against a frozen pool.
func (c *rankCache) scanTop(f *ir.Func) []candidate {
	r := c.r
	fp := r.fps[f]
	best := make([]candidate, 0, min(c.t, 16)+1)
	for _, g := range r.pool {
		if g == f || !r.inPool[g] || !samePartition(r.opts, f, g) {
			continue
		}
		s := fingerprint.Similarity(fp, r.fps[g])
		if s < r.opts.MinSimilarity {
			continue
		}
		best = insertRanked(best, candidate{fn: g, sim: s, size: r.fps[g].Total}, c.t)
	}
	return best
}

// offer considers g (which just joined the pool, and therefore carries the
// highest insertion number) as a candidate for owner's clean list. Because
// the list was the exact top-t before g joined, a bounded sorted insert of
// g keeps it the exact top-t afterwards.
func (c *rankCache) offer(owner *ir.Func, rl *rankList, g *ir.Func) {
	r := c.r
	if !samePartition(r.opts, owner, g) {
		return
	}
	s := fingerprint.Similarity(r.fps[owner], r.fps[g])
	if s < r.opts.MinSimilarity {
		return
	}
	rl.cands = insertRanked(rl.cands, candidate{fn: g, sim: s, size: r.fps[g].Total}, c.t)
}

// insertRanked inserts cand into best — sorted by (similarity desc, size
// desc, insertion order asc) — keeping at most t entries. cand must be the
// latest pool insertion among the entries, which the bounded scan and the
// commit offer both guarantee, so placing it after equal keys preserves the
// insertion-order tie-break.
func insertRanked(best []candidate, cand candidate, t int) []candidate {
	pos := len(best)
	for pos > 0 && (best[pos-1].sim < cand.sim ||
		(best[pos-1].sim == cand.sim && best[pos-1].size < cand.size)) {
		pos--
	}
	if pos >= t {
		return best
	}
	best = append(best, candidate{})
	copy(best[pos+1:], best[pos:])
	best[pos] = cand
	if len(best) > t {
		best = best[:t]
	}
	return best
}

func containsFn(cands []candidate, f *ir.Func) bool {
	for _, c := range cands {
		if c.fn == f {
			return true
		}
	}
	return false
}
