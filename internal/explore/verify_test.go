package explore

import (
	"reflect"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// TestVerifyCleanCorpus is the verifier's soundness gate: full-level
// verification across the workload corpus must report zero diagnostics —
// any finding is either a pipeline bug or a verifier false positive, and
// both block. The full-corpus sweep runs as fmsa-bench -exp verify.
func TestVerifyCleanCorpus(t *testing.T) {
	profiles := auditProfiles()
	if testing.Short() {
		profiles = profiles[:4]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := workload.Build(p)
			opts := DefaultOptions()
			opts.Threshold = 2
			opts.Verify = ir.VerifyFull
			rep := Run(m, opts)
			if len(rep.VerifyDiags) != 0 {
				t.Errorf("verifier flagged the pipeline:\n%s", ir.FormatVerifyDiags(rep.VerifyDiags))
			}
			if rep.MergeOps > 0 && rep.VerifiedFuncs == 0 {
				t.Errorf("%d merges committed but nothing verified", rep.MergeOps)
			}
			if rep.MergeOps > 0 && rep.Phases.Verify == 0 {
				t.Error("verification ran but recorded no time")
			}
		})
	}
}

// TestVerifyDecisionInvariance: verification is recording-only, so the
// committed merge sequence and the final module must be bit-identical with
// the gate on or off.
func TestVerifyDecisionInvariance(t *testing.T) {
	build := func(level ir.VerifyLevel) (*Report, string) {
		m := workload.Build(demoProfile(11))
		opts := DefaultOptions()
		opts.Threshold = 3
		opts.Verify = level
		rep := Run(m, opts)
		return rep, ir.FormatModule(m)
	}
	offRep, offText := build(ir.VerifyOff)
	for _, level := range []ir.VerifyLevel{ir.VerifyFast, ir.VerifyFull} {
		rep, text := build(level)
		if !reflect.DeepEqual(offRep.Records, rep.Records) {
			t.Errorf("%v: merge decisions differ from verify-off", level)
		}
		if text != offText {
			t.Errorf("%v: final module text differs from verify-off", level)
		}
		if len(rep.VerifyDiags) != 0 {
			t.Errorf("%v: unexpected findings:\n%s", level, ir.FormatVerifyDiags(rep.VerifyDiags))
		}
	}
	if offRep.VerifiedFuncs != 0 || offRep.Phases.Verify != 0 {
		t.Error("verify-off still verified something")
	}
}
