package explore

import (
	"reflect"
	"testing"

	"fmsa/internal/align"
	"fmsa/internal/encode"
	"fmsa/internal/workload"
)

// TestKernelCrossCheck is the in-tree version of the acceptance gate: the
// closure kernel with every cache disabled (the pre-encoding pipeline) and
// the default coded kernel with both caches on must produce identical merge
// records, identical counters and an identical final module.
func TestKernelCrossCheck(t *testing.T) {
	closure := DefaultOptions()
	closure.Threshold = 5
	closure.Kernel = KernelClosure
	closure.NoSeqCache = true
	closure.NoAlignMemo = true

	coded := DefaultOptions()
	coded.Threshold = 5

	for _, workers := range []int{1, 4} {
		ref, refMod := exploreWith(t, closure, workers, 19)
		got, gotMod := exploreWith(t, coded, workers, 19)
		if !reflect.DeepEqual(ref.Records, got.Records) {
			t.Errorf("workers=%d: records diverge between closure and coded kernels:\nclosure: %+v\ncoded:   %+v",
				workers, ref.Records, got.Records)
		}
		if ref.SizeAfter != got.SizeAfter || ref.MergeOps != got.MergeOps {
			t.Errorf("workers=%d: outcome counters diverge: size %d vs %d, ops %d vs %d",
				workers, ref.SizeAfter, got.SizeAfter, ref.MergeOps, got.MergeOps)
		}
		if refMod != gotMod {
			t.Errorf("workers=%d: final module text diverges between kernels", workers)
		}
		if ref.MergeOps == 0 {
			t.Fatalf("workers=%d: demo module produced no merges; cross-check is vacuous", workers)
		}
	}
}

// TestKernelCountersPopulated checks the new perf counters actually flow into
// the report on the default (coded, cached) configuration.
func TestKernelCountersPopulated(t *testing.T) {
	m := workload.Build(demoProfile(3))
	opts := DefaultOptions()
	opts.Threshold = 5
	rep := Run(m, opts)
	if rep.MergeOps == 0 {
		t.Fatal("no merges; counter test is vacuous")
	}
	if rep.AlignCells == 0 {
		t.Error("AlignCells stayed zero despite alignments running")
	}
	if rep.SeqCacheHits == 0 {
		t.Error("SeqCacheHits stayed zero despite the pre-built linearization cache")
	}
	if rep.SeqCacheHits+rep.SeqCacheMisses == 0 || rep.AlignMemoHits+rep.AlignMemoMisses == 0 {
		t.Error("cache counters not populated")
	}
	// The demo profile has identical-clone populations, so the memo must
	// observe at least one repeated code-sequence pair.
	if rep.AlignMemoHits == 0 {
		t.Error("AlignMemoHits stayed zero on a clone-rich module")
	}
}

// TestKernelClosureSkipsCodedState checks KernelClosure really runs the
// closure pipeline: no memo is wired and no align-memo counters move.
func TestKernelClosureSkipsCodedState(t *testing.T) {
	m := workload.Build(demoProfile(3))
	opts := DefaultOptions()
	opts.Threshold = 5
	opts.Kernel = KernelClosure
	rep := Run(m, opts)
	if rep.MergeOps == 0 {
		t.Fatal("no merges")
	}
	if rep.AlignMemoHits != 0 || rep.AlignMemoMisses != 0 {
		t.Errorf("closure kernel moved align-memo counters: %d/%d",
			rep.AlignMemoHits, rep.AlignMemoMisses)
	}
	if rep.AlignCells == 0 {
		t.Error("AlignCells must count on the closure path too")
	}
}

// TestAlignMemoVerifiesCodes crafts two encodings with identical hashes and
// lengths but different codes: a lookup keyed by the colliding pair must
// miss (collision degrades to recomputation, never a wrong alignment).
func TestAlignMemoVerifiesCodes(t *testing.T) {
	am := newAlignMemo(8)
	a := &encode.Encoded{Codes: []uint32{1, 2, 3}, Hash: 42}
	b := &encode.Encoded{Codes: []uint32{4, 5, 6}, Hash: 99}
	steps := []align.Step{{Op: align.OpMatch, I: 0, J: 0}}
	am.Store(a, b, steps)

	if got, ok := am.Lookup(a, b); !ok || !reflect.DeepEqual(got, steps) {
		t.Fatal("exact-key lookup must hit")
	}
	// Same Hash and length as a, different codes: forged collision.
	aCollide := &encode.Encoded{Codes: []uint32{7, 8, 9}, Hash: 42}
	if _, ok := am.Lookup(aCollide, b); ok {
		t.Error("hash collision served a wrong alignment; Lookup must verify codes")
	}
	bCollide := &encode.Encoded{Codes: []uint32{4, 5, 7}, Hash: 99}
	if _, ok := am.Lookup(a, bCollide); ok {
		t.Error("hash collision on the second operand must also miss")
	}
}

// TestAlignMemoCapStopsInserts pins the bounded-memo policy: a full memo
// rejects new keys but keeps serving existing ones, and Store never evicts.
func TestAlignMemoCapStopsInserts(t *testing.T) {
	am := newAlignMemo(1)
	a := &encode.Encoded{Codes: []uint32{1}, Hash: 1}
	b := &encode.Encoded{Codes: []uint32{2}, Hash: 2}
	am.Store(a, b, []align.Step{{Op: align.OpMismatch, I: 0, J: 0}})

	c := &encode.Encoded{Codes: []uint32{3}, Hash: 3}
	am.Store(a, c, []align.Step{{Op: align.OpMatch, I: 0, J: 0}})
	if _, ok := am.Lookup(a, c); ok {
		t.Error("full memo accepted an insert beyond its cap")
	}
	if _, ok := am.Lookup(a, b); !ok {
		t.Error("full memo dropped an existing entry")
	}
}

// TestParseKernelMode covers the flag-parsing surface.
func TestParseKernelMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want KernelMode
		ok   bool
	}{
		{"", KernelCoded, true},
		{"coded", KernelCoded, true},
		{"closure", KernelClosure, true},
		{"Closure", KernelCoded, false},
		{"fast", KernelCoded, false},
	} {
		got, err := ParseKernelMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseKernelMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if KernelCoded.String() != "coded" || KernelClosure.String() != "closure" {
		t.Error("KernelMode.String does not round-trip the flag spellings")
	}
}
