package explore

import (
	"fmt"
	"os"

	"fmsa/internal/analysis"
	"fmsa/internal/core"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

// AuditMode selects how much merge auditing the explorer performs.
type AuditMode int

const (
	// AuditOff performs no auditing (the default; matches the paper's
	// pipeline and keeps timing experiments comparable).
	AuditOff AuditMode = iota
	// AuditCommitted statically audits every merge that is about to be
	// committed and records the diagnostics in the report. Flagged merges
	// still commit — the mode is an observability gate, not a filter.
	AuditCommitted
	// AuditDeep additionally escalates statically flagged merges to
	// differential interpretation against the pre-merge originals; a merge
	// whose behavior observably diverges is rejected instead of committed.
	AuditDeep
)

// ParseAuditMode parses the -audit CLI value.
func ParseAuditMode(s string) (AuditMode, error) {
	switch s {
	case "", "off":
		return AuditOff, nil
	case "committed":
		return AuditCommitted, nil
	case "deep":
		return AuditDeep, nil
	}
	return AuditOff, fmt.Errorf("unknown audit mode %q (want off, committed or deep)", s)
}

func (m AuditMode) String() string {
	switch m {
	case AuditCommitted:
		return "committed"
	case AuditDeep:
		return "deep"
	}
	return "off"
}

// auditInput adapts a merge result to the analysis package (which must not
// import core). The audit runs before Commit, while the original bodies are
// still intact.
func auditInput(res *core.Result) analysis.MergeAudit {
	return analysis.MergeAudit{
		Merged:    res.Merged,
		F1:        res.F1,
		F2:        res.F2,
		HasFuncID: res.HasFuncID,
		ParamMap1: res.ParamMap1,
		ParamMap2: res.ParamMap2,
	}
}

// audit statically checks a winning candidate and, in deep mode, escalates
// findings to differential execution. It reports whether the merge may be
// committed.
func (r *runner) audit(res *core.Result) bool {
	r.rep.AuditedMerges++
	diags := analysis.AuditMerge(auditInput(res))
	if len(diags) == 0 {
		return true
	}
	if os.Getenv("FMSA_DBG") != "" {
		fmt.Println("==== flagged at audit time ====")
		fmt.Println(analysis.FormatDiagnostics(diags))
		fmt.Println(ir.FormatFunc(res.Merged))
		fmt.Println("---- F1 ----")
		fmt.Println(ir.FormatFunc(res.F1))
		fmt.Println("---- F2 ----")
		fmt.Println(ir.FormatFunc(res.F2))
	}
	r.rep.AuditFlagged++
	r.rep.AuditDiags = append(r.rep.AuditDiags, diags...)
	if r.opts.Audit != AuditDeep {
		return true
	}
	r.rep.AuditEscalated++
	if differentialMiscompile(r.m, res) {
		r.rep.AuditRejected++
		return false
	}
	return true
}

// differentialMiscompile interprets each original function and the merged
// function on a small deterministic argument matrix and reports whether any
// run observably diverges. Runs that error on either side (externals,
// pointer dereferences of synthetic arguments, ...) are inconclusive and
// never reject — only a confirmed behavioral difference does.
func differentialMiscompile(m *ir.Module, res *core.Result) bool {
	type variant struct {
		id   bool
		orig *ir.Func
		pmap []int
	}
	for _, v := range []variant{
		{true, res.F1, res.ParamMap1},
		{false, res.F2, res.ParamMap2},
	} {
		for _, args := range argMatrix(v.orig) {
			if divergesOn(m, res, v.id, v.orig, v.pmap, args) {
				return true
			}
		}
	}
	return false
}

// argMatrix yields a few deterministic argument vectors for f. Pointer
// parameters are passed null: a dereference errors out in the interpreter
// and the run counts as inconclusive.
func argMatrix(f *ir.Func) [][]interp.Word {
	patterns := []func(i int) interp.Word{
		func(int) interp.Word { return 0 },
		func(int) interp.Word { return 1 },
		func(i int) interp.Word { return interp.Word(3 + 2*i) },
	}
	out := make([][]interp.Word, 0, len(patterns))
	for _, pat := range patterns {
		args := make([]interp.Word, len(f.Params))
		for i, p := range f.Params {
			switch {
			case p.Type().IsPointer():
				args[i] = 0
			case p.Type().IsFloat() && p.Type().Bits == 32:
				args[i] = uint64(interp.F32(float32(pat(i))))
			case p.Type().IsFloat():
				args[i] = interp.F64(float64(pat(i)))
			default:
				args[i] = pat(i)
			}
		}
		out = append(out, args)
	}
	return out
}

// divergesOn runs one original/merged pair on one argument vector. Fresh
// machines isolate global state between the two runs.
func divergesOn(m *ir.Module, res *core.Result, id bool, orig *ir.Func, pmap []int, args []interp.Word) bool {
	want, err := interp.NewMachine(m).CallFunc(orig, args)
	if err != nil {
		return false // inconclusive
	}
	margs := make([]interp.Word, len(res.Merged.Params))
	if res.HasFuncID {
		if id {
			margs[0] = 1
		}
	}
	for i, a := range args {
		margs[pmap[i]] = a
	}
	got, err := interp.NewMachine(m).CallFunc(res.Merged, margs)
	if err != nil {
		return true // the original succeeded; the merged body must too
	}
	rt := orig.ReturnType()
	if rt.IsVoid() {
		return false
	}
	// Compare modulo the original's return width (the merged return type
	// may be wider; callers truncate).
	if rt.IsInt() && rt.Bits < 64 {
		mask := uint64(1)<<rt.Bits - 1
		return want&mask != got&mask
	}
	if rt.IsFloat() && rt.Bits == 32 {
		return uint32(want) != uint32(got)
	}
	return want != got
}
