package explore

import (
	"testing"

	"fmsa/internal/core"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

func demoProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "demo", NumFuncs: 30, AvgSize: 30, MaxSize: 120,
		Identical: 0.15, TypeVar: 0.1, CFGVar: 0.1, Partial: 0.1,
		InternalFrac: 0.7, Seed: seed,
	}
}

func registerExterns(mc *interp.Machine) {
	mc.Register("ext_i64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return args[0]*2 + 1, nil
	})
	mc.Register("ext_f64", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return interp.F64(interp.ToF64(args[0]) * 1.5), nil
	})
}

func runMain(t *testing.T, m *ir.Module) interp.Word {
	t.Helper()
	mc := interp.NewMachine(m)
	registerExterns(mc)
	v, err := mc.Run("main")
	if err != nil {
		t.Fatalf("main: %v", err)
	}
	return v
}

func TestRunReducesSizeAndPreservesSemantics(t *testing.T) {
	before := runMain(t, workload.Build(demoProfile(5)))

	m := workload.Build(demoProfile(5))
	rep := Run(m, DefaultOptions())
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v", err)
	}
	if rep.MergeOps == 0 {
		t.Fatal("expected merges on a clone-rich module")
	}
	if rep.SizeAfter >= rep.SizeBefore {
		t.Errorf("size did not shrink: %d -> %d", rep.SizeBefore, rep.SizeAfter)
	}
	after := runMain(t, m)
	if before != after {
		t.Errorf("driver output changed: %d -> %d", before, after)
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	var prev int
	for i, th := range []int{1, 5, 10} {
		m := workload.Build(demoProfile(7))
		opts := DefaultOptions()
		opts.Threshold = th
		rep := Run(m, opts)
		if i > 0 && rep.MergeOps+2 < prev {
			t.Errorf("t=%d found far fewer merges (%d) than smaller threshold (%d)", th, rep.MergeOps, prev)
		}
		prev = rep.MergeOps
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("t=%d post-verify: %v", th, err)
		}
	}
}

func TestOracleAtLeastAsGoodAsGreedy(t *testing.T) {
	m1 := workload.Build(demoProfile(11))
	greedy := Run(m1, DefaultOptions())

	m2 := workload.Build(demoProfile(11))
	opts := DefaultOptions()
	opts.Oracle = true
	oracle := Run(m2, opts)

	gRed := greedy.Reduction()
	oRed := oracle.Reduction()
	if oRed+1.0 < gRed { // small tolerance: greedy feedback orders can differ
		t.Errorf("oracle reduction %.2f%% much worse than greedy %.2f%%", oRed, gRed)
	}
	if oracle.CandidatesEvaluated <= greedy.CandidatesEvaluated {
		t.Errorf("oracle should evaluate more candidates: %d vs %d",
			oracle.CandidatesEvaluated, greedy.CandidatesEvaluated)
	}
}

func TestRankPositionsRecorded(t *testing.T) {
	m := workload.Build(demoProfile(13))
	opts := DefaultOptions()
	opts.Threshold = 10
	rep := Run(m, opts)
	if len(rep.RankPositions) != rep.MergeOps {
		t.Errorf("rank positions (%d) != merges (%d)", len(rep.RankPositions), rep.MergeOps)
	}
	for _, r := range rep.RankPositions {
		if r < 1 || r > 10 {
			t.Errorf("rank %d out of range [1,10]", r)
		}
	}
	// The distribution should be strongly top-heavy (Fig. 8).
	top1 := 0
	for _, r := range rep.RankPositions {
		if r == 1 {
			top1++
		}
	}
	if rep.MergeOps > 5 && float64(top1)/float64(rep.MergeOps) < 0.5 {
		t.Errorf("only %d/%d merges at rank 1; expected a top-heavy CDF", top1, rep.MergeOps)
	}
}

func TestOracleCapApproximation(t *testing.T) {
	// A capped oracle must be at least as good as greedy t=1 and no better
	// than the unbounded oracle.
	run := func(mutate func(*Options)) float64 {
		m := workload.Build(demoProfile(37))
		opts := DefaultOptions()
		mutate(&opts)
		rep := Run(m, opts)
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("verify: %v", err)
		}
		return rep.Reduction()
	}
	greedy := run(func(o *Options) {})
	capped := run(func(o *Options) { o.Oracle = true; o.OracleCap = 8 })
	full := run(func(o *Options) { o.Oracle = true })
	if capped+1.0 < greedy {
		t.Errorf("capped oracle (%.2f%%) much worse than greedy (%.2f%%)", capped, greedy)
	}
	if capped > full+1.0 {
		t.Errorf("capped oracle (%.2f%%) above unbounded oracle (%.2f%%)", capped, full)
	}
}

func TestHotnessExclusion(t *testing.T) {
	m := workload.Build(demoProfile(17))
	// Mark every function hot.
	for _, f := range m.Funcs {
		f.Hotness = 1000
	}
	opts := DefaultOptions()
	opts.MaxHotness = 10
	rep := Run(m, opts)
	if rep.MergeOps != 0 {
		t.Errorf("all-hot module must see no merges, got %d", rep.MergeOps)
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	m := workload.Build(demoProfile(19))
	rep := Run(m, DefaultOptions())
	if rep.MergeOps == 0 {
		t.Skip("no merges")
	}
	if rep.Phases.Align == 0 {
		t.Error("alignment phase time missing")
	}
	if rep.Phases.Fingerprint == 0 {
		t.Error("fingerprint phase time missing")
	}
	if rep.Phases.Total() == 0 {
		t.Error("total phase time zero")
	}
}

func TestDeterministicRuns(t *testing.T) {
	m1 := workload.Build(demoProfile(23))
	r1 := Run(m1, DefaultOptions())
	m2 := workload.Build(demoProfile(23))
	r2 := Run(m2, DefaultOptions())
	if r1.MergeOps != r2.MergeOps || r1.SizeAfter != r2.SizeAfter {
		t.Errorf("exploration not deterministic: %+v vs %+v", r1.MergeOps, r2.MergeOps)
	}
	if ir.FormatModule(m1) != ir.FormatModule(m2) {
		t.Error("optimized modules differ between identical runs")
	}
}

func TestMergedFunctionsCanRemerge(t *testing.T) {
	// Four identical clones: the framework should chain merges through the
	// feedback loop, ending with a single shared body.
	m := ir.NewModule("chain")
	for i := 0; i < 4; i++ {
		spec := workload.FuncSpec{
			Name: "c", Seed: 99, Scalar: ir.I64(), NumParams: 2,
			Regions: 2, OpsPerBlock: 6, Internal: true,
		}
		workload.Generate(m, spec)
	}
	// Keep them alive through a driver-like user.
	user := m.NewFuncIn("user", ir.FuncOf(ir.I64(), ir.I64()))
	entry := user.NewBlockIn("entry")
	bd := ir.NewBuilder(entry)
	var sum ir.Value = ir.NewConstInt(ir.I64(), 0)
	for _, f := range m.Funcs {
		if f.Name() == "user" || f.IsDecl() || f.Name() == "main" {
			continue
		}
		if f.Sig() != ir.FuncOf(ir.I64(), ir.I64(), ir.I64()) {
			continue
		}
		c := bd.Call(f, user.Params[0], ir.NewConstInt(ir.I64(), 3))
		sum = bd.Add(sum, c)
	}
	bd.Ret(sum)

	opts := DefaultOptions()
	rep := Run(m, opts)
	if rep.MergeOps < 3 {
		t.Errorf("4 identical clones should need 3 chained merges, got %d", rep.MergeOps)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v", err)
	}
}

func TestProfitGateRespectsTarget(t *testing.T) {
	// The same module explored under both targets should verify and shrink
	// under each cost model.
	for _, tgt := range tti.Targets() {
		m := workload.Build(demoProfile(29))
		opts := DefaultOptions()
		opts.Target = tgt
		rep := Run(m, opts)
		if rep.SizeAfter > rep.SizeBefore {
			t.Errorf("%s: size grew %d -> %d", tgt.Name(), rep.SizeBefore, rep.SizeAfter)
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("%s: %v", tgt.Name(), err)
		}
	}
}

func TestEligibleSkipsDeclsAndVariadics(t *testing.T) {
	m := ir.MustParseModule("e", `
declare void @d(i32)

define void @v(i32 %x, ...) {
entry:
  ret void
}
`)
	opts := DefaultOptions()
	if eligible(m.FuncByName("d"), opts) {
		t.Error("declaration must not be eligible")
	}
	if eligible(m.FuncByName("v"), opts) {
		t.Error("variadic must not be eligible")
	}
}

func TestMergeOptionsFlowThrough(t *testing.T) {
	// Disabling parameter reuse must still work end to end.
	m := workload.Build(demoProfile(31))
	opts := DefaultOptions()
	opts.Merge = core.DefaultOptions()
	opts.Merge.ReuseParams = false
	rep := Run(m, opts)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v", err)
	}
	_ = rep
}
