package explore

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// TestPartitionRestrictsMerging verifies the §IV-B model: confining pairs
// to partitions can only lose opportunities, and a partition separating
// every clone from its template finds nothing at all.
func TestPartitionRestrictsMerging(t *testing.T) {
	p := demoProfile(41)

	whole := workload.Build(p)
	wholeRep := Run(whole, DefaultOptions())

	// Round-robin partitioning into many units.
	parted := workload.Build(p)
	opts := DefaultOptions()
	opts.Partition = map[*ir.Func]int{}
	i := 0
	for _, f := range parted.Funcs {
		if !f.IsDecl() {
			opts.Partition[f] = i % 8
			i++
		}
	}
	partRep := Run(parted, opts)
	if err := ir.VerifyModule(parted); err != nil {
		t.Fatalf("verify: %v", err)
	}

	if partRep.Reduction() > wholeRep.Reduction()+1e-9 {
		t.Errorf("partitioned run reduced more (%.2f%%) than whole-program (%.2f%%)",
			partRep.Reduction(), wholeRep.Reduction())
	}

	// Isolate every function: no merges possible.
	solo := workload.Build(p)
	opts2 := DefaultOptions()
	opts2.Partition = map[*ir.Func]int{}
	j := 0
	for _, f := range solo.Funcs {
		if !f.IsDecl() {
			opts2.Partition[f] = j
			j++
		}
	}
	soloRep := Run(solo, opts2)
	if soloRep.MergeOps != 0 {
		t.Errorf("fully isolated partitioning still merged %d pairs", soloRep.MergeOps)
	}
}

// TestPartitionMergedFunctionInherits checks that a merged function stays
// inside its pair's partition and can keep merging there.
func TestPartitionMergedFunctionInherits(t *testing.T) {
	m := ir.NewModule("inherit")
	var funcs []*ir.Func
	for i := 0; i < 4; i++ {
		spec := workload.FuncSpec{
			Name: "c", Seed: 4242, Scalar: ir.I64(),
			NumParams: 2, Regions: 2, OpsPerBlock: 6, Internal: true,
		}
		funcs = append(funcs, workload.Generate(m, spec))
	}
	user := m.NewFuncIn("user", ir.FuncOf(ir.I64(), ir.I64()))
	bd := ir.NewBuilder(user.NewBlockIn("entry"))
	var acc ir.Value = ir.NewConstInt(ir.I64(), 0)
	for _, f := range funcs {
		acc = bd.Add(acc, bd.Call(f, user.Params[0], ir.NewConstInt(ir.I64(), 1)))
	}
	bd.Ret(acc)

	opts := DefaultOptions()
	opts.Partition = map[*ir.Func]int{
		funcs[0]: 0, funcs[1]: 0, funcs[2]: 0,
		funcs[3]: 1, user: 2,
	}
	rep := Run(m, opts)
	// Partition 0 holds three identical clones: two chained merges; the
	// isolated clone in partition 1 must stay.
	if rep.MergeOps != 2 {
		t.Errorf("merge ops = %d, want 2 (chain within partition 0)", rep.MergeOps)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}
