package explore

import (
	"reflect"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// recallProfile mirrors the clone mix of the suite's large templated C++
// corpora (xalancbmk/dealII) at a size large enough that the default
// LSHMinPool cutoff does not force a fallback.
func recallProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "recall", NumFuncs: 1600, AvgSize: 30, MaxSize: 120,
		Identical: 0.03, ConstVar: 0.02, TypeVar: 0.042, CFGVar: 0.028,
		Partial: 0.028, Reorder: 0.01, InternalFrac: 0.7, Seed: seed,
	}
}

// TestLSHRecallTop1 is the recall property of the LSH ranking path: at
// default parameters, for at least 95% of pool functions whose exact scan
// finds a best candidate, the LSH probe either ranks that same candidate or
// one at least as similar. Snapshots do not merge, so both modes run against
// the identical pool of the same module.
func TestLSHRecallTop1(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		m := workload.Build(recallProfile(seed))

		exactOpts := DefaultOptions()
		exactOpts.Threshold = 1
		exact, _ := SnapshotRanking(m, exactOpts)

		lshOpts := exactOpts
		lshOpts.Ranking = RankLSH
		lshRank, rep := SnapshotRanking(m, lshOpts)

		if rep.RankFallbacks != 0 {
			t.Fatalf("seed %d: LSH fell back on a %d-entry pool", seed, len(exact))
		}
		if len(exact) != len(lshRank) {
			t.Fatalf("seed %d: pool sizes diverge: exact %d, lsh %d", seed, len(exact), len(lshRank))
		}

		eligible, hits := 0, 0
		for i, e := range exact {
			if len(e.Cands) == 0 {
				continue
			}
			eligible++
			l := lshRank[i]
			if l.Func != e.Func {
				t.Fatalf("seed %d entry %d: pool order diverges: %s vs %s", seed, i, e.Func, l.Func)
			}
			top := e.Cands[0]
			hit := false
			for _, c := range l.Cands {
				if c.Name == top.Name {
					hit = true
					break
				}
			}
			// Tie-robust: a different candidate at least as similar also
			// preserves the merge opportunity.
			if !hit && len(l.Cands) > 0 && l.Cands[0].Sim >= top.Sim {
				hit = true
			}
			if hit {
				hits++
			}
		}
		if eligible == 0 {
			t.Fatalf("seed %d: no pool function had an exact candidate", seed)
		}
		recall := float64(hits) / float64(eligible)
		t.Logf("seed %d: top-1 recall %d/%d = %.3f (probes %d, skips %d)",
			seed, hits, eligible, recall, rep.RankProbes, rep.RankPrefilterSkips)
		if recall < 0.95 {
			t.Errorf("seed %d: LSH top-1 recall %.3f < 0.95", seed, recall)
		}
	}
}

// TestLSHFallbackBelowCutoff: on a pool smaller than LSHMinPool the LSH mode
// must record one fallback and reproduce the exact-mode run bit for bit.
func TestLSHFallbackBelowCutoff(t *testing.T) {
	opts := DefaultOptions()
	opts.Threshold = 5
	exactRep, exactMod := exploreWith(t, opts, 1, 19)

	opts.Ranking = RankLSH // demo pool (~30 funcs) < DefaultLSHMinPool
	lshRep, lshMod := exploreWith(t, opts, 1, 19)

	if lshRep.RankFallbacks != 1 {
		t.Errorf("RankFallbacks = %d, want 1", lshRep.RankFallbacks)
	}
	if !reflect.DeepEqual(exactRep.Records, lshRep.Records) {
		t.Errorf("fallback run diverges from exact:\nexact: %+v\nlsh: %+v",
			exactRep.Records, lshRep.Records)
	}
	if exactMod != lshMod {
		t.Error("fallback module text diverges from exact mode")
	}
}

// BenchmarkRankExact and BenchmarkRankLSH measure SnapshotRanking on the
// recall corpus; the rank-ns/op metric isolates the Ranking-phase wall time
// (index construction + probing vs the quadratic scan) from the shared
// setup cost.
func BenchmarkRankExact(b *testing.B) {
	benchmarkRank(b, RankExact)
}

func BenchmarkRankLSH(b *testing.B) {
	benchmarkRank(b, RankLSH)
}

func benchmarkRank(b *testing.B, mode RankingMode) {
	b.ReportAllocs()
	m := workload.Build(recallProfile(3))
	opts := DefaultOptions()
	opts.Threshold = 1
	opts.Ranking = mode
	opts.Workers = 1
	var rankNS int64
	var entries []RankEntry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rep *Report
		entries, rep = SnapshotRanking(m, opts)
		rankNS += int64(rep.Phases.Ranking)
	}
	b.StopTimer()
	if len(entries) == 0 {
		b.Fatal("empty ranking snapshot")
	}
	b.ReportMetric(float64(rankNS)/float64(b.N), "rank-ns/op")
	if err := ir.VerifyModule(m); err != nil {
		b.Fatalf("module corrupted by snapshot: %v", err)
	}
}
