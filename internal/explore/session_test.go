package explore

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// sessionSpecs is a corpus description a test can mutate and rebuild: the
// session sees each state as a fresh module (exactly how a CI resubmit
// arrives), and a cold run of the same state is always available for
// comparison.
func sessionSpecs(n int) []workload.FuncSpec {
	specs := make([]workload.FuncSpec, 0, n)
	for i := 0; i < n; i++ {
		// Clone families via shared seeds: every third function repeats an
		// earlier template, so the corpus is merge-rich.
		seed := int64(100 + i)
		if i%3 == 2 {
			seed = int64(100 + i - 2)
		}
		specs = append(specs, workload.FuncSpec{
			Name:        fmt.Sprintf("f%03d", i),
			Seed:        seed,
			Scalar:      ir.I64(),
			NumParams:   1 + i%3,
			Regions:     2 + i%2,
			OpsPerBlock: 5 + i%4,
			Internal:    true,
		})
	}
	return specs
}

func buildFromSpecs(specs []workload.FuncSpec) *ir.Module {
	m := ir.NewModule("sess")
	for _, sp := range specs {
		workload.Generate(m, sp)
	}
	return m
}

func printModule(t *testing.T, m *ir.Module) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ir.PrintModule(&buf, m); err != nil {
		t.Fatalf("print: %v", err)
	}
	return buf.String()
}

// mergeOutcome is the identity-relevant slice of a report: everything a
// cold run must reproduce bit-for-bit. Scheduling-dependent counters
// (cache hits, bound evals) and timings are deliberately excluded, as is
// SizeBefore (a session measures it after φ-demotion).
type mergeOutcome struct {
	MergeOps            int
	FullyRemoved        int
	CandidatesEvaluated int
	RankPositions       []int
	Records             []MergeRecord
	SizeAfter           int
}

func outcomeOf(rep *Report) mergeOutcome {
	return mergeOutcome{
		MergeOps:            rep.MergeOps,
		FullyRemoved:        rep.FullyRemoved,
		CandidatesEvaluated: rep.CandidatesEvaluated,
		RankPositions:       rep.RankPositions,
		Records:             rep.Records,
		SizeAfter:           rep.SizeAfter,
	}
}

func sessionOpts(workers int, ranking RankingMode) Options {
	opts := DefaultOptions()
	opts.Threshold = 2
	opts.Workers = workers
	opts.Ranking = ranking
	if ranking == RankLSH {
		opts.LSHMinPool = 1 // engage the index even on small test pools
	}
	return opts
}

// TestSessionWarmColdIdentical: a warm resubmission with a small delta
// produces bit-identical merge records — and a bit-identical module — to a
// cold session and to a plain Run, for every worker count and for both
// ranking modes.
func TestSessionWarmColdIdentical(t *testing.T) {
	base := sessionSpecs(90)
	delta := append([]workload.FuncSpec(nil), base...)
	delta[10].ConstSalt += 7 // changed
	delta[41].Seed += 1000   // changed (structurally)
	delta = append(delta[:60], delta[61:]...) // removed
	delta = append(delta, workload.FuncSpec{  // added
		Name: "fnew", Seed: 103, Scalar: ir.I64(), NumParams: 2,
		Regions: 2, OpsPerBlock: 6, Internal: true,
	})

	for _, ranking := range []RankingMode{RankExact, RankLSH} {
		var wantOutcome *mergeOutcome
		var wantModule string
		for _, workers := range []int{1, 2, 8} {
			opts := sessionOpts(workers, ranking)

			warmSess, err := NewSession(SessionConfig{Explore: opts})
			if err != nil {
				t.Fatal(err)
			}
			if _, d, err := warmSess.Submit(buildFromSpecs(base)); err != nil {
				t.Fatal(err)
			} else if d.Warm || d.Added != d.Funcs {
				t.Fatalf("first submit misclassified: %+v", d)
			}
			mWarm := buildFromSpecs(delta)
			repWarm, dWarm, err := warmSess.Submit(mWarm)
			if err != nil {
				t.Fatal(err)
			}
			if !dWarm.Warm || dWarm.Changed != 2 || dWarm.Added != 1 || dWarm.Removed != 1 {
				t.Fatalf("ranking=%v workers=%d: unexpected delta %+v", ranking, workers, dWarm)
			}
			if dWarm.SeededLists == 0 {
				t.Fatalf("ranking=%v workers=%d: no lists seeded on a 97%% unchanged resubmit", ranking, workers)
			}

			coldSess, err := NewSession(SessionConfig{Explore: opts})
			if err != nil {
				t.Fatal(err)
			}
			mCold := buildFromSpecs(delta)
			repCold, _, err := coldSess.Submit(mCold)
			if err != nil {
				t.Fatal(err)
			}

			mPlain := buildFromSpecs(delta)
			repPlain := Run(mPlain, opts)

			warmOut, coldOut, plainOut := outcomeOf(repWarm), outcomeOf(repCold), outcomeOf(repPlain)
			if !reflect.DeepEqual(warmOut, coldOut) {
				t.Fatalf("ranking=%v workers=%d: warm != cold session\nwarm: %+v\ncold: %+v",
					ranking, workers, warmOut, coldOut)
			}
			if !reflect.DeepEqual(warmOut, plainOut) {
				t.Fatalf("ranking=%v workers=%d: warm session != plain Run\nwarm: %+v\nplain: %+v",
					ranking, workers, warmOut, plainOut)
			}
			if got, want := printModule(t, mWarm), printModule(t, mCold); got != want {
				t.Fatalf("ranking=%v workers=%d: warm and cold merged modules differ", ranking, workers)
			}
			if wantOutcome == nil {
				out := warmOut
				wantOutcome = &out
				wantModule = printModule(t, mWarm)
			} else {
				if !reflect.DeepEqual(warmOut, *wantOutcome) {
					t.Fatalf("ranking=%v: outcome differs across worker counts at %d", ranking, workers)
				}
				if printModule(t, mWarm) != wantModule {
					t.Fatalf("ranking=%v: merged module differs across worker counts at %d", ranking, workers)
				}
			}
		}
	}
}

// TestSessionIdenticalResubmit: resubmitting the same corpus diffs as 100%
// unchanged, seeds every list, and still reproduces the cold outcome.
func TestSessionIdenticalResubmit(t *testing.T) {
	specs := sessionSpecs(60)
	opts := sessionOpts(2, RankExact)
	s, err := NewSession(SessionConfig{Explore: opts})
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := s.Submit(buildFromSpecs(specs))
	if err != nil {
		t.Fatal(err)
	}
	again, d, err := s.Submit(buildFromSpecs(specs))
	if err != nil {
		t.Fatal(err)
	}
	if d.Unchanged != d.Funcs || d.Changed+d.Added+d.Removed != 0 {
		t.Fatalf("identical resubmit misclassified: %+v", d)
	}
	if d.SeededLists != d.Funcs {
		t.Fatalf("identical resubmit should seed every list: %+v", d)
	}
	if d.NegHits == 0 {
		t.Fatal("identical resubmit hit no negative-memo entries")
	}
	if !reflect.DeepEqual(outcomeOf(first), outcomeOf(again)) {
		t.Fatalf("identical resubmit changed the outcome\nfirst: %+v\nagain: %+v",
			outcomeOf(first), outcomeOf(again))
	}
}

// TestSessionConvergesToCold: any sequence of submit/evict/resubmit steps —
// random changes, additions, removals, reorderings, identical resubmits —
// converges to the same merge records as a single cold run of the final
// corpus state. Every intermediate state is checked too, so the session can
// never drift and silently recover.
func TestSessionConvergesToCold(t *testing.T) {
	for _, ranking := range []RankingMode{RankExact, RankLSH} {
		rng := rand.New(rand.NewSource(42))
		specs := sessionSpecs(50)
		opts := sessionOpts(3, ranking)
		sess, err := NewSession(SessionConfig{Explore: opts})
		if err != nil {
			t.Fatal(err)
		}
		nextName := 0
		for step := 0; step < 8; step++ {
			switch rng.Intn(5) {
			case 0: // identical resubmit
			case 1: // mutate a few constants/structures
				for k := 0; k < 1+rng.Intn(3); k++ {
					i := rng.Intn(len(specs))
					if rng.Intn(2) == 0 {
						specs[i].ConstSalt++
					} else {
						specs[i].Seed += 5000
					}
				}
			case 2: // add functions
				for k := 0; k < 1+rng.Intn(2); k++ {
					specs = append(specs, workload.FuncSpec{
						Name:        fmt.Sprintf("g%03d", nextName),
						Seed:        int64(100 + rng.Intn(40)),
						Scalar:      ir.I64(),
						NumParams:   1 + rng.Intn(3),
						Regions:     2,
						OpsPerBlock: 5 + rng.Intn(3),
						Internal:    true,
					})
					nextName++
				}
			case 3: // remove a function
				if len(specs) > 10 {
					i := rng.Intn(len(specs))
					specs = append(specs[:i], specs[i+1:]...)
				}
			case 4: // reorder: move one spec to the front (breaks pool order)
				i := rng.Intn(len(specs))
				sp := specs[i]
				specs = append(specs[:i], specs[i+1:]...)
				specs = append([]workload.FuncSpec{sp}, specs...)
			}

			mSess := buildFromSpecs(specs)
			repSess, d, err := sess.Submit(mSess)
			if err != nil {
				t.Fatal(err)
			}
			if d.Unchanged+d.Changed+d.Added != d.Funcs {
				t.Fatalf("step %d: delta does not partition the pool: %+v", step, d)
			}
			mCold := buildFromSpecs(specs)
			repCold := Run(mCold, opts)
			if !reflect.DeepEqual(outcomeOf(repSess), outcomeOf(repCold)) {
				t.Fatalf("ranking=%v step %d (delta %+v): session diverged from cold run\nsess: %+v\ncold: %+v",
					ranking, step, d, outcomeOf(repSess), outcomeOf(repCold))
			}
			if got, want := printModule(t, mSess), printModule(t, mCold); got != want {
				t.Fatalf("ranking=%v step %d: merged modules differ", ranking, step)
			}
		}
	}
}

// TestSessionRejectsUnsupportedModes: oracle and partitioned exploration
// cannot seed and are rejected up front.
func TestSessionRejectsUnsupportedModes(t *testing.T) {
	opts := DefaultOptions()
	opts.Oracle = true
	if _, err := NewSession(SessionConfig{Explore: opts}); err == nil {
		t.Fatal("oracle session was accepted")
	}
	opts = DefaultOptions()
	opts.Partition = map[*ir.Func]int{}
	if _, err := NewSession(SessionConfig{Explore: opts}); err == nil {
		t.Fatal("partitioned session was accepted")
	}
}

// TestSessionSummaries: the summary table tracks the live corpus and reuses
// unchanged entries.
func TestSessionSummaries(t *testing.T) {
	specs := sessionSpecs(30)
	s, err := NewSession(SessionConfig{Explore: sessionOpts(2, RankExact), Summaries: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(buildFromSpecs(specs)); err != nil {
		t.Fatal(err)
	}
	sums := s.Summaries()
	if len(sums) != 30 {
		t.Fatalf("got %d summaries, want 30", len(sums))
	}
	before := make(map[string]uint64, len(sums))
	for _, fs := range sums {
		before[fs.Name] = fs.Hash
	}
	specs[7].ConstSalt++
	if _, _, err := s.Submit(buildFromSpecs(specs)); err != nil {
		t.Fatal(err)
	}
	after := s.Summaries()
	if len(after) != 30 {
		t.Fatalf("got %d summaries after resubmit, want 30", len(after))
	}
	changed := 0
	for _, fs := range after {
		if before[fs.Name] != fs.Hash {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("expected exactly the mutated function's summary hash to change, got %d", changed)
	}
}
