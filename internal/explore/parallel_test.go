package explore

import (
	"reflect"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// exploreWith builds the demo module and runs one exploration at the given
// worker count, returning the report and the final module text.
func exploreWith(t *testing.T, opts Options, workers int, seed int64) (*Report, string) {
	t.Helper()
	m := workload.Build(demoProfile(seed))
	opts.Workers = workers
	rep := Run(m, opts)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify (workers=%d): %v", workers, err)
	}
	return rep, ir.FormatModule(m)
}

// TestParallelDeterminism is the hard requirement of the parallel pipeline:
// Workers=1 and Workers=8 must commit the identical merge sequence and
// produce the identical module, across greedy and oracle configurations.
// Run under -race this also exercises the shared-use-list locking and the
// speculative evaluation wave for data races.
func TestParallelDeterminism(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"greedy-t1", func() Options { o := DefaultOptions(); o.Threshold = 1; return o }()},
		{"greedy-t10", func() Options { o := DefaultOptions(); o.Threshold = 10; return o }()},
		{"greedy-thumb", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Target = tti.Thumb{}
			return o
		}()},
		{"oracle-cap8", func() Options {
			o := DefaultOptions()
			o.Oracle = true
			o.OracleCap = 8
			return o
		}()},
		{"oracle-unbounded", func() Options { o := DefaultOptions(); o.Oracle = true; return o }()},
		{"greedy-audit", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Audit = AuditCommitted
			return o
		}()},
		{"greedy-audit-deep", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Audit = AuditDeep
			return o
		}()},
		{"greedy-lsh-t1", func() Options {
			o := DefaultOptions()
			o.Ranking = RankLSH
			o.LSHMinPool = 1 // demo pool is small; force the LSH path
			return o
		}()},
		{"greedy-lsh-t10", func() Options {
			o := DefaultOptions()
			o.Threshold = 10
			o.Ranking = RankLSH
			o.LSHMinPool = 1
			return o
		}()},
		{"oracle-cap8-lsh", func() Options {
			o := DefaultOptions()
			o.Oracle = true
			o.OracleCap = 8
			o.Ranking = RankLSH
			o.LSHMinPool = 1
			return o
		}()},
		// Kernel/cache matrix: the default configs above already run the
		// coded kernel with both caches on; these pin the closure baseline,
		// the caches-off path and a tiny memo (constant insert rejection)
		// to the same bit-identical requirement.
		{"greedy-closure-kernel", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Kernel = KernelClosure
			return o
		}()},
		{"greedy-nocaches", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.NoSeqCache = true
			o.NoAlignMemo = true
			return o
		}()},
		{"greedy-memo-cap2", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.AlignMemoCap = 2
			return o
		}()},
		// Pre-codegen bounding must be decision-invisible: the bound-off
		// configs here must match their bound-on twins above bit for bit
		// (the cross-config agreement is asserted separately by
		// TestBoundDecisionInvariance), and each must be Workers-invariant
		// on its own.
		{"greedy-t10-nobound", func() Options {
			o := DefaultOptions()
			o.Threshold = 10
			o.NoBound = true
			return o
		}()},
		{"greedy-thumb-nobound", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Target = tti.Thumb{}
			o.NoBound = true
			return o
		}()},
		{"oracle-cap8-nobound", func() Options {
			o := DefaultOptions()
			o.Oracle = true
			o.OracleCap = 8
			o.NoBound = true
			return o
		}()},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			serial, serialMod := exploreWith(t, cfg.opts, 1, 7)
			par, parMod := exploreWith(t, cfg.opts, 8, 7)

			if !reflect.DeepEqual(serial.Records, par.Records) {
				t.Errorf("merge records diverge:\nserial: %+v\nparallel: %+v",
					serial.Records, par.Records)
			}
			if !reflect.DeepEqual(serial.RankPositions, par.RankPositions) {
				t.Errorf("rank positions diverge: %v vs %v",
					serial.RankPositions, par.RankPositions)
			}
			if serial.CandidatesEvaluated != par.CandidatesEvaluated {
				t.Errorf("candidates evaluated diverge: %d vs %d",
					serial.CandidatesEvaluated, par.CandidatesEvaluated)
			}
			if serial.MergeOps != par.MergeOps || serial.FullyRemoved != par.FullyRemoved {
				t.Errorf("counters diverge: ops %d vs %d, removed %d vs %d",
					serial.MergeOps, par.MergeOps, serial.FullyRemoved, par.FullyRemoved)
			}
			if serial.SizeAfter != par.SizeAfter {
				t.Errorf("final size diverges: %d vs %d", serial.SizeAfter, par.SizeAfter)
			}
			if serial.AuditedMerges != par.AuditedMerges ||
				serial.AuditFlagged != par.AuditFlagged ||
				serial.AuditRejected != par.AuditRejected ||
				!reflect.DeepEqual(serial.AuditDiags, par.AuditDiags) {
				t.Errorf("audit results diverge: %d/%d/%d vs %d/%d/%d",
					serial.AuditedMerges, serial.AuditFlagged, serial.AuditRejected,
					par.AuditedMerges, par.AuditFlagged, par.AuditRejected)
			}
			if serial.RankProbes != par.RankProbes ||
				serial.RankPrefilterSkips != par.RankPrefilterSkips ||
				serial.RankFallbacks != par.RankFallbacks {
				t.Errorf("rank counters diverge: %d/%d/%d vs %d/%d/%d",
					serial.RankProbes, serial.RankPrefilterSkips, serial.RankFallbacks,
					par.RankProbes, par.RankPrefilterSkips, par.RankFallbacks)
			}
			if serialMod != parMod {
				t.Error("final module text diverges between Workers=1 and Workers=8")
			}
		})
	}
}

// TestBoundDecisionInvariance is the transparency requirement of pre-codegen
// profitability bounding (PR 5): bounding on and off must commit the same
// merge sequence and produce the same module — the bound only skips
// materializing candidates the exact cost model would reject anyway. Also
// asserts the prune actually fires on this clone-rich workload, so the
// equality is not vacuous.
func TestBoundDecisionInvariance(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"greedy-t10", func() Options { o := DefaultOptions(); o.Threshold = 10; return o }()},
		{"greedy-thumb-t5", func() Options {
			o := DefaultOptions()
			o.Threshold = 5
			o.Target = tti.Thumb{}
			return o
		}()},
		{"oracle-cap8", func() Options {
			o := DefaultOptions()
			o.Oracle = true
			o.OracleCap = 8
			return o
		}()},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			on, onMod := exploreWith(t, cfg.opts, 4, 7)
			off := cfg.opts
			off.NoBound = true
			noB, noBMod := exploreWith(t, off, 4, 7)

			if !reflect.DeepEqual(on.Records, noB.Records) {
				t.Errorf("merge records diverge with bounding:\non:  %+v\noff: %+v",
					on.Records, noB.Records)
			}
			if on.SizeAfter != noB.SizeAfter {
				t.Errorf("final size diverges: %d (bound) vs %d (nobound)",
					on.SizeAfter, noB.SizeAfter)
			}
			if onMod != noBMod {
				t.Error("final module text diverges between bounding on and off")
			}
			if on.BoundEvals == 0 {
				t.Error("bounding enabled but no bound evaluations recorded")
			}
			if noB.BoundEvals != 0 || noB.CodegenSkips != 0 {
				t.Errorf("NoBound run still counted bounds: %d evals, %d skips",
					noB.BoundEvals, noB.CodegenSkips)
			}
		})
	}
}

// TestWorkersDefaultMatchesSerial checks the Workers=0 (all cores) default
// also reproduces the serial result.
func TestWorkersDefaultMatchesSerial(t *testing.T) {
	opts := DefaultOptions()
	opts.Threshold = 10
	serial, serialMod := exploreWith(t, opts, 1, 11)
	auto, autoMod := exploreWith(t, opts, 0, 11)
	if !reflect.DeepEqual(serial.Records, auto.Records) || serialMod != autoMod {
		t.Error("Workers=0 default diverges from Workers=1")
	}
}

// TestRankCacheMatchesFullRescan cross-checks the incremental ranking cache
// against a from-scratch scan after every commit: a clean cached list must
// equal scanTop over the live pool (and, in LSH mode, the live index) at the
// moment it is consumed.
func TestRankCacheMatchesFullRescan(t *testing.T) {
	for _, mode := range []RankingMode{RankExact, RankLSH} {
		t.Run(mode.String(), func(t *testing.T) {
			m := workload.Build(demoProfile(13))
			opts := DefaultOptions()
			opts.Threshold = 10
			opts.Ranking = mode
			opts.LSHMinPool = 1
			opts.Workers = 1
			r := setup(m, opts)
			if mode == RankLSH && r.lsh == nil {
				t.Fatal("LSH state missing despite forced cutoff")
			}

			pops := 0
			for len(r.worklist) > 0 {
				f := r.worklist[0]
				r.worklist = r.worklist[1:]
				if !r.live(f) {
					continue
				}
				// Reference: what a from-scratch scan would rank right now.
				want := r.cache.scanTop(f)
				got := r.cache.take(f)
				if len(want) != len(got) {
					t.Fatalf("pop %d: cache returned %d candidates, rescan %d", pops, len(got), len(want))
				}
				for i := range want {
					if want[i].fn != got[i].fn {
						t.Fatalf("pop %d rank %d: cache has %s, rescan has %s",
							pops, i, got[i].fn.Name(), want[i].fn.Name())
					}
				}
				win, evaluated := evalCandidates(f, got, r.opts, r.costs, 1, true, nil, nil)
				r.rep.CandidatesEvaluated += evaluated
				if win.res != nil {
					r.commit(win.res, win.profit, win.rank+1)
				}
				pops++
			}
			if r.rep.MergeOps == 0 {
				t.Fatal("expected merges on a clone-rich module")
			}
		})
	}
}

// TestReportAddAccumulatesRanking is a regression test: Add must fold the
// later stage's Ranking phase time (and every other phase) into the
// combined report.
func TestReportAddAccumulatesRanking(t *testing.T) {
	a := &Report{Phases: Phases{Fingerprint: 1, Ranking: 10, Linearize: 100, Align: 1000, CodeGen: 10000, UpdateCalls: 100000}}
	b := &Report{Phases: Phases{Fingerprint: 2, Ranking: 20, Linearize: 200, Align: 2000, CodeGen: 20000, UpdateCalls: 200000}}
	a.Add(b)
	want := Phases{Fingerprint: 3, Ranking: 30, Linearize: 300, Align: 3000, CodeGen: 30000, UpdateCalls: 300000}
	if a.Phases != want {
		t.Errorf("Add phase accumulation: got %+v, want %+v", a.Phases, want)
	}
}

// BenchmarkExplore measures the serial exploration pipeline end to end on
// the demo workload (t=10 so each pop ranks and evaluates many candidates).
func BenchmarkExplore(b *testing.B) {
	benchmarkExplore(b, 1)
}

// BenchmarkExploreParallel is the same workload at Workers=GOMAXPROCS; the
// ratio to BenchmarkExplore is the parallel speedup on this host.
func BenchmarkExploreParallel(b *testing.B) {
	benchmarkExplore(b, 0)
}

func benchmarkExplore(b *testing.B, workers int) {
	b.ReportAllocs()
	opts := DefaultOptions()
	opts.Threshold = 10
	opts.Workers = workers
	mods := make([]*ir.Module, b.N)
	for i := range mods {
		mods[i] = workload.Build(demoProfile(3))
	}
	b.ResetTimer()
	merges := 0
	for i := 0; i < b.N; i++ {
		rep := Run(mods[i], opts)
		merges += rep.MergeOps
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(merges)/b.Elapsed().Seconds(), "merges/s")
	}
}
