package explore

// Parallel execution of the exploration pipeline. Three stages fan out
// across a bounded worker pool: fingerprint extraction, the initial ranking
// build (both embarrassingly parallel over a frozen pool) and the per-pop
// speculative evaluation wave implemented here.
//
// Determinism is a hard requirement: Workers=1 and Workers=N must commit
// the same merge sequence and produce the same module. The wave guarantees
// it by construction:
//
//   - Caller-facing cost-model inputs (caller counts, address-taken bits)
//     are snapshotted before the wave, so Profit never observes the
//     transient uses other in-flight attempts add and remove
//     (core.CallerStats).
//   - Shared use lists are mutex-guarded in the IR layer and removal is
//     order-preserving, so a discarded attempt leaves the module exactly as
//     it found it.
//   - The winner is a pure function of the per-rank outcomes: first
//     profitable rank in greedy mode, best (profit, then lowest rank) in
//     oracle mode. Speculative attempts beyond the greedy winner are
//     discarded and excluded from CandidatesEvaluated, matching the
//     sequential early-exit semantics.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fmsa/internal/core"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
)

// workerCount resolves the Options.Workers knob.
func workerCount(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on up to w goroutines. Work
// is claimed from an atomic counter, so uneven item costs balance
// themselves. fn must be safe for concurrent invocation with distinct i.
func parallelFor(n, w int, fn func(int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// attempt is one speculative merge outcome. rank is -1 when the worker
// found no profitable candidate.
type attempt struct {
	rank   int
	profit int
	res    *core.Result
}

// evalCandidates speculatively evaluates f against cands on up to w
// workers and returns the deterministic winner (res == nil when no
// candidate is profitable) plus the number of candidates counted as
// evaluated under sequential semantics.
//
// In greedy mode each worker stops at its first profitable rank and
// publishes it; ranks above the lowest published one are skipped, so the
// wave converges on the same early exit the sequential loop takes. In
// oracle mode every candidate is evaluated and each worker keeps only its
// local best, so at most w merged bodies are alive at once.
//
// neg and keys, when non-nil (warm sessions), implement the
// negative-attempt memo: an attempt whose verified content identities and
// caller snapshots are recorded as unprofitable is skipped without
// aligning or materializing anything. Outcome and profit are pure
// functions of exactly those inputs under pinned options, and an
// unprofitable attempt leaves no observable trace — it commits nothing,
// and the sequential-semantics evaluated count derives from the winner's
// rank, not from which attempts ran — so the skip is invisible in the
// merge records.
func evalCandidates(f *ir.Func, cands []candidate, opts Options, costs *tti.CostMemo, w int, greedy bool, neg *negMemo, keys *keyTable) (attempt, int) {
	n := len(cands)
	if n == 0 {
		return attempt{rank: -1}, 0
	}
	// Snapshot the cost-model inputs while no attempt is in flight.
	fStats := core.SnapshotCallerStats(f)
	cStats := make([]core.CallerStats, n)
	for i := range cands {
		cStats[i] = core.SnapshotCallerStats(cands[i].fn)
	}
	var fKey funcKey
	if neg != nil {
		fKey = keys.of(f)
	}

	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	var next int64
	best := int64(n) // lowest profitable rank published so far (greedy)
	locals := make([]attempt, w)

	work := func(slot int) {
		local := attempt{rank: -1}
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				break
			}
			if greedy && int64(i) > atomic.LoadInt64(&best) {
				continue // a lower profitable rank already won
			}
			// Negative-attempt memo: skip the attempt when this exact
			// (content, content, stats, stats) class already priced
			// unprofitable in an earlier run of the session.
			var nk negKey
			memoOK := false
			if neg != nil && fKey.ok {
				if cKey := keys.of(cands[i].fn); cKey.ok {
					nk = negKey{
						h1: fKey.hash, h2: cKey.hash,
						s1: fStats, s2: cStats[i],
						l1: f.Linkage, l2: cands[i].fn.Linkage,
					}
					memoOK = true
					if neg.known(nk) {
						continue
					}
				}
			}
			// Pre-codegen bounding (Options.NoBound): the per-candidate
			// prune spec carries this pair's caller snapshots, so the bound
			// and the exact model price the same inputs. A pruned pair
			// surfaces as core.ErrHopeless and is handled exactly like an
			// unprofitable one — determinism is unaffected.
			mo := opts.Merge
			if !opts.NoBound {
				mo.Prune = &core.PruneSpec{
					Target: opts.Target,
					S1:     fStats,
					S2:     cStats[i],
					Costs:  costs,
				}
			}
			res, err := core.Merge(f, cands[i].fn, mo)
			if err != nil {
				if memoOK {
					neg.insert(nk)
				}
				continue
			}
			profit := res.ProfitWithStatsMemo(opts.Target, fStats, cStats[i], costs)
			if profit <= 0 {
				res.Discard()
				if memoOK {
					neg.insert(nk)
				}
				continue
			}
			if greedy {
				local = attempt{rank: i, profit: profit, res: res}
				// Publish the rank so other workers stop claiming above
				// it, then stop: every rank below i is already claimed.
				for {
					b := atomic.LoadInt64(&best)
					if int64(i) >= b || atomic.CompareAndSwapInt64(&best, b, int64(i)) {
						break
					}
				}
				break
			}
			// Oracle: keep the local best by (profit desc, rank asc).
			// Claims arrive in increasing rank order, so on a tie the
			// held attempt already has the lower rank.
			if local.res == nil || profit > local.profit {
				if local.res != nil {
					local.res.Discard()
				}
				local = attempt{rank: i, profit: profit, res: res}
			} else {
				res.Discard()
			}
		}
		locals[slot] = local
	}

	if w == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func(slot int) {
				defer wg.Done()
				work(slot)
			}(g)
		}
		wg.Wait()
	}

	// Deterministic reduction over the per-worker winners.
	win := attempt{rank: -1}
	for _, a := range locals {
		if a.res == nil {
			continue
		}
		better := win.res == nil
		if !better {
			if greedy {
				better = a.rank < win.rank
			} else {
				better = a.profit > win.profit ||
					(a.profit == win.profit && a.rank < win.rank)
			}
		}
		if better {
			if win.res != nil {
				win.res.Discard()
			}
			win = a
		} else {
			a.res.Discard()
		}
	}

	evaluated := n
	if greedy && win.res != nil {
		// Sequential semantics: the loop would have stopped at the winner.
		evaluated = win.rank + 1
	}
	return win, evaluated
}
