package explore

// Warm-state merge sessions (ROADMAP item 2). A Session owns every
// cross-run artifact the pipeline previously rebuilt from scratch on each
// invocation — the LSH index, the encode interner feeding the seq caches,
// the alignment memo, the stable-hash content tables, the stored initial
// candidate rankings and the optional .fmsum summary table — and resubmits
// pay only for what a delta touched:
//
//  1. Diff. The submitted module is φ-demoted, its pool derived, and every
//     pool function's canonical structural key computed. Names are classed
//     unchanged / changed / added against the session table (byte-verified
//     key equality on self-comparable bodies; anything weaker is treated
//     as changed), and names that left the pool are removed.
//  2. Evict + reinsert. Changed and removed members leave the persistent
//     LSH index; changed and added members are fingerprinted, signed and
//     inserted under fresh session ids. Canonical sorted buckets make the
//     index state a pure function of the live membership, so this is
//     exactly the index a cold build of the new corpus produces.
//  3. Reconcile rankings. Stored initial candidate lists (kept at depth 2t
//     so evictions cannot expose unstored candidates) are pruned of
//     changed/removed members and offered the changed/added ones; lists
//     that retain the exact-top-t invariant seed the run, the rest — plus
//     all changed/added owners — are rescanned at setup and stored back.
//  4. Run. The runner executes the standard exploration with the seed; the
//     negative-attempt memo additionally skips (content, content, caller
//     stats) attempt classes an earlier run already priced unprofitable,
//     which on a small delta eliminates nearly all alignment and codegen.
//  5. Roll back. The run's own index churn (retired winners, admitted
//     merged functions) is journaled and undone, returning the session
//     index to the pre-run corpus state the next diff expects.
//
// Warm submissions are bit-identical to cold ones: every reused artifact
// is content-verified or provably equal to what a cold run rebuilds, and
// TestSessionWarmColdIdentical/TestSessionConvergesToCold enforce it.
// Sessions reject the oracle and partition modes (their ranking and
// eligibility structure does not seed) and pin Options at construction —
// the memo contracts above are only valid under fixed options.

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fmsa/internal/encode"
	"fmsa/internal/fingerprint"
	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/passes"
	"fmsa/internal/simdb"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
)

// SessionConfig configures a Session.
type SessionConfig struct {
	// Explore is the pinned exploration configuration. Oracle and
	// Partition are rejected; AlignMemoCap zero selects the session
	// default (DefaultSessionAlignMemoCap).
	Explore Options
	// NegMemoCap and KeyTableCap bound the session content tables; zero
	// selects the defaults.
	NegMemoCap  int
	KeyTableCap int
	// Summaries maintains a .fmsum summary table for the submitted corpus
	// (global.SummarizeFunc per live entry, recomputed only on change).
	Summaries bool
	// Store is an optional persistent similarity database. Submissions look
	// changed/added functions up by (stable hash, content key) and reuse the
	// stored fingerprint and signature on a hit — key byte equality implies
	// both are identical to a fresh computation, so results stay bit-exact —
	// and write their own state back (Put + Flush) before the run, making a
	// process restart as warm as a live session. May be shared across
	// concurrent sessions.
	Store *simdb.Store
}

// DeltaStats describes how one submission diffed against the session state
// and how much warm state it reused.
type DeltaStats struct {
	// Funcs is the submitted pool size; Unchanged/Changed/Added partition
	// it, and Removed counts names that left the pool.
	Funcs, Unchanged, Changed, Added, Removed int
	// SeededLists counts owners whose initial ranking was reconciled from
	// the stored session lists; RescannedLists were rebuilt by setup scans.
	SeededLists, RescannedLists int
	// NegHits counts merge attempts the negative-attempt memo skipped.
	NegHits int64
	// StoreHits/StoreMisses count changed/added functions whose fingerprint
	// state was reused from (or absent in) the persistent similarity store.
	StoreHits, StoreMisses int
	// Warm reports that the submission ran against prior session state.
	Warm bool
	// OrderBroken and ModeFlipped report why list seeding was abandoned
	// wholesale: the unchanged members' relative order shifted, or the
	// ranking mode crossed the LSH pool cutoff.
	OrderBroken, ModeFlipped bool
}

// sessEntry is the session's record of one live corpus function, keyed by
// name (function pointers die with their module).
type sessEntry struct {
	name   string
	hash   uint64
	key    []byte
	selfEq bool
	fp     *fingerprint.Fingerprint
	// sig is the MinHash signature; computed when the session ranks via
	// LSH (or keeps summaries) and retained across mode flips.
	sig *fingerprint.Signature
	// id is the session LSH member id, -1 when not indexed.
	id int32
	// list is the stored initial candidate list (depth 2t); nil before the
	// first run covering this entry completes.
	list *warmList
	// sum is the .fmsum summary (SessionConfig.Summaries only).
	sum    wire.FuncSummary
	hasSum bool
}

// Session is a reusable warm-state exploration context. Methods are safe
// for concurrent use but submissions serialize: one Submit runs at a time
// (the daemon runs one session per client stream and parallelizes within
// the run, not across runs of one session).
type Session struct {
	cfg  SessionConfig
	opts Options
	t    int
	// depth is the stored-list depth: 2t, so up to t member evictions
	// leave at least t exact entries.
	depth   int
	minPool int

	keys *keyTable
	neg  *negMemo
	memo *alignMemo

	mu      sync.Mutex
	entries map[string]*sessEntry
	order   []string // previous submission's pool names, in pool order
	lastLSH bool
	submits int

	idx       *lsh.Index
	lshParams lsh.Params
	sigsByID  []*fingerprint.Signature
	byID      []*sessEntry

	delta DeltaStats
}

// NewSession builds a session around pinned exploration options.
func NewSession(cfg SessionConfig) (*Session, error) {
	opts := cfg.Explore
	if opts.Oracle {
		return nil, errors.New("explore: sessions do not support oracle mode")
	}
	if opts.Partition != nil {
		return nil, errors.New("explore: sessions do not support partitioned exploration")
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	if opts.Target == nil {
		opts.Target = tti.X86{}
	}
	if opts.AlignMemoCap == 0 {
		opts.AlignMemoCap = DefaultSessionAlignMemoCap
	}
	if opts.Kernel != KernelClosure && opts.Merge.Interner == nil {
		// Session-lived interning table: codes stay comparable across runs,
		// which is what lets the alignment memo survive submissions.
		opts.Merge.Interner = encode.NewInterner()
	}
	minPool := opts.LSHMinPool
	if minPool == 0 {
		minPool = DefaultLSHMinPool
	}
	s := &Session{
		cfg:     cfg,
		opts:    opts,
		t:       opts.Threshold,
		depth:   2 * opts.Threshold,
		minPool: minPool,
		keys:    newKeyTable(cfg.KeyTableCap),
		neg:     newNegMemo(cfg.NegMemoCap),
		entries: map[string]*sessEntry{},
	}
	if !opts.NoAlignMemo && opts.Merge.AlignCoded != nil && opts.Kernel != KernelClosure {
		s.memo = newAlignMemo(opts.AlignMemoCap)
	}
	return s, nil
}

// Options returns the session's pinned (normalized) exploration options.
func (s *Session) Options() Options { return s.opts }

// LastDelta returns the delta statistics of the most recent Submit.
func (s *Session) LastDelta() DeltaStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delta
}

// classification of one pool function against the session table.
const (
	clsUnchanged = iota
	clsChanged
	clsAdded
)

// Submit explores m with whatever warm state the session holds, updates
// the session to m's corpus, and returns the run report plus the delta
// statistics. The module is φ-demoted and merged in place, exactly like
// Run; the report's merge records are bit-identical to a cold run's.
// (SizeBefore is measured after φ-demotion — a plain Run measures it
// before — which only differs on modules that still contain φs.)
func (s *Session) Submit(m *ir.Module) (*Report, DeltaStats, error) {
	if m == nil {
		return nil, DeltaStats{}, errors.New("explore: nil module")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	workers := workerCount(s.opts.Workers)
	delta := DeltaStats{Warm: s.submits > 0}
	tDiff := time.Now()

	// Diff: derive the pool from the φ-demoted module (the same scan
	// setupSeeded performs — demotion is idempotent) and class every pool
	// function against the session table by verified structural key.
	passes.DemotePhisModule(m)
	var pool []*ir.Func
	for _, f := range m.Funcs {
		if eligible(f, s.opts) {
			pool = append(pool, f)
		}
	}
	n := len(pool)
	delta.Funcs = n
	keysBuf := make([][]byte, n)
	selfEqs := make([]bool, n)
	hashes := make([]uint64, n)
	parallelFor(n, workers, func(i int) {
		k, se := global.AppendStableKey(nil, pool[i])
		keysBuf[i] = k
		selfEqs[i] = se
		hashes[i] = global.HashStableKey(k)
	})
	s.keys.reset()

	idxOf := make(map[string]int32, n)
	class := make([]int, n)
	entriesByIdx := make([]*sessEntry, n)
	newEntries := make(map[string]*sessEntry, n)
	for i, f := range pool {
		name := f.Name()
		idxOf[name] = int32(i)
		s.keys.register(f, keysBuf[i], selfEqs[i], hashes[i])
		old := s.entries[name]
		switch {
		case old != nil && old.selfEq && selfEqs[i] &&
			old.hash == hashes[i] && bytes.Equal(old.key, keysBuf[i]):
			class[i] = clsUnchanged
			delta.Unchanged++
			entriesByIdx[i] = old
		case old != nil:
			class[i] = clsChanged
			delta.Changed++
		default:
			class[i] = clsAdded
			delta.Added++
		}
		if entriesByIdx[i] == nil {
			entriesByIdx[i] = &sessEntry{
				name: name, hash: hashes[i], key: keysBuf[i],
				selfEq: selfEqs[i], id: -1,
			}
		}
		newEntries[name] = entriesByIdx[i]
	}
	var removed []*sessEntry
	for name, old := range s.entries {
		if _, live := idxOf[name]; !live {
			removed = append(removed, old)
		}
	}
	delta.Removed = len(removed)

	// Fingerprint (and summarize) the changed/added subset.
	var fresh []int32
	for i := range pool {
		if class[i] != clsUnchanged {
			fresh = append(fresh, int32(i))
		}
	}
	tFP := time.Now()
	diffTime := tFP.Sub(tDiff)
	var storeHits, storeMisses int64
	parallelFor(len(fresh), workers, func(j int) {
		i := fresh[j]
		e := entriesByIdx[i]
		if s.cfg.Store != nil {
			if rec := s.cfg.Store.Lookup(e.hash, e.key); rec != nil {
				// Key byte equality: the stored fingerprint and signature
				// are what Compute/ComputeSignature would produce.
				e.fp = rec.Fp
				e.sig = rec.Sig
				atomic.AddInt64(&storeHits, 1)
			} else {
				atomic.AddInt64(&storeMisses, 1)
			}
		}
		if e.fp == nil {
			e.fp = fingerprint.Compute(pool[i])
		}
		if s.cfg.Summaries {
			e.sum = global.SummarizeFunc(pool[i])
			e.hasSum = true
		}
	})
	delta.StoreHits = int(storeHits)
	delta.StoreMisses = int(storeMisses)
	fpTime := time.Since(tFP)

	// Ranking-mode decision and persistent-index maintenance.
	tWarm := time.Now()
	useLSH := s.opts.Ranking == RankLSH && n >= s.minPool
	delta.ModeFlipped = delta.Warm && useLSH != s.lastLSH
	if !useLSH && s.idx != nil {
		s.dropIndex()
	}
	if useLSH {
		s.maintainIndex(pool, class, entriesByIdx, removed, workers)
	}

	// Persist the fresh subset: unchanged store records are no-ops inside
	// Put, signature upgrades supersede unsigned ones. Names that left the
	// pool are NOT tombstoned — the store is content-addressed and shared
	// across sessions and corpora.
	if s.cfg.Store != nil {
		for _, i := range fresh {
			e := entriesByIdx[i]
			s.cfg.Store.Put(simdb.Record{
				Hash: e.hash, Name: e.name, Linkage: pool[i].Linkage,
				SelfEq: e.selfEq, Size: e.fp.Total, Key: e.key,
				Fp: e.fp, Sig: e.sig,
			})
		}
		if err := s.cfg.Store.Flush(); err != nil {
			return nil, delta, err
		}
	}

	// Reconcile stored candidate lists into run seeds.
	warmLists := delta.Warm && !delta.ModeFlipped && !delta.OrderBroken
	if warmLists && !s.orderPreserved(pool, class) {
		delta.OrderBroken = true
		warmLists = false
	}
	seedLists := make([]*seedList, n)
	if warmLists {
		s.reconcileLists(pool, class, entriesByIdx, idxOf, seedLists, workers)
	}
	for i := range seedLists {
		if seedLists[i] != nil {
			delta.SeededLists++
		} else {
			entriesByIdx[i].list = nil
		}
	}
	delta.RescannedLists = n - delta.SeededLists

	// Assemble the seed and run.
	seed := &warmSeed{
		fps:       make([]*fingerprint.Fingerprint, n),
		lists:     seedLists,
		scanDepth: s.depth,
		keys:      s.keys,
		neg:       s.neg,
		memo:      s.memo,
		fallback:  s.opts.Ranking == RankLSH && !useLSH,
	}
	for i, e := range entriesByIdx {
		seed.fps[i] = e.fp
	}
	seed.onScan = func(poolIdx int, cands []candidate) {
		wl := &warmList{
			cands:    make([]warmCand, 0, len(cands)),
			complete: len(cands) < s.depth,
		}
		for _, c := range cands {
			wl.cands = append(wl.cands, warmCand{name: c.fn.Name(), sim: c.sim, size: c.size})
		}
		entriesByIdx[poolIdx].list = wl
	}
	preLive := len(s.sigsByID)
	if useLSH {
		seed.lsh = s.runnerLSHState(pool, entriesByIdx)
	}
	warmTime := time.Since(tWarm)
	negHits := atomic.LoadInt64(&s.neg.hits)

	rep := runSeeded(m, s.opts, seed)

	// Roll the shared index back to the pre-run corpus state.
	tBack := time.Now()
	if ls := seed.lsh; ls != nil {
		for _, id := range ls.journal.admitted {
			// A merged function consumed by a later merge is journaled as
			// both admitted and retired; it is already out of the index and
			// Remove tolerates the absence.
			s.idx.Remove(id)
		}
		for _, id := range ls.journal.retired {
			// Run-created ids (>= preLive) do not survive the rollback —
			// only pre-run corpus members return to the index.
			if int(id) < preLive {
				s.idx.Insert(id, ls.sigs[id])
			}
		}
		s.sigsByID = ls.sigs[:preLive]
	}
	delta.NegHits = atomic.LoadInt64(&s.neg.hits) - negHits
	rep.Phases.Ranking += diffTime + warmTime + time.Since(tBack)
	rep.Phases.Fingerprint += fpTime

	// Adopt the new corpus as the session state.
	s.entries = newEntries
	s.order = make([]string, n)
	for i, f := range pool {
		s.order[i] = f.Name()
	}
	s.lastLSH = useLSH
	s.submits++
	s.delta = delta
	return rep, delta, nil
}

// dropIndex discards the persistent LSH index (mode flip below the pool
// cutoff). Entry signatures are retained — content is still valid if the
// corpus grows back over the cutoff — but ids are not.
func (s *Session) dropIndex() {
	s.idx = nil
	s.sigsByID = nil
	for _, e := range s.byID {
		if e != nil {
			e.id = -1
		}
	}
	s.byID = nil
}

// maintainIndex brings the persistent index to the submitted corpus: a
// fresh build when none exists, otherwise evict changed/removed members
// and insert changed/added ones under fresh session ids. Canonical sorted
// buckets make the result identical to a cold rebuild of the same corpus.
func (s *Session) maintainIndex(pool []*ir.Func, class []int, entriesByIdx []*sessEntry, removed []*sessEntry, workers int) {
	var need []int32
	if s.idx == nil {
		s.idx = lsh.NewSized(s.opts.LSH, len(pool))
		s.lshParams = s.idx.Params()
		s.sigsByID = nil
		s.byID = nil
		need = make([]int32, 0, len(pool))
		for i := range pool {
			need = append(need, int32(i))
		}
	} else {
		for _, old := range removed {
			s.freeID(old)
		}
		for i := range pool {
			if class[i] == clsChanged {
				if old := s.entries[entriesByIdx[i].name]; old != nil {
					s.freeID(old)
				}
			}
			if class[i] != clsUnchanged {
				need = append(need, int32(i))
			}
		}
	}
	parallelFor(len(need), workers, func(j int) {
		e := entriesByIdx[need[j]]
		if e.sig == nil {
			e.sig = fingerprint.ComputeSignature(pool[need[j]])
		}
	})
	for _, i := range need {
		e := entriesByIdx[i]
		e.id = int32(len(s.sigsByID))
		s.sigsByID = append(s.sigsByID, e.sig)
		s.byID = append(s.byID, e)
		s.idx.Insert(e.id, e.sig)
	}
}

// freeID evicts one prior-corpus member from the persistent index.
func (s *Session) freeID(e *sessEntry) {
	if e.id < 0 {
		return
	}
	s.idx.Remove(e.id)
	s.sigsByID[e.id] = nil
	s.byID[e.id] = nil
	e.id = -1
}

// orderPreserved reports whether the unchanged members appear in the same
// relative order as in the previous submission — the stored lists' pool-
// index tie-breaks are only valid if so.
func (s *Session) orderPreserved(pool []*ir.Func, class []int) bool {
	unchanged := make(map[string]bool, len(pool))
	for i, f := range pool {
		if class[i] == clsUnchanged {
			unchanged[f.Name()] = true
		}
	}
	var prev []string
	for _, name := range s.order {
		if unchanged[name] {
			prev = append(prev, name)
		}
	}
	j := 0
	for i, f := range pool {
		if class[i] != clsUnchanged {
			continue
		}
		if j >= len(prev) || prev[j] != f.Name() {
			return false
		}
		j++
	}
	return j == len(prev)
}

// reconcileLists turns surviving stored lists into run seeds: prune
// evicted members, offer the changed/added ones, and materialize every
// list that kept the exact-prefix invariant — in full, with its
// completeness flag, so the runner's own deletion-repair can keep working
// on it. Owners whose lists fall below t and are not complete get nil
// (setup rescans and re-stores them). Runs in parallel over owners — each
// owner touches only its own entry and seed slot.
func (s *Session) reconcileLists(pool []*ir.Func, class []int, entriesByIdx []*sessEntry, idxOf map[string]int32, seedLists []*seedList, workers int) {
	// keep: a stored member survives iff it is still in the pool with
	// unchanged content.
	keep := func(name string) bool {
		i, ok := idxOf[name]
		return ok && class[i] == clsUnchanged
	}
	// Offers: every changed/added pool member. In LSH mode each owner only
	// sees the offers it shares a band bucket with — exactly the probe
	// relation — precomputed by probing each offer against the updated
	// index; in exact mode every owner sees every offer.
	type offer struct {
		cand warmCand
		idx  int32
		fp   *fingerprint.Fingerprint
	}
	var offers []offer
	for i := range pool {
		if class[i] == clsUnchanged {
			continue
		}
		e := entriesByIdx[i]
		offers = append(offers, offer{
			cand: warmCand{name: e.name, size: e.fp.Total},
			idx:  int32(i),
			fp:   e.fp,
		})
	}
	offersFor := make(map[string][]int32) // owner name → offer indices
	if s.idx != nil {
		sigs := make([]*fingerprint.Signature, len(offers))
		selves := make([]int32, len(offers))
		for j, o := range offers {
			e := entriesByIdx[o.idx]
			sigs[j] = e.sig
			selves[j] = e.id
		}
		probes := s.idx.ProbeBatch(sigs, selves, workers)
		for j, ids := range probes {
			for _, id := range ids {
				hit := s.byID[id]
				if hit == nil {
					continue
				}
				if i, ok := idxOf[hit.name]; ok && class[i] == clsUnchanged {
					offersFor[hit.name] = append(offersFor[hit.name], int32(j))
				}
			}
		}
	}
	minSim := s.opts.MinSimilarity
	parallelFor(len(pool), workers, func(i int) {
		e := entriesByIdx[i]
		if class[i] != clsUnchanged || e.list == nil {
			return
		}
		wl := e.list
		wl.prune(keep)
		apply := func(o offer) {
			ub := fingerprint.SimilarityUpperBound(e.fp, o.fp)
			if ub < minSim {
				return
			}
			if len(wl.cands) > 0 {
				last := wl.cands[len(wl.cands)-1]
				if (len(wl.cands) == s.depth || !wl.complete) && ub < last.sim {
					return // strictly below the stored suffix either way
				}
			}
			sim := fingerprint.Similarity(e.fp, o.fp)
			if sim < minSim {
				return
			}
			c := o.cand
			c.sim = sim
			wl.offer(c, o.idx, idxOf, s.depth)
		}
		if s.idx != nil {
			for _, j := range offersFor[e.name] {
				apply(offers[j])
			}
		} else {
			for _, o := range offers {
				apply(o)
			}
		}
		if !wl.seedable(s.t) {
			return
		}
		cands := make([]candidate, 0, len(wl.cands)+1)
		for _, wc := range wl.cands {
			cands = append(cands, candidate{fn: pool[idxOf[wc.name]], sim: wc.sim, size: wc.size})
		}
		seedLists[i] = &seedList{cands: cands, complete: wl.complete}
	})
}

// runnerLSHState builds the per-run view of the persistent index: shared
// index and signature storage, id-indexed fingerprints and pool mapping
// for the submitted members, and a journal for post-run rollback.
func (s *Session) runnerLSHState(pool []*ir.Func, entriesByIdx []*sessEntry) *lshState {
	live := len(s.sigsByID)
	ls := &lshState{
		params:  s.lshParams,
		idx:     s.idx,
		sigs:    s.sigsByID,
		fps:     make([]*fingerprint.Fingerprint, live),
		id:      make(map[*ir.Func]int32, len(pool)),
		toPool:  make([]int32, live),
		journal: &lshJournal{},
	}
	for i := range ls.toPool {
		ls.toPool[i] = -1
	}
	for i, f := range pool {
		e := entriesByIdx[i]
		ls.fps[e.id] = e.fp
		ls.toPool[e.id] = int32(i)
		ls.id[f] = e.id
	}
	return ls
}

// Summaries returns the .fmsum summary table of the current corpus, one
// entry per pool function in pool order. Nil unless SessionConfig.Summaries
// was set (or before the first Submit).
func (s *Session) Summaries() []wire.FuncSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.Summaries || s.submits == 0 {
		return nil
	}
	out := make([]wire.FuncSummary, 0, len(s.order))
	for _, name := range s.order {
		if e := s.entries[name]; e != nil && e.hasSum {
			out = append(out, e.sum)
		}
	}
	return out
}
