package explore

import (
	"os"
	"testing"

	"fmsa/internal/workload"
)

// TestDbgAuditProfile is triage scaffolding: with FMSA_DBG=1 and
// FMSA_DBG_PROFILE=<name> it explores one corpus profile with auditing on,
// and runner.audit dumps every flagged merge (merged body plus originals) at
// audit time — after exploration the function may already have been consumed
// by a later merge. Skipped in normal runs.
func TestDbgAuditProfile(t *testing.T) {
	if os.Getenv("FMSA_DBG") == "" {
		t.Skip("set FMSA_DBG=1 and FMSA_DBG_PROFILE to run")
	}
	name := os.Getenv("FMSA_DBG_PROFILE")
	for _, p := range auditProfiles() {
		if p.Name != name {
			continue
		}
		m := workload.Build(p)
		opts := DefaultOptions()
		opts.Threshold = 2
		opts.Audit = AuditCommitted
		rep := Run(m, opts)
		t.Logf("profile %s: %d merges, %d flagged", name, rep.MergeOps, rep.AuditFlagged)
		return
	}
	t.Fatalf("profile %q not found", name)
}
