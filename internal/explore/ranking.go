package explore

// Sub-quadratic candidate ranking. The exact ranking path scores every pool
// member against every other (newRankCache builds all top-t lists by full
// scans, O(n²) similarity computations); the LSH path replaces each full
// scan with a probe of a banded MinHash index (internal/lsh), so only
// likely-similar bucket-mates are exactly scored. Exact remains the default
// and the recall oracle; LSH is selected with Options.Ranking = RankLSH and
// falls back to the exact scan when the initial pool is smaller than
// Options.LSHMinPool (index construction only pays off once the quadratic
// scan dominates).
//
// Determinism: signatures use fixed seeds and content-derived type hashes
// (fingerprint.ComputeSignature), index members are pool-insertion indices,
// and probe results are sorted ascending — so LSH rankings, like exact ones,
// are bit-identical for every Workers value. Both paths are additionally
// guarded by alignment-avoidance prefilters (fingerprint.SimilarityUpperBound
// against MinSimilarity and the current t-th candidate), which never change
// the resulting ranking — a candidate whose cheap upper bound is already too
// low cannot enter the list.

import (
	"errors"
	"sync/atomic"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
)

// RankingMode selects how candidate rankings are produced.
type RankingMode int

const (
	// RankExact scans the whole pool for every ranking — the paper's
	// mechanism and the recall baseline.
	RankExact RankingMode = iota
	// RankLSH probes a banded MinHash index so only bucket-mates are
	// exactly scored. Below Options.LSHMinPool it falls back to RankExact.
	RankLSH
)

// String names the mode the way the -ranking flags spell it.
func (m RankingMode) String() string {
	if m == RankLSH {
		return "lsh"
	}
	return "exact"
}

// ParseRankingMode parses the -ranking flag values: "" or "exact", or "lsh".
func ParseRankingMode(s string) (RankingMode, error) {
	switch s {
	case "", "exact":
		return RankExact, nil
	case "lsh":
		return RankLSH, nil
	default:
		return RankExact, errors.New(`unknown ranking mode "` + s + `" (want exact or lsh)`)
	}
}

// DefaultLSHMinPool is the initial-pool-size cutoff below which RankLSH
// falls back to the exact scan. Small pools rank faster by scanning than by
// building signatures and an index, and their sparse candidate structure is
// also where bucket probing misses the most moderate-similarity best
// candidates — measured on the synthetic suites, LSH only wins on both wall
// time and recall from roughly a thousand pool members up.
const DefaultLSHMinPool = 512

// lshState is the LSH ranking machinery of one exploration run: the banded
// index plus the signature and id bookkeeping that keeps it consistent as
// commits retire pool functions and add merged ones.
type lshState struct {
	params lsh.Params
	idx    *lsh.Index
	// sigs and fps are indexed by member id. On a cold run ids are pool
	// insertion indices, so both are parallel to runner.pool (nil after
	// pool[i] is consumed); on a warm run ids are the session's stable
	// member ids. fps mirrors runner.poolFPs so the probe-scoring inner loop
	// indexes a slice instead of hashing a map key per candidate.
	sigs []*fingerprint.Signature
	fps  []*fingerprint.Fingerprint
	// id maps live pool members to their index id.
	id map[*ir.Func]int32
	// toPool, non-nil only on warm runs, maps a member id to its pool
	// insertion index; ranking scans restore pool order through it.
	toPool []int32
	// journal, non-nil only on warm runs, records the run's index churn —
	// retires keep their sigs/fps slots alive — so the session can roll the
	// shared index back to its pre-run state after the run.
	journal *lshJournal
}

// lshJournal logs one warm run's index mutations in order.
type lshJournal struct {
	admitted, retired []int32
}

// initLSH builds the LSH state when the run requests it and the pool is
// large enough; otherwise it records the fallback and leaves r.lsh nil.
// Called from setup inside the Ranking-phase timer. Seeded runs adopt the
// session's pre-built state (or its pre-decided fallback) as is.
func (r *runner) initLSH() {
	if r.seed != nil {
		r.lsh = r.seed.lsh
		if r.seed.fallback {
			r.rep.RankFallbacks++
		}
		return
	}
	if r.opts.Ranking != RankLSH {
		return
	}
	minPool := r.opts.LSHMinPool
	if minPool == 0 {
		minPool = DefaultLSHMinPool
	}
	if len(r.pool) < minPool {
		r.rep.RankFallbacks++
		return
	}
	ls := &lshState{
		params: r.opts.LSH,
		sigs:   make([]*fingerprint.Signature, len(r.pool)),
		fps:    make([]*fingerprint.Fingerprint, len(r.pool)),
		id:     make(map[*ir.Func]int32, len(r.pool)),
	}
	parallelFor(len(r.pool), r.workers, func(i int) {
		ls.sigs[i] = fingerprint.ComputeSignature(r.pool[i])
	})
	ls.idx = lsh.NewSized(ls.params, len(r.pool))
	ls.params = ls.idx.Params() // normalized
	for i, f := range r.pool {
		ls.fps[i] = r.poolFPs[i]
		ls.id[f] = int32(i)
		ls.idx.Insert(int32(i), ls.sigs[i])
	}
	r.lsh = ls
}

// sigOf returns a live pool member's signature.
func (ls *lshState) sigOf(f *ir.Func) *fingerprint.Signature {
	return ls.sigs[ls.id[f]]
}

// retire removes a consumed function from the index. Warm runs journal the
// id and keep its sigs/fps slots alive so the session can re-insert the
// exact signature when rolling the shared index back.
func (ls *lshState) retire(f *ir.Func) {
	id, ok := ls.id[f]
	if !ok {
		return
	}
	ls.idx.Remove(id)
	delete(ls.id, f)
	if ls.journal != nil {
		ls.journal.retired = append(ls.journal.retired, id)
		return
	}
	ls.sigs[id] = nil
	ls.fps[id] = nil
}

// admit indexes the merged function that just joined the pool at position
// poolIdx == len(pool)-1. The member id is the next sigs slot: on a cold
// run that equals poolIdx (sigs stay parallel to the pool), on a warm run
// it is the next session id.
func (ls *lshState) admit(f *ir.Func, fp *fingerprint.Fingerprint, poolIdx int32) {
	sig := fingerprint.ComputeSignature(f)
	id := int32(len(ls.sigs))
	ls.sigs = append(ls.sigs, sig)
	ls.fps = append(ls.fps, fp)
	if ls.toPool != nil {
		ls.toPool = append(ls.toPool, poolIdx)
	}
	ls.id[f] = id
	ls.idx.Insert(id, sig)
	if ls.journal != nil {
		ls.journal.admitted = append(ls.journal.admitted, id)
	}
}

// RankCand is one ranked candidate in a SnapshotRanking entry.
type RankCand struct {
	// Name is the candidate function's name.
	Name string
	// Sim is the exact fingerprint similarity score.
	Sim float64
	// Size is the candidate's instruction count (the tie-break key).
	Size int32
}

// RankEntry records one pool function's initial top-t candidate list.
type RankEntry struct {
	// Func is the pool function's name.
	Func string
	// Cands is its candidate list, best first.
	Cands []RankCand
}

// SnapshotRanking builds only the initial candidate rankings of an
// exploration run — no merges are attempted — and returns one entry per pool
// member in pool order plus a report carrying the Ranking-phase wall time
// and the probe counters. The experiment harness uses it to measure ranking
// cost and LSH recall against the exact baseline on identical pools. The
// module is φ-demoted in place (the same pre-processing Run applies) but not
// otherwise modified. The unbounded oracle maintains no ranking; its
// snapshot is empty.
func SnapshotRanking(m *ir.Module, opts Options) ([]RankEntry, *Report) {
	r := setup(m, opts)
	if r.cache == nil {
		r.flushRankCounters()
		return nil, r.rep
	}
	entries := make([]RankEntry, 0, len(r.pool))
	for _, f := range r.pool {
		cands := r.cache.take(f)
		e := RankEntry{Func: f.Name(), Cands: make([]RankCand, 0, len(cands))}
		for _, c := range cands {
			e.Cands = append(e.Cands, RankCand{Name: c.fn.Name(), Sim: c.sim, Size: c.size})
		}
		entries = append(entries, e)
	}
	r.flushRankCounters()
	return entries, r.rep
}

// flushRankCounters folds the atomic scan counters into the report.
func (r *runner) flushRankCounters() {
	r.rep.RankProbes += atomic.LoadInt64(&r.rankProbes)
	r.rep.RankPrefilterSkips += atomic.LoadInt64(&r.rankSkips)
}
