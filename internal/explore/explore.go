// Package explore implements the paper's exploration framework (§IV,
// Fig. 7): fingerprints are precomputed for every function, a ranking
// mechanism selects the top candidates for each function, merges are
// attempted greedily in rank order, and committed merges feed back into the
// work list so merged functions can merge again. An oracle mode performs
// the exhaustive quadratic exploration the ranking replaces.
//
// The pipeline is parallel and incremental: fingerprinting, the initial
// ranking build and the per-pop candidate evaluations fan out across a
// bounded worker pool (Options.Workers), and rankings are maintained by an
// incremental cache instead of rescanning the whole pool on every worklist
// pop (see cache.go). Results are bit-identical for every Workers value —
// see parallel.go for the determinism rules.
package explore

import (
	"time"

	"fmsa/internal/analysis"
	"fmsa/internal/core"
	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
)

// Options configures an exploration run.
type Options struct {
	// Threshold is the exploration threshold t: how many top-ranked
	// candidates to evaluate per function (paper Fig. 10 uses 1, 5, 10).
	Threshold int
	// Oracle replaces ranking with exhaustive evaluation of every pair,
	// choosing the most profitable candidate (paper's unrealistic upper
	// bound).
	Oracle bool
	// OracleCap, when positive, bounds the oracle to the top-OracleCap
	// ranked candidates per function instead of the whole pool. With the
	// top-1 candidate already covering ~89% of profitable merges (Fig. 8),
	// a generous cap approximates the exhaustive oracle at a fraction of
	// its quadratic cost; it is exact for pools no larger than the cap.
	OracleCap int
	// Target supplies the code-size cost model for profitability.
	Target tti.Target
	// Merge configures the underlying merge operations.
	Merge core.Options
	// MaxHotness, when positive, excludes functions whose profile weight
	// exceeds it (the §V-D profile-guided mitigation).
	MaxHotness uint64
	// MinSimilarity prunes candidate pairs below this fingerprint score.
	MinSimilarity float64
	// Partition, when non-nil, restricts merging to function pairs in the
	// same partition — modelling per-translation-unit optimization instead
	// of whole-program LTO (§IV-B). Functions missing from the map share
	// partition 0. Merged functions inherit their pair's partition.
	Partition map[*ir.Func]int
	// Workers bounds the goroutines used for fingerprinting, ranking and
	// speculative candidate evaluation. Zero means runtime.GOMAXPROCS(0);
	// one runs fully serial. Workers is purely an execution knob: the
	// committed merge sequence, the report and the final module are
	// identical for every value.
	Workers int
	// Audit gates winning candidates through the static merge auditor
	// (analysis.AuditMerge) before they commit. AuditCommitted records
	// diagnostics; AuditDeep additionally rejects merges whose flagged
	// behavior a differential interpretation run confirms. Auditing is
	// deterministic, so the Workers invariance holds in every mode.
	Audit AuditMode
	// Ranking selects the candidate-ranking path (see ranking.go): RankExact
	// (the default — full pool scans, the paper's mechanism) or RankLSH
	// (banded MinHash index, sub-quadratic; falls back to exact below
	// LSHMinPool). Like Workers, Ranking LSH is deterministic: the committed
	// merge sequence is identical for every Workers value, though it may
	// differ from RankExact's when a probe misses a candidate an exhaustive
	// scan would have found. The unbounded oracle ranks nothing and ignores
	// this knob.
	Ranking RankingMode
	// LSH configures the banded MinHash index used by RankLSH; the zero
	// value selects lsh.DefaultParams.
	LSH lsh.Params
	// LSHMinPool is the initial-pool-size cutoff below which RankLSH falls
	// back to the exact scan. Zero selects DefaultLSHMinPool; exploration
	// never re-evaluates the cutoff as merges shrink the pool.
	LSHMinPool int
	// Kernel selects the alignment kernel (see kernel.go): KernelCoded (the
	// default — flat integer kernels over interned equivalence codes) or
	// KernelClosure (the EqFunc structural walk, the cross-check baseline).
	// Both produce bit-identical merges; only speed differs. When
	// Merge.AlignCoded was explicitly set to nil (a custom closure aligner
	// without a coded twin), the closure path runs regardless of this knob.
	Kernel KernelMode
	// NoSeqCache disables the per-function linearization+encoding cache:
	// every merge attempt re-linearizes both inputs, as before PR 4.
	NoSeqCache bool
	// NoAlignMemo disables the content-keyed alignment-result memo (only
	// active on the coded kernel to begin with).
	NoAlignMemo bool
	// AlignMemoCap bounds the memo's entry count; zero selects
	// DefaultAlignMemoCap.
	AlignMemoCap int
	// NoBound disables pre-codegen profitability bounding: every aligned
	// candidate pair is materialized and priced exactly, as before PR 5.
	// Bounding never changes merge decisions either way — a pruned pair is
	// one the exact cost model would have rejected — so this knob only
	// trades compile time.
	NoBound bool
	// Verify gates IR through the staged verifier (ir.VerifyFuncLevel):
	// every winning merged function is verified before the audit gate, and
	// the final module is verified once after the run. Like committed-mode
	// auditing, verification only records diagnostics — it never changes
	// merge decisions — so results stay bit-identical with it on or off.
	Verify ir.VerifyLevel
}

// DefaultOptions returns the paper's default configuration (t=1, Intel
// target) with parallelism across all available cores.
func DefaultOptions() Options {
	return Options{
		Threshold:     1,
		Target:        tti.X86{},
		Merge:         core.DefaultOptions(),
		MinSimilarity: 1e-9,
	}
}

// Phases is the per-phase breakdown of an exploration run (Fig. 13).
// Fingerprint, Ranking and UpdateCalls are wall-clock; Linearize, Align and
// CodeGen sum per-attempt time across workers, so under parallel
// exploration they can exceed the run's wall-clock time.
type Phases struct {
	Fingerprint time.Duration
	Ranking     time.Duration
	Linearize   time.Duration
	Align       time.Duration
	CodeGen     time.Duration
	UpdateCalls time.Duration
	// Audit is the time spent in the static merge auditor (plus deep-mode
	// differential runs). Zero when Options.Audit is AuditOff.
	Audit time.Duration
	// Verify is the time spent in the staged IR verifier. Zero when
	// Options.Verify is ir.VerifyOff.
	Verify time.Duration
}

// Total sums all phases.
func (p Phases) Total() time.Duration {
	return p.Fingerprint + p.Ranking + p.Linearize + p.Align + p.CodeGen + p.UpdateCalls + p.Audit + p.Verify
}

// MergeRecord describes one committed merge operation.
type MergeRecord struct {
	// Merged, F1, F2 are function names.
	Merged, F1, F2 string
	// Rank is the 1-based position of F2 in F1's candidate ranking
	// (0 in oracle mode).
	Rank int
	// Profit is the cost-model gain of the merge.
	Profit int
}

// Report summarizes an exploration run.
type Report struct {
	// MergeOps counts committed merge operations.
	MergeOps int
	// FullyRemoved counts original functions deleted outright.
	FullyRemoved int
	// CandidatesEvaluated counts attempted (aligned+generated) merges. In
	// greedy mode the count follows the sequential semantics — ranks up to
	// and including the committed one — even when speculative parallel
	// attempts evaluated further ranks that were then discarded.
	CandidatesEvaluated int
	// RankPositions holds, for each committed merge, the rank of the
	// successful candidate (Fig. 8 data).
	RankPositions []int
	// Records lists every committed merge.
	Records []MergeRecord
	// SizeBefore and SizeAfter are cost-model module sizes.
	SizeBefore, SizeAfter int
	// Phases is the per-phase time breakdown.
	Phases Phases
	// AuditedMerges counts winning candidates run through the auditor.
	AuditedMerges int
	// AuditFlagged counts audited merges with at least one diagnostic.
	AuditFlagged int
	// AuditEscalated counts flagged merges escalated to differential
	// interpretation (deep mode only).
	AuditEscalated int
	// AuditRejected counts merges rejected as confirmed miscompiles (deep
	// mode only).
	AuditRejected int
	// AuditDiags lists every diagnostic the auditor produced.
	AuditDiags []analysis.Diagnostic
	// RankProbes counts candidate pairs visited by ranking scans: pool
	// members in exact mode, probed bucket-mates (plus commit-time offers)
	// in LSH mode. The exact/LSH ratio is the ranking work LSH avoided.
	RankProbes int64
	// RankPrefilterSkips counts visited pairs dismissed by the cheap
	// alignment-avoidance bounds before exact similarity scoring.
	RankPrefilterSkips int64
	// RankFallbacks counts explorations that requested LSH ranking but fell
	// back to the exact scan because the pool was below Options.LSHMinPool.
	RankFallbacks int
	// AlignCells counts dynamic-programming cells the alignment kernels
	// actually computed (memo hits add nothing). Like the four cache
	// counters below, with Workers > 1 the value depends on how many
	// speculative attempts ran before each winner was found, so it may vary
	// across worker counts — the merge results above never do.
	AlignCells int64
	// SeqCacheHits and SeqCacheMisses count linearization-cache lookups by
	// merge attempts (two per attempt when the cache is enabled).
	SeqCacheHits, SeqCacheMisses int64
	// AlignMemoHits and AlignMemoMisses count alignment-memo lookups; a hit
	// skips the pair's entire DP run.
	AlignMemoHits, AlignMemoMisses int64
	// BoundEvals counts pre-codegen profitability-bound evaluations and
	// CodegenSkips the subset that skipped merged-function materialization
	// outright. Zero when Options.NoBound is set. Scheduling-dependent under
	// Workers > 1, like the cache counters above.
	BoundEvals, CodegenSkips int64
	// VerifiedFuncs counts functions run through the staged IR verifier
	// (winning merged functions plus the final whole-module pass). Zero when
	// Options.Verify is ir.VerifyOff.
	VerifiedFuncs int64
	// VerifyDiags lists every finding the verifier produced; empty on a
	// healthy pipeline.
	VerifyDiags []ir.VerifyDiag
}

// Add folds a later pipeline stage's report into r: counts accumulate,
// SizeBefore keeps r's original value and SizeAfter takes the later stage's.
// The paper's protocol runs Identical merging before both SOA and FMSA
// (§V-A); Add combines the two stages into one comparable report.
func (r *Report) Add(later *Report) {
	r.MergeOps += later.MergeOps
	r.FullyRemoved += later.FullyRemoved
	r.CandidatesEvaluated += later.CandidatesEvaluated
	r.RankPositions = append(r.RankPositions, later.RankPositions...)
	r.Records = append(r.Records, later.Records...)
	r.SizeAfter = later.SizeAfter
	r.Phases.Fingerprint += later.Phases.Fingerprint
	r.Phases.Ranking += later.Phases.Ranking
	r.Phases.Linearize += later.Phases.Linearize
	r.Phases.Align += later.Phases.Align
	r.Phases.CodeGen += later.Phases.CodeGen
	r.Phases.UpdateCalls += later.Phases.UpdateCalls
	r.Phases.Audit += later.Phases.Audit
	r.Phases.Verify += later.Phases.Verify
	r.VerifiedFuncs += later.VerifiedFuncs
	r.VerifyDiags = append(r.VerifyDiags, later.VerifyDiags...)
	r.AuditedMerges += later.AuditedMerges
	r.AuditFlagged += later.AuditFlagged
	r.AuditEscalated += later.AuditEscalated
	r.AuditRejected += later.AuditRejected
	r.AuditDiags = append(r.AuditDiags, later.AuditDiags...)
	r.RankProbes += later.RankProbes
	r.RankPrefilterSkips += later.RankPrefilterSkips
	r.RankFallbacks += later.RankFallbacks
	r.AlignCells += later.AlignCells
	r.SeqCacheHits += later.SeqCacheHits
	r.SeqCacheMisses += later.SeqCacheMisses
	r.AlignMemoHits += later.AlignMemoHits
	r.AlignMemoMisses += later.AlignMemoMisses
	r.BoundEvals += later.BoundEvals
	r.CodegenSkips += later.CodegenSkips
}

// Reduction returns the relative code-size reduction in percent.
func (r *Report) Reduction() float64 {
	if r.SizeBefore == 0 {
		return 0
	}
	return 100 * float64(r.SizeBefore-r.SizeAfter) / float64(r.SizeBefore)
}

// candidate pairs a pool function with its similarity score. size breaks
// similarity ties: between equally similar candidates, the larger one
// offers more absolute savings and is evaluated first.
type candidate struct {
	fn   *ir.Func
	sim  float64
	size int32
}

// runner carries the mutable state of one exploration run: the candidate
// pool, the FIFO worklist, the incremental ranking cache (optionally backed
// by an LSH index) and the report under construction.
type runner struct {
	m       *ir.Module
	opts    Options
	workers int
	rep     *Report

	// pool lists every function that ever entered the candidate pool, in
	// insertion order — the deterministic tie-break order of the ranking.
	// Consumed functions stay in the slice and are skipped via poolLive.
	// poolFPs and poolLive are parallel to pool, so the ranking scans — the
	// hottest loops of a run — index them directly instead of hashing
	// function pointers; poolIdx maps a member to its slot.
	pool      []*ir.Func
	poolIdx   map[*ir.Func]int32
	poolFPs   []*fingerprint.Fingerprint
	poolSizes []int32
	poolLive  []bool
	cache     *rankCache
	worklist  []*ir.Func
	// lsh is the MinHash index state; nil when ranking is exact or the pool
	// fell below the LSH cutoff.
	lsh *lshState
	// seqs is the per-function linearization+encoding cache; nil when
	// Options.NoSeqCache is set or the runner only snapshots rankings.
	seqs *seqCache
	// costs memoizes per-function cost-model sizes for the profitability
	// bound and the exact profit evaluation; nil when the runner only
	// snapshots rankings. Invalidated alongside seqs (same stale set).
	costs *tti.CostMemo
	// rankProbes and rankSkips accumulate scan counters atomically (scans
	// run inside parallelFor); flushRankCounters folds them into rep. The
	// totals are deterministic: the same set of scans runs at every Workers
	// value.
	rankProbes, rankSkips int64
	// seed is the warm-session state driving this run; nil on a cold
	// standalone Run. neg and keys mirror seed's tables (nil without one).
	seed *warmSeed
	neg  *negMemo
	keys *keyTable
}

// setup builds the runner state shared by Run and SnapshotRanking:
// φ-demotion, pool selection, parallel fingerprinting, the optional LSH
// index and the initial rank cache.
func setup(m *ir.Module, opts Options) *runner {
	return setupSeeded(m, opts, nil)
}

// setupSeeded is setup with an optional warm-session seed: fingerprints,
// the LSH index and (some) initial rankings come pre-built, keyed to the
// pool the session derived from the identical module state.
func setupSeeded(m *ir.Module, opts Options, seed *warmSeed) *runner {
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	if opts.Target == nil {
		opts.Target = tti.X86{}
	}
	r := &runner{
		m:       m,
		opts:    opts,
		workers: workerCount(opts.Workers),
		rep:     &Report{SizeBefore: tti.ModuleSize(opts.Target, m)},
		seed:    seed,
	}
	if seed != nil {
		r.neg = seed.neg
		r.keys = seed.keys
	}
	r.opts.Merge.Timings = &core.Timings{}
	r.setupKernel()

	// Pre-processing: the merger requires φ-free input (§III-A). Sessions
	// demote before diffing, so this is a no-op under a seed.
	passes.DemotePhisModule(m)

	// Fingerprint extraction for all eligible functions, fanned out across
	// the worker pool (each function is independent). A seed supplies them
	// precomputed, parallel to the pool it derived from the same module.
	tFP := time.Now()
	for _, f := range m.Funcs {
		if eligible(f, r.opts) {
			r.pool = append(r.pool, f)
		}
	}
	fpByIdx := make([]*fingerprint.Fingerprint, len(r.pool))
	if seed != nil {
		if len(seed.fps) != len(r.pool) {
			panic("explore: warm seed does not match the derived pool")
		}
		copy(fpByIdx, seed.fps)
	} else {
		parallelFor(len(r.pool), r.workers, func(i int) {
			fpByIdx[i] = fingerprint.Compute(r.pool[i])
		})
	}
	r.poolFPs = fpByIdx
	r.poolSizes = make([]int32, len(r.pool))
	r.poolLive = make([]bool, len(r.pool))
	r.poolIdx = make(map[*ir.Func]int32, len(r.pool))
	for i, f := range r.pool {
		r.poolIdx[f] = int32(i)
		r.poolSizes[i] = fpByIdx[i].Total
		r.poolLive[i] = true
	}
	r.worklist = append(r.worklist, r.pool...)
	r.rep.Phases.Fingerprint += time.Since(tFP)

	// Initial ranking: build every pool member's top-t list up front, in
	// parallel — signatures and the LSH index first when requested. From
	// here on the cache is maintained incrementally; the unbounded oracle
	// ranks nothing, so it skips the cache (and the index) entirely.
	if t := r.cacheThreshold(); t > 0 {
		tRank := time.Now()
		r.initLSH()
		r.cache = newRankCache(r, t)
		r.rep.Phases.Ranking += time.Since(tRank)
	}
	return r
}

// Run executes the exploration framework on m, committing every profitable
// merge it finds.
func Run(m *ir.Module, opts Options) *Report {
	return runSeeded(m, opts, nil)
}

// runSeeded is Run with an optional warm-session seed (see Session). The
// committed merges are bit-identical with and without a seed: every reused
// artifact is either content-verified (alignment memo, negative-attempt
// memo) or provably equal to what a cold run would rebuild (fingerprints,
// index state, seeded rankings).
func runSeeded(m *ir.Module, opts Options, seed *warmSeed) *Report {
	r := setupSeeded(m, opts, seed)
	r.setupCaches()

	for len(r.worklist) > 0 {
		f := r.worklist[0]
		r.worklist = r.worklist[1:]
		if !r.live(f) {
			continue // already consumed by an earlier merge
		}

		// Candidates Ranking: top-t most similar pool members (§IV), or
		// every pool member in oracle mode.
		tRank := time.Now()
		var cands []candidate
		if r.cache != nil {
			cands = r.cache.take(f)
		} else {
			for i, g := range r.pool {
				if g != f && r.poolLive[i] && samePartition(r.opts, f, g) {
					cands = append(cands, candidate{fn: g})
				}
			}
		}
		r.rep.Phases.Ranking += time.Since(tRank)

		// Candidate evaluation: speculative merge attempts fan out across
		// the worker pool; the winner is selected deterministically (first
		// profitable rank in greedy mode, best profit in oracle mode).
		win, evaluated := evalCandidates(f, cands, r.opts, r.costs, r.workers, !r.opts.Oracle, r.neg, r.keys)
		r.rep.CandidatesEvaluated += evaluated
		if win.res == nil {
			continue
		}
		// Verify gate: run the staged IR verifier over the winning merged
		// function before the audit sees it. Recording-only — findings never
		// reject a merge, keeping decisions invariant under the knob.
		if r.opts.Verify != ir.VerifyOff {
			r.verifyFunc(win.res.Merged)
		}
		// Audit gate: statically check the winner before it commits (the
		// originals must still be intact). Deep mode may reject it.
		if r.opts.Audit != AuditOff {
			tAudit := time.Now()
			ok := r.audit(win.res)
			r.rep.Phases.Audit += time.Since(tAudit)
			if !ok {
				win.res.Discard()
				continue
			}
		}
		if r.opts.Oracle {
			r.commit(win.res, win.profit, 0)
		} else {
			r.commit(win.res, win.profit, win.rank+1)
		}
	}

	// Final boundary: verify the whole post-merge module (thunks, rewritten
	// call sites, dropped originals) once, catching any dangling reference
	// or use-list leak a commit left behind.
	if r.opts.Verify != ir.VerifyOff {
		tV := time.Now()
		diags := ir.VerifyModuleLevel(m, r.opts.Verify)
		r.opts.Merge.Timings.AddVerify(time.Since(tV))
		r.opts.Merge.Timings.CountVerify(len(m.Definitions()), len(diags))
		r.rep.VerifyDiags = append(r.rep.VerifyDiags, diags...)
	}

	r.rep.SizeAfter = tti.ModuleSize(r.opts.Target, m)
	tm := r.opts.Merge.Timings
	r.rep.Phases.Linearize = tm.Linearize
	r.rep.Phases.Align = tm.Align
	r.rep.Phases.CodeGen = tm.CodeGen
	r.rep.AlignCells = tm.AlignCells
	r.rep.SeqCacheHits = tm.SeqCacheHits
	r.rep.SeqCacheMisses = tm.SeqCacheMisses
	r.rep.AlignMemoHits = tm.AlignMemoHits
	r.rep.AlignMemoMisses = tm.AlignMemoMisses
	r.rep.BoundEvals = tm.BoundEvals
	r.rep.CodegenSkips = tm.CodegenSkips
	r.rep.Phases.Verify = tm.Verify
	r.rep.VerifiedFuncs = tm.VerifyFuncs
	r.flushRankCounters()
	return r.rep
}

// verifyFunc runs the staged verifier over one function (a winning merged
// body, still detached from the module) and records time and findings.
func (r *runner) verifyFunc(f *ir.Func) {
	tV := time.Now()
	diags := ir.VerifyFuncLevel(f, r.opts.Verify)
	r.opts.Merge.Timings.AddVerify(time.Since(tV))
	r.opts.Merge.Timings.CountVerify(1, len(diags))
	r.rep.VerifyDiags = append(r.rep.VerifyDiags, diags...)
}

// cacheThreshold returns the ranking depth maintained by the incremental
// cache, or 0 when ranking is disabled (unbounded oracle).
func (r *runner) cacheThreshold() int {
	if r.opts.Oracle {
		return r.opts.OracleCap // 0 disables the cache
	}
	return r.opts.Threshold
}

// commit installs a profitable merge and maintains the exploration state:
// the consumed functions leave the pool, the merged function joins both the
// pool and the work list (the Fig. 7 feedback loop), and the ranking cache
// invalidates exactly the entries the commit touched.
func (r *runner) commit(res *core.Result, profit, rank int) {
	// Gather the linearization-cache invalidation set before committing:
	// Commit rewrites caller call sites and then drains the originals' use
	// lists, so the caller set is only visible now.
	var stale []*ir.Func
	if r.seqs != nil || r.costs != nil {
		stale = staleAfterCommit(res)
	}
	tUp := time.Now()
	removed := res.Commit()
	r.rep.Phases.UpdateCalls += time.Since(tUp)

	r.rep.MergeOps++
	r.rep.FullyRemoved += removed
	if rank > 0 {
		r.rep.RankPositions = append(r.rep.RankPositions, rank)
	}
	r.rep.Records = append(r.rep.Records, MergeRecord{
		Merged: res.Merged.Name(),
		F1:     res.F1.Name(),
		F2:     res.F2.Name(),
		Rank:   rank,
		Profit: profit,
	})

	r.removeFromPool(res.F1)
	r.removeFromPool(res.F2)

	merged := res.Merged
	merged.Hotness = res.F1.Hotness + res.F2.Hotness
	if r.opts.Partition != nil {
		r.opts.Partition[merged] = r.opts.Partition[res.F1]
	}
	var entered *ir.Func
	if eligible(merged, r.opts) {
		tFP := time.Now()
		fp := fingerprint.Compute(merged)
		r.rep.Phases.Fingerprint += time.Since(tFP)
		r.poolIdx[merged] = int32(len(r.pool))
		r.pool = append(r.pool, merged)
		r.poolFPs = append(r.poolFPs, fp)
		r.poolSizes = append(r.poolSizes, fp.Total)
		r.poolLive = append(r.poolLive, true)
		r.worklist = append(r.worklist, merged)
		entered = merged
	}
	if r.cache != nil {
		tRank := time.Now()
		if r.lsh != nil {
			r.lsh.retire(res.F1)
			r.lsh.retire(res.F2)
			if entered != nil {
				r.lsh.admit(entered, r.fpOf(entered), int32(len(r.pool)-1))
			}
		}
		r.cache.applyCommit(res.F1, res.F2, entered)
		r.rep.Phases.Ranking += time.Since(tRank)
	}
	r.refreshSeqs(stale)
}

func (r *runner) removeFromPool(f *ir.Func) {
	if i, ok := r.poolIdx[f]; ok && r.poolLive[i] {
		r.poolLive[i] = false
		r.poolFPs[i] = nil
	}
}

// live reports whether f is an unconsumed pool member.
func (r *runner) live(f *ir.Func) bool {
	i, ok := r.poolIdx[f]
	return ok && r.poolLive[i]
}

// fpOf returns a live pool member's fingerprint.
func (r *runner) fpOf(f *ir.Func) *fingerprint.Fingerprint {
	return r.poolFPs[r.poolIdx[f]]
}

// samePartition reports whether two functions may merge under the
// partition constraint.
func samePartition(opts Options, a, b *ir.Func) bool {
	if opts.Partition == nil {
		return true
	}
	return opts.Partition[a] == opts.Partition[b]
}

// eligible reports whether f participates in exploration.
func eligible(f *ir.Func, opts Options) bool {
	if f.IsDecl() || f.Sig().Variadic {
		return false
	}
	if opts.MaxHotness > 0 && f.Hotness > opts.MaxHotness {
		return false
	}
	return true
}
