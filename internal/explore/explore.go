// Package explore implements the paper's exploration framework (§IV,
// Fig. 7): fingerprints are precomputed for every function, a ranking
// mechanism selects the top candidates for each function, merges are
// attempted greedily in rank order, and committed merges feed back into the
// work list so merged functions can merge again. An oracle mode performs
// the exhaustive quadratic exploration the ranking replaces.
package explore

import (
	"time"

	"fmsa/internal/core"
	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
)

// Options configures an exploration run.
type Options struct {
	// Threshold is the exploration threshold t: how many top-ranked
	// candidates to evaluate per function (paper Fig. 10 uses 1, 5, 10).
	Threshold int
	// Oracle replaces ranking with exhaustive evaluation of every pair,
	// choosing the most profitable candidate (paper's unrealistic upper
	// bound).
	Oracle bool
	// OracleCap, when positive, bounds the oracle to the top-OracleCap
	// ranked candidates per function instead of the whole pool. With the
	// top-1 candidate already covering ~89% of profitable merges (Fig. 8),
	// a generous cap approximates the exhaustive oracle at a fraction of
	// its quadratic cost; it is exact for pools no larger than the cap.
	OracleCap int
	// Target supplies the code-size cost model for profitability.
	Target tti.Target
	// Merge configures the underlying merge operations.
	Merge core.Options
	// MaxHotness, when positive, excludes functions whose profile weight
	// exceeds it (the §V-D profile-guided mitigation).
	MaxHotness uint64
	// MinSimilarity prunes candidate pairs below this fingerprint score.
	MinSimilarity float64
	// Partition, when non-nil, restricts merging to function pairs in the
	// same partition — modelling per-translation-unit optimization instead
	// of whole-program LTO (§IV-B). Functions missing from the map share
	// partition 0. Merged functions inherit their pair's partition.
	Partition map[*ir.Func]int
}

// DefaultOptions returns the paper's default configuration (t=1, Intel
// target).
func DefaultOptions() Options {
	return Options{
		Threshold:     1,
		Target:        tti.X86{},
		Merge:         core.DefaultOptions(),
		MinSimilarity: 1e-9,
	}
}

// Phases is the per-phase wall-clock breakdown of an exploration run
// (Fig. 13).
type Phases struct {
	Fingerprint time.Duration
	Ranking     time.Duration
	Linearize   time.Duration
	Align       time.Duration
	CodeGen     time.Duration
	UpdateCalls time.Duration
}

// Total sums all phases.
func (p Phases) Total() time.Duration {
	return p.Fingerprint + p.Ranking + p.Linearize + p.Align + p.CodeGen + p.UpdateCalls
}

// MergeRecord describes one committed merge operation.
type MergeRecord struct {
	// Merged, F1, F2 are function names.
	Merged, F1, F2 string
	// Rank is the 1-based position of F2 in F1's candidate ranking
	// (0 in oracle mode).
	Rank int
	// Profit is the cost-model gain of the merge.
	Profit int
}

// Report summarizes an exploration run.
type Report struct {
	// MergeOps counts committed merge operations.
	MergeOps int
	// FullyRemoved counts original functions deleted outright.
	FullyRemoved int
	// CandidatesEvaluated counts attempted (aligned+generated) merges.
	CandidatesEvaluated int
	// RankPositions holds, for each committed merge, the rank of the
	// successful candidate (Fig. 8 data).
	RankPositions []int
	// Records lists every committed merge.
	Records []MergeRecord
	// SizeBefore and SizeAfter are cost-model module sizes.
	SizeBefore, SizeAfter int
	// Phases is the wall-clock breakdown.
	Phases Phases
}

// Add folds a later pipeline stage's report into r: counts accumulate,
// SizeBefore keeps r's original value and SizeAfter takes the later stage's.
// The paper's protocol runs Identical merging before both SOA and FMSA
// (§V-A); Add combines the two stages into one comparable report.
func (r *Report) Add(later *Report) {
	r.MergeOps += later.MergeOps
	r.FullyRemoved += later.FullyRemoved
	r.CandidatesEvaluated += later.CandidatesEvaluated
	r.RankPositions = append(r.RankPositions, later.RankPositions...)
	r.Records = append(r.Records, later.Records...)
	r.SizeAfter = later.SizeAfter
	r.Phases.Fingerprint += later.Phases.Fingerprint
	r.Phases.Ranking += later.Phases.Ranking
	r.Phases.Linearize += later.Phases.Linearize
	r.Phases.Align += later.Phases.Align
	r.Phases.CodeGen += later.Phases.CodeGen
	r.Phases.UpdateCalls += later.Phases.UpdateCalls
}

// Reduction returns the relative code-size reduction in percent.
func (r *Report) Reduction() float64 {
	if r.SizeBefore == 0 {
		return 0
	}
	return 100 * float64(r.SizeBefore-r.SizeAfter) / float64(r.SizeBefore)
}

// candidate pairs a pool function with its similarity score. size breaks
// similarity ties: between equally similar candidates, the larger one
// offers more absolute savings and is evaluated first.
type candidate struct {
	fn   *ir.Func
	sim  float64
	size int32
}

// Run executes the exploration framework on m, committing every profitable
// merge it finds.
func Run(m *ir.Module, opts Options) *Report {
	if opts.Threshold <= 0 {
		opts.Threshold = 1
	}
	if opts.Target == nil {
		opts.Target = tti.X86{}
	}
	rep := &Report{SizeBefore: tti.ModuleSize(opts.Target, m)}
	opts.Merge.Timings = &core.Timings{}

	// Pre-processing: the merger requires φ-free input (§III-A).
	passes.DemotePhisModule(m)

	// Fingerprint extraction for all eligible functions.
	tFP := time.Now()
	fps := map[*ir.Func]*fingerprint.Fingerprint{}
	var pool []*ir.Func
	var worklist []*ir.Func
	for _, f := range m.Funcs {
		if !eligible(f, opts) {
			continue
		}
		fps[f] = fingerprint.Compute(f)
		pool = append(pool, f)
		worklist = append(worklist, f)
	}
	rep.Phases.Fingerprint += time.Since(tFP)

	inPool := map[*ir.Func]bool{}
	for _, f := range pool {
		inPool[f] = true
	}
	removeFromPool := func(f *ir.Func) {
		if !inPool[f] {
			return
		}
		delete(inPool, f)
		delete(fps, f)
	}

	for len(worklist) > 0 {
		f := worklist[0]
		worklist = worklist[1:]
		if !inPool[f] {
			continue // already consumed by an earlier merge
		}

		// Candidates Ranking: top-t most similar pool members (§IV), or
		// every pool member in oracle mode.
		tRank := time.Now()
		var cands []candidate
		if opts.Oracle && opts.OracleCap > 0 {
			capped := opts
			capped.Threshold = opts.OracleCap
			cands = topCandidates(f, pool, inPool, fps, capped)
		} else if opts.Oracle {
			for _, g := range pool {
				if g != f && inPool[g] && samePartition(opts, f, g) {
					cands = append(cands, candidate{fn: g})
				}
			}
		} else {
			cands = topCandidates(f, pool, inPool, fps, opts)
		}
		rep.Phases.Ranking += time.Since(tRank)

		if opts.Oracle {
			exploreOracle(m, f, cands, opts, rep, &worklist, &pool, inPool, fps, removeFromPool)
			continue
		}

		// Greedy: commit the first profitable candidate (§IV).
		for rank, c := range cands {
			res, err := core.Merge(f, c.fn, opts.Merge)
			rep.CandidatesEvaluated++
			if err != nil {
				continue
			}
			profit := res.Profit(opts.Target)
			if profit <= 0 {
				res.Discard()
				continue
			}
			commit(m, res, profit, rank+1, opts, rep, &worklist, &pool, inPool, fps, removeFromPool)
			break
		}
	}

	rep.SizeAfter = tti.ModuleSize(opts.Target, m)
	rep.Phases.Linearize = opts.Merge.Timings.Linearize
	rep.Phases.Align = opts.Merge.Timings.Align
	rep.Phases.CodeGen = opts.Merge.Timings.CodeGen
	return rep
}

// samePartition reports whether two functions may merge under the
// partition constraint.
func samePartition(opts Options, a, b *ir.Func) bool {
	if opts.Partition == nil {
		return true
	}
	return opts.Partition[a] == opts.Partition[b]
}

// eligible reports whether f participates in exploration.
func eligible(f *ir.Func, opts Options) bool {
	if f.IsDecl() || f.Sig().Variadic {
		return false
	}
	if opts.MaxHotness > 0 && f.Hotness > opts.MaxHotness {
		return false
	}
	return true
}

// topCandidates selects the top-t pool members by fingerprint similarity
// using a bounded insertion (the paper's priority queue).
func topCandidates(f *ir.Func, pool []*ir.Func, inPool map[*ir.Func]bool, fps map[*ir.Func]*fingerprint.Fingerprint, opts Options) []candidate {
	fp := fps[f]
	t := opts.Threshold
	best := make([]candidate, 0, t+1)
	for _, g := range pool {
		if g == f || !inPool[g] || !samePartition(opts, f, g) {
			continue
		}
		s := fingerprint.Similarity(fp, fps[g])
		if s < opts.MinSimilarity {
			continue
		}
		sz := fps[g].Total
		// Insert in descending (similarity, size) order, keeping at most
		// t entries.
		pos := len(best)
		for pos > 0 && (best[pos-1].sim < s ||
			(best[pos-1].sim == s && best[pos-1].size < sz)) {
			pos--
		}
		if pos >= t {
			continue
		}
		best = append(best, candidate{})
		copy(best[pos+1:], best[pos:])
		best[pos] = candidate{fn: g, sim: s, size: sz}
		if len(best) > t {
			best = best[:t]
		}
	}
	return best
}

// exploreOracle evaluates every candidate and commits the best profitable
// one.
func exploreOracle(m *ir.Module, f *ir.Func, cands []candidate, opts Options, rep *Report,
	worklist *[]*ir.Func, pool *[]*ir.Func, inPool map[*ir.Func]bool,
	fps map[*ir.Func]*fingerprint.Fingerprint, removeFromPool func(*ir.Func)) {

	bestProfit := 0
	var bestRes *core.Result
	for _, c := range cands {
		res, err := core.Merge(f, c.fn, opts.Merge)
		rep.CandidatesEvaluated++
		if err != nil {
			continue
		}
		profit := res.Profit(opts.Target)
		if profit > bestProfit {
			if bestRes != nil {
				bestRes.Discard()
			}
			bestProfit = profit
			bestRes = res
		} else {
			res.Discard()
		}
	}
	if bestRes == nil {
		return
	}
	commit(m, bestRes, bestProfit, 0, opts, rep, worklist, pool, inPool, fps, removeFromPool)
}

// commit installs a profitable merge and maintains the exploration state:
// the consumed functions leave the pool, the merged function joins both the
// pool and the work list (the Fig. 7 feedback loop).
func commit(m *ir.Module, res *core.Result, profit, rank int, opts Options, rep *Report,
	worklist *[]*ir.Func, pool *[]*ir.Func, inPool map[*ir.Func]bool,
	fps map[*ir.Func]*fingerprint.Fingerprint, removeFromPool func(*ir.Func)) {

	tUp := time.Now()
	removed := res.Commit()
	rep.Phases.UpdateCalls += time.Since(tUp)

	rep.MergeOps++
	rep.FullyRemoved += removed
	if rank > 0 {
		rep.RankPositions = append(rep.RankPositions, rank)
	}
	rep.Records = append(rep.Records, MergeRecord{
		Merged: res.Merged.Name(),
		F1:     res.F1.Name(),
		F2:     res.F2.Name(),
		Rank:   rank,
		Profit: profit,
	})

	removeFromPool(res.F1)
	removeFromPool(res.F2)

	merged := res.Merged
	merged.Hotness = res.F1.Hotness + res.F2.Hotness
	if opts.Partition != nil {
		opts.Partition[merged] = opts.Partition[res.F1]
	}
	if eligible(merged, opts) {
		tFP := time.Now()
		fps[merged] = fingerprint.Compute(merged)
		rep.Phases.Fingerprint += time.Since(tFP)
		*pool = append(*pool, merged)
		inPool[merged] = true
		*worklist = append(*worklist, merged)
	}
}
