package explore

// Alignment-kernel selection and the two exploration-scoped caches feeding
// it: a per-function linearization+encoding cache (so the O(pool·t)
// speculative merge attempts stop re-linearizing and re-encoding the same
// functions) and a bounded alignment-result memo keyed by sequence content
// (so the workload's identical-clone populations collapse to one DP run per
// class).
//
// Determinism: both caches are semantically invisible. A cache hit returns
// exactly what recomputation would — the linearization cache stores the
// deterministic LinearizeOrder output and is invalidated whenever a commit
// mutates a function (the merged inputs and every caller whose call sites
// Commit rewrites), and the memo verifies full code equality on every hash
// hit before trusting it, so a collision degrades to a miss, never a wrong
// alignment. Which attempts hit is scheduling-dependent under Workers > 1,
// so the hit/miss counters may vary across worker counts — the committed
// merges, the report records and the final module never do
// (TestParallelDeterminism runs with both caches on).

import (
	"errors"
	"sync"
	"time"

	"fmsa/internal/align"
	"fmsa/internal/core"
	"fmsa/internal/encode"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/tti"
)

// KernelMode selects the alignment kernel driving each merge attempt.
type KernelMode int

const (
	// KernelCoded (the default) interns linearization entries into
	// equivalence-class codes once per function and runs the flat-slice
	// integer kernels (align.AlignCodes and friends) — no per-cell closure
	// calls, and alignment-memo eligibility. Bit-identical output to
	// KernelClosure.
	KernelCoded KernelMode = iota
	// KernelClosure drives the EqFunc closure kernels, the pre-encoding
	// baseline and the cross-check reference.
	KernelClosure
)

// String names the mode the way the -alignkernel flags spell it.
func (m KernelMode) String() string {
	if m == KernelClosure {
		return "closure"
	}
	return "coded"
}

// ParseKernelMode parses the -alignkernel flag values: "" or "coded", or
// "closure".
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "coded":
		return KernelCoded, nil
	case "closure":
		return KernelClosure, nil
	default:
		return KernelCoded, errors.New(`unknown align kernel "` + s + `" (want coded or closure)`)
	}
}

// DefaultAlignMemoCap bounds the alignment memo: at most this many cached
// results (a few hundred bytes each). A full memo stops inserting — older
// entries are not evicted, so hit patterns stay deterministic for a fixed
// schedule and results stay identical regardless.
const DefaultAlignMemoCap = 1 << 14

// setupKernel resolves the kernel mode and wires the per-run interning
// table. Called from setup before any merge attempt.
func (r *runner) setupKernel() {
	if r.opts.Kernel == KernelClosure {
		r.opts.Merge.AlignCoded = nil
		r.opts.Merge.AlignMemo = nil
	}
	if r.opts.Merge.Interner == nil {
		// Per-run table: its lifetime (and memory) matches the module's.
		r.opts.Merge.Interner = encode.NewInterner()
	}
}

// setupCaches builds the linearization cache for the initial pool (in
// parallel — each function is independent) and the alignment memo. Called
// from Run, not setup, so SnapshotRanking never pays for it; the encoding
// wall time lands in the Linearize phase via the shared Timings.
func (r *runner) setupCaches() {
	if !r.opts.NoSeqCache {
		start := time.Now()
		r.seqs = &seqCache{
			entries: make(map[*ir.Func]*encode.Encoded, len(r.pool)),
			encode:  r.encodeFunc,
			timings: r.opts.Merge.Timings,
		}
		encs := make([]*encode.Encoded, len(r.pool))
		parallelFor(len(r.pool), r.workers, func(i int) {
			encs[i] = r.encodeFunc(r.pool[i])
		})
		for i, f := range r.pool {
			r.seqs.entries[f] = encs[i]
		}
		r.opts.Merge.SeqProvider = r.seqs.lookup
		r.opts.Merge.Timings.AddLinearize(time.Since(start))
	}
	if !r.opts.NoAlignMemo && r.opts.Merge.AlignCoded != nil {
		if r.seed != nil && r.seed.memo != nil {
			// Warm run: the session's memo survives across submissions.
			// Safe to share — entries verify full code equality on every
			// hit, so a stale entry can only miss, never mislead.
			r.opts.Merge.AlignMemo = r.seed.memo
		} else {
			r.opts.Merge.AlignMemo = newAlignMemo(r.opts.AlignMemoCap)
		}
	}
	// The cost memo serves ProfitWithStatsMemo even when bounding is off
	// (Options.NoBound only disables the pre-codegen prune); invalidation
	// shares the linearization cache's stale set — a rewritten call site
	// changes a caller's size just like it changes its sequence.
	r.costs = tti.NewCostMemo()
}

// encodeFunc linearizes (and, on the coded path, encodes) one function for
// the cache.
func (r *runner) encodeFunc(f *ir.Func) *encode.Encoded {
	seq := linearize.LinearizeOrder(f, r.opts.Merge.Order)
	if r.opts.Merge.AlignCoded == nil {
		return &encode.Encoded{Seq: seq}
	}
	return r.opts.Merge.Interner.Encode(seq)
}

// staleAfterCommit lists every function whose cached linearization the
// pending commit will invalidate: the two merged inputs, plus every caller
// function — Commit rewrites their call instructions to target the merged
// function, which changes their linearized sequences. Must run BEFORE
// res.Commit(): committing drains the originals' use lists.
func staleAfterCommit(res *core.Result) []*ir.Func {
	seen := map[*ir.Func]bool{res.F1: true, res.F2: true}
	out := []*ir.Func{res.F1, res.F2}
	for _, fn := range []*ir.Func{res.F1, res.F2} {
		for _, call := range fn.Callers() {
			blk := call.Parent()
			if blk == nil {
				continue
			}
			if p := blk.Parent(); p != nil && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// refreshSeqs applies a commit's invalidations: stale entries are dropped and
// their pooled sequences recycled. Re-encoding is deliberately lazy — the
// next lookup of a dropped function recomputes on miss — because an eager
// refresh is quadratic in practice: a chain-merged function that calls much
// of the pool is a caller invalidated by nearly every subsequent commit, and
// re-encoding its thousands of entries each time costs far more than the
// alignment work the cache exists to feed. Runs serially between evaluation
// waves, so dropping never recycles a sequence an in-flight attempt reads.
func (r *runner) refreshSeqs(stale []*ir.Func) {
	for _, f := range stale {
		if r.seqs != nil {
			if old := r.seqs.drop(f); old != nil {
				linearize.Recycle(old.Seq)
			}
		}
		r.costs.Drop(f) // nil-safe
	}
}

// seqCache maps live pool functions to their cached linearization+encoding.
// Lookups run concurrently inside evaluation waves and compute on miss; all
// drops happen serially between waves (refreshSeqs), so a cached encoding is
// never recycled while a wave may still read it.
type seqCache struct {
	mu      sync.RWMutex
	entries map[*ir.Func]*encode.Encoded
	encode  func(*ir.Func) *encode.Encoded
	timings *core.Timings
}

// lookup is the core.Options.SeqProvider hook. It never returns nil: a miss
// computes the encoding, installs it and returns it. The computation runs
// outside the lock — linearization+encoding is pure and deterministic, so
// when two workers race on the same function the loser's duplicate is
// recycled and the winner's entry served; the result is identical either
// way. The hit/miss counters live here rather than in core so a computed
// miss is counted exactly once.
func (c *seqCache) lookup(f *ir.Func) *encode.Encoded {
	c.mu.RLock()
	e := c.entries[f]
	c.mu.RUnlock()
	c.timings.CountSeqCache(e != nil)
	if e != nil {
		return e
	}
	enc := c.encode(f)
	c.mu.Lock()
	if won, ok := c.entries[f]; ok {
		c.mu.Unlock()
		linearize.Recycle(enc.Seq)
		return won
	}
	c.entries[f] = enc
	c.mu.Unlock()
	return enc
}

// drop removes and returns f's entry (nil when absent).
func (c *seqCache) drop(f *ir.Func) *encode.Encoded {
	c.mu.Lock()
	e := c.entries[f]
	delete(c.entries, f)
	c.mu.Unlock()
	return e
}

// alignMemo is the bounded alignment-result memo (core.AlignMemo). Keys are
// the content hashes plus lengths of the two code sequences; entries keep
// their own copies of the codes so hash hits are verified by full equality —
// a collision is a miss, never a wrong result — and so recycling a cache
// entry's buffers cannot corrupt the memo.
type alignMemo struct {
	mu  sync.Mutex
	cap int
	m   map[memoKey]memoEntry
}

type memoKey struct {
	ha, hb uint64
	la, lb int
}

type memoEntry struct {
	ca, cb []uint32
	steps  []align.Step
}

func newAlignMemo(capEntries int) *alignMemo {
	if capEntries <= 0 {
		capEntries = DefaultAlignMemoCap
	}
	return &alignMemo{cap: capEntries, m: make(map[memoKey]memoEntry)}
}

// Lookup implements core.AlignMemo. The returned steps are shared read-only.
func (am *alignMemo) Lookup(a, b *encode.Encoded) ([]align.Step, bool) {
	k := memoKey{ha: a.Hash, hb: b.Hash, la: len(a.Codes), lb: len(b.Codes)}
	am.mu.Lock()
	e, ok := am.m[k]
	am.mu.Unlock()
	if !ok || !equalCodes(e.ca, a.Codes) || !equalCodes(e.cb, b.Codes) {
		return nil, false
	}
	return e.steps, true
}

// Store implements core.AlignMemo: insert-if-absent under the capacity
// bound. Concurrent attempts may race to insert the same key; the first
// writer wins, and since every hit is verified against the stored codes,
// whichever entry landed serves only the pairs it is actually correct for.
func (am *alignMemo) Store(a, b *encode.Encoded, steps []align.Step) {
	k := memoKey{ha: a.Hash, hb: b.Hash, la: len(a.Codes), lb: len(b.Codes)}
	am.mu.Lock()
	defer am.mu.Unlock()
	if len(am.m) >= am.cap {
		return // bounded: a full memo stops inserting, results unaffected
	}
	if _, ok := am.m[k]; ok {
		return
	}
	am.m[k] = memoEntry{
		ca:    append([]uint32(nil), a.Codes...),
		cb:    append([]uint32(nil), b.Codes...),
		steps: steps,
	}
}

func equalCodes(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
