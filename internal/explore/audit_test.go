package explore

import (
	"testing"

	"fmsa/internal/analysis"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func TestParseAuditMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AuditMode
		err  bool
	}{
		{"", AuditOff, false},
		{"off", AuditOff, false},
		{"committed", AuditCommitted, false},
		{"deep", AuditDeep, false},
		{"bogus", AuditOff, true},
	} {
		got, err := ParseAuditMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseAuditMode(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
		if err == nil && got.String() != "" && got != AuditOff {
			if back, _ := ParseAuditMode(got.String()); back != got {
				t.Errorf("AuditMode round-trip failed for %v", got)
			}
		}
	}
}

// auditProfiles returns the corpus the clean-audit sweep covers: everything
// in full runs, a fast subset under -short.
func auditProfiles() []workload.Profile {
	var ps []workload.Profile
	ps = append(ps, workload.UnscaledSmall()...)
	ps = append(ps, workload.SPECLike()...)
	ps = append(ps, workload.MiBenchLike()...)
	return ps
}

// TestAuditCleanCorpus is the auditor's soundness gate: committed-mode
// exploration across the whole workload corpus must report zero diagnostics
// — any finding is either a merger bug or an auditor false positive, and
// both block. scripts/check.sh runs this sweep explicitly.
func TestAuditCleanCorpus(t *testing.T) {
	profiles := auditProfiles()
	if testing.Short() {
		profiles = profiles[:4]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := workload.Build(p)
			opts := DefaultOptions()
			opts.Threshold = 2
			opts.Audit = AuditCommitted
			rep := Run(m, opts)
			if err := ir.VerifyModule(m); err != nil {
				t.Fatalf("post-verify: %v", err)
			}
			if rep.MergeOps > 0 && rep.AuditedMerges == 0 {
				t.Fatalf("%d merges committed but none audited", rep.MergeOps)
			}
			if len(rep.AuditDiags) != 0 {
				t.Errorf("audit flagged %d/%d merges:\n%s", rep.AuditFlagged,
					rep.AuditedMerges, analysis.FormatDiagnostics(rep.AuditDiags))
			}
		})
	}
}

// TestAuditDeepMatchesCommitted: on a clean corpus sample deep mode must
// never escalate (nothing is flagged), so its merge sequence equals
// committed mode's.
func TestAuditDeepMatchesCommitted(t *testing.T) {
	build := func(mode AuditMode) *Report {
		m := workload.Build(demoProfile(7))
		opts := DefaultOptions()
		opts.Threshold = 5
		opts.Audit = mode
		return Run(m, opts)
	}
	com := build(AuditCommitted)
	deep := build(AuditDeep)
	if com.MergeOps != deep.MergeOps || deep.AuditEscalated != 0 || deep.AuditRejected != 0 {
		t.Errorf("deep mode diverged on a clean corpus: ops %d vs %d, escalated %d, rejected %d",
			com.MergeOps, deep.MergeOps, deep.AuditEscalated, deep.AuditRejected)
	}
}
