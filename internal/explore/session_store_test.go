package explore

import (
	"path/filepath"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/simdb"
	"fmsa/internal/workload"
)

func openTestStore(t *testing.T, path string) *simdb.Store {
	t.Helper()
	st, err := simdb.Open(path, "sess", simdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSessionStoreColdIdentical: a store-backed session — both one that
// populates an empty store and one that restarts onto a warm store — must
// produce bit-identical merge outcomes to a plain storeless run, for every
// worker count and both ranking modes. This is the persistent analogue of
// TestSessionWarmColdIdentical: the store replays fingerprints and
// signatures across process boundaries, and nothing downstream may notice.
func TestSessionStoreColdIdentical(t *testing.T) {
	base := sessionSpecs(60)
	delta := append([]workload.FuncSpec(nil), base...)
	delta[7].ConstSalt += 3
	delta[22].Seed += 900
	delta = append(delta, workload.FuncSpec{
		Name: "fnew", Seed: 104, Scalar: ir.I64(), NumParams: 2,
		Regions: 2, OpsPerBlock: 6, Internal: true,
	})

	for _, ranking := range []RankingMode{RankExact, RankLSH} {
		path := filepath.Join(t.TempDir(), "sess.fmdb")

		// Populate the store once from the base corpus.
		seedSess, err := NewSession(SessionConfig{
			Explore: sessionOpts(1, ranking), Store: openTestStore(t, path),
		})
		if err != nil {
			t.Fatal(err)
		}
		repSeed, dSeed, err := seedSess.Submit(buildFromSpecs(base))
		if err != nil {
			t.Fatal(err)
		}
		if dSeed.StoreHits != 0 || dSeed.StoreMisses != dSeed.Funcs {
			t.Fatalf("ranking=%v: empty-store submit hits=%d misses=%d funcs=%d",
				ranking, dSeed.StoreHits, dSeed.StoreMisses, dSeed.Funcs)
		}

		// Reference: plain storeless cold runs of base and delta.
		plainBase, err := NewSession(SessionConfig{Explore: sessionOpts(1, ranking)})
		if err != nil {
			t.Fatal(err)
		}
		repPlain, _, err := plainBase.Submit(buildFromSpecs(base))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := outcomeOf(repSeed), outcomeOf(repPlain); !sameOutcome(got, want) {
			t.Fatalf("ranking=%v: store-populating run diverged from plain run", ranking)
		}

		var wantOutcome mergeOutcome
		var wantModule string
		for i, workers := range []int{1, 2, 8} {
			opts := sessionOpts(workers, ranking)

			plain, err := NewSession(SessionConfig{Explore: opts})
			if err != nil {
				t.Fatal(err)
			}
			mPlain := buildFromSpecs(delta)
			repWant, _, err := plain.Submit(mPlain)
			if err != nil {
				t.Fatal(err)
			}

			// Restart: fresh session, same on-disk store — zero in-memory
			// warm state, everything rehydrates from the segment.
			warm, err := NewSession(SessionConfig{
				Explore: opts, Store: openTestStore(t, path),
			})
			if err != nil {
				t.Fatal(err)
			}
			mGot := buildFromSpecs(delta)
			repGot, dGot, err := warm.Submit(mGot)
			if err != nil {
				t.Fatal(err)
			}
			if dGot.StoreHits == 0 {
				t.Fatalf("ranking=%v workers=%d: restart onto warm store had no hits", ranking, workers)
			}
			// The three edited/added functions are the only possible misses.
			if dGot.StoreMisses > 3 {
				t.Fatalf("ranking=%v workers=%d: %d store misses, want ≤3", ranking, workers, dGot.StoreMisses)
			}
			if got, want := outcomeOf(repGot), outcomeOf(repWant); !sameOutcome(got, want) {
				t.Fatalf("ranking=%v workers=%d: store-backed outcome diverged:\ngot  %+v\nwant %+v",
					ranking, workers, got, want)
			}
			if gotM, wantM := printModule(t, mGot), printModule(t, mPlain); gotM != wantM {
				t.Fatalf("ranking=%v workers=%d: merged modules differ", ranking, workers)
			}
			if i == 0 {
				wantOutcome = outcomeOf(repGot)
				wantModule = printModule(t, mGot)
				continue
			}
			if got := outcomeOf(repGot); !sameOutcome(got, wantOutcome) {
				t.Fatalf("ranking=%v: workers=%d outcome differs from workers=1", ranking, workers)
			}
			if got := printModule(t, mGot); got != wantModule {
				t.Fatalf("ranking=%v: workers=%d module differs from workers=1", ranking, workers)
			}
		}
	}
}

// TestSessionSharedStoreAcrossSessions: two sessions sharing one live store
// handle — the fmsa-serve arrangement — stay bit-identical to storeless
// runs, and the second session reuses the first one's flushed state.
func TestSessionSharedStoreAcrossSessions(t *testing.T) {
	specs := sessionSpecs(40)
	opts := sessionOpts(2, RankLSH)
	st := openTestStore(t, filepath.Join(t.TempDir(), "shared.fmdb"))

	first, err := NewSession(SessionConfig{Explore: opts, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := first.Submit(buildFromSpecs(specs)); err != nil {
		t.Fatal(err)
	}

	second, err := NewSession(SessionConfig{Explore: opts, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	m2 := buildFromSpecs(specs)
	rep2, d2, err := second.Submit(m2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.StoreHits != d2.Funcs || d2.StoreMisses != 0 {
		t.Fatalf("second session: hits=%d misses=%d funcs=%d, want all hits",
			d2.StoreHits, d2.StoreMisses, d2.Funcs)
	}

	plain, err := NewSession(SessionConfig{Explore: opts})
	if err != nil {
		t.Fatal(err)
	}
	mPlain := buildFromSpecs(specs)
	repPlain, _, err := plain.Submit(mPlain)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(outcomeOf(rep2), outcomeOf(repPlain)) {
		t.Fatal("shared-store session diverged from plain run")
	}
	if printModule(t, m2) != printModule(t, mPlain) {
		t.Fatal("shared-store merged module differs from plain run")
	}
}

// sameOutcome compares identity-relevant report slices.
func sameOutcome(a, b mergeOutcome) bool {
	if a.MergeOps != b.MergeOps || a.FullyRemoved != b.FullyRemoved ||
		a.CandidatesEvaluated != b.CandidatesEvaluated || a.SizeAfter != b.SizeAfter {
		return false
	}
	if len(a.RankPositions) != len(b.RankPositions) || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.RankPositions {
		if a.RankPositions[i] != b.RankPositions[i] {
			return false
		}
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			return false
		}
	}
	return true
}
