package interp

import (
	"fmt"
	"math"

	"fmsa/internal/ir"
)

// truncWord keeps the low bits of w.
func truncWord(w Word, bits int) Word {
	if bits >= 64 {
		return w
	}
	return w & (1<<uint(bits) - 1)
}

// sext sign-extends the low bits of w to int64.
func sext(w Word, bits int) int64 {
	if bits >= 64 {
		return int64(w)
	}
	shift := uint(64 - bits)
	return int64(w<<shift) >> shift
}

// asF64 decodes a float operand of the given type.
func asF64(w Word, t *ir.Type) float64 {
	if t.Bits == 32 {
		return float64(math.Float32frombits(uint32(w)))
	}
	return math.Float64frombits(w)
}

// fromF64 encodes v as a float of the given type.
func fromF64(v float64, t *ir.Type) Word {
	if t.Bits == 32 {
		return Word(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// evalPure executes value-producing, non-control-flow instructions.
func (m *Machine) evalPure(in *ir.Inst, f *ir.Func, pvals []Word, frame map[*ir.Inst]Word) (Word, error) {
	get := func(i int) (Word, error) { return m.eval(in.Operand(i), f, pvals, frame) }

	switch {
	case in.Op.IsBinary():
		a, err := get(0)
		if err != nil {
			return 0, err
		}
		b, err := get(1)
		if err != nil {
			return 0, err
		}
		return m.evalBinary(in, a, b)
	case in.Op.IsCast():
		a, err := get(0)
		if err != nil {
			return 0, err
		}
		return evalCast(in, a)
	}

	switch in.Op {
	case ir.OpAlloca:
		return m.Alloc(uint64(in.Alloc.SizeBytes()))

	case ir.OpLoad:
		addr, err := get(0)
		if err != nil {
			return 0, err
		}
		return m.load(addr, in.Type().SizeBytes())

	case ir.OpStore:
		v, err := get(0)
		if err != nil {
			return 0, err
		}
		addr, err := get(1)
		if err != nil {
			return 0, err
		}
		return 0, m.store(addr, in.Operand(0).Type().SizeBytes(), v)

	case ir.OpGEP:
		addr, err := get(0)
		if err != nil {
			return 0, err
		}
		cur := in.Operand(0).Type().Elem
		for i := 1; i < in.NumOperands(); i++ {
			idxOp := in.Operand(i)
			idx, err := get(i)
			if err != nil {
				return 0, err
			}
			sidx := sext(idx, idxOp.Type().Bits)
			if i == 1 {
				addr = Word(int64(addr) + sidx*int64(cur.SizeBytes()))
				continue
			}
			switch cur.Kind {
			case ir.ArrayKind:
				addr = Word(int64(addr) + sidx*int64(cur.Elem.SizeBytes()))
				cur = cur.Elem
			case ir.StructKind:
				addr += Word(cur.FieldOffset(int(sidx)))
				cur = cur.Fields[sidx]
			default:
				return 0, fmt.Errorf("interp: gep into non-aggregate %s", cur)
			}
		}
		return addr, nil

	case ir.OpICmp:
		a, err := get(0)
		if err != nil {
			return 0, err
		}
		b, err := get(1)
		if err != nil {
			return 0, err
		}
		ty := in.Operand(0).Type()
		bits := 64
		if ty.IsInt() {
			bits = ty.Bits
		}
		return evalICmp(in.Pred, a, b, bits)

	case ir.OpFCmp:
		a, err := get(0)
		if err != nil {
			return 0, err
		}
		b, err := get(1)
		if err != nil {
			return 0, err
		}
		ty := in.Operand(0).Type()
		return evalFCmp(in.Pred, asF64(a, ty), asF64(b, ty))

	case ir.OpSelect:
		c, err := get(0)
		if err != nil {
			return 0, err
		}
		if c&1 != 0 {
			return get(1)
		}
		return get(2)

	default:
		return 0, fmt.Errorf("interp: unsupported opcode %s", in.Op)
	}
}

func (m *Machine) evalBinary(in *ir.Inst, a, b Word) (Word, error) {
	ty := in.Type()
	if ty.IsFloat() {
		x, y := asF64(a, ty), asF64(b, ty)
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = x + y
		case ir.OpFSub:
			r = x - y
		case ir.OpFMul:
			r = x * y
		case ir.OpFDiv:
			r = x / y
		case ir.OpFRem:
			r = math.Mod(x, y)
		default:
			return 0, fmt.Errorf("interp: bad float op %s", in.Op)
		}
		return fromF64(r, ty), nil
	}

	bits := ty.Bits
	ua, ub := truncWord(a, bits), truncWord(b, bits)
	sa, sb := sext(a, bits), sext(b, bits)
	shiftMask := Word(bits - 1)
	var r Word
	switch in.Op {
	case ir.OpAdd:
		r = ua + ub
	case ir.OpSub:
		r = ua - ub
	case ir.OpMul:
		r = ua * ub
	case ir.OpSDiv:
		if sb == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		r = Word(sa / sb)
	case ir.OpUDiv:
		if ub == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		r = ua / ub
	case ir.OpSRem:
		if sb == 0 {
			return 0, fmt.Errorf("interp: remainder by zero")
		}
		r = Word(sa % sb)
	case ir.OpURem:
		if ub == 0 {
			return 0, fmt.Errorf("interp: remainder by zero")
		}
		r = ua % ub
	case ir.OpShl:
		r = ua << (ub & shiftMask)
	case ir.OpLShr:
		r = ua >> (ub & shiftMask)
	case ir.OpAShr:
		r = Word(sa >> (ub & shiftMask))
	case ir.OpAnd:
		r = ua & ub
	case ir.OpOr:
		r = ua | ub
	case ir.OpXor:
		r = ua ^ ub
	default:
		return 0, fmt.Errorf("interp: bad int op %s", in.Op)
	}
	return truncWord(r, bits), nil
}

func evalCast(in *ir.Inst, a Word) (Word, error) {
	from := in.Operand(0).Type()
	to := in.Type()
	switch in.Op {
	case ir.OpTrunc:
		return truncWord(a, to.Bits), nil
	case ir.OpZExt:
		return truncWord(a, from.Bits), nil
	case ir.OpSExt:
		return truncWord(Word(sext(a, from.Bits)), to.Bits), nil
	case ir.OpFPTrunc, ir.OpFPExt:
		return fromF64(asF64(a, from), to), nil
	case ir.OpFPToSI:
		return truncWord(Word(int64(asF64(a, from))), to.Bits), nil
	case ir.OpFPToUI:
		return truncWord(Word(uint64(asF64(a, from))), to.Bits), nil
	case ir.OpSIToFP:
		return fromF64(float64(sext(a, from.Bits)), to), nil
	case ir.OpUIToFP:
		return fromF64(float64(truncWord(a, from.Bits)), to), nil
	case ir.OpPtrToInt:
		return truncWord(a, to.Bits), nil
	case ir.OpIntToPtr:
		return truncWord(a, from.Bits), nil
	case ir.OpBitCast:
		return a, nil
	default:
		return 0, fmt.Errorf("interp: bad cast %s", in.Op)
	}
}

func evalICmp(pred ir.CmpPred, a, b Word, bits int) (Word, error) {
	ua, ub := truncWord(a, bits), truncWord(b, bits)
	sa, sb := sext(a, bits), sext(b, bits)
	var r bool
	switch pred {
	case ir.PredEQ:
		r = ua == ub
	case ir.PredNE:
		r = ua != ub
	case ir.PredSGT:
		r = sa > sb
	case ir.PredSGE:
		r = sa >= sb
	case ir.PredSLT:
		r = sa < sb
	case ir.PredSLE:
		r = sa <= sb
	case ir.PredUGT:
		r = ua > ub
	case ir.PredUGE:
		r = ua >= ub
	case ir.PredULT:
		r = ua < ub
	case ir.PredULE:
		r = ua <= ub
	default:
		return 0, fmt.Errorf("interp: bad icmp predicate %s", pred)
	}
	if r {
		return 1, nil
	}
	return 0, nil
}

func evalFCmp(pred ir.CmpPred, a, b float64) (Word, error) {
	var r bool
	switch pred {
	case ir.PredOEQ:
		r = a == b
	case ir.PredONE:
		r = a != b && !math.IsNaN(a) && !math.IsNaN(b)
	case ir.PredOGT:
		r = a > b
	case ir.PredOGE:
		r = a >= b
	case ir.PredOLT:
		r = a < b
	case ir.PredOLE:
		r = a <= b
	default:
		return 0, fmt.Errorf("interp: bad fcmp predicate %s", pred)
	}
	if r {
		return 1, nil
	}
	return 0, nil
}

// weight returns the latency weight of an instruction, the unit of the
// Fig. 14 runtime proxy.
func weight(in *ir.Inst) uint64 {
	switch in.Op {
	case ir.OpCall, ir.OpInvoke:
		return 3
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem, ir.OpFDiv, ir.OpFRem:
		return 8
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul:
		return 2
	case ir.OpLoad, ir.OpStore:
		return 2
	case ir.OpAlloca, ir.OpBitCast, ir.OpPtrToInt, ir.OpIntToPtr:
		return 0
	default:
		return 1
	}
}

// RegisterDefaultIntrinsics installs the small runtime used by examples and
// workloads: an allocator, a printer sink, math helpers and an
// exception-throwing hook.
func RegisterDefaultIntrinsics(m *Machine) {
	m.Register("mymalloc", func(mc *Machine, args []Word) (Word, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("mymalloc: want 1 arg")
		}
		return mc.Alloc(args[0])
	})
	m.Register("malloc", func(mc *Machine, args []Word) (Word, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("malloc: want 1 arg")
		}
		return mc.Alloc(args[0])
	})
	m.Register("free", func(mc *Machine, args []Word) (Word, error) {
		return 0, nil // bump allocator: free is a no-op
	})
	m.Register("sink_i64", func(mc *Machine, args []Word) (Word, error) {
		return 0, nil
	})
	m.Register("throw", func(mc *Machine, args []Word) (Word, error) {
		return 0, ErrUnwind
	})
	m.Register("abs_f64", func(mc *Machine, args []Word) (Word, error) {
		return math.Float64bits(math.Abs(math.Float64frombits(args[0]))), nil
	})
	m.Register("sqrt_f64", func(mc *Machine, args []Word) (Word, error) {
		return math.Float64bits(math.Sqrt(math.Float64frombits(args[0]))), nil
	})
}

// F64 converts a float64 to its Word representation (for test inputs).
func F64(v float64) Word { return math.Float64bits(v) }

// F32 converts a float32 to its Word representation.
func F32(v float32) Word { return Word(math.Float32bits(v)) }

// ToF64 decodes a Word as float64.
func ToF64(w Word) float64 { return math.Float64frombits(w) }

// ToF32 decodes a Word as float32.
func ToF32(w Word) float32 { return math.Float32frombits(uint32(w)) }
