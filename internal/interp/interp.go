// Package interp executes IR modules. It serves two roles in the
// reproduction: a semantic safety net (merged functions are differentially
// tested against the originals on concrete inputs) and the runtime proxy for
// the paper's performance experiments (Fig. 14) — the dynamic, weighted
// instruction count exposes exactly the overhead merging can add (extra
// selects, branches and thunk calls) without the noise of wall-clock timing.
package interp

import (
	"errors"
	"fmt"
	"math"

	"fmsa/internal/ir"
)

// Word is a runtime value: the raw bits of a scalar, zero-extended to 64
// bits. Floats are stored as their IEEE bit patterns (f32 in the low 32
// bits); pointers are addresses in the machine's flat memory.
type Word = uint64

// Intrinsic implements an external function declaration in Go.
type Intrinsic func(m *Machine, args []Word) (Word, error)

// ErrUnwind signals exception unwinding from an intrinsic or resume; invoke
// instructions catch it and transfer to their landing block.
var ErrUnwind = errors.New("interp: unwinding")

// ErrLimit is returned when execution exceeds the step budget.
var ErrLimit = errors.New("interp: step limit exceeded")

// Stats accumulates dynamic execution counts.
type Stats struct {
	// Executed counts retired instructions.
	Executed uint64
	// Weighted accumulates latency-weighted instruction costs, the
	// runtime proxy for Fig. 14.
	Weighted uint64
	// Calls counts function invocations (including thunk hops).
	Calls uint64
}

// Machine executes functions of one module against a flat memory.
type Machine struct {
	mod        *ir.Module
	mem        []byte
	brk        uint64 // bump-allocation cursor
	globals    map[*ir.Global]Word
	funcAddrs  map[*ir.Func]Word
	addrFuncs  map[Word]*ir.Func
	intrinsics map[string]Intrinsic

	// MaxSteps bounds execution; 0 means the default (64M).
	MaxSteps uint64
	// Profile enables per-block execution counting.
	Profile bool
	// BlockCounts holds per-block execution counts when Profile is set.
	BlockCounts map[*ir.Block]uint64

	stats Stats
}

const (
	memLimit    = 1 << 28 // 256 MiB
	defaultStep = 1 << 26
	funcAddrTag = uint64(1) << 62
)

// NewMachine creates a machine for m with globals materialized in memory.
func NewMachine(mod *ir.Module) *Machine {
	mc := &Machine{
		mod:        mod,
		mem:        make([]byte, 4096),
		brk:        16, // keep null and its surroundings unmapped
		globals:    map[*ir.Global]Word{},
		funcAddrs:  map[*ir.Func]Word{},
		addrFuncs:  map[Word]*ir.Func{},
		intrinsics: map[string]Intrinsic{},
	}
	for _, g := range mod.Globals {
		addr, err := mc.Alloc(uint64(g.ValueType().SizeBytes()))
		if err != nil {
			panic(err)
		}
		copy(mc.mem[addr:], g.Init)
		mc.globals[g] = addr
	}
	for i, f := range mod.Funcs {
		addr := funcAddrTag | uint64(i+1)
		mc.funcAddrs[f] = addr
		mc.addrFuncs[addr] = f
	}
	RegisterDefaultIntrinsics(mc)
	return mc
}

// Register installs an intrinsic implementation for the declaration name.
func (m *Machine) Register(name string, fn Intrinsic) { m.intrinsics[name] = fn }

// Stats returns the dynamic counters accumulated so far.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the dynamic counters and block profile.
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	m.BlockCounts = nil
}

// Alloc reserves n bytes of zeroed memory and returns its address.
func (m *Machine) Alloc(n uint64) (Word, error) {
	if n == 0 {
		n = 1
	}
	addr := m.brk
	end := addr + n
	if end > memLimit {
		return 0, fmt.Errorf("interp: out of memory (%d bytes requested)", n)
	}
	for uint64(len(m.mem)) < end {
		m.mem = append(m.mem, make([]byte, len(m.mem))...)
	}
	m.brk = (end + 7) &^ 7
	return addr, nil
}

// ReadMem copies n bytes at addr.
func (m *Machine) ReadMem(addr, n uint64) ([]byte, error) {
	if addr < 16 || addr+n > m.brk {
		return nil, fmt.Errorf("interp: invalid read of %d bytes at %#x", n, addr)
	}
	out := make([]byte, n)
	copy(out, m.mem[addr:addr+n])
	return out, nil
}

// WriteMem copies data into memory at addr.
func (m *Machine) WriteMem(addr uint64, data []byte) error {
	if addr < 16 || addr+uint64(len(data)) > m.brk {
		return fmt.Errorf("interp: invalid write of %d bytes at %#x", len(data), addr)
	}
	copy(m.mem[addr:], data)
	return nil
}

// GlobalAddr returns the address of g.
func (m *Machine) GlobalAddr(g *ir.Global) Word { return m.globals[g] }

func (m *Machine) load(addr uint64, size int) (Word, error) {
	if addr < 16 || addr+uint64(size) > m.brk {
		return 0, fmt.Errorf("interp: invalid load of %d bytes at %#x", size, addr)
	}
	var v Word
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | Word(m.mem[addr+uint64(i)])
	}
	return v, nil
}

func (m *Machine) store(addr uint64, size int, v Word) error {
	if addr < 16 || addr+uint64(size) > m.brk {
		return fmt.Errorf("interp: invalid store of %d bytes at %#x", size, addr)
	}
	for i := 0; i < size; i++ {
		m.mem[addr+uint64(i)] = byte(v)
		v >>= 8
	}
	return nil
}

// Run calls the named function with the given arguments and returns its
// result bits.
func (m *Machine) Run(name string, args ...Word) (Word, error) {
	f := m.mod.FuncByName(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function @%s", name)
	}
	return m.CallFunc(f, args)
}

// CallFunc invokes f with args.
func (m *Machine) CallFunc(f *ir.Func, args []Word) (Word, error) {
	if f.IsDecl() {
		intr, ok := m.intrinsics[f.Name()]
		if !ok {
			return 0, fmt.Errorf("interp: call of unregistered external @%s", f.Name())
		}
		m.stats.Calls++
		return intr(m, args)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: @%s expects %d args, got %d", f.Name(), len(f.Params), len(args))
	}
	m.stats.Calls++
	frame := make(map[*ir.Inst]Word, f.NumInsts())
	pvals := make([]Word, len(args))
	copy(pvals, args)

	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultStep
	}

	cur := f.Entry()
	var prev *ir.Block
	for {
		if m.Profile {
			if m.BlockCounts == nil {
				m.BlockCounts = map[*ir.Block]uint64{}
			}
			m.BlockCounts[cur]++
		}
		var nxt *ir.Block
		unwinding := false
		for _, in := range cur.Insts {
			m.stats.Executed++
			m.stats.Weighted += weight(in)
			if m.stats.Executed > maxSteps {
				return 0, ErrLimit
			}
			switch in.Op {
			case ir.OpRet:
				if in.NumOperands() == 0 {
					return 0, nil
				}
				return m.eval(in.Operand(0), f, pvals, frame)

			case ir.OpBr:
				if in.NumOperands() == 1 {
					nxt = in.Operand(0).(*ir.Block)
				} else {
					c, err := m.eval(in.Operand(0), f, pvals, frame)
					if err != nil {
						return 0, err
					}
					if c&1 != 0 {
						nxt = in.Operand(1).(*ir.Block)
					} else {
						nxt = in.Operand(2).(*ir.Block)
					}
				}

			case ir.OpSwitch:
				c, err := m.eval(in.Operand(0), f, pvals, frame)
				if err != nil {
					return 0, err
				}
				nxt = in.Operand(1).(*ir.Block)
				condTy := in.Operand(0).Type()
				for i := 2; i < in.NumOperands(); i += 2 {
					cv := in.Operand(i).(*ir.ConstInt)
					if truncWord(cv.Uint(), condTy.Bits) == truncWord(c, condTy.Bits) {
						nxt = in.Operand(i + 1).(*ir.Block)
						break
					}
				}

			case ir.OpUnreachable:
				return 0, fmt.Errorf("interp: reached unreachable in @%s", f.Name())

			case ir.OpResume:
				return 0, ErrUnwind

			case ir.OpCall, ir.OpInvoke:
				callee, err := m.resolveCallee(in.Callee(), f, pvals, frame)
				if err != nil {
					return 0, err
				}
				cargs := make([]Word, 0, len(in.CallArgs()))
				for _, a := range in.CallArgs() {
					av, err := m.eval(a, f, pvals, frame)
					if err != nil {
						return 0, err
					}
					cargs = append(cargs, av)
				}
				rv, err := m.CallFunc(callee, cargs)
				if err != nil {
					if in.Op == ir.OpInvoke && errors.Is(err, ErrUnwind) {
						nxt = in.InvokeUnwind()
						unwinding = true
						break
					}
					return 0, err
				}
				frame[in] = rv
				if in.Op == ir.OpInvoke {
					nxt = in.InvokeNormal()
				}

			case ir.OpPhi:
				var got bool
				for i := 0; i < in.NumPhiIncoming(); i++ {
					v, pb := in.PhiIncoming(i)
					if pb == prev {
						pv, err := m.eval(v, f, pvals, frame)
						if err != nil {
							return 0, err
						}
						frame[in] = pv
						got = true
						break
					}
				}
				if !got {
					return 0, fmt.Errorf("interp: phi without incoming for predecessor in @%s", f.Name())
				}

			case ir.OpLandingPad:
				frame[in] = 0 // opaque token

			default:
				v, err := m.evalPure(in, f, pvals, frame)
				if err != nil {
					return 0, err
				}
				frame[in] = v
			}
			if nxt != nil || unwinding {
				break
			}
		}
		if nxt == nil {
			return 0, fmt.Errorf("interp: block %%%s fell through in @%s", cur.Name(), f.Name())
		}
		prev, cur = cur, nxt
	}
}

func (m *Machine) resolveCallee(v ir.Value, f *ir.Func, pvals []Word, frame map[*ir.Inst]Word) (*ir.Func, error) {
	if fn, ok := v.(*ir.Func); ok {
		return fn, nil
	}
	w, err := m.eval(v, f, pvals, frame)
	if err != nil {
		return nil, err
	}
	fn, ok := m.addrFuncs[w]
	if !ok {
		return nil, fmt.Errorf("interp: indirect call to invalid address %#x", w)
	}
	return fn, nil
}

// eval resolves an operand to its runtime bits.
func (m *Machine) eval(v ir.Value, f *ir.Func, pvals []Word, frame map[*ir.Inst]Word) (Word, error) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return x.Uint(), nil
	case *ir.ConstFloat:
		if x.Type().Bits == 32 {
			return Word(math.Float32bits(float32(x.V))), nil
		}
		return math.Float64bits(x.V), nil
	case *ir.ConstNull:
		return 0, nil
	case *ir.Undef:
		return 0, nil
	case *ir.Param:
		if x.Parent() != f {
			return 0, fmt.Errorf("interp: foreign parameter %s", x.Ident())
		}
		return pvals[x.Index], nil
	case *ir.Inst:
		w, ok := frame[x]
		if !ok {
			// A use is always dominated by its definition (the verifier
			// checks this), so a missing frame entry is an executor bug.
			return 0, fmt.Errorf("interp: use of unevaluated %s %s in @%s", x.Op, x.Ident(), f.Name())
		}
		return w, nil
	case *ir.Global:
		return m.globals[x], nil
	case *ir.Func:
		return m.funcAddrs[x], nil
	default:
		return 0, fmt.Errorf("interp: cannot evaluate %T", v)
	}
}
