package interp

import (
	"errors"
	"math"
	"testing"

	"fmsa/internal/ir"
)

func run(t *testing.T, src, fn string, args ...Word) Word {
	t.Helper()
	m := ir.MustParseModule("t", src)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	mc := NewMachine(m)
	v, err := mc.Run(fn, args...)
	if err != nil {
		t.Fatalf("run @%s: %v", fn, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	src := `
define i32 @addmul(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  %m = mul i32 %s, 3
  ret i32 %m
}
`
	if got := run(t, src, "addmul", 4, 5); got != 27 {
		t.Errorf("addmul(4,5) = %d, want 27", got)
	}
}

func TestSignedOps(t *testing.T) {
	src := `
define i8 @sd(i8 %a, i8 %b) {
entry:
  %d = sdiv i8 %a, %b
  ret i8 %d
}
`
	// -6 / 2 = -3 in i8.
	got := run(t, src, "sd", 0xFA, 2)
	if sext(got, 8) != -3 {
		t.Errorf("sdiv(-6,2) = %d, want -3", sext(got, 8))
	}
}

func TestDivisionByZero(t *testing.T) {
	m := ir.MustParseModule("t", `
define i32 @d(i32 %a) {
entry:
  %q = udiv i32 %a, 0
  ret i32 %q
}
`)
	mc := NewMachine(m)
	if _, err := mc.Run("d", 1); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestFloatOps(t *testing.T) {
	src := `
define f64 @hypot2(f64 %a, f64 %b) {
entry:
  %aa = fmul f64 %a, %a
  %bb = fmul f64 %b, %b
  %s = fadd f64 %aa, %bb
  ret f64 %s
}
`
	got := ToF64(run(t, src, "hypot2", F64(3), F64(4)))
	if got != 25 {
		t.Errorf("hypot2(3,4) = %v, want 25", got)
	}
}

func TestFloat32Precision(t *testing.T) {
	src := `
define f32 @f(f32 %a) {
entry:
  %r = fadd f32 %a, 1.5
  ret f32 %r
}
`
	got := ToF32(run(t, src, "f", F32(2.25)))
	if got != 3.75 {
		t.Errorf("f(2.25) = %v, want 3.75", got)
	}
}

func TestMemoryAndLoop(t *testing.T) {
	src := `
define i64 @sumto(i64 %n) {
entry:
  %acc = alloca i64
  %i = alloca i64
  store i64 0, i64* %acc
  store i64 1, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %c = icmp sle i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %a = load i64, i64* %acc
  %a2 = add i64 %a, %iv
  store i64 %a2, i64* %acc
  %i2 = add i64 %iv, 1
  store i64 %i2, i64* %i
  br label %head
done:
  %r = load i64, i64* %acc
  ret i64 %r
}
`
	if got := run(t, src, "sumto", 100); got != 5050 {
		t.Errorf("sumto(100) = %d, want 5050", got)
	}
}

func TestGEPStructArray(t *testing.T) {
	src := `
define i32 @pick({i32, f64, i32}* %p) {
entry:
  %f2 = getelementptr {i32, f64, i32}, {i32, f64, i32}* %p, i64 0, i32 2
  %v = load i32, i32* %f2
  ret i32 %v
}

define i32 @main() {
entry:
  %s = alloca {i32, f64, i32}
  %f2 = getelementptr {i32, f64, i32}, {i32, f64, i32}* %s, i64 0, i32 2
  store i32 77, i32* %f2
  %r = call i32 @pick({i32, f64, i32}* %s)
  ret i32 %r
}
`
	if got := run(t, src, "main"); got != 77 {
		t.Errorf("main() = %d, want 77", got)
	}
}

func TestArrayGEP(t *testing.T) {
	src := `
define i64 @sum4([4 x i64]* %a) {
entry:
  %acc = alloca i64
  store i64 0, i64* %acc
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %c = icmp slt i64 %iv, 4
  br i1 %c, label %body, label %done
body:
  %ep = getelementptr [4 x i64], [4 x i64]* %a, i64 0, i64 %iv
  %e = load i64, i64* %ep
  %a0 = load i64, i64* %acc
  %a1 = add i64 %a0, %e
  store i64 %a1, i64* %acc
  %i2 = add i64 %iv, 1
  store i64 %i2, i64* %i
  br label %head
done:
  %r = load i64, i64* %acc
  ret i64 %r
}

define i64 @main() {
entry:
  %a = alloca [4 x i64]
  %p0 = getelementptr [4 x i64], [4 x i64]* %a, i64 0, i64 0
  store i64 10, i64* %p0
  %p1 = getelementptr [4 x i64], [4 x i64]* %a, i64 0, i64 1
  store i64 20, i64* %p1
  %p2 = getelementptr [4 x i64], [4 x i64]* %a, i64 0, i64 2
  store i64 30, i64* %p2
  %p3 = getelementptr [4 x i64], [4 x i64]* %a, i64 0, i64 3
  store i64 40, i64* %p3
  %r = call i64 @sum4([4 x i64]* %a)
  ret i64 %r
}
`
	if got := run(t, src, "main"); got != 100 {
		t.Errorf("main() = %d, want 100", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
@counter = global i64 zeroinitializer

define i64 @bump() {
entry:
  %v = load i64, i64* @counter
  %v2 = add i64 %v, 1
  store i64 %v2, i64* @counter
  ret i64 %v2
}
`
	m := ir.MustParseModule("t", src)
	mc := NewMachine(m)
	for want := Word(1); want <= 3; want++ {
		got, err := mc.Run("bump")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("bump = %d, want %d", got, want)
		}
	}
}

func TestGlobalInitBytes(t *testing.T) {
	src := `
@table = global [4 x i32] bytes "01000000020000000300000004000000"

define i32 @get(i64 %i) {
entry:
  %p = getelementptr [4 x i32], [4 x i32]* @table, i64 0, i64 %i
  %v = load i32, i32* %p
  ret i32 %v
}
`
	m := ir.MustParseModule("t", src)
	mc := NewMachine(m)
	for i := Word(0); i < 4; i++ {
		got, err := mc.Run("get", i)
		if err != nil {
			t.Fatal(err)
		}
		if got != i+1 {
			t.Errorf("get(%d) = %d, want %d", i, got, i+1)
		}
	}
}

func TestPhiExecution(t *testing.T) {
	src := `
define i32 @pick(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ 10, %a ], [ 20, %b ]
  ret i32 %p
}
`
	if got := run(t, src, "pick", 1); got != 10 {
		t.Errorf("pick(true) = %d, want 10", got)
	}
	if got := run(t, src, "pick", 0); got != 20 {
		t.Errorf("pick(false) = %d, want 20", got)
	}
}

func TestSelectAndCmp(t *testing.T) {
	src := `
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
`
	if got := run(t, src, "max", 3, 9); got != 9 {
		t.Errorf("max(3,9) = %d, want 9", got)
	}
}

func TestIndirectCall(t *testing.T) {
	src := `
define i32 @inc(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @dec(i32 %x) {
entry:
  %r = sub i32 %x, 1
  ret i32 %r
}

define i32 @apply(i1 %c, i32 %x) {
entry:
  %fp = select i1 %c, i32 (i32)* @inc, i32 (i32)* @dec
  %r = call i32 %fp(i32 %x)
  ret i32 %r
}
`
	if got := run(t, src, "apply", 1, 10); got != 11 {
		t.Errorf("apply(true,10) = %d, want 11", got)
	}
	if got := run(t, src, "apply", 0, 10); got != 9 {
		t.Errorf("apply(false,10) = %d, want 9", got)
	}
}

func TestIntrinsics(t *testing.T) {
	src := `
declare i8* @mymalloc(i64)

define i64 @roundtrip(i64 %v) {
entry:
  %p8 = call i8* @mymalloc(i64 8)
  %p = bitcast i8* %p8 to i64*
  store i64 %v, i64* %p
  %r = load i64, i64* %p
  ret i64 %r
}
`
	if got := run(t, src, "roundtrip", 424242); got != 424242 {
		t.Errorf("roundtrip = %d, want 424242", got)
	}
}

func TestInvokeUnwind(t *testing.T) {
	src := `
declare void @throw()

define i32 @guarded(i1 %doThrow) {
entry:
  br i1 %doThrow, label %risky, label %safe
risky:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  ret i32 1
safe:
  ret i32 2
lpad:
  %lp = landingpad cleanup
  ret i32 3
}
`
	if got := run(t, src, "guarded", 1); got != 3 {
		t.Errorf("guarded(true) = %d, want 3 (landing pad)", got)
	}
	if got := run(t, src, "guarded", 0); got != 2 {
		t.Errorf("guarded(false) = %d, want 2", got)
	}
}

func TestResumePropagates(t *testing.T) {
	src := `
declare void @throw()

define void @rethrow() {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  ret void
lpad:
  %lp = landingpad cleanup
  resume token %lp
}

define i32 @catcher() {
entry:
  invoke void @rethrow() to label %ok unwind label %lpad
ok:
  ret i32 0
lpad:
  %lp = landingpad cleanup
  ret i32 99
}
`
	if got := run(t, src, "catcher"); got != 99 {
		t.Errorf("catcher = %d, want 99", got)
	}
}

func TestUnhandledUnwind(t *testing.T) {
	src := `
declare void @throw()

define void @boom() {
entry:
  call void @throw()
  ret void
}
`
	m := ir.MustParseModule("t", src)
	mc := NewMachine(m)
	_, err := mc.Run("boom")
	if !errors.Is(err, ErrUnwind) {
		t.Errorf("expected ErrUnwind, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
define void @spin() {
entry:
  br label %loop
loop:
  br label %loop
}
`
	m := ir.MustParseModule("t", src)
	mc := NewMachine(m)
	mc.MaxSteps = 1000
	_, err := mc.Run("spin")
	if !errors.Is(err, ErrLimit) {
		t.Errorf("expected ErrLimit, got %v", err)
	}
}

func TestCasts(t *testing.T) {
	src := `
define i64 @szext(i8 %x) {
entry:
  %s = sext i8 %x to i64
  ret i64 %s
}

define i64 @uzext(i8 %x) {
entry:
  %z = zext i8 %x to i64
  ret i64 %z
}

define i64 @fbits(f64 %x) {
entry:
  %b = bitcast f64 %x to i64
  ret i64 %b
}

define i32 @fti(f64 %x) {
entry:
  %i = fptosi f64 %x to i32
  ret i32 %i
}
`
	if got := run(t, src, "szext", 0xFF); got != math.MaxUint64 {
		t.Errorf("sext i8 -1 = %#x, want all ones", got)
	}
	if got := run(t, src, "uzext", 0xFF); got != 255 {
		t.Errorf("zext i8 255 = %d, want 255", got)
	}
	if got := run(t, src, "fbits", F64(1.0)); got != math.Float64bits(1.0) {
		t.Errorf("bitcast f64 1.0 = %#x", got)
	}
	if got := run(t, src, "fti", F64(-7.9)); sext(got, 32) != -7 {
		t.Errorf("fptosi(-7.9) = %d, want -7", sext(got, 32))
	}
}

func TestStatsAndProfile(t *testing.T) {
	src := `
define i64 @work(i64 %n) {
entry:
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %i2 = add i64 %iv, 1
  store i64 %i2, i64* %i
  br label %head
done:
  ret i64 %iv
}
`
	m := ir.MustParseModule("t", src)
	mc := NewMachine(m)
	mc.Profile = true
	if _, err := mc.Run("work", 10); err != nil {
		t.Fatal(err)
	}
	st := mc.Stats()
	if st.Executed == 0 || st.Weighted == 0 || st.Calls != 1 {
		t.Errorf("unexpected stats: %+v", st)
	}
	f := m.FuncByName("work")
	var body *ir.Block
	for _, b := range f.Blocks {
		if b.Name() == "body" {
			body = b
		}
	}
	if mc.BlockCounts[body] != 10 {
		t.Errorf("body executed %d times, want 10", mc.BlockCounts[body])
	}
	mc.ResetStats()
	if mc.Stats().Executed != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestSwitchExecution(t *testing.T) {
	src := `
define i32 @sw(i32 %x) {
entry:
  switch i32 %x, label %def [ i32 1, label %one i32 2, label %two ]
one:
  ret i32 100
two:
  ret i32 200
def:
  ret i32 0
}
`
	cases := map[Word]Word{1: 100, 2: 200, 5: 0}
	for in, want := range cases {
		if got := run(t, src, "sw", in); got != want {
			t.Errorf("sw(%d) = %d, want %d", in, got, want)
		}
	}
}
