package interp

import (
	"math"
	"strings"
	"testing"

	"fmsa/internal/ir"
)

func TestRemainders(t *testing.T) {
	src := `
define i32 @sr(i32 %a, i32 %b) {
entry:
  %r = srem i32 %a, %b
  ret i32 %r
}

define i32 @ur(i32 %a, i32 %b) {
entry:
  %r = urem i32 %a, %b
  ret i32 %r
}

define f64 @fr(f64 %a, f64 %b) {
entry:
  %r = frem f64 %a, %b
  ret f64 %r
}
`
	// -7 % 3 = -1 (signed, Go semantics = LLVM srem).
	neg7 := uint64(0xFFFFFFF9)
	if got := run(t, src, "sr", neg7, 3); sext(got, 32) != -1 {
		t.Errorf("srem(-7,3) = %d, want -1", sext(got, 32))
	}
	// 0xFFFFFFF9 % 3 unsigned = 4294967289 % 3 = 0.
	if got := run(t, src, "ur", neg7, 3); got != 0 {
		t.Errorf("urem = %d, want 0", got)
	}
	if got := ToF64(run(t, src, "fr", F64(7.5), F64(2))); got != 1.5 {
		t.Errorf("frem(7.5,2) = %v, want 1.5", got)
	}
}

func TestShiftMasking(t *testing.T) {
	src := `
define i8 @sh(i8 %a, i8 %b) {
entry:
  %r = shl i8 %a, %b
  ret i8 %r
}
`
	// Shift amounts are masked modulo the bit width (8): shl by 9 ≡ shl by 1.
	if got := run(t, src, "sh", 1, 9); got != 2 {
		t.Errorf("shl i8 1, 9 = %d, want 2 (masked)", got)
	}
}

func TestUnsignedConversions(t *testing.T) {
	src := `
define i32 @ftu(f64 %x) {
entry:
  %r = fptoui f64 %x to i32
  ret i32 %r
}

define f64 @utf(i8 %x) {
entry:
  %r = uitofp i8 %x to f64
  ret f64 %r
}
`
	if got := run(t, src, "ftu", F64(3000000000)); got != 3000000000 {
		t.Errorf("fptoui = %d", got)
	}
	if got := ToF64(run(t, src, "utf", 0xFF)); got != 255 {
		t.Errorf("uitofp i8 255 = %v, want 255", got)
	}
}

func TestFCmpPredicates(t *testing.T) {
	src := `
define i1 @cmp_PRED(f64 %a, f64 %b) {
entry:
  %r = fcmp PRED f64 %a, %b
  ret i1 %r
}
`
	cases := []struct {
		pred string
		a, b float64
		want uint64
	}{
		{"oeq", 1, 1, 1}, {"oeq", 1, 2, 0},
		{"one", 1, 2, 1}, {"one", 1, 1, 0},
		{"ogt", 2, 1, 1}, {"oge", 1, 1, 1},
		{"olt", 1, 2, 1}, {"ole", 2, 1, 0},
		{"oeq", math.NaN(), 1, 0},
		{"one", math.NaN(), 1, 0}, // ordered: NaN compares false
	}
	for _, c := range cases {
		s := strings.ReplaceAll(src, "PRED", c.pred)
		if got := run(t, s, "cmp_"+c.pred, F64(c.a), F64(c.b)); got != c.want {
			t.Errorf("fcmp %s %v %v = %d, want %d", c.pred, c.a, c.b, got, c.want)
		}
	}
}

func TestMemoryBounds(t *testing.T) {
	m := ir.MustParseModule("mb", `
define i64 @deref(i64 %addr) {
entry:
  %p = inttoptr i64 %addr to i64*
  %v = load i64, i64* %p
  ret i64 %v
}
`)
	mc := NewMachine(m)
	if _, err := mc.Run("deref", 0); err == nil {
		t.Error("null deref must fail")
	}
	if _, err := mc.Run("deref", 1<<40); err == nil {
		t.Error("wild deref must fail")
	}
}

func TestAllocLimit(t *testing.T) {
	m := ir.MustParseModule("al", "define void @noop() {\nentry:\n  ret void\n}")
	mc := NewMachine(m)
	if _, err := mc.Alloc(1 << 40); err == nil {
		t.Error("huge allocation must fail")
	}
	// Zero-sized allocations still return distinct valid addresses.
	a, err := mc.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("zero-sized allocations should not alias")
	}
}

func TestReadWriteMemBounds(t *testing.T) {
	m := ir.MustParseModule("rw", "define void @noop() {\nentry:\n  ret void\n}")
	mc := NewMachine(m)
	addr, err := mc.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.WriteMem(addr, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := mc.ReadMem(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Error("round trip failed")
	}
	if _, err := mc.ReadMem(2, 4); err == nil {
		t.Error("sub-16 read must fail")
	}
	if err := mc.WriteMem(1<<30, []byte{1}); err == nil {
		t.Error("unmapped write must fail")
	}
}

func TestUnregisteredExternFails(t *testing.T) {
	m := ir.MustParseModule("ux", `
declare void @mystery()

define void @f() {
entry:
  call void @mystery()
  ret void
}
`)
	mc := NewMachine(m)
	if _, err := mc.Run("f"); err == nil {
		t.Error("call of unregistered external must fail")
	}
}

func TestWrongArgCount(t *testing.T) {
	m := ir.MustParseModule("wa", `
define i64 @two(i64 %a, i64 %b) {
entry:
  %r = add i64 %a, %b
  ret i64 %r
}
`)
	mc := NewMachine(m)
	if _, err := mc.Run("two", 1); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := mc.Run("missing"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestDefaultIntrinsics(t *testing.T) {
	m := ir.MustParseModule("di", `
declare i8* @malloc(i64)
declare void @free(i8*)
declare f64 @sqrt_f64(f64)
declare f64 @abs_f64(f64)

define f64 @f(f64 %x) {
entry:
  %p = call i8* @malloc(i64 8)
  call void @free(i8* %p)
  %a = call f64 @abs_f64(f64 %x)
  %r = call f64 @sqrt_f64(f64 %a)
  ret f64 %r
}
`)
	mc := NewMachine(m)
	got, err := mc.Run("f", F64(-16))
	if err != nil {
		t.Fatal(err)
	}
	if ToF64(got) != 4 {
		t.Errorf("sqrt(abs(-16)) = %v, want 4", ToF64(got))
	}
}
