package align

import (
	"math/rand"
	"reflect"
	"testing"
)

// randCodes draws a sequence over a small alphabet so matches are common
// enough for interesting alignments.
func randCodes(rng *rand.Rand, n, alphabet int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(rng.Intn(alphabet))
	}
	return s
}

// codesEq adapts two code slices to the closure-kernel interface.
func codesEq(a, b []uint32) EqFunc {
	return func(i, j int) bool { return a[i] == b[j] }
}

// checkTwin runs one closure kernel and its coded twin on the same input and
// requires bit-identical steps — not just equal score. The merger's output is
// a pure function of the []Step slice, so this is the property that makes
// the kernels interchangeable.
func checkTwin(t *testing.T, name string, a, b []uint32,
	closure func(n, m int, eq EqFunc, sc Scoring) []Step, coded CodedFunc, sc Scoring) {
	t.Helper()
	want := closure(len(a), len(b), codesEq(a, b), sc)
	got := coded(a, b, sc)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: coded kernel diverges on n=%d m=%d:\nclosure: %v\ncoded:   %v",
			name, len(a), len(b), want, got)
	}
	if !Validate(got, len(a), len(b)) {
		t.Errorf("%s: coded kernel produced invalid alignment (n=%d m=%d)", name, len(a), len(b))
	}
}

// TestCodedKernelsBitIdentical sweeps random sequences — including empty and
// degenerate sizes — through every closure/coded kernel pair.
func TestCodedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pairs := []struct {
		name    string
		closure func(n, m int, eq EqFunc, sc Scoring) []Step
		coded   CodedFunc
	}{
		{"align", Align, AlignCodes},
		{"nw", NeedlemanWunsch, NeedlemanWunschCodes},
		{"hirschberg", Hirschberg, HirschbergCodes},
		{"gotoh", GotohAligner, GotohAlignerCodes},
		{"banded-8", BandedAligner(8), BandedAlignerCodes(8)},
		{"banded-1", BandedAligner(1), BandedAlignerCodes(1)},
	}
	sizes := [][2]int{
		{0, 0}, {0, 5}, {5, 0}, {1, 1}, {1, 7}, {7, 1},
		{13, 13}, {20, 33}, {64, 64}, {100, 37},
	}
	for _, p := range pairs {
		for _, sz := range sizes {
			for trial := 0; trial < 4; trial++ {
				alphabet := 2 + trial*3
				a := randCodes(rng, sz[0], alphabet)
				b := randCodes(rng, sz[1], alphabet)
				checkTwin(t, p.name, a, b, p.closure, p.coded, DefaultScoring)
			}
		}
	}
	// Non-default scoring exercises tie-break arithmetic differently.
	odd := Scoring{Match: 3, Mismatch: -2, Gap: -4}
	for _, p := range pairs {
		a := randCodes(rng, 41, 4)
		b := randCodes(rng, 29, 4)
		checkTwin(t, p.name+"/odd-scoring", a, b, p.closure, p.coded, odd)
	}
}

// TestGotohCodesAffine pins the coded Gotoh against the closure Gotoh under a
// scoring where opening and extension genuinely differ (GotohAligner
// collapses them).
func TestGotohCodesAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := AffineScoring{Match: 2, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	for trial := 0; trial < 8; trial++ {
		a := randCodes(rng, 10+trial*7, 3)
		b := randCodes(rng, 8+trial*9, 3)
		want := Gotoh(len(a), len(b), codesEq(a, b), sc)
		got := GotohCodes(a, b, sc)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: affine coded kernel diverges", trial)
		}
	}
}

// TestBandedCodesWidening forces the band-widening retry path: sequences
// whose optimal alignment needs a wide band, attacked with band=1.
func TestBandedCodesWidening(t *testing.T) {
	// b is a long prefix of junk followed by a copy of a: the optimal path
	// leaves the initial narrow band.
	a := make([]uint32, 24)
	for i := range a {
		a[i] = uint32(i + 100)
	}
	junk := make([]uint32, 17)
	for i := range junk {
		junk[i] = 7
	}
	b := append(append([]uint32{}, junk...), a...)
	want := BandedAligner(1)(len(a), len(b), codesEq(a, b), DefaultScoring)
	got := BandedAlignerCodes(1)(a, b, DefaultScoring)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("banded widening path diverges between closure and coded kernels")
	}
}

// TestUseDirectOverflow is the regression test for the n*m overflow: with the
// old product-form check, n = m = 1<<32 wraps n*m to 0 on 64-bit and routes a
// ~2^64-cell problem to the direct kernel. The division form must reject it.
func TestUseDirectOverflow(t *testing.T) {
	const huge = 1 << 32 // only meaningful on 64-bit int; harmless elsewhere
	if huge > 0 && useDirect(huge, huge) {
		t.Error("useDirect accepted a 2^64-cell problem (int overflow)")
	}
	if huge > 0 && huge*huge <= maxDirectCells {
		// Documents the wrap the division form guards against.
		t.Log("product form wraps as expected; division form required")
	}
	// Agreement with the product form everywhere the product does not
	// overflow, including both sides of the threshold.
	cases := [][2]int{
		{0, 0}, {0, 9}, {9, 0}, {1, maxDirectCells}, {maxDirectCells, 1},
		{1 << 12, 1 << 12}, {4096, 4097}, {1 << 13, 1 << 11}, {3, maxDirectCells / 3},
		{3, maxDirectCells/3 + 1}, {1 << 13, 1 << 12},
	}
	for _, c := range cases {
		n, m := c[0], c[1]
		want := n == 0 || m == 0 || n*m <= maxDirectCells
		if got := useDirect(n, m); got != want {
			t.Errorf("useDirect(%d, %d) = %v, want %v", n, m, got, want)
		}
	}
}

// TestAlignCodesRouting checks the dispatcher picks twin kernels with the
// closure Align on both sides of the useDirect threshold (small direct case
// here; the Hirschberg route is covered by sizes in the bit-identity sweep
// and by the Hirschberg property test).
func TestAlignCodesRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randCodes(rng, 200, 5)
	b := randCodes(rng, 300, 5)
	want := Align(len(a), len(b), codesEq(a, b), DefaultScoring)
	got := AlignCodes(a, b, DefaultScoring)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("AlignCodes diverges from Align on the direct route")
	}
}
