package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// slowAffineScore computes the optimal affine-gap alignment score by
// exhaustive three-state recursion, for cross-checking Gotoh on small
// inputs.
func slowAffineScore(a, b string, sc AffineScoring) int {
	type key struct {
		i, j  int
		state int // 0=fresh/match, 1=in gapA, 2=in gapB
	}
	memo := map[key]int{}
	const negInf = -1 << 29
	var rec func(i, j, state int) int
	rec = func(i, j, state int) int {
		if i == len(a) && j == len(b) {
			return 0
		}
		k := key{i, j, state}
		if v, ok := memo[k]; ok {
			return v
		}
		best := negInf
		if i < len(a) && j < len(b) {
			sub := sc.Mismatch
			if a[i] == b[j] {
				sub = sc.Match
			}
			if v := rec(i+1, j+1, 0) + sub; v > best {
				best = v
			}
		}
		if i < len(a) {
			cost := sc.GapExtend
			if state != 1 {
				cost += sc.GapOpen
			}
			if v := rec(i+1, j, 1) + cost; v > best {
				best = v
			}
		}
		if j < len(b) {
			cost := sc.GapExtend
			if state != 2 {
				cost += sc.GapOpen
			}
			if v := rec(i, j+1, 2) + cost; v > best {
				best = v
			}
		}
		memo[k] = best
		return best
	}
	return rec(0, 0, 0)
}

func TestGotohOptimality(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sc := AffineScoring{Match: 2, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	for iter := 0; iter < 150; iter++ {
		a := randSeq(r, r.Intn(12), "abc")
		b := randSeq(r, r.Intn(12), "abc")
		steps := Gotoh(len(a), len(b), strEq(a, b), sc)
		if !Validate(steps, len(a), len(b)) {
			t.Fatalf("invalid gotoh alignment of %q, %q: %v", a, b, steps)
		}
		got := AffineScore(steps, sc)
		want := slowAffineScore(a, b, sc)
		if got != want {
			t.Fatalf("gotoh score %d != optimal %d for %q, %q (%v)", got, want, a, b, steps)
		}
	}
}

func TestGotohIdentical(t *testing.T) {
	steps := Gotoh(5, 5, strEq("hello", "hello"), DefaultAffineScoring)
	if countOps(steps)[OpMatch] != 5 {
		t.Errorf("identical strings should fully match: %v", steps)
	}
}

func TestGotohEmpty(t *testing.T) {
	steps := Gotoh(0, 3, strEq("", "abc"), DefaultAffineScoring)
	if !Validate(steps, 0, 3) {
		t.Errorf("empty-A alignment invalid: %v", steps)
	}
	steps = Gotoh(3, 0, strEq("abc", ""), DefaultAffineScoring)
	if !Validate(steps, 3, 0) {
		t.Errorf("empty-B alignment invalid: %v", steps)
	}
}

func TestGotohPrefersContiguousGaps(t *testing.T) {
	// A = core, B = core with noise inserted at two sites. With a strong
	// opening penalty the alignment should not have more gap runs than
	// insertion sites.
	a := "MMMMMMMM"
	b := "MMxyMMMMzwMM"
	sc := AffineScoring{Match: 2, Mismatch: -3, GapOpen: -4, GapExtend: 0}
	steps := Gotoh(len(a), len(b), strEq(a, b), sc)
	if !Validate(steps, len(a), len(b)) {
		t.Fatal("invalid alignment")
	}
	if runs := GapRuns(steps); runs > 2 {
		t.Errorf("affine alignment has %d gap runs, want <= 2: %v", runs, steps)
	}
	if countOps(steps)[OpMatch] != 8 {
		t.Errorf("all core symbols should match: %v", steps)
	}
}

func TestGotohNeverWorseThanNWOnGapRuns(t *testing.T) {
	// Property: with equal total weights, the affine aligner produces at
	// most as many gap runs as plain NW on the same input (that is its
	// purpose for merging: fewer diamonds).
	f := func(aRaw, bRaw []byte) bool {
		a, b := aRaw, bRaw
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		eq := func(i, j int) bool { return a[i]%4 == b[j]%4 }
		nw := DecomposeMismatches(NeedlemanWunsch(len(a), len(b), eq, DefaultScoring))
		gt := DecomposeMismatches(Gotoh(len(a), len(b), eq, AffineScoring{
			Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1,
		}))
		if !Validate(gt, len(a), len(b)) {
			return false
		}
		// Soft property: affine should not fragment more than NW by a
		// large margin (exact dominance does not hold for arbitrary
		// scorings, so allow +1).
		return GapRuns(gt) <= GapRuns(nw)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGotohAlignerAdapter(t *testing.T) {
	steps := GotohAligner(3, 3, strEq("abc", "abc"), DefaultScoring)
	if !Validate(steps, 3, 3) || countOps(steps)[OpMatch] != 3 {
		t.Errorf("adapter misaligned identical input: %v", steps)
	}
}

func BenchmarkGotoh500(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	s1 := randSeq(r, 500, "abcdefgh")
	s2 := randSeq(r, 500, "abcdefgh")
	eq := strEq(s1, s2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gotoh(len(s1), len(s2), eq, DefaultAffineScoring)
	}
}
