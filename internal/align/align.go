// Package align implements pairwise sequence alignment algorithms over
// abstract sequences: the Needleman–Wunsch global alignment used by the
// paper (§III-C), a Hirschberg linear-space variant for long sequences, and
// Smith–Waterman local alignment for the alignment-algorithm ablation.
//
// Sequences are abstract: callers supply lengths and an equivalence
// predicate over index pairs, so the package never copies the underlying
// elements (linearized IR entries).
package align

// Op classifies one column of an alignment.
type Op int

// Alignment column kinds.
const (
	// OpMatch aligns equivalent elements A[I] and B[J].
	OpMatch Op = iota
	// OpMismatch aligns non-equivalent elements A[I] and B[J].
	OpMismatch
	// OpGapA pairs A[I] with a blank in B.
	OpGapA
	// OpGapB pairs B[J] with a blank in A.
	OpGapB
)

// String returns a one-letter code for the op (M, X, A, B).
func (o Op) String() string {
	switch o {
	case OpMatch:
		return "M"
	case OpMismatch:
		return "X"
	case OpGapA:
		return "A"
	case OpGapB:
		return "B"
	default:
		return "?"
	}
}

// Step is one column of an alignment. I indexes the first sequence and J the
// second; an index is -1 when its side of the column is a blank.
type Step struct {
	Op   Op
	I, J int
}

// Scoring assigns weights to matches, mismatches and gaps. The paper uses a
// standard scheme rewarding matches and equally penalizing mismatches and
// gaps.
type Scoring struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScoring is the paper's scheme: matches rewarded, mismatches and
// gaps equally penalized.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -1}

// EqFunc reports whether A[i] and B[j] are equivalent.
type EqFunc func(i, j int) bool

// maxDirectCells bounds the traceback matrix of direct Needleman–Wunsch;
// larger problems are routed to the linear-space Hirschberg algorithm.
const maxDirectCells = 1 << 24 // 16M cells ≈ 16 MiB of direction bytes

// Align computes an optimal global alignment of two sequences of lengths n
// and m, choosing between direct Needleman–Wunsch and the linear-space
// Hirschberg variant based on problem size.
func Align(n, m int, eq EqFunc, sc Scoring) []Step {
	if useDirect(n, m) {
		return NeedlemanWunsch(n, m, eq, sc)
	}
	return Hirschberg(n, m, eq, sc)
}

// useDirect reports whether an n×m problem fits the direct Needleman–Wunsch
// traceback matrix. The bound is checked by division rather than as
// n*m <= maxDirectCells: for very long sequences the product can overflow
// int and wrap to a small (or negative) value, which would route a
// multi-gigabyte problem to the direct kernel. For every non-overflowing
// pair the two forms agree exactly, so the routing of all realistic inputs
// is unchanged. AlignCodes shares this predicate so both dispatchers always
// pick twin kernels.
func useDirect(n, m int) bool {
	return n == 0 || m == 0 || n <= maxDirectCells/m
}

// Direction codes for the traceback matrix.
const (
	dirDiag byte = iota + 1
	dirUp        // gap in B (consume A)
	dirLeft      // gap in A (consume B)
)

// NeedlemanWunsch computes an optimal global alignment with full dynamic
// programming (O(n·m) time and traceback space).
func NeedlemanWunsch(n, m int, eq EqFunc, sc Scoring) []Step {
	if n == 0 {
		steps := make([]Step, 0, m)
		for j := 0; j < m; j++ {
			steps = append(steps, Step{Op: OpGapB, I: -1, J: j})
		}
		return steps
	}
	if m == 0 {
		steps := make([]Step, 0, n)
		for i := 0; i < n; i++ {
			steps = append(steps, Step{Op: OpGapA, I: i, J: -1})
		}
		return steps
	}

	// Rolling score rows plus a full direction matrix for traceback, all
	// recycled scratch. Every cell the traceback can reach is written below
	// — dirs[at(0,0)] is the only unwritten cell, and the traceback stops
	// before reading it — so stale pooled contents are harmless.
	prev := getInt32(m + 1)
	cur := getInt32(m + 1)
	dirs := getBytes((n + 1) * (m + 1))
	at := func(i, j int) int { return i*(m+1) + j }

	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = int32(j * sc.Gap)
		dirs[at(0, j)] = dirLeft
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(i * sc.Gap)
		dirs[at(i, 0)] = dirUp
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if eq(i-1, j-1) {
				sub = sc.Match
			}
			diag := prev[j-1] + int32(sub)
			up := prev[j] + int32(sc.Gap)
			left := cur[j-1] + int32(sc.Gap)
			// Tie-break toward diagonal, then up, matching the classic
			// formulation; determinism matters for reproducibility.
			best, dir := diag, dirDiag
			if up > best {
				best, dir = up, dirUp
			}
			if left > best {
				best, dir = left, dirLeft
			}
			cur[j] = best
			dirs[at(i, j)] = dir
		}
		prev, cur = cur, prev
	}

	// Traceback.
	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		switch dirs[at(i, j)] {
		case dirDiag:
			op := OpMismatch
			if eq(i-1, j-1) {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			i--
			j--
		case dirUp:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			i--
		case dirLeft:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			j--
		default:
			panic("align: corrupt traceback")
		}
	}
	putInt32(prev)
	putInt32(cur)
	putBytes(dirs)
	// Reverse in place.
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// Score computes the total score of an alignment under sc.
func Score(steps []Step, sc Scoring) int {
	total := 0
	for _, s := range steps {
		switch s.Op {
		case OpMatch:
			total += sc.Match
		case OpMismatch:
			total += sc.Mismatch
		default:
			total += sc.Gap
		}
	}
	return total
}

// DecomposeMismatches rewrites every mismatch column as a pair of gap
// columns (A[i] vs blank, then blank vs B[j]). When the mismatch penalty
// does not undercut two gaps, the result has equal score, and it simplifies
// merged-code generation: every aligned column is then either an exact
// match or code unique to one input.
func DecomposeMismatches(steps []Step) []Step {
	out := make([]Step, 0, len(steps))
	for _, s := range steps {
		if s.Op == OpMismatch {
			out = append(out, Step{Op: OpGapA, I: s.I, J: -1}, Step{Op: OpGapB, I: -1, J: s.J})
			continue
		}
		out = append(out, s)
	}
	return out
}

// Validate checks structural invariants of an alignment of sequences with
// lengths n and m: indices on each side appear exactly once, in increasing
// order, and every column consumes at least one element. It returns false
// if any invariant is violated.
func Validate(steps []Step, n, m int) bool {
	wantI, wantJ := 0, 0
	for _, s := range steps {
		switch s.Op {
		case OpMatch, OpMismatch:
			if s.I != wantI || s.J != wantJ {
				return false
			}
			wantI++
			wantJ++
		case OpGapA:
			if s.I != wantI || s.J != -1 {
				return false
			}
			wantI++
		case OpGapB:
			if s.J != wantJ || s.I != -1 {
				return false
			}
			wantJ++
		default:
			return false
		}
	}
	return wantI == n && wantJ == m
}
