package align

// Banded computes a global alignment restricted to a diagonal band of the
// dynamic-programming matrix: only cells with |i−j−(n−m)/2·0| within the
// band (after centering on the main diagonal of the rectangular problem)
// are explored. Cost drops from O(n·m) to O((n+m)·band) at the price of
// optimality — alignments that would need to shift code by more than the
// band width degrade into gaps.
//
// Sequence alignment dominates FMSA's compile time (paper Fig. 13, §V-C);
// banding is the classic bioinformatics response to exactly this trade-off
// and the same lever later explored by the follow-up work on cheaper
// function-merging pipelines.
func Banded(n, m int, eq EqFunc, sc Scoring, band int) []Step {
	if band <= 0 {
		band = 1
	}
	if n == 0 || m == 0 {
		return NeedlemanWunsch(n, m, eq, sc)
	}
	// The band must at least cover the length difference, or the corner
	// cell is unreachable.
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if band < diff+1 {
		band = diff + 1
	}
	if band >= n+m {
		return NeedlemanWunsch(n, m, eq, sc)
	}
	// Very different lengths force a band so wide the banded matrix stops
	// paying off (and can exceed memory); fall back to the standard
	// dispatcher, which routes oversized problems to Hirschberg. Checked by
	// division for the same overflow reason as useDirect.
	width := 2*band + 1
	if n+1 > maxDirectCells/width {
		return Align(n, m, eq, sc)
	}

	const negInf = int32(-1 << 29)
	// score[i][k] holds the score of cell (i, j) with j = i - band + k,
	// clipped to valid j. Both matrices are recycled scratch: score is
	// explicitly initialized to negInf below, and dirs cells are only read
	// at cells the traceback reaches — all of which were written, because
	// unwritten cells keep score negInf and negInf cells are never chosen
	// as predecessors.
	score := getInt32((n + 1) * width)
	dirs := getBytes((n + 1) * width)
	at := func(i, k int) int { return i*width + k }
	jOf := func(i, k int) int { return i - band + k }
	kOf := func(i, j int) int { return j - i + band }

	for i := 0; i <= n; i++ {
		for k := 0; k < width; k++ {
			score[at(i, k)] = negInf
		}
	}
	score[at(0, kOf(0, 0))] = 0
	for j := 1; j <= m && kOf(0, j) < width; j++ {
		score[at(0, kOf(0, j))] = int32(j * sc.Gap)
		dirs[at(0, kOf(0, j))] = dirLeft
	}

	for i := 1; i <= n; i++ {
		for k := 0; k < width; k++ {
			j := jOf(i, k)
			if j < 0 || j > m {
				continue
			}
			best, dir := negInf, byte(0)
			if j == 0 {
				best, dir = int32(i*sc.Gap), dirUp
			}
			if i > 0 && j > 0 {
				// Diagonal: same k in row i-1.
				if prev := score[at(i-1, k)]; prev > negInf {
					sub := sc.Mismatch
					if eq(i-1, j-1) {
						sub = sc.Match
					}
					if v := prev + int32(sub); v > best {
						best, dir = v, dirDiag
					}
				}
			}
			// Up (consume A): cell (i-1, j) is k+1 in row i-1.
			if k+1 < width {
				if prev := score[at(i-1, k+1)]; prev > negInf {
					if v := prev + int32(sc.Gap); v > best {
						best, dir = v, dirUp
					}
				}
			}
			// Left (consume B): cell (i, j-1) is k-1 in the same row.
			if k-1 >= 0 {
				if prev := score[at(i, k-1)]; prev > negInf {
					if v := prev + int32(sc.Gap); v > best {
						best, dir = v, dirLeft
					}
				}
			}
			if dir != 0 {
				score[at(i, k)] = best
				dirs[at(i, k)] = dir
			}
		}
	}

	// Traceback from (n, m).
	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		k := kOf(i, j)
		if k < 0 || k >= width {
			// Out of band (cannot happen when band covers diff).
			panic("align: banded traceback left the band")
		}
		switch dirs[at(i, k)] {
		case dirDiag:
			op := OpMismatch
			if eq(i-1, j-1) {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			i--
			j--
		case dirUp:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			i--
		case dirLeft:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			j--
		default:
			panic("align: corrupt banded traceback")
		}
	}
	putInt32(score)
	putBytes(dirs)
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// BandedAligner returns an AlignFunc-shaped adapter with a fixed band.
func BandedAligner(band int) func(n, m int, eq EqFunc, sc Scoring) []Step {
	return func(n, m int, eq EqFunc, sc Scoring) []Step {
		return Banded(n, m, eq, sc, band)
	}
}
