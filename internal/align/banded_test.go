package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandedValidAlignments(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		a := randSeq(r, r.Intn(30), "abcd")
		b := randSeq(r, r.Intn(30), "abcd")
		for _, band := range []int{1, 3, 8, 100} {
			steps := Banded(len(a), len(b), strEq(a, b), DefaultScoring, band)
			if !Validate(steps, len(a), len(b)) {
				t.Fatalf("invalid banded(%d) alignment of %q, %q: %v", band, a, b, steps)
			}
		}
	}
}

func TestBandedWideBandIsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for iter := 0; iter < 100; iter++ {
		a := randSeq(r, r.Intn(20), "abc")
		b := randSeq(r, r.Intn(20), "abc")
		wide := Banded(len(a), len(b), strEq(a, b), DefaultScoring, 64)
		nw := NeedlemanWunsch(len(a), len(b), strEq(a, b), DefaultScoring)
		if Score(wide, DefaultScoring) != Score(nw, DefaultScoring) {
			t.Fatalf("wide band not optimal for %q, %q: %d vs %d",
				a, b, Score(wide, DefaultScoring), Score(nw, DefaultScoring))
		}
	}
}

func TestBandedNeverBeatsOptimal(t *testing.T) {
	f := func(aRaw, bRaw []byte, bandRaw uint8) bool {
		a, b := aRaw, bRaw
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		band := int(bandRaw%12) + 1
		eq := func(i, j int) bool { return a[i]%4 == b[j]%4 }
		banded := Banded(len(a), len(b), eq, DefaultScoring, band)
		if !Validate(banded, len(a), len(b)) {
			return false
		}
		nw := NeedlemanWunsch(len(a), len(b), eq, DefaultScoring)
		return Score(banded, DefaultScoring) <= Score(nw, DefaultScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBandedIdenticalSequences(t *testing.T) {
	// Identical sequences live on the main diagonal: even band 1 recovers
	// the full match.
	s := "mergemergemerge"
	steps := Banded(len(s), len(s), strEq(s, s), DefaultScoring, 1)
	if countOps(steps)[OpMatch] != len(s) {
		t.Errorf("band-1 failed to match identical sequences: %v", steps)
	}
}

func TestBandedNarrowDegradesGracefully(t *testing.T) {
	// A large shift (prefix insertion) exceeds the band: the result stays
	// valid, just with fewer matches than the optimum.
	a := "0123456789"
	b := "XXXXXXXX0123456789"
	narrow := Banded(len(a), len(b), strEq(a, b), DefaultScoring, 9) // just covers diff
	if !Validate(narrow, len(a), len(b)) {
		t.Fatal("invalid narrow alignment")
	}
	nw := NeedlemanWunsch(len(a), len(b), strEq(a, b), DefaultScoring)
	if countOps(narrow)[OpMatch] > countOps(nw)[OpMatch] {
		t.Error("banded cannot out-match the optimum")
	}
}

func TestBandedAligner(t *testing.T) {
	fn := BandedAligner(16)
	steps := fn(4, 4, strEq("abca", "abca"), DefaultScoring)
	if countOps(steps)[OpMatch] != 4 {
		t.Errorf("adapter misaligned: %v", steps)
	}
}

func BenchmarkBanded500(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	s1 := randSeq(r, 500, "abcdefgh")
	s2 := randSeq(r, 500, "abcdefgh")
	eq := strEq(s1, s2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Banded(len(s1), len(s2), eq, DefaultScoring, 32)
	}
}
