package align

// AffineScoring scores alignments with affine gap penalties: opening a gap
// costs GapOpen+GapExtend, each further blank in the same gap costs only
// GapExtend. Affine penalties concentrate divergent code into fewer,
// longer runs — for function merging that means fewer func_id diamonds for
// the same amount of unmerged code (the paper's §III-C notes alternative
// algorithms trade alignment quality differently).
type AffineScoring struct {
	Match     int
	Mismatch  int
	GapOpen   int // additional cost for the first blank of a run
	GapExtend int // cost per blank
}

// DefaultAffineScoring mirrors DefaultScoring but discourages scattered
// gaps.
var DefaultAffineScoring = AffineScoring{Match: 1, Mismatch: -1, GapOpen: -1, GapExtend: -1}

// Gotoh computes an optimal global alignment under affine gap penalties
// using Gotoh's three-matrix dynamic program, O(n·m) time and traceback
// space.
func Gotoh(n, m int, eq EqFunc, sc AffineScoring) []Step {
	if n == 0 || m == 0 {
		return NeedlemanWunsch(n, m, eq, Scoring{
			Match: sc.Match, Mismatch: sc.Mismatch, Gap: sc.GapExtend,
		})
	}

	const negInf = int32(-1 << 29)
	w := m + 1
	// M[i][j]: best score ending in a match/mismatch column.
	// X[i][j]: best score ending in a gap in B (consuming A[i-1]).
	// Y[i][j]: best score ending in a gap in A (consuming B[j-1]).
	// All six matrices are recycled scratch: the score matrices are fully
	// written (borders in the init loops, the rest in the DP loop), and the
	// traceback never reads the unwritten border cells of tbM because no
	// optimal path enters a negInf score cell.
	M := getInt32((n + 1) * w)
	X := getInt32((n + 1) * w)
	Y := getInt32((n + 1) * w)
	// Traceback: for each matrix, where did the value come from.
	tbM := getBytes((n + 1) * w) // 1=M, 2=X, 3=Y (diagonal predecessor)
	tbX := getBytes((n + 1) * w) // 1=M-open, 2=X-extend
	tbY := getBytes((n + 1) * w) // 1=M-open, 3=Y-extend
	at := func(i, j int) int { return i*w + j }

	open := int32(sc.GapOpen + sc.GapExtend)
	ext := int32(sc.GapExtend)

	M[at(0, 0)] = 0
	X[at(0, 0)] = negInf
	Y[at(0, 0)] = negInf
	for i := 1; i <= n; i++ {
		M[at(i, 0)] = negInf
		Y[at(i, 0)] = negInf
		X[at(i, 0)] = open + int32(i-1)*ext
		tbX[at(i, 0)] = 2
	}
	for j := 1; j <= m; j++ {
		M[at(0, j)] = negInf
		X[at(0, j)] = negInf
		Y[at(0, j)] = open + int32(j-1)*ext
		tbY[at(0, j)] = 3
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := int32(sc.Mismatch)
			if eq(i-1, j-1) {
				sub = int32(sc.Match)
			}
			// M: diagonal step from the best of the three.
			bm, src := M[at(i-1, j-1)], byte(1)
			if X[at(i-1, j-1)] > bm {
				bm, src = X[at(i-1, j-1)], 2
			}
			if Y[at(i-1, j-1)] > bm {
				bm, src = Y[at(i-1, j-1)], 3
			}
			M[at(i, j)] = bm + sub
			tbM[at(i, j)] = src

			// X: consume A[i-1] against a blank.
			xo := M[at(i-1, j)] + open
			xe := X[at(i-1, j)] + ext
			if xo >= xe {
				X[at(i, j)] = xo
				tbX[at(i, j)] = 1
			} else {
				X[at(i, j)] = xe
				tbX[at(i, j)] = 2
			}

			// Y: consume B[j-1] against a blank.
			yo := M[at(i, j-1)] + open
			ye := Y[at(i, j-1)] + ext
			if yo >= ye {
				Y[at(i, j)] = yo
				tbY[at(i, j)] = 1
			} else {
				Y[at(i, j)] = ye
				tbY[at(i, j)] = 3
			}
		}
	}

	// Traceback from the best of the three end states.
	state := byte(1)
	best := M[at(n, m)]
	if X[at(n, m)] > best {
		best, state = X[at(n, m)], 2
	}
	if Y[at(n, m)] > best {
		state = 3
	}

	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case 1:
			op := OpMismatch
			if eq(i-1, j-1) {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			state = tbM[at(i, j)]
			i--
			j--
		case 2:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			state = tbX[at(i, j)]
			i--
		case 3:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			state = tbY[at(i, j)]
			j--
		default:
			panic("align: corrupt gotoh traceback")
		}
	}
	putInt32(M)
	putInt32(X)
	putInt32(Y)
	putBytes(tbM)
	putBytes(tbX)
	putBytes(tbY)
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// AffineScore computes the total affine-gap score of an alignment.
func AffineScore(steps []Step, sc AffineScoring) int {
	total := 0
	prev := Op(-1)
	for _, s := range steps {
		switch s.Op {
		case OpMatch:
			total += sc.Match
		case OpMismatch:
			total += sc.Mismatch
		case OpGapA, OpGapB:
			total += sc.GapExtend
			if s.Op != prev {
				total += sc.GapOpen
			}
		}
		prev = s.Op
	}
	return total
}

// GapRuns counts maximal runs of consecutive gap columns, the quantity
// affine penalties minimize (each run is one potential func_id diamond).
func GapRuns(steps []Step) int {
	runs := 0
	inRun := false
	for _, s := range steps {
		gap := s.Op == OpGapA || s.Op == OpGapB
		if gap && !inRun {
			runs++
		}
		inRun = gap
	}
	return runs
}

// GotohAligner adapts Gotoh to the AlignFunc shape used by the merger: the
// linear Scoring's Gap is used as the extension penalty and one extra gap
// penalty as the opening cost.
func GotohAligner(n, m int, eq EqFunc, sc Scoring) []Step {
	return Gotoh(n, m, eq, AffineScoring{
		Match:     sc.Match,
		Mismatch:  sc.Mismatch,
		GapOpen:   sc.Gap,
		GapExtend: sc.Gap,
	})
}
