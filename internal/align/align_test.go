package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// strEq builds an EqFunc over two strings.
func strEq(a, b string) EqFunc {
	return func(i, j int) bool { return a[i] == b[j] }
}

func alignStrings(t *testing.T, a, b string) []Step {
	t.Helper()
	steps := NeedlemanWunsch(len(a), len(b), strEq(a, b), DefaultScoring)
	if !Validate(steps, len(a), len(b)) {
		t.Fatalf("invalid alignment of %q and %q: %v", a, b, steps)
	}
	return steps
}

func countOps(steps []Step) map[Op]int {
	c := map[Op]int{}
	for _, s := range steps {
		c[s.Op]++
	}
	return c
}

func TestNWIdentical(t *testing.T) {
	steps := alignStrings(t, "hello", "hello")
	c := countOps(steps)
	if c[OpMatch] != 5 || len(steps) != 5 {
		t.Errorf("identical strings should fully match: %v", steps)
	}
}

func TestNWDisjoint(t *testing.T) {
	steps := alignStrings(t, "aaa", "bbb")
	c := countOps(steps)
	if c[OpMatch] != 0 {
		t.Errorf("disjoint strings must not match: %v", steps)
	}
}

func TestNWClassicExample(t *testing.T) {
	// The canonical GATTACA example.
	steps := alignStrings(t, "GCATGCG", "GATTACA")
	c := countOps(steps)
	if c[OpMatch] < 4 {
		t.Errorf("expected at least 4 matches, got %d (%v)", c[OpMatch], steps)
	}
}

func TestNWEmpty(t *testing.T) {
	steps := alignStrings(t, "", "abc")
	if len(steps) != 3 || steps[0].Op != OpGapB {
		t.Errorf("empty A should yield all GapB: %v", steps)
	}
	steps = alignStrings(t, "abc", "")
	if len(steps) != 3 || steps[0].Op != OpGapA {
		t.Errorf("empty B should yield all GapA: %v", steps)
	}
	steps = alignStrings(t, "", "")
	if len(steps) != 0 {
		t.Errorf("empty/empty should be empty: %v", steps)
	}
}

func TestNWSubsequence(t *testing.T) {
	steps := alignStrings(t, "abc", "xaxbxcx")
	c := countOps(steps)
	if c[OpMatch] != 3 {
		t.Errorf("abc should fully embed in xaxbxcx: %v", steps)
	}
}

func TestDecomposeMismatches(t *testing.T) {
	steps := []Step{
		{Op: OpMatch, I: 0, J: 0},
		{Op: OpMismatch, I: 1, J: 1},
		{Op: OpMatch, I: 2, J: 2},
	}
	out := DecomposeMismatches(steps)
	if len(out) != 4 {
		t.Fatalf("want 4 steps, got %v", out)
	}
	if out[1].Op != OpGapA || out[2].Op != OpGapB {
		t.Errorf("mismatch should expand to GapA+GapB: %v", out)
	}
	if !Validate(out, 3, 3) {
		t.Error("decomposed alignment is invalid")
	}
}

func TestValidateRejectsBadAlignments(t *testing.T) {
	// Out-of-order indices.
	bad := []Step{{Op: OpMatch, I: 1, J: 0}, {Op: OpMatch, I: 0, J: 1}}
	if Validate(bad, 2, 2) {
		t.Error("out-of-order alignment accepted")
	}
	// Missing elements.
	short := []Step{{Op: OpMatch, I: 0, J: 0}}
	if Validate(short, 2, 1) {
		t.Error("incomplete alignment accepted")
	}
}

// optimal score via slow recursion for cross-checking on small inputs.
func slowScore(a, b string, sc Scoring) int {
	memo := map[[2]int]int{}
	var rec func(i, j int) int
	rec = func(i, j int) int {
		if i == len(a) {
			return (len(b) - j) * sc.Gap
		}
		if j == len(b) {
			return (len(a) - i) * sc.Gap
		}
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		sub := sc.Mismatch
		if a[i] == b[j] {
			sub = sc.Match
		}
		best := rec(i+1, j+1) + sub
		if v := rec(i+1, j) + sc.Gap; v > best {
			best = v
		}
		if v := rec(i, j+1) + sc.Gap; v > best {
			best = v
		}
		memo[[2]int{i, j}] = best
		return best
	}
	return rec(0, 0)
}

func randSeq(r *rand.Rand, n int, alphabet string) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(buf)
}

func TestNWOptimality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := randSeq(r, r.Intn(12), "abcd")
		b := randSeq(r, r.Intn(12), "abcd")
		steps := NeedlemanWunsch(len(a), len(b), strEq(a, b), DefaultScoring)
		if !Validate(steps, len(a), len(b)) {
			t.Fatalf("invalid alignment of %q, %q", a, b)
		}
		got := Score(steps, DefaultScoring)
		want := slowScore(a, b, DefaultScoring)
		if got != want {
			t.Fatalf("NW score %d != optimal %d for %q, %q", got, want, a, b)
		}
	}
}

func TestHirschbergMatchesNW(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		a := randSeq(r, r.Intn(40), "abc")
		b := randSeq(r, r.Intn(40), "abc")
		h := Hirschberg(len(a), len(b), strEq(a, b), DefaultScoring)
		if !Validate(h, len(a), len(b)) {
			t.Fatalf("hirschberg invalid for %q, %q: %v", a, b, h)
		}
		nw := NeedlemanWunsch(len(a), len(b), strEq(a, b), DefaultScoring)
		if Score(h, DefaultScoring) != Score(nw, DefaultScoring) {
			t.Fatalf("hirschberg score %d != NW %d for %q, %q",
				Score(h, DefaultScoring), Score(nw, DefaultScoring), a, b)
		}
	}
}

func TestHirschbergProperty(t *testing.T) {
	// Property: for any pair of byte strings, Hirschberg produces a valid
	// alignment whose score equals the NW optimum.
	f := func(aRaw, bRaw []byte) bool {
		a := aRaw
		b := bRaw
		if len(a) > 60 {
			a = a[:60]
		}
		if len(b) > 60 {
			b = b[:60]
		}
		eq := func(i, j int) bool { return a[i]%8 == b[j]%8 }
		h := Hirschberg(len(a), len(b), eq, DefaultScoring)
		if !Validate(h, len(a), len(b)) {
			return false
		}
		nw := NeedlemanWunsch(len(a), len(b), eq, DefaultScoring)
		return Score(h, DefaultScoring) == Score(nw, DefaultScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAlignDispatch(t *testing.T) {
	a := randSeq(rand.New(rand.NewSource(3)), 100, "ab")
	b := randSeq(rand.New(rand.NewSource(4)), 100, "ab")
	steps := Align(len(a), len(b), strEq(a, b), DefaultScoring)
	if !Validate(steps, len(a), len(b)) {
		t.Fatal("Align produced invalid alignment")
	}
}

func TestSmithWatermanLocal(t *testing.T) {
	// A shared core surrounded by noise: local alignment should recover
	// exactly the core.
	a := "xxxxCOMMONyyyy"
	b := "ppppppCOMMONq"
	steps := SmithWaterman(len(a), len(b), strEq(a, b), DefaultScoring)
	matches := countOps(steps)[OpMatch]
	if matches != 6 {
		t.Errorf("expected 6 local matches, got %d: %v", matches, steps)
	}
	for _, s := range steps {
		if s.Op == OpMatch && a[s.I] != b[s.J] {
			t.Error("match step aligns unequal elements")
		}
	}
}

func TestSmithWatermanNoSimilarity(t *testing.T) {
	steps := SmithWaterman(3, 3, func(i, j int) bool { return false }, DefaultScoring)
	if steps != nil {
		t.Errorf("expected nil for dissimilar inputs, got %v", steps)
	}
}

func TestScoreComputation(t *testing.T) {
	steps := []Step{
		{Op: OpMatch}, {Op: OpMatch}, {Op: OpMismatch}, {Op: OpGapA}, {Op: OpGapB},
	}
	if got := Score(steps, DefaultScoring); got != 2-1-1-1 {
		t.Errorf("Score = %d, want -1", got)
	}
}

func BenchmarkNeedlemanWunsch500(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	s1 := randSeq(r, 500, "abcdefgh")
	s2 := randSeq(r, 500, "abcdefgh")
	eq := strEq(s1, s2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NeedlemanWunsch(len(s1), len(s2), eq, DefaultScoring)
	}
}

func BenchmarkHirschberg500(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	s1 := randSeq(r, 500, "abcdefgh")
	s2 := randSeq(r, 500, "abcdefgh")
	eq := strEq(s1, s2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hirschberg(len(s1), len(s2), eq, DefaultScoring)
	}
}
