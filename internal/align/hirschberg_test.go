package align

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHirschbergCodedTwinProperty is the core property of the linear-space
// variant: on random sequences its alignments are valid and score-optimal
// (equal to the full-matrix Needleman–Wunsch score), and the coded twin
// reproduces the closure result bit for bit. Needleman–Wunsch and Hirschberg
// may pick different co-optimal paths, so scores are compared, not steps.
func TestHirschbergCodedTwinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(70)
		m := rng.Intn(70)
		alphabet := 2 + rng.Intn(6)
		a := randCodes(rng, n, alphabet)
		b := randCodes(rng, m, alphabet)
		eq := codesEq(a, b)

		h := Hirschberg(n, m, eq, DefaultScoring)
		if !Validate(h, n, m) {
			t.Fatalf("trial %d: invalid Hirschberg alignment (n=%d m=%d)", trial, n, m)
		}
		nw := NeedlemanWunsch(n, m, eq, DefaultScoring)
		if hs, ns := Score(h, DefaultScoring), Score(nw, DefaultScoring); hs != ns {
			t.Fatalf("trial %d: Hirschberg score %d != NW score %d (n=%d m=%d)",
				trial, hs, ns, n, m)
		}

		hc := HirschbergCodes(a, b, DefaultScoring)
		if len(hc) != len(h) {
			t.Fatalf("trial %d: coded Hirschberg length %d != closure %d", trial, len(hc), len(h))
		}
		for i := range h {
			if h[i] != hc[i] {
				t.Fatalf("trial %d: coded Hirschberg diverges at step %d: %v vs %v",
					trial, i, h[i], hc[i])
			}
		}
	}
}

// TestHirschbergPooledBuffersConcurrent runs many alignments concurrently so
// the sync.Pool scratch rows are constantly recycled across goroutines; under
// -race this catches any sharing of a pooled buffer between two live
// alignments, and the score check catches reuse of stale row contents.
func TestHirschbergPooledBuffersConcurrent(t *testing.T) {
	type job struct {
		a, b []uint32
		want int
	}
	rng := rand.New(rand.NewSource(31))
	jobs := make([]job, 48)
	for i := range jobs {
		a := randCodes(rng, 20+rng.Intn(60), 4)
		b := randCodes(rng, 20+rng.Intn(60), 4)
		want := Score(NeedlemanWunsch(len(a), len(b), codesEq(a, b), DefaultScoring), DefaultScoring)
		jobs[i] = job{a: a, b: b, want: want}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for _, j := range jobs {
					var steps []Step
					if (w+rep)%2 == 0 {
						steps = Hirschberg(len(j.a), len(j.b), codesEq(j.a, j.b), DefaultScoring)
					} else {
						steps = HirschbergCodes(j.a, j.b, DefaultScoring)
					}
					if !Validate(steps, len(j.a), len(j.b)) {
						t.Errorf("worker %d: invalid alignment", w)
						return
					}
					if got := Score(steps, DefaultScoring); got != j.want {
						t.Errorf("worker %d: score %d, want %d (stale pooled row?)", w, got, j.want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestHirschbergDegenerate pins the base cases the recursion bottoms out on.
func TestHirschbergDegenerate(t *testing.T) {
	cases := []struct{ a, b []uint32 }{
		{nil, nil},
		{[]uint32{1}, nil},
		{nil, []uint32{1, 2, 3}},
		{[]uint32{1}, []uint32{1}},
		{[]uint32{1}, []uint32{2, 1, 2}},
		{[]uint32{5, 5, 5}, []uint32{5}},
	}
	for _, c := range cases {
		h := Hirschberg(len(c.a), len(c.b), codesEq(c.a, c.b), DefaultScoring)
		if !Validate(h, len(c.a), len(c.b)) {
			t.Errorf("invalid alignment for %v vs %v", c.a, c.b)
		}
		hc := HirschbergCodes(c.a, c.b, DefaultScoring)
		if len(h) != len(hc) {
			t.Errorf("coded twin diverges for %v vs %v", c.a, c.b)
			continue
		}
		for i := range h {
			if h[i] != hc[i] {
				t.Errorf("coded twin diverges at step %d for %v vs %v", i, c.a, c.b)
				break
			}
		}
	}
}
