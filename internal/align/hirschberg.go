package align

// Hirschberg computes an optimal global alignment in O(n+m) space using
// Hirschberg's divide-and-conquer refinement of Needleman–Wunsch. It
// produces an alignment with the same score as NeedlemanWunsch (the exact
// column sequence may differ among co-optimal alignments).
func Hirschberg(n, m int, eq EqFunc, sc Scoring) []Step {
	var out []Step
	hirschRec(0, n, 0, m, eq, sc, &out)
	return out
}

func hirschRec(aLo, aHi, bLo, bHi int, eq EqFunc, sc Scoring, out *[]Step) {
	n, m := aHi-aLo, bHi-bLo
	switch {
	case n == 0:
		for j := bLo; j < bHi; j++ {
			*out = append(*out, Step{Op: OpGapB, I: -1, J: j})
		}
		return
	case m == 0:
		for i := aLo; i < aHi; i++ {
			*out = append(*out, Step{Op: OpGapA, I: i, J: -1})
		}
		return
	case n == 1 || m == 1:
		// Small enough for direct DP; translate indices.
		steps := NeedlemanWunsch(n, m, func(i, j int) bool {
			return eq(aLo+i, bLo+j)
		}, sc)
		for _, s := range steps {
			if s.I >= 0 {
				s.I += aLo
			}
			if s.J >= 0 {
				s.J += bLo
			}
			*out = append(*out, s)
		}
		return
	}

	mid := aLo + n/2
	// Forward scores for A[aLo:mid] against prefixes of B.
	scoreL := nwLastRow(aLo, mid, bLo, bHi, eq, sc, false)
	// Backward scores for A[mid:aHi] against suffixes of B.
	scoreR := nwLastRow(mid, aHi, bLo, bHi, eq, sc, true)

	// Choose the split point of B maximizing total score.
	best, bestJ := scoreL[0]+scoreR[m], 0
	for j := 1; j <= m; j++ {
		if s := scoreL[j] + scoreR[m-j]; s > best {
			best, bestJ = s, j
		}
	}
	putInt32(scoreL)
	putInt32(scoreR)
	hirschRec(aLo, mid, bLo, bLo+bestJ, eq, sc, out)
	hirschRec(mid, aHi, bLo+bestJ, bHi, eq, sc, out)
}

// nwLastRow computes the final row of the NW score matrix for
// A[aLo:aHi] × B[bLo:bHi]. When rev is true, both ranges are processed in
// reverse (suffix alignment scores). The returned row is pooled scratch —
// the caller passes it to putInt32 when done; the second scratch row is
// recycled here.
func nwLastRow(aLo, aHi, bLo, bHi int, eq EqFunc, sc Scoring, rev bool) []int32 {
	n, m := aHi-aLo, bHi-bLo
	prev := getInt32(m + 1)
	cur := getInt32(m + 1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = int32(j * sc.Gap)
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(i * sc.Gap)
		for j := 1; j <= m; j++ {
			var ai, bj int
			if rev {
				ai, bj = aHi-i, bHi-j
			} else {
				ai, bj = aLo+i-1, bLo+j-1
			}
			sub := sc.Mismatch
			if eq(ai, bj) {
				sub = sc.Match
			}
			best := prev[j-1] + int32(sub)
			if up := prev[j] + int32(sc.Gap); up > best {
				best = up
			}
			if left := cur[j-1] + int32(sc.Gap); left > best {
				best = left
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	putInt32(cur)
	return prev
}

// SmithWaterman computes an optimal local alignment: the highest-scoring
// aligned region between the two sequences, ignoring everything outside it.
// The returned steps cover contiguous subranges of each sequence; Validate
// does not apply to local alignments.
func SmithWaterman(n, m int, eq EqFunc, sc Scoring) []Step {
	if n == 0 || m == 0 {
		return nil
	}
	score := make([]int32, (n+1)*(m+1))
	dirs := make([]byte, (n+1)*(m+1))
	at := func(i, j int) int { return i*(m+1) + j }

	var best int32
	bi, bj := 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if eq(i-1, j-1) {
				sub = sc.Match
			}
			v, d := score[at(i-1, j-1)]+int32(sub), dirDiag
			if up := score[at(i-1, j)] + int32(sc.Gap); up > v {
				v, d = up, dirUp
			}
			if left := score[at(i, j-1)] + int32(sc.Gap); left > v {
				v, d = left, dirLeft
			}
			if v < 0 {
				v, d = 0, 0
			}
			score[at(i, j)] = v
			dirs[at(i, j)] = d
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return nil
	}

	var rev []Step
	i, j := bi, bj
	for i > 0 && j > 0 && score[at(i, j)] > 0 {
		switch dirs[at(i, j)] {
		case dirDiag:
			op := OpMismatch
			if eq(i-1, j-1) {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			i--
			j--
		case dirUp:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			i--
		case dirLeft:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			j--
		default:
			i, j = 0, 0
		}
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}
