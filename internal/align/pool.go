package align

import "sync"

// Whole-module exploration runs thousands of merge attempts, and every
// attempt allocates dynamic-programming scratch proportional to the product
// (or sum) of the sequence lengths. The pools below recycle that scratch
// across attempts — and across the goroutines of a parallel evaluation wave.
//
// Pooled buffers come back dirty: each algorithm explicitly writes every
// cell it will later read (see the prev[0] and border initializations in
// the DP loops) instead of relying on make() zeroing. SmithWaterman is the
// one algorithm whose recurrence depends on an all-zero initial matrix; it
// is used only by the alignment ablation, so it keeps plain allocation.
var (
	i32Pool  sync.Pool // *[]int32
	bytePool sync.Pool // *[]byte
)

// getInt32 returns an int32 scratch slice of length n with arbitrary
// contents.
func getInt32(n int) []int32 {
	if p, ok := i32Pool.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

// putInt32 recycles a slice obtained from getInt32.
func putInt32(s []int32) {
	if cap(s) == 0 {
		return
	}
	i32Pool.Put(&s)
}

// getBytes returns a byte scratch slice of length n with arbitrary contents.
func getBytes(n int) []byte {
	if p, ok := bytePool.Get().(*[]byte); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

// putBytes recycles a slice obtained from getBytes.
func putBytes(s []byte) {
	if cap(s) == 0 {
		return
	}
	bytePool.Put(&s)
}
