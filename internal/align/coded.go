package align

// Coded kernels: the same alignment algorithms specialized to pre-encoded
// sequences of equivalence-class codes (internal/encode). The closure kernels
// call an EqFunc per dynamic-programming cell — for IR sequences that is a
// structural instruction walk behind an indirect call, millions of times per
// merge attempt. Here equivalence is one integer comparison on a flat slice,
// which the compiler keeps in registers and branch predictors resolve.
//
// Every coded kernel is a line-for-line twin of its closure counterpart —
// same recurrences, same deterministic tie-breaks (diagonal, then up, then
// left; gap-open preferred over extend on ties), same traceback order, same
// pooled scratch discipline — so for any code assignment with
// codes(a)[i] == codes(b)[j] ⇔ eq(i, j), the returned []Step is
// bit-identical to the closure kernel's. The cross-check tests in
// coded_test.go and the explore-level kernel experiment enforce this.

// CodedFunc is the signature of a coded-sequence global-alignment algorithm,
// the fast-path analogue of core.AlignFunc.
type CodedFunc func(a, b []uint32, sc Scoring) []Step

// AlignCodes is the coded analogue of Align: it routes between direct
// Needleman–Wunsch and linear-space Hirschberg with the same size rule, so
// the two dispatchers always pick twin kernels for the same problem.
func AlignCodes(a, b []uint32, sc Scoring) []Step {
	if useDirect(len(a), len(b)) {
		return NeedlemanWunschCodes(a, b, sc)
	}
	return HirschbergCodes(a, b, sc)
}

// NeedlemanWunschCodes is the coded twin of NeedlemanWunsch.
func NeedlemanWunschCodes(a, b []uint32, sc Scoring) []Step {
	n, m := len(a), len(b)
	if n == 0 {
		steps := make([]Step, 0, m)
		for j := 0; j < m; j++ {
			steps = append(steps, Step{Op: OpGapB, I: -1, J: j})
		}
		return steps
	}
	if m == 0 {
		steps := make([]Step, 0, n)
		for i := 0; i < n; i++ {
			steps = append(steps, Step{Op: OpGapA, I: i, J: -1})
		}
		return steps
	}

	// Same scratch discipline as the closure kernel: every cell the
	// traceback can reach is written before it is read, so dirty pooled
	// buffers are harmless.
	prev := getInt32(m + 1)
	cur := getInt32(m + 1)
	dirs := getBytes((n + 1) * (m + 1))

	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = int32(j * sc.Gap)
		dirs[j] = dirLeft
	}
	mat, mis, gap := int32(sc.Match), int32(sc.Mismatch), int32(sc.Gap)
	for i := 1; i <= n; i++ {
		// pd and left carry prev[j-1] and cur[j-1] in registers — the same
		// values the closure kernel re-reads from the rows each cell — and
		// the re-slicing lets the compiler drop the inner bounds checks.
		row := dirs[i*(m+1):][: m+1 : m+1]
		prevR := prev[: m+1 : m+1]
		curR := cur[: m+1 : m+1]
		ai := a[i-1]
		pd := prevR[0]
		left := int32(i) * gap
		curR[0] = left
		row[0] = dirUp
		for j := 1; j <= m; j++ {
			pj := prevR[j]
			sub := mis
			if ai == b[j-1] {
				sub = mat
			}
			best, dir := pd+sub, dirDiag
			if up := pj + gap; up > best {
				best, dir = up, dirUp
			}
			if lf := left + gap; lf > best {
				best, dir = lf, dirLeft
			}
			curR[j] = best
			row[j] = dir
			pd = pj
			left = best
		}
		prev, cur = cur, prev
	}

	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		switch dirs[i*(m+1)+j] {
		case dirDiag:
			op := OpMismatch
			if a[i-1] == b[j-1] {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			i--
			j--
		case dirUp:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			i--
		case dirLeft:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			j--
		default:
			panic("align: corrupt traceback")
		}
	}
	putInt32(prev)
	putInt32(cur)
	putBytes(dirs)
	for x, y := 0, len(rev)-1; x < y; x, y = x+1, y-1 {
		rev[x], rev[y] = rev[y], rev[x]
	}
	return rev
}

// HirschbergCodes is the coded twin of Hirschberg: O(n+m) space, identical
// split choices (the first maximizing split wins), so identical steps.
func HirschbergCodes(a, b []uint32, sc Scoring) []Step {
	var out []Step
	hirschRecCodes(0, len(a), 0, len(b), a, b, sc, &out)
	return out
}

func hirschRecCodes(aLo, aHi, bLo, bHi int, a, b []uint32, sc Scoring, out *[]Step) {
	n, m := aHi-aLo, bHi-bLo
	switch {
	case n == 0:
		for j := bLo; j < bHi; j++ {
			*out = append(*out, Step{Op: OpGapB, I: -1, J: j})
		}
		return
	case m == 0:
		for i := aLo; i < aHi; i++ {
			*out = append(*out, Step{Op: OpGapA, I: i, J: -1})
		}
		return
	case n == 1 || m == 1:
		steps := NeedlemanWunschCodes(a[aLo:aHi], b[bLo:bHi], sc)
		for _, s := range steps {
			if s.I >= 0 {
				s.I += aLo
			}
			if s.J >= 0 {
				s.J += bLo
			}
			*out = append(*out, s)
		}
		return
	}

	mid := aLo + n/2
	scoreL := nwLastRowCodes(aLo, mid, bLo, bHi, a, b, sc, false)
	scoreR := nwLastRowCodes(mid, aHi, bLo, bHi, a, b, sc, true)

	best, bestJ := scoreL[0]+scoreR[m], 0
	for j := 1; j <= m; j++ {
		if s := scoreL[j] + scoreR[m-j]; s > best {
			best, bestJ = s, j
		}
	}
	putInt32(scoreL)
	putInt32(scoreR)
	hirschRecCodes(aLo, mid, bLo, bLo+bestJ, a, b, sc, out)
	hirschRecCodes(mid, aHi, bLo+bestJ, bHi, a, b, sc, out)
}

// nwLastRowCodes is the coded twin of nwLastRow. The returned row is pooled
// scratch — the caller passes it to putInt32 when done.
func nwLastRowCodes(aLo, aHi, bLo, bHi int, a, b []uint32, sc Scoring, rev bool) []int32 {
	n, m := aHi-aLo, bHi-bLo
	prev := getInt32(m + 1)
	cur := getInt32(m + 1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = int32(j * sc.Gap)
	}
	// bSeg is the band of b this recursion reads, oriented so the inner loop
	// indexes it forward in both directions — the direction branch is hoisted
	// out of the row loop and the slice bounds let the compiler elide the
	// inner bounds checks. pd and left carry prev[j-1] and cur[j-1] in
	// registers, exactly the values the closure twin re-reads per cell.
	bSeg := b[bLo:bHi]
	mat, mis, gap := int32(sc.Match), int32(sc.Mismatch), int32(sc.Gap)
	for i := 1; i <= n; i++ {
		var ai uint32
		if rev {
			ai = a[aHi-i]
		} else {
			ai = a[aLo+i-1]
		}
		prevR := prev[: m+1 : m+1]
		curR := cur[: m+1 : m+1]
		pd := prevR[0]
		left := int32(i) * gap
		curR[0] = left
		for j := 1; j <= m; j++ {
			pj := prevR[j]
			var bj uint32
			if rev {
				bj = bSeg[m-j]
			} else {
				bj = bSeg[j-1]
			}
			sub := mis
			if ai == bj {
				sub = mat
			}
			best := pd + sub
			if up := pj + gap; up > best {
				best = up
			}
			if lf := left + gap; lf > best {
				best = lf
			}
			curR[j] = best
			pd = pj
			left = best
		}
		prev, cur = cur, prev
	}
	putInt32(cur)
	return prev
}

// GotohCodes is the coded twin of Gotoh (affine gap penalties, three-matrix
// dynamic program with the same open-over-extend tie preference).
func GotohCodes(a, b []uint32, sc AffineScoring) []Step {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return NeedlemanWunschCodes(a, b, Scoring{
			Match: sc.Match, Mismatch: sc.Mismatch, Gap: sc.GapExtend,
		})
	}

	const negInf = int32(-1 << 29)
	w := m + 1
	M := getInt32((n + 1) * w)
	X := getInt32((n + 1) * w)
	Y := getInt32((n + 1) * w)
	tbM := getBytes((n + 1) * w)
	tbX := getBytes((n + 1) * w)
	tbY := getBytes((n + 1) * w)
	at := func(i, j int) int { return i*w + j }

	open := int32(sc.GapOpen + sc.GapExtend)
	ext := int32(sc.GapExtend)

	M[at(0, 0)] = 0
	X[at(0, 0)] = negInf
	Y[at(0, 0)] = negInf
	for i := 1; i <= n; i++ {
		M[at(i, 0)] = negInf
		Y[at(i, 0)] = negInf
		X[at(i, 0)] = open + int32(i-1)*ext
		tbX[at(i, 0)] = 2
	}
	for j := 1; j <= m; j++ {
		M[at(0, j)] = negInf
		X[at(0, j)] = negInf
		Y[at(0, j)] = open + int32(j-1)*ext
		tbY[at(0, j)] = 3
	}

	mat, mis := int32(sc.Match), int32(sc.Mismatch)
	for i := 1; i <= n; i++ {
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			sub := mis
			if ai == b[j-1] {
				sub = mat
			}
			bm, src := M[at(i-1, j-1)], byte(1)
			if X[at(i-1, j-1)] > bm {
				bm, src = X[at(i-1, j-1)], 2
			}
			if Y[at(i-1, j-1)] > bm {
				bm, src = Y[at(i-1, j-1)], 3
			}
			M[at(i, j)] = bm + sub
			tbM[at(i, j)] = src

			xo := M[at(i-1, j)] + open
			xe := X[at(i-1, j)] + ext
			if xo >= xe {
				X[at(i, j)] = xo
				tbX[at(i, j)] = 1
			} else {
				X[at(i, j)] = xe
				tbX[at(i, j)] = 2
			}

			yo := M[at(i, j-1)] + open
			ye := Y[at(i, j-1)] + ext
			if yo >= ye {
				Y[at(i, j)] = yo
				tbY[at(i, j)] = 1
			} else {
				Y[at(i, j)] = ye
				tbY[at(i, j)] = 3
			}
		}
	}

	state := byte(1)
	best := M[at(n, m)]
	if X[at(n, m)] > best {
		best, state = X[at(n, m)], 2
	}
	if Y[at(n, m)] > best {
		state = 3
	}

	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case 1:
			op := OpMismatch
			if a[i-1] == b[j-1] {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			state = tbM[at(i, j)]
			i--
			j--
		case 2:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			state = tbX[at(i, j)]
			i--
		case 3:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			state = tbY[at(i, j)]
			j--
		default:
			panic("align: corrupt gotoh traceback")
		}
	}
	putInt32(M)
	putInt32(X)
	putInt32(Y)
	putBytes(tbM)
	putBytes(tbX)
	putBytes(tbY)
	for x, y := 0, len(rev)-1; x < y; x, y = x+1, y-1 {
		rev[x], rev[y] = rev[y], rev[x]
	}
	return rev
}

// GotohAlignerCodes is the coded twin of GotohAligner: linear Scoring's Gap
// as the extension penalty and one extra gap penalty as the opening cost.
func GotohAlignerCodes(a, b []uint32, sc Scoring) []Step {
	return GotohCodes(a, b, AffineScoring{
		Match:     sc.Match,
		Mismatch:  sc.Mismatch,
		GapOpen:   sc.Gap,
		GapExtend: sc.Gap,
	})
}

// BandedCodes is the coded twin of Banded, with the same band widening and
// the same fallbacks (direct NW when the band covers the whole matrix, the
// standard dispatcher when the banded matrix would be oversized).
func BandedCodes(a, b []uint32, sc Scoring, band int) []Step {
	n, m := len(a), len(b)
	if band <= 0 {
		band = 1
	}
	if n == 0 || m == 0 {
		return NeedlemanWunschCodes(a, b, sc)
	}
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if band < diff+1 {
		band = diff + 1
	}
	if band >= n+m {
		return NeedlemanWunschCodes(a, b, sc)
	}
	width := 2*band + 1
	if n+1 > maxDirectCells/width {
		return AlignCodes(a, b, sc)
	}

	const negInf = int32(-1 << 29)
	score := getInt32((n + 1) * width)
	dirs := getBytes((n + 1) * width)
	at := func(i, k int) int { return i*width + k }
	jOf := func(i, k int) int { return i - band + k }
	kOf := func(i, j int) int { return j - i + band }

	for i := 0; i <= n; i++ {
		for k := 0; k < width; k++ {
			score[at(i, k)] = negInf
		}
	}
	score[at(0, kOf(0, 0))] = 0
	for j := 1; j <= m && kOf(0, j) < width; j++ {
		score[at(0, kOf(0, j))] = int32(j * sc.Gap)
		dirs[at(0, kOf(0, j))] = dirLeft
	}

	for i := 1; i <= n; i++ {
		for k := 0; k < width; k++ {
			j := jOf(i, k)
			if j < 0 || j > m {
				continue
			}
			best, dir := negInf, byte(0)
			if j == 0 {
				best, dir = int32(i*sc.Gap), dirUp
			}
			if i > 0 && j > 0 {
				if prev := score[at(i-1, k)]; prev > negInf {
					sub := sc.Mismatch
					if a[i-1] == b[j-1] {
						sub = sc.Match
					}
					if v := prev + int32(sub); v > best {
						best, dir = v, dirDiag
					}
				}
			}
			if k+1 < width {
				if prev := score[at(i-1, k+1)]; prev > negInf {
					if v := prev + int32(sc.Gap); v > best {
						best, dir = v, dirUp
					}
				}
			}
			if k-1 >= 0 {
				if prev := score[at(i, k-1)]; prev > negInf {
					if v := prev + int32(sc.Gap); v > best {
						best, dir = v, dirLeft
					}
				}
			}
			if dir != 0 {
				score[at(i, k)] = best
				dirs[at(i, k)] = dir
			}
		}
	}

	var rev []Step
	i, j := n, m
	for i > 0 || j > 0 {
		k := kOf(i, j)
		if k < 0 || k >= width {
			panic("align: banded traceback left the band")
		}
		switch dirs[at(i, k)] {
		case dirDiag:
			op := OpMismatch
			if a[i-1] == b[j-1] {
				op = OpMatch
			}
			rev = append(rev, Step{Op: op, I: i - 1, J: j - 1})
			i--
			j--
		case dirUp:
			rev = append(rev, Step{Op: OpGapA, I: i - 1, J: -1})
			i--
		case dirLeft:
			rev = append(rev, Step{Op: OpGapB, I: -1, J: j - 1})
			j--
		default:
			panic("align: corrupt banded traceback")
		}
	}
	putInt32(score)
	putBytes(dirs)
	for x, y := 0, len(rev)-1; x < y; x, y = x+1, y-1 {
		rev[x], rev[y] = rev[y], rev[x]
	}
	return rev
}

// BandedAlignerCodes returns a CodedFunc-shaped adapter with a fixed band,
// the coded twin of BandedAligner.
func BandedAlignerCodes(band int) CodedFunc {
	return func(a, b []uint32, sc Scoring) []Step {
		return BandedCodes(a, b, sc, band)
	}
}
