package linearize

import (
	"testing"

	"fmsa/internal/ir"
)

const diamondSrc = `
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %then, label %else
then:
  %a = add i32 1, 2
  br label %join
else:
  %b = add i32 3, 4
  br label %join
join:
  ret i32 0
}
`

func parse(t *testing.T, src string) *ir.Func {
	t.Helper()
	m, err := ir.ParseModule("l", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			return f
		}
	}
	t.Fatal("no definition")
	return nil
}

func TestLinearizeStructure(t *testing.T) {
	f := parse(t, diamondSrc)
	seq := Linearize(f)
	// 4 labels + 6 instructions.
	if len(seq) != 10 {
		t.Fatalf("sequence length = %d, want 10", len(seq))
	}
	if !seq[0].IsLabel() || seq[0].Block != f.Entry() {
		t.Error("sequence must start with the entry label")
	}
	// Each label must be followed by exactly its block's instructions in
	// order.
	i := 0
	for i < len(seq) {
		if !seq[i].IsLabel() {
			t.Fatalf("expected label at %d", i)
		}
		b := seq[i].Block
		i++
		for _, in := range b.Insts {
			if seq[i].Inst != in {
				t.Fatalf("instruction order broken in block %s", b.Name())
			}
			i++
		}
	}
}

func TestLinearizeRPOOrder(t *testing.T) {
	f := parse(t, diamondSrc)
	seq := Linearize(f)
	var labels []string
	for _, e := range seq {
		if e.IsLabel() {
			labels = append(labels, e.Block.Name())
		}
	}
	want := []string{"entry", "then", "else", "join"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("RPO label order = %v, want %v", labels, want)
		}
	}
}

func TestLinearizeSkipsUnreachable(t *testing.T) {
	f := parse(t, `
define void @f() {
entry:
  ret void
dead:
  ret void
}
`)
	seq := Linearize(f)
	for _, e := range seq {
		if e.IsLabel() && e.Block.Name() == "dead" {
			t.Error("unreachable block linearized")
		}
	}
	if len(seq) != 2 {
		t.Errorf("sequence length = %d, want 2", len(seq))
	}
}

func TestOrdersDiffer(t *testing.T) {
	// A function whose layout order differs from RPO.
	f := parse(t, `
define void @f(i1 %c) {
entry:
  br i1 %c, label %b, label %a
a:
  br label %end
b:
  br label %end
end:
  ret void
}
`)
	rpo := LinearizeOrder(f, OrderRPO)
	layout := LinearizeOrder(f, OrderLayout)
	dfs := LinearizeOrder(f, OrderDFS)
	if len(rpo) != len(layout) || len(rpo) != len(dfs) {
		t.Fatal("orders must cover the same entries")
	}
	labelSeq := func(seq []Entry) string {
		s := ""
		for _, e := range seq {
			if e.IsLabel() {
				s += e.Block.Name() + ";"
			}
		}
		return s
	}
	if labelSeq(rpo) == labelSeq(layout) {
		t.Error("expected RPO and layout order to differ on this CFG")
	}
	if labelSeq(rpo) != "entry;b;a;end;" {
		t.Errorf("RPO order = %s", labelSeq(rpo))
	}
	if labelSeq(layout) != "entry;a;b;end;" {
		t.Errorf("layout order = %s", labelSeq(layout))
	}
}

func TestOrderStrings(t *testing.T) {
	if OrderRPO.String() != "rpo" || OrderDFS.String() != "dfs" || OrderLayout.String() != "layout" {
		t.Error("order names wrong")
	}
}

func TestDeclarationLinearizesEmpty(t *testing.T) {
	m, err := ir.ParseModule("l", "declare void @d()")
	if err != nil {
		t.Fatal(err)
	}
	if seq := Linearize(m.FuncByName("d")); len(seq) != 0 {
		t.Errorf("declaration sequence length = %d, want 0", len(seq))
	}
}
