// Package linearize flattens function CFGs into sequences of labels and
// instructions, the representation consumed by sequence alignment
// (paper §III-B). The traversal order does not affect correctness of the
// merge, only its effectiveness; the paper empirically chose reverse
// post-order with canonical successor ordering, which is the default here.
package linearize

import (
	"sync"

	"fmsa/internal/ir"
)

// Entry is one element of a linearized function: either a block label or an
// instruction. Exactly one of Block and Inst is non-nil.
type Entry struct {
	Block *ir.Block
	Inst  *ir.Inst
}

// IsLabel reports whether the entry is a block label.
func (e Entry) IsLabel() bool { return e.Block != nil }

// Order selects the block traversal order used for linearization.
type Order int

// Traversal orders. OrderRPO is the paper's choice; the others exist for the
// linearization-order ablation study.
const (
	// OrderRPO is reverse post-order with canonical successor ordering.
	OrderRPO Order = iota
	// OrderDFS is depth-first preorder from the entry block.
	OrderDFS
	// OrderLayout is the syntactic block order of the function body.
	OrderLayout
)

// String returns the name of the order.
func (o Order) String() string {
	switch o {
	case OrderRPO:
		return "rpo"
	case OrderDFS:
		return "dfs"
	case OrderLayout:
		return "layout"
	default:
		return "unknown"
	}
}

// Linearize flattens f using reverse post-order traversal.
func Linearize(f *ir.Func) []Entry {
	return LinearizeOrder(f, OrderRPO)
}

// LinearizeOrder flattens f using the given traversal order. Each reachable
// block contributes its label followed by its instructions in block order;
// CFG edges remain implicit in branch operands (paper §III-B, Fig. 4).
func LinearizeOrder(f *ir.Func, order Order) []Entry {
	var blocks []*ir.Block
	switch order {
	case OrderRPO:
		blocks = ir.ReversePostOrder(f)
	case OrderDFS:
		blocks = dfsOrder(f)
	case OrderLayout:
		blocks = reachableInLayout(f)
	default:
		panic("linearize: unknown order")
	}
	n := len(blocks)
	for _, b := range blocks {
		n += len(b.Insts)
	}
	seq := getSeq(n)
	for _, b := range blocks {
		seq = append(seq, Entry{Block: b})
		for _, in := range b.Insts {
			seq = append(seq, Entry{Inst: in})
		}
	}
	return seq
}

// seqPool recycles linearization buffers across merge attempts. Exploration
// linearizes two functions per attempt, thousands of times per module;
// recycling the backing arrays removes that allocation churn. Callers that
// keep the sequence (visualization, ablation measurements) simply never
// recycle it.
var seqPool sync.Pool // *[]Entry

func getSeq(n int) []Entry {
	if p, ok := seqPool.Get().(*[]Entry); ok && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]Entry, 0, n)
}

// Recycle returns a sequence produced by Linearize or LinearizeOrder to the
// scratch pool. The caller must not touch seq afterwards. Entries are
// cleared first so pooled scratch does not pin IR objects against garbage
// collection.
func Recycle(seq []Entry) {
	if cap(seq) == 0 {
		return
	}
	seq = seq[:cap(seq)]
	for i := range seq {
		seq[i] = Entry{}
	}
	seq = seq[:0]
	seqPool.Put(&seq)
}

func dfsOrder(f *ir.Func) []*ir.Block {
	if f.IsDecl() {
		return nil
	}
	seen := map[*ir.Block]bool{}
	var order []*ir.Block
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		order = append(order, b)
		for _, s := range b.Successors() {
			visit(s)
		}
	}
	visit(f.Entry())
	return order
}

func reachableInLayout(f *ir.Func) []*ir.Block {
	if f.IsDecl() {
		return nil
	}
	reach := map[*ir.Block]bool{}
	var mark func(b *ir.Block)
	mark = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Successors() {
			mark(s)
		}
	}
	mark(f.Entry())
	var order []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			order = append(order, b)
		}
	}
	return order
}
