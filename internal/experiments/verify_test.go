package experiments

import (
	"testing"

	"fmsa/internal/tti"
)

func TestVerifySweepCleanOnTinyProfiles(t *testing.T) {
	rows, err := VerifySweep(tinyProfiles(), tti.X86{}, VerifyConfig{
		Workers: 2, Runs: 1, Threshold: 2,
	})
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if len(rows) != 3 { // two corpora + aggregate
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows[:2] {
		if r.Experiment != "verify" {
			t.Errorf("%s: experiment = %q", r.Corpus, r.Experiment)
		}
		if r.PostParseDiags != 0 || r.PostWireDiags != 0 || r.PostLinkDiags != 0 || r.PostMergeDiags != 0 {
			t.Errorf("%s: nonzero boundary diagnostics: %+v", r.Corpus, r)
		}
		if !r.BitIdentical {
			t.Errorf("%s: decisions diverge: %s", r.Corpus, r.Detail)
		}
		if r.VerifiedFuncs <= 0 {
			t.Errorf("%s: no functions verified", r.Corpus)
		}
	}
	agg := rows[2]
	if agg.Corpus != "aggregate" || agg.NsOff <= 0 || agg.NsFast <= 0 {
		t.Errorf("aggregate row malformed: %+v", agg)
	}
}

func TestVerifySweepSingleProfile(t *testing.T) {
	rows, err := VerifySweep(tinyProfiles()[:1], tti.X86{}, VerifyConfig{
		Workers: 1, Runs: 2, Threshold: 2,
	})
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if len(rows) != 2 { // one corpus + aggregate
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	agg := rows[len(rows)-1]
	if agg.Corpus != "aggregate" || agg.Runs != 2 {
		t.Errorf("aggregate row malformed: %+v", agg)
	}
}
