package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// VerifyResult is the machine-readable summary of one corpus's verification
// sweep, serialized as a JSON line by cmd/fmsa-bench -exp verify. Per-corpus
// rows carry the boundary diagnostic counts and the decision-invariance
// verdict; the trailing "aggregate" row carries the fast-level overhead
// measurement the sweep gates on.
type VerifyResult struct {
	Experiment string `json:"experiment"` // always "verify"
	// Corpus names the checked corpus, or "aggregate" for the overhead row.
	Corpus string `json:"corpus"`
	// Funcs and Insts size the corpus module.
	Funcs int `json:"funcs,omitempty"`
	Insts int `json:"insts,omitempty"`
	// Diagnostic counts at each pipeline boundary, all at the full level:
	// after print→reparse, after a wire encode/decode round trip, after
	// split into translation units and relinking, and after the merging
	// pipeline (in-pipeline gates plus the final module pass).
	PostParseDiags int `json:"post_parse_diags"`
	PostWireDiags  int `json:"post_wire_diags"`
	PostLinkDiags  int `json:"post_link_diags"`
	PostMergeDiags int `json:"post_merge_diags"`
	// VerifiedFuncs counts functions the in-pipeline gates checked.
	VerifiedFuncs int64 `json:"verified_funcs,omitempty"`
	// BitIdentical reports that exploring with verification off and with
	// full verification commits the same merge records and produces the
	// same final module text — the gates are recording-only by contract.
	BitIdentical bool `json:"bit_identical"`
	// Detail names the first divergence or diagnostic when something broke.
	Detail string `json:"detail,omitempty"`
	// Aggregate-row fields: fastest whole-suite exploration wall clock with
	// verification off and at the fast level, across Runs repetitions, and
	// the resulting overhead percentage the sweep gates at <= 5%.
	Runs        int     `json:"runs,omitempty"`
	NsOff       int64   `json:"ns_off,omitempty"`
	NsFast      int64   `json:"ns_fast,omitempty"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// VerifyConfig selects one verification sweep.
type VerifyConfig struct {
	Workers int // <= 0 selects GOMAXPROCS
	Runs    int // overhead-measurement repetitions; <= 0 means 3
	// Threshold is the exploration threshold for the merge boundary.
	Threshold int
	// Units is the translation-unit count for the split/link boundary;
	// <= 0 means 4.
	Units int
}

// overheadSlack absorbs fixed scheduling noise on corpora that explore in a
// few milliseconds, where a single descheduling would dwarf the 5% budget.
const overheadSlack = 50 * time.Millisecond

// VerifySweep drives every corpus through the pipeline's IR boundaries —
// print→reparse, wire round trip, split+relink, and the merging pipeline
// with in-pipeline gates on — verifying at the full level after each one,
// and checks that verification never changes merge decisions. It then
// measures whole-suite exploration with verification off versus the fast
// level and gates the overhead at 5% of suite wall clock (plus a fixed
// slack for timer noise). Returns an error naming the first violation.
func VerifySweep(profiles []workload.Profile, target tti.Target, cfg VerifyConfig) ([]VerifyResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.Units <= 0 {
		cfg.Units = 4
	}
	var out []VerifyResult
	var firstErr error
	fail := func(corpus, detail string) {
		if firstErr == nil {
			firstErr = fmt.Errorf("verify sweep failed on %s: %s", corpus, detail)
		}
	}
	for _, p := range profiles {
		m := workload.Build(p)
		row := VerifyResult{
			Experiment: "verify", Corpus: p.Name,
			Funcs: len(m.Definitions()), Insts: m.NumInsts(),
		}

		// Boundary 1: the textual round trip. Print, reparse, verify what
		// the parser accepted.
		reparsed, err := ir.ParseModule(p.Name, ir.FormatModule(m))
		if err != nil {
			row.Detail = fmt.Sprintf("reparse: %v", err)
			row.PostParseDiags = -1
		} else {
			row.PostParseDiags = len(ir.VerifyModuleLevel(reparsed, ir.VerifyFull))
		}

		// Boundary 2: the binary wire round trip.
		data, err := wire.Encode(m)
		if err != nil {
			row.Detail = fmt.Sprintf("encode: %v", err)
			row.PostWireDiags = -1
		} else if decoded, err := wire.Decode(data, wire.Options{Workers: cfg.Workers}); err != nil {
			row.Detail = fmt.Sprintf("decode: %v", err)
			row.PostWireDiags = -1
		} else {
			row.PostWireDiags = len(ir.VerifyModuleLevel(decoded, ir.VerifyFull))
		}

		// Boundary 3: split into translation units, verify each, relink,
		// verify the linked module — the Fig. 9 LTO path.
		units, err := ir.SplitModule(workload.Build(p), cfg.Units)
		if err != nil {
			row.Detail = fmt.Sprintf("split: %v", err)
			row.PostLinkDiags = -1
		} else {
			for _, tu := range units {
				row.PostLinkDiags += len(ir.VerifyModuleLevel(tu, ir.VerifyFull))
			}
			linked, err := ir.LinkModules("linked", units...)
			if err != nil {
				row.Detail = fmt.Sprintf("link: %v", err)
				row.PostLinkDiags = -1
			} else {
				row.PostLinkDiags += len(ir.VerifyModuleLevel(linked, ir.VerifyFull))
			}
		}

		// Boundary 4 + decision invariance: explore with verification off
		// and with full in-pipeline gates; decisions must match exactly.
		runExplore := func(level ir.VerifyLevel) (*explore.Report, string) {
			em := workload.Build(p)
			opts := explore.DefaultOptions()
			opts.Target = target
			opts.Threshold = cfg.Threshold
			opts.Workers = cfg.Workers
			opts.Verify = level
			rep := explore.Run(em, opts)
			return rep, ir.FormatModule(em)
		}
		offRep, offText := runExplore(ir.VerifyOff)
		fullRep, fullText := runExplore(ir.VerifyFull)
		row.PostMergeDiags = len(fullRep.VerifyDiags)
		row.VerifiedFuncs = fullRep.VerifiedFuncs
		row.BitIdentical = true
		switch {
		case !reflect.DeepEqual(offRep.Records, fullRep.Records):
			row.BitIdentical, row.Detail = false, "merge records diverge between verify off and full"
		case offText != fullText:
			row.BitIdentical, row.Detail = false, "final module text diverges between verify off and full"
		}

		if row.Detail != "" {
			fail(p.Name, row.Detail)
		} else if n := row.PostParseDiags + row.PostWireDiags + row.PostLinkDiags + row.PostMergeDiags; n > 0 {
			diags := fullRep.VerifyDiags
			detail := fmt.Sprintf("%d verifier findings", n)
			if len(diags) > 0 {
				detail += ": " + diags[0].String()
			}
			row.Detail = detail
			fail(p.Name, detail)
		}
		out = append(out, row)
	}

	// Overhead gate: fastest whole-suite exploration pass, verification off
	// versus the fast level. Minima rather than medians — the gate asks how
	// much work the fast gates add, and the fastest run is the least noisy
	// estimate of that on a shared machine. The two levels are interleaved
	// within each repetition (off, fast, off, fast, ...) so both sample the
	// same machine load, and the collector runs to completion before each
	// timed pass — GC pacing debt from the previous pass otherwise lands
	// inside the next pass's window and dwarfs the gates' real cost.
	timeOnce := func(level ir.VerifyLevel) int64 {
		mods := make([]*ir.Module, len(profiles))
		for i, p := range profiles {
			mods[i] = workload.Build(p)
		}
		runtime.GC()
		start := time.Now()
		for _, m := range mods {
			opts := explore.DefaultOptions()
			opts.Target = target
			opts.Threshold = cfg.Threshold
			opts.Workers = cfg.Workers
			opts.Verify = level
			explore.Run(m, opts)
		}
		return time.Since(start).Nanoseconds()
	}
	agg := VerifyResult{
		Experiment: "verify", Corpus: "aggregate", Runs: cfg.Runs,
	}
	for r := 0; r < cfg.Runs; r++ {
		if d := timeOnce(ir.VerifyOff); agg.NsOff == 0 || d < agg.NsOff {
			agg.NsOff = d
		}
		if d := timeOnce(ir.VerifyFast); agg.NsFast == 0 || d < agg.NsFast {
			agg.NsFast = d
		}
	}
	if agg.NsOff > 0 {
		agg.OverheadPct = 100 * float64(agg.NsFast-agg.NsOff) / float64(agg.NsOff)
	}
	agg.BitIdentical = firstErr == nil
	if budget := agg.NsOff + agg.NsOff/20 + overheadSlack.Nanoseconds(); agg.NsFast > budget {
		agg.Detail = fmt.Sprintf("fast-level overhead %.1f%% exceeds the 5%% budget", agg.OverheadPct)
		fail("aggregate", agg.Detail)
	}
	out = append(out, agg)
	return out, firstErr
}
