package experiments

import (
	"strings"
	"testing"

	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// tinyProfiles keeps experiment tests fast.
func tinyProfiles() []workload.Profile {
	return []workload.Profile{
		{
			Name: "tiny-rich", NumFuncs: 20, AvgSize: 25, MaxSize: 80,
			Identical: 0.15, ConstVar: 0.05, TypeVar: 0.1, CFGVar: 0.1, Partial: 0.05,
			InternalFrac: 0.7, Seed: 61,
		},
		{
			Name: "tiny-poor", NumFuncs: 8, AvgSize: 20, MaxSize: 50,
			InternalFrac: 0.5, Seed: 62,
		},
	}
}

func TestCodeSizeOrdering(t *testing.T) {
	rows := CodeSize(tinyProfiles(), tti.X86{}, Fig10Techniques())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	rich := rows[0]
	if rich.NumFuncs != 20 { // driver excluded from population stats
		t.Errorf("NumFuncs = %d, want 20", rich.NumFuncs)
	}
	id := rich.Reduction["Identical"]
	soa := rich.Reduction["SOA"]
	f1 := rich.Reduction["FMSA[t=1]"]
	f10 := rich.Reduction["FMSA[t=10]"]
	or := rich.Reduction["FMSA[oracle]"]
	if id > soa+0.5 || soa > f1+0.5 {
		t.Errorf("power ordering violated: id=%.2f soa=%.2f fmsa1=%.2f", id, soa, f1)
	}
	if f10+0.5 < f1 {
		t.Errorf("higher threshold lost reduction: t1=%.2f t10=%.2f", f1, f10)
	}
	if or+0.5 < f10 {
		t.Errorf("oracle below t=10: oracle=%.2f t10=%.2f", or, f10)
	}
	// The similarity-free module must see almost nothing.
	poor := rows[1]
	if poor.Reduction["FMSA[t=10]"] > 5 {
		t.Errorf("clone-free module reduced %.2f%%", poor.Reduction["FMSA[t=10]"])
	}
}

func TestRankCDFShape(t *testing.T) {
	cdf := RankCDF(tinyProfiles(), tti.X86{}, 10, 10)
	if len(cdf) != 10 {
		t.Fatalf("cdf length = %d", len(cdf))
	}
	prev := 0.0
	for _, v := range cdf {
		if v < prev {
			t.Fatal("CDF not monotone")
		}
		prev = v
	}
	if cdf[9] != 100 && cdf[9] != 0 {
		t.Errorf("coverage at max rank = %.1f, want 100 (or 0 if no merges)", cdf[9])
	}
}

func TestCompileTimeAboveOne(t *testing.T) {
	rows := CompileTime(tinyProfiles()[:1], tti.X86{}, []Technique{Identical(), FMSA(1)})
	for _, r := range rows {
		for tech, v := range r.Normalized {
			if v < 1.0 {
				t.Errorf("%s %s: normalized time %.3f < 1", r.Bench, tech, v)
			}
		}
		if r.Normalized["FMSA[t=1]"] < r.Normalized["Identical"] {
			t.Error("FMSA should cost at least as much as Identical")
		}
	}
}

func TestBreakdownSumsToHundred(t *testing.T) {
	rows := Breakdown(tinyProfiles()[:1], tti.X86{}, 1)
	for _, r := range rows {
		sum := 0.0
		for _, ph := range PhaseNames {
			sum += r.Percent[ph]
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: phases sum to %.1f%%", r.Bench, sum)
		}
	}
}

func TestRuntimeBounded(t *testing.T) {
	rows, err := Runtime(tinyProfiles(), tti.X86{}, []Technique{Identical(), FMSA(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for tech, v := range r.Normalized {
			if v < 0.95 || v > 2.0 {
				t.Errorf("%s %s: runtime ratio %.3f out of plausible range", r.Bench, tech, v)
			}
		}
	}
}

func TestHotExclusionImprovesRuntime(t *testing.T) {
	res, err := HotExclusion(tinyProfiles()[0], tti.X86{}, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadCold > res.OverheadAll+1e-9 {
		t.Errorf("cold-only runtime %.3f worse than all-functions %.3f",
			res.OverheadCold, res.OverheadAll)
	}
	if res.ReductionCold > res.ReductionAll+1e-9 {
		t.Errorf("cold-only reduction %.2f exceeds all-functions %.2f",
			res.ReductionCold, res.ReductionAll)
	}
}

func TestLTOGranularityMonotone(t *testing.T) {
	units := []int{1, 4, 16}
	rows := LTOGranularity(tinyProfiles()[:1], tti.X86{}, 1, units)
	r := rows[0]
	if r.Reduction[4] > r.Reduction[1]+0.5 {
		t.Errorf("4 units reduced more (%.2f%%) than LTO (%.2f%%)", r.Reduction[4], r.Reduction[1])
	}
	if r.Reduction[16] > r.Reduction[4]+0.5 {
		t.Errorf("16 units reduced more (%.2f%%) than 4 (%.2f%%)", r.Reduction[16], r.Reduction[4])
	}
}

func TestFormatting(t *testing.T) {
	techs := []Technique{Identical(), FMSA(1)}
	rows := CodeSize(tinyProfiles()[:1], tti.X86{}, techs)
	names := TechNames(techs)

	sizeTab := FormatSizeTable(rows, names)
	if !strings.Contains(sizeTab, "tiny-rich") || !strings.Contains(sizeTab, "Mean") {
		t.Errorf("size table malformed:\n%s", sizeTab)
	}
	statsTab := FormatStatsTable(rows, names)
	if !strings.Contains(statsTab, "Min/Avg/Max") {
		t.Errorf("stats table malformed:\n%s", statsTab)
	}
	csv := SizeCSV(rows, names)
	if !strings.HasPrefix(csv, "benchmark,Identical,FMSA[t=1]") {
		t.Errorf("csv header malformed: %s", csv)
	}
	if strings.Count(csv, "\n") != 2 {
		t.Errorf("csv row count wrong:\n%s", csv)
	}

	cdfTab := FormatCDF([]float64{50, 100})
	if !strings.Contains(cdfTab, "Rank position") {
		t.Error("CDF table malformed")
	}

	ltoRows := LTOGranularity(tinyProfiles()[:1], tti.X86{}, 1, []int{1, 4})
	ltoTab := FormatLTOTable(ltoRows, []int{1, 4})
	if !strings.Contains(ltoTab, "LTO (1 unit)") {
		t.Errorf("LTO table malformed:\n%s", ltoTab)
	}
}

func TestAblationTechniquesRun(t *testing.T) {
	rows := CodeSize(tinyProfiles()[:1], tti.X86{}, AblationTechniques())
	r := rows[0]
	def := r.Reduction["FMSA[t=1]"]
	noReuse := r.Reduction["FMSA[no-param-reuse]"]
	if noReuse > def+0.5 {
		t.Errorf("disabling parameter reuse should not help: %.2f vs %.2f", noReuse, def)
	}
	for _, name := range []string{"FMSA[hirschberg]", "FMSA[affine-gap]", "FMSA[canon-order]"} {
		if _, ok := r.Reduction[name]; !ok {
			t.Errorf("ablation %s missing", name)
		}
	}
}
