package experiments

import (
	"runtime"

	"fmsa/internal/explore"
	"fmsa/internal/workload"
)

// RankModeResult is one JSON line of the -exp rank experiment: the cost and
// quality of one ranking mode on one corpus (or, for Corpus "aggregate", over
// every corpus where the LSH index engaged). Exact rows are the baseline:
// their recall and speedup are 1 by definition.
type RankModeResult struct {
	// Suite names the workload suite measured.
	Suite string `json:"suite"`
	// Corpus is the profile name, or "aggregate".
	Corpus string `json:"corpus"`
	// Mode is "exact" or "lsh".
	Mode string `json:"mode"`
	// Funcs is the ranked pool size (functions with a candidate list).
	Funcs int `json:"funcs"`
	// RankNs is the Ranking-phase wall time: candidate-list construction,
	// plus signature and index construction in LSH mode.
	RankNs int64 `json:"rank_ns"`
	// Probes counts pairwise candidate visits; PrefilterSkips counts the
	// visits dismissed by the cheap similarity upper bound before exact
	// scoring.
	Probes         int64 `json:"probes"`
	PrefilterSkips int64 `json:"prefilter_skips"`
	// Fallbacks counts pools below the LSH size cutoff (ranked exactly).
	Fallbacks int `json:"fallbacks"`
	// RecallTop1 is the fraction of pool functions whose exact-mode best
	// candidate this mode also found (or matched by similarity).
	RecallTop1 float64 `json:"recall_top1"`
	// SpeedupVsExact is the exact-mode RankNs divided by this mode's.
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
}

// Rank measures the initial candidate-ranking phase of every profile in both
// ranking modes on identical pools (SnapshotRanking attempts no merges, so
// one module serves both measurements). Profiles whose pools fall below the
// LSH cutoff contribute fallback rows but are excluded from the aggregate,
// which summarizes only corpora where the index actually engaged. workers <=
// 0 selects GOMAXPROCS.
func Rank(profiles []workload.Profile, threshold, workers int) []RankModeResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	suite := suiteName(profiles)
	var out []RankModeResult
	agg := map[string]*RankModeResult{
		"exact": {Suite: suite, Corpus: "aggregate", Mode: "exact", RecallTop1: 1, SpeedupVsExact: 1},
		"lsh":   {Suite: suite, Corpus: "aggregate", Mode: "lsh"},
	}
	var aggEligible, aggHits int
	for _, p := range profiles {
		m := workload.Build(p)
		opts := explore.DefaultOptions()
		opts.Threshold = threshold
		opts.Workers = workers

		exact, erep := explore.SnapshotRanking(m, opts)

		opts.Ranking = explore.RankLSH
		lshRank, lrep := explore.SnapshotRanking(m, opts)

		hits, eligible := recallTop1(exact, lshRank)
		recall := 1.0
		if eligible > 0 {
			recall = float64(hits) / float64(eligible)
		}
		rows := []RankModeResult{
			{Suite: suite, Corpus: p.Name, Mode: "exact", Funcs: len(exact),
				RankNs: erep.Phases.Ranking.Nanoseconds(), Probes: erep.RankProbes,
				PrefilterSkips: erep.RankPrefilterSkips, RecallTop1: 1, SpeedupVsExact: 1},
			{Suite: suite, Corpus: p.Name, Mode: "lsh", Funcs: len(lshRank),
				RankNs: lrep.Phases.Ranking.Nanoseconds(), Probes: lrep.RankProbes,
				PrefilterSkips: lrep.RankPrefilterSkips, Fallbacks: lrep.RankFallbacks,
				RecallTop1: recall},
		}
		if rows[1].RankNs > 0 {
			rows[1].SpeedupVsExact = float64(rows[0].RankNs) / float64(rows[1].RankNs)
		}
		out = append(out, rows...)
		if lrep.RankFallbacks > 0 {
			agg["lsh"].Fallbacks += lrep.RankFallbacks
			continue
		}
		for _, row := range rows {
			a := agg[row.Mode]
			a.Funcs += row.Funcs
			a.RankNs += row.RankNs
			a.Probes += row.Probes
			a.PrefilterSkips += row.PrefilterSkips
		}
		aggEligible += eligible
		aggHits += hits
	}
	if aggEligible > 0 {
		agg["lsh"].RecallTop1 = float64(aggHits) / float64(aggEligible)
	} else {
		agg["lsh"].RecallTop1 = 1
	}
	if agg["lsh"].RankNs > 0 {
		agg["lsh"].SpeedupVsExact = float64(agg["exact"].RankNs) / float64(agg["lsh"].RankNs)
	}
	return append(out, *agg["exact"], *agg["lsh"])
}

// recallTop1 counts, over the pool functions whose exact ranking found a best
// candidate, how many the LSH ranking preserved: the same candidate anywhere
// in its list, or (robust to similarity ties) a top candidate at least as
// similar. Both snapshots come from the same module, so entries align by
// pool index.
func recallTop1(exact, lshRank []explore.RankEntry) (hits, eligible int) {
	for i, e := range exact {
		if len(e.Cands) == 0 || i >= len(lshRank) {
			continue
		}
		eligible++
		top := e.Cands[0]
		l := lshRank[i]
		found := false
		for _, c := range l.Cands {
			if c.Name == top.Name {
				found = true
				break
			}
		}
		if !found && len(l.Cands) > 0 && l.Cands[0].Sim >= top.Sim {
			found = true
		}
		if found {
			hits++
		}
	}
	return hits, eligible
}
