package experiments

import (
	"fmt"
	"strings"

	"fmsa/internal/explore"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// AuditRow is the audit sweep's per-benchmark outcome.
type AuditRow struct {
	// Bench names the workload profile.
	Bench string `json:"bench"`
	// MergeOps is how many merges the exploration committed.
	MergeOps int `json:"merge_ops"`
	// Audited, Flagged, Escalated and Rejected are the audit counters
	// (see explore.Report).
	Audited   int `json:"audited"`
	Flagged   int `json:"flagged"`
	Escalated int `json:"escalated,omitempty"`
	Rejected  int `json:"rejected,omitempty"`
	// Diags holds the rendered diagnostics, empty on a clean run.
	Diags []string `json:"diags,omitempty"`
	// AuditNs is the time spent in the audit phase.
	AuditNs int64 `json:"audit_ns"`
}

// AuditResult summarizes one audit sweep for the -json trajectory file.
type AuditResult struct {
	// Suite names the swept workload suite.
	Suite string `json:"suite"`
	// Mode is the audit mode the sweep ran under.
	Mode string `json:"mode"`
	// Threshold is the exploration threshold t.
	Threshold int `json:"threshold"`
	// Rows are the per-benchmark outcomes.
	Rows []AuditRow `json:"rows"`
	// MergeOps, Audited, Flagged, Escalated and Rejected sum over Rows.
	MergeOps  int `json:"merge_ops"`
	Audited   int `json:"audited"`
	Flagged   int `json:"flagged"`
	Escalated int `json:"escalated,omitempty"`
	Rejected  int `json:"rejected,omitempty"`
}

// AuditSweep explores every profile with merge auditing enabled and collects
// the audit counters and diagnostics. A healthy merger yields Flagged == 0
// everywhere; scripts/check.sh gates on exactly that.
func AuditSweep(profiles []workload.Profile, target tti.Target, threshold int, mode explore.AuditMode) AuditResult {
	res := AuditResult{Suite: suiteName(profiles), Mode: mode.String(), Threshold: threshold}
	for _, p := range profiles {
		m := workload.Build(p)
		opts := explore.DefaultOptions()
		opts.Threshold = threshold
		opts.Target = target
		opts.Audit = mode
		rep := explore.Run(m, opts)
		row := AuditRow{
			Bench:     p.Name,
			MergeOps:  rep.MergeOps,
			Audited:   rep.AuditedMerges,
			Flagged:   rep.AuditFlagged,
			Escalated: rep.AuditEscalated,
			Rejected:  rep.AuditRejected,
			AuditNs:   rep.Phases.Audit.Nanoseconds(),
		}
		for _, d := range rep.AuditDiags {
			row.Diags = append(row.Diags, d.String())
		}
		res.Rows = append(res.Rows, row)
		res.MergeOps += row.MergeOps
		res.Audited += row.Audited
		res.Flagged += row.Flagged
		res.Escalated += row.Escalated
		res.Rejected += row.Rejected
	}
	return res
}

// FormatAuditTable renders an audit sweep as a text table, with any
// diagnostics listed underneath their benchmark.
func FormatAuditTable(res AuditResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %9s %9s %9s %9s %9s %10s\n",
		"benchmark", "merges", "audited", "flagged", "escalated", "rejected", "audit-ms")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-18s %9d %9d %9d %9d %9d %10.1f\n",
			r.Bench, r.MergeOps, r.Audited, r.Flagged, r.Escalated, r.Rejected,
			float64(r.AuditNs)/1e6)
		for _, d := range r.Diags {
			fmt.Fprintf(&sb, "    %s\n", d)
		}
	}
	fmt.Fprintf(&sb, "%-18s %9d %9d %9d %9d %9d\n",
		"total", res.MergeOps, res.Audited, res.Flagged, res.Escalated, res.Rejected)
	return sb.String()
}
