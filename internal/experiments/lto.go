package experiments

import (
	"fmsa/internal/baseline"
	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// LTORow reports the §IV-B granularity experiment for one benchmark: how
// much reduction survives when merging is confined to translation units of
// decreasing size instead of the whole program.
type LTORow struct {
	Bench string
	// Reduction maps the number of simulated translation units to the
	// percent code-size reduction FMSA achieves under that partitioning
	// (1 = monolithic LTO).
	Reduction map[int]float64
}

// partitionRoundRobin assigns the module's definitions to k units in
// round-robin order, scattering clone families across units the way
// separate source files scatter template instantiations.
func partitionRoundRobin(m *ir.Module, k int) map[*ir.Func]int {
	part := map[*ir.Func]int{}
	i := 0
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		part[f] = i % k
		i++
	}
	return part
}

// LTOGranularity runs FMSA at the given threshold under each partitioning
// of every profile. The paper's §IV-B argues whole-program (LTO) scope is
// strictly more powerful than per-translation-unit application because
// only it can merge functions from different units; this experiment
// quantifies that claim.
func LTOGranularity(profiles []workload.Profile, target tti.Target, threshold int, units []int) []LTORow {
	rows := make([]LTORow, 0, len(profiles))
	for _, p := range profiles {
		row := LTORow{Bench: p.Name, Reduction: map[int]float64{}}
		for _, k := range units {
			m := workload.Build(p)
			rep := baseline.RunIdentical(m, target)
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			if k > 1 {
				opts.Partition = partitionRoundRobin(m, k)
			}
			rep.Add(explore.Run(m, opts))
			row.Reduction[k] = rep.Reduction()
		}
		rows = append(rows, row)
	}
	return rows
}

// MeanLTOReduction averages one unit count's reduction across rows.
func MeanLTOReduction(rows []LTORow, k int) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Reduction[k]
	}
	return sum / float64(len(rows))
}
