package experiments

import (
	"fmt"
	"reflect"
	"sync/atomic"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// BoundCheckResult summarizes one corpus of the profitability-bound
// differential check, serialized as a JSON line by cmd/fmsa-bench -exp bound.
type BoundCheckResult struct {
	Corpus string `json:"corpus"`
	// MergeOps is the (identical) number of merges both pipelines commit.
	MergeOps int `json:"merge_ops"`
	// BoundEvals and CodegenSkips come from the pruning run: how many bound
	// evaluations ran and how many skipped code generation.
	BoundEvals   int64 `json:"bound_evals"`
	CodegenSkips int64 `json:"codegen_skips"`
	// AuditedPairs counts candidate pairs where the audit run compared the
	// bound against the exact profit (pairs where bounding bails on the
	// constant-branch hazard are not comparable and not counted).
	AuditedPairs int64 `json:"audited_pairs"`
	// Inadmissible counts audited pairs whose exact profit exceeded the
	// bound — each one is a pair pruning could wrongly discard. Must be 0.
	Inadmissible int64 `json:"inadmissible"`
	// Match reports bit-identical records and final module text between the
	// bounding and non-bounding pipelines.
	Match bool `json:"match"`
	// Detail names the first divergence when Match is false.
	Detail string `json:"detail,omitempty"`
}

// BoundCrossCheck is the executable form of the PR 5 admissibility guarantee.
// Every corpus runs through three identically built modules:
//
//  1. the reference pipeline with bounding disabled,
//  2. the default pipeline with pre-codegen pruning on, and
//  3. an audit pipeline where every usable bound is checked against the
//     exact cost model on the materialized merged function.
//
// Runs 1 and 2 must commit bit-identical merge records and final modules —
// pruning may only skip pairs the exact model rejects — and run 3 must find
// zero inadmissible bounds (exact profit > bound). An inadmissible bound, a
// decision divergence or a module-text difference all surface here. Returns
// an error naming the first diverging corpus.
func BoundCrossCheck(profiles []workload.Profile, target tti.Target, threshold, workers int) ([]BoundCheckResult, error) {
	var out []BoundCheckResult
	var firstErr error
	for _, p := range profiles {
		runOne := func(noBound bool, audit func(f1, f2 *ir.Func, bound, exact int)) (*explore.Report, string) {
			m := workload.Build(p)
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			opts.Workers = workers
			opts.NoBound = noBound
			opts.Merge.BoundAudit = audit
			rep := explore.Run(m, opts)
			return rep, ir.FormatModule(m)
		}

		ref, refMod := runOne(true, nil)
		got, gotMod := runOne(false, nil)

		var pairs, inadmissible int64
		runOne(false, func(f1, f2 *ir.Func, bound, exact int) {
			atomic.AddInt64(&pairs, 1)
			if exact > bound {
				atomic.AddInt64(&inadmissible, 1)
			}
		})

		r := BoundCheckResult{
			Corpus:       p.Name,
			MergeOps:     got.MergeOps,
			BoundEvals:   got.BoundEvals,
			CodegenSkips: got.CodegenSkips,
			AuditedPairs: pairs,
			Inadmissible: inadmissible,
			Match:        true,
		}
		switch {
		case inadmissible > 0:
			r.Match, r.Detail = false,
				fmt.Sprintf("%d/%d audited pairs have exact profit above the bound", inadmissible, pairs)
		case !reflect.DeepEqual(ref.Records, got.Records):
			r.Match, r.Detail = false, "merge records diverge"
		case ref.SizeAfter != got.SizeAfter:
			r.Match, r.Detail = false,
				fmt.Sprintf("final size diverges: nobound %d, bound %d", ref.SizeAfter, got.SizeAfter)
		case refMod != gotMod:
			r.Match, r.Detail = false, "final module text diverges"
		}
		if !r.Match && firstErr == nil {
			firstErr = fmt.Errorf("bound cross-check failed on %s: %s", p.Name, r.Detail)
		}
		out = append(out, r)
	}
	return out, firstErr
}
