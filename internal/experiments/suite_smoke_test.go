package experiments

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// TestTableIProfileEndToEnd runs the full pipeline on a genuine Table I
// profile (433.milc, mid-size) and checks the properties the paper's
// evaluation rests on: verified output, preserved driver semantics, and
// the Identical ≤ SOA ≤ FMSA ordering.
func TestTableIProfileEndToEnd(t *testing.T) {
	var milc workload.Profile
	for _, p := range workload.SPECLike() {
		if p.Name == "433.milc" {
			milc = p
		}
	}
	if milc.Name == "" {
		t.Fatal("profile missing")
	}

	baseline := workload.Build(milc)
	mc := interp.NewMachine(baseline)
	workload.RegisterIntrinsics(mc)
	want, err := mc.Run("main")
	if err != nil {
		t.Fatal(err)
	}

	var prev float64 = -1
	for _, tech := range []Technique{Identical(), SOA(), FMSA(1)} {
		m := workload.Build(milc)
		rep := tech.Run(m, tti.X86{})
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		mc := interp.NewMachine(m)
		workload.RegisterIntrinsics(mc)
		got, err := mc.Run("main")
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		if got != want {
			t.Fatalf("%s changed driver output: %d vs %d", tech.Name, got, want)
		}
		red := rep.Reduction()
		if red+0.5 < prev {
			t.Errorf("%s reduction %.2f%% broke the technique ordering (prev %.2f%%)",
				tech.Name, red, prev)
		}
		prev = red
		t.Logf("%-12s %5.2f%% reduction, %d merges", tech.Name, red, rep.MergeOps)
	}
}
