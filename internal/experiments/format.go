package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// TechNames extracts the technique names in order.
func TechNames(techs []Technique) []string {
	names := make([]string, len(techs))
	for i, t := range techs {
		names[i] = t.Name
	}
	return names
}

func table(write func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return sb.String()
}

// FormatSizeTable renders the Fig. 10/11 data: per-benchmark reduction
// percentages plus the mean row.
func FormatSizeTable(rows []SizeRow, techs []string) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark")
		for _, t := range techs {
			fmt.Fprintf(w, "\t%s", t)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%s", r.Bench)
			for _, t := range techs {
				fmt.Fprintf(w, "\t%.2f%%", r.Reduction[t])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "Mean")
		for _, t := range techs {
			fmt.Fprintf(w, "\t%.2f%%", MeanReduction(rows, t))
		}
		fmt.Fprintln(w)
	})
}

// FormatStatsTable renders the Table I/II data: population statistics and
// merge-operation counts per technique.
func FormatStatsTable(rows []SizeRow, techs []string) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark\t#Fns\tMin/Avg/Max Size")
		for _, t := range techs {
			fmt.Fprintf(w, "\t%s", t)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d / %d / %d", r.Bench, r.NumFuncs, r.MinSize, r.AvgSize, r.MaxSize)
			for _, t := range techs {
				fmt.Fprintf(w, "\t%d", r.MergeOps[t])
			}
			fmt.Fprintln(w)
		}
	})
}

// FormatTimeTable renders the Fig. 12 normalized compile times.
func FormatTimeTable(rows []TimeRow, techs []string) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark")
		for _, t := range techs {
			fmt.Fprintf(w, "\t%s", t)
		}
		fmt.Fprintln(w)
		means := map[string][]float64{}
		for _, r := range rows {
			fmt.Fprintf(w, "%s", r.Bench)
			for _, t := range techs {
				fmt.Fprintf(w, "\t%.2fx", r.Normalized[t])
				means[t] = append(means[t], r.Normalized[t])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "Mean")
		for _, t := range techs {
			sum := 0.0
			for _, v := range means[t] {
				sum += v
			}
			fmt.Fprintf(w, "\t%.2fx", sum/float64(len(rows)))
		}
		fmt.Fprintln(w)
	})
}

// FormatBreakdownTable renders the Fig. 13 per-phase percentages.
func FormatBreakdownTable(rows []BreakdownRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark")
		for _, ph := range PhaseNames {
			fmt.Fprintf(w, "\t%s", ph)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%s", r.Bench)
			for _, ph := range PhaseNames {
				fmt.Fprintf(w, "\t%.1f%%", r.Percent[ph])
			}
			fmt.Fprintln(w)
		}
	})
}

// FormatRuntimeTable renders the Fig. 14 normalized runtimes.
func FormatRuntimeTable(rows []RuntimeRow, techs []string) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark")
		for _, t := range techs {
			fmt.Fprintf(w, "\t%s", t)
		}
		fmt.Fprintln(w)
		means := map[string][]float64{}
		for _, r := range rows {
			fmt.Fprintf(w, "%s", r.Bench)
			for _, t := range techs {
				fmt.Fprintf(w, "\t%.3fx", r.Normalized[t])
				means[t] = append(means[t], r.Normalized[t])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "Mean")
		for _, t := range techs {
			sum := 0.0
			for _, v := range means[t] {
				sum += v
			}
			fmt.Fprintf(w, "\t%.3fx", sum/float64(len(rows)))
		}
		fmt.Fprintln(w)
	})
}

// FormatCDF renders the Fig. 8 cumulative coverage series.
func FormatCDF(cdf []float64) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Rank position\tCoverage")
		for i, v := range cdf {
			fmt.Fprintf(w, "%d\t%.1f%%\n", i+1, v)
		}
	})
}

// FormatLTOTable renders the §IV-B granularity rows.
func FormatLTOTable(rows []LTORow, units []int) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Benchmark")
		for _, k := range units {
			if k == 1 {
				fmt.Fprintf(w, "\tLTO (1 unit)")
			} else {
				fmt.Fprintf(w, "\t%d units", k)
			}
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%s", r.Bench)
			for _, k := range units {
				fmt.Fprintf(w, "\t%.2f%%", r.Reduction[k])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "Mean")
		for _, k := range units {
			fmt.Fprintf(w, "\t%.2f%%", MeanLTOReduction(rows, k))
		}
		fmt.Fprintln(w)
	})
}

// SizeCSV renders the code-size rows as CSV (reduction percentages).
func SizeCSV(rows []SizeRow, techs []string) string {
	var sb strings.Builder
	sb.WriteString("benchmark")
	for _, t := range techs {
		sb.WriteString(",")
		sb.WriteString(t)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		sb.WriteString(r.Bench)
		for _, t := range techs {
			fmt.Fprintf(&sb, ",%.4f", r.Reduction[t])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
