package experiments

import (
	"fmt"
	"math"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
	"fmsa/internal/profile"
	"fmsa/internal/stats"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// SizeRow is one benchmark row of the code-size experiments
// (Fig. 10/11 and Tables I/II).
type SizeRow struct {
	Bench string
	// NumFuncs and the size statistics describe the module just before
	// merging (Table I's "#Fns" and "Min/Avg/Max Size").
	NumFuncs                  int
	MinSize, AvgSize, MaxSize int
	// Reduction maps technique name to percent code-size reduction.
	Reduction map[string]float64
	// MergeOps maps technique name to the number of merge operations.
	MergeOps map[string]int
}

// moduleFuncStats computes Table I/II's population statistics. The
// synthetic driver (@main) is part of the module but not of the benchmark
// population the paper's tables describe.
func moduleFuncStats(m *ir.Module) (n, min, avg, max int) {
	total := 0
	min = math.MaxInt
	for _, f := range m.Funcs {
		if f.IsDecl() || f.Name() == "main" {
			continue
		}
		sz := f.NumInsts()
		n++
		total += sz
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	return n, min, total / n, max
}

// CodeSize runs every technique on every profile, regenerating the Fig. 10
// (or Fig. 11) series and Table I (or II) columns.
func CodeSize(profiles []workload.Profile, target tti.Target, techs []Technique) []SizeRow {
	rows := make([]SizeRow, 0, len(profiles))
	for _, p := range profiles {
		row := SizeRow{
			Bench:     p.Name,
			Reduction: map[string]float64{},
			MergeOps:  map[string]int{},
		}
		base := workload.Build(p)
		row.NumFuncs, row.MinSize, row.AvgSize, row.MaxSize = moduleFuncStats(base)
		for _, tech := range techs {
			m := workload.Build(p)
			rep := tech.Run(m, target)
			row.Reduction[tech.Name] = rep.Reduction()
			row.MergeOps[tech.Name] = rep.MergeOps
		}
		rows = append(rows, row)
	}
	return rows
}

// MeanReduction averages one technique's reduction over all rows (the
// "Mean" bar of Fig. 10/11).
func MeanReduction(rows []SizeRow, tech string) float64 {
	xs := make([]float64, 0, len(rows))
	for _, r := range rows {
		xs = append(xs, r.Reduction[tech])
	}
	return stats.Mean(xs)
}

// RankCDF runs FMSA with the given threshold over all profiles, collecting
// the rank position of every committed merge, and returns the cumulative
// coverage for positions 1..maxPos (Fig. 8).
func RankCDF(profiles []workload.Profile, target tti.Target, threshold, maxPos int) []float64 {
	var positions []int
	for _, p := range profiles {
		m := workload.Build(p)
		opts := explore.DefaultOptions()
		opts.Threshold = threshold
		opts.Target = target
		rep := explore.Run(m, opts)
		positions = append(positions, rep.RankPositions...)
	}
	return stats.CDF(positions, maxPos)
}

// TimeRow is one benchmark row of the compile-time experiment (Fig. 12).
type TimeRow struct {
	Bench string
	// Normalized maps technique name to compilation time normalized to the
	// non-merging baseline pipeline (1.0 = no overhead).
	Normalized map[string]float64
}

// backendProxyRounds approximates the rest of a -Os LTO pipeline: an
// optimizing compiler runs dozens of analysis and transform passes plus
// instruction selection, scheduling and register allocation, each walking
// every function. The constant is calibrated so the merging stage's share
// of total compilation matches the paper's measurements (FMSA[t=1] ≈ 1.15×
// overall; Fig. 12). Relative overheads between techniques and thresholds
// are measured, not calibrated.
const backendProxyRounds = 120

// baselinePipeline is the non-merging compilation proxy whose wall-clock
// time normalizes Fig. 12: φ-demotion, cleanup passes, and repeated
// whole-module analysis rounds (dominators, verification, linearization,
// cost modelling, serialization) standing in for the -Os LTO middle/back
// end.
func baselinePipeline(m *ir.Module, target tti.Target) time.Duration {
	start := time.Now()
	passes.DemotePhisModule(m)
	passes.DCEModule(m)
	passes.SimplifyCFGModule(m)
	for round := 0; round < backendProxyRounds; round++ {
		for _, f := range m.Funcs {
			if f.IsDecl() {
				continue
			}
			ir.ComputeDomTree(f)
			linearizeLen(f)
			tti.FuncSize(target, f)
		}
		if round%8 == 0 {
			ir.VerifyModule(m)
			ir.FormatModule(m)
		}
	}
	return time.Since(start)
}

func linearizeLen(f *ir.Func) int {
	return len(linearize.Linearize(f))
}

// CompileTime measures, per benchmark, the merging stage's wall-clock
// overhead on top of the baseline pipeline for each technique (Fig. 12).
func CompileTime(profiles []workload.Profile, target tti.Target, techs []Technique) []TimeRow {
	rows := make([]TimeRow, 0, len(profiles))
	for _, p := range profiles {
		row := TimeRow{Bench: p.Name, Normalized: map[string]float64{}}
		baseM := workload.Build(p)
		base := baselinePipeline(baseM, target)
		if base <= 0 {
			base = time.Microsecond
		}
		for _, tech := range techs {
			m := workload.Build(p)
			start := time.Now()
			tech.Run(m, target)
			mergeTime := time.Since(start)
			row.Normalized[tech.Name] = float64(base+mergeTime) / float64(base)
		}
		rows = append(rows, row)
	}
	return rows
}

// BreakdownRow is one benchmark row of the Fig. 13 phase breakdown.
type BreakdownRow struct {
	Bench string
	// Percent maps phase name to its share of the optimization time.
	Percent map[string]float64
}

// PhaseNames lists the Fig. 13 phases in presentation order.
var PhaseNames = []string{
	"Fingerprinting", "Ranking", "Linearization", "Alignment", "Code-Gen", "Updating Calls",
}

// Breakdown measures the per-phase share of FMSA's optimization time at
// the given threshold (the paper uses t=1).
func Breakdown(profiles []workload.Profile, target tti.Target, threshold int) []BreakdownRow {
	rows := make([]BreakdownRow, 0, len(profiles))
	for _, p := range profiles {
		m := workload.Build(p)
		opts := explore.DefaultOptions()
		opts.Threshold = threshold
		opts.Target = target
		rep := explore.Run(m, opts)
		total := rep.Phases.Total()
		row := BreakdownRow{Bench: p.Name, Percent: map[string]float64{}}
		if total > 0 {
			pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
			row.Percent["Fingerprinting"] = pct(rep.Phases.Fingerprint)
			row.Percent["Ranking"] = pct(rep.Phases.Ranking)
			row.Percent["Linearization"] = pct(rep.Phases.Linearize)
			row.Percent["Alignment"] = pct(rep.Phases.Align)
			row.Percent["Code-Gen"] = pct(rep.Phases.CodeGen)
			row.Percent["Updating Calls"] = pct(rep.Phases.UpdateCalls)
		}
		rows = append(rows, row)
	}
	return rows
}

// RuntimeRow is one benchmark row of the Fig. 14 runtime experiment.
type RuntimeRow struct {
	Bench string
	// Normalized maps technique name to the dynamic weighted-cost ratio
	// versus the unmerged module (1.0 = no overhead).
	Normalized map[string]float64
}

// runWeighted executes @main and returns the weighted dynamic cost.
func runWeighted(m *ir.Module) (uint64, error) {
	mc := interp.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	if _, err := mc.Run("main"); err != nil {
		return 0, err
	}
	return mc.Stats().Weighted, nil
}

// Runtime measures the dynamic overhead each technique's merging introduces
// (Fig. 14): the interpreter's weighted instruction count of the optimized
// module normalized to the baseline module.
func Runtime(profiles []workload.Profile, target tti.Target, techs []Technique) ([]RuntimeRow, error) {
	rows := make([]RuntimeRow, 0, len(profiles))
	for _, p := range profiles {
		row := RuntimeRow{Bench: p.Name, Normalized: map[string]float64{}}
		baseM := workload.Build(p)
		base, err := runWeighted(baseM)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", p.Name, err)
		}
		if base == 0 {
			base = 1
		}
		for _, tech := range techs {
			m := workload.Build(p)
			tech.Run(m, target)
			w, err := runWeighted(m)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", p.Name, tech.Name, err)
			}
			row.Normalized[tech.Name] = float64(w) / float64(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HotExclusionResult reports the §V-D experiment: merging with and without
// profile-guided exclusion of hot functions on one benchmark.
type HotExclusionResult struct {
	Bench string
	// ReductionAll / OverheadAll: plain FMSA.
	ReductionAll, OverheadAll float64
	// ReductionCold / OverheadCold: FMSA restricted to cold functions.
	ReductionCold, OverheadCold float64
}

// HotExclusion reproduces the milc discussion of §V-D: profile the module,
// then compare plain FMSA against FMSA that skips the hottest functions.
func HotExclusion(p workload.Profile, target tti.Target, threshold int, topFraction float64) (HotExclusionResult, error) {
	res := HotExclusionResult{Bench: p.Name}

	baseM := workload.Build(p)
	base, err := runWeighted(baseM)
	if err != nil {
		return res, err
	}
	if base == 0 {
		base = 1
	}

	run := func(maxHot uint64) (float64, float64, error) {
		m := workload.Build(p)
		if err := profile.Collect(m, "main", workload.RegisterIntrinsics); err != nil {
			return 0, 0, err
		}
		var tech Technique
		if maxHot > 0 {
			tech = FMSAHotAware(threshold, maxHot)
		} else {
			tech = FMSA(threshold)
		}
		rep := tech.Run(m, target)
		w, err := runWeighted(m)
		if err != nil {
			return 0, 0, err
		}
		return rep.Reduction(), float64(w) / float64(base), nil
	}

	if res.ReductionAll, res.OverheadAll, err = run(0); err != nil {
		return res, err
	}
	// Derive the exclusion threshold from a profiled module.
	pm := workload.Build(p)
	if err := profile.Collect(pm, "main", workload.RegisterIntrinsics); err != nil {
		return res, err
	}
	cutoff := profile.HotThreshold(pm, topFraction)
	if res.ReductionCold, res.OverheadCold, err = run(cutoff); err != nil {
		return res, err
	}
	return res, nil
}
