package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// GlobalResult is one JSON line of the sharded cross-TU merging experiment
// (cmd/fmsa-bench -exp global). Per-corpus rows come in two modes —
// "monolithic" for the whole-program exploration baseline and "global" for
// the two-round sharded pipeline at each shard count — and the trailing
// "aggregate" row carries the exact-scoring reduction the sweep gates on.
type GlobalResult struct {
	Experiment string `json:"experiment"` // always "global"
	// Corpus names the measured corpus, or "aggregate" for the gate row.
	Corpus string `json:"corpus"`
	// Mode is "monolithic" or "global" on per-corpus rows.
	Mode string `json:"mode,omitempty"`
	// Shards is the round-2 shard count on "global" rows.
	Shards int `json:"shards,omitempty"`
	// Units is the translation-unit count the corpus was split into.
	Units int `json:"units,omitempty"`
	Funcs int `json:"funcs,omitempty"`
	// ExactScoredPairs counts function pairs that reached exact evaluation:
	// alignment-scored ranking probes for the monolithic baseline
	// (RankProbes minus prefilter skips), evaluated plan pairs for the
	// global pipeline.
	ExactScoredPairs int64 `json:"exact_scored_pairs"`
	// AlignCells counts alignment DP cells computed during the run.
	AlignCells int64 `json:"align_cells"`
	// NsWall is the run's wall clock in nanoseconds.
	NsWall int64 `json:"ns_wall"`
	// MergeRecords counts committed transformations (folds plus merges).
	MergeRecords int `json:"merge_records"`
	// BitIdentical reports that this configuration's merge records and
	// linked module text match the shards=1 baseline ("global" rows), or
	// that every gate held ("aggregate" row).
	BitIdentical bool `json:"bit_identical"`
	// Aggregate-row fields: total exact-scored pairs per mode and the
	// resulting reduction percentage, gated at >= 30%.
	ExactMonolithic int64   `json:"exact_monolithic,omitempty"`
	ExactGlobal     int64   `json:"exact_global,omitempty"`
	ReductionPct    float64 `json:"reduction_pct,omitempty"`
	// Detail names the first violated gate.
	Detail string `json:"detail,omitempty"`
}

// GlobalConfig selects one sharded-merging sweep.
type GlobalConfig struct {
	Workers int // <= 0 selects GOMAXPROCS
	// Units is the translation-unit count per corpus; <= 0 means 4.
	Units int
	// Threshold is the monolithic baseline's exploration threshold;
	// <= 0 means 1.
	Threshold int
	// ShardCounts are the round-2 shard counts to cross-check; empty means
	// {1, 2, 8}.
	ShardCounts []int
}

// globalReductionFloorPct is the aggregate gate: the global pipeline must
// exact-score at least this much fewer pairs than the monolithic baseline.
const globalReductionFloorPct = 30.0

// GlobalSweep measures the two-round sharded cross-TU pipeline against
// monolithic whole-program exploration on every corpus and enforces the
// tentpole's two gates: merge records and linked-module text must be
// bit-identical across all shard counts, and summary-based planning must
// cut exact-scored pairs by at least 30% in aggregate. It also round-trips
// every corpus's round-1 summaries through the .fmsum wire format and fails
// on any mismatch. Returns an error naming the first violation.
func GlobalSweep(profiles []workload.Profile, target tti.Target, cfg GlobalConfig) ([]GlobalResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Units <= 0 {
		cfg.Units = 4
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 2, 8}
	}
	var out []GlobalResult
	var firstErr error
	fail := func(corpus, detail string) {
		if firstErr == nil {
			firstErr = fmt.Errorf("global sweep failed on %s: %s", corpus, detail)
		}
	}
	agg := GlobalResult{Experiment: "global", Corpus: "aggregate", BitIdentical: true}

	for _, p := range profiles {
		// Monolithic baseline: whole-program exploration on the unsplit
		// module. Its exact-scoring work is the alignment-scored ranking
		// probes (pool pairs that survived the cheap prefilter).
		m := workload.Build(p)
		nfuncs := len(m.Definitions())
		opts := explore.DefaultOptions()
		opts.Target = target
		opts.Threshold = cfg.Threshold
		opts.Workers = cfg.Workers
		start := time.Now()
		rep := explore.Run(m, opts)
		mono := GlobalResult{
			Experiment: "global", Corpus: p.Name, Mode: "monolithic",
			Funcs:            nfuncs,
			ExactScoredPairs: rep.RankProbes - rep.RankPrefilterSkips,
			AlignCells:       rep.AlignCells,
			NsWall:           time.Since(start).Nanoseconds(),
			MergeRecords:     len(rep.Records),
			BitIdentical:     true,
		}
		out = append(out, mono)
		agg.ExactMonolithic += mono.ExactScoredPairs

		// Round-1 summary wire round trip: the published .fmsum stream must
		// decode back to exactly what Summarize produced.
		units, err := ir.SplitModule(workload.Build(p), cfg.Units)
		if err != nil {
			fail(p.Name, fmt.Sprintf("split: %v", err))
			continue
		}
		sums := global.Summarize(units, cfg.Workers)
		name, decoded, err := wire.DecodeSummaries(wire.EncodeSummaries(p.Name, sums))
		if err != nil {
			fail(p.Name, fmt.Sprintf("summary decode: %v", err))
		} else if name != p.Name || !reflect.DeepEqual(decoded, sums) {
			fail(p.Name, "summaries do not round-trip through the fmsum wire format")
		}

		// Global pipeline at every shard count; shards=1 is the baseline
		// the others must match bit for bit.
		var baseText string
		var baseRecords []global.MergeRecord
		for i, shards := range cfg.ShardCounts {
			units, err := ir.SplitModule(workload.Build(p), cfg.Units)
			if err != nil {
				fail(p.Name, fmt.Sprintf("split: %v", err))
				break
			}
			gopts := global.DefaultOptions()
			gopts.Target = target
			gopts.Shards = shards
			gopts.Workers = cfg.Workers
			start := time.Now()
			linked, grep, err := global.Run(units, gopts)
			if err != nil {
				fail(p.Name, fmt.Sprintf("global shards=%d: %v", shards, err))
				break
			}
			row := GlobalResult{
				Experiment: "global", Corpus: p.Name, Mode: "global",
				Shards: shards, Units: cfg.Units,
				Funcs:            grep.Funcs,
				ExactScoredPairs: int64(grep.ExactScoredPairs),
				AlignCells:       grep.AlignCells,
				NsWall:           time.Since(start).Nanoseconds(),
				MergeRecords:     len(grep.Records),
				BitIdentical:     true,
			}
			text := ir.FormatModule(linked)
			if i == 0 {
				baseText, baseRecords = text, grep.Records
				agg.ExactGlobal += row.ExactScoredPairs
			} else {
				if !reflect.DeepEqual(baseRecords, grep.Records) {
					row.BitIdentical = false
					row.Detail = fmt.Sprintf("merge records diverge from shards=%d", cfg.ShardCounts[0])
				} else if text != baseText {
					row.BitIdentical = false
					row.Detail = fmt.Sprintf("linked module text diverges from shards=%d", cfg.ShardCounts[0])
				}
				if !row.BitIdentical {
					agg.BitIdentical = false
					fail(p.Name, row.Detail)
				}
			}
			out = append(out, row)
		}
	}

	if agg.ExactMonolithic > 0 {
		agg.ReductionPct = 100 * float64(agg.ExactMonolithic-agg.ExactGlobal) / float64(agg.ExactMonolithic)
	}
	if agg.ReductionPct < globalReductionFloorPct {
		agg.Detail = fmt.Sprintf("exact-scored pair reduction %.1f%% below the %.0f%% floor",
			agg.ReductionPct, globalReductionFloorPct)
		fail("aggregate", agg.Detail)
	}
	agg.BitIdentical = agg.BitIdentical && firstErr == nil
	out = append(out, agg)
	return out, firstErr
}
