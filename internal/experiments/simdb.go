package experiments

// The simdb experiment measures the persistent similarity database
// (ROADMAP item 5, DESIGN.md §14) end to end:
//
//	startup   store-backed fingerprint/signature/index rehydration at a 1%
//	          delta vs a full recompute+rebuild of the same corpus — the
//	          zero-rebuild-startup payoff, gated ≥3× on the full run
//	probe     per-query latency of the rehydrated LSH index, with every
//	          probe answer checked against a from-scratch in-memory index
//	identity  a session restarting onto a warm store must produce merge
//	          decisions bit-identical to a plain storeless cold run, for
//	          workers {1, 2, 8}, all against one shared segment file
//
// Both startup windows perform the session pipeline's full startup work:
// Session.Submit keys every pool function for its session table on every
// submit, store or no store (explore/session.go), so each side pays the
// content-key pass, and they differ only in what follows — the cold side
// recomputes every fingerprint and signature and builds the index from
// nothing, while the warm side replays the segment, reuses every key hit,
// recomputes only the delta and flushes it back.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/fingerprint"
	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/passes"
	"fmsa/internal/serve"
	"fmsa/internal/simdb"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// startupAttempts is how many times each startup window is sampled; the
// minimum wall clock is the reported figure (see the window comments).
const startupAttempts = 3

// SimDBConfig parameterizes the simdb experiment.
type SimDBConfig struct {
	// Threshold is the exploration threshold for the identity phase (<= 0
	// selects 2 — merge-rich on the identity corpus).
	Threshold int
	// DeltaFrac is the fraction of functions edited between the stored
	// corpus and the restarted one (<= 0 selects 0.01).
	DeltaFrac float64
	// Quick shrinks the corpus for a smoke run and skips the 3x gate.
	Quick bool
	// MinSpeedup is the store-backed startup floor the full run gates on
	// (<= 0 selects 3.0).
	MinSpeedup float64
}

// SimDBResult is one JSON line of the simdb experiment (BENCH_PR10.json).
type SimDBResult struct {
	// Phase: "startup", "probe" or "identity".
	Phase  string `json:"phase"`
	Corpus string `json:"corpus"`
	Funcs  int    `json:"funcs"`
	// Workers is the identity phase's per-merge worker count.
	Workers   int     `json:"workers,omitempty"`
	DeltaFrac float64 `json:"delta_frac,omitempty"`
	// ColdNS is the full recompute+rebuild wall clock, WarmNS the
	// store-backed rehydration of the same corpus (startup phase).
	ColdNS  int64   `json:"cold_ns,omitempty"`
	WarmNS  int64   `json:"warm_ns,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	// StoreHits/StoreMisses classify the corpus against the store.
	StoreHits   int `json:"store_hits,omitempty"`
	StoreMisses int `json:"store_misses,omitempty"`
	// SegmentBytes is the on-disk segment size backing the phase.
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// Probe latency percentiles over every signed live record (probe phase).
	Probes int   `json:"probes,omitempty"`
	P50NS  int64 `json:"p50_ns,omitempty"`
	P95NS  int64 `json:"p95_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`
	// BitIdentical: probe answers match a from-scratch index (probe phase),
	// or merge decisions match the storeless cold run (identity phase).
	BitIdentical bool `json:"bit_identical"`
}

// simdbFuncState is one definition's precomputed similarity state.
type simdbFuncState struct {
	f    *ir.Func
	key  []byte
	hash uint64
	self bool
}

// SimDB runs the full experiment; profiles supplies the corpus pool and the
// largest is measured.
func SimDB(profiles []workload.Profile, tgt tti.Target, cfg SimDBConfig) ([]SimDBResult, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.DeltaFrac <= 0 {
		cfg.DeltaFrac = 0.01
	}
	if cfg.MinSpeedup <= 0 {
		cfg.MinSpeedup = 3.0
	}

	big := profiles[0]
	for _, p := range profiles {
		if p.NumFuncs > big.NumFuncs {
			big = p
		}
	}
	idProfile := big
	if cfg.Quick {
		big.NumFuncs = 350
		if big.MaxSize > 200 {
			big.MaxSize = 200
		}
		idProfile = big
	} else {
		best := workload.Profile{}
		for _, p := range profiles {
			if p.NumFuncs < big.NumFuncs/4 && p.NumFuncs > best.NumFuncs {
				best = p
			}
		}
		if best.NumFuncs > 0 {
			idProfile = best
		}
	}

	dir, err := os.MkdirTemp("", "fmsa-simdb-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	segPath := filepath.Join(dir, "corpus.fmdb")

	var rows []SimDBResult

	// Populate the store from the pristine big corpus (untimed), exactly as
	// a prior batch run would have left it.
	corpus := buildServeCorpus(big)
	passes.DemotePhisModule(corpus.m)
	store, err := simdb.Open(segPath, big.Name, simdb.Options{})
	if err != nil {
		return nil, err
	}
	for _, st := range simdbStates(corpus.m) {
		fp := fingerprint.Compute(st.f)
		store.Put(simdb.Record{
			Hash: st.hash, Name: st.f.Name(), Linkage: st.f.Linkage,
			SelfEq: st.self, Size: fp.Total, Key: st.key, Fp: fp,
			Sig: fingerprint.ComputeSignature(st.f),
		})
	}
	if err := store.Flush(); err != nil {
		return nil, err
	}
	segBytes := store.Stats().SegmentBytes

	// Edit DeltaFrac of the corpus: the restarted process sees a corpus
	// that is (1-DeltaFrac) covered by the segment.
	edited := corpus.mutate(cfg.DeltaFrac, 1)
	defs := corpus.m.Definitions()

	// Both windows perform the session pipeline's startup work (Submit keys
	// every pool function for the session table — with or without a store —
	// then fingerprints and signs, then builds the index); the windows
	// differ only in recompute versus replay+reuse. Keying and lookups fan
	// out across the cores exactly like the pipeline's parallelFor pass;
	// results land at their definition index, so the outcome is identical
	// for any worker count. A forced collection ahead of each timed window
	// keeps background GC mark assists from smearing one window's
	// allocation debt into the other.
	keyAll := func(onKeyed func(i int, key []byte, hash uint64)) {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(defs) {
			workers = len(defs)
		}
		chunk := (len(defs) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, len(defs))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				var keyBuf []byte // per-worker, reused across its definitions
				for i := lo; i < hi; i++ {
					key, _ := global.AppendStableKey(keyBuf[:0], defs[i])
					keyBuf = key
					onKeyed(i, key, global.HashStableKey(key))
				}
			}()
		}
		wg.Wait()
	}

	// Each window is sampled startupAttempts times and the minimum wall
	// clock is reported: the attempts perform identical work from identical
	// state, so the minimum is the run least distorted by scheduler and GC
	// noise — the standard noise-floor estimate for a one-shot measurement.

	// Cold startup: key the corpus for the session table, recompute every
	// fingerprint and signature, and build the index from nothing — what
	// every process start paid before the store.
	var coldNS int64
	var coldSigs []*fingerprint.Signature
	var coldIx *lsh.Index
	for attempt := 0; attempt < startupAttempts; attempt++ {
		runtime.GC()
		tCold := time.Now()
		keyAll(func(int, []byte, uint64) {})
		sigs := make([]*fingerprint.Signature, len(defs))
		for i, f := range defs {
			fingerprint.Compute(f)
			sigs[i] = fingerprint.ComputeSignature(f)
		}
		ix := lsh.New(lsh.Params{})
		for i, sig := range sigs {
			ix.Insert(int32(i), sig)
		}
		if d := time.Since(tCold).Nanoseconds(); attempt == 0 || d < coldNS {
			coldNS = d
		}
		coldSigs, coldIx = sigs, ix
	}

	// Warm startup: replay the segment, key the corpus (the same pass the
	// cold side ran), reuse every hit, recompute only the delta, and write
	// the delta back. Misses are re-keyed serially in index order. Every
	// attempt starts from a pristine copy of the segment so the delta
	// write-back of one attempt is invisible to the next.
	segBytesOrig, err := os.ReadFile(segPath)
	if err != nil {
		return nil, err
	}
	var warmNS int64
	var warmSigs []*fingerprint.Signature
	var warmIx *lsh.Index
	var wStore *simdb.Store
	var hits, misses int
	for attempt := 0; attempt < startupAttempts; attempt++ {
		attemptPath := filepath.Join(dir, "warm-attempt.fmdb")
		if err := os.WriteFile(attemptPath, segBytesOrig, 0o644); err != nil {
			return nil, err
		}
		runtime.GC()
		tWarm := time.Now()
		st, err := simdb.Open(attemptPath, big.Name, simdb.Options{})
		if err != nil {
			return nil, err
		}
		sigs := make([]*fingerprint.Signature, len(defs))
		bands := make([][]uint64, len(defs))
		missed := make([]bool, len(defs))
		keyAll(func(i int, key []byte, hash uint64) {
			rec := st.Lookup(hash, key)
			if rec != nil && rec.Sig != nil {
				sigs[i] = rec.Sig
				bands[i] = rec.Bands
			} else {
				missed[i] = true
			}
		})
		hits, misses = 0, 0
		for i, f := range defs {
			if !missed[i] {
				hits++
				continue
			}
			misses++
			key, selfEq := global.AppendStableKey(nil, f)
			fp := fingerprint.Compute(f)
			sigs[i] = fingerprint.ComputeSignature(f)
			bands[i] = lsh.AppendBandKeys(lsh.Params{}, sigs[i], nil)
			st.Put(simdb.Record{
				Hash: global.HashStableKey(key), Name: f.Name(), Linkage: f.Linkage,
				SelfEq: selfEq, Size: fp.Total, Key: key, Fp: fp, Sig: sigs[i],
				Bands: bands[i],
			})
		}
		ix := lsh.NewFromBandKeys(lsh.Params{}, bands)
		if err := st.Flush(); err != nil {
			return nil, err
		}
		if d := time.Since(tWarm).Nanoseconds(); attempt == 0 || d < warmNS {
			warmNS = d
		}
		warmSigs, warmIx, wStore = sigs, ix, st
	}

	speedup := float64(coldNS) / float64(warmNS)
	startIdentical := true
	for i := range defs {
		if *coldSigs[i] != *warmSigs[i] {
			startIdentical = false
			break
		}
	}
	rows = append(rows, SimDBResult{
		Phase: "startup", Corpus: big.Name, Funcs: len(defs),
		DeltaFrac: cfg.DeltaFrac, ColdNS: coldNS, WarmNS: warmNS,
		Speedup: speedup, StoreHits: hits, StoreMisses: misses,
		SegmentBytes: segBytes, BitIdentical: startIdentical,
	})
	if !startIdentical {
		return rows, fmt.Errorf("simdb: rehydrated signatures diverged from recomputed ones on %s", big.Name)
	}
	if misses < edited {
		return rows, fmt.Errorf("simdb: %d edited functions but only %d store misses", edited, misses)
	}

	// Probe phase: query latency of the rehydrated index, every answer
	// checked against the cold-built index over the same id space.
	lat := make([]time.Duration, 0, len(defs))
	probeIdentical := true
	for i := range defs {
		t0 := time.Now()
		got := warmIx.Probe(warmSigs[i], int32(i))
		lat = append(lat, time.Since(t0))
		want := coldIx.Probe(coldSigs[i], int32(i))
		if len(got) != len(want) {
			probeIdentical = false
		} else {
			for k := range got {
				if got[k] != want[k] {
					probeIdentical = false
					break
				}
			}
		}
		if !probeIdentical {
			break
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		return lat[int(p*float64(len(lat)-1))].Nanoseconds()
	}
	rows = append(rows, SimDBResult{
		Phase: "probe", Corpus: big.Name, Funcs: len(defs), Probes: len(lat),
		P50NS: pct(0.50), P95NS: pct(0.95), P99NS: pct(0.99),
		SegmentBytes: wStore.Stats().SegmentBytes, BitIdentical: probeIdentical,
	})
	if !probeIdentical {
		return rows, fmt.Errorf("simdb: rehydrated index answered a probe differently from a from-scratch build on %s", big.Name)
	}

	// Identity phase: a session restarting onto the shared store must merge
	// bit-identically to a storeless cold run, for every worker count. The
	// segment file is shared across the sweep — later runs see earlier
	// runs' write-backs, which must remain invisible.
	idPath := filepath.Join(dir, "identity.fmdb")
	baseOpts := explore.DefaultOptions()
	baseOpts.Threshold = cfg.Threshold
	baseOpts.Target = tgt
	baseOpts.Ranking = explore.RankLSH
	baseOpts.LSHMinPool = 1

	popStore, err := simdb.Open(idPath, idProfile.Name, simdb.Options{})
	if err != nil {
		return rows, err
	}
	popOpts := baseOpts
	popOpts.Workers = 1
	popSess, err := explore.NewSession(explore.SessionConfig{Explore: popOpts, Store: popStore})
	if err != nil {
		return rows, err
	}
	if _, _, err := popSess.Submit(buildIdentityModule(idProfile, cfg.DeltaFrac, false)); err != nil {
		return rows, err
	}

	var refDigest uint64
	var refRep *explore.Report
	for i, workers := range []int{1, 2, 8} {
		opts := baseOpts
		opts.Workers = workers

		mPlain := buildIdentityModule(idProfile, cfg.DeltaFrac, true)
		plainRep := explore.Run(mPlain, opts)

		st, err := simdb.Open(idPath, idProfile.Name, simdb.Options{})
		if err != nil {
			return rows, err
		}
		sess, err := explore.NewSession(explore.SessionConfig{Explore: opts, Store: st})
		if err != nil {
			return rows, err
		}
		mWarm := buildIdentityModule(idProfile, cfg.DeltaFrac, true)
		warmRep, delta, err := sess.Submit(mWarm)
		if err != nil {
			return rows, err
		}
		if delta.StoreHits == 0 {
			return rows, fmt.Errorf("simdb: identity run at workers=%d reused nothing from the store", workers)
		}

		digest := serve.RecordsDigest(warmRep.Records)
		ok := digest == serve.RecordsDigest(plainRep.Records) &&
			warmRep.MergeOps == plainRep.MergeOps &&
			warmRep.SizeAfter == plainRep.SizeAfter &&
			warmRep.CandidatesEvaluated == plainRep.CandidatesEvaluated
		if i == 0 {
			refDigest, refRep = digest, warmRep
		} else {
			ok = ok && digest == refDigest && warmRep.MergeOps == refRep.MergeOps &&
				warmRep.SizeAfter == refRep.SizeAfter
		}
		rows = append(rows, SimDBResult{
			Phase: "identity", Corpus: idProfile.Name, Funcs: delta.Funcs,
			Workers: workers, DeltaFrac: cfg.DeltaFrac,
			StoreHits: delta.StoreHits, StoreMisses: delta.StoreMisses,
			SegmentBytes: st.Stats().SegmentBytes, BitIdentical: ok,
		})
		if !ok {
			return rows, fmt.Errorf("simdb: store-backed merge decisions diverged at workers=%d on %s", workers, idProfile.Name)
		}
	}

	if !cfg.Quick && speedup < cfg.MinSpeedup {
		return rows, fmt.Errorf("simdb: store-backed startup %.2fx below the %.1fx floor (cold %.2fs, warm %.2fs)",
			speedup, cfg.MinSpeedup, float64(coldNS)/1e9, float64(warmNS)/1e9)
	}
	return rows, nil
}

// simdbStates keys every definition of a φ-demoted module.
func simdbStates(m *ir.Module) []simdbFuncState {
	defs := m.Definitions()
	states := make([]simdbFuncState, len(defs))
	for i, f := range defs {
		key, selfEq := global.AppendStableKey(nil, f)
		states[i] = simdbFuncState{f: f, key: key, hash: global.HashStableKey(key), self: selfEq}
	}
	return states
}

// buildIdentityModule deterministically reconstructs the identity corpus:
// the pristine profile build, optionally with the DeltaFrac edit applied —
// every call returns a bit-identical fresh module.
func buildIdentityModule(p workload.Profile, deltaFrac float64, edited bool) *ir.Module {
	c := buildServeCorpus(p)
	if edited {
		c.mutate(deltaFrac, 1)
	}
	return c.m
}
