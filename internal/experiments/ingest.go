package experiments

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// IngestResult is the machine-readable summary of one corpus-ingest
// measurement, serialized as a JSON line by cmd/fmsa-bench -exp ingest —
// the same trajectory-file shape as -exp perf.
type IngestResult struct {
	Experiment string `json:"experiment"` // always "ingest"
	// Corpus names the measured corpus, or "aggregate" for the sum row.
	Corpus string `json:"corpus"`
	// Format is the on-disk encoding ingested: "text" or "fmir".
	Format string `json:"format"`
	// Workers bounds parallel body decode (fmir) and file-level concurrency.
	Workers int `json:"workers"`
	// Bytes is the on-disk corpus size in this format.
	Bytes int64 `json:"bytes"`
	// Funcs and Insts size the decoded module.
	Funcs int `json:"funcs"`
	Insts int `json:"insts"`
	Runs  int `json:"runs"`
	// NsIngest is wall-clock nanoseconds to load the corpus from disk into
	// a verified-equivalent *ir.Module: the median across runs, with the
	// fastest run alongside.
	NsIngest    int64 `json:"ns_ingest"`
	NsIngestMin int64 `json:"ns_ingest_min"`
	// SpeedupVsText divides the text median by this row's median; set on
	// fmir rows only.
	SpeedupVsText float64 `json:"speedup_vs_text,omitempty"`
	// BitIdentical reports that exploring the fmir-ingested module commits
	// bit-identical merge records and final module text to exploring the
	// text-ingested one; set on fmir rows only.
	BitIdentical bool `json:"bit_identical,omitempty"`
	// Detail names the first divergence when BitIdentical is false.
	Detail string `json:"detail,omitempty"`
}

// IngestConfig selects one ingest measurement.
type IngestConfig struct {
	Workers int // <= 0 selects GOMAXPROCS
	Runs    int // <= 0 means 1
	// Threshold is the exploration threshold for the bit-identity gate.
	Threshold int
}

// timeIngest loads path n times and returns per-run wall-clock samples plus
// the last loaded module.
func timeIngest(path string, workers, runs int) ([]int64, *ir.Module, error) {
	samples := make([]int64, 0, runs)
	var m *ir.Module
	for i := 0; i < runs; i++ {
		start := time.Now()
		var err error
		m, err = wire.LoadFile(path, workers)
		if err != nil {
			return nil, nil, err
		}
		samples = append(samples, time.Since(start).Nanoseconds())
	}
	return samples, m, nil
}

// exploreIngested runs the merging pipeline on m and returns its report and
// final module text, for the bit-identity comparison between ingest paths.
func exploreIngested(m *ir.Module, target tti.Target, threshold, workers int) (*explore.Report, string) {
	opts := explore.DefaultOptions()
	opts.Threshold = threshold
	opts.Target = target
	opts.Workers = workers
	rep := explore.Run(m, opts)
	return rep, ir.FormatModule(m)
}

// Ingest emits every profile's corpus in both formats into a temporary
// directory, measures text-vs-fmir ingest wall time per corpus and in
// aggregate, and gates the fmir path on producing bit-identical explore
// results to text ingest. Returns an error naming the first corpus whose
// fmir ingest diverges.
func Ingest(profiles []workload.Profile, target tti.Target, cfg IngestConfig) ([]IngestResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	dir, err := os.MkdirTemp("", "fmsa-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	llPaths, err := workload.EmitCorpus(dir, workload.FormatText, profiles)
	if err != nil {
		return nil, err
	}
	fmirPaths, err := workload.EmitCorpus(dir, workload.FormatFMIR, profiles)
	if err != nil {
		return nil, err
	}

	var out []IngestResult
	var firstErr error
	var aggText, aggFMIR IngestResult
	for i, p := range profiles {
		textSamples, textMod, err := timeIngest(llPaths[i], cfg.Workers, cfg.Runs)
		if err != nil {
			return nil, err
		}
		fmirSamples, fmirMod, err := timeIngest(fmirPaths[i], cfg.Workers, cfg.Runs)
		if err != nil {
			return nil, err
		}
		// Text ingest names the module after its file path while fmir
		// embeds the original name; normalize so the comparison sees only
		// real structural differences.
		textMod.Name, fmirMod.Name = p.Name, p.Name
		textBytes := fileSize(llPaths[i])
		fmirBytes := fileSize(fmirPaths[i])
		textRow := IngestResult{
			Experiment: "ingest", Corpus: p.Name, Format: "text",
			Workers: cfg.Workers, Runs: cfg.Runs, Bytes: textBytes,
			Funcs: len(textMod.Funcs), Insts: textMod.NumInsts(),
			NsIngest: medianInt64(textSamples), NsIngestMin: minInt64(textSamples),
		}
		fmirRow := IngestResult{
			Experiment: "ingest", Corpus: p.Name, Format: "fmir",
			Workers: cfg.Workers, Runs: cfg.Runs, Bytes: fmirBytes,
			Funcs: len(fmirMod.Funcs), Insts: fmirMod.NumInsts(),
			NsIngest: medianInt64(fmirSamples), NsIngestMin: minInt64(fmirSamples),
		}
		if fmirRow.NsIngest > 0 {
			fmirRow.SpeedupVsText = float64(textRow.NsIngest) / float64(fmirRow.NsIngest)
		}
		// Bit-identity gate: the wire round trip must print identically to
		// the text round trip before exploration, and both ingest paths
		// must commit the same merges and produce the same final text.
		fmirRow.BitIdentical = true
		if textPrint, fmirPrint := ir.FormatModule(textMod), ir.FormatModule(fmirMod); textPrint != fmirPrint {
			fmirRow.BitIdentical, fmirRow.Detail = false, "decoded module text diverges before exploration"
		} else if err := ir.VerifyModule(fmirMod); err != nil {
			fmirRow.BitIdentical, fmirRow.Detail = false, fmt.Sprintf("decoded module fails verify: %v", err)
		} else {
			refRep, refText := exploreIngested(textMod, target, cfg.Threshold, cfg.Workers)
			gotRep, gotText := exploreIngested(fmirMod, target, cfg.Threshold, cfg.Workers)
			switch {
			case !reflect.DeepEqual(refRep.Records, gotRep.Records):
				fmirRow.BitIdentical, fmirRow.Detail = false, "merge records diverge"
			case refText != gotText:
				fmirRow.BitIdentical, fmirRow.Detail = false, "final module text diverges"
			}
		}
		if !fmirRow.BitIdentical && firstErr == nil {
			firstErr = fmt.Errorf("ingest cross-check failed on %s: %s", p.Name, fmirRow.Detail)
		}
		out = append(out, textRow, fmirRow)
		accumulateIngest(&aggText, textRow)
		accumulateIngest(&aggFMIR, fmirRow)
	}
	if len(profiles) > 1 {
		// The aggregate rows time the whole multi-file corpus through
		// wire.LoadFiles — concurrent across files, bounded by Workers,
		// with deterministic module order — rather than summing per-corpus
		// medians, so they reflect how fmsa-bench actually ingests suites.
		textAgg, err := timeIngestAll(llPaths, cfg.Workers, cfg.Runs)
		if err != nil {
			return nil, err
		}
		fmirAgg, err := timeIngestAll(fmirPaths, cfg.Workers, cfg.Runs)
		if err != nil {
			return nil, err
		}
		aggText.Experiment, aggText.Corpus, aggText.Format = "ingest", "aggregate", "text"
		aggText.Workers, aggText.Runs = cfg.Workers, cfg.Runs
		aggText.NsIngest, aggText.NsIngestMin = medianInt64(textAgg), minInt64(textAgg)
		aggFMIR.Experiment, aggFMIR.Corpus, aggFMIR.Format = "ingest", "aggregate", "fmir"
		aggFMIR.Workers, aggFMIR.Runs = cfg.Workers, cfg.Runs
		aggFMIR.NsIngest, aggFMIR.NsIngestMin = medianInt64(fmirAgg), minInt64(fmirAgg)
		if aggFMIR.NsIngest > 0 {
			aggFMIR.SpeedupVsText = float64(aggText.NsIngest) / float64(aggFMIR.NsIngest)
		}
		aggFMIR.BitIdentical = firstErr == nil
		out = append(out, aggText, aggFMIR)
	}
	return out, firstErr
}

// timeIngestAll loads a whole multi-file corpus with wire.LoadFiles n times
// and returns per-run wall-clock samples.
func timeIngestAll(paths []string, workers, runs int) ([]int64, error) {
	samples := make([]int64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := wire.LoadFiles(paths, workers); err != nil {
			return nil, err
		}
		samples = append(samples, time.Since(start).Nanoseconds())
	}
	return samples, nil
}

// accumulateIngest sums one corpus row's sizes into an aggregate row.
func accumulateIngest(agg *IngestResult, row IngestResult) {
	agg.Bytes += row.Bytes
	agg.Funcs += row.Funcs
	agg.Insts += row.Insts
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
