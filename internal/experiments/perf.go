package experiments

import (
	"fmt"
	"runtime"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// PerfResult is the machine-readable summary of one exploration performance
// measurement, serialized as a JSON line by cmd/fmsa-bench -exp perf so the
// performance trajectory can be tracked across revisions (BENCH_*.json).
type PerfResult struct {
	// Suite names the workload suite measured.
	Suite string `json:"suite"`
	// Workers is the exploration worker-pool size (1 = serial).
	Workers int `json:"workers"`
	// Ranking is the candidate-ranking mode: "exact" or "lsh".
	Ranking string `json:"ranking"`
	// Threshold is the exploration threshold t.
	Threshold int `json:"threshold"`
	// Runs is how many times the whole suite was explored.
	Runs int `json:"runs"`
	// MergeOps and CandidatesEvaluated sum over one pass of the suite.
	MergeOps            int `json:"merge_ops"`
	CandidatesEvaluated int `json:"candidates_evaluated"`
	// NsPerOp is wall-clock nanoseconds per suite exploration pass.
	NsPerOp int64 `json:"ns_per_op"`
	// MergesPerSec is committed merges per wall-clock second.
	MergesPerSec float64 `json:"merges_per_sec"`
	// PhaseNs breaks one pass down by pipeline phase. Fingerprint, Ranking
	// and UpdateCalls are wall-clock; Linearize, Align and CodeGen sum
	// per-attempt time across workers.
	PhaseNs map[string]int64 `json:"phase_ns"`
	// SpeedupVsSerial is the serial wall-clock divided by this
	// configuration's wall-clock (0 when no serial baseline was measured).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// RankProbes, RankPrefilterSkips and RankFallbacks sum the ranking
	// counters over one pass of the suite (see explore.Report).
	RankProbes         int64 `json:"rank_probes"`
	RankPrefilterSkips int64 `json:"rank_prefilter_skips"`
	RankFallbacks      int   `json:"rank_fallbacks"`
}

// Perf measures whole-suite exploration at the given worker count: modules
// are rebuilt outside the timed region, so NsPerOp isolates the exploration
// pipeline itself. workers <= 0 selects GOMAXPROCS.
func Perf(profiles []workload.Profile, target tti.Target, threshold, workers, runs int, ranking explore.RankingMode) PerfResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runs <= 0 {
		runs = 1
	}
	res := PerfResult{
		Suite:   suiteName(profiles),
		Workers: workers, Ranking: ranking.String(), Threshold: threshold, Runs: runs,
		PhaseNs: map[string]int64{},
	}
	var wall time.Duration
	var phases explore.Phases
	for r := 0; r < runs; r++ {
		mods := make([]*ir.Module, len(profiles))
		for i, p := range profiles {
			mods[i] = workload.Build(p)
		}
		start := time.Now()
		ops, cands := 0, 0
		var probes, skips int64
		fallbacks := 0
		for _, m := range mods {
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			opts.Workers = workers
			opts.Ranking = ranking
			rep := explore.Run(m, opts)
			ops += rep.MergeOps
			cands += rep.CandidatesEvaluated
			probes += rep.RankProbes
			skips += rep.RankPrefilterSkips
			fallbacks += rep.RankFallbacks
			phases.Fingerprint += rep.Phases.Fingerprint
			phases.Ranking += rep.Phases.Ranking
			phases.Linearize += rep.Phases.Linearize
			phases.Align += rep.Phases.Align
			phases.CodeGen += rep.Phases.CodeGen
			phases.UpdateCalls += rep.Phases.UpdateCalls
		}
		wall += time.Since(start)
		res.MergeOps, res.CandidatesEvaluated = ops, cands
		res.RankProbes, res.RankPrefilterSkips, res.RankFallbacks = probes, skips, fallbacks
	}
	res.NsPerOp = wall.Nanoseconds() / int64(runs)
	if wall > 0 {
		res.MergesPerSec = float64(res.MergeOps*runs) / wall.Seconds()
	}
	res.PhaseNs["fingerprint"] = phases.Fingerprint.Nanoseconds() / int64(runs)
	res.PhaseNs["ranking"] = phases.Ranking.Nanoseconds() / int64(runs)
	res.PhaseNs["linearize"] = phases.Linearize.Nanoseconds() / int64(runs)
	res.PhaseNs["align"] = phases.Align.Nanoseconds() / int64(runs)
	res.PhaseNs["codegen"] = phases.CodeGen.Nanoseconds() / int64(runs)
	res.PhaseNs["update_calls"] = phases.UpdateCalls.Nanoseconds() / int64(runs)
	return res
}

func suiteName(profiles []workload.Profile) string {
	if len(profiles) == 0 {
		return "empty"
	}
	return fmt.Sprintf("%s+%d", profiles[0].Name, len(profiles))
}
