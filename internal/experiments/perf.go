package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// PerfResult is the machine-readable summary of one exploration performance
// measurement, serialized as a JSON line by cmd/fmsa-bench -exp perf so the
// performance trajectory can be tracked across revisions (BENCH_*.json).
type PerfResult struct {
	// Suite names the workload suite (or single corpus) measured.
	Suite string `json:"suite"`
	// Workers is the exploration worker-pool size (1 = serial).
	Workers int `json:"workers"`
	// Ranking is the candidate-ranking mode: "exact" or "lsh".
	Ranking string `json:"ranking"`
	// Kernel is the alignment kernel: "coded" or "closure".
	Kernel string `json:"kernel"`
	// Caches reports whether the linearization cache and alignment memo
	// were enabled.
	Caches bool `json:"caches"`
	// Threshold is the exploration threshold t.
	Threshold int `json:"threshold"`
	// Bound reports whether pre-codegen profitability bounding was enabled.
	Bound bool `json:"bound"`
	// Runs is how many times the whole suite was explored.
	Runs int `json:"runs"`
	// MergeOps and CandidatesEvaluated sum over one pass of the suite.
	MergeOps            int `json:"merge_ops"`
	CandidatesEvaluated int `json:"candidates_evaluated"`
	// NsPerOp is wall-clock nanoseconds per suite exploration pass: the
	// median across runs (the stable central figure BENCH_*.json rows track).
	NsPerOp int64 `json:"ns_per_op"`
	// NsPerOpMin is the fastest run's wall-clock — the least-noise sample.
	// Equal to NsPerOp when Runs == 1.
	NsPerOpMin int64 `json:"ns_per_op_min"`
	// MergesPerSec is committed merges per wall-clock second (median run).
	MergesPerSec float64 `json:"merges_per_sec"`
	// PhaseNs breaks one pass down by pipeline phase, taking the per-phase
	// median across runs. Fingerprint, Ranking and UpdateCalls are
	// wall-clock; Linearize, Align and CodeGen sum per-attempt time across
	// workers. PhaseNsMin holds the per-phase minima.
	PhaseNs    map[string]int64 `json:"phase_ns"`
	PhaseNsMin map[string]int64 `json:"phase_ns_min,omitempty"`
	// SpeedupVsSerial is the serial wall-clock divided by this
	// configuration's wall-clock (0 when no serial baseline was measured).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// RankProbes, RankPrefilterSkips and RankFallbacks sum the ranking
	// counters over one pass of the suite (see explore.Report).
	RankProbes         int64 `json:"rank_probes"`
	RankPrefilterSkips int64 `json:"rank_prefilter_skips"`
	RankFallbacks      int   `json:"rank_fallbacks"`
	// AlignCells counts dynamic-programming cells across all alignments of
	// one pass — the kernel-independent measure of alignment work actually
	// performed (memo hits skip their cells entirely).
	AlignCells int64 `json:"align_cells"`
	// SeqCacheHits/Misses count linearization-cache lookups; hit rates are
	// scheduling-dependent under Workers > 1.
	SeqCacheHits   int64 `json:"seq_cache_hits"`
	SeqCacheMisses int64 `json:"seq_cache_misses"`
	// AlignMemoHits/Misses count alignment-memo lookups.
	AlignMemoHits   int64 `json:"align_memo_hits"`
	AlignMemoMisses int64 `json:"align_memo_misses"`
	// BoundEvals/CodegenSkips count profitability-bound evaluations and the
	// subset that skipped merged-function materialization. Zero when Bound
	// is false.
	BoundEvals   int64 `json:"bound_evals"`
	CodegenSkips int64 `json:"codegen_skips"`
	// Verify is the IR verification level the pipeline ran under ("off"
	// unless -verify was given); VerifiedFuncs and VerifyDiags count the
	// functions the gates checked and the findings they produced.
	Verify        string `json:"verify,omitempty"`
	VerifiedFuncs int64  `json:"verified_funcs,omitempty"`
	VerifyDiags   int    `json:"verify_diags,omitempty"`
}

// PerfConfig selects one exploration configuration to measure.
type PerfConfig struct {
	Threshold int
	Workers   int // <= 0 selects GOMAXPROCS
	Runs      int // <= 0 means 1
	Ranking   explore.RankingMode
	Kernel    explore.KernelMode
	NoCaches  bool // disable both the linearization cache and the align memo
	NoBound   bool // disable pre-codegen profitability bounding
	Verify    ir.VerifyLevel
}

// apply copies the configuration onto exploration options.
func (c PerfConfig) apply(opts *explore.Options) {
	opts.Threshold = c.Threshold
	opts.Ranking = c.Ranking
	opts.Kernel = c.Kernel
	opts.NoSeqCache = c.NoCaches
	opts.NoAlignMemo = c.NoCaches
	opts.NoBound = c.NoBound
	opts.Verify = c.Verify
}

// Perf measures whole-suite exploration under one configuration: modules are
// rebuilt outside the timed region, so NsPerOp isolates the exploration
// pipeline itself.
func Perf(profiles []workload.Profile, target tti.Target, cfg PerfConfig) PerfResult {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	res := PerfResult{
		Suite:   suiteName(profiles),
		Workers: cfg.Workers, Ranking: cfg.Ranking.String(),
		Kernel: cfg.Kernel.String(), Caches: !cfg.NoCaches,
		Bound:     !cfg.NoBound,
		Threshold: cfg.Threshold, Runs: cfg.Runs,
		Verify:  cfg.Verify.String(),
		PhaseNs: map[string]int64{},
	}
	// Per-run samples: the reported figures are the medians across runs
	// (stable against scheduler noise) with the per-run minima alongside.
	// Merge results and counters are deterministic across runs, so those are
	// simply taken from the last run.
	walls := make([]int64, 0, cfg.Runs)
	phaseRuns := make([]explore.Phases, 0, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		mods := make([]*ir.Module, len(profiles))
		for i, p := range profiles {
			mods[i] = workload.Build(p)
		}
		start := time.Now()
		ops, cands := 0, 0
		var probes, skips int64
		fallbacks := 0
		var cells, seqHits, seqMisses, memoHits, memoMisses int64
		var boundEvals, codegenSkips int64
		var verifiedFuncs int64
		verifyDiags := 0
		var phases explore.Phases
		for _, m := range mods {
			opts := explore.DefaultOptions()
			opts.Target = target
			opts.Workers = cfg.Workers
			cfg.apply(&opts)
			rep := explore.Run(m, opts)
			ops += rep.MergeOps
			cands += rep.CandidatesEvaluated
			probes += rep.RankProbes
			skips += rep.RankPrefilterSkips
			fallbacks += rep.RankFallbacks
			cells += rep.AlignCells
			seqHits += rep.SeqCacheHits
			seqMisses += rep.SeqCacheMisses
			memoHits += rep.AlignMemoHits
			memoMisses += rep.AlignMemoMisses
			boundEvals += rep.BoundEvals
			codegenSkips += rep.CodegenSkips
			verifiedFuncs += rep.VerifiedFuncs
			verifyDiags += len(rep.VerifyDiags)
			phases.Fingerprint += rep.Phases.Fingerprint
			phases.Ranking += rep.Phases.Ranking
			phases.Linearize += rep.Phases.Linearize
			phases.Align += rep.Phases.Align
			phases.CodeGen += rep.Phases.CodeGen
			phases.UpdateCalls += rep.Phases.UpdateCalls
			phases.Verify += rep.Phases.Verify
		}
		walls = append(walls, time.Since(start).Nanoseconds())
		phaseRuns = append(phaseRuns, phases)
		res.MergeOps, res.CandidatesEvaluated = ops, cands
		res.RankProbes, res.RankPrefilterSkips, res.RankFallbacks = probes, skips, fallbacks
		res.AlignCells = cells
		res.SeqCacheHits, res.SeqCacheMisses = seqHits, seqMisses
		res.AlignMemoHits, res.AlignMemoMisses = memoHits, memoMisses
		res.BoundEvals, res.CodegenSkips = boundEvals, codegenSkips
		res.VerifiedFuncs, res.VerifyDiags = verifiedFuncs, verifyDiags
	}
	res.NsPerOp = medianInt64(walls)
	res.NsPerOpMin = minInt64(walls)
	if res.NsPerOp > 0 {
		res.MergesPerSec = float64(res.MergeOps) / (float64(res.NsPerOp) / 1e9)
	}
	res.PhaseNsMin = map[string]int64{}
	for name, get := range phaseExtractors {
		samples := make([]int64, len(phaseRuns))
		for i, p := range phaseRuns {
			samples[i] = get(p).Nanoseconds()
		}
		res.PhaseNs[name] = medianInt64(samples)
		res.PhaseNsMin[name] = minInt64(samples)
	}
	return res
}

// phaseExtractors maps the BENCH phase_ns keys to their Phases fields.
var phaseExtractors = map[string]func(explore.Phases) time.Duration{
	"fingerprint":  func(p explore.Phases) time.Duration { return p.Fingerprint },
	"ranking":      func(p explore.Phases) time.Duration { return p.Ranking },
	"linearize":    func(p explore.Phases) time.Duration { return p.Linearize },
	"align":        func(p explore.Phases) time.Duration { return p.Align },
	"codegen":      func(p explore.Phases) time.Duration { return p.CodeGen },
	"update_calls": func(p explore.Phases) time.Duration { return p.UpdateCalls },
	"verify":       func(p explore.Phases) time.Duration { return p.Verify },
}

// medianInt64 returns the lower median of the samples (exact middle for odd
// counts), without mutating the input.
func medianInt64(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

func minInt64(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, v := range samples[1:] {
		m = min(m, v)
	}
	return m
}

// PerfCorpora measures each corpus of the suite separately under one
// configuration — the per-corpus rows of BENCH_PR4.json.
func PerfCorpora(profiles []workload.Profile, target tti.Target, cfg PerfConfig) []PerfResult {
	out := make([]PerfResult, 0, len(profiles))
	for _, p := range profiles {
		r := Perf([]workload.Profile{p}, target, cfg)
		r.Suite = p.Name
		out = append(out, r)
	}
	return out
}

func suiteName(profiles []workload.Profile) string {
	if len(profiles) == 0 {
		return "empty"
	}
	return fmt.Sprintf("%s+%d", profiles[0].Name, len(profiles))
}
