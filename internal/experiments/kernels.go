package experiments

import (
	"fmt"
	"reflect"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
	"fmsa/internal/workload"
)

// KernelCheckResult summarizes one corpus of the coded-vs-closure
// cross-check, serialized as a JSON line by cmd/fmsa-bench -exp kernels.
type KernelCheckResult struct {
	Corpus string `json:"corpus"`
	// MergeOps is the (identical) number of merges both pipelines commit.
	MergeOps int `json:"merge_ops"`
	// Match reports bit-identical records and final module text.
	Match bool `json:"match"`
	// Detail names the first divergence when Match is false.
	Detail string `json:"detail,omitempty"`
}

// KernelCrossCheck runs every corpus through the closure kernel with caches
// disabled (the pre-encoding reference pipeline) and through the default
// coded kernel with both caches on, on identically built modules, and
// compares the committed merge records and the final module text. This is
// the executable form of the bit-identical guarantee: an encoding bug, a
// kernel tie-break divergence or a stale cache entry all surface here as a
// mismatch. Returns an error naming the first diverging corpus.
func KernelCrossCheck(profiles []workload.Profile, target tti.Target, threshold, workers int) ([]KernelCheckResult, error) {
	runOne := func(p workload.Profile, kernel explore.KernelMode, noCaches bool) (*explore.Report, string) {
		m := workload.Build(p)
		opts := explore.DefaultOptions()
		opts.Threshold = threshold
		opts.Target = target
		opts.Workers = workers
		opts.Kernel = kernel
		opts.NoSeqCache = noCaches
		opts.NoAlignMemo = noCaches
		rep := explore.Run(m, opts)
		return rep, ir.FormatModule(m)
	}

	var out []KernelCheckResult
	var firstErr error
	for _, p := range profiles {
		ref, refMod := runOne(p, explore.KernelClosure, true)
		got, gotMod := runOne(p, explore.KernelCoded, false)
		r := KernelCheckResult{Corpus: p.Name, MergeOps: got.MergeOps, Match: true}
		switch {
		case !reflect.DeepEqual(ref.Records, got.Records):
			r.Match, r.Detail = false, "merge records diverge"
		case ref.SizeAfter != got.SizeAfter:
			r.Match, r.Detail = false,
				fmt.Sprintf("final size diverges: closure %d, coded %d", ref.SizeAfter, got.SizeAfter)
		case refMod != gotMod:
			r.Match, r.Detail = false, "final module text diverges"
		}
		if !r.Match && firstErr == nil {
			firstErr = fmt.Errorf("kernel cross-check failed on %s: %s", p.Name, r.Detail)
		}
		out = append(out, r)
	}
	return out, firstErr
}
