// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic workload suites: code-size reduction
// (Fig. 10/11, Tables I/II), rank-position CDF (Fig. 8), compile-time
// overhead and breakdown (Fig. 12/13), runtime impact with and without
// profile-guided exclusion (Fig. 14), plus the ablations the paper
// mentions in passing (parameter merging, §III-E; alignment algorithm and
// linearization order, §VII).
package experiments

import (
	"fmt"

	"fmsa/internal/align"
	"fmsa/internal/baseline"
	"fmsa/internal/core"
	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
	"fmsa/internal/tti"
)

// Technique is one of the compared merging techniques. Run mutates the
// module and reports what happened.
type Technique struct {
	Name string
	Run  func(m *ir.Module, target tti.Target) *explore.Report
}

// Identical is LLVM's identical-function merging.
func Identical() Technique {
	return Technique{
		Name: "Identical",
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			return baseline.RunIdentical(m, target)
		},
	}
}

// SOA is the state of the art, run after Identical per the paper's §V-A
// protocol.
func SOA() Technique {
	return Technique{
		Name: "SOA",
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			rep := baseline.RunIdentical(m, target)
			rep.Add(baseline.RunSOA(m, target))
			return rep
		},
	}
}

// FMSA is the paper's technique at the given exploration threshold, run
// after Identical per the §V-A protocol.
func FMSA(threshold int) Technique {
	return Technique{
		Name: fmt.Sprintf("FMSA[t=%d]", threshold),
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			rep := baseline.RunIdentical(m, target)
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			rep.Add(explore.Run(m, opts))
			return rep
		},
	}
}

// FMSAOracle is the exhaustive-exploration upper bound, approximated above
// 64 candidates per function (exact below — see explore.Options.OracleCap).
func FMSAOracle() Technique {
	return Technique{
		Name: "FMSA[oracle]",
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			rep := baseline.RunIdentical(m, target)
			opts := explore.DefaultOptions()
			opts.Oracle = true
			opts.OracleCap = 64
			opts.Target = target
			rep.Add(explore.Run(m, opts))
			return rep
		},
	}
}

// FMSAHotAware is FMSA with profile-guided exclusion of functions hotter
// than maxHotness (§V-D).
func FMSAHotAware(threshold int, maxHotness uint64) Technique {
	return Technique{
		Name: fmt.Sprintf("FMSA[t=%d,cold]", threshold),
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			rep := baseline.RunIdentical(m, target)
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			opts.MaxHotness = maxHotness
			rep.Add(explore.Run(m, opts))
			return rep
		},
	}
}

// FMSAVariant builds an FMSA technique with custom merge options, used by
// the ablation experiments.
func FMSAVariant(name string, threshold int, mutate func(*core.Options)) Technique {
	return Technique{
		Name: name,
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			rep := baseline.RunIdentical(m, target)
			opts := explore.DefaultOptions()
			opts.Threshold = threshold
			opts.Target = target
			mutate(&opts.Merge)
			rep.Add(explore.Run(m, opts))
			return rep
		},
	}
}

// Fig10Techniques returns the six configurations of Fig. 10/11.
func Fig10Techniques() []Technique {
	return []Technique{
		Identical(), SOA(), FMSA(1), FMSA(5), FMSA(10), FMSAOracle(),
	}
}

// AblationTechniques returns the design-choice ablations: parameter reuse
// off (§III-E's "up to 7%" claim), Hirschberg alignment, Smith-Waterman-
// style local alignment is excluded (it does not produce total alignments),
// and the two alternative linearization orders (§III-B).
func AblationTechniques() []Technique {
	return []Technique{
		FMSA(1),
		FMSAVariant("FMSA[no-param-reuse]", 1, func(o *core.Options) { o.ReuseParams = false }),
		FMSAVariant("FMSA[hirschberg]", 1, func(o *core.Options) {
			o.Align, o.AlignCoded = align.Hirschberg, align.HirschbergCodes
		}),
		FMSAVariant("FMSA[affine-gap]", 1, func(o *core.Options) {
			o.Align, o.AlignCoded = align.GotohAligner, align.GotohAlignerCodes
		}),
		FMSAVariant("FMSA[banded-32]", 1, func(o *core.Options) {
			o.Align, o.AlignCoded = align.BandedAligner(32), align.BandedAlignerCodes(32)
		}),
		FMSAVariant("FMSA[order=dfs]", 1, func(o *core.Options) { o.Order = linearize.OrderDFS }),
		FMSAVariant("FMSA[order=layout]", 1, func(o *core.Options) { o.Order = linearize.OrderLayout }),
		FMSACanonOrder(1),
	}
}

// FMSACanonOrder canonicalizes intra-block instruction order module-wide
// before merging — the instruction-reordering extension the paper proposes
// as future work (§VII) to maximize alignment matches.
func FMSACanonOrder(threshold int) Technique {
	return Technique{
		Name: "FMSA[canon-order]",
		Run: func(m *ir.Module, target tti.Target) *explore.Report {
			passes.CanonicalizeOrderModule(m)
			return FMSA(threshold).Run(m, target)
		},
	}
}
