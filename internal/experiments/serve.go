package experiments

// The serve experiment measures the warm merge-session daemon end to end:
// an in-process fmsa-serve instance takes a corpus cold, then a 1%-edited
// resubmission warm, and the wall-clock ratio is the payoff of session
// reuse (the PR 9 tentpole). Alongside the speedup gate it checks the
// properties the daemon sells: warm results bit-identical to cold for any
// worker count, FIFO latency under a resubmission stream, bounded
// admission (Busy under burst) and graceful drain (admitted work finishes
// during shutdown).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"fmsa/internal/explore"
	"fmsa/internal/ir"
	"fmsa/internal/serve"
	"fmsa/internal/tti"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// ServeConfig parameterizes the serve experiment.
type ServeConfig struct {
	// Threshold is the exploration threshold t (<= 0 selects 1).
	Threshold int
	// Workers is the per-merge worker count for the timing phases (<= 0
	// selects 1 — wall-clock gates are calibrated serial).
	Workers int
	// DeltaFrac is the fraction of functions edited between submissions
	// (<= 0 selects 0.01 — the 1% delta the speedup gate is defined on).
	DeltaFrac float64
	// Stream is the warm resubmission count for the latency phase (<= 0
	// selects 5).
	Stream int
	// Quick shrinks the corpus for a fast smoke run and skips the 5x
	// speedup gate (the corpus is too small for the ratio to be stable).
	Quick bool
	// MinSpeedup is the warm-speedup floor the full run gates on (<= 0
	// selects 5.0).
	MinSpeedup float64
}

// ServeResult is one JSON line of the serve experiment (BENCH_PR9.json).
type ServeResult struct {
	// Phase: "speedup", "identity", "latency", "backpressure" or "drain".
	Phase  string `json:"phase"`
	Corpus string `json:"corpus"`
	Funcs  int    `json:"funcs"`
	// Workers is the per-merge worker count of this phase's sessions.
	Workers int `json:"workers"`
	// DeltaFrac is the edited-function fraction between submissions.
	DeltaFrac float64 `json:"delta_frac,omitempty"`
	// ColdNS and WarmNS are server-side merge wall clocks for a cold
	// session and a warm resubmission of the same module; Speedup is their
	// ratio (speedup and identity phases).
	ColdNS  int64   `json:"cold_ns,omitempty"`
	WarmNS  int64   `json:"warm_ns,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
	// BitIdentical reports that warm and cold produced the same merge
	// sequence (records digest plus counts and final size).
	BitIdentical bool `json:"bit_identical"`
	// Submits counts completed submissions in this phase; Busy counts
	// admission refusals (backpressure phase).
	Submits int `json:"submits,omitempty"`
	Busy    int `json:"busy,omitempty"`
	// Client-observed latency percentiles and throughput for the warm
	// resubmission stream (latency phase).
	P50NS            int64   `json:"p50_ns,omitempty"`
	P95NS            int64   `json:"p95_ns,omitempty"`
	P99NS            int64   `json:"p99_ns,omitempty"`
	ThroughputPerSec float64 `json:"throughput_per_sec,omitempty"`
	// Changed/Unchanged echo the warm submit's delta classification.
	Changed   int `json:"changed,omitempty"`
	Unchanged int `json:"unchanged,omitempty"`
}

// serveCorpus is one prepared corpus: the module (mutated in place between
// encodes) plus its current fmir bytes.
type serveCorpus struct {
	name  string
	m     *ir.Module
	funcs int
}

func buildServeCorpus(p workload.Profile) *serveCorpus {
	m := workload.Build(p)
	return &serveCorpus{name: p.Name, m: m, funcs: len(m.Definitions())}
}

func (c *serveCorpus) encode() ([]byte, error) { return wire.Encode(c.m) }

// mutate edits frac of the corpus's functions in place — each selected
// function gets one integer-constant operand bumped, which changes its
// stable hash (and so diffs as "changed") without perturbing anything
// else. salt rotates which functions are selected so successive deltas
// touch different neighborhoods, like successive edits in a real corpus
// would. Returns how many functions were actually edited.
func (c *serveCorpus) mutate(frac float64, salt int) int {
	defs := c.m.Definitions()
	want := int(float64(len(defs)) * frac)
	if want < 1 {
		want = 1
	}
	edited := 0
	for off := 0; off < len(defs) && edited < want; off++ {
		f := defs[(off+salt*want)%len(defs)]
		if mutateOneConst(f, int64(salt)+1) {
			edited++
		}
	}
	return edited
}

// mutateOneConst bumps the first integer-constant operand found in f.
func mutateOneConst(f *ir.Func, by int64) bool {
	done := false
	f.Insts(func(in *ir.Inst) {
		if done {
			return
		}
		for i := 0; i < in.NumOperands(); i++ {
			if ci, ok := in.Operand(i).(*ir.ConstInt); ok {
				in.SetOperand(i, ir.NewConstInt(ci.Type(), ci.V+by))
				done = true
				return
			}
		}
	})
	return done
}

// serveHarness wraps one in-process server plus a client connection.
type serveHarness struct {
	srv *serve.Server
	cl  *serve.Client
}

func startServe(opts explore.Options, maxInFlight int) (*serveHarness, error) {
	srv := serve.New(serve.Config{Explore: opts, MaxInFlight: maxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	cl, err := serve.Dial(ln.Addr().String())
	if err != nil {
		srv.Shutdown(context.Background())
		return nil, err
	}
	return &serveHarness{srv: srv, cl: cl}, nil
}

func (h *serveHarness) stop() {
	h.cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	h.srv.Shutdown(ctx)
}

func (h *serveHarness) submit(sess uint64, module []byte) (serve.Result, error) {
	p, err := h.cl.Submit(sess, module)
	if err != nil {
		return serve.Result{}, err
	}
	return p.Wait()
}

func sameMerges(a, b serve.Result) bool {
	return a.RecordsDigest == b.RecordsDigest && a.MergeOps == b.MergeOps &&
		a.SizeAfter == b.SizeAfter && a.CandidatesEvaluated == b.CandidatesEvaluated
}

// Serve runs the full experiment and returns one result row per phase (the
// identity phase yields one row per worker count). profiles supplies the
// corpus pool; the largest is measured.
func Serve(profiles []workload.Profile, tgt tti.Target, cfg ServeConfig) ([]ServeResult, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.DeltaFrac <= 0 {
		cfg.DeltaFrac = 0.01
	}
	if cfg.Stream <= 0 {
		cfg.Stream = 5
	}
	if cfg.MinSpeedup <= 0 {
		cfg.MinSpeedup = 5.0
	}

	// The timing corpus is the largest profile on offer; quick mode shrinks
	// it so the whole experiment smokes in seconds.
	big := profiles[0]
	for _, p := range profiles {
		if p.NumFuncs > big.NumFuncs {
			big = p
		}
	}
	idProfile := big
	if cfg.Quick {
		big.NumFuncs = 350
		if big.MaxSize > 200 {
			big.MaxSize = 200
		}
		idProfile = big
	} else {
		// Identity sweeps three worker counts x two sessions; the largest
		// corpus under a quarter of the timing corpus keeps that affordable
		// without weakening the property.
		best := workload.Profile{}
		for _, p := range profiles {
			if p.NumFuncs < big.NumFuncs/4 && p.NumFuncs > best.NumFuncs {
				best = p
			}
		}
		if best.NumFuncs > 0 {
			idProfile = best
		}
	}

	baseOpts := explore.DefaultOptions()
	baseOpts.Threshold = cfg.Threshold
	baseOpts.Target = tgt

	var rows []ServeResult

	// Phase 1+2: speedup on the big corpus, then warm/cold identity across
	// worker counts on the identity corpus.
	timing := baseOpts
	timing.Workers = cfg.Workers
	h, err := startServe(timing, 4)
	if err != nil {
		return nil, err
	}
	corpus := buildServeCorpus(big)
	base, err := corpus.encode()
	if err != nil {
		h.stop()
		return nil, err
	}
	warmSess, err := h.cl.Open(nil)
	if err != nil {
		h.stop()
		return nil, err
	}
	if _, err := h.submit(warmSess, base); err != nil {
		h.stop()
		return nil, err
	}
	corpus.mutate(cfg.DeltaFrac, 1)
	delta, err := corpus.encode()
	if err != nil {
		h.stop()
		return nil, err
	}
	warmRes, err := h.submit(warmSess, delta)
	if err != nil {
		h.stop()
		return nil, err
	}
	coldSess, err := h.cl.Open(nil)
	if err != nil {
		h.stop()
		return nil, err
	}
	coldRes, err := h.submit(coldSess, delta)
	if err != nil {
		h.stop()
		return nil, err
	}
	identical := sameMerges(warmRes, coldRes)
	speedup := float64(coldRes.WallNS) / float64(warmRes.WallNS)
	rows = append(rows, ServeResult{
		Phase: "speedup", Corpus: big.Name, Funcs: corpus.funcs, Workers: cfg.Workers,
		DeltaFrac: cfg.DeltaFrac, ColdNS: coldRes.WallNS, WarmNS: warmRes.WallNS,
		Speedup: speedup, BitIdentical: identical,
		Changed: warmRes.Delta.Changed, Unchanged: warmRes.Delta.Unchanged,
	})
	if !identical {
		h.stop()
		return rows, fmt.Errorf("serve: warm resubmit diverged from cold session on %s", big.Name)
	}
	if !warmRes.Delta.Warm || warmRes.Delta.Unchanged == 0 {
		h.stop()
		return rows, fmt.Errorf("serve: warm resubmit did not classify as warm: %+v", warmRes.Delta)
	}

	// Phase 3: latency/throughput of a warm resubmission stream, each round
	// editing another DeltaFrac of the corpus.
	lat := make([]time.Duration, 0, cfg.Stream)
	streamStart := time.Now()
	for i := 0; i < cfg.Stream; i++ {
		corpus.mutate(cfg.DeltaFrac, 2+i)
		mod, err := corpus.encode()
		if err != nil {
			h.stop()
			return rows, err
		}
		t0 := time.Now()
		res, err := h.submit(warmSess, mod)
		if err != nil {
			h.stop()
			return rows, err
		}
		lat = append(lat, time.Since(t0))
		if !res.Delta.Warm {
			h.stop()
			return rows, fmt.Errorf("serve: stream round %d ran cold: %+v", i, res.Delta)
		}
	}
	streamWall := time.Since(streamStart)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(lat)-1))
		return lat[idx].Nanoseconds()
	}
	rows = append(rows, ServeResult{
		Phase: "latency", Corpus: big.Name, Funcs: corpus.funcs, Workers: cfg.Workers,
		DeltaFrac: cfg.DeltaFrac, Submits: cfg.Stream, BitIdentical: true,
		P50NS: pct(0.50), P95NS: pct(0.95), P99NS: pct(0.99),
		ThroughputPerSec: float64(cfg.Stream) / streamWall.Seconds(),
	})
	h.stop()

	// Phase 4: identity across worker counts — warm and cold sessions must
	// agree for every Workers value, and with each other.
	idCorpus := buildServeCorpus(idProfile)
	idBase, err := idCorpus.encode()
	if err != nil {
		return rows, err
	}
	idCorpus.mutate(cfg.DeltaFrac, 1)
	idDelta, err := idCorpus.encode()
	if err != nil {
		return rows, err
	}
	var ref serve.Result
	for i, workers := range []int{1, 2, 8} {
		opts := baseOpts
		opts.Workers = workers
		hw, err := startServe(opts, 4)
		if err != nil {
			return rows, err
		}
		ws, err := hw.cl.Open(nil)
		if err != nil {
			hw.stop()
			return rows, err
		}
		if _, err := hw.submit(ws, idBase); err != nil {
			hw.stop()
			return rows, err
		}
		warm, err := hw.submit(ws, idDelta)
		if err != nil {
			hw.stop()
			return rows, err
		}
		cs, err := hw.cl.Open(nil)
		if err != nil {
			hw.stop()
			return rows, err
		}
		cold, err := hw.submit(cs, idDelta)
		hw.stop()
		if err != nil {
			return rows, err
		}
		ok := sameMerges(warm, cold)
		if i == 0 {
			ref = warm
		} else {
			ok = ok && sameMerges(warm, ref)
		}
		rows = append(rows, ServeResult{
			Phase: "identity", Corpus: idProfile.Name, Funcs: idCorpus.funcs,
			Workers: workers, DeltaFrac: cfg.DeltaFrac,
			ColdNS: cold.WallNS, WarmNS: warm.WallNS, BitIdentical: ok,
			Changed: warm.Delta.Changed, Unchanged: warm.Delta.Unchanged,
		})
		if !ok {
			return rows, fmt.Errorf("serve: warm/cold identity broken at workers=%d on %s", workers, idProfile.Name)
		}
	}

	// Phase 5: backpressure. A 1-slot server holding the big corpus must
	// refuse a burst of small submits with Busy, and the refused client
	// retries successfully once the slot frees.
	bp := baseOpts
	bp.Workers = cfg.Workers
	hb, err := startServe(bp, 1)
	if err != nil {
		return rows, err
	}
	bs, err := hb.cl.Open(nil)
	if err != nil {
		hb.stop()
		return rows, err
	}
	holder, err := hb.cl.Submit(bs, idBase)
	if err != nil {
		hb.stop()
		return rows, err
	}
	busy, accepted := 0, 0
	for i := 0; i < 16 && busy == 0; i++ {
		p, err := hb.cl.Submit(bs, idDelta)
		if errors.Is(err, serve.ErrBusy) {
			busy++
			break
		}
		if err != nil {
			hb.stop()
			return rows, err
		}
		accepted++
		if _, err := p.Wait(); err != nil {
			hb.stop()
			return rows, err
		}
	}
	if _, err := holder.Wait(); err != nil {
		hb.stop()
		return rows, err
	}
	// Retry after drain must succeed.
	retry, err := hb.submit(bs, idDelta)
	hb.stop()
	if err != nil {
		return rows, err
	}
	rows = append(rows, ServeResult{
		Phase: "backpressure", Corpus: idProfile.Name, Funcs: idCorpus.funcs,
		Workers: cfg.Workers, Submits: accepted + 2, Busy: busy,
		BitIdentical: true, Changed: retry.Delta.Changed,
	})
	if busy == 0 {
		return rows, errors.New("serve: burst past a 1-slot admission bound drew no Busy")
	}

	// Phase 6: graceful drain — an admitted submit survives Shutdown.
	hd, err := startServe(bp, 2)
	if err != nil {
		return rows, err
	}
	ds, err := hd.cl.Open(nil)
	if err != nil {
		hd.stop()
		return rows, err
	}
	pend, err := hd.cl.Submit(ds, idBase)
	if err != nil {
		hd.stop()
		return rows, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	drained := make(chan error, 1)
	go func() { drained <- hd.srv.Shutdown(ctx) }()
	res, err := pend.Wait()
	if err != nil {
		cancel()
		return rows, fmt.Errorf("serve: admitted submit lost during drain: %w", err)
	}
	err = <-drained
	cancel()
	hd.cl.Close()
	if err != nil {
		return rows, fmt.Errorf("serve: drain incomplete: %w", err)
	}
	rows = append(rows, ServeResult{
		Phase: "drain", Corpus: idProfile.Name, Funcs: idCorpus.funcs,
		Workers: cfg.Workers, Submits: 1, BitIdentical: true, Changed: res.Delta.Changed,
	})

	if !cfg.Quick && speedup < cfg.MinSpeedup {
		return rows, fmt.Errorf("serve: warm speedup %.2fx below the %.1fx floor (cold %.2fs, warm %.2fs)",
			speedup, cfg.MinSpeedup, float64(coldRes.WallNS)/1e9, float64(warmRes.WallNS)/1e9)
	}
	return rows, nil
}
