// Package simdb is the persistent corpus-scale similarity database
// (ROADMAP item 5, DESIGN.md §14): a content-addressed store of function
// similarity state — stable hash, canonical content key, rank-cache
// fingerprint, MinHash signature — that survives process restarts so a warm
// start rehydrates the LSH bands and fingerprints from disk instead of
// re-running fingerprint.Compute/ComputeSignature over an unchanged corpus.
//
// Identity and staleness mirror the PR-9 session table: a function is keyed
// by its PR-8 stable hash, disambiguated by the canonical content key bytes
// (global.AppendStableKey output). Key byte equality implies an identical
// (opcode, type) instruction sequence, which implies identical fingerprint
// and signature — so a key hit is never stale and reuse is bit-exact.
//
// On disk a store is one fmdb segment file (internal/wire): an append-only
// log of record and tombstone sections. Mutations accumulate in memory and
// Flush appends them as whole sections (O_APPEND), sorted by (hash, key) so
// the file bytes are deterministic for any worker count. Each flush writes
// its tombstone section before its record section: within one batch a
// pending record is always the key's live final state (Remove unlinks
// pending records), so records must replay after any same-batch tombstone —
// a remove-then-reput in one flush window stays live. Removals append
// tombstones whenever any file entry exists for the key; when the dead
// fraction of the file crosses the compaction threshold after a flush, the
// store rewrites itself live-only via a temp-file rename. Replay order makes
// the live set a pure function of the file bytes, so a reopened store equals
// the last-flushed state up to the last complete section: a crash partway
// through an appending flush leaves a truncated trailing section, which Open
// skips (wire.WalkDBPrefix) and the next flush or compaction truncates away
// before writing. Only a segment whose header never completely landed — a
// crash during the very first flush — is unrecoverable, and such a store
// never had a durable state to lose.
package simdb

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"sync"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/wire"
)

// Record is one live function's similarity state. Records are immutable once
// published: concurrent readers may hold a *Record across store mutations, so
// updates replace the table slot with a fresh record instead of mutating.
type Record struct {
	Hash    uint64
	Name    string
	Linkage ir.Linkage
	SelfEq  bool
	Size    int32 // instruction count (fingerprint Total)
	Key     []byte
	// Fp is the rank-cache fingerprint rehydrated from the sparse tables.
	// Its TypeFreq entries carry Key strings only (Type pointers are an
	// intra-package fingerprint detail and never serialized).
	Fp *fingerprint.Fingerprint
	// Sig is nil for records produced by exact-ranking runs that never
	// computed a signature; such records rehydrate fingerprints but do not
	// enter the LSH index.
	Sig *fingerprint.Signature
	// Bands holds Sig's LSH band keys under lsh.DefaultParams, computed at
	// Put time and persisted with the record so Rehydrate files the member
	// into its buckets without re-hashing any band. Nil for unsigned
	// records. A change to the default banding (or the band hash) is a
	// segment format change and must bump wire.DBVersion.
	Bands []uint64

	// flushed marks this exact record as present in the segment file;
	// onDisk marks the (hash, key) as having *some* file entry — this
	// record or a flushed predecessor it superseded. A superseding record
	// is unflushed but onDisk, and removing it must still tombstone the
	// predecessor's file entry or the predecessor resurrects on replay.
	flushed bool
	onDisk  bool
}

// Options tunes a store. The zero value selects the defaults.
type Options struct {
	// AutoCompactMin is the minimum dead-entry count before a flush may
	// trigger auto-compaction. Default 64.
	AutoCompactMin int
	// AutoCompactRatio triggers compaction when dead > ratio × written
	// file entries after a flush. Default 0.5; negative disables
	// auto-compaction entirely.
	AutoCompactRatio float64
}

const (
	defaultAutoCompactMin   = 64
	defaultAutoCompactRatio = 0.5
)

// Store is a persistent similarity database over one segment file. All
// methods are safe for concurrent use; lookups take a read lock.
type Store struct {
	mu   sync.RWMutex
	path string
	name string
	opts Options

	// table maps stable hash → records with that hash (key bytes
	// disambiguate FNV collisions). Slot replacement, never mutation.
	table map[uint64][]*Record
	live  int

	hasHeader bool // segment file exists with a header on disk
	written   int  // record + tombstone entries appended to the file
	compacts  int  // completed compactions

	// tailTrunc is the valid-prefix length of a segment whose tail was cut
	// mid-append (crash during Flush); the next write truncates the file to
	// this length before appending. -1 when the file has no damaged tail.
	tailTrunc int64

	pend      []*Record // records not yet in the file
	pendTombs []wire.DBTombstone
}

// Open loads the segment at path, or creates an empty store bound to it when
// the file does not exist yet (nothing is written until the first Flush).
// name labels a newly created store; an existing file keeps its stored name.
func Open(path, name string, opts Options) (*Store, error) {
	if opts.AutoCompactMin == 0 {
		opts.AutoCompactMin = defaultAutoCompactMin
	}
	if opts.AutoCompactRatio == 0 {
		opts.AutoCompactRatio = defaultAutoCompactRatio
	}
	s := &Store{path: path, name: name, opts: opts,
		table: map[uint64][]*Record{}, tailTrunc: -1}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	// Replay allocation is batched: records, fingerprints and signatures come
	// from arena chunks (a signed record is ~1.3 KiB of mostly pointer-free
	// state — per-record allocations would dominate a large segment's replay),
	// and the table is presized from the segment size so rehydration never
	// rehashes.
	var arena replayArena
	s.table = make(map[uint64][]*Record, len(data)/1024)
	var walkErr error
	stored, good, err := wire.WalkDBPrefix(data,
		func(w wire.DBRecord) {
			if walkErr != nil {
				return
			}
			rec, err := arena.wireToRecord(&w)
			if err != nil {
				walkErr = err
				return
			}
			rec.flushed = true
			rec.onDisk = true
			s.written++
			// The common replay case — first record for its hash — takes a
			// table slot carved from the arena; collisions and in-file
			// supersedes (rare) fall back to the general upsert.
			if _, taken := s.table[rec.Hash]; !taken {
				s.table[rec.Hash] = arena.slot(rec)
				s.live++
			} else {
				s.upsertLocked(rec)
			}
		},
		func(t wire.DBTombstone) {
			s.written++
			s.dropLocked(t.Hash, t.Key)
		})
	if err != nil {
		return nil, fmt.Errorf("simdb: %s: %w", path, err)
	}
	if walkErr != nil {
		return nil, fmt.Errorf("simdb: %s: %w", path, walkErr)
	}
	s.name = stored
	s.hasHeader = true
	if good < len(data) {
		// Crash tail: a flush was cut mid-append. The replayed prefix is the
		// last durable state; the garbage past it is truncated away by the
		// next flush or compaction so the log stays strictly well-formed.
		s.tailTrunc = int64(good)
	}
	return s, nil
}

// Path returns the segment file path.
func (s *Store) Path() string { return s.path }

// Name returns the store label from the segment header.
func (s *Store) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.name
}

// Len returns the live record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Lookup returns the live record for (hash, key), or nil. The returned
// record is shared and must not be mutated; key bytes are compared, not
// aliased, so any equal byte slice matches.
func (s *Store) Lookup(hash uint64, key []byte) *Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.table[hash] {
		if bytes.Equal(r.Key, key) {
			return r
		}
	}
	return nil
}

// Put upserts r's similarity state. A record with the same (hash, key) —
// identical content — is kept unless r upgrades it: adding a signature where
// none was stored, or (for records not yet on disk) a lexicographically
// smaller name, so in-memory state is order-insensitive while flushed names
// stay stable and never force a supersede write. r.Fp must be non-nil; the
// store retains r.Key, r.Fp, r.Sig and r.Bands without copying, and derives
// the band keys from r.Sig when the caller left r.Bands nil.
func (s *Store) Put(r Record) {
	if r.Fp == nil {
		panic("simdb: Put without fingerprint")
	}
	if r.Sig != nil && r.Bands == nil {
		r.Bands = lsh.AppendBandKeys(lsh.Params{}, r.Sig, nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.table[r.Hash]
	for i, old := range recs {
		if !bytes.Equal(old.Key, r.Key) {
			continue
		}
		name := old.Name
		if !old.flushed && r.Name < name {
			name = r.Name
		}
		sig, bands := old.Sig, old.Bands
		if sig == nil {
			sig, bands = r.Sig, r.Bands
		}
		if name == old.Name && sig == old.Sig {
			return // nothing new
		}
		nr := &Record{
			Hash: old.Hash, Name: name, Linkage: old.Linkage, SelfEq: old.SelfEq,
			Size: old.Size, Key: old.Key, Fp: old.Fp, Sig: sig, Bands: bands,
			onDisk: old.onDisk,
		}
		recs[i] = nr
		if old.flushed {
			s.pend = append(s.pend, nr) // supersedes the file entry on replay
		} else {
			for j, p := range s.pend {
				if p == old {
					s.pend[j] = nr
					break
				}
			}
		}
		return
	}
	nr := &Record{
		Hash: r.Hash, Name: r.Name, Linkage: r.Linkage, SelfEq: r.SelfEq,
		Size: r.Size, Key: r.Key, Fp: r.Fp, Sig: r.Sig, Bands: r.Bands,
	}
	s.table[r.Hash] = append(recs, nr)
	s.live++
	s.pend = append(s.pend, nr)
}

// Remove deletes the live record for (hash, key), reporting whether one
// existed. Any file entry for the key — the record itself, or a flushed
// predecessor an unflushed record superseded — is removed by tombstone at
// the next Flush; a record that never reached the file is simply unlinked
// from the pending batch.
func (s *Store) Remove(hash uint64, key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.dropLocked(hash, key)
	if old == nil {
		return false
	}
	if old.onDisk {
		s.pendTombs = append(s.pendTombs, wire.DBTombstone{Hash: hash, Key: key})
	}
	if !old.flushed {
		for j, p := range s.pend {
			if p == old {
				s.pend = append(s.pend[:j], s.pend[j+1:]...)
				break
			}
		}
	}
	return true
}

// upsertLocked installs rec, replacing any same-key slot (file replay:
// later record wins).
func (s *Store) upsertLocked(rec *Record) {
	recs := s.table[rec.Hash]
	for i, old := range recs {
		if bytes.Equal(old.Key, rec.Key) {
			recs[i] = rec
			return
		}
	}
	s.table[rec.Hash] = append(recs, rec)
	s.live++
}

// dropLocked unlinks the live record for (hash, key) and returns it.
func (s *Store) dropLocked(hash uint64, key []byte) *Record {
	recs := s.table[hash]
	for i, old := range recs {
		if bytes.Equal(old.Key, key) {
			recs[i] = recs[len(recs)-1]
			recs = recs[:len(recs)-1]
			if len(recs) == 0 {
				delete(s.table, hash)
			} else {
				s.table[hash] = recs
			}
			s.live--
			return old
		}
	}
	return nil
}

// Flush appends pending tombstones and records to the segment file as whole
// sections — tombstones first, because a key with both in one batch is one
// that was removed and re-put inside the flush window, and its record must
// win on replay — each sorted by (hash, key) so the bytes are independent of
// insertion order, then auto-compacts if the dead fraction crossed the
// threshold. A no-op when nothing is pending.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pend) == 0 && len(s.pendTombs) == 0 {
		return nil
	}
	sortRecords(s.pend)
	tombs := s.pendTombs
	sort.Slice(tombs, func(i, j int) bool {
		if tombs[i].Hash != tombs[j].Hash {
			return tombs[i].Hash < tombs[j].Hash
		}
		return bytes.Compare(tombs[i].Key, tombs[j].Key) < 0
	})
	var buf []byte
	if !s.hasHeader {
		buf = wire.AppendDBHeader(buf, s.name)
	}
	if len(tombs) > 0 {
		buf = wire.AppendDBTombstones(buf, tombs)
	}
	if len(s.pend) > 0 {
		ws := make([]wire.DBRecord, len(s.pend))
		for i, r := range s.pend {
			ws[i] = recordToWire(r)
		}
		buf = wire.AppendDBRecords(buf, ws)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if s.tailTrunc >= 0 {
		// Drop the crash tail left by an interrupted flush before appending;
		// O_APPEND writes land at the new, truncated end.
		if err := f.Truncate(s.tailTrunc); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	s.hasHeader = true
	s.tailTrunc = -1
	s.written += len(s.pend) + len(tombs)
	for _, r := range s.pend {
		r.flushed = true
		r.onDisk = true
	}
	s.pend, s.pendTombs = nil, nil
	if dead := s.written - s.live; s.opts.AutoCompactRatio >= 0 &&
		dead >= s.opts.AutoCompactMin &&
		float64(dead) > s.opts.AutoCompactRatio*float64(s.written) {
		return s.compactLocked()
	}
	return nil
}

// Compact rewrites the segment live-only (pending state included), dropping
// superseded records and tombstones via a temp-file rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	liveRecs := s.liveLocked()
	buf := wire.AppendDBHeader(nil, s.name)
	if len(liveRecs) > 0 {
		ws := make([]wire.DBRecord, len(liveRecs))
		for i, r := range liveRecs {
			ws[i] = recordToWire(r)
		}
		buf = wire.AppendDBRecords(buf, ws)
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	s.hasHeader = true
	s.tailTrunc = -1 // full rewrite: any crash tail is gone with the old file
	s.written = len(liveRecs)
	for _, r := range liveRecs {
		r.flushed = true
		r.onDisk = true
	}
	s.pend, s.pendTombs = nil, nil
	s.compacts++
	return nil
}

// Live returns the live records sorted by (hash, key) — the canonical order,
// identical for any mutation history reaching the same live set.
func (s *Store) Live() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveLocked()
}

func (s *Store) liveLocked() []*Record {
	all := make([]*Record, 0, s.live)
	for _, recs := range s.table {
		all = append(all, recs...)
	}
	sortRecords(all)
	return all
}

// sortRecords orders records by (hash, key) — a total order, since live
// records are unique per (hash, key).
func sortRecords(recs []*Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Hash != recs[j].Hash {
			return recs[i].Hash < recs[j].Hash
		}
		return bytes.Compare(recs[i].Key, recs[j].Key) < 0
	})
}

// Rehydrate builds a banded LSH index over the live set without recomputing
// any signature: records are assigned dense ids in canonical order (the
// index into the returned slice) and every signed record is inserted —
// straight from its persisted band keys when the record carries a full set
// for p's banding, re-hashed from the signature otherwise. Unsigned records
// appear in the slice but not the index.
func (s *Store) Rehydrate(p lsh.Params) (*lsh.Index, []*Record) {
	liveRecs := s.Live()
	// Persisted band keys are computed under the default banding; any other
	// banding re-hashes from the signatures (a matching band count alone
	// would not prove matching row grouping).
	stored := p == lsh.Params{} || p == lsh.DefaultParams()
	nb := p.NumBands()
	keys := make([][]uint64, len(liveRecs))
	for id, r := range liveRecs {
		switch {
		case stored && len(r.Bands) == nb:
			keys[id] = r.Bands
		case r.Sig != nil:
			keys[id] = lsh.AppendBandKeys(p, r.Sig, nil)
		}
	}
	return lsh.NewFromBandKeys(p, keys), liveRecs
}

// Stats is a point-in-time summary of store and segment state.
type Stats struct {
	Name         string
	Path         string
	Live         int // live records
	Signed       int // live records carrying a MinHash signature
	Written      int // record+tombstone entries in the segment file
	Dead         int // file entries superseded or tombstoned
	PendingRecs  int // records awaiting Flush
	PendingTombs int
	Compactions  int
	SegmentBytes int64 // current file size (0 when not yet created)
	// TailBytes counts garbage bytes past the last complete section — the
	// remnant of a flush interrupted by a crash, skipped on Open and
	// truncated away by the next flush or compaction. 0 for a clean log.
	TailBytes int64
}

// Stats returns current counters; segment size comes from the filesystem.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Name: s.name, Path: s.path,
		Live: s.live, Written: s.written, Dead: s.written - s.live,
		PendingRecs: len(s.pend), PendingTombs: len(s.pendTombs),
		Compactions: s.compacts,
	}
	for _, recs := range s.table {
		for _, r := range recs {
			if r.Sig != nil {
				st.Signed++
			}
		}
	}
	if fi, err := os.Stat(s.path); err == nil {
		st.SegmentBytes = fi.Size()
		if s.tailTrunc >= 0 && fi.Size() > s.tailTrunc {
			st.TailBytes = fi.Size() - s.tailTrunc
		}
	}
	return st
}

// recordToWire lowers a record to its wire form. Fingerprint tables go
// sparse: only non-zero opcode counts, type entries keyed by spelling.
func recordToWire(r *Record) wire.DBRecord {
	w := wire.DBRecord{
		Hash: r.Hash, Name: r.Name, Linkage: byte(r.Linkage),
		Size: int(r.Size), Key: r.Key,
	}
	if r.SelfEq {
		w.Flags |= wire.DBSelfEq
	}
	for op, c := range r.Fp.OpFreq {
		if c != 0 {
			w.Ops = append(w.Ops, wire.DBOpCount{Op: int32(op), Count: c})
		}
	}
	if n := len(r.Fp.TypeFreq); n > 0 {
		w.Types = make([]wire.DBTypeCount, n)
		for i, tc := range r.Fp.TypeFreq {
			w.Types[i] = wire.DBTypeCount{Key: tc.Key, Count: tc.Count}
		}
	}
	if r.Sig != nil {
		w.MinHash = r.Sig[:]
		w.Bands = r.Bands
	}
	return w
}

// replayArena batch-allocates the objects a segment replay produces. Chunked
// slices hand out one element at a time; everything a chunk holds is live
// for the store's lifetime anyway, so batching only removes per-object
// allocator and GC-scan overhead, never retention.
type replayArena struct {
	recs  []Record
	fps   []fingerprint.Fingerprint
	sigs  []fingerprint.Signature
	tcs   []fingerprint.TypeCount
	bands []uint64
	ptrs  []*Record
}

const replayChunk = 512

func (a *replayArena) record() *Record {
	if len(a.recs) == 0 {
		a.recs = make([]Record, replayChunk)
	}
	r := &a.recs[0]
	a.recs = a.recs[1:]
	return r
}

func (a *replayArena) fingerprint() *fingerprint.Fingerprint {
	if len(a.fps) == 0 {
		a.fps = make([]fingerprint.Fingerprint, replayChunk)
	}
	fp := &a.fps[0]
	a.fps = a.fps[1:]
	return fp
}

func (a *replayArena) signature() *fingerprint.Signature {
	if len(a.sigs) == 0 {
		a.sigs = make([]fingerprint.Signature, replayChunk)
	}
	sig := &a.sigs[0]
	a.sigs = a.sigs[1:]
	return sig
}

// slot returns a capacity-1 table slot holding r. Nearly every hash maps to
// exactly one record, so carving the singleton slices from a chunk removes a
// per-record allocation; a later append (hash collision, session Put) simply
// reallocates past the capacity without touching the chunk.
func (a *replayArena) slot(r *Record) []*Record {
	if len(a.ptrs) == 0 {
		a.ptrs = make([]*Record, replayChunk)
	}
	s := a.ptrs[0:1:1]
	s[0] = r
	a.ptrs = a.ptrs[1:]
	return s
}

func (a *replayArena) typeCounts(n int) []fingerprint.TypeCount {
	if len(a.tcs) < n {
		a.tcs = make([]fingerprint.TypeCount, max(replayChunk, n))
	}
	out := a.tcs[:n:n]
	a.tcs = a.tcs[n:]
	return out
}

func (a *replayArena) bandKeys(n int) []uint64 {
	if len(a.bands) < n {
		a.bands = make([]uint64, max(replayChunk, n))
	}
	out := a.bands[:n:n]
	a.bands = a.bands[n:]
	return out
}

// wireToRecord validates and lifts a wire record: opcodes must be in range,
// and the lane count must be exactly fingerprint.SigLanes or zero. Key bytes
// alias the segment buffer (zero-copy); the wire record's scratch slices are
// copied into arena-backed state.
func (a *replayArena) wireToRecord(w *wire.DBRecord) (*Record, error) {
	rec := a.record()
	*rec = Record{
		Hash: w.Hash, Name: w.Name, Linkage: ir.Linkage(w.Linkage),
		SelfEq: w.Flags&wire.DBSelfEq != 0, Size: int32(w.Size), Key: w.Key,
	}
	fp := a.fingerprint()
	fp.Total = int32(w.Size)
	for _, oc := range w.Ops {
		if oc.Op < 0 || oc.Op >= int32(ir.NumOpcodes) {
			return nil, fmt.Errorf("record %q: opcode %d out of range", w.Name, oc.Op)
		}
		fp.OpFreq[oc.Op] = oc.Count
	}
	if n := len(w.Types); n > 0 {
		fp.TypeFreq = a.typeCounts(n)
		for i, tc := range w.Types {
			fp.TypeFreq[i] = fingerprint.TypeCount{Key: tc.Key, Count: tc.Count}
		}
	}
	rec.Fp = fp
	switch len(w.MinHash) {
	case 0:
	case fingerprint.SigLanes:
		sig := a.signature()
		copy(sig[:], w.MinHash)
		rec.Sig = sig
	default:
		return nil, fmt.Errorf("record %q: %d MinHash lanes, want %d or none",
			w.Name, len(w.MinHash), fingerprint.SigLanes)
	}
	if n := len(w.Bands); n > 0 {
		if rec.Sig == nil {
			return nil, fmt.Errorf("record %q: band keys without a signature", w.Name)
		}
		rec.Bands = a.bandKeys(n)
		copy(rec.Bands, w.Bands)
	}
	return rec, nil
}
