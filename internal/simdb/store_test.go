package simdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fmsa/internal/fingerprint"
	"fmsa/internal/global"
	"fmsa/internal/ir"
	"fmsa/internal/lsh"
	"fmsa/internal/passes"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// genRecords generates n structurally varied functions (a few const-variant
// clone pairs among them) and returns their full similarity records. Every
// kth record is left unsigned when unsignedMod > 0.
func genRecords(t testing.TB, n, unsignedMod int) []Record {
	t.Helper()
	m := ir.NewModule("db")
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		spec := workload.FuncSpec{
			Name: fmt.Sprintf("f%03d", i), Seed: int64(1 + i/2), Scalar: ir.I64(),
			NumParams: 2, Regions: 2 + i%3, OpsPerBlock: 5, ConstSalt: int64(i),
		}
		f := workload.Generate(m, spec)
		passes.DemotePhis(f)
		key, selfEq := global.AppendStableKey(nil, f)
		fp := fingerprint.Compute(f)
		r := Record{
			Hash: global.HashStableKey(key), Name: f.Name(), Linkage: f.Linkage,
			SelfEq: selfEq, Size: fp.Total, Key: key, Fp: fp,
		}
		if unsignedMod == 0 || i%unsignedMod != 0 {
			r.Sig = fingerprint.ComputeSignature(f)
		}
		recs = append(recs, r)
	}
	return recs
}

func tmpStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "db.fmdb"), "test", opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exported strips unexported state so reopened stores can be compared
// field-for-field against the original live set.
func exported(recs []*Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = Record{
			Hash: r.Hash, Name: r.Name, Linkage: r.Linkage, SelfEq: r.SelfEq,
			Size: r.Size, Key: append([]byte(nil), r.Key...), Fp: r.Fp, Sig: r.Sig,
		}
	}
	return out
}

// probeAll asserts two indexes answer every probe identically.
func probeAll(t *testing.T, got, want *lsh.Index, recs []*Record) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("index size %d, want %d", got.Len(), want.Len())
	}
	for id, r := range recs {
		if r.Sig == nil {
			continue
		}
		g := got.Probe(r.Sig, int32(id))
		w := want.Probe(r.Sig, int32(id))
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("probe %d (%s): got %v want %v", id, r.Name, g, w)
		}
	}
}

// fromScratch builds the reference index the way a cold run would: insert
// every signed live record in canonical id order into a fresh index.
func fromScratch(p lsh.Params, recs []*Record) *lsh.Index {
	ix := lsh.New(p)
	for id, r := range recs {
		if r.Sig != nil {
			ix.Insert(int32(id), r.Sig)
		}
	}
	return ix
}

func TestStoreReopenRoundTrip(t *testing.T) {
	recs := genRecords(t, 20, 5)
	s := tmpStore(t, Options{})
	for _, r := range recs {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	wantLive := exported(s.Live())

	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Name() != "test" {
		t.Fatalf("reopened name %q, want test", re.Name())
	}
	gotLive := exported(re.Live())
	if len(gotLive) != len(wantLive) {
		t.Fatalf("live %d, want %d", len(gotLive), len(wantLive))
	}
	for i := range wantLive {
		g, w := gotLive[i], wantLive[i]
		// Fingerprint pointers differ across processes; compare content.
		if g.Hash != w.Hash || g.Name != w.Name || g.Linkage != w.Linkage ||
			g.SelfEq != w.SelfEq || g.Size != w.Size || !bytes.Equal(g.Key, w.Key) {
			t.Fatalf("record %d mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
		if !reflect.DeepEqual(g.Fp.OpFreq, w.Fp.OpFreq) || g.Fp.Total != w.Fp.Total {
			t.Fatalf("record %d fingerprint opcode tables differ", i)
		}
		if len(g.Fp.TypeFreq) != len(w.Fp.TypeFreq) {
			t.Fatalf("record %d type table length differs", i)
		}
		for k := range g.Fp.TypeFreq {
			if g.Fp.TypeFreq[k].Key != w.Fp.TypeFreq[k].Key ||
				g.Fp.TypeFreq[k].Count != w.Fp.TypeFreq[k].Count {
				t.Fatalf("record %d type entry %d differs", i, k)
			}
		}
		if (g.Sig == nil) != (w.Sig == nil) {
			t.Fatalf("record %d signedness differs", i)
		}
		if g.Sig != nil && *g.Sig != *w.Sig {
			t.Fatalf("record %d signature lanes differ", i)
		}
	}
}

// TestStoreNeverResurrects is the remove/compact interplay property test:
// insert → remove → compact → probe never resurrects a tombstoned function,
// and the rehydrated index matches a from-scratch index bit-for-bit.
func TestStoreNeverResurrects(t *testing.T) {
	recs := genRecords(t, 30, 0)
	s := tmpStore(t, Options{AutoCompactRatio: -1}) // manual compaction only
	for _, r := range recs {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	removed := map[uint64]bool{}
	for i := 0; i < len(recs); i += 3 {
		if !s.Remove(recs[i].Hash, recs[i].Key) {
			t.Fatalf("remove %s: not found", recs[i].Name)
		}
		removed[recs[i].Hash] = true
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, liveRecs := re.Rehydrate(lsh.Params{})
	for _, r := range liveRecs {
		if removed[r.Hash] {
			t.Fatalf("tombstoned %s resurrected after compact+reopen", r.Name)
		}
	}
	for i := 0; i < len(recs); i += 3 {
		if re.Lookup(recs[i].Hash, recs[i].Key) != nil {
			t.Fatalf("lookup resurrects removed %s", recs[i].Name)
		}
		// Probing a removed function's signature must never return an id
		// mapping back to the removed (hash, key).
		for _, id := range ix.Probe(recs[i].Sig, -1) {
			got := liveRecs[id]
			if got.Hash == recs[i].Hash && bytes.Equal(got.Key, recs[i].Key) {
				t.Fatalf("probe resurrects removed %s", recs[i].Name)
			}
		}
	}
	probeAll(t, ix, fromScratch(lsh.Params{}, liveRecs), liveRecs)
}

// TestStoreDeterministicBytes pins that one flush of one batch produces
// identical file bytes regardless of Put order.
func TestStoreDeterministicBytes(t *testing.T) {
	recs := genRecords(t, 25, 4)
	var want []byte
	for trial := 0; trial < 3; trial++ {
		order := rand.New(rand.NewSource(int64(trial))).Perm(len(recs))
		s := tmpStore(t, Options{})
		for _, i := range order {
			s.Put(recs[i])
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(s.Path())
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			want = data
			continue
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("trial %d: segment bytes differ from trial 0", trial)
		}
	}
}

// TestStoreRandomOpsMatchModel drives a seeded op mix (put, remove, flush,
// compact, reopen) against a plain-map model and requires the live sets and
// probe answers to agree at every checkpoint.
func TestStoreRandomOpsMatchModel(t *testing.T) {
	recs := genRecords(t, 40, 6)
	rng := rand.New(rand.NewSource(42))
	s := tmpStore(t, Options{AutoCompactMin: 4, AutoCompactRatio: 0.3})
	model := map[string]Record{} // key string → record

	check := func(step int) {
		live := s.Live()
		if len(live) != len(model) {
			t.Fatalf("step %d: live %d, model %d", step, len(live), len(model))
		}
		for _, r := range live {
			if _, ok := model[string(r.Key)]; !ok {
				t.Fatalf("step %d: %s live but not in model", step, r.Name)
			}
		}
		ix, liveRecs := s.Rehydrate(lsh.Params{})
		probeAll(t, ix, fromScratch(lsh.Params{}, liveRecs), liveRecs)
	}

	for step := 0; step < 200; step++ {
		r := recs[rng.Intn(len(recs))]
		switch op := rng.Intn(10); {
		case op < 5:
			s.Put(r)
			model[string(r.Key)] = r
		case op < 8:
			want := false
			if _, ok := model[string(r.Key)]; ok {
				want = true
				delete(model, string(r.Key))
			}
			if got := s.Remove(r.Hash, r.Key); got != want {
				t.Fatalf("step %d: remove %s = %v, want %v", step, r.Name, got, want)
			}
		case op < 9:
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		default:
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		if step%25 == 24 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(s.Path(), "", Options{})
			if err != nil {
				t.Fatal(err)
			}
			s = re
			check(step)
		}
	}
}

func TestStoreAutoCompacts(t *testing.T) {
	recs := genRecords(t, 12, 0)
	s := tmpStore(t, Options{AutoCompactMin: 2, AutoCompactRatio: 0.4})
	for _, r := range recs {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	grown := s.Stats().SegmentBytes
	for _, r := range recs[:10] {
		s.Remove(r.Hash, r.Key)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no auto-compaction after %d/%d removals: %+v", 10, 12, st)
	}
	if st.Dead != 0 || st.Written != st.Live || st.Live != 2 {
		t.Fatalf("post-compact counters wrong: %+v", st)
	}
	if st.SegmentBytes >= grown {
		t.Fatalf("segment did not shrink: %d -> %d bytes", grown, st.SegmentBytes)
	}
	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened live %d, want 2", re.Len())
	}
}

func TestStorePutUpgradesAndTiebreaks(t *testing.T) {
	recs := genRecords(t, 1, 0)
	r := recs[0]
	unsigned := r
	unsigned.Sig = nil

	s := tmpStore(t, Options{})
	s.Put(unsigned)
	if got := s.Lookup(r.Hash, r.Key); got == nil || got.Sig != nil {
		t.Fatal("unsigned put not stored unsigned")
	}
	// Signature upgrade replaces the slot.
	s.Put(r)
	if got := s.Lookup(r.Hash, r.Key); got == nil || got.Sig == nil {
		t.Fatal("signature upgrade lost")
	}
	// Unsigned re-put after upgrade must not downgrade.
	s.Put(unsigned)
	if got := s.Lookup(r.Hash, r.Key); got.Sig == nil {
		t.Fatal("signed record downgraded by unsigned re-put")
	}
	// Same content under a smaller name wins while unflushed.
	smaller := r
	smaller.Name = "a_" + r.Name
	s.Put(smaller)
	if got := s.Lookup(r.Hash, r.Key); got.Name != smaller.Name {
		t.Fatalf("unflushed name tiebreak: got %q, want %q", got.Name, smaller.Name)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flushed names are stable: a smaller name no longer supersedes.
	smallest := r
	smallest.Name = "0_" + r.Name
	s.Put(smallest)
	if got := s.Lookup(r.Hash, r.Key); got.Name != smaller.Name {
		t.Fatalf("flushed name changed: got %q, want %q", got.Name, smaller.Name)
	}
	if st := s.Stats(); st.PendingRecs != 0 {
		t.Fatalf("no-op put left %d pending records", st.PendingRecs)
	}
}

// TestStoreRemoveThenReputSameFlush pins the flush section order: removing
// a flushed record and re-putting the same content inside one flush window
// must leave the function live after reopen, which requires the batch's
// tombstone section to precede its record section in the log.
func TestStoreRemoveThenReputSameFlush(t *testing.T) {
	recs := genRecords(t, 3, 0)
	s := tmpStore(t, Options{AutoCompactRatio: -1})
	for _, r := range recs {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(recs[1].Hash, recs[1].Key) {
		t.Fatal("remove of flushed record not found")
	}
	s.Put(recs[1])
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Lookup(recs[1].Hash, recs[1].Key) == nil {
		t.Fatal("record re-put after remove lost on reopen (tombstone replayed after record)")
	}
	if re.Len() != 3 {
		t.Fatalf("reopened live %d, want 3", re.Len())
	}
}

// TestStoreRemoveOfSupersededRecord pins tombstoning on the has-a-file-entry
// bit, not the current record's flushed bit: a flushed record superseded by
// an unflushed upgrade still has a file entry, so removing the upgraded
// record must tombstone it or the original resurrects on reopen.
func TestStoreRemoveOfSupersededRecord(t *testing.T) {
	recs := genRecords(t, 2, 0)
	r := recs[0]
	unsigned := r
	unsigned.Sig = nil
	s := tmpStore(t, Options{AutoCompactRatio: -1})
	s.Put(unsigned)
	s.Put(recs[1])
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(r) // signature upgrade supersedes the flushed unsigned record
	if !s.Remove(r.Hash, r.Key) {
		t.Fatal("remove of upgraded record not found")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Lookup(r.Hash, r.Key) != nil {
		t.Fatal("removed function resurrected: superseded file entry was never tombstoned")
	}
	if re.Len() != 1 {
		t.Fatalf("reopened live %d, want 1", re.Len())
	}
}

// TestStoreRecoversCrashTail simulates a crash partway through an appending
// flush: the file ends mid-section. Open must recover the last-flushed
// state, report the garbage tail, and the next flush must truncate it so
// the segment is strictly well-formed again.
func TestStoreRecoversCrashTail(t *testing.T) {
	recs := genRecords(t, 8, 0)
	s := tmpStore(t, Options{AutoCompactRatio: -1})
	for _, r := range recs[:4] {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	durable, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[4:] {
		s.Put(r)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(durable) + (len(data)-len(durable))/2 // mid-second-section
	if err := os.WriteFile(s.Path(), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatalf("crash tail not recovered: %v", err)
	}
	if re.Len() != 4 {
		t.Fatalf("recovered live %d, want the 4 first-flush records", re.Len())
	}
	if got := re.Stats().TailBytes; got != int64(cut-len(durable)) {
		t.Fatalf("TailBytes %d, want %d", got, cut-len(durable))
	}
	re.Put(recs[4])
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(re.Path())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WalkDB(repaired, nil, nil); err != nil {
		t.Fatalf("repaired segment not strictly well-formed: %v", err)
	}
	re2, err := Open(re.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re2.Len() != 5 || re2.Lookup(recs[4].Hash, recs[4].Key) == nil {
		t.Fatalf("post-repair reopen live %d, want 5 with the re-put record", re2.Len())
	}
	if got := re2.Stats().TailBytes; got != 0 {
		t.Fatalf("repaired segment still reports %d tail bytes", got)
	}
}

func TestStoreRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.fmdb")
	if err := os.WriteFile(path, []byte("FMDBgarbage-not-a-segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "", Options{}); err == nil {
		t.Fatal("corrupt segment accepted")
	}
	if err := os.WriteFile(path, []byte("PLAINTEXT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "", Options{}); err == nil {
		t.Fatal("non-fmdb file accepted")
	}
}

func TestStoreUnflushedRemoveLeavesNoTrace(t *testing.T) {
	recs := genRecords(t, 2, 0)
	s := tmpStore(t, Options{})
	s.Put(recs[0])
	s.Put(recs[1])
	s.Remove(recs[0].Hash, recs[0].Key)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Written != 1 || st.Dead != 0 {
		t.Fatalf("unflushed remove left file garbage: %+v", st)
	}
	re, err := Open(s.Path(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 || re.Lookup(recs[0].Hash, recs[0].Key) != nil {
		t.Fatal("dropped record reappeared after reopen")
	}
}
