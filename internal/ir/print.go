package ir

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// namer assigns unique printable names to local values within a function.
// Anonymous values receive sequential numbers; explicitly named values keep
// their name unless it collides, in which case a numeric suffix is added.
type namer struct {
	names map[Value]string
	used  map[string]bool
	next  int
}

func newNamer() *namer {
	return &namer{names: map[Value]string{}, used: map[string]bool{}}
}

func (n *namer) assign(v Named) string {
	if s, ok := n.names[v]; ok {
		return s
	}
	want := v.Name()
	if want == "" {
		// Blocks need identifier-shaped names: bare numbers cannot appear
		// as label definitions in the textual syntax.
		if _, isBlock := v.(*Block); isBlock {
			want = fmt.Sprintf("bb%d", n.next)
		} else {
			want = fmt.Sprintf("%d", n.next)
		}
		n.next++
	}
	name := want
	for i := 1; n.used[name]; i++ {
		name = fmt.Sprintf("%s.%d", want, i)
	}
	n.used[name] = true
	n.names[v] = name
	return name
}

func (n *namer) ref(v Value) string {
	switch x := v.(type) {
	case *Param:
		return "%" + n.assign(x)
	case *Inst:
		return "%" + n.assign(x)
	case *Block:
		return "%" + n.assign(x)
	case *Func, *Global:
		return v.Ident()
	case Constant:
		return v.Ident()
	default:
		return v.Ident()
	}
}

// typedRef renders an operand as "<type> <ref>".
func (n *namer) typedRef(v Value) string {
	if b, ok := v.(*Block); ok {
		return "label %" + n.assign(b)
	}
	return v.Type().String() + " " + n.ref(v)
}

// FormatModule renders the module in the textual IR format accepted by
// ParseModule.
func FormatModule(m *Module) string {
	var sb strings.Builder
	PrintModule(&sb, m) // a strings.Builder never returns a write error
	return sb.String()
}

// PrintModule streams the module's textual IR form to w through a buffered
// writer, avoiding the one-large-string materialization of FormatModule.
// It returns the first write error encountered.
func PrintModule(w io.Writer, m *Module) error {
	bw := bufio.NewWriter(w)
	if m.Name != "" {
		fmt.Fprintf(bw, "; module %s\n", m.Name)
	}
	for _, g := range m.Globals {
		bw.WriteString(formatGlobal(g))
		bw.WriteByte('\n')
	}
	if len(m.Globals) > 0 {
		bw.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			bw.WriteByte('\n')
		}
		printFunc(bw, f)
	}
	return bw.Flush()
}

func formatGlobal(g *Global) string {
	var sb strings.Builder
	sb.WriteString(g.Ident())
	sb.WriteString(" = ")
	if g.Linkage == InternalLinkage {
		sb.WriteString("internal ")
	}
	sb.WriteString("global ")
	sb.WriteString(g.ValueType().String())
	if g.Init == nil {
		sb.WriteString(" zeroinitializer")
	} else {
		sb.WriteString(" bytes \"")
		sb.WriteString(hex.EncodeToString(g.Init))
		sb.WriteString("\"")
	}
	return sb.String()
}

// FormatFunc renders a single function (definition or declaration).
func FormatFunc(f *Func) string {
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	printFunc(bw, f)
	bw.Flush()
	return sb.String()
}

// printFunc streams one function's textual form to bw.
func printFunc(bw *bufio.Writer, f *Func) {
	n := newNamer()
	sig := f.Sig()
	if f.IsDecl() {
		bw.WriteString("declare ")
	} else {
		bw.WriteString("define ")
		if f.Linkage == InternalLinkage {
			bw.WriteString("internal ")
		}
	}
	bw.WriteString(sig.Ret.String())
	bw.WriteString(" @")
	bw.WriteString(f.Name())
	bw.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			bw.WriteString(", ")
		}
		bw.WriteString(p.Type().String())
		if !f.IsDecl() {
			bw.WriteString(" %")
			bw.WriteString(n.assign(p))
		}
	}
	if sig.Variadic {
		if len(f.Params) > 0 {
			bw.WriteString(", ")
		}
		bw.WriteString("...")
	}
	bw.WriteString(")")
	if f.IsDecl() {
		bw.WriteString("\n")
		return
	}
	bw.WriteString(" {\n")
	// Pre-assign block names so forward branch references are stable.
	for _, b := range f.Blocks {
		n.assign(b)
	}
	for _, b := range f.Blocks {
		bw.WriteString(n.names[b])
		bw.WriteString(":\n")
		for _, in := range b.Insts {
			bw.WriteString("  ")
			bw.WriteString(formatInst(in, n))
			bw.WriteByte('\n')
		}
	}
	bw.WriteString("}\n")
}

// FormatInst renders one instruction using a throwaway namer; intended for
// debugging output.
func FormatInst(in *Inst) string { return formatInst(in, newNamer()) }

// Namer assigns stable, unique names to the values of one function for
// human-readable listings (alignment views, diffs). Unlike FormatInst, the
// same value keeps the same name across calls.
type Namer struct {
	n *namer
}

// NewNamer returns an empty namer. Use one per function.
func NewNamer() *Namer { return &Namer{n: newNamer()} }

// Inst renders an instruction with this namer's stable names.
func (nm *Namer) Inst(in *Inst) string { return formatInst(in, nm.n) }

// Label returns the display label of a block (without the trailing colon).
func (nm *Namer) Label(b *Block) string { return nm.n.assign(b) }

func formatInst(in *Inst, n *namer) string {
	var sb strings.Builder
	if !in.Type().IsVoid() {
		sb.WriteString("%")
		sb.WriteString(n.assign(in))
		sb.WriteString(" = ")
	}
	switch in.Op {
	case OpRet:
		if in.NumOperands() == 0 {
			sb.WriteString("ret void")
		} else {
			sb.WriteString("ret ")
			sb.WriteString(n.typedRef(in.Operand(0)))
		}
	case OpBr:
		if in.NumOperands() == 1 {
			sb.WriteString("br ")
			sb.WriteString(n.typedRef(in.Operand(0)))
		} else {
			fmt.Fprintf(&sb, "br %s, %s, %s",
				n.typedRef(in.Operand(0)), n.typedRef(in.Operand(1)), n.typedRef(in.Operand(2)))
		}
	case OpSwitch:
		fmt.Fprintf(&sb, "switch %s, %s [", n.typedRef(in.Operand(0)), n.typedRef(in.Operand(1)))
		for i := 2; i < in.NumOperands(); i += 2 {
			if i > 2 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, " %s, %s", n.typedRef(in.Operand(i)), n.typedRef(in.Operand(i+1)))
		}
		sb.WriteString(" ]")
	case OpUnreachable:
		sb.WriteString("unreachable")
	case OpInvoke:
		args := in.CallArgs()
		fmt.Fprintf(&sb, "invoke %s %s(", in.Type(), n.ref(in.Callee()))
		for i, a := range args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n.typedRef(a))
		}
		fmt.Fprintf(&sb, ") to %s unwind %s",
			n.typedRef(in.InvokeNormal()), n.typedRef(in.InvokeUnwind()))
	case OpResume:
		sb.WriteString("resume ")
		sb.WriteString(n.typedRef(in.Operand(0)))
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %s", in.Alloc)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Type(), n.typedRef(in.Operand(0)))
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s", n.typedRef(in.Operand(0)), n.typedRef(in.Operand(1)))
	case OpGEP:
		base := in.Operand(0)
		fmt.Fprintf(&sb, "getelementptr %s, %s", base.Type().Elem, n.typedRef(base))
		for _, idx := range in.Operands()[1:] {
			sb.WriteString(", ")
			sb.WriteString(n.typedRef(idx))
		}
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred,
			n.typedRef(in.Operand(0)), n.ref(in.Operand(1)))
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Type())
		for i := 0; i < in.NumPhiIncoming(); i++ {
			v, b := in.PhiIncoming(i)
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[ %s, %%%s ]", n.ref(v), n.assign(b))
		}
	case OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s",
			n.typedRef(in.Operand(0)), n.typedRef(in.Operand(1)), n.typedRef(in.Operand(2)))
	case OpCall:
		fmt.Fprintf(&sb, "call %s %s(", in.Type(), n.ref(in.Callee()))
		for i, a := range in.CallArgs() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n.typedRef(a))
		}
		sb.WriteString(")")
	case OpLandingPad:
		sb.WriteString("landingpad")
		for _, c := range in.Clauses {
			if c == "cleanup" {
				sb.WriteString(" cleanup")
			} else {
				fmt.Fprintf(&sb, " catch @%s", c)
			}
		}
	default:
		if in.Op.IsBinary() {
			fmt.Fprintf(&sb, "%s %s, %s", in.Op,
				n.typedRef(in.Operand(0)), n.ref(in.Operand(1)))
		} else if in.Op.IsCast() {
			fmt.Fprintf(&sb, "%s %s to %s", in.Op,
				n.typedRef(in.Operand(0)), in.Type())
		} else {
			fmt.Fprintf(&sb, "<unknown op %s>", in.Op)
		}
	}
	return sb.String()
}
