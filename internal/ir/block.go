package ir

import "fmt"

// Block is a basic block: a label plus a sequence of instructions ending in
// exactly one terminator. Blocks are Values of label type so they can appear
// as branch operands.
type Block struct {
	usable
	name   string
	parent *Func
	// ord is a scratch slot holding the block's layout index, assigned by
	// (*Func).NumberLocals alongside the instruction ordinals.
	ord int32
	// Insts holds the block's instructions in execution order.
	Insts []*Inst
}

// LayoutOrd returns the layout index assigned by the containing function's
// last NumberLocals call; it is scratch state, not kept current by mutation.
func (b *Block) LayoutOrd() int32 { return b.ord }

// NewBlock creates a detached block with the given name (which may be empty;
// the printer assigns numbers to anonymous blocks).
func NewBlock(name string) *Block {
	return &Block{name: name}
}

// Type returns the label type.
func (b *Block) Type() *Type { return Label() }

// Name returns the block label.
func (b *Block) Name() string { return b.name }

// SetName sets the block label.
func (b *Block) SetName(s string) { b.name = s }

// Ident returns the reference form "label %name".
func (b *Block) Ident() string {
	if b.name == "" {
		return fmt.Sprintf("label %%<%p>", b)
	}
	return "label %" + b.name
}

// Parent returns the function containing the block, or nil if detached.
func (b *Block) Parent() *Func { return b.parent }

// Append adds in at the end of the block.
func (b *Block) Append(in *Inst) {
	if in.parent != nil {
		panic("ir: instruction already attached")
	}
	in.parent = b
	b.Insts = append(b.Insts, in)
}

// InsertBefore inserts in immediately before pos, which must be in b.
func (b *Block) InsertBefore(in *Inst, pos *Inst) {
	if in.parent != nil {
		panic("ir: instruction already attached")
	}
	for i, x := range b.Insts {
		if x == pos {
			b.Insts = append(b.Insts, nil)
			copy(b.Insts[i+1:], b.Insts[i:])
			b.Insts[i] = in
			in.parent = b
			return
		}
	}
	panic("ir: InsertBefore position not in block")
}

// Terminator returns the block's terminator, or nil if the block is not yet
// terminated.
func (b *Block) Terminator() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	last := b.Insts[len(b.Insts)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Successors returns the successor blocks, or nil for unterminated blocks.
func (b *Block) Successors() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Successors()
}

// Preds returns the predecessor blocks, derived from the block's use list.
// A block branching to b twice (e.g. both switch arms) appears once per edge.
func (b *Block) Preds() []*Block {
	var preds []*Block
	for _, u := range b.uses {
		if u.User.IsTerminator() && u.User.parent != nil {
			preds = append(preds, u.User.parent)
		}
	}
	return preds
}

// IsLandingBlock reports whether the block is a landing block, i.e. its
// first instruction is a landingpad.
func (b *Block) IsLandingBlock() bool {
	return len(b.Insts) > 0 && b.Insts[0].Op == OpLandingPad
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Insts {
		if in.Op != OpPhi {
			return i
		}
	}
	return len(b.Insts)
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Inst {
	return b.Insts[:b.FirstNonPhi()]
}

// RemoveFromParent detaches the block from its function. All instructions'
// operand uses are dropped; the block must itself be unused.
func (b *Block) RemoveFromParent() {
	if b.parent == nil {
		return
	}
	f := b.parent
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	b.parent = nil
	for _, in := range b.Insts {
		in.parent = nil
		in.dropAllOperands()
	}
	b.Insts = nil
}
