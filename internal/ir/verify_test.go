package ir

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseVerifyLevel(t *testing.T) {
	cases := map[string]VerifyLevel{
		"": VerifyOff, "off": VerifyOff, "fast": VerifyFast, "full": VerifyFull,
	}
	for s, want := range cases {
		got, err := ParseVerifyLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseVerifyLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseVerifyLevel("paranoid"); err == nil {
		t.Error("unknown level accepted")
	}
	for _, l := range []VerifyLevel{VerifyOff, VerifyFast, VerifyFull} {
		if back, err := ParseVerifyLevel(l.String()); err != nil || back != l {
			t.Errorf("String/Parse round trip broken for %v", l)
		}
	}
}

// buildDomViolation returns a function where a definition does not dominate
// one of its uses — structurally sound, so only full-level checks catch it.
func buildDomViolation() *Func {
	m := NewModule("dom")
	f := m.NewFuncIn("f", FuncOf(I32(), Bool()))
	e := f.NewBlockIn("entry")
	aB := f.NewBlockIn("a")
	bB := f.NewBlockIn("b")
	bld := NewBuilder(e)
	bld.CondBr(f.Params[0], aB, bB)
	bld.SetBlock(aB)
	x := bld.Add(NewConstInt(I32(), 1), NewConstInt(I32(), 2))
	bld.Ret(x)
	bld.SetBlock(bB)
	bld.Ret(x) // x does not dominate this use
	return f
}

func TestVerifyLevelsAreOrdered(t *testing.T) {
	f := buildDomViolation()
	if diags := VerifyFuncLevel(f, VerifyOff); diags != nil {
		t.Errorf("off level produced diagnostics: %v", diags)
	}
	if diags := VerifyFuncLevel(f, VerifyFast); len(diags) != 0 {
		t.Errorf("fast level caught a dominance-only violation: %v", diags)
	}
	diags := VerifyFuncLevel(f, VerifyFull)
	if len(diags) != 1 || diags[0].Code != FVDominance {
		t.Fatalf("full level: want one FV007, got %v", diags)
	}
	if d := diags[0]; d.Fn != "f" || d.Block != "b" || d.Inst == "" {
		t.Errorf("FV007 not located: %+v", d)
	}
}

func TestVerifyDiagCodes(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Func
		want  VerifyCode
		level VerifyLevel
	}{
		{"empty block", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(Void()))
			f.NewBlockIn("entry")
			return f
		}, FVMalformedBlock, VerifyFast},
		{"terminator mid-block", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(Void()))
			e := f.NewBlockIn("entry")
			bld := NewBuilder(e)
			bld.Ret(nil)
			bld.Ret(nil)
			return f
		}, FVMalformedBlock, VerifyFast},
		{"branch to foreign block", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(Void()))
			g := m.NewFuncIn("g", FuncOf(Void()))
			ge := g.NewBlockIn("gentry")
			NewBuilder(ge).Ret(nil)
			e := f.NewBlockIn("entry")
			e.Append(NewInst(OpBr, Void(), ge))
			return f
		}, FVBrokenLink, VerifyFast},
		{"phi after non-phi", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(I32()))
			e := f.NewBlockIn("entry")
			bld := NewBuilder(e)
			x := bld.Add(NewConstInt(I32(), 1), NewConstInt(I32(), 2))
			phi := bld.Phi(I32())
			AddIncoming(phi, x, e)
			bld.Ret(x)
			return f
		}, FVBadShape, VerifyFast},
		{"ret arity", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(Void()))
			e := f.NewBlockIn("entry")
			e.Append(NewInst(OpRet, Void(), NewConstInt(I32(), 1), NewConstInt(I32(), 2)))
			return f
		}, FVBadShape, VerifyFast},
		{"operand from another function", func() *Func {
			m := NewModule("t")
			g := m.NewFuncIn("g", FuncOf(I32()))
			ge := g.NewBlockIn("gentry")
			x := NewBuilder(ge).Add(NewConstInt(I32(), 1), NewConstInt(I32(), 2))
			NewBuilder(ge).Ret(x)
			f := m.NewFuncIn("f", FuncOf(I32()))
			e := f.NewBlockIn("entry")
			e.Append(NewInst(OpRet, Void(), x))
			return f
		}, FVDanglingRef, VerifyFast},
		{"detached callee", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(Void()))
			e := f.NewBlockIn("entry")
			loose := NewFunc("loose", FuncOf(Void()))
			bld := NewBuilder(e)
			bld.Call(loose)
			bld.Ret(nil)
			return f
		}, FVDanglingRef, VerifyFast},
		{"type violation", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(I32()))
			e := f.NewBlockIn("entry")
			e.Append(NewInst(OpRet, Void(), NewConstFloat(F64(), 1.0)))
			return f
		}, FVBadType, VerifyFull},
		{"phi pred mismatch", func() *Func {
			m := NewModule("t")
			f := m.NewFuncIn("f", FuncOf(I32(), Bool()))
			e := f.NewBlockIn("entry")
			join := f.NewBlockIn("join")
			NewBuilder(e).CondBr(f.Params[0], join, join)
			phi := NewInst(OpPhi, I32(), NewConstInt(I32(), 1), e)
			join.Append(phi)
			NewBuilder(join).Ret(phi)
			return f
		}, FVPhiPredMismatch, VerifyFull},
		{"invoke unwind to non-landing block", func() *Func {
			m := NewModule("t")
			callee := m.NewFuncIn("g", FuncOf(Void()))
			_ = callee
			f := m.NewFuncIn("f", FuncOf(Void()))
			e := f.NewBlockIn("entry")
			normal := f.NewBlockIn("normal")
			lpad := f.NewBlockIn("lpad")
			NewBuilder(e).Invoke(callee, nil, normal, lpad)
			NewBuilder(normal).Ret(nil)
			NewBuilder(lpad).Ret(nil) // no landingpad first
			return f
		}, FVBadLandingPad, VerifyFull},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.build()
			diags := VerifyFuncLevel(f, tc.level)
			found := false
			for _, d := range diags {
				if d.Code == tc.want {
					found = true
				}
			}
			if !found {
				t.Errorf("want a %s diagnostic, got %v", tc.want, diags)
			}
			// The error wrapper must surface the same findings.
			if err := VerifyFunc(f); err == nil {
				t.Error("VerifyFunc returned nil for corrupt IR")
			} else if !strings.Contains(err.Error(), string(tc.want)) {
				t.Errorf("VerifyFunc error lacks code %s: %v", tc.want, err)
			}
		})
	}
}

// TestVerifyUseListConsistency corrupts use lists directly (bypassing
// SetOperand) and expects FV008 from both directions of the check.
func TestVerifyUseListConsistency(t *testing.T) {
	build := func() (*Func, *Inst, *Inst) {
		m := NewModule("u")
		f := m.NewFuncIn("f", FuncOf(I32()))
		e := f.NewBlockIn("entry")
		bld := NewBuilder(e)
		x := bld.Add(NewConstInt(I32(), 1), NewConstInt(I32(), 2))
		y := bld.Add(x, NewConstInt(I32(), 3))
		bld.Ret(y)
		return f, x, y
	}

	// Operand rewritten behind the use list's back: y's use of x is still
	// recorded, but the operand slot now holds a constant.
	f, x, y := build()
	y.operands[0] = NewConstInt(I32(), 9)
	diags := VerifyFuncLevel(f, VerifyFull)
	if len(diags) == 0 || diags[0].Code != FVUseList {
		t.Errorf("stale use entry not caught: %v", diags)
	}
	_ = x

	// Duplicate use entry.
	f, x, _ = build()
	x.uses = append(x.uses, x.uses[0])
	diags = VerifyFuncLevel(f, VerifyFull)
	if len(diags) == 0 || diags[0].Code != FVUseList {
		t.Errorf("duplicate use entry not caught: %v", diags)
	}

	// Use entry dropped: the operand is live but unrecorded.
	f, x, _ = build()
	x.uses = nil
	diags = VerifyFuncLevel(f, VerifyFull)
	if len(diags) == 0 || diags[0].Code != FVUseList {
		t.Errorf("missing use entry not caught: %v", diags)
	}

	// Clean function stays clean.
	f, _, _ = build()
	if diags := VerifyFuncLevel(f, VerifyFull); len(diags) != 0 {
		t.Errorf("clean function produced %v", diags)
	}
}

// TestVerifyModuleInvariants covers the module-level checks: duplicate
// names, symbol-table desync, stale callees, and the all-errors contract.
func TestVerifyModuleInvariants(t *testing.T) {
	newVoidFunc := func(m *Module, name string) *Func {
		f := m.NewFuncIn(name, FuncOf(Void()))
		e := f.NewBlockIn("entry")
		NewBuilder(e).Ret(nil)
		return f
	}

	t.Run("duplicate function name", func(t *testing.T) {
		m := NewModule("t")
		newVoidFunc(m, "f")
		dup := NewFunc("f", FuncOf(Void()))
		dup.parent = m
		m.Funcs = append(m.Funcs, dup)
		if !hasCode(VerifyModuleLevel(m, VerifyFast), FVSymbolTable) {
			t.Error("duplicate function name not caught")
		}
	})

	t.Run("stale symbol table entry", func(t *testing.T) {
		m := NewModule("t")
		newVoidFunc(m, "f")
		delete(m.funcByName, "f")
		m.funcByName["ghost"] = NewFunc("ghost", FuncOf(Void()))
		if !hasCode(VerifyModuleLevel(m, VerifyFast), FVSymbolTable) {
			t.Error("symbol table desync not caught")
		}
	})

	t.Run("duplicate global name", func(t *testing.T) {
		m := NewModule("t")
		m.NewGlobalIn("g", I32())
		dup := NewGlobal("g", I32())
		dup.parent = m
		m.Globals = append(m.Globals, dup)
		if !hasCode(VerifyModuleLevel(m, VerifyFast), FVSymbolTable) {
			t.Error("duplicate global name not caught")
		}
	})

	t.Run("stale callee after replacement", func(t *testing.T) {
		m := NewModule("t")
		g := newVoidFunc(m, "g")
		f := m.NewFuncIn("f", FuncOf(Void()))
		e := f.NewBlockIn("entry")
		bld := NewBuilder(e)
		bld.Call(g)
		bld.Ret(nil)
		// Replace g in the module's tables but leave the call operand
		// pointing at the old object (still claiming m as parent).
		g2 := NewFunc("g", FuncOf(Void()))
		g2.parent = m
		for i, fn := range m.Funcs {
			if fn == g {
				m.Funcs[i] = g2
			}
		}
		m.funcByName["g"] = g2
		if !hasCode(VerifyModuleLevel(m, VerifyFull), FVSymbolTable) {
			t.Error("stale callee not caught")
		}
	})

	t.Run("all errors reported", func(t *testing.T) {
		m := NewModule("t")
		fa := m.NewFuncIn("a", FuncOf(Void()))
		fa.NewBlockIn("entry") // empty block
		fb := m.NewFuncIn("b", FuncOf(Void()))
		fb.NewBlockIn("entry") // empty block
		err := VerifyModule(m)
		if err == nil {
			t.Fatal("corrupt module verified clean")
		}
		if !strings.Contains(err.Error(), "@a") || !strings.Contains(err.Error(), "@b") {
			t.Errorf("VerifyModule stopped early, want findings in both functions: %v", err)
		}
	})
}

func hasCode(diags []VerifyDiag, code VerifyCode) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestVerifyDeterministicOrder: repeated verification of the same corrupt
// function must report the identical diagnostic sequence — the verifier is
// part of pipelines whose outputs are compared byte-for-byte.
func TestVerifyDeterministicOrder(t *testing.T) {
	build := func() *Func {
		m := NewModule("t")
		f := m.NewFuncIn("f", FuncOf(I32(), Bool()))
		e := f.NewBlockIn("entry")
		j1 := f.NewBlockIn("j1")
		j2 := f.NewBlockIn("j2")
		NewBuilder(e).CondBr(f.Params[0], j1, j2)
		// Two phis each with a bogus incoming set, in different blocks.
		p1 := NewInst(OpPhi, I32(), NewConstInt(I32(), 1), j2)
		j1.Append(p1)
		NewBuilder(j1).Ret(p1)
		p2 := NewInst(OpPhi, I32(), NewConstInt(I32(), 2), j1)
		j2.Append(p2)
		NewBuilder(j2).Ret(p2)
		return f
	}
	want := VerifyFuncLevel(build(), VerifyFull)
	if len(want) == 0 {
		t.Fatal("expected diagnostics")
	}
	for i := 0; i < 50; i++ {
		got := VerifyFuncLevel(build(), VerifyFull)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("diagnostic order varies between runs:\n%v\nvs\n%v", want, got)
		}
	}
}

// TestVerifyDiagString pins the one-line rendering format shared with the
// merge auditor's FM diagnostics.
func TestVerifyDiagString(t *testing.T) {
	d := VerifyDiag{Code: FVDominance, Fn: "f", Block: "b3", Inst: "ret i32 %x",
		Msg: "use of %x not dominated by its definition"}
	want := "FV007 @f %b3: use of %x not dominated by its definition (ret i32 %x)"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	mod := VerifyDiag{Code: FVSymbolTable, Msg: "duplicate function name @f"}
	if got := mod.String(); got != "FV010: duplicate function name @f" {
		t.Errorf("module-level String() = %q", got)
	}
}

// TestVerifyNoPanicOnGarbage feeds hand-mangled instructions that would
// crash the printer or accessors if the verifier indexed operands blindly.
func TestVerifyNoPanicOnGarbage(t *testing.T) {
	m := NewModule("t")
	f := m.NewFuncIn("f", FuncOf(Void()))
	e := f.NewBlockIn("entry")
	// A br whose sole operand is not a block, an invoke with too few
	// operands, and a phi with an odd operand count.
	e.Insts = append(e.Insts,
		&Inst{Op: OpPhi, typ: I32(), parent: e, operands: []Value{NewConstInt(I32(), 1)}},
		&Inst{Op: OpInvoke, typ: Void(), parent: e, operands: []Value{NewConstInt(I32(), 0)}},
		&Inst{Op: OpBr, typ: Void(), parent: e, operands: []Value{NewConstInt(I32(), 7)}},
	)
	diags := VerifyFuncLevel(f, VerifyFull)
	if !hasCode(diags, FVBadShape) {
		t.Errorf("mangled operands not flagged: %v", diags)
	}
	if s := FormatVerifyDiags(diags); s == "" {
		t.Error("no rendered diagnostics")
	}
}
