// Package ir implements a typed, LLVM-flavoured intermediate representation:
// interned types, SSA values, instructions grouped into basic blocks and
// functions, modules, a textual format with printer and parser, a verifier,
// dominator trees and a function cloner.
//
// The IR is the substrate on which the function-merging optimization from
// "Function Merging by Sequence Alignment" (Rocha et al., CGO 2019) operates.
// It deliberately mirrors the granularity of LLVM IR: a few tens of opcodes,
// structural types, explicit basic blocks and use-def chains.
package ir

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// TypeKind discriminates the structural kinds of IR types.
type TypeKind int

// Type kinds.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PointerKind
	ArrayKind
	StructKind
	FuncKind
	LabelKind
	TokenKind // result of landingpad instructions
)

// Type is an interned IR type. Two types are equal if and only if their
// pointers are equal; obtain types through Void, Int, Float, PointerTo,
// ArrayOf, StructOf and FuncOf.
type Type struct {
	Kind TypeKind
	// Bits is the width for IntKind (1..64) and FloatKind (32 or 64).
	Bits int
	// Elem is the element type for PointerKind and ArrayKind.
	Elem *Type
	// Len is the element count for ArrayKind.
	Len int
	// Fields are the member types for StructKind and the parameter types
	// for FuncKind.
	Fields []*Type
	// Ret is the return type for FuncKind.
	Ret *Type
	// Variadic marks a FuncKind type as variadic.
	Variadic bool

	str         string        // cached textual form
	contentHash atomic.Uint64 // cached ContentHash (0 = not yet computed)
}

var (
	internMu  sync.Mutex
	internTab = map[string]*Type{}

	voidType  = &Type{Kind: VoidKind, str: "void"}
	labelType = &Type{Kind: LabelKind, str: "label"}
	tokenType = &Type{Kind: TokenKind, str: "token"}
)

func intern(t *Type) *Type {
	key := t.computeString()
	internMu.Lock()
	defer internMu.Unlock()
	if got, ok := internTab[key]; ok {
		return got
	}
	t.str = key
	internTab[key] = t
	return t
}

// Void returns the void type.
func Void() *Type { return voidType }

// Label returns the label type carried by basic-block values.
func Label() *Type { return labelType }

// Token returns the token type produced by landingpad instructions.
func Token() *Type { return tokenType }

// Int returns the integer type of the given bit width (1..64).
func Int(bits int) *Type {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("ir: invalid integer width %d", bits))
	}
	return intern(&Type{Kind: IntKind, Bits: bits})
}

// Bool returns the 1-bit integer type.
func Bool() *Type { return Int(1) }

// I8 returns the 8-bit integer type.
func I8() *Type { return Int(8) }

// I16 returns the 16-bit integer type.
func I16() *Type { return Int(16) }

// I32 returns the 32-bit integer type.
func I32() *Type { return Int(32) }

// I64 returns the 64-bit integer type.
func I64() *Type { return Int(64) }

// Float returns the floating-point type of the given width (32 or 64).
func Float(bits int) *Type {
	if bits != 32 && bits != 64 {
		panic(fmt.Sprintf("ir: invalid float width %d", bits))
	}
	return intern(&Type{Kind: FloatKind, Bits: bits})
}

// F32 returns the 32-bit floating-point type.
func F32() *Type { return Float(32) }

// F64 returns the 64-bit floating-point type.
func F64() *Type { return Float(64) }

// PointerTo returns the pointer type with element type elem.
func PointerTo(elem *Type) *Type {
	if elem == nil {
		panic("ir: PointerTo(nil)")
	}
	return intern(&Type{Kind: PointerKind, Elem: elem})
}

// ArrayOf returns the array type with n elements of type elem.
func ArrayOf(n int, elem *Type) *Type {
	if n < 0 || elem == nil {
		panic("ir: invalid array type")
	}
	return intern(&Type{Kind: ArrayKind, Len: n, Elem: elem})
}

// StructOf returns the struct type with the given field types.
func StructOf(fields ...*Type) *Type {
	cp := make([]*Type, len(fields))
	copy(cp, fields)
	return intern(&Type{Kind: StructKind, Fields: cp})
}

// FuncOf returns the function type with the given return and parameter types.
func FuncOf(ret *Type, params ...*Type) *Type {
	cp := make([]*Type, len(params))
	copy(cp, params)
	return intern(&Type{Kind: FuncKind, Ret: ret, Fields: cp})
}

// VarFuncOf returns a variadic function type.
func VarFuncOf(ret *Type, params ...*Type) *Type {
	cp := make([]*Type, len(params))
	copy(cp, params)
	return intern(&Type{Kind: FuncKind, Ret: ret, Fields: cp, Variadic: true})
}

func (t *Type) computeString() string {
	switch t.Kind {
	case VoidKind:
		return "void"
	case LabelKind:
		return "label"
	case TokenKind:
		return "token"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case FloatKind:
		return fmt.Sprintf("f%d", t.Bits)
	case PointerKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case StructKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case FuncKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		return t.Ret.String() + " (" + strings.Join(parts, ", ") + ")"
	default:
		panic(fmt.Sprintf("ir: unknown type kind %d", t.Kind))
	}
}

// String returns the textual form of the type, e.g. "i32" or "{i32, f64}*".
func (t *Type) String() string {
	if t.str == "" {
		t.str = t.computeString()
	}
	return t.str
}

// ContentHash returns the FNV-1a hash of the type's canonical textual form
// (String()) — a process- and run-stable content identity that hashing-heavy
// consumers (the stable structural key, MinHash shingles) can use without
// re-walking the spelling. The hash is cached on the type after the first
// computation; the cache is safe for concurrent use.
func (t *Type) ContentHash() uint64 {
	if h := t.contentHash.Load(); h != 0 {
		return h
	}
	const offset, prime = 14695981039346656037, 1099511628211
	s := t.String()
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// A true hash of 0 (probability 2^-64) is simply never cached.
	t.contentHash.Store(h)
	return h
}

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t.Kind == VoidKind }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == IntKind }

// IsBool reports whether t is the 1-bit integer type.
func (t *Type) IsBool() bool { return t.Kind == IntKind && t.Bits == 1 }

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == FloatKind }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == PointerKind }

// IsAggregate reports whether t is an array or struct type.
func (t *Type) IsAggregate() bool { return t.Kind == ArrayKind || t.Kind == StructKind }

// IsFirstClass reports whether a value of type t can be produced by an
// instruction or passed as an operand (everything except void and function
// types).
func (t *Type) IsFirstClass() bool {
	return t.Kind != VoidKind && t.Kind != FuncKind
}

// PointerSizeBits is the width of pointers on all modelled targets.
const PointerSizeBits = 64

// SizeBits returns the number of bits occupied by a value of type t in
// memory, with natural (packed-to-byte) layout. Void and label types have
// size zero.
func (t *Type) SizeBits() int {
	switch t.Kind {
	case VoidKind, LabelKind, TokenKind:
		return 0
	case IntKind, FloatKind:
		return t.Bits
	case PointerKind, FuncKind:
		return PointerSizeBits
	case ArrayKind:
		return t.Len * t.Elem.SizeBytes() * 8
	case StructKind:
		n := 0
		for _, f := range t.Fields {
			n += f.SizeBytes()
		}
		return n * 8
	default:
		panic("ir: unknown type kind")
	}
}

// SizeBytes returns the byte size of t, rounding sub-byte scalars up.
func (t *Type) SizeBytes() int {
	return (t.SizeBits() + 7) / 8
}

// FieldOffset returns the byte offset of field i in struct type t.
func (t *Type) FieldOffset(i int) int {
	if t.Kind != StructKind {
		panic("ir: FieldOffset on non-struct")
	}
	off := 0
	for j := 0; j < i; j++ {
		off += t.Fields[j].SizeBytes()
	}
	return off
}

// LosslesslyBitcastable reports whether values of type a can be bitcast to
// type b without loss of information, the type-equivalence relation used by
// the merger (paper §III-D): identical types, or scalar types of identical
// bit width, or pointer types (which always have the same representation).
func LosslesslyBitcastable(a, b *Type) bool {
	if a == b {
		return true
	}
	if a.IsPointer() && b.IsPointer() {
		return true
	}
	scalar := func(t *Type) bool { return t.IsInt() || t.IsFloat() || t.IsPointer() }
	if scalar(a) && scalar(b) && a.SizeBits() == b.SizeBits() {
		return true
	}
	return false
}
