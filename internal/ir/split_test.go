package ir_test

import (
	"strings"
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func buildSplitFixture(t *testing.T, seed int64) *ir.Module {
	t.Helper()
	p := workload.Profile{
		Name: "split", NumFuncs: 12, AvgSize: 20, MaxSize: 60,
		Identical: 0.2, TypeVar: 0.1, InternalFrac: 0.6, Seed: seed,
	}
	return workload.Build(p)
}

func runMain(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	mc := interp.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	v, err := mc.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSplitLinkRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		want := runMain(t, buildSplitFixture(t, 5))

		src := buildSplitFixture(t, 5)
		units, err := ir.SplitModule(src, n)
		if err != nil {
			t.Fatalf("split(%d): %v", n, err)
		}
		if len(units) != n {
			t.Fatalf("units = %d, want %d", len(units), n)
		}
		for _, u := range units {
			if err := ir.VerifyModule(u); err != nil {
				t.Fatalf("split(%d) unit invalid: %v\n%s", n, err, ir.FormatModule(u))
			}
		}
		// Units must be independently parseable (real translation units).
		for _, u := range units {
			text := ir.FormatModule(u)
			if _, err := ir.ParseModule(u.Name, text); err != nil {
				t.Fatalf("split(%d) unit unparseable: %v", n, err)
			}
		}

		linked, err := ir.LinkModules("relinked", units...)
		if err != nil {
			t.Fatalf("link after split(%d): %v", n, err)
		}
		if err := ir.VerifyModule(linked); err != nil {
			t.Fatalf("relinked invalid: %v", err)
		}
		if got := runMain(t, linked); got != want {
			t.Fatalf("split(%d)+link changed semantics: %d vs %d", n, got, want)
		}
	}
}

func TestSplitDistributesFunctions(t *testing.T) {
	src := buildSplitFixture(t, 6)
	defs := len(src.Definitions())
	units, err := ir.SplitModule(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k, u := range units {
		d := len(u.Definitions())
		total += d
		if k > 0 && u.FuncByName("main") != nil && !u.FuncByName("main").IsDecl() {
			t.Error("main must live in unit 0")
		}
	}
	if total != defs {
		t.Errorf("definitions across units = %d, want %d", total, defs)
	}
}

// topLevelChunks cuts a printed module into its top-level declarations and
// definitions so tests can permute the input order.
func topLevelChunks(text string) []string {
	var chunks []string
	var cur []string
	inBody := false
	for _, line := range strings.Split(text, "\n") {
		switch {
		case inBody:
			cur = append(cur, line)
			if line == "}" {
				chunks = append(chunks, strings.Join(cur, "\n"))
				cur, inBody = nil, false
			}
		case strings.HasPrefix(line, "define"):
			cur, inBody = []string{line}, true
		case strings.HasPrefix(line, "declare"):
			chunks = append(chunks, line)
		}
	}
	return chunks
}

// TestSplitPermutationInvariant pins the shard-determinism prerequisite:
// unit assignment and unit-internal order follow symbol names, so feeding
// the same definitions in a different order must split into textually
// identical units.
func TestSplitPermutationInvariant(t *testing.T) {
	src := buildSplitFixture(t, 9)
	text := ir.FormatModule(src)
	chunks := topLevelChunks(text)
	if len(chunks) < 3 {
		t.Fatalf("fixture too small to permute: %d chunks", len(chunks))
	}
	// Reversal permutes every position; rotation catches off-by-one
	// round-robin dependence on the first element.
	perms := map[string][]string{
		"reversed": nil,
		"rotated":  nil,
	}
	rev := make([]string, len(chunks))
	for i, c := range chunks {
		rev[len(chunks)-1-i] = c
	}
	perms["reversed"] = rev
	perms["rotated"] = append(append([]string(nil), chunks[len(chunks)/2:]...), chunks[:len(chunks)/2]...)

	for _, n := range []int{2, 4} {
		base, err := ir.SplitModule(buildSplitFixture(t, 9), n)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"reversed", "rotated"} {
			perm, err := ir.ParseModule(src.Name, strings.Join(perms[name], "\n")+"\n")
			if err != nil {
				t.Fatalf("%s: reparse: %v", name, err)
			}
			got, err := ir.SplitModule(perm, n)
			if err != nil {
				t.Fatalf("%s: split: %v", name, err)
			}
			for k := range base {
				want := ir.FormatModule(base[k])
				have := ir.FormatModule(got[k])
				if want != have {
					t.Fatalf("split(%d) unit %d differs under %s input order:\n--- original\n%s\n--- permuted\n%s",
						n, k, name, want, have)
				}
			}
		}
	}
}

// TestSplitRelinkShardCounts drives split→relink at the shard counts the
// global pipeline uses, checking full-level verifier cleanliness at every
// boundary, unchanged semantics, and that a second split→relink round
// reproduces the first round's printed module exactly.
func TestSplitRelinkShardCounts(t *testing.T) {
	profiles := []workload.Profile{
		{Name: "split", NumFuncs: 12, AvgSize: 20, MaxSize: 60,
			Identical: 0.2, TypeVar: 0.1, InternalFrac: 0.6, Seed: 5},
		workload.UnscaledSmall()[0], // 429.mcf
	}
	for _, p := range profiles {
		want := runMain(t, workload.Build(p))
		for _, n := range []int{1, 2, 4, 8} {
			units, err := ir.SplitModule(workload.Build(p), n)
			if err != nil {
				t.Fatalf("%s split(%d): %v", p.Name, n, err)
			}
			for _, u := range units {
				if diags := ir.VerifyModuleLevel(u, ir.VerifyFull); len(diags) > 0 {
					t.Fatalf("%s split(%d) unit %s: %v", p.Name, n, u.Name, diags[0])
				}
			}
			linked, err := ir.LinkModules("relinked", units...)
			if err != nil {
				t.Fatalf("%s link(%d): %v", p.Name, n, err)
			}
			if diags := ir.VerifyModuleLevel(linked, ir.VerifyFull); len(diags) > 0 {
				t.Fatalf("%s relinked(%d): %v", p.Name, n, diags[0])
			}
			if got := runMain(t, linked); got != want {
				t.Fatalf("%s split(%d)+link changed semantics: %d vs %d", p.Name, n, got, want)
			}
			text1 := ir.FormatModule(linked)

			// Idempotency: the relinked module splits and relinks to itself.
			units2, err := ir.SplitModule(linked, n)
			if err != nil {
				t.Fatalf("%s resplit(%d): %v", p.Name, n, err)
			}
			linked2, err := ir.LinkModules("relinked", units2...)
			if err != nil {
				t.Fatalf("%s relink(%d): %v", p.Name, n, err)
			}
			if text2 := ir.FormatModule(linked2); text1 != text2 {
				t.Fatalf("%s split(%d)+link not idempotent", p.Name, n)
			}
		}
	}
}

func TestSplitRejectsGlobals(t *testing.T) {
	m := ir.MustParseModule("g", `
@g = global i64 zeroinitializer

define void @f() {
entry:
  ret void
}
`)
	if _, err := ir.SplitModule(m, 2); err == nil {
		t.Error("modules with globals must be rejected")
	}
}
