package ir_test

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func buildSplitFixture(t *testing.T, seed int64) *ir.Module {
	t.Helper()
	p := workload.Profile{
		Name: "split", NumFuncs: 12, AvgSize: 20, MaxSize: 60,
		Identical: 0.2, TypeVar: 0.1, InternalFrac: 0.6, Seed: seed,
	}
	return workload.Build(p)
}

func runMain(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	mc := interp.NewMachine(m)
	workload.RegisterIntrinsics(mc)
	v, err := mc.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSplitLinkRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		want := runMain(t, buildSplitFixture(t, 5))

		src := buildSplitFixture(t, 5)
		units, err := ir.SplitModule(src, n)
		if err != nil {
			t.Fatalf("split(%d): %v", n, err)
		}
		if len(units) != n {
			t.Fatalf("units = %d, want %d", len(units), n)
		}
		for _, u := range units {
			if err := ir.VerifyModule(u); err != nil {
				t.Fatalf("split(%d) unit invalid: %v\n%s", n, err, ir.FormatModule(u))
			}
		}
		// Units must be independently parseable (real translation units).
		for _, u := range units {
			text := ir.FormatModule(u)
			if _, err := ir.ParseModule(u.Name, text); err != nil {
				t.Fatalf("split(%d) unit unparseable: %v", n, err)
			}
		}

		linked, err := ir.LinkModules("relinked", units...)
		if err != nil {
			t.Fatalf("link after split(%d): %v", n, err)
		}
		if err := ir.VerifyModule(linked); err != nil {
			t.Fatalf("relinked invalid: %v", err)
		}
		if got := runMain(t, linked); got != want {
			t.Fatalf("split(%d)+link changed semantics: %d vs %d", n, got, want)
		}
	}
}

func TestSplitDistributesFunctions(t *testing.T) {
	src := buildSplitFixture(t, 6)
	defs := len(src.Definitions())
	units, err := ir.SplitModule(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k, u := range units {
		d := len(u.Definitions())
		total += d
		if k > 0 && u.FuncByName("main") != nil && !u.FuncByName("main").IsDecl() {
			t.Error("main must live in unit 0")
		}
	}
	if total != defs {
		t.Errorf("definitions across units = %d, want %d", total, defs)
	}
}

func TestSplitRejectsGlobals(t *testing.T) {
	m := ir.MustParseModule("g", `
@g = global i64 zeroinitializer

define void @f() {
entry:
  ret void
}
`)
	if _, err := ir.SplitModule(m, 2); err == nil {
		t.Error("modules with globals must be rejected")
	}
}
