package ir

// CloneFunc deep-copies src into a new detached function named name. The
// clone shares constants, globals and function references with the original
// but has fresh parameters, blocks and instructions.
func CloneFunc(src *Func, name string) *Func {
	dst := NewFunc(name, src.Sig())
	dst.Linkage = src.Linkage
	dst.Hotness = src.Hotness
	if src.IsDecl() {
		return dst
	}
	vmap := make(map[Value]Value, src.NumInsts()+len(src.Params)+len(src.Blocks))
	for i, p := range src.Params {
		dst.Params[i].SetName(p.Name())
		vmap[p] = dst.Params[i]
	}
	CloneBody(src, dst, vmap)
	return dst
}

// CloneBody clones all blocks and instructions of src into dst, extending
// vmap with the mapping from source values to their clones. vmap must
// already map src's parameters to values valid in dst.
func CloneBody(src, dst *Func, vmap map[Value]Value) {
	for _, b := range src.Blocks {
		nb := NewBlock(b.Name())
		dst.AppendBlock(nb)
		vmap[b] = nb
	}
	// First pass: clone instructions with unmapped operands.
	for _, b := range src.Blocks {
		nb := vmap[b].(*Block)
		for _, in := range b.Insts {
			ni := cloneInstShallow(in)
			nb.Append(ni)
			vmap[in] = ni
		}
	}
	// Second pass: remap operands.
	for _, b := range src.Blocks {
		nb := vmap[b].(*Block)
		for i, in := range b.Insts {
			ni := nb.Insts[i]
			for _, op := range in.Operands() {
				ni.AppendOperand(mapValue(op, vmap))
			}
		}
	}
}

// cloneInstShallow copies an instruction's opcode, type, name and attributes
// but not its operands.
func cloneInstShallow(in *Inst) *Inst {
	ni := NewInst(in.Op, in.Type())
	ni.SetName(in.Name())
	ni.Pred = in.Pred
	ni.Alloc = in.Alloc
	if in.Clauses != nil {
		ni.Clauses = append([]string(nil), in.Clauses...)
	}
	return ni
}

// mapValue resolves v through vmap, returning v itself for values that are
// not remapped (constants, globals, functions).
func mapValue(v Value, vmap map[Value]Value) Value {
	if v == nil {
		return nil
	}
	if nv, ok := vmap[v]; ok {
		return nv
	}
	return v
}
