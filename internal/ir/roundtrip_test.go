package ir_test

// Round-trip property tests live in an external test package so they can
// use the workload generator without an import cycle.

import (
	"testing"
	"testing/quick"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

// TestFormatParseRoundTripProperty: for arbitrary generated modules,
// FormatModule produces text that reparses into a verifying module with
// identical formatting (a fixpoint after one round).
func TestFormatParseRoundTripProperty(t *testing.T) {
	f := func(seed int64, nf uint8) bool {
		p := workload.Profile{
			Name:      "rt",
			NumFuncs:  int(nf%12) + 2,
			AvgSize:   20,
			MaxSize:   80,
			Identical: 0.1, TypeVar: 0.1, CFGVar: 0.1,
			InternalFrac: 0.5,
			Seed:         seed,
		}
		m := workload.Build(p)
		text1 := ir.FormatModule(m)
		m2, err := ir.ParseModule("rt", text1)
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		if err := ir.VerifyModule(m2); err != nil {
			t.Logf("verify error: %v", err)
			return false
		}
		return ir.FormatModule(m2) == text1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestVerifierAcceptsGeneratedModules: the generator and verifier agree on
// validity across a broad parameter space.
func TestVerifierAcceptsGeneratedModules(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		p := workload.Profile{
			Name: "v", NumFuncs: 10, AvgSize: 40, MaxSize: 200,
			Identical: 0.2, ConstVar: 0.1, TypeVar: 0.2, CFGVar: 0.2, Partial: 0.1, Reorder: 0.1,
			InternalFrac: 0.6, Seed: seed, TwinSize: 64,
		}
		m := workload.Build(p)
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFloatConstantRoundTrip checks exotic float spellings survive
// print/parse.
func TestFloatConstantRoundTrip(t *testing.T) {
	src := `
define f64 @consts(i1 %c) {
entry:
  %a = fadd f64 0.1, 1e100
  %b = fadd f64 %a, -2.5e-10
  %c2 = fadd f64 %b, +inf
  %d = fadd f64 %c2, -inf
  %e = select i1 %c, f64 %d, f64 nan
  %f = fadd f64 %e, 3.0
  ret f64 %f
}
`
	m, err := ir.ParseModule("fc", src)
	if err != nil {
		t.Fatal(err)
	}
	text1 := ir.FormatModule(m)
	m2, err := ir.ParseModule("fc", text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	if ir.FormatModule(m2) != text1 {
		t.Errorf("float round trip unstable:\n%s\nvs\n%s", text1, ir.FormatModule(m2))
	}
}

// TestI1ConstantSpelling checks the true/false forms round trip.
func TestI1ConstantSpelling(t *testing.T) {
	src := `
define i1 @flags(i1 %x) {
entry:
  %a = and i1 %x, true
  %b = or i1 %a, false
  ret i1 %b
}
`
	m, err := ir.ParseModule("i1", src)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.FormatModule(m)
	if _, err := ir.ParseModule("i1", text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}
