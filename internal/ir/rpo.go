package ir

import "math"

func inf(sign int) float64 { return math.Inf(sign) }
func nan() float64         { return math.NaN() }

// ReversePostOrder returns the blocks of f reachable from the entry in
// reverse post-order. Successor edges are visited in their syntactic order
// (the canonical successor ordering used by linearization).
func ReversePostOrder(f *Func) []*Block {
	if f.IsDecl() {
		return nil
	}
	seen := map[*Block]bool{}
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		// Visit successors right-to-left so the reversed post-order lists
		// them in their canonical (syntactic) order.
		succs := b.Successors()
		for i := len(succs) - 1; i >= 0; i-- {
			visit(succs[i])
		}
		post = append(post, b)
	}
	visit(f.Entry())
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// PostOrder returns reachable blocks in post-order.
func PostOrder(f *Func) []*Block {
	rpo := ReversePostOrder(f)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	return rpo
}

// DomTree is a dominator tree over the reachable blocks of a function,
// computed with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *Func
	idom  map[*Block]*Block
	index map[*Block]int // RPO index
}

// ComputeDomTree builds the dominator tree of f.
func ComputeDomTree(f *Func) *DomTree {
	rpo := ReversePostOrder(f)
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds() {
				if _, reachable := index[p]; !reachable {
					continue
				}
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom, idom, index)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{fn: f, idom: idom, index: index}
}

func intersect(a, b *Block, idom map[*Block]*Block, index map[*Block]int) *Block {
	for a != b {
		for index[a] > index[b] {
			a = idom[a]
		}
		for index[b] > index[a] {
			b = idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry block dominates
// itself). Unreachable blocks return nil.
func (dt *DomTree) IDom(b *Block) *Block {
	if b == dt.fn.Entry() {
		return nil
	}
	return dt.idom[b]
}

// Dominates reports whether block a dominates block b. Every block dominates
// itself. Unreachable blocks are dominated by nothing and dominate nothing
// (except themselves).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	if _, ok := dt.index[b]; !ok {
		return false
	}
	entry := dt.fn.Entry()
	for b != entry {
		b = dt.idom[b]
		if b == nil {
			return false
		}
		if b == a {
			return true
		}
	}
	return a == entry
}

// Reachable reports whether b is reachable from the entry block.
func (dt *DomTree) Reachable(b *Block) bool {
	_, ok := dt.index[b]
	return ok
}

// InstDominates reports whether instruction def dominates the use of a value
// at operand position useIdx of instruction user. Phi uses are considered to
// occur at the end of the corresponding incoming block.
func (dt *DomTree) InstDominates(def *Inst, user *Inst, useIdx int) bool {
	defB := def.Parent()
	var useB *Block
	if user.Op == OpPhi {
		// The incoming block is the operand immediately after the value.
		useB = user.Operand(useIdx + 1).(*Block)
		// Use occurs at the end of useB; def just needs to dominate useB.
		return dt.Dominates(defB, useB)
	}
	useB = user.Parent()
	if defB != useB {
		return dt.Dominates(defB, useB)
	}
	// Same block: def must come first.
	for _, in := range defB.Insts {
		if in == def {
			return true
		}
		if in == user {
			return false
		}
	}
	return false
}
