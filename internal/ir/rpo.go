package ir

import "math"

func inf(sign int) float64 { return math.Inf(sign) }
func nan() float64         { return math.NaN() }

// ReversePostOrder returns the blocks of f reachable from the entry in
// reverse post-order. Successor edges are visited in their syntactic order
// (the canonical successor ordering used by linearization).
func ReversePostOrder(f *Func) []*Block {
	if f.IsDecl() {
		return nil
	}
	seen := map[*Block]bool{}
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		// Visit successors right-to-left so the reversed post-order lists
		// them in their canonical (syntactic) order.
		succs := b.Successors()
		for i := len(succs) - 1; i >= 0; i-- {
			visit(succs[i])
		}
		post = append(post, b)
	}
	visit(f.Entry())
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// PostOrder returns reachable blocks in post-order.
func PostOrder(f *Func) []*Block {
	rpo := ReversePostOrder(f)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	return rpo
}

// DomTree is a dominator tree over the reachable blocks of a function,
// computed with the Cooper–Harvey–Kennedy iterative algorithm. Dominance
// queries are O(1): an Euler-style DFS numbering of the tree (pre/post
// intervals) turns ancestry into two integer comparisons, so per-use SSA
// validation over large merged bodies does not walk idom chains.
type DomTree struct {
	fn    *Func
	idom  map[*Block]*Block
	index map[*Block]int // RPO index
	// pre/post are DFS entry/exit numbers of each block in the dominator
	// tree, indexed by RPO index: a dominates b iff a's interval encloses
	// b's.
	pre, post []int32
}

// ComputeDomTree builds the dominator tree of f.
func ComputeDomTree(f *Func) *DomTree {
	rpo := ReversePostOrder(f)
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds() {
				if _, reachable := index[p]; !reachable {
					continue
				}
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom, idom, index)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	dt := &DomTree{fn: f, idom: idom, index: index}
	dt.number(rpo)
	return dt
}

// number assigns DFS pre/post intervals over the dominator tree. Children
// are linked through per-index sibling lists (no per-block allocation) and
// the walk is iterative, so deep trees cannot overflow the stack.
func (dt *DomTree) number(rpo []*Block) {
	n := len(rpo)
	dt.pre = make([]int32, n)
	dt.post = make([]int32, n)
	firstKid := make([]int32, n)
	nextSib := make([]int32, n)
	for i := range firstKid {
		firstKid[i] = -1
		nextSib[i] = -1
	}
	// Iterate in reverse so each child list comes out in RPO order.
	for i := n - 1; i >= 1; i-- {
		p := dt.index[dt.idom[rpo[i]]]
		nextSib[i] = firstKid[p]
		firstKid[p] = int32(i)
	}
	clock := int32(0)
	// Explicit stack of (node, next child to visit).
	type frame struct{ node, kid int32 }
	stack := make([]frame, 1, 16)
	stack[0] = frame{0, firstKid[0]}
	dt.pre[0] = clock
	clock++
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.kid < 0 {
			dt.post[top.node] = clock
			clock++
			stack = stack[:len(stack)-1]
			continue
		}
		k := top.kid
		top.kid = nextSib[k]
		dt.pre[k] = clock
		clock++
		stack = append(stack, frame{k, firstKid[k]})
	}
}

func intersect(a, b *Block, idom map[*Block]*Block, index map[*Block]int) *Block {
	for a != b {
		for index[a] > index[b] {
			a = idom[a]
		}
		for index[b] > index[a] {
			b = idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry block dominates
// itself). Unreachable blocks return nil.
func (dt *DomTree) IDom(b *Block) *Block {
	if b == dt.fn.Entry() {
		return nil
	}
	return dt.idom[b]
}

// Dominates reports whether block a dominates block b. Every block dominates
// itself. Unreachable blocks are dominated by nothing and dominate nothing
// (except themselves).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if a == b {
		return true
	}
	ia, ok := dt.index[a]
	if !ok {
		return false
	}
	ib, ok := dt.index[b]
	if !ok {
		return false
	}
	return dt.pre[ia] <= dt.pre[ib] && dt.post[ib] <= dt.post[ia]
}

// Reachable reports whether b is reachable from the entry block.
func (dt *DomTree) Reachable(b *Block) bool {
	_, ok := dt.index[b]
	return ok
}

// InstDominates reports whether instruction def dominates the use of a value
// at operand position useIdx of instruction user. Phi uses are considered to
// occur at the end of the corresponding incoming block.
func (dt *DomTree) InstDominates(def *Inst, user *Inst, useIdx int) bool {
	defB := def.Parent()
	var useB *Block
	if user.Op == OpPhi {
		// The incoming block is the operand immediately after the value.
		useB = user.Operand(useIdx + 1).(*Block)
		// Use occurs at the end of useB; def just needs to dominate useB.
		return dt.Dominates(defB, useB)
	}
	useB = user.Parent()
	if defB != useB {
		return dt.Dominates(defB, useB)
	}
	// Same block: def must come first.
	for _, in := range defB.Insts {
		if in == def {
			return true
		}
		if in == user {
			return false
		}
	}
	return false
}
