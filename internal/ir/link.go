package ir

import "fmt"

// LinkModules combines translation units into one module, the front half of
// the paper's monolithic-LTO pipeline (Fig. 9): declarations are resolved
// against definitions from other units, internal symbols are renamed on
// collision, and duplicate external definitions are rejected.
//
// The source modules are consumed: their functions and globals move into
// the result and the sources must not be used afterwards.
func LinkModules(name string, mods ...*Module) (*Module, error) {
	linked := NewModule(name)

	// Pre-size every table from the summed input counts: relinking after a
	// split is a hot path, and growing the symbol maps incrementally there
	// costs repeated rehashes of the whole table.
	nfuncs, nglobals := 0, 0
	for _, src := range mods {
		nfuncs += len(src.Funcs)
		nglobals += len(src.Globals)
	}
	linked.Grow(nfuncs, nglobals)

	// First pass: move every definition, renaming internal symbols whose
	// names collide. Track the chosen definition per external name.
	type pending struct {
		decls []*Func
		def   *Func
	}
	funcs := make(map[string]*pending, nfuncs)
	order := make([]string, 0, nfuncs) // deterministic first-seen order of external names

	for _, src := range mods {
		for _, g := range append([]*Global(nil), src.Globals...) {
			src.detachGlobal(g)
			if g.Linkage == InternalLinkage {
				g.SetName(linked.UniqueName(g.Name()))
				linked.AddGlobal(g)
				continue
			}
			if prev := linked.GlobalByName(g.Name()); prev != nil {
				return nil, fmt.Errorf("link: duplicate external global @%s", g.Name())
			}
			linked.AddGlobal(g)
		}
		for _, f := range append([]*Func(nil), src.Funcs...) {
			src.detachFunc(f)
			if !f.IsDecl() && f.Linkage == InternalLinkage {
				f.SetName(linked.UniqueName(f.Name()))
				linked.AddFunc(f)
				continue
			}
			p := funcs[f.Name()]
			if p == nil {
				p = &pending{}
				funcs[f.Name()] = p
				order = append(order, f.Name())
			}
			if f.IsDecl() {
				p.decls = append(p.decls, f)
				continue
			}
			if p.def != nil {
				return nil, fmt.Errorf("link: duplicate definition of @%s", f.Name())
			}
			p.def = f
		}
	}

	// Second pass: install external functions, resolving declarations to
	// the definition when one exists.
	for _, name := range order {
		p := funcs[name]
		keep := p.def
		if keep == nil {
			// Declaration-only symbol: keep one declaration, but check
			// signatures agree.
			keep = p.decls[0]
			p.decls = p.decls[1:]
		}
		for _, d := range p.decls {
			if d.Sig() != keep.Sig() {
				return nil, fmt.Errorf("link: conflicting signatures for @%s: %s vs %s",
					name, d.Sig(), keep.Sig())
			}
			ReplaceAllUsesWith(d, keep)
			if d.NumUses() > 0 {
				return nil, fmt.Errorf("link: could not resolve all uses of @%s", name)
			}
		}
		linked.AddFunc(keep)
	}
	return linked, nil
}

// detachFunc unlinks f from the module without touching its body, for use
// by the linker.
func (m *Module) detachFunc(f *Func) {
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
	delete(m.funcByName, f.name)
	f.parent = nil
}

// detachGlobal unlinks g from the module without touching its initializer.
func (m *Module) detachGlobal(g *Global) {
	for i, x := range m.Globals {
		if x == g {
			m.Globals = append(m.Globals[:i], m.Globals[i+1:]...)
			break
		}
	}
	delete(m.globalByName, g.name)
	g.parent = nil
}
