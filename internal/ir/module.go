package ir

import "fmt"

// Module is a translation unit: an ordered list of globals and functions
// with a symbol table.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	funcByName   map[string]*Func
	globalByName map[string]*Global
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		funcByName:   map[string]*Func{},
		globalByName: map[string]*Global{},
	}
}

// Grow reserves capacity for nf additional functions and ng additional
// globals, growing the ordered slices and rebuilding the symbol maps at the
// target size so bulk attachment (linking, cloning) avoids incremental
// rehashing.
func (m *Module) Grow(nf, ng int) {
	if nf > 0 {
		if cap(m.Funcs)-len(m.Funcs) < nf {
			grown := make([]*Func, len(m.Funcs), len(m.Funcs)+nf)
			copy(grown, m.Funcs)
			m.Funcs = grown
		}
		byName := make(map[string]*Func, len(m.Funcs)+nf)
		for _, f := range m.Funcs {
			byName[f.name] = f
		}
		m.funcByName = byName
	}
	if ng > 0 {
		if cap(m.Globals)-len(m.Globals) < ng {
			grown := make([]*Global, len(m.Globals), len(m.Globals)+ng)
			copy(grown, m.Globals)
			m.Globals = grown
		}
		byName := make(map[string]*Global, len(m.Globals)+ng)
		for _, g := range m.Globals {
			byName[g.name] = g
		}
		m.globalByName = byName
	}
}

// AddFunc attaches f to the module. Function names must be unique.
func (m *Module) AddFunc(f *Func) {
	if f.parent != nil {
		panic("ir: function already attached")
	}
	if _, dup := m.funcByName[f.name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", f.name))
	}
	f.parent = m
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.name] = f
}

// NewFuncIn creates a function with the given name and signature and
// attaches it to the module.
func (m *Module) NewFuncIn(name string, sig *Type) *Func {
	f := NewFunc(name, sig)
	m.AddFunc(f)
	return f
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func { return m.funcByName[name] }

// RemoveFunc detaches f from the module. The function must be unused.
func (m *Module) RemoveFunc(f *Func) {
	if f.parent != m {
		panic("ir: RemoveFunc of foreign function")
	}
	if f.NumUses() > 0 {
		panic(fmt.Sprintf("ir: RemoveFunc of used function %s", f.name))
	}
	f.DropBody()
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
	delete(m.funcByName, f.name)
	f.parent = nil
}

// AddGlobal attaches g to the module. Global names must be unique.
func (m *Module) AddGlobal(g *Global) {
	if g.parent != nil {
		panic("ir: global already attached")
	}
	if _, dup := m.globalByName[g.name]; dup {
		panic(fmt.Sprintf("ir: duplicate global %q", g.name))
	}
	g.parent = m
	m.Globals = append(m.Globals, g)
	m.globalByName[g.name] = g
}

// NewGlobalIn creates a global with the given name and value type and
// attaches it to the module.
func (m *Module) NewGlobalIn(name string, typ *Type) *Global {
	g := NewGlobal(name, typ)
	m.AddGlobal(g)
	return g
}

// GlobalByName returns the global with the given name, or nil.
func (m *Module) GlobalByName(name string) *Global { return m.globalByName[name] }

// UniqueName returns base if it is unused, otherwise base with a numeric
// suffix that makes it unique among function and global names.
func (m *Module) UniqueName(base string) string {
	if !ValidSymbolName(base) {
		// An empty or unprintable base would mint a symbol the textual
		// format cannot represent (the verifier flags it as FV010).
		base = "f"
	}
	if _, f := m.funcByName[base]; !f {
		if _, g := m.globalByName[base]; !g {
			return base
		}
	}
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s.%d", base, i)
		_, f := m.funcByName[name]
		_, g := m.globalByName[name]
		if !f && !g {
			return name
		}
	}
}

// Definitions returns the functions that have bodies, in module order.
func (m *Module) Definitions() []*Func {
	var defs []*Func
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			defs = append(defs, f)
		}
	}
	return defs
}

// NumInsts returns the total instruction count across all definitions.
func (m *Module) NumInsts() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInsts()
	}
	return n
}
