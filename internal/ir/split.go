package ir

import (
	"fmt"
	"sort"
)

// SplitModule partitions a module's function definitions round-robin into n
// translation units, the inverse of LinkModules. Cross-unit references
// become declarations in the referring unit; internal functions that end up
// referenced across units are promoted to external linkage (with a unique
// name) so the units link back together. @main, when present, stays in the
// first unit.
//
// Assignment and unit-internal order follow the symbol names, not the
// module's arrival order, so two modules that define the same functions in
// different orders split into textually identical units — the invariant
// sharded global merging builds its bit-identity on.
//
// Together with LinkModules this models the paper's Fig. 9 pipeline: a
// program split into per-file units, compiled separately, then linked and
// optimized as one module. Modules with globals are not supported (the
// textual IR has no global declarations).
func SplitModule(m *Module, n int) ([]*Module, error) {
	if n < 1 {
		return nil, fmt.Errorf("split: need at least one unit")
	}
	if len(m.Globals) > 0 {
		return nil, fmt.Errorf("split: modules with globals are not supported")
	}

	// Name-sorted view of the symbol table: drives both unit assignment and
	// unit-internal placement so the result is input-order invariant.
	sorted := append([]*Func(nil), m.Funcs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name() < sorted[j].Name() })

	// Assign definitions to units.
	unitOf := map[*Func]int{}
	next := 0
	for _, f := range sorted {
		if f.IsDecl() {
			continue
		}
		if f.Name() == "main" {
			unitOf[f] = 0
			continue
		}
		unitOf[f] = next % n
		next++
	}

	// Promote internal functions referenced from another unit.
	for _, f := range m.Funcs {
		if f.IsDecl() || f.Linkage != InternalLinkage {
			continue
		}
		crossUnit := false
		for _, u := range f.Uses() {
			user := u.User.Parent().Parent()
			if unitOf[user] != unitOf[f] {
				crossUnit = true
				break
			}
		}
		if crossUnit {
			f.Linkage = ExternalLinkage
		}
	}

	units := make([]*Module, n)
	for k := range units {
		units[k] = NewModule(fmt.Sprintf("%s.unit%d", m.Name, k))
	}

	for k, unit := range units {
		// Base value map: every module-level function maps to this unit's
		// instance — a clone shell for assigned definitions, a declaration
		// otherwise (pruned later if unused).
		base := map[Value]Value{}
		clones := map[*Func]*Func{}
		for _, f := range sorted {
			var local *Func
			if !f.IsDecl() && unitOf[f] == k {
				local = NewFunc(f.Name(), f.Sig())
				local.Linkage = f.Linkage
				local.Hotness = f.Hotness
				clones[f] = local
			} else {
				local = NewFunc(f.Name(), f.Sig())
				local.Linkage = ExternalLinkage
			}
			unit.AddFunc(local)
			base[f] = local
		}
		// Clone assigned bodies.
		for _, f := range sorted {
			dst, ok := clones[f]
			if !ok {
				continue
			}
			vmap := make(map[Value]Value, len(base)+f.NumInsts())
			for key, v := range base {
				vmap[key] = v
			}
			for i, p := range f.Params {
				dst.Params[i].SetName(p.Name())
				vmap[p] = dst.Params[i]
			}
			CloneBody(f, dst, vmap)
		}
		// Prune unused declarations.
		for _, f := range append([]*Func(nil), unit.Funcs...) {
			if f.IsDecl() && f.NumUses() == 0 {
				unit.RemoveFunc(f)
			}
		}
	}
	return units, nil
}
