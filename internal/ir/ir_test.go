package ir

import (
	"strings"
	"testing"
)

func TestTypeInterning(t *testing.T) {
	if Int(32) != Int(32) {
		t.Error("Int(32) not interned")
	}
	if PointerTo(Int(8)) != PointerTo(Int(8)) {
		t.Error("pointer types not interned")
	}
	if StructOf(I32(), F64()) != StructOf(I32(), F64()) {
		t.Error("struct types not interned")
	}
	if FuncOf(Void(), I32()) != FuncOf(Void(), I32()) {
		t.Error("func types not interned")
	}
	if Int(32) == Int(64) {
		t.Error("distinct widths interned together")
	}
	if ArrayOf(3, I32()) == ArrayOf(4, I32()) {
		t.Error("distinct lengths interned together")
	}
	if FuncOf(Void(), I32()) == VarFuncOf(Void(), I32()) {
		t.Error("variadic and non-variadic interned together")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		ty   *Type
		want string
	}{
		{Void(), "void"},
		{I32(), "i32"},
		{Bool(), "i1"},
		{F64(), "f64"},
		{PointerTo(F32()), "f32*"},
		{ArrayOf(4, I8()), "[4 x i8]"},
		{StructOf(I32(), PointerTo(I8())), "{i32, i8*}"},
		{FuncOf(I32(), F64(), I64()), "i32 (f64, i64)"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty    *Type
		bytes int
	}{
		{Bool(), 1},
		{I8(), 1},
		{I32(), 4},
		{I64(), 8},
		{F32(), 4},
		{F64(), 8},
		{PointerTo(I8()), 8},
		{ArrayOf(5, I32()), 20},
		{StructOf(I32(), F64()), 12},
	}
	for _, c := range cases {
		if got := c.ty.SizeBytes(); got != c.bytes {
			t.Errorf("%s SizeBytes = %d, want %d", c.ty, got, c.bytes)
		}
	}
}

func TestLosslesslyBitcastable(t *testing.T) {
	cases := []struct {
		a, b *Type
		want bool
	}{
		{I32(), I32(), true},
		{I32(), F32(), true},
		{I64(), F64(), true},
		{I32(), F64(), false},
		{I32(), I64(), false},
		{PointerTo(I8()), PointerTo(F64()), true},
		{PointerTo(I8()), I64(), true}, // same representation width
		{Void(), Void(), true},
		{Void(), I32(), false},
	}
	for _, c := range cases {
		if got := LosslesslyBitcastable(c.a, c.b); got != c.want {
			t.Errorf("LosslesslyBitcastable(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConstIntCanonicalization(t *testing.T) {
	c := NewConstInt(I8(), 255)
	if c.V != -1 {
		t.Errorf("i8 255 canonical value = %d, want -1", c.V)
	}
	if c.Uint() != 255 {
		t.Errorf("Uint() = %d, want 255", c.Uint())
	}
	if !ConstantsEqual(NewConstInt(I8(), 255), NewConstInt(I8(), -1)) {
		t.Error("i8 255 != i8 -1")
	}
	if ConstantsEqual(NewConstInt(I8(), 1), NewConstInt(I16(), 1)) {
		t.Error("constants of different types compared equal")
	}
}

// buildSimpleFunc constructs: i32 @f(i32 %a) { return a+1 }
func buildSimpleFunc(m *Module, name string) *Func {
	f := m.NewFuncIn(name, FuncOf(I32(), I32()))
	f.Params[0].SetName("a")
	entry := f.NewBlockIn("entry")
	b := NewBuilder(entry)
	sum := b.Add(f.Params[0], NewConstInt(I32(), 1))
	b.Ret(sum)
	return f
}

func TestBuilderAndVerify(t *testing.T) {
	m := NewModule("test")
	f := buildSimpleFunc(m, "f")
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if f.NumInsts() != 2 {
		t.Errorf("NumInsts = %d, want 2", f.NumInsts())
	}
}

func TestUseLists(t *testing.T) {
	m := NewModule("test")
	f := m.NewFuncIn("f", FuncOf(I32(), I32()))
	entry := f.NewBlockIn("entry")
	b := NewBuilder(entry)
	add := b.Add(f.Params[0], f.Params[0])
	mul := b.Mul(add, add)
	b.Ret(mul)

	if f.Params[0].NumUses() != 2 {
		t.Errorf("param uses = %d, want 2", f.Params[0].NumUses())
	}
	if add.NumUses() != 2 {
		t.Errorf("add uses = %d, want 2", add.NumUses())
	}
	if mul.NumUses() != 1 {
		t.Errorf("mul uses = %d, want 1", mul.NumUses())
	}

	// RAUW add with a constant.
	ReplaceAllUsesWith(add, NewConstInt(I32(), 7))
	if add.NumUses() != 0 {
		t.Errorf("add uses after RAUW = %d, want 0", add.NumUses())
	}
	if mul.Operand(0).(*ConstInt).V != 7 {
		t.Error("RAUW did not rewrite mul operand")
	}
}

func TestRemoveInstruction(t *testing.T) {
	m := NewModule("test")
	f := m.NewFuncIn("f", FuncOf(I32(), I32()))
	entry := f.NewBlockIn("entry")
	b := NewBuilder(entry)
	dead := b.Add(f.Params[0], NewConstInt(I32(), 3))
	b.Ret(f.Params[0])
	if f.Params[0].NumUses() != 2 {
		t.Fatalf("param uses = %d, want 2", f.Params[0].NumUses())
	}
	dead.RemoveFromParent()
	if f.Params[0].NumUses() != 1 {
		t.Errorf("param uses after removal = %d, want 1", f.Params[0].NumUses())
	}
	if len(entry.Insts) != 1 {
		t.Errorf("block length = %d, want 1", len(entry.Insts))
	}
}

func TestSuccessorsAndPreds(t *testing.T) {
	m := NewModule("test")
	f := m.NewFuncIn("f", FuncOf(Void(), Bool()))
	entry := f.NewBlockIn("entry")
	thenB := f.NewBlockIn("then")
	elseB := f.NewBlockIn("else")
	exit := f.NewBlockIn("exit")
	b := NewBuilder(entry)
	b.CondBr(f.Params[0], thenB, elseB)
	b.SetBlock(thenB)
	b.Br(exit)
	b.SetBlock(elseB)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)

	succs := entry.Successors()
	if len(succs) != 2 || succs[0] != thenB || succs[1] != elseB {
		t.Errorf("entry successors wrong: %v", succs)
	}
	preds := exit.Preds()
	if len(preds) != 2 {
		t.Errorf("exit preds = %d, want 2", len(preds))
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

const exampleIR = `
@counter = internal global i64 zeroinitializer
@table = global [4 x i32] bytes "01000000020000000300000004000000"

declare i8* @mymalloc(i64)

define internal i32 @clamp(i32 %x, i32 %lo, i32 %hi) {
entry:
  %c1 = icmp slt i32 %x, %lo
  br i1 %c1, label %retlo, label %checkhi
retlo:
  ret i32 %lo
checkhi:
  %c2 = icmp sgt i32 %x, %hi
  br i1 %c2, label %rethi, label %retx
rethi:
  ret i32 %hi
retx:
  ret i32 %x
}

define f64 @mix(f64 %a, f32 %b, i1 %flip) {
entry:
  %be = fpext f32 %b to f64
  %s = select i1 %flip, f64 %a, f64 %be
  %t = fadd f64 %s, 1.5
  ret f64 %t
}

define void @loop(i64 %n, i64* %out) {
entry:
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %cond = icmp slt i64 %iv, %n
  br i1 %cond, label %body, label %done
body:
  %next = add i64 %iv, 1
  store i64 %next, i64* %i
  br label %head
done:
  store i64 %iv, i64* %out
  ret void
}
`

func TestParseFormatRoundTrip(t *testing.T) {
	m, err := ParseModule("example", exampleIR)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	text1 := FormatModule(m)
	m2, err := ParseModule("example", text1)
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, text1)
	}
	text2 := FormatModule(m2)
	if text1 != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}

	clamp := m.FuncByName("clamp")
	if clamp == nil || clamp.Linkage != InternalLinkage {
		t.Fatal("clamp not parsed as internal")
	}
	if clamp.NumInsts() != 7 {
		t.Errorf("clamp insts = %d, want 7", clamp.NumInsts())
	}
	g := m.GlobalByName("table")
	if g == nil || len(g.Init) != 16 {
		t.Fatal("table global not parsed")
	}
	if m.FuncByName("mymalloc") == nil || !m.FuncByName("mymalloc").IsDecl() {
		t.Error("mymalloc should be a declaration")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`define i32 @f() { entry: ret i32 %nope }`,
		`define i32 @f() { entry: br label %missing }`,
		`define void @f() { entry: frobnicate }`,
		`define void @f() { entry: ret void } define void @f() { entry: ret void }`,
		`@g = global i32 bytes "zz"`,
	}
	for _, src := range cases {
		if _, err := ParseModule("bad", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
	// Duplicate module-level function should panic or error; AddFunc panics,
	// so ParseModule must surface it as... (we guard with recover here).
}

func TestParsePhiForwardRef(t *testing.T) {
	src := `
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  ret i32 %p
}
`
	// %y is never defined: expect an error.
	if _, err := ParseModule("f", src); err == nil {
		t.Fatal("expected undefined-value error")
	}
	src = strings.Replace(src, "%y, %b", "0, %b", 1)
	m, err := ParseModule("f", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	// Unterminated block.
	m := NewModule("bad")
	f := m.NewFuncIn("f", FuncOf(Void()))
	entry := f.NewBlockIn("entry")
	_ = entry
	if err := VerifyFunc(f); err == nil {
		t.Error("empty block not caught")
	}

	// Use not dominated by def.
	m2 := NewModule("bad2")
	f2 := m2.NewFuncIn("f", FuncOf(I32(), Bool()))
	e := f2.NewBlockIn("entry")
	aB := f2.NewBlockIn("a")
	bB := f2.NewBlockIn("b")
	bld := NewBuilder(e)
	bld.CondBr(f2.Params[0], aB, bB)
	bld.SetBlock(aB)
	x := bld.Add(NewConstInt(I32(), 1), NewConstInt(I32(), 2))
	bld.Ret(x)
	bld.SetBlock(bB)
	bld.Ret(x) // x does not dominate this use
	if err := VerifyFunc(f2); err == nil {
		t.Error("dominance violation not caught")
	}

	// Ret type mismatch.
	m3 := NewModule("bad3")
	f3 := m3.NewFuncIn("f", FuncOf(I32()))
	e3 := f3.NewBlockIn("entry")
	e3.Append(NewInst(OpRet, Void(), NewConstFloat(F64(), 1.0)))
	if err := VerifyFunc(f3); err == nil {
		t.Error("ret type mismatch not caught")
	}

	// Aggregate load/store.
	m4 := NewModule("bad4")
	st := StructOf(I64(), I64())
	f4 := m4.NewFuncIn("f", FuncOf(Void(), PointerTo(st)))
	e4 := f4.NewBlockIn("entry")
	b4 := NewBuilder(e4)
	ld := b4.Load(f4.Params[0])
	b4.Store(ld, f4.Params[0])
	b4.Ret(nil)
	if err := VerifyFunc(f4); err == nil {
		t.Error("aggregate load/store not caught")
	}
}

// TestVerifyPhiIncomingMultiplicity: a conditional branch with both arms on
// the same target contributes TWO edges, so a phi in the target needs two
// incoming entries for that predecessor — one is a verifier error that a
// presence-only check would miss.
func TestVerifyPhiIncomingMultiplicity(t *testing.T) {
	build := func(entries int) *Func {
		m := NewModule("phi")
		f := m.NewFuncIn("f", FuncOf(I32(), Bool()))
		e := f.NewBlockIn("entry")
		join := f.NewBlockIn("join")
		NewBuilder(e).CondBr(f.Params[0], join, join)
		args := make([]Value, 0, 2*entries)
		for i := 0; i < entries; i++ {
			args = append(args, NewConstInt(I32(), int64(i)), Value(e))
		}
		phi := NewInst(OpPhi, I32(), args...)
		join.Append(phi)
		NewBuilder(join).Ret(phi)
		return f
	}
	if err := VerifyFunc(build(2)); err != nil {
		t.Errorf("two entries for a double edge should verify, got: %v", err)
	}
	if err := VerifyFunc(build(1)); err == nil {
		t.Error("one incoming entry for a double edge not caught")
	} else if !strings.Contains(err.Error(), "one per edge") {
		t.Errorf("wrong error for under-counted phi: %v", err)
	}
	if err := VerifyFunc(build(3)); err == nil {
		t.Error("three incoming entries for a double edge not caught")
	}
}

func TestDomTree(t *testing.T) {
	m := MustParseModule("d", `
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret void
}
`)
	f := m.FuncByName("f")
	dt := ComputeDomTree(f)
	get := func(name string) *Block {
		for _, b := range f.Blocks {
			if b.Name() == name {
				return b
			}
		}
		t.Fatalf("no block %s", name)
		return nil
	}
	entry, a, bb, join := get("entry"), get("a"), get("b"), get("join")
	if !dt.Dominates(entry, join) || !dt.Dominates(entry, a) {
		t.Error("entry should dominate all")
	}
	if dt.Dominates(a, join) || dt.Dominates(bb, join) {
		t.Error("a/b must not dominate join")
	}
	if dt.IDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", dt.IDom(join))
	}
	if dt.IDom(entry) != nil {
		t.Error("entry idom should be nil")
	}
}

func TestReversePostOrder(t *testing.T) {
	m := MustParseModule("r", `
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret void
}
`)
	f := m.FuncByName("f")
	rpo := ReversePostOrder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo length = %d, want 4", len(rpo))
	}
	if rpo[0] != f.Entry() {
		t.Error("rpo must start at entry")
	}
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Name()] = i
	}
	if pos["join"] != 3 {
		t.Errorf("join position = %d, want 3", pos["join"])
	}
}

func TestCloneFunc(t *testing.T) {
	m := MustParseModule("c", exampleIR)
	orig := m.FuncByName("loop")
	clone := CloneFunc(orig, "loop2")
	m.AddFunc(clone)
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify after clone: %v", err)
	}
	if clone.NumInsts() != orig.NumInsts() {
		t.Errorf("clone insts = %d, want %d", clone.NumInsts(), orig.NumInsts())
	}
	// Formatting both must produce identical bodies modulo the name.
	a := strings.Replace(FormatFunc(orig), "@loop", "@X", 1)
	b := strings.Replace(FormatFunc(clone), "@loop2", "@X", 1)
	if a != b {
		t.Errorf("clone body differs:\n%s\nvs\n%s", a, b)
	}
	// Mutating the clone must not affect the original.
	clone.Entry().Insts[0].SetName("renamed")
	if orig.Entry().Insts[0].Name() == "renamed" {
		t.Error("clone shares instruction with original")
	}
}

func TestFuncAddressTakenAndCallers(t *testing.T) {
	m := MustParseModule("a", `
declare void @sink(i64)

define void @callee() {
entry:
  ret void
}

define void @caller() {
entry:
  call void @callee()
  %p = ptrtoint void ()* @callee to i64
  call void @sink(i64 %p)
  ret void
}
`)
	callee := m.FuncByName("callee")
	if !callee.HasAddressTaken() {
		t.Error("callee address should be taken via ptrtoint")
	}
	if n := len(callee.Callers()); n != 1 {
		t.Errorf("callers = %d, want 1", n)
	}
}

func TestModuleUniqueName(t *testing.T) {
	m := NewModule("u")
	m.NewFuncIn("f", FuncOf(Void()))
	if got := m.UniqueName("g"); got != "g" {
		t.Errorf("UniqueName(g) = %q", got)
	}
	if got := m.UniqueName("f"); got == "f" {
		t.Error("UniqueName(f) must rename")
	}
}

func TestSwitchAndInvokeRoundTrip(t *testing.T) {
	src := `
declare void @may_throw()
declare void @handler()

define i32 @sw(i32 %x) {
entry:
  switch i32 %x, label %def [ i32 1, label %one i32 2, label %two ]
one:
  ret i32 10
two:
  ret i32 20
def:
  ret i32 0
}

define void @eh() {
entry:
  invoke void @may_throw() to label %ok unwind label %lpad
ok:
  ret void
lpad:
  %lp = landingpad cleanup catch @handler
  resume token %lp
}
`
	m, err := ParseModule("sw", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	text := FormatModule(m)
	m2, err := ParseModule("sw", text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if FormatModule(m2) != text {
		t.Error("switch/invoke round trip unstable")
	}
	eh := m.FuncByName("eh")
	var lpadBlock *Block
	for _, b := range eh.Blocks {
		if b.Name() == "lpad" {
			lpadBlock = b
		}
	}
	if !lpadBlock.IsLandingBlock() {
		t.Error("lpad not recognised as landing block")
	}
}
