package ir

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses textual IR in the format produced by FormatModule.
func ParseModule(name, src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, mod: NewModule(name)}
	if err := p.scanHeaders(); err != nil {
		return nil, err
	}
	p.pos = 0
	if err := p.parseBodies(); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// MustParseModule is ParseModule that panics on error; intended for tests
// and examples with literal IR.
func MustParseModule(name, src string) *Module {
	m, err := ParseModule(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLocal  // %name
	tGlobal // @name
	tInt
	tFloat
	tString
	tPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tLocal:
		return "%" + t.text
	case tGlobal:
		return "@" + t.text
	case tString:
		return strconv.Quote(t.text)
	default:
		return t.text
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '%' || c == '@':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("line %d: empty identifier after %q", line, string(c))
			}
			kind := tLocal
			if c == '@' {
				kind = tGlobal
			}
			toks = append(toks, token{kind, src[i+1 : j], line})
			i = j
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j == len(src) {
				return nil, fmt.Errorf("line %d: unterminated string", line)
			}
			toks = append(toks, token{tString, src[i+1 : j], line})
			i = j + 1
		case c == '-' || c == '+' || (c >= '0' && c <= '9'):
			if strings.HasPrefix(src[i:], "+inf") || strings.HasPrefix(src[i:], "-inf") {
				toks = append(toks, token{tFloat, src[i : i+4], line})
				i += 4
				break
			}
			j := i
			if c == '-' || c == '+' {
				j++
			}
			isFloat := false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' || d == 'e' || d == 'E' {
					isFloat = true
					j++
					if j < len(src) && (src[j] == '-' || src[j] == '+') && (d == 'e' || d == 'E') {
						j++
					}
				} else {
					break
				}
			}
			kind := tInt
			if isFloat {
				kind = tFloat
			}
			toks = append(toks, token{kind, src[i:j], line})
			i = j
		case strings.HasPrefix(src[i:], "..."):
			toks = append(toks, token{tPunct, "...", line})
			i += 3
		case strings.IndexByte("(){}[],=:*", c) >= 0:
			toks = append(toks, token{tPunct, string(c), line})
			i++
		default:
			if isIdentStart(c) {
				j := i + 1
				for j < len(src) && isIdentChar(src[j]) {
					j++
				}
				toks = append(toks, token{tIdent, src[i:j], line})
				i = j
				break
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	mod  *Module

	// per-function state
	fn      *Func
	locals  map[string]Value
	blocks  map[string]*Block
	fixups  []fixup
	namePfx map[string]bool
}

// fixup records a forward reference to a not-yet-defined local value.
type fixup struct {
	inst  *Inst
	index int
	name  string
	line  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return fmt.Errorf("line %d: expected %q, got %s", t.line, s, t)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	if p.cur().kind == tIdent && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tIdent {
		return "", fmt.Errorf("line %d: expected identifier, got %s", t.line, t)
	}
	return t.text, nil
}

// scanHeaders walks the token stream creating function shells and globals so
// bodies can reference symbols defined later in the file.
func (p *parser) scanHeaders() error {
	for p.cur().kind != tEOF {
		switch {
		case p.cur().kind == tGlobal:
			if err := p.parseGlobal(); err != nil {
				return err
			}
		case p.cur().kind == tIdent && (p.cur().text == "define" || p.cur().text == "declare"):
			if err := p.parseFuncHeader(true); err != nil {
				return err
			}
			p.skipBody()
		default:
			return p.errf("expected global or function, got %s", p.cur())
		}
	}
	return nil
}

// skipBody advances past a balanced '{' ... '}' body if one follows.
func (p *parser) skipBody() {
	if !(p.cur().kind == tPunct && p.cur().text == "{") {
		return
	}
	depth := 0
	for p.cur().kind != tEOF {
		t := p.next()
		if t.kind == tPunct && t.text == "{" {
			depth++
		} else if t.kind == tPunct && t.text == "}" {
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

func (p *parser) parseBodies() error {
	for p.cur().kind != tEOF {
		switch {
		case p.cur().kind == tGlobal:
			// Already handled in scanHeaders; skip to end of line item.
			p.skipGlobal()
		case p.cur().kind == tIdent && p.cur().text == "declare":
			if err := p.parseFuncHeader(false); err != nil {
				return err
			}
		case p.cur().kind == tIdent && p.cur().text == "define":
			if err := p.parseFuncHeader(false); err != nil {
				return err
			}
			if err := p.parseBody(); err != nil {
				return err
			}
		default:
			return p.errf("expected global or function, got %s", p.cur())
		}
	}
	return nil
}

func (p *parser) skipGlobal() {
	p.next() // @name
	p.expectPunct("=")
	p.acceptIdent("internal")
	p.acceptIdent("global")
	p.parseType()
	if !p.acceptIdent("zeroinitializer") {
		p.acceptIdent("bytes")
		if p.cur().kind == tString {
			p.next()
		}
	}
}

func (p *parser) parseGlobal() error {
	name := p.next().text
	if err := p.expectPunct("="); err != nil {
		return err
	}
	linkage := ExternalLinkage
	if p.acceptIdent("internal") {
		linkage = InternalLinkage
	}
	if !p.acceptIdent("global") {
		return p.errf("expected 'global'")
	}
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	g := NewGlobal(name, ty)
	g.Linkage = linkage
	if p.acceptIdent("zeroinitializer") {
		g.Init = nil
	} else if p.acceptIdent("bytes") {
		t := p.next()
		if t.kind != tString {
			return p.errf("expected hex byte string")
		}
		data, err := hex.DecodeString(t.text)
		if err != nil {
			return p.errf("bad hex initializer: %v", err)
		}
		g.Init = data
	} else {
		return p.errf("expected initializer")
	}
	p.mod.AddGlobal(g)
	return nil
}

// parseFuncHeader parses "define|declare [internal] <ret> @name(<params>)".
// In header-scan mode it registers the function; otherwise it re-parses the
// header and installs parameter bindings for the body parse.
func (p *parser) parseFuncHeader(scan bool) error {
	kw, _ := p.expectIdent() // define | declare
	isDef := kw == "define"
	linkage := ExternalLinkage
	if isDef && p.acceptIdent("internal") {
		linkage = InternalLinkage
	}
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	t := p.next()
	if t.kind != tGlobal {
		return fmt.Errorf("line %d: expected function name, got %s", t.line, t)
	}
	fname := t.text
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var ptypes []*Type
	var pnames []string
	variadic := false
	for !p.acceptPunct(")") {
		if len(ptypes) > 0 || variadic {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		if p.acceptPunct("...") {
			variadic = true
			continue
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		ptypes = append(ptypes, pt)
		if p.cur().kind == tLocal {
			pnames = append(pnames, p.next().text)
		} else {
			pnames = append(pnames, "")
		}
	}
	if scan {
		if p.mod.FuncByName(fname) != nil {
			return fmt.Errorf("line %d: duplicate function @%s", t.line, fname)
		}
		sig := FuncOf(ret, ptypes...)
		if variadic {
			sig = VarFuncOf(ret, ptypes...)
		}
		f := NewFunc(fname, sig)
		f.Linkage = linkage
		p.mod.AddFunc(f)
		return nil
	}
	f := p.mod.FuncByName(fname)
	p.fn = f
	p.locals = map[string]Value{}
	p.blocks = map[string]*Block{}
	p.fixups = nil
	for i, nm := range pnames {
		if nm != "" {
			f.Params[i].SetName(nm)
			p.locals[nm] = f.Params[i]
		}
	}
	return nil
}

func (p *parser) getBlock(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := NewBlock(name)
	p.blocks[name] = b
	return b
}

// bodyShape scans ahead from the token after '{' to the matching '}' and
// returns one instruction-count estimate per label. Labels are counted
// exactly; instructions are estimated as distinct source lines between
// labels (exact for printer output, a harmless capacity hint otherwise).
// The scan does not consume tokens.
func (p *parser) bodyShape() []int {
	depth := 1
	var counts []int
	lastLine := -1
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tPunct {
			switch t.text {
			case "{":
				depth++
				continue
			case "}":
				depth--
				if depth == 0 {
					return counts
				}
				continue
			}
		}
		if depth != 1 {
			continue
		}
		if t.kind == tIdent && i+1 < len(p.toks) && p.toks[i+1].kind == tPunct && p.toks[i+1].text == ":" {
			counts = append(counts, 0)
			lastLine = t.line
			continue
		}
		if len(counts) > 0 && t.line != lastLine {
			counts[len(counts)-1]++
			lastLine = t.line
		}
	}
	return counts
}

func (p *parser) parseBody() error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	// Pre-size the block and instruction slices from one lookahead pass so
	// large printed functions append without repeated re-allocation.
	shape := p.bodyShape()
	if len(shape) > 0 && p.fn.Blocks == nil {
		p.fn.Blocks = make([]*Block, 0, len(shape))
	}
	nextLabel := 0
	var cur *Block
	for !p.acceptPunct("}") {
		t := p.cur()
		if t.kind == tIdent && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == ":" {
			// Label.
			p.pos += 2
			cur = p.getBlock(t.text)
			if cur.parent != nil {
				return fmt.Errorf("line %d: duplicate label %q", t.line, t.text)
			}
			if nextLabel < len(shape) && cur.Insts == nil && shape[nextLabel] > 0 {
				cur.Insts = make([]*Inst, 0, shape[nextLabel])
			}
			nextLabel++
			p.fn.AppendBlock(cur)
			continue
		}
		if cur == nil {
			return p.errf("instruction outside block")
		}
		in, err := p.parseInst()
		if err != nil {
			return err
		}
		cur.Append(in)
	}
	// Resolve forward references.
	for _, fx := range p.fixups {
		v, ok := p.locals[fx.name]
		if !ok {
			return fmt.Errorf("line %d: undefined value %%%s", fx.line, fx.name)
		}
		fx.inst.SetOperand(fx.index, v)
	}
	// Blocks referenced but never defined are an error.
	for name, b := range p.blocks {
		if b.parent == nil {
			return fmt.Errorf("in %s: branch to undefined label %%%s", p.fn.Name(), name)
		}
	}
	p.fn = nil
	return nil
}

// parseType parses a type. Base types: void, label, token, iN, fN, arrays,
// structs; any type may be suffixed with '*'.
func (p *parser) parseType() (*Type, error) {
	var ty *Type
	t := p.cur()
	switch {
	case t.kind == tIdent:
		p.pos++
		switch {
		case t.text == "void":
			ty = Void()
		case t.text == "label":
			ty = Label()
		case t.text == "token":
			ty = Token()
		case len(t.text) > 1 && t.text[0] == 'i':
			// Validate the width here: the constructors panic on invalid
			// widths by design, but bad source must be an error, not a panic.
			bits, err := strconv.Atoi(t.text[1:])
			if err != nil || bits < 1 || bits > 64 {
				return nil, fmt.Errorf("line %d: bad type %q", t.line, t.text)
			}
			ty = Int(bits)
		case len(t.text) > 1 && t.text[0] == 'f':
			bits, err := strconv.Atoi(t.text[1:])
			if err != nil || (bits != 32 && bits != 64) {
				return nil, fmt.Errorf("line %d: bad type %q", t.line, t.text)
			}
			ty = Float(bits)
		default:
			return nil, fmt.Errorf("line %d: unknown type %q", t.line, t.text)
		}
	case t.kind == tPunct && t.text == "[":
		p.pos++
		nTok := p.next()
		if nTok.kind != tInt {
			return nil, fmt.Errorf("line %d: expected array length", nTok.line)
		}
		n, err := strconv.Atoi(nTok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("line %d: bad array length %q", nTok.line, nTok.text)
		}
		if !p.acceptIdent("x") {
			return nil, p.errf("expected 'x' in array type")
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		ty = ArrayOf(n, elem)
	case t.kind == tPunct && t.text == "{":
		p.pos++
		var fields []*Type
		for !p.acceptPunct("}") {
			if len(fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			f, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		ty = StructOf(fields...)
	default:
		return nil, fmt.Errorf("line %d: expected type, got %s", t.line, t)
	}
	// Function type suffix: "<ret> (<params>)".
	if p.cur().kind == tPunct && p.cur().text == "(" {
		p.pos++
		var params []*Type
		variadic := false
		for !p.acceptPunct(")") {
			if len(params) > 0 || variadic {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			if p.acceptPunct("...") {
				variadic = true
				continue
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			params = append(params, pt)
		}
		if variadic {
			ty = VarFuncOf(ty, params...)
		} else {
			ty = FuncOf(ty, params...)
		}
	}
	for p.acceptPunct("*") {
		ty = PointerTo(ty)
	}
	return ty, nil
}

// parseValueRef parses a value reference of known type ty, returning the
// value or recording a fixup on inst/index for forward local references.
func (p *parser) parseValueRef(ty *Type, inst *Inst, index int) (Value, error) {
	t := p.next()
	switch t.kind {
	case tLocal:
		if v, ok := p.locals[t.text]; ok {
			return v, nil
		}
		p.fixups = append(p.fixups, fixup{inst: inst, index: index, name: t.text, line: t.line})
		return nil, nil
	case tGlobal:
		if f := p.mod.FuncByName(t.text); f != nil {
			return f, nil
		}
		if g := p.mod.GlobalByName(t.text); g != nil {
			return g, nil
		}
		return nil, fmt.Errorf("line %d: undefined symbol @%s", t.line, t.text)
	case tInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Large unsigned literal: reparse as unsigned bits.
			u, uerr := strconv.ParseUint(t.text, 10, 64)
			if uerr != nil {
				return nil, fmt.Errorf("line %d: bad integer %q", t.line, t.text)
			}
			v = int64(u)
		}
		if ty.IsFloat() {
			return NewConstFloat(ty, float64(v)), nil
		}
		if !ty.IsInt() {
			return nil, fmt.Errorf("line %d: integer literal for non-integer type %s", t.line, ty)
		}
		return NewConstInt(ty, v), nil
	case tFloat:
		var v float64
		switch t.text {
		case "+inf":
			v = inf(1)
		case "-inf":
			v = inf(-1)
		default:
			var err error
			v, err = strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad float %q", t.line, t.text)
			}
		}
		if !ty.IsFloat() {
			return nil, fmt.Errorf("line %d: float literal for non-float type %s", t.line, ty)
		}
		return NewConstFloat(ty, v), nil
	case tIdent:
		switch t.text {
		case "undef":
			return NewUndef(ty), nil
		case "null":
			if !ty.IsPointer() {
				return nil, fmt.Errorf("line %d: null literal for non-pointer type %s", t.line, ty)
			}
			return NewConstNull(ty), nil
		case "true":
			return NewConstInt(Bool(), 1), nil
		case "false":
			return NewConstInt(Bool(), 0), nil
		case "nan":
			if !ty.IsFloat() {
				return nil, fmt.Errorf("line %d: nan literal for non-float type %s", t.line, ty)
			}
			return NewConstFloat(ty, nan()), nil
		}
	}
	return nil, fmt.Errorf("line %d: expected value, got %s", t.line, t)
}

// parseTypedValue parses "<type> <valueref>".
func (p *parser) parseTypedValue(inst *Inst, index int) (*Type, Value, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, nil, err
	}
	v, err := p.parseValueRef(ty, inst, index)
	return ty, v, err
}

// parseLabelRef parses "label %name".
func (p *parser) parseLabelRef() (*Block, error) {
	if !p.acceptIdent("label") {
		return nil, p.errf("expected 'label'")
	}
	t := p.next()
	if t.kind != tLocal {
		return nil, fmt.Errorf("line %d: expected block name, got %s", t.line, t)
	}
	return p.getBlock(t.text), nil
}

func (p *parser) define(name string, v Value) error {
	if name == "" {
		return nil
	}
	if _, dup := p.locals[name]; dup {
		return p.errf("redefinition of %%%s", name)
	}
	p.locals[name] = v
	if nv, ok := v.(Named); ok {
		nv.SetName(name)
	}
	return nil
}

func (p *parser) parseInst() (*Inst, error) {
	resultName := ""
	if p.cur().kind == tLocal {
		resultName = p.next().text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
	}
	opTok := p.next()
	if opTok.kind != tIdent {
		return nil, fmt.Errorf("line %d: expected opcode, got %s", opTok.line, opTok)
	}
	in, err := p.parseInstBody(opTok.text, opTok.line)
	if err != nil {
		return nil, err
	}
	if resultName != "" {
		if in.Type().IsVoid() {
			return nil, fmt.Errorf("line %d: void instruction cannot have a result name", opTok.line)
		}
		if err := p.define(resultName, in); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// setOrFix attaches v (or its pending fixup) as operand index of in. The
// operand slot must already exist.
func (p *parser) attach(in *Inst, index int, v Value) {
	if v != nil {
		in.SetOperand(index, v)
	}
}

// reserve appends a nil operand slot to in and returns its index.
func reserve(in *Inst) int {
	in.operands = append(in.operands, nil)
	return len(in.operands) - 1
}

func (p *parser) parseInstBody(op string, line int) (*Inst, error) {
	if bop, ok := binaryOps[op]; ok {
		in := NewInst(bop, nil)
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.typ = ty
		i0 := reserve(in)
		v0, err := p.parseValueRef(ty, in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v0)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		i1 := reserve(in)
		v1, err := p.parseValueRef(ty, in, i1)
		if err != nil {
			return nil, err
		}
		p.attach(in, i1, v1)
		return in, nil
	}
	if cop, ok := castOps[op]; ok {
		in := NewInst(cop, nil)
		i0 := reserve(in)
		_, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		if !p.acceptIdent("to") {
			return nil, p.errf("expected 'to' in cast")
		}
		to, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.typ = to
		return in, nil
	}

	switch op {
	case "ret":
		if p.acceptIdent("void") {
			return NewInst(OpRet, Void()), nil
		}
		in := NewInst(OpRet, Void())
		i0 := reserve(in)
		_, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		return in, nil

	case "br":
		if p.cur().kind == tIdent && p.cur().text == "label" {
			b, err := p.parseLabelRef()
			if err != nil {
				return nil, err
			}
			return NewInst(OpBr, Void(), b), nil
		}
		in := NewInst(OpBr, Void())
		i0 := reserve(in)
		_, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		thenB, err := p.parseLabelRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		elseB, err := p.parseLabelRef()
		if err != nil {
			return nil, err
		}
		in.AppendOperand(thenB)
		in.AppendOperand(elseB)
		return in, nil

	case "switch":
		in := NewInst(OpSwitch, Void())
		i0 := reserve(in)
		condTy, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		def, err := p.parseLabelRef()
		if err != nil {
			return nil, err
		}
		in.AppendOperand(def)
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		for !p.acceptPunct("]") {
			cty, cv, err := p.parseTypedValue(nil, 0)
			if err != nil {
				return nil, err
			}
			if cty != condTy {
				return nil, p.errf("switch case type %s does not match condition %s", cty, condTy)
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			dest, err := p.parseLabelRef()
			if err != nil {
				return nil, err
			}
			in.AppendOperand(cv)
			in.AppendOperand(dest)
		}
		return in, nil

	case "unreachable":
		return NewInst(OpUnreachable, Void()), nil

	case "resume":
		in := NewInst(OpResume, Void())
		i0 := reserve(in)
		_, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		return in, nil

	case "alloca":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in := NewInst(OpAlloca, PointerTo(ty))
		in.Alloc = ty
		return in, nil

	case "load":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		in := NewInst(OpLoad, ty)
		i0 := reserve(in)
		_, v, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v)
		return in, nil

	case "store":
		in := NewInst(OpStore, Void())
		i0 := reserve(in)
		_, v0, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v0)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		i1 := reserve(in)
		_, v1, err := p.parseTypedValue(in, i1)
		if err != nil {
			return nil, err
		}
		p.attach(in, i1, v1)
		return in, nil

	case "getelementptr":
		_, err := p.parseType() // pointee type, redundant with pointer operand
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		in := NewInst(OpGEP, nil)
		i0 := reserve(in)
		baseTy, v0, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v0)
		var idxVals []Value
		for p.acceptPunct(",") {
			ii := reserve(in)
			_, iv, err := p.parseTypedValue(in, ii)
			if err != nil {
				return nil, err
			}
			p.attach(in, ii, iv)
			idxVals = append(idxVals, iv)
		}
		rt, err := GEPResultTypeChecked(baseTy, idxVals)
		if err != nil {
			return nil, p.errf("%s", err)
		}
		in.typ = rt
		return in, nil

	case "icmp", "fcmp":
		predName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pred, ok := PredByName[predName]
		if !ok {
			return nil, p.errf("unknown predicate %q", predName)
		}
		o := OpICmp
		if op == "fcmp" {
			o = OpFCmp
		}
		in := NewInst(o, Bool())
		in.Pred = pred
		i0 := reserve(in)
		ty, v0, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, v0)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		i1 := reserve(in)
		v1, err := p.parseValueRef(ty, in, i1)
		if err != nil {
			return nil, err
		}
		p.attach(in, i1, v1)
		return in, nil

	case "phi":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in := NewInst(OpPhi, ty)
		first := true
		for first || p.acceptPunct(",") {
			first = false
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			iv := reserve(in)
			v, err := p.parseValueRef(ty, in, iv)
			if err != nil {
				return nil, err
			}
			p.attach(in, iv, v)
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			t := p.next()
			if t.kind != tLocal {
				return nil, fmt.Errorf("line %d: expected block name in phi, got %s", t.line, t)
			}
			in.AppendOperand(p.getBlock(t.text))
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		return in, nil

	case "select":
		in := NewInst(OpSelect, nil)
		i0 := reserve(in)
		_, c, err := p.parseTypedValue(in, i0)
		if err != nil {
			return nil, err
		}
		p.attach(in, i0, c)
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		i1 := reserve(in)
		ty, v1, err := p.parseTypedValue(in, i1)
		if err != nil {
			return nil, err
		}
		p.attach(in, i1, v1)
		in.typ = ty
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		i2 := reserve(in)
		_, v2, err := p.parseTypedValue(in, i2)
		if err != nil {
			return nil, err
		}
		p.attach(in, i2, v2)
		return in, nil

	case "call", "invoke":
		o := OpCall
		if op == "invoke" {
			o = OpInvoke
		}
		retTy, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in := NewInst(o, retTy)
		// Callee: global or local (indirect).
		t := p.next()
		var callee Value
		switch t.kind {
		case tGlobal:
			if f := p.mod.FuncByName(t.text); f != nil {
				callee = f
			} else {
				return nil, fmt.Errorf("line %d: call of undefined function @%s", t.line, t.text)
			}
		case tLocal:
			v, ok := p.locals[t.text]
			if !ok {
				return nil, fmt.Errorf("line %d: indirect callee %%%s must be defined before use", t.line, t.text)
			}
			callee = v
		default:
			return nil, fmt.Errorf("line %d: expected callee, got %s", t.line, t)
		}
		in.AppendOperand(callee)
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		narg := 0
		for !p.acceptPunct(")") {
			if narg > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			ia := reserve(in)
			_, av, err := p.parseTypedValue(in, ia)
			if err != nil {
				return nil, err
			}
			p.attach(in, ia, av)
			narg++
		}
		if o == OpInvoke {
			if !p.acceptIdent("to") {
				return nil, p.errf("expected 'to' in invoke")
			}
			normal, err := p.parseLabelRef()
			if err != nil {
				return nil, err
			}
			if !p.acceptIdent("unwind") {
				return nil, p.errf("expected 'unwind' in invoke")
			}
			lpad, err := p.parseLabelRef()
			if err != nil {
				return nil, err
			}
			in.AppendOperand(normal)
			in.AppendOperand(lpad)
		}
		return in, nil

	case "landingpad":
		in := NewInst(OpLandingPad, Token())
		for {
			if p.acceptIdent("cleanup") {
				in.Clauses = append(in.Clauses, "cleanup")
				continue
			}
			if p.acceptIdent("catch") {
				t := p.next()
				if t.kind != tGlobal {
					return nil, fmt.Errorf("line %d: expected @typeinfo after catch", t.line)
				}
				in.Clauses = append(in.Clauses, t.text)
				continue
			}
			break
		}
		return in, nil
	}
	return nil, fmt.Errorf("line %d: unknown instruction %q", line, op)
}

var binaryOps = map[string]Opcode{
	"add": OpAdd, "sub": OpSub, "mul": OpMul,
	"sdiv": OpSDiv, "udiv": OpUDiv, "srem": OpSRem, "urem": OpURem,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv, "frem": OpFRem,
	"shl": OpShl, "lshr": OpLShr, "ashr": OpAShr,
	"and": OpAnd, "or": OpOr, "xor": OpXor,
}

var castOps = map[string]Opcode{
	"trunc": OpTrunc, "zext": OpZExt, "sext": OpSExt,
	"fptrunc": OpFPTrunc, "fpext": OpFPExt,
	"fptosi": OpFPToSI, "fptoui": OpFPToUI,
	"sitofp": OpSIToFP, "uitofp": OpUIToFP,
	"ptrtoint": OpPtrToInt, "inttoptr": OpIntToPtr,
	"bitcast": OpBitCast,
}
