package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Constant is implemented by compile-time constant values.
type Constant interface {
	Value
	isConstant()
}

// ConstInt is an integer constant. The value is stored sign-extended in V;
// the significant bits are the low Type().Bits bits.
type ConstInt struct {
	typ *Type
	V   int64
}

// NewConstInt returns an integer constant of type typ holding v truncated to
// the type's width.
func NewConstInt(typ *Type, v int64) *ConstInt {
	if !typ.IsInt() {
		panic("ir: NewConstInt with non-integer type")
	}
	return &ConstInt{typ: typ, V: truncSExt(v, typ.Bits)}
}

// True returns the i1 constant 1.
func True() *ConstInt { return NewConstInt(Bool(), 1) }

// False returns the i1 constant 0.
func False() *ConstInt { return NewConstInt(Bool(), 0) }

// truncSExt truncates v to bits and sign-extends back to 64 bits, producing
// the canonical representation of the constant.
func truncSExt(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return v << shift >> shift
}

// Type returns the constant's type.
func (c *ConstInt) Type() *Type { return c.typ }

// Ident returns the decimal form of the constant (true/false for i1).
func (c *ConstInt) Ident() string {
	if c.typ.Bits == 1 {
		if c.V != 0 {
			return "true"
		}
		return "false"
	}
	return strconv.FormatInt(c.V, 10)
}

func (c *ConstInt) isConstant() {}

// Uint returns the constant zero-extended to uint64.
func (c *ConstInt) Uint() uint64 {
	if c.typ.Bits >= 64 {
		return uint64(c.V)
	}
	mask := uint64(1)<<uint(c.typ.Bits) - 1
	return uint64(c.V) & mask
}

// IsZero reports whether the constant is zero.
func (c *ConstInt) IsZero() bool { return c.V == 0 }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	typ *Type
	V   float64
}

// NewConstFloat returns a floating-point constant of type typ holding v.
// For f32 types, v is rounded to float32 precision.
func NewConstFloat(typ *Type, v float64) *ConstFloat {
	if !typ.IsFloat() {
		panic("ir: NewConstFloat with non-float type")
	}
	if typ.Bits == 32 {
		v = float64(float32(v))
	}
	return &ConstFloat{typ: typ, V: v}
}

// Type returns the constant's type.
func (c *ConstFloat) Type() *Type { return c.typ }

// Ident returns the textual form of the constant, always containing a '.',
// 'e', or special-value spelling so the parser can distinguish it from
// integers.
func (c *ConstFloat) Ident() string {
	if math.IsInf(c.V, 1) {
		return "+inf"
	}
	if math.IsInf(c.V, -1) {
		return "-inf"
	}
	if math.IsNaN(c.V) {
		return "nan"
	}
	s := strconv.FormatFloat(c.V, 'g', -1, 64)
	hasDotOrExp := false
	for _, r := range s {
		if r == '.' || r == 'e' || r == 'E' {
			hasDotOrExp = true
			break
		}
	}
	if !hasDotOrExp {
		s += ".0"
	}
	return s
}

func (c *ConstFloat) isConstant() {}

// Undef is an undefined value of a given type, used for unused thunk
// arguments and void-returning merged functions.
type Undef struct {
	typ *Type
}

// NewUndef returns the undef value of type typ.
func NewUndef(typ *Type) *Undef { return &Undef{typ: typ} }

// Type returns the undef value's type.
func (u *Undef) Type() *Type { return u.typ }

// Ident returns "undef".
func (u *Undef) Ident() string { return "undef" }

func (u *Undef) isConstant() {}

// ConstNull is the null pointer constant of a given pointer type.
type ConstNull struct {
	typ *Type
}

// NewConstNull returns the null constant of pointer type typ.
func NewConstNull(typ *Type) *ConstNull {
	if !typ.IsPointer() {
		panic("ir: NewConstNull with non-pointer type")
	}
	return &ConstNull{typ: typ}
}

// Type returns the null constant's type.
func (c *ConstNull) Type() *Type { return c.typ }

// Ident returns "null".
func (c *ConstNull) Ident() string { return "null" }

func (c *ConstNull) isConstant() {}

// ConstantsEqual reports whether two values are identical constants. It is
// conservative: unknown value kinds compare unequal.
func ConstantsEqual(a, b Value) bool {
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.typ == y.typ && x.V == y.V
	case *ConstFloat:
		y, ok := b.(*ConstFloat)
		if !ok || x.typ != y.typ {
			return false
		}
		return x.V == y.V || (math.IsNaN(x.V) && math.IsNaN(y.V))
	case *Undef:
		y, ok := b.(*Undef)
		return ok && x.typ == y.typ
	case *ConstNull:
		y, ok := b.(*ConstNull)
		return ok && x.typ == y.typ
	default:
		return false
	}
}

// FormatConst renders a constant with its type, e.g. "i32 42".
func FormatConst(c Constant) string {
	return fmt.Sprintf("%s %s", c.Type(), c.Ident())
}
