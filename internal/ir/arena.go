package ir

// InstArena batch-allocates Inst values in slabs, cutting the per-clone
// allocation cost of merge code generation: one speculative merge attempt
// shallow-clones every aligned instruction, and most attempts are discarded
// wholesale. It lives in package ir because instruction construction must
// maintain operand use lists (trackUse is unexported).
//
// Lifecycle contract: Reset recycles the slabs for reuse, so it may only be
// called once every instruction handed out since the previous Reset is dead
// (detached from blocks, operand uses dropped, no remaining users) — the
// state a discarded merged function's body is in after DropBody. Release
// abandons the slabs instead, for bodies that stay live (a committed merge
// keeps its slab-allocated instructions).
type InstArena struct {
	slabs [][]Inst
	si    int // index of the active slab
	used  int // instructions handed out from the active slab
}

// instArenaSlab is the slab granularity; large enough that typical merged
// bodies need a handful of slabs, small enough that a pooled arena holds no
// more than one mostly-empty slab of slack per merge size class.
const instArenaSlab = 256

// NewInst allocates a detached instruction from the arena, equivalent to the
// package-level NewInst.
func (a *InstArena) NewInst(op Opcode, typ *Type, operands ...Value) *Inst {
	if a.si == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Inst, instArenaSlab))
	}
	in := &a.slabs[a.si][a.used]
	a.used++
	if a.used == instArenaSlab {
		a.si++
		a.used = 0
	}
	// Zero any state left by a previous (dead) occupant before reuse.
	*in = Inst{Op: op, typ: typ}
	if len(operands) > 0 {
		in.operands = make([]Value, len(operands))
		for i, v := range operands {
			if v == nil {
				continue
			}
			in.operands[i] = v
			trackUse(v, Use{User: in, Index: i})
		}
	}
	return in
}

// Reset makes every slab available for reuse. Callers must guarantee all
// previously handed-out instructions are dead (see the type comment).
func (a *InstArena) Reset() { a.si, a.used = 0, 0 }

// InstSlab batch-allocates instructions and their operand storage for bodies
// whose instruction count is known up front (the wire decoder reads it from
// the body header): one exact-size instruction allocation plus a few operand
// slabs per body instead of several allocations per instruction. Unlike
// InstArena a slab is never recycled — decoded bodies stay live — so it
// retains no slack beyond the tail of the last operand slab.
type InstSlab struct {
	insts []Inst
	ops   []Value
}

// instSlabOps caps the operand-slab granularity.
const instSlabOps = 1024

// NewInstSlab returns a slab with room for exactly n instructions.
func NewInstSlab(n int) *InstSlab {
	return &InstSlab{insts: make([]Inst, 0, n)}
}

// NewInst hands out a detached instruction with nops nil operand slots;
// filling a slot with SetOperand tracks the use, exactly as after
// ReserveOperands. Overflowing the slab falls back to the heap, so a
// miscounted caller loses batching, not correctness.
func (s *InstSlab) NewInst(op Opcode, typ *Type, nops int) *Inst {
	var in *Inst
	if len(s.insts) < cap(s.insts) {
		s.insts = s.insts[:len(s.insts)+1]
		in = &s.insts[len(s.insts)-1]
		in.Op, in.typ = op, typ
	} else {
		in = &Inst{Op: op, typ: typ}
	}
	if nops > 0 {
		if len(s.ops) < nops {
			// Size operand slabs from the instructions still to come (about
			// two operands each in practice) so small bodies do not retain a
			// mostly-empty maximum-size slab.
			n := 2 * (cap(s.insts) - len(s.insts))
			if n > instSlabOps {
				n = instSlabOps
			}
			if n < nops {
				n = nops
			}
			s.ops = make([]Value, n)
		}
		// The three-index slice caps the operand storage at nops, so a later
		// AppendOperand reallocates instead of bleeding into the next
		// instruction's slots.
		in.operands = s.ops[:nops:nops]
		s.ops = s.ops[nops:]
	}
	return in
}

// Release abandons the slabs so previously handed-out instructions stay
// live independently of the arena; the arena is empty afterwards.
func (a *InstArena) Release() { a.slabs, a.si, a.used = nil, 0, 0 }
