package ir

// InstArena batch-allocates Inst values in slabs, cutting the per-clone
// allocation cost of merge code generation: one speculative merge attempt
// shallow-clones every aligned instruction, and most attempts are discarded
// wholesale. It lives in package ir because instruction construction must
// maintain operand use lists (trackUse is unexported).
//
// Lifecycle contract: Reset recycles the slabs for reuse, so it may only be
// called once every instruction handed out since the previous Reset is dead
// (detached from blocks, operand uses dropped, no remaining users) — the
// state a discarded merged function's body is in after DropBody. Release
// abandons the slabs instead, for bodies that stay live (a committed merge
// keeps its slab-allocated instructions).
type InstArena struct {
	slabs [][]Inst
	si    int // index of the active slab
	used  int // instructions handed out from the active slab
}

// instArenaSlab is the slab granularity; large enough that typical merged
// bodies need a handful of slabs, small enough that a pooled arena holds no
// more than one mostly-empty slab of slack per merge size class.
const instArenaSlab = 256

// NewInst allocates a detached instruction from the arena, equivalent to the
// package-level NewInst.
func (a *InstArena) NewInst(op Opcode, typ *Type, operands ...Value) *Inst {
	if a.si == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Inst, instArenaSlab))
	}
	in := &a.slabs[a.si][a.used]
	a.used++
	if a.used == instArenaSlab {
		a.si++
		a.used = 0
	}
	// Zero any state left by a previous (dead) occupant before reuse.
	*in = Inst{Op: op, typ: typ}
	if len(operands) > 0 {
		in.operands = make([]Value, len(operands))
		for i, v := range operands {
			if v == nil {
				continue
			}
			in.operands[i] = v
			trackUse(v, Use{User: in, Index: i})
		}
	}
	return in
}

// Reset makes every slab available for reuse. Callers must guarantee all
// previously handed-out instructions are dead (see the type comment).
func (a *InstArena) Reset() { a.si, a.used = 0, 0 }

// Release abandons the slabs so previously handed-out instructions stay
// live independently of the arena; the arena is empty afterwards.
func (a *InstArena) Release() { a.slabs, a.si, a.used = nil, 0, 0 }
