package ir_test

import (
	"strings"
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func TestLinkResolvesDeclarations(t *testing.T) {
	a := ir.MustParseModule("a", `
declare i64 @provide(i64)

define i64 @consume(i64 %x) {
entry:
  %r = call i64 @provide(i64 %x)
  ret i64 %r
}
`)
	b := ir.MustParseModule("b", `
define i64 @provide(i64 %x) {
entry:
  %r = mul i64 %x, 7
  ret i64 %r
}
`)
	linked, err := ir.LinkModules("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
	if linked.FuncByName("provide").IsDecl() {
		t.Fatal("declaration should resolve to the definition")
	}
	mc := interp.NewMachine(linked)
	got, err := mc.Run("consume", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("consume(6) = %d, want 42", got)
	}
}

func TestLinkRenamesInternalCollisions(t *testing.T) {
	a := ir.MustParseModule("a", `
define internal i64 @helper(i64 %x) {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

define i64 @fromA(i64 %x) {
entry:
  %r = call i64 @helper(i64 %x)
  ret i64 %r
}
`)
	b := ir.MustParseModule("b", `
define internal i64 @helper(i64 %x) {
entry:
  %r = add i64 %x, 2
  ret i64 %r
}

define i64 @fromB(i64 %x) {
entry:
  %r = call i64 @helper(i64 %x)
  ret i64 %r
}
`)
	linked, err := ir.LinkModules("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
	mc := interp.NewMachine(linked)
	ra, _ := mc.Run("fromA", 10)
	rb, _ := mc.Run("fromB", 10)
	if ra != 11 || rb != 12 {
		t.Errorf("fromA/fromB = %d/%d, want 11/12 (each must keep its own helper)", ra, rb)
	}
}

func TestLinkErrors(t *testing.T) {
	dup1 := ir.MustParseModule("d1", "define void @f() {\nentry:\n  ret void\n}")
	dup2 := ir.MustParseModule("d2", "define void @f() {\nentry:\n  ret void\n}")
	if _, err := ir.LinkModules("p", dup1, dup2); err == nil {
		t.Error("duplicate external definitions must fail")
	}

	sigA := ir.MustParseModule("s1", `
declare void @g(i64)

define void @useA() {
entry:
  call void @g(i64 1)
  ret void
}
`)
	sigB := ir.MustParseModule("s2", "define void @g(f64 %x) {\nentry:\n  ret void\n}")
	if _, err := ir.LinkModules("p", sigA, sigB); err == nil {
		t.Error("conflicting signatures must fail")
	}
}

func TestLinkGlobals(t *testing.T) {
	a := ir.MustParseModule("a", `
@shared = global i64 zeroinitializer
@mine = internal global i64 zeroinitializer

define void @seta(i64 %v) {
entry:
  store i64 %v, i64* @shared
  store i64 %v, i64* @mine
  ret void
}
`)
	b := ir.MustParseModule("b", `
@mine = internal global i64 zeroinitializer

define i64 @getb() {
entry:
  %v = load i64, i64* @mine
  ret i64 %v
}
`)
	linked, err := ir.LinkModules("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
	// a's and b's internal @mine must be distinct storage.
	mc := interp.NewMachine(linked)
	if _, err := mc.Run("seta", 99); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run("getb")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("getb() = %d, want 0 (distinct internal globals)", got)
	}
	text := ir.FormatModule(linked)
	if strings.Count(text, "internal global") != 2 {
		t.Errorf("expected two internal globals:\n%s", text)
	}
}

// BenchmarkLink pins the relink-after-split hot path the pre-sized symbol
// tables optimize: split a corpus-sized module into units, then time
// relinking them (rebuilding fresh units per iteration — LinkModules
// consumes its inputs).
func BenchmarkLink(b *testing.B) {
	p := workload.Profile{
		Name: "linkbench", NumFuncs: 120, AvgSize: 18, MaxSize: 48,
		Identical: 0.1, TypeVar: 0.1, InternalFrac: 0.6, Seed: 11,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		units, err := ir.SplitModule(workload.Build(p), 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := ir.LinkModules("relinked", units...); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLinkDeterministic(t *testing.T) {
	build := func() string {
		a := ir.MustParseModule("a", `
declare i64 @x(i64)
declare i64 @y(i64)

define void @useA() {
entry:
  %1 = call i64 @x(i64 1)
  %2 = call i64 @y(i64 2)
  ret void
}
`)
		b := ir.MustParseModule("b", `
define i64 @y(i64 %v) {
entry:
  ret i64 %v
}

define i64 @x(i64 %v) {
entry:
  ret i64 %v
}
`)
		linked, err := ir.LinkModules("p", a, b)
		if err != nil {
			t.Fatal(err)
		}
		return ir.FormatModule(linked)
	}
	if build() != build() {
		t.Error("linking is not deterministic")
	}
}
