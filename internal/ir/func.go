package ir

import (
	"fmt"
	"sync"
)

// sharedUseMu serializes use-list updates on module-level values (functions
// and globals). Instruction, block and parameter use lists are private to a
// single function body and are only ever mutated by one goroutine at a time,
// so they stay lock-free; functions and globals, however, are referenced
// from many bodies at once, and concurrent speculative merge attempts (the
// exploration framework's parallel candidate wave) all add and remove uses
// of the same shared callees and globals while building and discarding
// trial bodies. One process-wide mutex keeps those updates safe; use-list
// order stays deterministic because removal is order-preserving, so a
// discarded attempt leaves no trace.
var sharedUseMu sync.Mutex

func (f *Func) addUse(u Use) {
	sharedUseMu.Lock()
	f.usable.addUse(u)
	sharedUseMu.Unlock()
}

func (f *Func) removeUse(u Use) {
	sharedUseMu.Lock()
	f.usable.removeUse(u)
	sharedUseMu.Unlock()
}

// Uses returns a snapshot of the active uses of the function value.
func (f *Func) Uses() []Use {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	return append([]Use(nil), f.uses...)
}

// NumUses returns the number of recorded uses.
func (f *Func) NumUses() int {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	return len(f.uses)
}

func (g *Global) addUse(u Use) {
	sharedUseMu.Lock()
	g.usable.addUse(u)
	sharedUseMu.Unlock()
}

func (g *Global) removeUse(u Use) {
	sharedUseMu.Lock()
	g.usable.removeUse(u)
	sharedUseMu.Unlock()
}

// Uses returns a snapshot of the active uses of the global value.
func (g *Global) Uses() []Use {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	return append([]Use(nil), g.uses...)
}

// NumUses returns the number of recorded uses.
func (g *Global) NumUses() int {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	return len(g.uses)
}

// Linkage describes symbol visibility of a function or global.
type Linkage int

// Linkage kinds. External symbols may be referenced from outside the module
// (so their definitions cannot be deleted after merging, only replaced with
// thunks); internal symbols are module-private.
const (
	ExternalLinkage Linkage = iota
	InternalLinkage
)

// String returns the textual linkage keyword ("" for external).
func (l Linkage) String() string {
	if l == InternalLinkage {
		return "internal"
	}
	return ""
}

// Func is a function: a signature plus, for definitions, a list of basic
// blocks. Functions are Values (of pointer-to-function type) so they can be
// call operands and have their addresses taken.
type Func struct {
	usable
	name    string
	sig     *Type // FuncKind
	parent  *Module
	Params  []*Param
	Blocks  []*Block
	Linkage Linkage
	// Hotness is an optional profile weight (execution count) attached by
	// the profiling substrate; zero when no profile is present.
	Hotness uint64
}

// NewFunc creates a detached function with the given name and signature
// (a FuncKind type). Parameter values are created eagerly.
func NewFunc(name string, sig *Type) *Func {
	if sig.Kind != FuncKind {
		panic("ir: NewFunc requires a function type")
	}
	f := &Func{name: name, sig: sig}
	for i, pt := range sig.Fields {
		f.Params = append(f.Params, &Param{typ: pt, parent: f, Index: i})
	}
	return f
}

// Type returns the pointer-to-function type of the function value.
func (f *Func) Type() *Type { return PointerTo(f.sig) }

// Sig returns the function signature type.
func (f *Func) Sig() *Type { return f.sig }

// ReturnType returns the declared return type.
func (f *Func) ReturnType() *Type { return f.sig.Ret }

// Name returns the function name.
func (f *Func) Name() string { return f.name }

// SetName renames the function, keeping the module symbol table consistent.
func (f *Func) SetName(s string) {
	if f.parent != nil {
		delete(f.parent.funcByName, f.name)
		f.parent.funcByName[s] = f
	}
	f.name = s
}

// Ident returns the reference form "@name".
func (f *Func) Ident() string { return "@" + f.name }

// NumberLocals assigns every instruction its local-definition ordinal —
// parameters occupy [0, len(Params)) (their slice position, mirrored by
// Param.Index), instructions follow in layout order — and every block its
// layout index, returning the total definition count. Ordinals are scratch
// state read back via (*Inst).LocalOrd and (*Block).LayoutOrd; they stay
// valid only until the function's layout next changes. Numbering distinct
// functions concurrently is safe (instructions and blocks belong to exactly
// one function); numbering the same function from two goroutines is a data
// race.
func (f *Func) NumberLocals() int {
	n := int32(len(f.Params))
	for bi, b := range f.Blocks {
		b.ord = int32(bi)
		for _, in := range b.Insts {
			in.ord = n
			n++
		}
	}
	return int(n)
}

// Parent returns the module containing the function.
func (f *Func) Parent() *Module { return f.parent }

// IsDecl reports whether the function is a declaration (no body).
func (f *Func) IsDecl() bool { return len(f.Blocks) == 0 }

// Entry returns the entry block of a definition.
func (f *Func) Entry() *Block {
	if f.IsDecl() {
		panic(fmt.Sprintf("ir: Entry on declaration %s", f.name))
	}
	return f.Blocks[0]
}

// AppendBlock attaches b at the end of the function.
func (f *Func) AppendBlock(b *Block) {
	if b.parent != nil {
		panic("ir: block already attached")
	}
	b.parent = f
	f.Blocks = append(f.Blocks, b)
}

// NewBlockIn creates a block with the given name and appends it to f.
func (f *Func) NewBlockIn(name string) *Block {
	b := NewBlock(name)
	f.AppendBlock(b)
	return b
}

// NumInsts returns the number of instructions in the function body.
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Insts calls fn for every instruction in layout order.
func (f *Func) Insts(fn func(*Inst)) {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			fn(in)
		}
	}
}

// HasAddressTaken reports whether the function's address escapes: it is used
// anywhere other than as the direct callee of a call or invoke. Such
// functions cannot be fully deleted after merging (paper §III-A).
func (f *Func) HasAddressTaken() bool {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	for _, u := range f.uses {
		if (u.User.Op == OpCall || u.User.Op == OpInvoke) && u.Index == 0 {
			continue
		}
		return true
	}
	return false
}

// Callers returns the call/invoke instructions that directly call f.
func (f *Func) Callers() []*Inst {
	sharedUseMu.Lock()
	defer sharedUseMu.Unlock()
	var calls []*Inst
	for _, u := range f.uses {
		if (u.User.Op == OpCall || u.User.Op == OpInvoke) && u.Index == 0 {
			calls = append(calls, u.User)
		}
	}
	return calls
}

// DropBody removes all blocks from the function, turning it into a shell
// ready for a replacement body (used when thunkifying merged functions).
func (f *Func) DropBody() {
	// Two passes: first drop all operand uses so inter-block references
	// (branches, phis) disappear, then detach blocks.
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			in.dropAllOperands()
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			in.parent = nil
		}
		b.Insts = nil
		b.parent = nil
	}
	f.Blocks = nil
}

// Global is a module-level global variable. Only the properties needed by
// the merging substrate are modelled: a name, a value type, an optional
// byte initializer and linkage.
type Global struct {
	usable
	name    string
	typ     *Type // value type; the global's value is a pointer to it
	parent  *Module
	Linkage Linkage
	// Init holds the initial bytes (little-endian, natural layout) or nil
	// for zero-initialized globals.
	Init []byte
}

// NewGlobal creates a detached global with the given name and value type.
func NewGlobal(name string, typ *Type) *Global {
	return &Global{name: name, typ: typ}
}

// Type returns the pointer type of the global value.
func (g *Global) Type() *Type { return PointerTo(g.typ) }

// ValueType returns the type of the pointed-to storage.
func (g *Global) ValueType() *Type { return g.typ }

// Name returns the global's name.
func (g *Global) Name() string { return g.name }

// SetName renames the global.
func (g *Global) SetName(s string) { g.name = s }

// Ident returns the reference form "@name".
func (g *Global) Ident() string { return "@" + g.name }

// Parent returns the module containing the global.
func (g *Global) Parent() *Module { return g.parent }
