package ir

import "fmt"

// Opcode identifies the operation performed by an instruction.
type Opcode int

// Instruction opcodes. The set mirrors the LLVM IR instruction set at the
// granularity relevant to function merging.
const (
	OpInvalid Opcode = iota

	// Terminators.
	OpRet         // ret void | ret <ty> <val>
	OpBr          // br label %b | br i1 %c, label %t, label %f
	OpSwitch      // switch <ty> <val>, label %default [ <ty> <c>, label %b ... ]
	OpUnreachable // unreachable
	OpInvoke      // invoke <callee>(args) to label %normal unwind label %lpad
	OpResume      // resume token %lp

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFRem

	// Bitwise.
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Memory.
	OpAlloca // alloca <ty>
	OpLoad   // load <ty>, <ty>* %p
	OpStore  // store <ty> %v, <ty>* %p
	OpGEP    // getelementptr <ty>, <ty>* %p, indices...

	// Conversions.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpFPToUI
	OpSIToFP
	OpUIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitCast

	// Comparisons.
	OpICmp
	OpFCmp

	// Other.
	OpPhi
	OpSelect
	OpCall
	OpLandingPad

	// NumOpcodes is the number of opcodes; useful for frequency vectors.
	NumOpcodes
)

var opcodeNames = [...]string{
	OpInvalid:     "invalid",
	OpRet:         "ret",
	OpBr:          "br",
	OpSwitch:      "switch",
	OpUnreachable: "unreachable",
	OpInvoke:      "invoke",
	OpResume:      "resume",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpSDiv:        "sdiv",
	OpUDiv:        "udiv",
	OpSRem:        "srem",
	OpURem:        "urem",
	OpFAdd:        "fadd",
	OpFSub:        "fsub",
	OpFMul:        "fmul",
	OpFDiv:        "fdiv",
	OpFRem:        "frem",
	OpShl:         "shl",
	OpLShr:        "lshr",
	OpAShr:        "ashr",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpAlloca:      "alloca",
	OpLoad:        "load",
	OpStore:       "store",
	OpGEP:         "getelementptr",
	OpTrunc:       "trunc",
	OpZExt:        "zext",
	OpSExt:        "sext",
	OpFPTrunc:     "fptrunc",
	OpFPExt:       "fpext",
	OpFPToSI:      "fptosi",
	OpFPToUI:      "fptoui",
	OpSIToFP:      "sitofp",
	OpUIToFP:      "uitofp",
	OpPtrToInt:    "ptrtoint",
	OpIntToPtr:    "inttoptr",
	OpBitCast:     "bitcast",
	OpICmp:        "icmp",
	OpFCmp:        "fcmp",
	OpPhi:         "phi",
	OpSelect:      "select",
	OpCall:        "call",
	OpLandingPad:  "landingpad",
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if op <= OpInvalid || int(op) >= len(opcodeNames) {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opcodeNames[op]
}

// IsTerminator reports whether op terminates a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpRet, OpBr, OpSwitch, OpUnreachable, OpInvoke, OpResume:
		return true
	}
	return false
}

// IsBinary reports whether op is a two-operand arithmetic/bitwise operation.
func (op Opcode) IsBinary() bool {
	return op >= OpAdd && op <= OpXor
}

// IsCast reports whether op is a conversion operation.
func (op Opcode) IsCast() bool {
	return op >= OpTrunc && op <= OpBitCast
}

// IsCommutative reports whether the operands of op may be swapped without
// changing semantics. The merger exploits this to maximise operand matches
// (paper §III-E).
func (op Opcode) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpFAdd, OpFMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// HasSideEffects reports whether an instruction with this opcode may write
// memory, transfer control, or otherwise not be freely removable when unused.
func (op Opcode) HasSideEffects() bool {
	switch op {
	case OpStore, OpCall, OpInvoke, OpResume, OpRet, OpBr, OpSwitch,
		OpUnreachable, OpLandingPad:
		return true
	}
	return false
}

// CmpPred is the predicate of an icmp or fcmp instruction.
type CmpPred int

// Comparison predicates. Integer predicates apply to icmp, the O-prefixed
// (ordered) float predicates to fcmp.
const (
	PredInvalid CmpPred = iota
	PredEQ
	PredNE
	PredSGT
	PredSGE
	PredSLT
	PredSLE
	PredUGT
	PredUGE
	PredULT
	PredULE
	PredOEQ
	PredONE
	PredOGT
	PredOGE
	PredOLT
	PredOLE
)

var predNames = [...]string{
	PredInvalid: "invalid",
	PredEQ:      "eq",
	PredNE:      "ne",
	PredSGT:     "sgt",
	PredSGE:     "sge",
	PredSLT:     "slt",
	PredSLE:     "sle",
	PredUGT:     "ugt",
	PredUGE:     "uge",
	PredULT:     "ult",
	PredULE:     "ule",
	PredOEQ:     "oeq",
	PredONE:     "one",
	PredOGT:     "ogt",
	PredOGE:     "oge",
	PredOLT:     "olt",
	PredOLE:     "ole",
}

// String returns the textual form of the predicate.
func (p CmpPred) String() string {
	if p <= PredInvalid || int(p) >= len(predNames) {
		return "invalid"
	}
	return predNames[p]
}

// PredByName maps predicate spellings to values; used by the parser.
var PredByName = map[string]CmpPred{
	"eq": PredEQ, "ne": PredNE,
	"sgt": PredSGT, "sge": PredSGE, "slt": PredSLT, "sle": PredSLE,
	"ugt": PredUGT, "uge": PredUGE, "ult": PredULT, "ule": PredULE,
	"oeq": PredOEQ, "one": PredONE,
	"ogt": PredOGT, "oge": PredOGE, "olt": PredOLT, "ole": PredOLE,
}

// Inst is a single IR instruction. Operand layout by opcode:
//
//	ret:        [] or [value]
//	br:         [dest] or [cond, then, else]
//	switch:     [cond, default, c0, b0, c1, b1, ...]
//	invoke:     [callee, args..., normal, unwind]
//	resume:     [token]
//	binary ops: [lhs, rhs]
//	alloca:     []                      (Alloc holds the allocated type)
//	load:       [ptr]
//	store:      [value, ptr]
//	gep:        [ptr, indices...]
//	casts:      [value]
//	icmp/fcmp:  [lhs, rhs]              (Pred holds the predicate)
//	phi:        [v0, b0, v1, b1, ...]
//	select:     [cond, ifTrue, ifFalse]
//	call:       [callee, args...]
//	landingpad: []                      (Clauses holds the handler list)
type Inst struct {
	usable
	Op       Opcode
	typ      *Type
	name     string
	parent   *Block
	operands []Value

	// Pred is the comparison predicate for icmp/fcmp.
	Pred CmpPred
	// Alloc is the allocated type for alloca instructions.
	Alloc *Type
	// Clauses lists exception clauses for landingpad instructions. Each
	// entry names an exception handler type-info symbol; the distinguished
	// entry "cleanup" marks a cleanup landing pad.
	Clauses []string

	// ord is the local-definition ordinal scratch slot assigned by
	// (*Func).NumberLocals and read back via LocalOrd.
	ord int32
}

// NewInst creates a detached instruction with the given opcode, result type
// and operands. Use Block.Append or the Builder to attach it.
func NewInst(op Opcode, typ *Type, operands ...Value) *Inst {
	in := &Inst{Op: op, typ: typ}
	in.operands = make([]Value, len(operands))
	for i, v := range operands {
		if v == nil {
			continue
		}
		in.operands[i] = v
		trackUse(v, Use{User: in, Index: i})
	}
	return in
}

// Type returns the result type of the instruction (void for instructions
// that produce no value).
func (in *Inst) Type() *Type { return in.typ }

// Name returns the result name (may be empty until printing).
func (in *Inst) Name() string { return in.name }

// SetName sets the result name.
func (in *Inst) SetName(s string) { in.name = s }

// Ident returns the reference form "%name".
func (in *Inst) Ident() string {
	if in.name == "" {
		return fmt.Sprintf("%%<%p>", in)
	}
	return "%" + in.name
}

// Parent returns the block containing the instruction, or nil if detached.
func (in *Inst) Parent() *Block { return in.parent }

// LocalOrd returns the local-definition ordinal assigned by the enclosing
// function's most recent NumberLocals call. It is scratch state: meaningless
// before NumberLocals and stale after the function's layout changes.
func (in *Inst) LocalOrd() int32 { return in.ord }

// NumOperands returns the operand count.
func (in *Inst) NumOperands() int { return len(in.operands) }

// Operand returns the i-th operand.
func (in *Inst) Operand(i int) Value { return in.operands[i] }

// Operands returns the operand slice, owned by the instruction.
func (in *Inst) Operands() []Value { return in.operands }

// SetOperand replaces operand i with v, maintaining use lists.
func (in *Inst) SetOperand(i int, v Value) {
	if old := in.operands[i]; old != nil {
		untrackUse(old, Use{User: in, Index: i})
	}
	in.operands[i] = v
	if v != nil {
		trackUse(v, Use{User: in, Index: i})
	}
}

// AppendOperand adds v as the last operand, maintaining use lists.
func (in *Inst) AppendOperand(v Value) {
	in.operands = append(in.operands, v)
	if v != nil {
		trackUse(v, Use{User: in, Index: len(in.operands) - 1})
	}
}

// ReserveOperands appends n empty operand slots and returns the index of the
// first, for table-driven constructors (the wire decoder, the parser) that
// resolve forward references after the instruction exists. Fill each slot
// with SetOperand; a nil slot tracks no use until it is set.
func (in *Inst) ReserveOperands(n int) int {
	start := len(in.operands)
	if n <= 0 {
		return start
	}
	in.operands = append(in.operands, make([]Value, n)...)
	return start
}

// dropAllOperands removes the instruction from the use lists of its operands.
func (in *Inst) dropAllOperands() {
	for i, v := range in.operands {
		if v != nil {
			untrackUse(v, Use{User: in, Index: i})
		}
		in.operands[i] = nil
	}
	in.operands = in.operands[:0]
}

// IsTerminator reports whether the instruction terminates a block.
func (in *Inst) IsTerminator() bool { return in.Op.IsTerminator() }

// Successors returns the successor blocks of a terminator instruction.
func (in *Inst) Successors() []*Block {
	switch in.Op {
	case OpBr:
		if len(in.operands) == 1 {
			return []*Block{in.operands[0].(*Block)}
		}
		return []*Block{in.operands[1].(*Block), in.operands[2].(*Block)}
	case OpSwitch:
		succs := []*Block{in.operands[1].(*Block)}
		for i := 3; i < len(in.operands); i += 2 {
			succs = append(succs, in.operands[i].(*Block))
		}
		return succs
	case OpInvoke:
		n := len(in.operands)
		return []*Block{in.operands[n-2].(*Block), in.operands[n-1].(*Block)}
	default:
		return nil
	}
}

// Callee returns the called value of a call or invoke instruction.
func (in *Inst) Callee() Value {
	if in.Op != OpCall && in.Op != OpInvoke {
		panic("ir: Callee on non-call")
	}
	return in.operands[0]
}

// CallArgs returns the argument operands of a call or invoke instruction.
func (in *Inst) CallArgs() []Value {
	switch in.Op {
	case OpCall:
		return in.operands[1:]
	case OpInvoke:
		return in.operands[1 : len(in.operands)-2]
	default:
		panic("ir: CallArgs on non-call")
	}
}

// InvokeNormal returns the normal-continuation block of an invoke.
func (in *Inst) InvokeNormal() *Block {
	return in.operands[len(in.operands)-2].(*Block)
}

// InvokeUnwind returns the unwind (landing) block of an invoke.
func (in *Inst) InvokeUnwind() *Block {
	return in.operands[len(in.operands)-1].(*Block)
}

// PhiIncoming returns the incoming (value, block) pair at index i of a phi.
func (in *Inst) PhiIncoming(i int) (Value, *Block) {
	return in.operands[2*i], in.operands[2*i+1].(*Block)
}

// NumPhiIncoming returns the number of incoming pairs of a phi.
func (in *Inst) NumPhiIncoming() int { return len(in.operands) / 2 }

// ForceSetParent overrides the instruction's parent pointer without touching
// operand uses or block instruction slices. It exists for passes that splice
// instructions between blocks and maintain the slice bookkeeping themselves.
func (in *Inst) ForceSetParent(b *Block) { in.parent = b }

// Detach releases the operand uses of a never-attached (synthetic)
// instruction so it can be garbage collected without leaving stale entries
// in use lists.
func (in *Inst) Detach() {
	if in.parent != nil {
		panic("ir: Detach on attached instruction; use RemoveFromParent")
	}
	in.dropAllOperands()
}

// RemoveFromParent detaches the instruction from its block, dropping its
// operand uses. The instruction must itself be unused.
func (in *Inst) RemoveFromParent() {
	if in.parent == nil {
		return
	}
	b := in.parent
	for i, x := range b.Insts {
		if x == in {
			b.Insts = append(b.Insts[:i], b.Insts[i+1:]...)
			break
		}
	}
	in.parent = nil
	in.dropAllOperands()
}

// clausesEqual reports whether two landingpad clause lists are identical.
func clausesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
