package ir

import "fmt"

// Value is anything that can appear as an instruction operand: parameters,
// instructions, basic blocks (as labels), functions, globals and constants.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ident returns the reference form of the value as it appears in
	// operand position, e.g. "%x", "@f", "42", "label %bb1".
	Ident() string
}

// Named is implemented by values that carry an assignable name.
type Named interface {
	Value
	Name() string
	SetName(string)
}

// Use records a single use of a value: the using instruction and the operand
// index within it.
type Use struct {
	User  *Inst
	Index int
}

// usable is embedded by definitions that track their uses (parameters,
// instructions, blocks, functions, globals). Constants are interned/shared
// and do not track uses.
type usable struct {
	uses []Use
}

func (u *usable) addUse(use Use) { u.uses = append(u.uses, use) }

func (u *usable) removeUse(use Use) {
	for i, x := range u.uses {
		if x == use {
			// Removal preserves the order of the remaining uses: passes
			// (caller rewriting, thunk elision) iterate use lists, and the
			// exploration framework requires identical iteration order no
			// matter how many speculative merges were attempted and
			// discarded in between.
			u.uses = append(u.uses[:i], u.uses[i+1:]...)
			return
		}
	}
}

// Uses returns the active uses of the value. The returned slice is owned by
// the value and must not be mutated.
func (u *usable) Uses() []Use { return u.uses }

// NumUses returns the number of recorded uses.
func (u *usable) NumUses() int { return len(u.uses) }

func (u *usable) presizeUses(s []Use) {
	if u.uses == nil {
		u.uses = s
	}
}

// PresizeUses carves exact-capacity use-list storage for v out of buf and
// returns the remainder. Callers that can count (or estimate) how many uses
// a fresh definition will receive — the wire decoder pre-scans a body's
// operand references — batch every use list of a body into one allocation
// instead of growing each list by doubling. The count may be low: the
// three-index slice caps capacity, so an overflowing append reallocates
// rather than clobbering the next definition's storage. No-op for values
// that do not track uses or already have uses recorded.
func PresizeUses(v Value, n int, buf []Use) []Use {
	if n <= 0 || n > len(buf) {
		return buf
	}
	if t, ok := v.(interface{ presizeUses([]Use) }); ok {
		t.presizeUses(buf[0:0:n])
		return buf[n:]
	}
	return buf
}

// userTracked is the internal interface for definitions with use lists.
type userTracked interface {
	Value
	addUse(Use)
	removeUse(Use)
	Uses() []Use
}

// trackUse registers u as a use of v if v tracks uses.
func trackUse(v Value, u Use) {
	if t, ok := v.(userTracked); ok {
		t.addUse(u)
	}
}

// untrackUse removes u from v's use list if v tracks uses.
func untrackUse(v Value, u Use) {
	if t, ok := v.(userTracked); ok {
		t.removeUse(u)
	}
}

// ReplaceAllUsesWith rewrites every use of old to refer to new instead.
// old and new must have the same type unless new is a constant of a
// bitcast-compatible type.
func ReplaceAllUsesWith(old userTracked, newV Value) {
	uses := append([]Use(nil), old.Uses()...)
	for _, u := range uses {
		u.User.SetOperand(u.Index, newV)
	}
}

// Param is a formal parameter of a function.
type Param struct {
	usable
	name   string
	typ    *Type
	parent *Func
	// Index is the position of the parameter in the function signature.
	Index int
}

// Type returns the parameter type.
func (p *Param) Type() *Type { return p.typ }

// Name returns the parameter name (may be empty before printing).
func (p *Param) Name() string { return p.name }

// SetName sets the parameter name.
func (p *Param) SetName(s string) { p.name = s }

// Parent returns the function owning the parameter.
func (p *Param) Parent() *Func { return p.parent }

// Ident returns the reference form "%name".
func (p *Param) Ident() string {
	if p.name == "" {
		return fmt.Sprintf("%%arg%d", p.Index)
	}
	return "%" + p.name
}
