package ir

import (
	"errors"
	"fmt"
)

// VerifyModule checks structural and type invariants of every definition in
// the module and returns all violations found.
func VerifyModule(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			errs = append(errs, fmt.Errorf("function @%s: %w", f.Name(), err))
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc checks structural invariants of a function definition:
//
//   - every block ends with exactly one terminator, and terminators appear
//     only at the end;
//   - the entry block has no predecessors;
//   - phi instructions appear only at block starts and their incoming blocks
//     match the block's predecessors;
//   - landingpad instructions appear only as the first instruction of blocks
//     that are invoke unwind destinations;
//   - operand types obey opcode constraints;
//   - every use of an instruction result is dominated by its definition.
func VerifyFunc(f *Func) error {
	if f.IsDecl() {
		return nil
	}
	var errs []error
	errf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for _, b := range f.Blocks {
		if b.Parent() != f {
			errf("block %%%s has wrong parent", b.Name())
		}
		if len(b.Insts) == 0 {
			errf("block %%%s is empty", b.Name())
			continue
		}
		for i, in := range b.Insts {
			if in.Parent() != b {
				errf("instruction %s has wrong parent", FormatInst(in))
			}
			if in.IsTerminator() != (i == len(b.Insts)-1) {
				if in.IsTerminator() {
					errf("block %%%s: terminator %s not at end", b.Name(), in.Op)
				} else {
					errf("block %%%s: ends with non-terminator %s", b.Name(), in.Op)
				}
			}
			if in.Op == OpPhi && i > b.FirstNonPhi() {
				errf("block %%%s: phi after non-phi", b.Name())
			}
			if in.Op == OpLandingPad && i != 0 {
				errf("block %%%s: landingpad not first instruction", b.Name())
			}
			if err := checkInstTypes(in); err != nil {
				errf("block %%%s: %s: %v", b.Name(), FormatInst(in), err)
			}
		}
	}

	if len(f.Entry().Preds()) > 0 {
		errf("entry block has predecessors")
	}

	// Phi incoming entries must exactly cover predecessors, counting
	// multiplicity: a block reaching b through two edges (e.g. both arms of
	// a conditional branch) needs two incoming entries, and presence alone
	// would miss a phi with one entry too few or too many for such an edge.
	for _, b := range f.Blocks {
		preds := b.Preds()
		predSet := map[*Block]int{}
		for _, p := range preds {
			predSet[p]++
		}
		for _, phi := range b.Phis() {
			seen := map[*Block]int{}
			for i := 0; i < phi.NumPhiIncoming(); i++ {
				_, pb := phi.PhiIncoming(i)
				seen[pb]++
			}
			for p, want := range predSet {
				switch have := seen[p]; {
				case have == 0:
					errf("block %%%s: phi missing incoming for predecessor %%%s", b.Name(), p.Name())
				case have != want:
					errf("block %%%s: phi has %d incoming entries for predecessor %%%s, want %d (one per edge)",
						b.Name(), have, p.Name(), want)
				}
			}
			for p := range seen {
				if predSet[p] == 0 {
					errf("block %%%s: phi has incoming for non-predecessor %%%s", b.Name(), p.Name())
				}
			}
		}
	}

	// Invoke unwind destinations must be landing blocks; landing blocks must
	// only be reached by invoke unwind edges.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t != nil && t.Op == OpInvoke {
			if !t.InvokeUnwind().IsLandingBlock() {
				errf("invoke unwind destination %%%s is not a landing block", t.InvokeUnwind().Name())
			}
		}
		if b.IsLandingBlock() {
			for _, p := range b.Preds() {
				pt := p.Terminator()
				if pt.Op != OpInvoke || pt.InvokeUnwind() != b {
					errf("landing block %%%s reached by non-unwind edge from %%%s", b.Name(), p.Name())
				}
			}
		}
	}

	// Dominance of uses.
	if len(errs) == 0 {
		dt := ComputeDomTree(f)
		f.Insts(func(in *Inst) {
			if !dt.Reachable(in.Parent()) {
				return
			}
			for i, op := range in.Operands() {
				def, ok := op.(*Inst)
				if !ok {
					continue
				}
				if def.Parent() == nil || def.Parent().Parent() != f {
					errf("%s: operand %d defined outside function", FormatInst(in), i)
					continue
				}
				if !dt.Reachable(def.Parent()) {
					continue
				}
				if !dt.InstDominates(def, in, i) {
					errf("%s: use of %s not dominated by its definition", FormatInst(in), def.Ident())
				}
			}
		})
	}

	return errors.Join(errs...)
}

// checkInstTypes validates operand and result types against the opcode.
func checkInstTypes(in *Inst) error {
	switch {
	case in.Op.IsBinary():
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() || a.Type() != in.Type() {
			return fmt.Errorf("binary operand/result type mismatch")
		}
		isFP := in.Op >= OpFAdd && in.Op <= OpFRem
		if isFP && !in.Type().IsFloat() {
			return fmt.Errorf("float opcode on %s", in.Type())
		}
		if !isFP && !in.Type().IsInt() {
			return fmt.Errorf("integer opcode on %s", in.Type())
		}
	case in.Op.IsCast():
		return checkCastTypes(in)
	}

	switch in.Op {
	case OpRet:
		fn := in.Parent().Parent()
		want := fn.ReturnType()
		if want.IsVoid() {
			if in.NumOperands() != 0 {
				return fmt.Errorf("ret with value in void function")
			}
		} else if in.NumOperands() != 1 || in.Operand(0).Type() != want {
			return fmt.Errorf("ret type does not match function return type %s", want)
		}
	case OpBr:
		if in.NumOperands() == 3 && !in.Operand(0).Type().IsBool() {
			return fmt.Errorf("conditional branch on non-i1")
		}
	case OpSwitch:
		if !in.Operand(0).Type().IsInt() {
			return fmt.Errorf("switch on non-integer")
		}
	case OpLoad:
		pt := in.Operand(0).Type()
		if !pt.IsPointer() || pt.Elem != in.Type() {
			return fmt.Errorf("load type mismatch")
		}
		if in.Type().IsAggregate() {
			return fmt.Errorf("aggregate loads are not supported; use getelementptr to access fields")
		}
	case OpStore:
		pt := in.Operand(1).Type()
		if !pt.IsPointer() || pt.Elem != in.Operand(0).Type() {
			return fmt.Errorf("store type mismatch")
		}
		if in.Operand(0).Type().IsAggregate() {
			return fmt.Errorf("aggregate stores are not supported; use getelementptr to access fields")
		}
	case OpICmp:
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() {
			return fmt.Errorf("icmp operand mismatch")
		}
		if !a.Type().IsInt() && !a.Type().IsPointer() {
			return fmt.Errorf("icmp on %s", a.Type())
		}
	case OpFCmp:
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() || !a.Type().IsFloat() {
			return fmt.Errorf("fcmp operand mismatch")
		}
	case OpSelect:
		if !in.Operand(0).Type().IsBool() {
			return fmt.Errorf("select condition not i1")
		}
		if in.Operand(1).Type() != in.Type() || in.Operand(2).Type() != in.Type() {
			return fmt.Errorf("select arm type mismatch")
		}
	case OpCall, OpInvoke:
		ct := in.Callee().Type()
		if !ct.IsPointer() || ct.Elem.Kind != FuncKind {
			return fmt.Errorf("call of non-function")
		}
		sig := ct.Elem
		args := in.CallArgs()
		if sig.Variadic {
			if len(args) < len(sig.Fields) {
				return fmt.Errorf("too few args")
			}
		} else if len(args) != len(sig.Fields) {
			return fmt.Errorf("wrong arg count: have %d, want %d", len(args), len(sig.Fields))
		}
		for i := range sig.Fields {
			if args[i].Type() != sig.Fields[i] {
				return fmt.Errorf("arg %d type %s, want %s", i, args[i].Type(), sig.Fields[i])
			}
		}
		if in.Type() != sig.Ret {
			return fmt.Errorf("call result type %s, want %s", in.Type(), sig.Ret)
		}
	case OpResume:
		if in.Operand(0).Type() != Token() {
			return fmt.Errorf("resume of non-token")
		}
	case OpPhi:
		if in.NumOperands()%2 != 0 || in.NumOperands() == 0 {
			return fmt.Errorf("malformed phi")
		}
		for i := 0; i < in.NumPhiIncoming(); i++ {
			v, _ := in.PhiIncoming(i)
			if v.Type() != in.Type() {
				return fmt.Errorf("phi incoming type mismatch")
			}
		}
	case OpGEP:
		if !in.Operand(0).Type().IsPointer() {
			return fmt.Errorf("gep base not a pointer")
		}
		for _, idx := range in.Operands()[1:] {
			if !idx.Type().IsInt() {
				return fmt.Errorf("gep index not an integer")
			}
		}
	}
	return nil
}

func checkCastTypes(in *Inst) error {
	from, to := in.Operand(0).Type(), in.Type()
	bad := func() error {
		return fmt.Errorf("invalid %s from %s to %s", in.Op, from, to)
	}
	switch in.Op {
	case OpTrunc:
		if !from.IsInt() || !to.IsInt() || from.Bits <= to.Bits {
			return bad()
		}
	case OpZExt, OpSExt:
		if !from.IsInt() || !to.IsInt() || from.Bits >= to.Bits {
			return bad()
		}
	case OpFPTrunc:
		if !from.IsFloat() || !to.IsFloat() || from.Bits <= to.Bits {
			return bad()
		}
	case OpFPExt:
		if !from.IsFloat() || !to.IsFloat() || from.Bits >= to.Bits {
			return bad()
		}
	case OpFPToSI, OpFPToUI:
		if !from.IsFloat() || !to.IsInt() {
			return bad()
		}
	case OpSIToFP, OpUIToFP:
		if !from.IsInt() || !to.IsFloat() {
			return bad()
		}
	case OpPtrToInt:
		if !from.IsPointer() || !to.IsInt() {
			return bad()
		}
	case OpIntToPtr:
		if !from.IsInt() || !to.IsPointer() {
			return bad()
		}
	case OpBitCast:
		if !LosslesslyBitcastable(from, to) {
			return bad()
		}
	}
	return nil
}
