package ir

import (
	"errors"
	"fmt"
	"strings"
)

// The IR verifier checks the invariants every pipeline boundary relies on —
// parse, wire decode, link/split, and merge all hand off modules that the
// next stage trusts blindly. Verification is leveled so hot boundaries can
// afford it:
//
//	off:  no checking.
//	fast: one linear pass per function — parent links, terminator placement,
//	      operand arity and block-slot shape, dangling references — plus the
//	      module symbol table. Safe to leave on in production ingest.
//	full: everything in fast plus per-opcode type checking, phi/predecessor
//	      correspondence, SSA dominance (O(1) DFS-interval queries), and
//	      bidirectional use-list consistency.
//
// Findings are reported as VerifyDiag values with stable FV codes mirroring
// the FM-code style of the merge auditor (internal/analysis): codes are part
// of the tool surface, add new ones at the end and never renumber.

// VerifyLevel selects how much verification a boundary performs.
type VerifyLevel int

// Verification levels, ordered by strictness.
const (
	VerifyOff VerifyLevel = iota
	VerifyFast
	VerifyFull
)

// ParseVerifyLevel parses a -verify flag value. The empty string means off.
func ParseVerifyLevel(s string) (VerifyLevel, error) {
	switch s {
	case "", "off":
		return VerifyOff, nil
	case "fast":
		return VerifyFast, nil
	case "full":
		return VerifyFull, nil
	}
	return VerifyOff, fmt.Errorf("unknown verify level %q (want off, fast or full)", s)
}

// String returns the flag spelling of the level.
func (l VerifyLevel) String() string {
	switch l {
	case VerifyFast:
		return "fast"
	case VerifyFull:
		return "full"
	}
	return "off"
}

// VerifyCode is a stable IR-verifier diagnostic code.
type VerifyCode string

// Verifier diagnostic codes.
const (
	// FVMalformedBlock (FV001): a block is empty, ends in a non-terminator,
	// or has a terminator before its last instruction.
	FVMalformedBlock VerifyCode = "FV001"
	// FVBrokenLink (FV002): a parent pointer disagrees with containment
	// (block→func, inst→block), a branch targets a block of another
	// function, or the entry block has predecessors.
	FVBrokenLink VerifyCode = "FV002"
	// FVBadShape (FV003): operand arity or kind violates the opcode's
	// layout — a nil operand, a phi after a non-phi or with a malformed
	// incoming list, a non-block value in a block slot or vice versa.
	FVBadShape VerifyCode = "FV003"
	// FVPhiPredMismatch (FV004): a phi's incoming entries do not match the
	// block's predecessor edges, counting multiplicity.
	FVPhiPredMismatch VerifyCode = "FV004"
	// FVBadLandingPad (FV005): a landingpad is not the first instruction of
	// its block, an invoke unwinds to a non-landing block, or a landing
	// block is reached by a non-unwind edge.
	FVBadLandingPad VerifyCode = "FV005"
	// FVBadType (FV006): operand or result types violate the opcode's
	// typing rules.
	FVBadType VerifyCode = "FV006"
	// FVDominance (FV007): a use of an instruction result is not dominated
	// by its definition.
	FVDominance VerifyCode = "FV007"
	// FVUseList (FV008): use lists and operands disagree — an operand
	// missing from its definition's use list, a use entry not backed by the
	// operand it claims, or a duplicated entry.
	FVUseList VerifyCode = "FV008"
	// FVDanglingRef (FV009): an operand refers to a definition outside the
	// enclosing function or to a function/global detached from the module
	// (the footprint of merge-and-drop gone wrong).
	FVDanglingRef VerifyCode = "FV009"
	// FVSymbolTable (FV010): module-level invariants — duplicate symbol
	// names, symbol-table entries out of sync with the definition lists, or
	// a call resolving to a stale function object shadowed by the module's
	// current definition of that name.
	FVSymbolTable VerifyCode = "FV010"
)

// VerifyDiag is one verifier finding, locatable to a function and, when
// applicable, a block and instruction.
type VerifyDiag struct {
	// Code is the stable diagnostic code.
	Code VerifyCode
	// Fn is the enclosing function's name, "" for module-level findings.
	Fn string
	// Block is the enclosing block's label, "" when not block-specific.
	Block string
	// Inst is the offending instruction's textual form, "" when not
	// instruction-specific.
	Inst string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic as one line, mirroring the merge auditor:
//
//	FV007 @f %bb3: use of %x not dominated by its definition (ret i32 %x)
func (d VerifyDiag) String() string {
	var sb strings.Builder
	sb.WriteString(string(d.Code))
	if d.Fn != "" {
		fmt.Fprintf(&sb, " @%s", d.Fn)
	}
	if d.Block != "" {
		fmt.Fprintf(&sb, " %%%s", d.Block)
	}
	fmt.Fprintf(&sb, ": %s", d.Msg)
	if d.Inst != "" {
		fmt.Fprintf(&sb, " (%s)", d.Inst)
	}
	return sb.String()
}

// FormatVerifyDiags renders diagnostics one per line.
func FormatVerifyDiags(diags []VerifyDiag) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ValidSymbolName reports whether s round-trips through the textual format
// as a function, global or block name: a non-empty identifier. Untrusted
// boundaries (the wire decoder) reject other names; the verifier flags them.
func ValidSymbolName(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// ValidLocalName reports whether s is usable as a parameter or instruction
// result name: empty (anonymous) or identifier characters throughout. Unlike
// symbol names, "%"-prefixed locals may start with a digit — the printer
// itself numbers anonymous values.
func ValidLocalName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// VerifyModule checks every invariant VerifyModuleLevel knows about and
// returns all violations joined into one error (nil when clean).
func VerifyModule(m *Module) error {
	return diagsToError(VerifyModuleLevel(m, VerifyFull))
}

// VerifyFunc checks a single function at full strictness and returns all
// violations joined into one error (nil when clean).
func VerifyFunc(f *Func) error {
	return diagsToError(VerifyFuncLevel(f, VerifyFull))
}

func diagsToError(diags []VerifyDiag) error {
	if len(diags) == 0 {
		return nil
	}
	errs := make([]error, len(diags))
	for i, d := range diags {
		errs[i] = errors.New(d.String())
	}
	return errors.Join(errs...)
}

// VerifyModuleLevel verifies the module at the given level and returns every
// finding in deterministic (definition) order. Module-level checks cover the
// symbol tables and, at full level, the use lists of functions and globals;
// each function body is then verified with VerifyFuncLevel.
func VerifyModuleLevel(m *Module, level VerifyLevel) []VerifyDiag {
	if level == VerifyOff || m == nil {
		return nil
	}
	var diags []VerifyDiag
	modErr := func(code VerifyCode, format string, args ...any) {
		diags = append(diags, VerifyDiag{Code: code, Msg: fmt.Sprintf(format, args...)})
	}

	// Symbol-table invariants (FV010). Iterate the definition slices — the
	// authoritative order — and cross-check the name maps.
	if strings.ContainsAny(m.Name, "\n\r") {
		modErr(FVSymbolTable, "module name %q contains line breaks", m.Name)
	}
	seenFuncs := map[string]bool{}
	for _, f := range m.Funcs {
		if f.parent != m {
			modErr(FVSymbolTable, "function @%s is listed but not attached to the module", f.name)
		}
		if !ValidSymbolName(f.name) {
			modErr(FVSymbolTable, "function name %q is not a valid symbol name", f.name)
		}
		if seenFuncs[f.name] {
			modErr(FVSymbolTable, "duplicate function name @%s", f.name)
		} else {
			seenFuncs[f.name] = true
			if m.funcByName != nil && m.funcByName[f.name] != f {
				modErr(FVSymbolTable, "symbol table entry for @%s does not match the listed function", f.name)
			}
		}
	}
	if m.funcByName != nil && len(m.funcByName) != len(seenFuncs) {
		modErr(FVSymbolTable, "symbol table has %d function entries for %d listed names (stale entries)",
			len(m.funcByName), len(seenFuncs))
	}
	seenGlobals := map[string]bool{}
	for _, g := range m.Globals {
		if g.parent != m {
			modErr(FVSymbolTable, "global @%s is listed but not attached to the module", g.name)
		}
		if !ValidSymbolName(g.name) {
			modErr(FVSymbolTable, "global name %q is not a valid symbol name", g.name)
		}
		if seenGlobals[g.name] {
			modErr(FVSymbolTable, "duplicate global name @%s", g.name)
		} else {
			seenGlobals[g.name] = true
			if m.globalByName != nil && m.globalByName[g.name] != g {
				modErr(FVSymbolTable, "symbol table entry for @%s does not match the listed global", g.name)
			}
		}
	}
	if m.globalByName != nil && len(m.globalByName) != len(seenGlobals) {
		modErr(FVSymbolTable, "symbol table has %d global entries for %d listed names (stale entries)",
			len(m.globalByName), len(seenGlobals))
	}

	for _, f := range m.Funcs {
		diags = append(diags, VerifyFuncLevel(f, level)...)
	}

	if level >= VerifyFull {
		diags = append(diags, verifyModuleUses(m)...)
		diags = append(diags, verifyCalleeResolution(m)...)
	}
	return diags
}

// verifyCalleeResolution flags direct calls whose *Func callee is shadowed by
// a different function of the same name in the module — the signature of a
// merge-and-drop that replaced a definition but left stale call operands
// behind (FV010).
func verifyCalleeResolution(m *Module) []VerifyDiag {
	if m.funcByName == nil {
		return nil
	}
	var diags []VerifyDiag
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if (in.Op != OpCall && in.Op != OpInvoke) || in.NumOperands() == 0 {
					continue
				}
				c, ok := in.Operand(0).(*Func)
				if !ok || c.parent != m {
					continue
				}
				if cur := m.funcByName[c.name]; cur != nil && cur != c {
					diags = append(diags, VerifyDiag{
						Code: FVSymbolTable, Fn: f.name, Block: b.name,
						Inst: safeFormatInst(in),
						Msg:  fmt.Sprintf("call resolves to a stale @%s shadowed by the module's current definition", c.name),
					})
				}
			}
		}
	}
	return diags
}

// verifyModuleUses checks bidirectional use-list consistency for functions
// and globals (FV008): every recorded use must be backed by the operand slot
// it names, no entry may be duplicated, and every operand referencing an
// attached function/global must be recorded in its use list. Function-local
// values (params, blocks, instructions) are checked per function.
func verifyModuleUses(m *Module) []VerifyDiag {
	var diags []VerifyDiag
	// recorded maps each (user, index) use entry to the definition whose use
	// list holds it; the reverse walk then confirms operands are recorded.
	recorded := map[Use]Value{}
	checkDef := func(ident string, v Value, uses []Use) {
		seen := map[Use]bool{}
		for _, u := range uses {
			if seen[u] {
				diags = append(diags, VerifyDiag{Code: FVUseList,
					Msg: fmt.Sprintf("use list of %s has a duplicate entry (operand %d of %s)",
						ident, u.Index, safeFormatInst(u.User))})
				continue
			}
			seen[u] = true
			if u.User == nil || u.Index < 0 || u.Index >= u.User.NumOperands() || u.User.Operand(u.Index) != v {
				diags = append(diags, VerifyDiag{Code: FVUseList,
					Msg: fmt.Sprintf("use list of %s records operand %d of an instruction that does not reference it", ident, u.Index)})
				continue
			}
			if b := u.User.Parent(); b == nil || b.Parent() == nil || b.Parent().parent != m {
				// The footprint of a discarded trial body whose operand uses
				// were never dropped: the user still references v but belongs
				// to no function of this module.
				diags = append(diags, VerifyDiag{Code: FVUseList,
					Msg: fmt.Sprintf("use list of %s records a use from outside the module (%s)",
						ident, safeFormatInst(u.User))})
				continue
			}
			recorded[u] = v
		}
	}
	for _, f := range m.Funcs {
		checkDef(f.Ident(), f, f.Uses())
	}
	for _, g := range m.Globals {
		checkDef(g.Ident(), g, g.Uses())
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				for i, op := range in.Operands() {
					switch x := op.(type) {
					case *Func:
						if x.parent == m && recorded[Use{User: in, Index: i}] != op {
							diags = append(diags, VerifyDiag{Code: FVUseList, Fn: f.name, Block: b.name,
								Inst: safeFormatInst(in),
								Msg:  fmt.Sprintf("operand %d (%s) is missing from its use list", i, x.Ident())})
						}
					case *Global:
						if x.parent == m && recorded[Use{User: in, Index: i}] != op {
							diags = append(diags, VerifyDiag{Code: FVUseList, Fn: f.name, Block: b.name,
								Inst: safeFormatInst(in),
								Msg:  fmt.Sprintf("operand %d (%s) is missing from its use list", i, x.Ident())})
						}
					}
				}
			}
		}
	}
	return diags
}

// VerifyFuncLevel verifies one function at the given level and returns every
// finding in deterministic (layout) order. Declarations always verify clean.
//
// The fast pass is one linear scan: parent links, terminator placement,
// operand arity/kind shape per opcode, phi and landingpad placement, and
// dangling-reference detection. Deeper checks that assume a structurally
// sound body — typing, phi/pred correspondence, dominance, use lists — run
// only at full level and only when the fast pass found no structural fault,
// exactly so they can index operands and cast block slots without guards.
func VerifyFuncLevel(f *Func, level VerifyLevel) []VerifyDiag {
	if level == VerifyOff || f == nil || f.IsDecl() {
		return nil
	}
	v := &funcVerifier{f: f}
	v.structural()
	if level >= VerifyFull && v.structOK {
		v.types()
		v.phiPreds()
		v.landingPreds()
		if v.phiOK {
			v.dominance()
		}
		v.localUses()
	}
	return v.diags
}

// funcVerifier accumulates diagnostics for one function body.
type funcVerifier struct {
	f     *Func
	diags []VerifyDiag
	// structOK is true when the structural pass found no fault; the deep
	// passes rely on it to index operands and cast block slots unguarded.
	structOK bool
	// phiOK gates dominance: InstDominates resolves phi uses through their
	// incoming blocks, which FV004 findings would make meaningless.
	phiOK bool
}

func (v *funcVerifier) report(code VerifyCode, b *Block, in *Inst, format string, args ...any) {
	d := VerifyDiag{Code: code, Fn: v.f.name, Msg: fmt.Sprintf(format, args...)}
	if b != nil {
		d.Block = b.name
	}
	if in != nil {
		d.Inst = safeFormatInst(in)
	}
	v.diags = append(v.diags, d)
}

// structural is the fast pass: one linear scan over the body.
func (v *funcVerifier) structural() {
	f := v.f
	before := len(v.diags)
	for _, b := range f.Blocks {
		if b.Parent() != f {
			v.report(FVBrokenLink, b, nil, "block %%%s has wrong parent", b.name)
		}
		if len(b.Insts) == 0 {
			v.report(FVMalformedBlock, b, nil, "block %%%s is empty", b.name)
			continue
		}
		for i, in := range b.Insts {
			if in.Parent() != b {
				v.report(FVBrokenLink, b, in, "instruction has wrong parent")
			}
			if in.IsTerminator() != (i == len(b.Insts)-1) {
				if in.IsTerminator() {
					v.report(FVMalformedBlock, b, nil, "block %%%s: terminator %s not at end", b.name, in.Op)
				} else {
					v.report(FVMalformedBlock, b, nil, "block %%%s: ends with non-terminator %s", b.name, in.Op)
				}
			}
			if in.Op == OpPhi && i > b.FirstNonPhi() {
				v.report(FVBadShape, b, nil, "block %%%s: phi after non-phi", b.name)
			}
			if in.Op == OpLandingPad && i != 0 {
				v.report(FVBadLandingPad, b, nil, "block %%%s: landingpad not first instruction", b.name)
			}
			v.shape(b, in)
		}
	}
	if len(f.Blocks) > 0 && len(f.Blocks[0].Preds()) > 0 {
		v.report(FVBrokenLink, f.Blocks[0], nil, "entry block has predecessors")
	}
	v.structOK = len(v.diags) == before
}

// shape checks operand arity and kind against the opcode's documented layout,
// and flags dangling references. A clean shape pass is what lets every deeper
// check (and accessors like Successors and PhiIncoming) index and cast
// operands without panicking on malformed input.
func (v *funcVerifier) shape(b *Block, in *Inst) {
	n := in.NumOperands()
	switch in.Op {
	case OpRet:
		if n > 1 {
			v.report(FVBadShape, b, in, "ret with %d operands", n)
			return
		}
	case OpBr:
		if n != 1 && n != 3 {
			v.report(FVBadShape, b, in, "br with %d operands (want 1 or 3)", n)
			return
		}
	case OpSwitch:
		if n < 2 || n%2 != 0 {
			v.report(FVBadShape, b, in, "switch with %d operands (want an even count >= 2)", n)
			return
		}
	case OpInvoke:
		if n < 3 {
			v.report(FVBadShape, b, in, "invoke with %d operands (want callee, args, normal, unwind)", n)
			return
		}
	case OpResume, OpLoad:
		if n != 1 {
			v.report(FVBadShape, b, in, "%s with %d operands (want 1)", in.Op, n)
			return
		}
	case OpStore:
		if n != 2 {
			v.report(FVBadShape, b, in, "store with %d operands (want 2)", n)
			return
		}
	case OpICmp, OpFCmp:
		if n != 2 {
			v.report(FVBadShape, b, in, "%s with %d operands (want 2)", in.Op, n)
			return
		}
	case OpSelect:
		if n != 3 {
			v.report(FVBadShape, b, in, "select with %d operands (want 3)", n)
			return
		}
	case OpPhi:
		if n == 0 || n%2 != 0 {
			v.report(FVBadShape, b, in, "malformed phi")
			return
		}
	case OpCall, OpGEP:
		if n < 1 {
			v.report(FVBadShape, b, in, "%s with no operands", in.Op)
			return
		}
	case OpAlloca, OpUnreachable, OpLandingPad:
		if n != 0 {
			v.report(FVBadShape, b, in, "%s with %d operands (want 0)", in.Op, n)
			return
		}
	default:
		if in.Op.IsBinary() {
			if n != 2 {
				v.report(FVBadShape, b, in, "%s with %d operands (want 2)", in.Op, n)
				return
			}
		} else if in.Op.IsCast() {
			if n != 1 {
				v.report(FVBadShape, b, in, "%s with %d operands (want 1)", in.Op, n)
				return
			}
		} else {
			v.report(FVBadShape, b, in, "unknown opcode %s", in.Op)
			return
		}
	}

	f := v.f
	for i, op := range in.Operands() {
		if op == nil {
			v.report(FVBadShape, b, in, "operand %d is nil", i)
			continue
		}
		_, isBlock := op.(*Block)
		if isBlock != blockSlot(in, i) {
			if isBlock {
				v.report(FVBadShape, b, in, "operand %d is a block in a value slot", i)
			} else {
				v.report(FVBadShape, b, in, "operand %d must be a block", i)
			}
			continue
		}
		switch x := op.(type) {
		case *Block:
			if x.Parent() != f {
				v.report(FVBrokenLink, b, in, "operand %d targets a block outside the function", i)
			}
		case *Inst:
			if x.Parent() == nil || x.Parent().Parent() != f {
				v.report(FVDanglingRef, b, in, "operand %d defined outside function", i)
			}
		case *Param:
			if x.Parent() != f {
				v.report(FVDanglingRef, b, in, "operand %d is a parameter of another function", i)
			}
		case *Func:
			if x.parent == nil {
				v.report(FVDanglingRef, b, in, "operand %d references detached function @%s", i, x.name)
			} else if f.parent != nil && x.parent != f.parent {
				v.report(FVDanglingRef, b, in, "operand %d references function @%s from another module", i, x.name)
			}
		case *Global:
			if x.parent == nil {
				v.report(FVDanglingRef, b, in, "operand %d references detached global @%s", i, x.name)
			} else if f.parent != nil && x.parent != f.parent {
				v.report(FVDanglingRef, b, in, "operand %d references global @%s from another module", i, x.name)
			}
		}
	}
}

// blockSlot reports whether operand i of in must hold a basic block per the
// opcode's operand layout (see the Inst doc comment).
func blockSlot(in *Inst, i int) bool {
	switch in.Op {
	case OpBr:
		return in.NumOperands() == 1 || i >= 1
	case OpSwitch:
		return i == 1 || (i >= 3 && i%2 == 1)
	case OpInvoke:
		return i >= in.NumOperands()-2
	case OpPhi:
		return i%2 == 1
	}
	return false
}

// types re-checks every instruction against the per-opcode typing rules
// (FV006). Runs only after a clean structural pass, so operand indexing is
// safe.
func (v *funcVerifier) types() {
	for _, b := range v.f.Blocks {
		for _, in := range b.Insts {
			if err := checkInstTypes(in); err != nil {
				v.report(FVBadType, b, in, "%v", err)
			}
		}
	}
}

// phiPreds checks phi incoming entries against predecessor edges, counting
// multiplicity: a block reaching b through two edges (e.g. both arms of a
// conditional branch) needs two incoming entries, and presence alone would
// miss a phi with one entry too few or too many for such an edge (FV004).
func (v *funcVerifier) phiPreds() {
	before := len(v.diags)
	for _, b := range v.f.Blocks {
		preds := b.Preds()
		predCount := map[*Block]int{}
		var predOrder []*Block
		for _, p := range preds {
			if predCount[p] == 0 {
				predOrder = append(predOrder, p)
			}
			predCount[p]++
		}
		for _, phi := range b.Phis() {
			seen := map[*Block]int{}
			var seenOrder []*Block
			for i := 0; i < phi.NumPhiIncoming(); i++ {
				_, pb := phi.PhiIncoming(i)
				if seen[pb] == 0 {
					seenOrder = append(seenOrder, pb)
				}
				seen[pb]++
			}
			for _, p := range predOrder {
				switch have, want := seen[p], predCount[p]; {
				case have == 0:
					v.report(FVPhiPredMismatch, b, phi, "block %%%s: phi missing incoming for predecessor %%%s", b.name, p.name)
				case have != want:
					v.report(FVPhiPredMismatch, b, phi,
						"block %%%s: phi has %d incoming entries for predecessor %%%s, want %d (one per edge)",
						b.name, have, p.name, want)
				}
			}
			for _, p := range seenOrder {
				if predCount[p] == 0 {
					v.report(FVPhiPredMismatch, b, phi, "block %%%s: phi has incoming for non-predecessor %%%s", b.name, p.name)
				}
			}
		}
	}
	v.phiOK = len(v.diags) == before
}

// landingPreds checks the exceptional-flow pairing (FV005): invoke unwind
// destinations must be landing blocks, and landing blocks must only be
// reached by invoke unwind edges.
func (v *funcVerifier) landingPreds() {
	for _, b := range v.f.Blocks {
		t := b.Terminator()
		if t != nil && t.Op == OpInvoke && !t.InvokeUnwind().IsLandingBlock() {
			v.report(FVBadLandingPad, b, t, "invoke unwind destination %%%s is not a landing block", t.InvokeUnwind().name)
		}
		if b.IsLandingBlock() {
			for _, p := range b.Preds() {
				pt := p.Terminator()
				if pt == nil || pt.Op != OpInvoke || pt.InvokeUnwind() != b {
					v.report(FVBadLandingPad, b, nil, "landing block %%%s reached by non-unwind edge from %%%s", b.name, p.name)
				}
			}
		}
	}
}

// dominance checks that every use of an instruction result is dominated by
// its definition (FV007), using the O(1) DFS-interval queries of DomTree.
func (v *funcVerifier) dominance() {
	dt := ComputeDomTree(v.f)
	for _, b := range v.f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, in := range b.Insts {
			for i, op := range in.Operands() {
				def, ok := op.(*Inst)
				if !ok || !dt.Reachable(def.Parent()) {
					continue
				}
				if !dt.InstDominates(def, in, i) {
					v.report(FVDominance, b, in, "use of %s not dominated by its definition", def.Ident())
				}
			}
		}
	}
}

// localUses checks bidirectional use-list consistency for function-local
// definitions — parameters, blocks and instructions (FV008). Module-level
// values (functions, globals) are shared across bodies and are checked by
// VerifyModuleLevel under the use-list lock.
func (v *funcVerifier) localUses() {
	f := v.f
	// recorded maps each valid (user, index) use entry to the definition
	// whose list holds it; the operand walk then confirms every local
	// reference is recorded.
	recorded := map[Use]Value{}
	checkDef := func(ident string, d userTracked) {
		seen := map[Use]bool{}
		for _, u := range d.Uses() {
			if seen[u] {
				v.report(FVUseList, nil, nil, "use list of %s has a duplicate entry", ident)
				continue
			}
			seen[u] = true
			if u.User == nil || u.Index < 0 || u.Index >= u.User.NumOperands() || u.User.Operand(u.Index) != Value(d) {
				v.report(FVUseList, nil, nil, "use list of %s records operand %d of an instruction that does not reference it", ident, u.Index)
				continue
			}
			if u.User.Parent() == nil || u.User.Parent().Parent() != f {
				v.report(FVUseList, nil, nil, "use list of %s records a use from outside the function", ident)
				continue
			}
			recorded[u] = d
		}
	}
	for _, p := range f.Params {
		checkDef(p.Ident(), p)
	}
	for _, b := range f.Blocks {
		checkDef(b.Ident(), b)
		for _, in := range b.Insts {
			checkDef(in.Ident(), in)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for i, op := range in.Operands() {
				switch op.(type) {
				case *Inst, *Block, *Param:
					if recorded[Use{User: in, Index: i}] != op {
						v.report(FVUseList, b, in, "operand %d (%s) is missing from its use list", i, op.Ident())
					}
				}
			}
		}
	}
}

// safeFormatInst renders an instruction for a diagnostic. The printer assumes
// the operand-layout invariants the verifier exists to check, so rendering a
// malformed instruction may panic; fall back to the opcode mnemonic instead
// of letting a diagnostic about broken IR crash the verifier itself.
func safeFormatInst(in *Inst) (s string) {
	if in == nil {
		return ""
	}
	defer func() {
		if recover() != nil {
			s = in.Op.String()
		}
	}()
	return FormatInst(in)
}

// checkInstTypes validates operand and result types against the opcode.
func checkInstTypes(in *Inst) error {
	switch {
	case in.Op.IsBinary():
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() || a.Type() != in.Type() {
			return fmt.Errorf("binary operand/result type mismatch")
		}
		isFP := in.Op >= OpFAdd && in.Op <= OpFRem
		if isFP && !in.Type().IsFloat() {
			return fmt.Errorf("float opcode on %s", in.Type())
		}
		if !isFP && !in.Type().IsInt() {
			return fmt.Errorf("integer opcode on %s", in.Type())
		}
	case in.Op.IsCast():
		return checkCastTypes(in)
	}

	switch in.Op {
	case OpRet:
		fn := in.Parent().Parent()
		want := fn.ReturnType()
		if want.IsVoid() {
			if in.NumOperands() != 0 {
				return fmt.Errorf("ret with value in void function")
			}
		} else if in.NumOperands() != 1 || in.Operand(0).Type() != want {
			return fmt.Errorf("ret type does not match function return type %s", want)
		}
	case OpBr:
		if in.NumOperands() == 3 && !in.Operand(0).Type().IsBool() {
			return fmt.Errorf("conditional branch on non-i1")
		}
	case OpSwitch:
		if !in.Operand(0).Type().IsInt() {
			return fmt.Errorf("switch on non-integer")
		}
	case OpLoad:
		pt := in.Operand(0).Type()
		if !pt.IsPointer() || pt.Elem != in.Type() {
			return fmt.Errorf("load type mismatch")
		}
		if in.Type().IsAggregate() {
			return fmt.Errorf("aggregate loads are not supported; use getelementptr to access fields")
		}
	case OpStore:
		pt := in.Operand(1).Type()
		if !pt.IsPointer() || pt.Elem != in.Operand(0).Type() {
			return fmt.Errorf("store type mismatch")
		}
		if in.Operand(0).Type().IsAggregate() {
			return fmt.Errorf("aggregate stores are not supported; use getelementptr to access fields")
		}
	case OpICmp:
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() {
			return fmt.Errorf("icmp operand mismatch")
		}
		if !a.Type().IsInt() && !a.Type().IsPointer() {
			return fmt.Errorf("icmp on %s", a.Type())
		}
	case OpFCmp:
		a, b := in.Operand(0), in.Operand(1)
		if a.Type() != b.Type() || !a.Type().IsFloat() {
			return fmt.Errorf("fcmp operand mismatch")
		}
	case OpSelect:
		if !in.Operand(0).Type().IsBool() {
			return fmt.Errorf("select condition not i1")
		}
		if in.Operand(1).Type() != in.Type() || in.Operand(2).Type() != in.Type() {
			return fmt.Errorf("select arm type mismatch")
		}
	case OpCall, OpInvoke:
		ct := in.Callee().Type()
		if !ct.IsPointer() || ct.Elem.Kind != FuncKind {
			return fmt.Errorf("call of non-function")
		}
		sig := ct.Elem
		args := in.CallArgs()
		if sig.Variadic {
			if len(args) < len(sig.Fields) {
				return fmt.Errorf("too few args")
			}
		} else if len(args) != len(sig.Fields) {
			return fmt.Errorf("wrong arg count: have %d, want %d", len(args), len(sig.Fields))
		}
		for i := range sig.Fields {
			if args[i].Type() != sig.Fields[i] {
				return fmt.Errorf("arg %d type %s, want %s", i, args[i].Type(), sig.Fields[i])
			}
		}
		if in.Type() != sig.Ret {
			return fmt.Errorf("call result type %s, want %s", in.Type(), sig.Ret)
		}
	case OpResume:
		if in.Operand(0).Type() != Token() {
			return fmt.Errorf("resume of non-token")
		}
	case OpPhi:
		for i := 0; i < in.NumPhiIncoming(); i++ {
			v, _ := in.PhiIncoming(i)
			if v.Type() != in.Type() {
				return fmt.Errorf("phi incoming type mismatch")
			}
		}
	case OpGEP:
		if !in.Operand(0).Type().IsPointer() {
			return fmt.Errorf("gep base not a pointer")
		}
		for _, idx := range in.Operands()[1:] {
			if !idx.Type().IsInt() {
				return fmt.Errorf("gep index not an integer")
			}
		}
	}
	return nil
}

func checkCastTypes(in *Inst) error {
	from, to := in.Operand(0).Type(), in.Type()
	bad := func() error {
		return fmt.Errorf("invalid %s from %s to %s", in.Op, from, to)
	}
	switch in.Op {
	case OpTrunc:
		if !from.IsInt() || !to.IsInt() || from.Bits <= to.Bits {
			return bad()
		}
	case OpZExt, OpSExt:
		if !from.IsInt() || !to.IsInt() || from.Bits >= to.Bits {
			return bad()
		}
	case OpFPTrunc:
		if !from.IsFloat() || !to.IsFloat() || from.Bits <= to.Bits {
			return bad()
		}
	case OpFPExt:
		if !from.IsFloat() || !to.IsFloat() || from.Bits >= to.Bits {
			return bad()
		}
	case OpFPToSI, OpFPToUI:
		if !from.IsFloat() || !to.IsInt() {
			return bad()
		}
	case OpSIToFP, OpUIToFP:
		if !from.IsInt() || !to.IsFloat() {
			return bad()
		}
	case OpPtrToInt:
		if !from.IsPointer() || !to.IsInt() {
			return bad()
		}
	case OpIntToPtr:
		if !from.IsInt() || !to.IsPointer() {
			return bad()
		}
	case OpBitCast:
		if !LosslesslyBitcastable(from, to) {
			return bad()
		}
	}
	return nil
}
