package ir_test

import (
	"math/rand"
	"testing"

	"fmsa/internal/ir"
)

// randomCFG builds a function with n blocks and random conditional
// branches, always terminating in a return-capable structure.
func randomCFG(seed int64, n int) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule("dom")
	f := m.NewFuncIn("f", ir.FuncOf(ir.Void(), ir.Bool()))
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlockIn("")
	}
	for i, b := range blocks {
		bd := ir.NewBuilder(b)
		switch {
		case i == n-1 || rng.Intn(5) == 0:
			bd.Ret(nil)
		case rng.Intn(2) == 0:
			// Unconditional forward/backward edge.
			bd.Br(blocks[rng.Intn(n)])
		default:
			bd.CondBr(f.Params[0], blocks[rng.Intn(n)], blocks[rng.Intn(n)])
		}
	}
	return f
}

// bruteDominators computes dominance by path enumeration: a dominates b if
// removing a makes b unreachable from the entry.
func bruteDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // block a is "removed"
	var stack []*ir.Block
	entry := f.Entry()
	if entry != a {
		stack = append(stack, entry)
		seen[entry] = true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == b {
			return false // reached b without passing a
		}
		for _, s := range cur.Successors() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

func TestDomTreeMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		f := randomCFG(seed, 8)
		dt := ir.ComputeDomTree(f)
		reach := map[*ir.Block]bool{}
		for _, b := range ir.ReversePostOrder(f) {
			reach[b] = true
		}
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				if !reach[a] || !reach[b] {
					continue
				}
				want := bruteDominates(f, a, b)
				got := dt.Dominates(a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%p, %p) = %v, brute force %v",
						seed, a, b, got, want)
				}
			}
		}
	}
}

func TestIDomConsistency(t *testing.T) {
	// idom(b) must strictly dominate b and be dominated by every other
	// dominator of b.
	for seed := int64(30); seed <= 40; seed++ {
		f := randomCFG(seed, 7)
		dt := ir.ComputeDomTree(f)
		for _, b := range ir.ReversePostOrder(f) {
			if b == f.Entry() {
				if dt.IDom(b) != nil {
					t.Fatal("entry must have no idom")
				}
				continue
			}
			id := dt.IDom(b)
			if id == nil {
				t.Fatalf("seed %d: reachable block lacks idom", seed)
			}
			if !dt.Dominates(id, b) || id == b {
				t.Fatalf("seed %d: idom does not strictly dominate", seed)
			}
			for _, d := range ir.ReversePostOrder(f) {
				if d != b && dt.Dominates(d, b) && !dt.Dominates(d, id) {
					t.Fatalf("seed %d: dominator %p not above idom %p", seed, d, id)
				}
			}
		}
	}
}
