package ir

import "fmt"

// Builder appends instructions to a basic block, computing result types and
// checking operand types as it goes. It is the primary way of constructing
// IR programmatically.
type Builder struct {
	blk *Block
}

// NewBuilder returns a builder positioned at the end of b.
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// Block returns the current insertion block.
func (bd *Builder) Block() *Block { return bd.blk }

// SetBlock moves the insertion point to the end of b.
func (bd *Builder) SetBlock(b *Block) { bd.blk = b }

func (bd *Builder) emit(in *Inst) *Inst {
	bd.blk.Append(in)
	return in
}

// Ret emits a return of v, or a void return if v is nil.
func (bd *Builder) Ret(v Value) *Inst {
	if v == nil {
		return bd.emit(NewInst(OpRet, Void()))
	}
	return bd.emit(NewInst(OpRet, Void(), v))
}

// Br emits an unconditional branch to dest.
func (bd *Builder) Br(dest *Block) *Inst {
	return bd.emit(NewInst(OpBr, Void(), dest))
}

// CondBr emits a conditional branch on cond (i1).
func (bd *Builder) CondBr(cond Value, then, els *Block) *Inst {
	if !cond.Type().IsBool() {
		panic(fmt.Sprintf("ir: CondBr condition must be i1, got %s", cond.Type()))
	}
	return bd.emit(NewInst(OpBr, Void(), cond, then, els))
}

// Switch emits a switch on cond with the given default block; use AddCase on
// the result to attach cases.
func (bd *Builder) Switch(cond Value, def *Block) *Inst {
	return bd.emit(NewInst(OpSwitch, Void(), cond, def))
}

// AddCase appends a (constant, destination) case to a switch instruction.
func AddCase(sw *Inst, c *ConstInt, dest *Block) {
	if sw.Op != OpSwitch {
		panic("ir: AddCase on non-switch")
	}
	sw.AppendOperand(c)
	sw.AppendOperand(dest)
}

// Unreachable emits an unreachable terminator.
func (bd *Builder) Unreachable() *Inst {
	return bd.emit(NewInst(OpUnreachable, Void()))
}

// Binary emits a two-operand arithmetic or bitwise instruction. Both
// operands must have the same type, which is also the result type.
func (bd *Builder) Binary(op Opcode, lhs, rhs Value) *Inst {
	if !op.IsBinary() {
		panic(fmt.Sprintf("ir: Binary with non-binary opcode %s", op))
	}
	if lhs.Type() != rhs.Type() {
		panic(fmt.Sprintf("ir: %s operand type mismatch: %s vs %s", op, lhs.Type(), rhs.Type()))
	}
	return bd.emit(NewInst(op, lhs.Type(), lhs, rhs))
}

// Add emits an integer addition.
func (bd *Builder) Add(lhs, rhs Value) *Inst { return bd.Binary(OpAdd, lhs, rhs) }

// Sub emits an integer subtraction.
func (bd *Builder) Sub(lhs, rhs Value) *Inst { return bd.Binary(OpSub, lhs, rhs) }

// Mul emits an integer multiplication.
func (bd *Builder) Mul(lhs, rhs Value) *Inst { return bd.Binary(OpMul, lhs, rhs) }

// Alloca emits a stack allocation of ty, producing a ty* value.
func (bd *Builder) Alloca(ty *Type) *Inst {
	in := NewInst(OpAlloca, PointerTo(ty))
	in.Alloc = ty
	return bd.emit(in)
}

// Load emits a load from ptr.
func (bd *Builder) Load(ptr Value) *Inst {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic(fmt.Sprintf("ir: Load from non-pointer %s", pt))
	}
	return bd.emit(NewInst(OpLoad, pt.Elem, ptr))
}

// Store emits a store of v to ptr.
func (bd *Builder) Store(v, ptr Value) *Inst {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic(fmt.Sprintf("ir: Store to non-pointer %s", pt))
	}
	if pt.Elem != v.Type() {
		panic(fmt.Sprintf("ir: Store type mismatch: %s to %s", v.Type(), pt))
	}
	return bd.emit(NewInst(OpStore, Void(), v, ptr))
}

// GEP emits a getelementptr computing an address within the object pointed
// to by ptr. Index semantics follow LLVM: the first index steps over the
// pointee as an array element, subsequent indices drill into aggregates.
// Struct field indices must be ConstInt.
func (bd *Builder) GEP(ptr Value, indices ...Value) *Inst {
	rt := GEPResultType(ptr.Type(), indices)
	ops := append([]Value{ptr}, indices...)
	return bd.emit(NewInst(OpGEP, rt, ops...))
}

// GEPResultType computes the result type of a GEP with the given base
// pointer type and indices.
func GEPResultType(ptrTy *Type, indices []Value) *Type {
	rt, err := GEPResultTypeChecked(ptrTy, indices)
	if err != nil {
		panic("ir: " + err.Error())
	}
	return rt
}

// GEPResultTypeChecked is GEPResultType returning an error instead of
// panicking, for callers typing untrusted input (the parser).
func GEPResultTypeChecked(ptrTy *Type, indices []Value) (*Type, error) {
	if !ptrTy.IsPointer() {
		return nil, fmt.Errorf("GEP on non-pointer %s", ptrTy)
	}
	cur := ptrTy.Elem
	for i, idx := range indices {
		if i == 0 {
			continue // first index steps over the pointee itself
		}
		switch cur.Kind {
		case ArrayKind:
			cur = cur.Elem
		case StructKind:
			c, ok := idx.(*ConstInt)
			if !ok {
				return nil, fmt.Errorf("GEP struct index must be constant")
			}
			if c.V < 0 || c.V >= int64(len(cur.Fields)) {
				return nil, fmt.Errorf("GEP struct index %d out of range for %s", c.V, cur)
			}
			cur = cur.Fields[c.V]
		default:
			return nil, fmt.Errorf("GEP drills into non-aggregate %s", cur)
		}
	}
	return PointerTo(cur), nil
}

// Cast emits a conversion instruction of the given opcode to type to.
func (bd *Builder) Cast(op Opcode, v Value, to *Type) *Inst {
	if !op.IsCast() {
		panic(fmt.Sprintf("ir: Cast with non-cast opcode %s", op))
	}
	return bd.emit(NewInst(op, to, v))
}

// BitCast emits a lossless bit reinterpretation of v as type to.
func (bd *Builder) BitCast(v Value, to *Type) *Inst {
	return bd.Cast(OpBitCast, v, to)
}

// ICmp emits an integer/pointer comparison producing i1.
func (bd *Builder) ICmp(pred CmpPred, lhs, rhs Value) *Inst {
	in := NewInst(OpICmp, Bool(), lhs, rhs)
	in.Pred = pred
	return bd.emit(in)
}

// FCmp emits a floating-point comparison producing i1.
func (bd *Builder) FCmp(pred CmpPred, lhs, rhs Value) *Inst {
	in := NewInst(OpFCmp, Bool(), lhs, rhs)
	in.Pred = pred
	return bd.emit(in)
}

// Phi emits an empty phi of type ty; attach incoming edges with AddIncoming.
func (bd *Builder) Phi(ty *Type) *Inst {
	return bd.emit(NewInst(OpPhi, ty))
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Inst, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.AppendOperand(v)
	phi.AppendOperand(pred)
}

// Select emits a select between ifTrue and ifFalse on cond (i1).
func (bd *Builder) Select(cond, ifTrue, ifFalse Value) *Inst {
	if !cond.Type().IsBool() {
		panic("ir: Select condition must be i1")
	}
	if ifTrue.Type() != ifFalse.Type() {
		panic(fmt.Sprintf("ir: Select arm type mismatch: %s vs %s", ifTrue.Type(), ifFalse.Type()))
	}
	return bd.emit(NewInst(OpSelect, ifTrue.Type(), cond, ifTrue, ifFalse))
}

// Call emits a direct or indirect call. callee must have pointer-to-function
// type.
func (bd *Builder) Call(callee Value, args ...Value) *Inst {
	sig := calleeSig(callee)
	checkCallArgs(sig, args)
	ops := append([]Value{callee}, args...)
	return bd.emit(NewInst(OpCall, sig.Ret, ops...))
}

// Invoke emits an invoke transferring to normal on ordinary return and to
// unwind (a landing block) if the callee raises.
func (bd *Builder) Invoke(callee Value, args []Value, normal, unwind *Block) *Inst {
	sig := calleeSig(callee)
	checkCallArgs(sig, args)
	ops := append([]Value{callee}, args...)
	ops = append(ops, normal, unwind)
	return bd.emit(NewInst(OpInvoke, sig.Ret, ops...))
}

// Resume emits a resume of exception propagation with the given landingpad
// token.
func (bd *Builder) Resume(tok Value) *Inst {
	return bd.emit(NewInst(OpResume, Void(), tok))
}

// LandingPad emits a landingpad instruction with the given clauses. It must
// be the first instruction of its block.
func (bd *Builder) LandingPad(clauses ...string) *Inst {
	in := NewInst(OpLandingPad, Token())
	in.Clauses = append([]string(nil), clauses...)
	return bd.emit(in)
}

func calleeSig(callee Value) *Type {
	ct := callee.Type()
	if !ct.IsPointer() || ct.Elem.Kind != FuncKind {
		panic(fmt.Sprintf("ir: call of non-function value of type %s", ct))
	}
	return ct.Elem
}

func checkCallArgs(sig *Type, args []Value) {
	if sig.Variadic {
		if len(args) < len(sig.Fields) {
			panic("ir: too few arguments to variadic call")
		}
	} else if len(args) != len(sig.Fields) {
		panic(fmt.Sprintf("ir: call argument count %d does not match signature %s", len(args), sig))
	}
	for i, p := range sig.Fields {
		if args[i].Type() != p {
			panic(fmt.Sprintf("ir: call argument %d has type %s, want %s", i, args[i].Type(), p))
		}
	}
}
