package ir

import (
	"testing"
	"testing/quick"
)

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestBuilderTypeChecks(t *testing.T) {
	m := NewModule("b")
	f := m.NewFuncIn("f", FuncOf(Void(), I32(), F64(), PointerTo(I64())))
	entry := f.NewBlockIn("entry")
	b := NewBuilder(entry)
	i32v := f.Params[0]
	f64v := f.Params[1]
	ptr := f.Params[2]

	expectPanic(t, "mixed-type add", func() { b.Add(i32v, f64v) })
	expectPanic(t, "cond-br on non-bool", func() {
		b.CondBr(i32v, entry, entry)
	})
	expectPanic(t, "load from non-pointer", func() { b.Load(i32v) })
	expectPanic(t, "store type mismatch", func() { b.Store(i32v, ptr) })
	expectPanic(t, "select arm mismatch", func() {
		c := b.ICmp(PredEQ, i32v, i32v)
		b.Select(c, i32v, f64v)
	})
	expectPanic(t, "call arg mismatch", func() {
		callee := m.NewFuncIn("g", FuncOf(Void(), I64()))
		b.Call(callee, i32v)
	})
	expectPanic(t, "call of non-function", func() { b.Call(i32v) })
	expectPanic(t, "binary with non-binary op", func() { b.Binary(OpRet, i32v, i32v) })
	expectPanic(t, "cast with non-cast op", func() { b.Cast(OpAdd, i32v, I64()) })
}

func TestGEPResultTypes(t *testing.T) {
	st := StructOf(I32(), ArrayOf(4, F64()), PointerTo(I8()))
	ptr := PointerTo(st)
	idx := func(v int64) Value { return NewConstInt(I64(), v) }

	cases := []struct {
		indices []Value
		want    *Type
	}{
		{[]Value{idx(0)}, ptr},
		{[]Value{idx(0), NewConstInt(I32(), 0)}, PointerTo(I32())},
		{[]Value{idx(0), NewConstInt(I32(), 1)}, PointerTo(ArrayOf(4, F64()))},
		{[]Value{idx(0), NewConstInt(I32(), 1), idx(2)}, PointerTo(F64())},
		{[]Value{idx(0), NewConstInt(I32(), 2)}, PointerTo(PointerTo(I8()))},
	}
	for _, c := range cases {
		if got := GEPResultType(ptr, c.indices); got != c.want {
			t.Errorf("GEPResultType(%v) = %s, want %s", c.indices, got, c.want)
		}
	}

	expectPanic(t, "gep into scalar", func() {
		GEPResultType(PointerTo(I32()), []Value{idx(0), idx(0)})
	})
	expectPanic(t, "gep on non-pointer", func() {
		GEPResultType(I32(), []Value{idx(0)})
	})
	expectPanic(t, "variable struct index", func() {
		m := NewModule("x")
		f := m.NewFuncIn("f", FuncOf(Void(), I64()))
		GEPResultType(ptr, []Value{idx(0), f.Params[0]})
	})
}

func TestTruncSExtProperty(t *testing.T) {
	// Canonical constant representation: for any value and width, the
	// canonical form is a fixpoint and Uint returns the truncated bits.
	f := func(v int64, w uint8) bool {
		bits := int(w%64) + 1
		c := NewConstInt(Int(bits), v)
		c2 := NewConstInt(Int(bits), c.V)
		if c.V != c2.V {
			return false
		}
		mask := uint64(1)<<uint(bits) - 1
		if bits == 64 {
			mask = ^uint64(0)
		}
		return c.Uint() == uint64(v)&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchBuilder(t *testing.T) {
	m := NewModule("sw")
	f := m.NewFuncIn("f", FuncOf(Void(), I32()))
	entry := f.NewBlockIn("entry")
	def := f.NewBlockIn("def")
	one := f.NewBlockIn("one")
	b := NewBuilder(entry)
	sw := b.Switch(f.Params[0], def)
	AddCase(sw, NewConstInt(I32(), 1), one)
	NewBuilder(def).Ret(nil)
	NewBuilder(one).Ret(nil)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	succs := entry.Successors()
	if len(succs) != 2 || succs[0] != def || succs[1] != one {
		t.Errorf("switch successors wrong: %v", succs)
	}
	expectPanic(t, "AddCase on non-switch", func() {
		AddCase(def.Insts[0], NewConstInt(I32(), 2), one)
	})
}

func TestPhiBuilder(t *testing.T) {
	m := NewModule("phi")
	f := m.NewFuncIn("f", FuncOf(I32(), Bool()))
	entry := f.NewBlockIn("entry")
	a := f.NewBlockIn("a")
	bb := f.NewBlockIn("b")
	join := f.NewBlockIn("join")
	bd := NewBuilder(entry)
	bd.CondBr(f.Params[0], a, bb)
	NewBuilder(a).Br(join)
	NewBuilder(bb).Br(join)
	jb := NewBuilder(join)
	phi := jb.Phi(I32())
	AddIncoming(phi, NewConstInt(I32(), 1), a)
	AddIncoming(phi, NewConstInt(I32(), 2), bb)
	jb.Ret(phi)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if phi.NumPhiIncoming() != 2 {
		t.Errorf("incoming = %d, want 2", phi.NumPhiIncoming())
	}
	v, blk := phi.PhiIncoming(1)
	if v.(*ConstInt).V != 2 || blk != bb {
		t.Error("PhiIncoming(1) wrong")
	}
}

func TestInsertBefore(t *testing.T) {
	m := NewModule("ins")
	f := m.NewFuncIn("f", FuncOf(I32(), I32()))
	entry := f.NewBlockIn("entry")
	b := NewBuilder(entry)
	ret := b.Ret(f.Params[0])
	add := NewInst(OpAdd, I32(), f.Params[0], NewConstInt(I32(), 1))
	entry.InsertBefore(add, ret)
	ret.SetOperand(0, add)
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if entry.Insts[0] != add || entry.Insts[1] != ret {
		t.Error("InsertBefore misplaced instruction")
	}
	expectPanic(t, "InsertBefore with foreign pos", func() {
		other := NewInst(OpAdd, I32(), f.Params[0], f.Params[0])
		entry.InsertBefore(NewInst(OpRet, Void()), other)
	})
}
