package ir_test

// FuzzRoundTrip lives in the external test package so it can seed from the
// workload generator and cross-check the wire codec without import cycles.

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/wire"
	"fmsa/internal/workload"
)

// FuzzRoundTrip: any input the parser accepts and the verifier passes must
// survive print→parse as a fixpoint and encode→decode→print byte-identically
// — the same property the wire tests check on generated corpora, here under
// mutated inputs. Run as a smoke in CI: go test -fuzz=FuzzRoundTrip
// -fuzztime=10s ./internal/ir/.
func FuzzRoundTrip(f *testing.F) {
	// Seeds mirror the example corpora: generator output plus hand-written
	// fragments exercising declarations, globals and exceptional control flow.
	for seed := int64(1); seed <= 3; seed++ {
		p := workload.Profile{
			Name: "fz", NumFuncs: 3, AvgSize: 15, MaxSize: 40,
			Identical: 0.3, TypeVar: 0.2, CFGVar: 0.2,
			InternalFrac: 0.5, Seed: seed,
		}
		f.Add(ir.FormatModule(workload.Build(p)))
	}
	f.Add("define void @f() {\nentry:\n  ret void\n}\n")
	f.Add("declare i32 @printf(i8*, ...)\n")
	f.Add("@g = global [4 x i32] zeroinitializer\n\ndefine i32* @p() {\nentry:\n  %e = getelementptr [4 x i32], [4 x i32]* @g, i32 0\n  ret i32* %e\n}\n")
	// Past crashers: untrusted input reaching panicking constructors.
	f.Add("declare f0 @f()\n")
	f.Add("define i1 @g(){A:getelementptr [0 x i1], [0 x i1] %x\n")
	f.Add("define i32 @n() {\nentry:\n  ret i32 null\n}\n")
	f.Add("define i32 @m() {\nentry:\n  ret i32 nan\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.ParseModule("fuzz", src)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := ir.VerifyModule(m); err != nil {
			return // the parser is laxer than the verifier; stop at unverifiable
		}
		text1 := ir.FormatModule(m)
		m2, err := ir.ParseModule("fuzz", text1)
		if err != nil {
			t.Fatalf("reparse of printed module failed: %v\n%s", err, text1)
		}
		if text2 := ir.FormatModule(m2); text2 != text1 {
			t.Fatalf("print/parse is not a fixpoint:\n--- first\n%s\n--- second\n%s", text1, text2)
		}
		data, err := wire.Encode(m2)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		m3, err := wire.Decode(data, wire.Options{Workers: 2})
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := ir.VerifyModule(m3); err != nil {
			t.Fatalf("decoded module fails verify: %v", err)
		}
		if got := ir.FormatModule(m3); got != text1 {
			t.Fatalf("wire round trip changed the module text:\n--- text\n%s\n--- wire\n%s", text1, got)
		}
	})
}
