package encode_test

// Cross-check of the interning contract against the reference relation:
//
//	codes[i] == codes[j]  ⇔  core.EntriesEquivalent(seq_a[i], seq_b[j])
//
// for every cross-function index pair and every distinct-index pair within a
// function. This is the property the coded alignment kernels rest on — if it
// holds, one uint32 comparison per DP cell reproduces the closure kernels'
// per-cell structural walk exactly.

import (
	"sync"
	"testing"

	"fmsa/internal/core"
	"fmsa/internal/encode"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/workload"
)

// featureIR packs the equivalence relation's special cases into a few small
// functions: invoke/landingpad pairs (matching and mismatching clause
// handling), icmp predicates that agree and disagree, alloca types, GEPs with
// constant and variable indices, switches with equal and different case
// constants, and phis (never equivalent, even to themselves).
const featureIR = `
declare void @throw()
declare void @log(i64)

define internal i64 @features_a(i64 %x, i64* %p, {i64, f64}* %s) {
entry:
  %m = alloca i64
  %c = icmp slt i64 %x, 10
  %g1 = getelementptr {i64, f64}, {i64, f64}* %s, i64 0, i32 0
  %g2 = getelementptr i64, i64* %p, i64 %x
  %t = trunc i64 %x to i32
  invoke void @throw() to label %mid unwind label %lpad
mid:
  switch i32 %t, label %def [ i32 1, label %one i32 2, label %two ]
one:
  br label %join
two:
  br label %join
join:
  %ph = phi i64 [ 1, %one ], [ 2, %two ]
  ret i64 %ph
def:
  ret i64 0
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %x)
  ret i64 -1
}

define internal i64 @features_b(i64 %y, i64* %q, {i64, f64}* %r) {
entry:
  %m = alloca f64
  %c = icmp sgt i64 %y, 10
  %c2 = icmp slt i64 %y, 10
  %g1 = getelementptr {i64, f64}, {i64, f64}* %r, i64 0, i32 1
  %g2 = getelementptr i64, i64* %q, i64 %y
  %t = trunc i64 %y to i32
  invoke void @throw() to label %mid unwind label %lpad
mid:
  switch i32 %t, label %def [ i32 1, label %one i32 3, label %two ]
one:
  br label %join
two:
  br label %join
join:
  %ph = phi i64 [ 3, %one ], [ 4, %two ]
  ret i64 %ph
def:
  ret i64 0
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %y)
  ret i64 -1
}
`

// checkContract asserts code equality ⇔ EntriesEquivalent for all pairs
// across the two encoded sequences, skipping identical (i == j) pairs when
// the two sequences are the same function: code(e) == code(e) trivially, but
// §III-D makes some entries non-equivalent to themselves.
func checkContract(t *testing.T, name string, a, b *encode.Encoded, same bool) {
	t.Helper()
	for i := range a.Seq {
		for j := range b.Seq {
			if same && i == j {
				continue
			}
			want := core.EntriesEquivalent(a.Seq[i], b.Seq[j])
			got := a.Codes[i] == b.Codes[j]
			if got != want {
				t.Errorf("%s: entry %d vs %d: codes say %v, EntriesEquivalent says %v",
					name, i, j, got, want)
			}
		}
	}
}

func encodeFunc(in *encode.Interner, f *ir.Func) *encode.Encoded {
	return in.Encode(linearize.Linearize(f))
}

// TestContractFeatureIR pins the per-opcode special cases on hand-written IR.
func TestContractFeatureIR(t *testing.T) {
	m := ir.MustParseModule("feat", featureIR)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	in := encode.NewInterner()
	fa := encodeFunc(in, m.FuncByName("features_a"))
	fb := encodeFunc(in, m.FuncByName("features_b"))
	checkContract(t, "a-vs-b", fa, fb, false)
	checkContract(t, "a-vs-a", fa, fa, true)
	checkContract(t, "b-vs-b", fb, fb, true)
}

// TestContractEHPair covers the invoke/unwind-clause plumbing on the same
// fixture shape the core EH tests use.
func TestContractEHPair(t *testing.T) {
	m := ir.MustParseModule("eh", ehPairIR)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	in := encode.NewInterner()
	ga := encodeFunc(in, m.FuncByName("guard_add"))
	gm := encodeFunc(in, m.FuncByName("guard_mul"))
	checkContract(t, "ga-vs-gm", ga, gm, false)

	// The matched invokes must land in one class: the alignment that drives
	// the EH merge depends on it.
	matched := false
	for i, e := range ga.Seq {
		if !e.IsLabel() && e.Inst.Op == ir.OpInvoke {
			for j, e2 := range gm.Seq {
				if !e2.IsLabel() && e2.Inst.Op == ir.OpInvoke && ga.Codes[i] == gm.Codes[j] {
					matched = true
				}
			}
		}
	}
	if !matched {
		t.Error("equivalent invokes with identical unwind pads did not share a code")
	}
}

const ehPairIR = `
declare void @throw()
declare void @log(i64)

define internal i64 @guard_add(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = add i64 %x, 1
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %x)
  ret i64 0
}

define internal i64 @guard_mul(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = mul i64 %x, 2
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @log(i64 %x)
  ret i64 0
}

define i64 @use_ga(i64 %x) {
entry:
  %r = call i64 @guard_add(i64 %x)
  ret i64 %r
}

define i64 @use_gm(i64 %x) {
entry:
  %r = call i64 @guard_mul(i64 %x)
  ret i64 %r
}
`

// TestContractWorkload sweeps the synthetic workload generator: every pair of
// functions in a clone-rich module must satisfy the contract. This is the
// broad-coverage arm — the generator emits arithmetic, memory, control flow
// and type variation over many shapes.
func TestContractWorkload(t *testing.T) {
	m := workload.Build(workload.Profile{
		Name: "enc", NumFuncs: 16, AvgSize: 25, MaxSize: 80,
		Identical: 0.2, TypeVar: 0.2, CFGVar: 0.2, Partial: 0.2,
		InternalFrac: 1.0, Seed: 42,
	})
	in := encode.NewInterner()
	var encs []*encode.Encoded
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		encs = append(encs, encodeFunc(in, f))
	}
	if len(encs) < 2 {
		t.Fatal("workload produced too few defined functions")
	}
	for i := 0; i < len(encs); i++ {
		for j := i; j < len(encs); j++ {
			checkContract(t, "workload", encs[i], encs[j], i == j)
		}
	}
}

// TestConcurrentEncode hammers one Interner from many goroutines (run under
// -race) and checks codes stay stable: encoding the same function twice must
// yield identical codes for every self-equivalent entry and the same Hash
// whenever all entries are self-equivalent.
func TestConcurrentEncode(t *testing.T) {
	m := workload.Build(workload.Profile{
		Name: "conc", NumFuncs: 12, AvgSize: 20, MaxSize: 60,
		Identical: 0.3, InternalFrac: 1.0, Seed: 7,
	})
	in := encode.NewInterner()
	var funcs []*ir.Func
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			funcs = append(funcs, f)
		}
	}
	results := make([][]*encode.Encoded, 4)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]*encode.Encoded, len(funcs))
			for i, f := range funcs {
				out[i] = encodeFunc(in, f)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		for i := range funcs {
			a, b := results[0][i], results[g][i]
			for k := range a.Codes {
				if a.Codes[k] != b.Codes[k] {
					// Fresh codes for never-equivalent entries legitimately
					// differ across encodings; anything else must not.
					if core.EntriesEquivalent(a.Seq[k], b.Seq[k]) {
						t.Fatalf("goroutine %d: self-equivalent entry %d of %s changed code",
							g, k, funcs[i].Name())
					}
				}
			}
		}
	}
}
