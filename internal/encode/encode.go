// Package encode interns linearization entries into compact equivalence-class
// codes so that alignment kernels can compare two entries with one integer
// comparison instead of a structural core.InstructionsEquivalent walk per
// dynamic-programming cell.
//
// The contract, enforced by the cross-check test against internal/core, is
//
//	code(a) == code(b)  ⇔  core.EntriesEquivalent(a, b)
//
// for entries drawn from different functions. Each entry is reduced to a
// canonical byte key mirroring the §III-D relation exactly — labels by kind
// (all normal labels share one class; landing labels by their pad's clause
// list), instructions by opcode, interned result-type identity, operand shape
// (label-ness plus operand type identity) and the per-opcode extras (compare
// predicates, alloca types, GEP index constants, switch case constants,
// landingpad clause lists, invoke unwind-pad clauses) — and identical keys
// intern to identical codes. Entries that §III-D declares never equivalent,
// even to themselves (phis; invokes whose unwind block does not start with a
// landingpad), receive a fresh code no other entry will ever share.
//
// Codes are only meaningful within one process: they intern *ir.Type pointer
// identities, which is safe because interned types are structurally unique
// and codes feed only equality comparisons, never persisted output. The
// alignment result they induce is therefore bit-identical to the closure
// kernels' regardless of the code values themselves.
package encode

import (
	"sync"

	"fmsa/internal/fingerprint"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// Encoded is a linearized function together with its equivalence-class codes:
// Codes[i] is the interned class of Seq[i], and Hash is a content hash of
// Codes usable as an alignment-memo key (hash equality is a hint only —
// consumers must verify Codes equality before trusting a hit).
type Encoded struct {
	Seq   []linearize.Entry
	Codes []uint32
	Hash  uint64
}

// Interner assigns equivalence-class codes. It is safe for concurrent use;
// all Encode calls against one Interner draw codes from the same table, so
// codes are comparable across functions (the property alignment relies on).
type Interner struct {
	mu      sync.Mutex
	codes   map[string]uint32
	typeIDs map[*ir.Type]uint32
	next    uint32
	scratch []byte
}

// NewInterner returns an empty interning table.
func NewInterner() *Interner {
	return &Interner{
		codes:   make(map[string]uint32),
		typeIDs: make(map[*ir.Type]uint32),
	}
}

// defaultInterner serves standalone core.Merge calls that did not wire an
// explicit table; exploration runs use a per-run Interner so the table's
// lifetime matches the module's.
var defaultInterner = NewInterner()

// Default returns the shared process-wide interning table.
func Default() *Interner { return defaultInterner }

// Encode computes the equivalence-class codes of a linearized sequence. The
// returned Encoded aliases seq (it does not copy the entries); Codes is
// freshly allocated.
func (t *Interner) Encode(seq []linearize.Entry) *Encoded {
	codes := make([]uint32, len(seq))
	t.mu.Lock()
	for i, e := range seq {
		codes[i] = t.codeOfLocked(e)
	}
	t.mu.Unlock()
	return &Encoded{Seq: seq, Codes: codes, Hash: fingerprint.HashUint32s(codes)}
}

// fresh allocates a code no key will ever map to again (used for
// never-equivalent entries) — callers hold t.mu.
func (t *Interner) fresh() uint32 {
	t.next++
	return t.next
}

// codeOfLocked builds the canonical key of one entry and interns it. The key
// layout is unambiguous for a fixed leading tag: every variable-length
// section is either length-prefixed (clause lists) or self-delimiting given
// the operand count already in the key (the GEP constant flags).
func (t *Interner) codeOfLocked(e linearize.Entry) uint32 {
	if e.IsLabel() {
		b := e.Block
		if !b.IsLandingBlock() {
			// All normal labels are mutually equivalent (§III-D).
			k := append(t.scratch[:0], 'L')
			t.scratch = k
			return t.intern(k)
		}
		k := append(t.scratch[:0], 'P')
		k = t.appendClauses(k, b.Insts[0].Clauses)
		t.scratch = k
		return t.intern(k)
	}

	in := e.Inst
	if in.Op == ir.OpPhi {
		// Phis are never equivalent, not even to themselves.
		return t.fresh()
	}
	if in.Op == ir.OpInvoke {
		lp := in.InvokeUnwind().Insts
		if len(lp) == 0 || lp[0].Op != ir.OpLandingPad {
			// landingPadsIdentical can never hold for this invoke, so it is
			// equivalent to nothing — itself included.
			return t.fresh()
		}
	}

	k := append(t.scratch[:0], 'I', byte(in.Op))
	k = t.appendType(k, in.Type())
	n := in.NumOperands()
	k = appendUint32(k, uint32(n))
	for i := 0; i < n; i++ {
		op := in.Operand(i)
		if _, isLabel := op.(*ir.Block); isLabel {
			k = append(k, 'B')
		} else {
			k = append(k, 'V')
			k = t.appendType(k, op.Type())
		}
	}
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp:
		k = append(k, byte(in.Pred))
	case ir.OpAlloca:
		k = t.appendType(k, in.Alloc)
	case ir.OpGEP:
		// Constant indices must be identical; their types are already in the
		// operand section above, so only const-ness and value remain.
		for i := 1; i < n; i++ {
			if c, ok := in.Operand(i).(*ir.ConstInt); ok {
				k = append(k, 'C')
				k = appendUint64(k, uint64(c.V))
			} else {
				k = append(k, 'x')
			}
		}
	case ir.OpSwitch:
		for i := 2; i < n; i += 2 {
			c := in.Operand(i).(*ir.ConstInt)
			k = appendUint64(k, uint64(c.V))
		}
	case ir.OpLandingPad:
		k = t.appendClauses(k, in.Clauses)
	case ir.OpInvoke:
		k = t.appendClauses(k, in.InvokeUnwind().Insts[0].Clauses)
	}
	t.scratch = k
	return t.intern(k)
}

// intern maps a finished key to its code, assigning the next code on first
// sight — callers hold t.mu. The map stores its own copy of the key bytes
// (string conversion), so the scratch buffer stays reusable.
func (t *Interner) intern(k []byte) uint32 {
	if c, ok := t.codes[string(k)]; ok {
		return c
	}
	c := t.fresh()
	t.codes[string(k)] = c
	return c
}

// appendType appends the interned id of a type. Types are interned in
// internal/ir (pointer equality ⇔ structural equality), so the pointer is the
// identity; the table just renames it to a stable small integer.
func (t *Interner) appendType(k []byte, ty *ir.Type) []byte {
	id, ok := t.typeIDs[ty]
	if !ok {
		id = uint32(len(t.typeIDs)) + 1
		t.typeIDs[ty] = id
	}
	return appendUint32(k, id)
}

// appendClauses appends a length-prefixed clause list.
func (t *Interner) appendClauses(k []byte, clauses []string) []byte {
	k = appendUint32(k, uint32(len(clauses)))
	for _, c := range clauses {
		k = appendUint32(k, uint32(len(c)))
		k = append(k, c...)
	}
	return k
}

func appendUint32(k []byte, v uint32) []byte {
	return append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(k []byte, v uint64) []byte {
	return append(k, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
