package fingerprint

// MinHash signatures for locality-sensitive candidate search. A function's
// signature summarizes its (opcode, type) shingle multiset: each instruction
// contributes one shingle keyed by its opcode and result type (alloca uses
// the allocated type), and repeated shingles contribute once per occurrence,
// so the expected fraction of equal lanes between two signatures estimates
// the weighted Jaccard index J = Σmin/Σmax of the two multisets. J is a
// monotone transform of the paper's similarity score restricted to joint
// (opcode, type) keys — s = J/(1+J) when the bounds coincide — so functions
// that rank highly under Similarity collide in many lanes.
//
// Determinism rules: lane seeds are fixed constants expanded from one
// splitmix64 chain, and type identity enters through the textual type key,
// never a pointer value. Signatures are therefore identical across runs,
// processes and worker counts, which the exploration pipeline's
// Workers-invariance requires.

import (
	"fmsa/internal/ir"
)

// SigLanes is the number of MinHash lanes in a Signature. More lanes sharpen
// the Jaccard estimate and give the banded index (internal/lsh) more
// bands/rows combinations to trade precision against recall.
const SigLanes = 128

// Signature is the fixed-width MinHash summary of one function.
type Signature [SigLanes]uint64

// minhashSeed roots the lane seed chain. Changing it changes every
// signature; it exists only to decorrelate lanes from the shingle hashes.
const minhashSeed = 0x66735f6d696e6821 // "fs_minh!"

var laneMul, laneXor [SigLanes]uint64

func init() {
	s := uint64(minhashSeed)
	for i := 0; i < SigLanes; i++ {
		s, laneMul[i] = splitmix64(s)
		laneMul[i] |= 1 // multiplicative constants must be odd
		s, laneXor[i] = splitmix64(s)
	}
}

// splitmix64 advances the seed and returns the next pseudo-random word
// (Steele, Lea, Flood — the generator java.util.SplittableRandom uses).
func splitmix64(seed uint64) (next, out uint64) {
	seed += 0x9e3779b97f4a7c15
	z := seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return seed, z ^ (z >> 31)
}

// mix64 finalizes one word to a well-distributed hash.
func mix64(x uint64) uint64 {
	_, out := splitmix64(x)
	return out
}

// hashString hashes a type key to 64 bits (FNV-1a), deterministically across
// processes.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// HashUint32s content-hashes a word sequence (FNV-1a over the little-endian
// bytes), deterministically across processes. It is the shared hash behind
// alignment-memo keys: equal sequences always hash equal, and unequal
// sequences collide only at FNV's 2⁻⁶⁴ rate — callers that cannot tolerate
// collisions verify element equality on hash hits.
func HashUint32s(ws []uint32) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, w := range ws {
		h ^= uint64(w & 0xff)
		h *= prime
		h ^= uint64((w >> 8) & 0xff)
		h *= prime
		h ^= uint64((w >> 16) & 0xff)
		h *= prime
		h ^= uint64(w >> 24)
		h *= prime
	}
	return h
}

// ComputeSignature builds the MinHash signature of a function definition.
// The cost is O(instructions × SigLanes); signatures are only computed when
// LSH ranking is enabled.
func ComputeSignature(f *ir.Func) *Signature {
	sig := &Signature{}
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	// Occurrence counters realize the multiset: the c-th copy of a shingle
	// hashes to its own element, so multiplicities shape the estimate.
	occ := make(map[uint64]uint64, 64)
	typeHash := make(map[*ir.Type]uint64, 16)
	f.Insts(func(in *ir.Inst) {
		t := in.Type()
		if in.Op == ir.OpAlloca {
			t = in.Alloc
		}
		th, ok := typeHash[t]
		if !ok {
			th = hashString(t.String())
			typeHash[t] = th
		}
		base := mix64(uint64(in.Op)*0x9e3779b97f4a7c15 ^ th)
		n := occ[base]
		occ[base] = n + 1
		elem := mix64(base ^ (n+1)*0xbf58476d1ce4e5b9)
		for lane := 0; lane < SigLanes; lane++ {
			h := (elem ^ laneXor[lane]) * laneMul[lane]
			h ^= h >> 33
			if h < sig[lane] {
				sig[lane] = h
			}
		}
	})
	return sig
}

// EstimateJaccard returns the fraction of equal lanes between two
// signatures, an unbiased estimate of the weighted Jaccard index of the two
// shingle multisets.
func EstimateJaccard(a, b *Signature) float64 {
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(SigLanes)
}
