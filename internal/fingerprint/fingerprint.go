// Package fingerprint implements the lightweight function summaries used by
// the ranking infrastructure (paper §IV): a map of instruction opcodes to
// their frequency plus the multiset of types manipulated by the function.
// Comparing two fingerprints yields an optimistic upper bound on how well
// the functions could merge, cheap enough to evaluate for every pair.
package fingerprint

import (
	"sort"

	"fmsa/internal/ir"
)

// Fingerprint summarizes one function for similarity ranking.
type Fingerprint struct {
	// OpFreq maps each opcode to its occurrence count.
	OpFreq [ir.NumOpcodes]int32
	// TypeFreq holds (type, count) pairs sorted by type identity for
	// linear-merge comparison.
	TypeFreq []TypeCount
	// Total is the instruction count.
	Total int32
}

// TypeCount is one entry of the type-frequency table.
type TypeCount struct {
	Type *ir.Type
	// Key is Type.String(), computed once at fingerprint construction: the
	// table is sorted and merged by textual key, never by pointer identity,
	// so distinct Type pointers with the same spelling still match.
	Key   string
	Count int32
}

// Compute builds the fingerprint of a function definition.
func Compute(f *ir.Func) *Fingerprint {
	fp := &Fingerprint{}
	types := map[*ir.Type]int32{}
	f.Insts(func(in *ir.Inst) {
		fp.OpFreq[in.Op]++
		fp.Total++
		t := in.Type()
		if in.Op == ir.OpAlloca {
			t = in.Alloc
		}
		if !t.IsVoid() {
			types[t]++
		}
	})
	fp.TypeFreq = make([]TypeCount, 0, len(types))
	for t, c := range types {
		fp.TypeFreq = append(fp.TypeFreq, TypeCount{Type: t, Key: t.String(), Count: c})
	}
	sort.Slice(fp.TypeFreq, func(i, j int) bool {
		return fp.TypeFreq[i].Key < fp.TypeFreq[j].Key
	})
	return fp
}

// upperBoundOps computes UB(f1, f2, Opcodes):
//
//	Σ min(freq(k,f1), freq(k,f2)) / Σ (freq(k,f1) + freq(k,f2))
//
// the best-case merge ratio if every same-opcode instruction pair matched.
func upperBoundOps(a, b *Fingerprint) float64 {
	var minSum, totSum int32
	for k := 0; k < int(ir.NumOpcodes); k++ {
		fa, fb := a.OpFreq[k], b.OpFreq[k]
		if fa < fb {
			minSum += fa
		} else {
			minSum += fb
		}
		totSum += fa + fb
	}
	if totSum == 0 {
		return 0
	}
	return float64(minSum) / float64(totSum)
}

// upperBoundTypes computes UB(f1, f2, Types), the type-based best case.
func upperBoundTypes(a, b *Fingerprint) float64 {
	var minSum, totSum int32
	i, j := 0, 0
	for i < len(a.TypeFreq) && j < len(b.TypeFreq) {
		ta, tb := a.TypeFreq[i], b.TypeFreq[j]
		switch {
		case ta.Key == tb.Key:
			if ta.Count < tb.Count {
				minSum += ta.Count
			} else {
				minSum += tb.Count
			}
			totSum += ta.Count + tb.Count
			i++
			j++
		case ta.Key < tb.Key:
			totSum += ta.Count
			i++
		default:
			totSum += tb.Count
			j++
		}
	}
	for ; i < len(a.TypeFreq); i++ {
		totSum += a.TypeFreq[i].Count
	}
	for ; j < len(b.TypeFreq); j++ {
		totSum += b.TypeFreq[j].Count
	}
	if totSum == 0 {
		return 0
	}
	return float64(minSum) / float64(totSum)
}

// Similarity returns s(f1, f2) = min(UB_opcodes, UB_types), a value in
// [0, 0.5]; identical functions score exactly 0.5 (paper §IV).
func Similarity(a, b *Fingerprint) float64 {
	return SimilarityFloor(a, b, 0)
}

// SimilarityFloor is Similarity for callers that only act on scores
// reaching floor: when the opcode bound alone falls below floor it is
// returned without merging the type tables (the dominant cost — a sorted
// string-keyed merge against the opcode pass's fixed array). The result
// then still bounds Similarity from above and still sits below floor, so
// any comparison against floor — or anything larger — is unchanged.
func SimilarityFloor(a, b *Fingerprint, floor float64) float64 {
	ops := upperBoundOps(a, b)
	if ops < floor {
		return ops
	}
	tys := upperBoundTypes(a, b)
	if tys < ops {
		return tys
	}
	return ops
}

// SimilarityUpperBound returns the size-ratio bound on Similarity(a, b):
// every per-key minimum is capped by the smaller instruction count, so
// s(a, b) ≤ min(Total_a, Total_b) / (Total_a + Total_b). The bound needs two
// integer reads, making it a cheap alignment-avoidance prefilter: when it
// already falls below a similarity floor the exact score cannot pass either.
func SimilarityUpperBound(a, b *Fingerprint) float64 {
	return SimilarityUpperBoundSized(a, b.Total)
}

// SimilarityUpperBoundSized is SimilarityUpperBound against a function
// known only by its instruction count — the identical arithmetic, so the
// two are interchangeable. Scans keep candidate counts in a dense array and
// avoid touching the candidate's fingerprint until the bound passes.
func SimilarityUpperBoundSized(a *Fingerprint, tb int32) float64 {
	tot := a.Total + tb
	if tot == 0 {
		return 0
	}
	return float64(min(a.Total, tb)) / float64(tot)
}
