package fingerprint

import (
	"testing"
	"testing/quick"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule("fp", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdenticalFunctionsScoreHalf(t *testing.T) {
	m := parse(t, `
define i32 @a(i32 %x) {
entry:
  %r = add i32 %x, 1
  %s = mul i32 %r, 2
  ret i32 %s
}

define i32 @b(i32 %x) {
entry:
  %r = add i32 %x, 5
  %s = mul i32 %r, 9
  ret i32 %s
}
`)
	fa := Compute(m.FuncByName("a"))
	fb := Compute(m.FuncByName("b"))
	if s := Similarity(fa, fb); s != 0.5 {
		t.Errorf("structurally identical functions score %v, want 0.5 (paper §IV)", s)
	}
	if s := Similarity(fa, fa); s != 0.5 {
		t.Errorf("self-similarity %v, want 0.5", s)
	}
}

func TestDisjointFunctionsScoreZero(t *testing.T) {
	m := parse(t, `
define i32 @ints(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define void @floats(f64 %x) {
entry:
  %r = fmul f64 %x, 2.0
  %s = fdiv f64 %r, 3.0
  %p = alloca f64
  store f64 %s, f64* %p
  ret void
}
`)
	fa := Compute(m.FuncByName("ints"))
	fb := Compute(m.FuncByName("floats"))
	s := Similarity(fa, fb)
	if s > 0.1 {
		t.Errorf("dissimilar functions score %v, want near 0", s)
	}
}

func TestSimilarityRange(t *testing.T) {
	// Property: 0 ≤ s ≤ 0.5 for arbitrary generated pairs, and s is
	// symmetric.
	f := func(seedA, seedB int64, szA, szB uint8) bool {
		m := ir.NewModule("q")
		fa := workload.Generate(m, workload.FuncSpec{
			Name: "a", Seed: seedA, Scalar: ir.I64(),
			NumParams: 2, Regions: int(szA%4) + 1, OpsPerBlock: int(szA%6) + 2,
		})
		fb := workload.Generate(m, workload.FuncSpec{
			Name: "b", Seed: seedB, Scalar: ir.F32(),
			NumParams: 1, Regions: int(szB%4) + 1, OpsPerBlock: int(szB%6) + 2,
		})
		pa, pb := Compute(fa), Compute(fb)
		s1 := Similarity(pa, pb)
		s2 := Similarity(pb, pa)
		return s1 >= 0 && s1 <= 0.5 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTypeUpperBoundRefinesOpcodeBound(t *testing.T) {
	// Same opcode histogram, disjoint types: the type bound must drag the
	// final score down (the refinement the paper motivates in §IV).
	m := parse(t, `
define i32 @ia(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  ret i32 %b
}

define i64 @ib(i64 %x) {
entry:
  %a = add i64 %x, 1
  %b = add i64 %a, 2
  ret i64 %b
}
`)
	fa := Compute(m.FuncByName("ia"))
	fb := Compute(m.FuncByName("ib"))
	if ops := upperBoundOps(fa, fb); ops != 0.5 {
		t.Errorf("opcode bound = %v, want 0.5", ops)
	}
	if tys := upperBoundTypes(fa, fb); tys != 0 {
		t.Errorf("type bound = %v, want 0", tys)
	}
	if s := Similarity(fa, fb); s != 0 {
		t.Errorf("similarity = %v, want 0 (min of the two bounds)", s)
	}
}

func TestFingerprintCounts(t *testing.T) {
	m := parse(t, `
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  %p = alloca i64
  ret i32 %b
}
`)
	fp := Compute(m.FuncByName("f"))
	if fp.Total != 4 {
		t.Errorf("Total = %d, want 4", fp.Total)
	}
	if fp.OpFreq[ir.OpAdd] != 2 || fp.OpFreq[ir.OpRet] != 1 || fp.OpFreq[ir.OpAlloca] != 1 {
		t.Errorf("opcode frequencies wrong: %v", fp.OpFreq)
	}
	// alloca contributes its allocated type (i64), adds contribute i32.
	var sawI64 bool
	for _, tc := range fp.TypeFreq {
		if tc.Type == ir.I64() {
			sawI64 = true
		}
	}
	if !sawI64 {
		t.Error("alloca's allocated type missing from type frequencies")
	}
}

func TestTypeMergeMatchesByKeyNotPointer(t *testing.T) {
	// Regression: two distinct *ir.Type pointers with the same textual form
	// must still match during the type-table merge. (The interner normally
	// guarantees pointer identity, but the merge must not depend on it: with
	// pointer comparison the pair fell into the mismatch branch and was never
	// counted, undercounting similarity.)
	ta := &ir.Type{Kind: ir.IntKind, Bits: 32}
	tb := &ir.Type{Kind: ir.IntKind, Bits: 32}
	if ta == tb || ta.String() != tb.String() {
		t.Fatalf("want distinct pointers with equal keys, got %p/%p %q/%q", ta, tb, ta, tb)
	}
	a := &Fingerprint{TypeFreq: []TypeCount{{Type: ta, Key: ta.String(), Count: 3}}}
	b := &Fingerprint{TypeFreq: []TypeCount{{Type: tb, Key: tb.String(), Count: 5}}}
	if got, want := upperBoundTypes(a, b), 3.0/8.0; got != want {
		t.Errorf("upperBoundTypes = %v, want %v (min 3 over total 8)", got, want)
	}
}

func TestComputePrecomputesSortedKeys(t *testing.T) {
	m := parse(t, `
define i64 @f(i32 %x, f64 %y) {
entry:
  %a = add i32 %x, 1
  %b = fadd f64 %y, 2.0
  %p = alloca [4 x i64]
  %c = zext i32 %a to i64
  ret i64 %c
}
`)
	fp := Compute(m.FuncByName("f"))
	for i, tc := range fp.TypeFreq {
		if tc.Key != tc.Type.String() {
			t.Errorf("entry %d: Key %q != Type.String() %q", i, tc.Key, tc.Type)
		}
		if i > 0 && fp.TypeFreq[i-1].Key >= tc.Key {
			t.Errorf("type table not strictly sorted by key: %q !< %q",
				fp.TypeFreq[i-1].Key, tc.Key)
		}
	}
}

func TestSimilarityUpperBoundDominatesSimilarity(t *testing.T) {
	f := func(seedA, seedB int64, szA, szB uint8) bool {
		m := ir.NewModule("ub")
		fa := workload.Generate(m, workload.FuncSpec{
			Name: "a", Seed: seedA, Scalar: ir.I32(),
			NumParams: 2, Regions: int(szA%4) + 1, OpsPerBlock: int(szA%6) + 2,
		})
		fb := workload.Generate(m, workload.FuncSpec{
			Name: "b", Seed: seedB, Scalar: ir.I64(),
			NumParams: 1, Regions: int(szB%4) + 1, OpsPerBlock: int(szB%6) + 2,
		})
		pa, pb := Compute(fa), Compute(fb)
		return SimilarityUpperBound(pa, pb) >= Similarity(pa, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	m := ir.NewModule("bench")
	fa := workload.Generate(m, workload.FuncSpec{
		Name: "a", Seed: 1, Scalar: ir.I64(), NumParams: 3, Regions: 6, OpsPerBlock: 10,
	})
	fb := workload.Generate(m, workload.FuncSpec{
		Name: "b", Seed: 2, Scalar: ir.F64(), NumParams: 2, Regions: 6, OpsPerBlock: 10,
	})
	pa, pb := Compute(fa), Compute(fb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Similarity(pa, pb)
	}
}
