package fingerprint

import (
	"math"
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func genPair(seedA, seedB int64) (*ir.Func, *ir.Func) {
	m := ir.NewModule("mh")
	fa := workload.Generate(m, workload.FuncSpec{
		Name: "a", Seed: seedA, Scalar: ir.I64(), NumParams: 2, Regions: 4, OpsPerBlock: 8,
	})
	fb := workload.Generate(m, workload.FuncSpec{
		Name: "b", Seed: seedB, Scalar: ir.F32(), NumParams: 3, Regions: 3, OpsPerBlock: 6,
	})
	return fa, fb
}

func TestSignatureDeterministic(t *testing.T) {
	fa, _ := genPair(3, 4)
	s1 := ComputeSignature(fa)
	s2 := ComputeSignature(fa)
	if *s1 != *s2 {
		t.Error("recomputed signature differs for the same function")
	}
	// A fresh, structurally identical module must reproduce it too: the
	// signature depends only on content, never on pointers or map order.
	fa2, _ := genPair(3, 4)
	if s3 := ComputeSignature(fa2); *s1 != *s3 {
		t.Error("signature differs across identical rebuilds")
	}
}

func TestSignatureSeparatesCloneFromStranger(t *testing.T) {
	m := ir.NewModule("mh")
	spec := workload.FuncSpec{
		Name: "orig", Seed: 11, Scalar: ir.I64(), NumParams: 2, Regions: 4, OpsPerBlock: 8,
	}
	orig := workload.Generate(m, spec)
	spec.Name = "clone"
	spec.ConstSalt += 3 // constants are invisible to (opcode, type) shingles
	clone := workload.Generate(m, spec)
	spec.Name = "stranger"
	spec.Seed = 999
	spec.Scalar = ir.F64()
	stranger := workload.Generate(m, spec)

	so, sc, ss := ComputeSignature(orig), ComputeSignature(clone), ComputeSignature(stranger)
	if j := EstimateJaccard(so, sc); j != 1 {
		t.Errorf("const-variant clone estimates J=%v, want 1 (identical shingles)", j)
	}
	if j := EstimateJaccard(so, ss); j > 0.8 {
		t.Errorf("unrelated function estimates J=%v, want clearly below the clone", j)
	}
}

func TestSignatureTracksJaccard(t *testing.T) {
	// The lane-agreement estimate should land near the true weighted Jaccard
	// of the shingle multisets. Compare against an exact computation on a
	// partial clone (a strict sub-multiset of its template).
	m := ir.NewModule("mh")
	spec := workload.FuncSpec{
		Name: "big", Seed: 21, Scalar: ir.I32(), NumParams: 2, Regions: 6, OpsPerBlock: 10,
	}
	big := workload.Generate(m, spec)
	spec.Name = "part"
	spec.DropMod = 5 // drop roughly every fifth instruction
	part := workload.Generate(m, spec)

	exact := exactWeightedJaccard(big, part)
	est := EstimateJaccard(ComputeSignature(big), ComputeSignature(part))
	if math.Abs(est-exact) > 0.15 {
		t.Errorf("estimate %v too far from exact weighted Jaccard %v", est, exact)
	}
}

// exactWeightedJaccard computes Σmin/Σmax over the (opcode, type) shingle
// multisets directly.
func exactWeightedJaccard(a, b *ir.Func) float64 {
	count := func(f *ir.Func) map[[2]string]int {
		c := map[[2]string]int{}
		f.Insts(func(in *ir.Inst) {
			t := in.Type()
			if in.Op == ir.OpAlloca {
				t = in.Alloc
			}
			c[[2]string{in.Op.String(), t.String()}]++
		})
		return c
	}
	ca, cb := count(a), count(b)
	var minSum, maxSum int
	for k, va := range ca {
		vb := cb[k]
		minSum += min(va, vb)
		maxSum += max(va, vb)
	}
	for k, vb := range cb {
		if _, ok := ca[k]; !ok {
			maxSum += vb
		}
	}
	if maxSum == 0 {
		return 0
	}
	return float64(minSum) / float64(maxSum)
}

func BenchmarkComputeSignature(b *testing.B) {
	m := ir.NewModule("mh")
	f := workload.Generate(m, workload.FuncSpec{
		Name: "f", Seed: 1, Scalar: ir.I64(), NumParams: 3, Regions: 6, OpsPerBlock: 10,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeSignature(f)
	}
}
