package passes

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule("p", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

const phiSrc = `
define i32 @pick(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %t, label %f
t:
  %ta = add i32 %a, 10
  br label %join
f:
  %fb = add i32 %b, 20
  br label %join
join:
  %p = phi i32 [ %ta, %t ], [ %fb, %f ]
  ret i32 %p
}
`

func TestDemotePhis(t *testing.T) {
	m := parse(t, phiSrc)
	f := m.FuncByName("pick")
	DemotePhis(f)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify after demotion: %v\n%s", err, ir.FormatModule(m))
	}
	f.Insts(func(in *ir.Inst) {
		if in.Op == ir.OpPhi {
			t.Error("phi survived demotion")
		}
	})
	// Semantics preserved.
	mc := interp.NewMachine(m)
	got, err := mc.Run("pick", 1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("pick(true,5,7) = %d, want 15", got)
	}
	got, err = mc.Run("pick", 0, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 27 {
		t.Errorf("pick(false,5,7) = %d, want 27", got)
	}
}

func TestDemotePhisLoop(t *testing.T) {
	m := parse(t, `
define i64 @sum(i64 %n) {
entry:
  br label %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i64 %acc, %i
  %i2 = add i64 %i, 1
  br label %head
done:
  ret i64 %acc
}
`)
	DemotePhisModule(m)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FormatModule(m))
	}
	mc := interp.NewMachine(m)
	got, err := mc.Run("sum", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 45 {
		t.Errorf("sum(10) = %d, want 45", got)
	}
}

func TestDCE(t *testing.T) {
	m := parse(t, `
define i32 @f(i32 %x) {
entry:
  %dead1 = add i32 %x, 1
  %dead2 = mul i32 %dead1, 2
  %live = add i32 %x, 5
  ret i32 %live
}
`)
	f := m.FuncByName("f")
	if n := DCE(f); n != 2 {
		t.Errorf("DCE removed %d, want 2 (chain of dead ops)", n)
	}
	if f.NumInsts() != 2 {
		t.Errorf("instructions after DCE = %d, want 2", f.NumInsts())
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := parse(t, `
declare i32 @effectful()

define void @f(i32* %p) {
entry:
  %r = call i32 @effectful()
  store i32 1, i32* %p
  ret void
}
`)
	if n := DCE(m.FuncByName("f")); n != 0 {
		t.Errorf("DCE removed %d side-effecting instructions", n)
	}
}

func TestSimplifyCFGConstantBranch(t *testing.T) {
	m := parse(t, `
define i32 @f() {
entry:
  br i1 true, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
`)
	f := m.FuncByName("f")
	if !SimplifyCFG(f) {
		t.Fatal("expected simplification")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks after simplify = %d, want 1", len(f.Blocks))
	}
	mc := interp.NewMachine(m)
	if got, _ := mc.Run("f"); got != 1 {
		t.Errorf("f() = %d, want 1", got)
	}
}

func TestSimplifyCFGForwarding(t *testing.T) {
	m := parse(t, `
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %fwd, label %other
fwd:
  br label %target
other:
  ret i32 2
target:
  ret i32 1
}
`)
	f := m.FuncByName("f")
	SimplifyCFG(f)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3 (forwarding block folded)", len(f.Blocks))
	}
	mc := interp.NewMachine(m)
	if got, _ := mc.Run("f", 1); got != 1 {
		t.Errorf("f(true) = %d, want 1", got)
	}
}

func TestSimplifyCFGConstSwitch(t *testing.T) {
	m := parse(t, `
define i32 @f() {
entry:
  switch i32 2, label %def [ i32 1, label %one i32 2, label %two ]
one:
  ret i32 10
two:
  ret i32 20
def:
  ret i32 0
}
`)
	f := m.FuncByName("f")
	SimplifyCFG(f)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	mc := interp.NewMachine(m)
	if got, _ := mc.Run("f"); got != 20 {
		t.Errorf("f() = %d, want 20", got)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(f.Blocks))
	}
}

func TestSimplifyCFGPreservesLoops(t *testing.T) {
	src := `
define i64 @spinsum(i64 %n) {
entry:
  %i = alloca i64
  store i64 0, i64* %i
  br label %head
head:
  %iv = load i64, i64* %i
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %iv2 = add i64 %iv, 1
  store i64 %iv2, i64* %i
  br label %head
done:
  ret i64 %iv
}
`
	m := parse(t, src)
	SimplifyCFG(m.FuncByName("spinsum"))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	mc := interp.NewMachine(m)
	if got, _ := mc.Run("spinsum", 5); got != 5 {
		t.Errorf("spinsum(5) = %d, want 5", got)
	}
}

func TestStripDeadFunctions(t *testing.T) {
	m := parse(t, `
define internal void @deadleaf() {
entry:
  ret void
}

define internal void @deadcaller() {
entry:
  call void @deadleaf()
  ret void
}

define internal i32 @live(i32 %x) {
entry:
  ret i32 %x
}

define i32 @root(i32 %x) {
entry:
  %r = call i32 @live(i32 %x)
  ret i32 %r
}
`)
	n := StripDeadFunctions(m)
	if n != 2 {
		t.Errorf("stripped %d, want 2 (dead chain)", n)
	}
	if m.FuncByName("live") == nil || m.FuncByName("root") == nil {
		t.Error("live functions must survive")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyCFGSkipsPhiRewrites(t *testing.T) {
	m := parse(t, phiSrc)
	f := m.FuncByName("pick")
	SimplifyCFG(f)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("simplify broke phi function: %v", err)
	}
}
