package passes

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/workload"
)

func TestCanonicalizeReordersIndependentOps(t *testing.T) {
	// Two blocks computing the same values in different orders must
	// canonicalize to identical instruction sequences.
	m := parse(t, `
define i64 @a(i64 %x, i64 %y) {
entry:
  %m = mul i64 %x, %y
  %s = add i64 %x, %y
  %r = xor i64 %m, %s
  ret i64 %r
}

define i64 @b(i64 %x, i64 %y) {
entry:
  %s = add i64 %x, %y
  %m = mul i64 %x, %y
  %r = xor i64 %m, %s
  ret i64 %r
}
`)
	fa, fb := m.FuncByName("a"), m.FuncByName("b")
	CanonicalizeOrderModule(m)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	opsOf := func(f *ir.Func) []ir.Opcode {
		var ops []ir.Opcode
		f.Insts(func(in *ir.Inst) { ops = append(ops, in.Op) })
		return ops
	}
	oa, ob := opsOf(fa), opsOf(fb)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("canonical orders differ: %v vs %v", oa, ob)
		}
	}
	mc := interp.NewMachine(m)
	va, _ := mc.Run("a", 6, 7)
	vb, _ := mc.Run("b", 6, 7)
	if va != vb || va != (42^13) {
		t.Errorf("results: a=%d b=%d, want %d", va, vb, 42^13)
	}
}

func TestCanonicalizePreservesMemoryOrder(t *testing.T) {
	m := parse(t, `
define i64 @f(i64* %p) {
entry:
  store i64 1, i64* %p
  %v1 = load i64, i64* %p
  store i64 2, i64* %p
  %v2 = load i64, i64* %p
  %r = add i64 %v1, %v2
  ret i64 %r
}
`)
	CanonicalizeOrder(m.FuncByName("f"))
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	mc := interp.NewMachine(m)
	buf, err := mc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run("f", buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("f() = %d, want 3 (store/load order must be preserved)", got)
	}
}

func TestCanonicalizePreservesSemanticsOnWorkload(t *testing.T) {
	p := workload.Profile{
		Name: "canon", NumFuncs: 15, AvgSize: 30, MaxSize: 90,
		TypeVar: 0.1, CFGVar: 0.1, InternalFrac: 0.5, Seed: 55,
	}
	run := func(canon bool) uint64 {
		m := workload.Build(p)
		if canon {
			CanonicalizeOrderModule(m)
			if err := ir.VerifyModule(m); err != nil {
				t.Fatalf("verify after canon: %v", err)
			}
		}
		mc := interp.NewMachine(m)
		workload.RegisterIntrinsics(mc)
		v, err := mc.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run(false) != run(true) {
		t.Error("canonicalization changed program behaviour")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	p := workload.Profile{
		Name: "idem", NumFuncs: 8, AvgSize: 25, MaxSize: 60,
		InternalFrac: 0.5, Seed: 77,
	}
	m := workload.Build(p)
	CanonicalizeOrderModule(m)
	text1 := ir.FormatModule(m)
	if CanonicalizeOrderModule(m) {
		t.Error("second canonicalization reported changes")
	}
	if ir.FormatModule(m) != text1 {
		t.Error("canonicalization not idempotent")
	}
}

func TestCanonicalizeSkipsTinyBlocks(t *testing.T) {
	m := parse(t, `
define void @tiny() {
entry:
  ret void
}
`)
	if CanonicalizeOrder(m.FuncByName("tiny")) {
		t.Error("nothing to reorder in a tiny block")
	}
}
