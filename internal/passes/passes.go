// Package passes provides the supporting transformations around function
// merging: φ-demotion (the paper's required pre-processing), register
// demotion, dead-code elimination, CFG simplification and dead-function
// stripping. Together they stand in for the "-Os"-style pipeline the paper
// wraps around its optimization (§III-A, Fig. 9).
package passes

import "fmsa/internal/ir"

// DemotePhis rewrites every φ-function in f into memory operations: an
// entry-block alloca, a store at the end of each incoming predecessor, and
// a load at the φ's position. The paper's merger assumes this normalization
// ("our current implementation assumes that the input functions have all
// their φ-functions demoted to memory operations", §III-A).
func DemotePhis(f *ir.Func) {
	if f.IsDecl() {
		return
	}
	var phis []*ir.Inst
	f.Insts(func(in *ir.Inst) {
		if in.Op == ir.OpPhi {
			phis = append(phis, in)
		}
	})
	if len(phis) == 0 {
		return
	}
	entry := f.Entry()
	anchor := entry.Insts[0]
	for _, phi := range phis {
		slot := ir.NewInst(ir.OpAlloca, ir.PointerTo(phi.Type()))
		slot.Alloc = phi.Type()
		entry.InsertBefore(slot, anchor)

		for i := 0; i < phi.NumPhiIncoming(); i++ {
			v, pred := phi.PhiIncoming(i)
			st := ir.NewInst(ir.OpStore, ir.Void(), v, slot)
			pred.InsertBefore(st, pred.Terminator())
		}

		ld := ir.NewInst(ir.OpLoad, phi.Type(), slot)
		phi.Parent().InsertBefore(ld, phi)
		ir.ReplaceAllUsesWith(phi, ld)
		phi.RemoveFromParent()
	}
}

// DemotePhisModule runs DemotePhis on every definition.
func DemotePhisModule(m *ir.Module) {
	for _, f := range m.Funcs {
		DemotePhis(f)
	}
}

// DCE removes instructions whose results are unused and whose execution has
// no side effects, iterating to a fixpoint. It returns the number of
// instructions removed.
func DCE(f *ir.Func) int {
	removed := 0
	for {
		var dead []*ir.Inst
		f.Insts(func(in *ir.Inst) {
			if in.Op.HasSideEffects() || in.IsTerminator() {
				return
			}
			if in.NumUses() == 0 {
				dead = append(dead, in)
			}
		})
		if len(dead) == 0 {
			return removed
		}
		for _, in := range dead {
			in.RemoveFromParent()
		}
		removed += len(dead)
	}
}

// DCEModule runs DCE on every definition and returns the total removed.
func DCEModule(m *ir.Module) int {
	total := 0
	for _, f := range m.Funcs {
		total += DCE(f)
	}
	return total
}

// SimplifyCFG performs lightweight control-flow cleanups on f:
//
//   - conditional branches and switches on constants become direct branches;
//   - unreachable blocks are deleted;
//   - blocks containing only an unconditional branch are forwarded;
//   - straight-line block pairs (single successor / single predecessor) are
//     merged.
//
// Functions containing φ-instructions only receive the unreachable-block
// cleanup (the other rewrites would need φ updates).
func SimplifyCFG(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	hasPhi := false
	f.Insts(func(in *ir.Inst) {
		if in.Op == ir.OpPhi {
			hasPhi = true
		}
	})
	for {
		any := false
		if !hasPhi {
			any = foldConstantBranches(f) || any
		}
		any = removeUnreachable(f) || any
		if !hasPhi {
			any = forwardTrivialBlocks(f) || any
			any = mergeStraightLine(f) || any
		}
		if !any {
			return changed
		}
		changed = true
	}
}

// SimplifyCFGModule runs SimplifyCFG over every definition.
func SimplifyCFGModule(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		changed = SimplifyCFG(f) || changed
	}
	return changed
}

func foldConstantBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch {
		case t.Op == ir.OpBr && t.NumOperands() == 3:
			c, ok := t.Operand(0).(*ir.ConstInt)
			if !ok {
				continue
			}
			dest := t.Operand(2)
			if c.V != 0 {
				dest = t.Operand(1)
			}
			nb := ir.NewInst(ir.OpBr, ir.Void(), dest)
			t.RemoveFromParent()
			b.Append(nb)
			changed = true
		case t.Op == ir.OpSwitch:
			c, ok := t.Operand(0).(*ir.ConstInt)
			if !ok {
				continue
			}
			dest := t.Operand(1)
			for i := 2; i < t.NumOperands(); i += 2 {
				cv := t.Operand(i).(*ir.ConstInt)
				if cv.V == c.V {
					dest = t.Operand(i + 1)
					break
				}
			}
			nb := ir.NewInst(ir.OpBr, ir.Void(), dest)
			t.RemoveFromParent()
			b.Append(nb)
			changed = true
		}
	}
	return changed
}

func removeUnreachable(f *ir.Func) bool {
	reach := map[*ir.Block]bool{}
	var mark func(b *ir.Block)
	mark = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Successors() {
			mark(s)
		}
	}
	mark(f.Entry())
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	for _, b := range dead {
		b.RemoveFromParent()
	}
	return len(dead) > 0
}

// forwardTrivialBlocks redirects edges through blocks that contain only an
// unconditional branch. The entry block and landing blocks are kept.
func forwardTrivialBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() || b.IsLandingBlock() {
			continue
		}
		if len(b.Insts) != 1 {
			continue
		}
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr || t.NumOperands() != 1 {
			continue
		}
		target := t.Operand(0).(*ir.Block)
		if target == b {
			continue // infinite self-loop; leave alone
		}
		// Redirect all branch uses of b to target.
		for _, u := range append([]ir.Use(nil), b.Uses()...) {
			if u.User == t {
				continue
			}
			u.User.SetOperand(u.Index, target)
		}
		changed = changed || true
	}
	if changed {
		removeUnreachable(f)
	}
	return changed
}

// mergeStraightLine merges b into its unique predecessor when that
// predecessor branches unconditionally and exclusively to b.
func mergeStraightLine(f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if b.Parent() == nil || b == f.Entry() || b.IsLandingBlock() {
			continue
		}
		preds := b.Preds()
		if len(preds) != 1 {
			continue
		}
		p := preds[0]
		if p == b {
			continue
		}
		pt := p.Terminator()
		if pt == nil || pt.Op != ir.OpBr || pt.NumOperands() != 1 {
			continue
		}
		if b.NumUses() != 1 {
			continue // referenced elsewhere (e.g. as a dispatch target)
		}
		pt.RemoveFromParent()
		// Move b's instructions into p.
		insts := append([]*ir.Inst(nil), b.Insts...)
		for _, in := range insts {
			moveInst(in, b, p)
		}
		b.RemoveFromParent()
		changed = true
	}
	return changed
}

// moveInst moves in from its current block to the end of dst, preserving
// operands and uses.
func moveInst(in *ir.Inst, src, dst *ir.Block) {
	for i, x := range src.Insts {
		if x == in {
			src.Insts = append(src.Insts[:i], src.Insts[i+1:]...)
			break
		}
	}
	in.ForceSetParent(nil)
	dst.Append(in)
}

// StripDeadFunctions removes internal functions that are never referenced.
// It returns the number of functions removed.
func StripDeadFunctions(m *ir.Module) int {
	removed := 0
	for {
		var dead []*ir.Func
		for _, f := range m.Funcs {
			if f.Linkage == ir.InternalLinkage && f.NumUses() == 0 && !f.IsDecl() {
				dead = append(dead, f)
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, f := range dead {
			m.RemoveFunc(f)
		}
		removed += len(dead)
	}
}
