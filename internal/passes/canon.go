package passes

import "fmsa/internal/ir"

// CanonicalizeOrder reorders the instructions inside every basic block of f
// into a canonical schedule: a topological sort of the block's dependence
// graph that breaks ties by (opcode, result type, operand shape) keys.
// Semantically equivalent blocks whose instructions merely appear in
// different orders become textually aligned, increasing the matches the
// sequence aligner can find — the instruction-reordering extension the
// paper leaves as future work (§VII).
//
// The schedule preserves:
//   - data dependences (an instruction follows its in-block operands);
//   - the relative order of all memory-touching and side-effecting
//     instructions (loads, stores, calls, invokes) — a conservative
//     memory model;
//   - the block terminator's final position and the leading position of
//     landingpads.
//
// It returns true if any block's order changed.
func CanonicalizeOrder(f *ir.Func) bool {
	if f.IsDecl() {
		return false
	}
	changed := false
	for _, b := range f.Blocks {
		if canonicalizeBlock(b) {
			changed = true
		}
	}
	return changed
}

// CanonicalizeOrderModule runs CanonicalizeOrder on every definition.
func CanonicalizeOrderModule(m *ir.Module) bool {
	changed := false
	for _, f := range m.Funcs {
		changed = CanonicalizeOrder(f) || changed
	}
	return changed
}

// orderClass returns true for instructions whose relative order must be
// preserved under the conservative memory model.
func orderClass(in *ir.Inst) bool {
	switch in.Op {
	case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpInvoke, ir.OpResume:
		return true
	}
	return in.Op.HasSideEffects()
}

// sortKey produces the canonical tie-breaking key of an instruction.
func sortKey(in *ir.Inst) string {
	key := in.Op.String() + "|" + in.Type().String()
	if in.Pred != ir.PredInvalid {
		key += "|" + in.Pred.String()
	}
	if in.Alloc != nil {
		key += "|" + in.Alloc.String()
	}
	for _, op := range in.Operands() {
		switch v := op.(type) {
		case *ir.ConstInt:
			key += "|#" + v.Ident()
		case *ir.ConstFloat:
			key += "|#" + v.Ident()
		default:
			key += "|%" + op.Type().String()
		}
	}
	return key
}

func canonicalizeBlock(b *ir.Block) bool {
	n := len(b.Insts)
	if n < 3 { // nothing reorderable besides the terminator
		return false
	}
	// The terminator stays last; a leading landingpad stays first.
	body := b.Insts[:n-1]
	start := 0
	if body[0].Op == ir.OpLandingPad || body[0].Op == ir.OpPhi {
		// Keep leading pads/phis pinned (phis must head the block).
		for start < len(body) && (body[start].Op == ir.OpLandingPad || body[start].Op == ir.OpPhi) {
			start++
		}
	}
	body = body[start:]
	if len(body) < 2 {
		return false
	}

	pos := make(map[*ir.Inst]int, len(body))
	for i, in := range body {
		pos[in] = i
	}

	// Dependence edges: preds[i] counts unscheduled prerequisites of
	// body[i]; succs[i] lists dependents.
	preds := make([]int, len(body))
	succs := make([][]int, len(body))
	addEdge := func(from, to int) {
		succs[from] = append(succs[from], to)
		preds[to]++
	}
	lastOrdered := -1
	for i, in := range body {
		for _, op := range in.Operands() {
			if def, ok := op.(*ir.Inst); ok {
				if j, inBlock := pos[def]; inBlock {
					addEdge(j, i)
				}
			}
		}
		if orderClass(in) {
			if lastOrdered >= 0 {
				addEdge(lastOrdered, i)
			}
			lastOrdered = i
		}
	}

	// Kahn's algorithm with a deterministic priority queue: among ready
	// instructions pick the smallest (key, original position).
	type cand struct {
		idx int
		key string
	}
	var ready []cand
	push := func(i int) {
		ready = append(ready, cand{idx: i, key: sortKey(body[i])})
	}
	for i := range body {
		if preds[i] == 0 {
			push(i)
		}
	}
	schedule := make([]*ir.Inst, 0, len(body))
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].key < ready[best].key ||
				(ready[i].key == ready[best].key && ready[i].idx < ready[best].idx) {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		schedule = append(schedule, body[c.idx])
		for _, s := range succs[c.idx] {
			preds[s]--
			if preds[s] == 0 {
				push(s)
			}
		}
	}
	if len(schedule) != len(body) {
		// Cycle would mean broken IR; leave the block untouched.
		return false
	}

	changed := false
	for i, in := range schedule {
		if body[i] != in {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	copy(body, schedule)
	return true
}
