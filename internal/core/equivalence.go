// Package core implements the paper's primary contribution: merging two
// arbitrary functions by sequence alignment (Rocha et al., CGO 2019).
//
// The pipeline is: linearize both functions (internal/linearize), align the
// linearized sequences (internal/align) under the instruction-equivalence
// relation defined here (§III-D), then generate the merged function in two
// passes over the aligned sequence (§III-E): matched columns are emitted
// once, unmatched columns are guarded by a function-identifier parameter,
// operand disagreements become select instructions (values) or dispatch
// blocks (labels), and parameter lists and return types are unified.
package core

import (
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// InstructionsEquivalent implements the instruction-equivalence relation of
// §III-D: two instructions are equivalent if their opcodes agree, their
// result types agree, and their operands pairwise agree in type. Operand
// *values* may differ — the merger reconciles them with selects. Additional
// per-opcode constraints keep code generation sound:
//
//   - comparisons must use the same predicate;
//   - allocas must allocate the same type;
//   - getelementptr index constants must be identical (different constants
//     would address different fields through the same shared instruction);
//   - switches must have identical case constants;
//   - calls and invokes must have identical callee function types;
//   - invokes must unwind to landing blocks with identical landingpads;
//   - landingpads must encode identical clause lists;
//   - phis are never equivalent (inputs must be phi-free, see DemotePhis).
func InstructionsEquivalent(a, b *ir.Inst) bool {
	if a.Op != b.Op {
		return false
	}
	if a.Type() != b.Type() {
		return false
	}
	if a.NumOperands() != b.NumOperands() {
		return false
	}
	for i := 0; i < a.NumOperands(); i++ {
		oa, ob := a.Operand(i), b.Operand(i)
		_, la := oa.(*ir.Block)
		_, lb := ob.(*ir.Block)
		if la != lb {
			return false
		}
		if !la && oa.Type() != ob.Type() {
			return false
		}
	}

	switch a.Op {
	case ir.OpPhi:
		return false
	case ir.OpICmp, ir.OpFCmp:
		return a.Pred == b.Pred
	case ir.OpAlloca:
		return a.Alloc == b.Alloc
	case ir.OpGEP:
		for i := 1; i < a.NumOperands(); i++ {
			ca, isCA := a.Operand(i).(*ir.ConstInt)
			cb, isCB := b.Operand(i).(*ir.ConstInt)
			if isCA != isCB {
				return false
			}
			if isCA && (ca.Type() != cb.Type() || ca.V != cb.V) {
				return false
			}
		}
		return true
	case ir.OpSwitch:
		for i := 2; i < a.NumOperands(); i += 2 {
			ca := a.Operand(i).(*ir.ConstInt)
			cb := b.Operand(i).(*ir.ConstInt)
			if ca.Type() != cb.Type() || ca.V != cb.V {
				return false
			}
		}
		return true
	case ir.OpLandingPad:
		return landingPadsIdentical(a, b)
	case ir.OpInvoke:
		lpa := a.InvokeUnwind().Insts
		lpb := b.InvokeUnwind().Insts
		if len(lpa) == 0 || len(lpb) == 0 {
			return false
		}
		return landingPadsIdentical(lpa[0], lpb[0])
	}
	return true
}

// landingPadsIdentical reports whether two landingpad instructions encode
// identical lists of exception and cleanup handlers (§III-D).
func landingPadsIdentical(a, b *ir.Inst) bool {
	if a.Op != ir.OpLandingPad || b.Op != ir.OpLandingPad {
		return false
	}
	if len(a.Clauses) != len(b.Clauses) {
		return false
	}
	for i := range a.Clauses {
		if a.Clauses[i] != b.Clauses[i] {
			return false
		}
	}
	return true
}

// LabelsEquivalent implements label equivalence (§III-D): labels of normal
// basic blocks are mutually equivalent; landing-block labels are equivalent
// only to landing-block labels with identical landingpad instructions.
func LabelsEquivalent(a, b *ir.Block) bool {
	la, lb := a.IsLandingBlock(), b.IsLandingBlock()
	if la != lb {
		return false
	}
	if !la {
		return true
	}
	return landingPadsIdentical(a.Insts[0], b.Insts[0])
}

// EntriesEquivalent lifts equivalence to linearization entries: labels match
// labels and instructions match instructions under their respective
// relations.
func EntriesEquivalent(a, b linearize.Entry) bool {
	if a.IsLabel() != b.IsLabel() {
		return false
	}
	if a.IsLabel() {
		return LabelsEquivalent(a.Block, b.Block)
	}
	return InstructionsEquivalent(a.Inst, b.Inst)
}
