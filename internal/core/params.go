package core

import (
	"sort"

	"fmsa/internal/align"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// paramPlan describes the merged parameter list (§III-E, Fig. 6).
type paramPlan struct {
	// types are the merged parameter types. When hasFuncID is true, slot 0
	// is the i1 function identifier.
	types []*ir.Type
	// hasFuncID records whether slot 0 is the function identifier.
	hasFuncID bool
	// map1[i] is the merged slot receiving f1's parameter i; likewise map2.
	map1, map2 []int
}

// buildParamPlan merges the parameter lists of f1 and f2. All of f1's
// parameters are appended first; each f2 parameter then either reuses an
// available f1 parameter of identical type or appends a new slot. When
// multiple candidates exist, pairs are chosen to maximise the number of
// aligned instruction pairs that use the two parameters in the same operand
// position — each such pair avoids one select instruction (§III-E).
func buildParamPlan(f1, f2 *ir.Func, seq1, seq2 []linearize.Entry, steps []align.Step, reuse bool) paramPlan {
	plan := paramPlan{hasFuncID: true}
	plan.types = append(plan.types, ir.Bool())
	plan.map1 = make([]int, len(f1.Params))
	plan.map2 = make([]int, len(f2.Params))

	for i, p := range f1.Params {
		plan.map1[i] = len(plan.types)
		plan.types = append(plan.types, p.Type())
	}

	if !reuse {
		for j, p := range f2.Params {
			plan.map2[j] = len(plan.types)
			plan.types = append(plan.types, p.Type())
		}
		return plan
	}

	votes := countParamVotes(f1, f2, seq1, seq2, steps)

	// Candidate pairs of identical type, ordered by descending vote count,
	// then by (i, j) for determinism.
	type cand struct {
		i, j, votes int
	}
	var cands []cand
	for j, p2 := range f2.Params {
		for i, p1 := range f1.Params {
			if p1.Type() == p2.Type() {
				cands = append(cands, cand{i: i, j: j, votes: votes[[2]int{i, j}]})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].votes != cands[b].votes {
			return cands[a].votes > cands[b].votes
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})

	used1 := make([]bool, len(f1.Params))
	assigned2 := make([]int, len(f2.Params))
	for j := range assigned2 {
		assigned2[j] = -1
	}
	for _, c := range cands {
		if used1[c.i] || assigned2[c.j] >= 0 {
			continue
		}
		used1[c.i] = true
		assigned2[c.j] = c.i
	}
	for j := range f2.Params {
		if i := assigned2[j]; i >= 0 {
			plan.map2[j] = plan.map1[i]
		} else {
			plan.map2[j] = len(plan.types)
			plan.types = append(plan.types, f2.Params[j].Type())
		}
	}
	return plan
}

// countParamVotes counts, for every (f1 param, f2 param) pair, how many
// aligned matched instruction pairs use them in the same operand position.
func countParamVotes(f1, f2 *ir.Func, seq1, seq2 []linearize.Entry, steps []align.Step) map[[2]int]int {
	votes := map[[2]int]int{}
	for _, s := range steps {
		if s.Op != align.OpMatch {
			continue
		}
		e1, e2 := seq1[s.I], seq2[s.J]
		if e1.IsLabel() || e2.IsLabel() {
			continue
		}
		i1, i2 := e1.Inst, e2.Inst
		n := i1.NumOperands()
		if i2.NumOperands() < n {
			n = i2.NumOperands()
		}
		for k := 0; k < n; k++ {
			p1, ok1 := i1.Operand(k).(*ir.Param)
			p2, ok2 := i2.Operand(k).(*ir.Param)
			if ok1 && ok2 && p1.Parent() == f1 && p2.Parent() == f2 && p1.Type() == p2.Type() {
				votes[[2]int{p1.Index, p2.Index}]++
			}
		}
	}
	return votes
}
