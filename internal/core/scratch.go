package core

import (
	"sync"

	"fmsa/internal/ir"
)

// mergerScratch pools the merger's side tables and clone storage across
// merge attempts: the two value maps, the dispatch-block memo, the operand
// second-pass column records and the instruction arena backing every shallow
// clone. Most speculative attempts are discarded (unprofitable), so reusing
// this state removes the bulk of code generation's allocation pressure.
//
// Ownership walks with the merge outcome: generate attaches the scratch to
// the Result it returns, Result.Discard releases it (arena slabs included —
// a discarded body is dead, so slab reuse is safe), and Result.Commit drops
// it after abandoning the arena slabs, because a committed body's
// instructions live in them. Error and panic paths inside generate release
// the scratch themselves.
type mergerScratch struct {
	vmap1, vmap2 map[ir.Value]ir.Value
	dispatch     map[[2]*ir.Block]*ir.Block
	cols         []colRec
	arena        ir.InstArena
}

var scratchPool = sync.Pool{
	New: func() any {
		return &mergerScratch{
			vmap1:    map[ir.Value]ir.Value{},
			vmap2:    map[ir.Value]ir.Value{},
			dispatch: map[[2]*ir.Block]*ir.Block{},
		}
	},
}

// scratchMapMax bounds the size of a map returned to the pool. Go's map
// clear walks the whole bucket table, which never shrinks, so one giant
// merge would tax every later putScratch with an O(high-water) sweep;
// past this size the map is dropped and reallocated small instead.
const scratchMapMax = 1 << 10

func recycleVmap(m map[ir.Value]ir.Value) map[ir.Value]ir.Value {
	if len(m) > scratchMapMax {
		return make(map[ir.Value]ir.Value)
	}
	clear(m)
	return m
}

// getScratch obtains a cleared scratch from the pool. The caller (or the
// Result it hands the scratch to) must release it with putScratch, or drop
// it permanently via dropScratchCommitted when the clones stay live.
func getScratch() *mergerScratch {
	s := scratchPool.Get().(*mergerScratch)
	return s
}

// putScratch clears the scratch and returns it to the pool, recycling the
// arena slabs. Only call when every instruction the arena handed out is
// dead (the discarded-merge path).
func putScratch(s *mergerScratch) {
	s.vmap1 = recycleVmap(s.vmap1)
	s.vmap2 = recycleVmap(s.vmap2)
	if len(s.dispatch) > scratchMapMax {
		s.dispatch = make(map[[2]*ir.Block]*ir.Block)
	} else {
		clear(s.dispatch)
	}
	clear(s.cols) // drop Inst references before pooling
	s.cols = s.cols[:0]
	s.arena.Reset()
	scratchPool.Put(s)
}

// dropScratchCommitted releases a committed merge's scratch: the maps and
// column records recycle, but the arena slabs are abandoned because the
// committed body's instructions live in them.
func dropScratchCommitted(s *mergerScratch) {
	s.arena.Release()
	putScratch(s)
}
