package core

import (
	"strings"
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/tti"
)

// mergeInModule parses src, merges the two named functions, commits the
// result and verifies the module.
func mergeInModule(t *testing.T, src, f1, f2 string) (*ir.Module, *Result) {
	t.Helper()
	m := ir.MustParseModule("test", src)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("pre-verify: %v", err)
	}
	res, err := Merge(m.FuncByName(f1), m.FuncByName(f2), DefaultOptions())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	res.Commit()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
	}
	return m, res
}

func TestMergeIdenticalFunctions(t *testing.T) {
	m, res := mergeInModule(t, identicalPairIR, "ctor_a", "ctor_b")
	if res.HasFuncID {
		t.Error("identical merge should drop func_id (paper §III-A)")
	}
	if res.Stats.GapColumns != 0 || res.Stats.Selects != 0 {
		t.Errorf("identical merge should have no gaps/selects: %+v", res.Stats)
	}
	// Both internal originals must be deleted outright.
	if m.FuncByName("ctor_a") != nil || m.FuncByName("ctor_b") != nil {
		t.Error("internal originals should be removed")
	}
	// Semantics preserved.
	mc := interp.NewMachine(m)
	for _, x := range []uint64{0, 5, 100} {
		got, err := mc.Run("call_a", x)
		if err != nil {
			t.Fatal(err)
		}
		want := (x + 10) * 3
		if got != want {
			t.Errorf("call_a(%d) = %d, want %d", x, got, want)
		}
		got, err = mc.Run("call_b", x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("call_b(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestMergeSphinxExample(t *testing.T) {
	// Fig. 1: different parameter types (f32 vs f64). The state of the art
	// cannot merge these; FMSA must.
	m, res := mergeInModule(t, sphinxIR, "glist_add_float32", "glist_add_float64")
	if !res.HasFuncID {
		t.Error("divergent merge must keep func_id")
	}
	if res.Stats.GapColumns == 0 {
		t.Error("expected divergent columns for the differing stores")
	}
	// Merged parameter list contains both float types plus shared i8*.
	sig := res.Merged.Sig()
	var f32s, f64s, ptrs int
	for _, pt := range sig.Fields {
		switch pt {
		case ir.F32():
			f32s++
		case ir.F64():
			f64s++
		case ir.PointerTo(ir.I8()):
			ptrs++
		}
	}
	if f32s != 1 || f64s != 1 || ptrs != 1 {
		t.Errorf("merged params = %s; want one f32, one f64, one shared i8*", sig)
	}

	// Differential test: build a list node through each path and inspect
	// the stored payload and next pointer.
	mc := interp.NewMachine(m)
	node32, err := mc.Run("use32", 0, uint64(interp.F32(2.5)))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := mc.ReadMem(node32, 4)
	if err != nil {
		t.Fatal(err)
	}
	bits := uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24
	if interp.ToF32(uint64(bits)) != 2.5 {
		t.Errorf("float32 payload = %v, want 2.5", interp.ToF32(uint64(bits)))
	}
	node64, err := mc.Run("use64", node32, interp.F64(6.25))
	if err != nil {
		t.Fatal(err)
	}
	next, err := mc.ReadMem(node64+8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var nv uint64
	for i := 7; i >= 0; i-- {
		nv = nv<<8 | uint64(next[i])
	}
	if nv != node32 {
		t.Errorf("next pointer = %#x, want %#x", nv, node32)
	}
}

// registerQuantumIntrinsics installs the externals used by the libquantum
// fixture. objcodeResult controls the early-return path of
// quantum_cond_phase.
func registerQuantumIntrinsics(mc *interp.Machine, objcodeResult uint64, decohered *int) {
	mc.Register("quantum_objcode_put", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return objcodeResult, nil
	})
	mc.Register("quantum_decohere", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		*decohered++
		return 0, nil
	})
}

// buildQuantumReg allocates a {i64, i64*, f64*} register with the given
// states and unit amplitudes, returning its address.
func buildQuantumReg(t *testing.T, mc *interp.Machine, states []uint64) uint64 {
	t.Helper()
	n := uint64(len(states))
	reg, err := mc.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.Alloc(8 * n)
	if err != nil {
		t.Fatal(err)
	}
	amps, err := mc.Alloc(8 * n)
	if err != nil {
		t.Fatal(err)
	}
	w64 := func(addr, v uint64) {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		if err := mc.WriteMem(addr, b); err != nil {
			t.Fatal(err)
		}
	}
	w64(reg, n)
	w64(reg+8, st)
	w64(reg+16, amps)
	for i, s := range states {
		w64(st+uint64(8*i), s)
		w64(amps+uint64(8*i), interp.F64(1.0))
	}
	return reg
}

func readAmp(t *testing.T, mc *interp.Machine, reg uint64, i int) float64 {
	t.Helper()
	b, err := mc.ReadMem(reg+16, 8)
	if err != nil {
		t.Fatal(err)
	}
	var amps uint64
	for k := 7; k >= 0; k-- {
		amps = amps<<8 | uint64(b[k])
	}
	b, err = mc.ReadMem(amps+uint64(8*i), 8)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for k := 7; k >= 0; k-- {
		v = v<<8 | uint64(b[k])
	}
	return interp.ToF64(v)
}

func TestMergeLibquantumExample(t *testing.T) {
	// Fig. 2: same signature, different CFGs (extra early-return block).
	runBoth := func(merged bool) (ampInv, ampFwd float64, decohered int) {
		m := ir.MustParseModule("q", libquantumIR)
		if merged {
			res, err := Merge(m.FuncByName("quantum_cond_phase_inv"), m.FuncByName("quantum_cond_phase"), DefaultOptions())
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			res.Commit()
			if err := ir.VerifyModule(m); err != nil {
				t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
			}
			if !res.HasFuncID {
				t.Error("CFG-divergent merge must keep func_id")
			}
		}
		// control=3, target=1: bits 3 and 1 must be set → state 0b1010.
		mc := interp.NewMachine(m)
		registerQuantumIntrinsics(mc, 0, &decohered)
		reg := buildQuantumReg(t, mc, []uint64{0b1010, 0b0010, 0b1000})
		if _, err := mc.Run("quantum_cond_phase_inv", 3, 1, reg); err != nil {
			t.Fatal(err)
		}
		ampInv = readAmp(t, mc, reg, 0)
		reg2 := buildQuantumReg(t, mc, []uint64{0b1010})
		if _, err := mc.Run("quantum_cond_phase", 3, 1, reg2); err != nil {
			t.Fatal(err)
		}
		ampFwd = readAmp(t, mc, reg2, 0)
		return
	}

	ai, af, dec := runBoth(false)
	mi, mf, mdec := runBoth(true)
	if ai != mi || af != mf {
		t.Errorf("merged semantics differ: orig (%v, %v), merged (%v, %v)", ai, af, mi, mf)
	}
	if dec != mdec {
		t.Errorf("decohere call count differs: %d vs %d", dec, mdec)
	}
	// The inv variant scales by -pi/4, the fwd by +pi/4.
	if ai >= 0 || af <= 0 {
		t.Errorf("expected opposite signs: inv %v, fwd %v", ai, af)
	}

	// Early-return path of the fwd variant.
	m := ir.MustParseModule("q", libquantumIR)
	res, err := Merge(m.FuncByName("quantum_cond_phase_inv"), m.FuncByName("quantum_cond_phase"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	decohered := 0
	mc := interp.NewMachine(m)
	registerQuantumIntrinsics(mc, 1, &decohered) // objcode_put returns true
	reg := buildQuantumReg(t, mc, []uint64{0b1010})
	if _, err := mc.Run("quantum_cond_phase", 3, 1, reg); err != nil {
		t.Fatal(err)
	}
	if decohered != 0 {
		t.Error("early return must skip decohere")
	}
	if got := readAmp(t, mc, reg, 0); got != 1.0 {
		t.Errorf("early return must not touch amplitudes, got %v", got)
	}
}

func TestMergeDifferentReturnTypes(t *testing.T) {
	m, res := mergeInModule(t, retMixIR, "geti", "getf")
	if res.Merged.ReturnType() != ir.I64() {
		t.Errorf("merged return type = %s, want i64 container", res.Merged.ReturnType())
	}
	mc := interp.NewMachine(m)
	got, err := mc.Run("usei", 41)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("usei(41) = %d, want 42", got)
	}
	gotf, err := mc.Run("usef", interp.F64(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if interp.ToF64(gotf) != 3.5 {
		t.Errorf("usef(2.5) = %v, want 3.5", interp.ToF64(gotf))
	}
}

func TestMergeVoidWithValue(t *testing.T) {
	m, res := mergeInModule(t, voidMixIR, "bump", "bumpget")
	if res.Merged.ReturnType() != ir.I64() {
		t.Errorf("merged return type = %s, want i64", res.Merged.ReturnType())
	}
	mc := interp.NewMachine(m)
	if _, err := mc.Run("useb", 5); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Run("usebg", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("acc after bump(5); bumpget(7) = %d, want 12", got)
	}
}

func TestMergeExceptionHandling(t *testing.T) {
	m, res := mergeInModule(t, ehPairIR, "guard_add", "guard_mul")
	if !res.HasFuncID {
		t.Error("expected func_id")
	}
	for _, throwing := range []bool{false, true} {
		mc := interp.NewMachine(m)
		var logged []uint64
		mc.Register("log", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
			logged = append(logged, args[0])
			return 0, nil
		})
		mc.Register("throw", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
			if throwing {
				return 0, interp.ErrUnwind
			}
			return 0, nil
		})
		ga, err := mc.Run("use_ga", 10)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := mc.Run("use_gm", 10)
		if err != nil {
			t.Fatal(err)
		}
		if throwing {
			if ga != 0 || gm != 0 {
				t.Errorf("throwing: got (%d, %d), want (0, 0)", ga, gm)
			}
			if len(logged) != 2 {
				t.Errorf("throwing: log called %d times, want 2", len(logged))
			}
		} else {
			if ga != 11 || gm != 20 {
				t.Errorf("normal: got (%d, %d), want (11, 20)", ga, gm)
			}
			if len(logged) != 0 {
				t.Errorf("normal: log called %d times, want 0", len(logged))
			}
		}
	}
}

func TestMergeRejectsBadInputs(t *testing.T) {
	m := ir.MustParseModule("bad", `
declare void @ext()

define internal void @a() {
entry:
  ret void
}

define internal void @withphi(i1 %c) {
entry:
  br i1 %c, label %x, label %y
x:
  br label %j
y:
  br label %j
j:
  %p = phi i32 [ 1, %x ], [ 2, %y ]
  ret void
}
`)
	a := m.FuncByName("a")
	if _, err := Merge(a, a, DefaultOptions()); err == nil {
		t.Error("self-merge must fail")
	}
	if _, err := Merge(a, m.FuncByName("ext"), DefaultOptions()); err == nil {
		t.Error("merging a declaration must fail")
	}
	if _, err := Merge(a, m.FuncByName("withphi"), DefaultOptions()); err == nil {
		t.Error("merging phi-bearing function must fail")
	}
	other := ir.MustParseModule("other", `
define internal void @b() {
entry:
  ret void
}
`)
	if _, err := Merge(a, other.FuncByName("b"), DefaultOptions()); err == nil {
		t.Error("cross-module merge must fail")
	}
}

func TestExternalLinkageKeepsThunk(t *testing.T) {
	src := strings.ReplaceAll(identicalPairIR, "define internal i32 @ctor_a", "define i32 @ctor_a")
	m, _ := mergeInModule(t, src, "ctor_a", "ctor_b")
	a := m.FuncByName("ctor_a")
	if a == nil {
		t.Fatal("external ctor_a must survive as a thunk")
	}
	if a.IsDecl() || a.NumInsts() > 3 {
		t.Errorf("ctor_a should be a small thunk, has %d insts", a.NumInsts())
	}
	// The thunk must still compute the right value.
	mc := interp.NewMachine(m)
	got, err := mc.Run("ctor_a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 33 {
		t.Errorf("thunk ctor_a(1) = %d, want 33", got)
	}
}

func TestProfitability(t *testing.T) {
	// Identical functions: merging must be profitable on both targets.
	m := ir.MustParseModule("p", identicalPairIR)
	res, err := Merge(m.FuncByName("ctor_a"), m.FuncByName("ctor_b"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range tti.Targets() {
		if p := res.Profit(tgt); p <= 0 {
			t.Errorf("identical merge unprofitable on %s: %d", tgt.Name(), p)
		}
	}
	res.Discard()

	// Completely dissimilar functions with live call sites: merging must be
	// unprofitable (the widened call sites and guarded bodies outweigh the
	// single saved function overhead).
	m2 := ir.MustParseModule("p2", `
define internal i64 @ints(i64 %a, i64 %b) {
entry:
  %x = mul i64 %a, %b
  %y = add i64 %x, %a
  %z = xor i64 %y, %b
  %w = lshr i64 %z, 3
  ret i64 %w
}

define internal f64 @floats(f64 %a, f64 %b) {
entry:
  %x = fmul f64 %a, %b
  %y = fadd f64 %x, %a
  %z = fdiv f64 %y, %b
  %w = fsub f64 %z, %a
  ret f64 %w
}

define i64 @ci(i64 %a) {
entry:
  %r1 = call i64 @ints(i64 %a, i64 3)
  %r2 = call i64 @ints(i64 %r1, i64 5)
  ret i64 %r2
}

define f64 @cf(f64 %a) {
entry:
  %r1 = call f64 @floats(f64 %a, f64 3.0)
  %r2 = call f64 @floats(f64 %r1, f64 5.0)
  ret f64 %r2
}
`)
	res2, err := Merge(m2.FuncByName("ints"), m2.FuncByName("floats"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p := res2.Profit(tti.X86{}); p > 0 {
		t.Errorf("dissimilar merge should be unprofitable, got profit %d", p)
	}
	res2.Discard()
}

func TestStatsAccounting(t *testing.T) {
	m := ir.MustParseModule("s", sphinxIR)
	res, err := Merge(m.FuncByName("glist_add_float32"), m.FuncByName("glist_add_float64"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Discard()
	st := res.Stats
	if st.Len1 == 0 || st.Len2 == 0 {
		t.Error("lengths not recorded")
	}
	if st.MatchedColumns+st.GapColumns < st.Len1 || st.MatchedColumns+st.GapColumns < st.Len2 {
		t.Error("column counts inconsistent with sequence lengths")
	}
	if !st.HasFuncID {
		t.Error("HasFuncID should be set")
	}
}

func TestParamReuseSharesParameters(t *testing.T) {
	m := ir.MustParseModule("pr", sphinxIR)
	f1, f2 := m.FuncByName("glist_add_float32"), m.FuncByName("glist_add_float64")

	optsOn := DefaultOptions()
	resOn, err := Merge(f1, f2, optsOn)
	if err != nil {
		t.Fatal(err)
	}
	nOn := len(resOn.Merged.Params)
	resOn.Discard()

	optsOff := DefaultOptions()
	optsOff.ReuseParams = false
	resOff, err := Merge(f1, f2, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	nOff := len(resOff.Merged.Params)
	resOff.Discard()

	if nOn >= nOff {
		t.Errorf("param reuse should shrink the list: reuse=%d, no-reuse=%d", nOn, nOff)
	}
}

func TestCommutativeOperandReordering(t *testing.T) {
	// g's add has its operands swapped; commutativity-aware matching should
	// avoid selects entirely.
	src := `
define internal i32 @f(i32 %a, i32 %b) {
entry:
  %x = mul i32 %a, %b
  %r = add i32 %x, %a
  ret i32 %r
}

define internal i32 @g(i32 %a, i32 %b) {
entry:
  %x = mul i32 %a, %b
  %r = add i32 %a, %x
  ret i32 %r
}

define i32 @cf(i32 %a, i32 %b) {
entry:
  %r = call i32 @f(i32 %a, i32 %b)
  ret i32 %r
}

define i32 @cg(i32 %a, i32 %b) {
entry:
  %r = call i32 @g(i32 %a, i32 %b)
  ret i32 %r
}
`
	m, res := mergeInModule(t, src, "f", "g")
	if res.Stats.Selects != 0 {
		t.Errorf("commutative reordering should avoid selects, got %d", res.Stats.Selects)
	}
	mc := interp.NewMachine(m)
	for _, fn := range []string{"cf", "cg"} {
		got, err := mc.Run(fn, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != 15 {
			t.Errorf("%s(3,4) = %d, want 15", fn, got)
		}
	}
}

func TestMergeDifferentConstantsUsesSelect(t *testing.T) {
	src := `
define internal i64 @scale10(i64 %x) {
entry:
  %r = mul i64 %x, 10
  ret i64 %r
}

define internal i64 @scale100(i64 %x) {
entry:
  %r = mul i64 %x, 100
  ret i64 %r
}

define i64 @c10(i64 %x) {
entry:
  %r = call i64 @scale10(i64 %x)
  ret i64 %r
}

define i64 @c100(i64 %x) {
entry:
  %r = call i64 @scale100(i64 %x)
  ret i64 %r
}
`
	m, res := mergeInModule(t, src, "scale10", "scale100")
	if res.Stats.Selects == 0 {
		t.Error("differing constants require a select")
	}
	mc := interp.NewMachine(m)
	got, err := mc.Run("c10", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Errorf("c10(7) = %d, want 70", got)
	}
	got, err = mc.Run("c100", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 700 {
		t.Errorf("c100(7) = %d, want 700", got)
	}
}

func TestMergedCallsOtherFunctions(t *testing.T) {
	// Matched calls to different callees of the same type must become an
	// indirect call through a select.
	src := `
define internal i64 @h1(i64 %x) {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

define internal i64 @h2(i64 %x) {
entry:
  %r = add i64 %x, 2
  ret i64 %r
}

define internal i64 @w1(i64 %x) {
entry:
  %y = mul i64 %x, 3
  %r = call i64 @h1(i64 %y)
  ret i64 %r
}

define internal i64 @w2(i64 %x) {
entry:
  %y = mul i64 %x, 3
  %r = call i64 @h2(i64 %y)
  ret i64 %r
}

define i64 @cw1(i64 %x) {
entry:
  %r = call i64 @w1(i64 %x)
  ret i64 %r
}

define i64 @cw2(i64 %x) {
entry:
  %r = call i64 @w2(i64 %x)
  ret i64 %r
}
`
	m, _ := mergeInModule(t, src, "w1", "w2")
	mc := interp.NewMachine(m)
	got, err := mc.Run("cw1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("cw1(5) = %d, want 16", got)
	}
	got, err = mc.Run("cw2", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Errorf("cw2(5) = %d, want 17", got)
	}
}

func TestEquivalenceRelation(t *testing.T) {
	m := ir.MustParseModule("eq", `
define void @f(i32 %a, i64* %p, f64 %x) {
entry:
  %add1 = add i32 %a, 1
  %add2 = add i32 %a, 2
  %add64 = add i64 5, 6
  %cmp1 = icmp slt i32 %a, 0
  %cmp2 = icmp sgt i32 %a, 0
  %al1 = alloca i32
  %al2 = alloca i64
  %fa = fadd f64 %x, %x
  ret void
}
`)
	f := m.FuncByName("f")
	get := map[string]*ir.Inst{}
	f.Insts(func(in *ir.Inst) {
		if in.Name() != "" {
			get[in.Name()] = in
		}
	})
	if !InstructionsEquivalent(get["add1"], get["add2"]) {
		t.Error("adds with different constants should be equivalent")
	}
	if InstructionsEquivalent(get["add1"], get["add64"]) {
		t.Error("adds of different widths must not be equivalent")
	}
	if InstructionsEquivalent(get["cmp1"], get["cmp2"]) {
		t.Error("different predicates must not be equivalent")
	}
	if InstructionsEquivalent(get["al1"], get["al2"]) {
		t.Error("different alloca types must not be equivalent")
	}
	if InstructionsEquivalent(get["add1"], get["fa"]) {
		t.Error("int and float ops must not be equivalent")
	}
	if !InstructionsEquivalent(get["add1"], get["add1"]) {
		t.Error("instruction must be equivalent to itself")
	}
}
