package core

import (
	"testing"

	"fmsa/internal/align"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// planFor merges the parameter lists of two parsed functions using the real
// alignment, returning the plan.
func planFor(t *testing.T, src, n1, n2 string, reuse bool) (paramPlan, *ir.Func, *ir.Func) {
	t.Helper()
	m := ir.MustParseModule("pp", src)
	f1, f2 := m.FuncByName(n1), m.FuncByName(n2)
	seq1 := linearize.Linearize(f1)
	seq2 := linearize.Linearize(f2)
	eq := func(i, j int) bool { return EntriesEquivalent(seq1[i], seq2[j]) }
	steps := align.DecomposeMismatches(align.Align(len(seq1), len(seq2), eq, align.DefaultScoring))
	return buildParamPlan(f1, f2, seq1, seq2, steps, reuse), f1, f2
}

func TestParamPlanFig6Shape(t *testing.T) {
	// Fig. 6's example: F1(i1, i32, i32*, f32, double/f64) merged with
	// F2(f32, f64, i32, i32*): shared types are reused, the union plus the
	// func_id covers both.
	src := `
define void @f1(i1 %a, i32 %b, i32* %c, f32 %d, f64 %e) {
entry:
  ret void
}

define void @f2(f32 %p, f64 %q, i32 %r, i32* %s) {
entry:
  ret void
}
`
	plan, f1, f2 := planFor(t, src, "f1", "f2", true)
	// func_id + all five of f1's params; every f2 param reuses one.
	if len(plan.types) != 6 {
		t.Fatalf("merged param count = %d, want 6 (Fig. 6)", len(plan.types))
	}
	if plan.types[0] != ir.Bool() || !plan.hasFuncID {
		t.Error("slot 0 must be the i1 func_id")
	}
	// Mappings must be type correct and within range.
	for i, p := range f1.Params {
		if plan.types[plan.map1[i]] != p.Type() {
			t.Errorf("f1 param %d mapped to wrong type", i)
		}
	}
	for j, p := range f2.Params {
		if plan.types[plan.map2[j]] != p.Type() {
			t.Errorf("f2 param %d mapped to wrong type", j)
		}
	}
	// No two f2 params may share a slot.
	seen := map[int]bool{}
	for _, s := range plan.map2 {
		if seen[s] {
			t.Error("two f2 parameters mapped to the same slot")
		}
		seen[s] = true
	}
}

func TestParamPlanNoReuse(t *testing.T) {
	src := `
define void @a(i64 %x, i64 %y) {
entry:
  ret void
}

define void @b(i64 %p, i64 %q) {
entry:
  ret void
}
`
	plan, _, _ := planFor(t, src, "a", "b", false)
	if len(plan.types) != 5 { // func_id + 2 + 2
		t.Errorf("no-reuse param count = %d, want 5", len(plan.types))
	}
	plan2, _, _ := planFor(t, src, "a", "b", true)
	if len(plan2.types) != 3 { // func_id + 2 shared
		t.Errorf("reuse param count = %d, want 3", len(plan2.types))
	}
}

func TestParamPlanVotesChoosePairing(t *testing.T) {
	// f1 uses %x in the add; f2 uses its SECOND param in the matching add.
	// Vote-driven pairing must map f2.%q onto f1.%x so the matched add
	// needs no select.
	src := `
define i64 @u1(i64 %x, i64 %y) {
entry:
  %r = add i64 %x, 1
  %s = mul i64 %y, %y
  %t2 = xor i64 %r, %s
  ret i64 %t2
}

define i64 @u2(i64 %p, i64 %q) {
entry:
  %r = add i64 %q, 1
  %s = mul i64 %p, %p
  %t2 = xor i64 %r, %s
  ret i64 %t2
}
`
	plan, _, _ := planFor(t, src, "u1", "u2", true)
	// f2's %q (index 1) should share the slot of f1's %x (index 0).
	if plan.map2[1] != plan.map1[0] {
		t.Errorf("vote-driven pairing failed: map1=%v map2=%v", plan.map1, plan.map2)
	}
	if plan.map2[0] != plan.map1[1] {
		t.Errorf("complementary pairing failed: map1=%v map2=%v", plan.map1, plan.map2)
	}
}

func TestParamPlanMixedTypes(t *testing.T) {
	src := `
define void @m1(f32 %a, i64 %b) {
entry:
  ret void
}

define void @m2(f64 %c, i64 %d) {
entry:
  ret void
}
`
	plan, _, _ := planFor(t, src, "m1", "m2", true)
	// func_id + f32 + i64 (shared) + f64.
	if len(plan.types) != 4 {
		t.Errorf("param count = %d, want 4", len(plan.types))
	}
	var f32s, f64s, i64s int
	for _, ty := range plan.types[1:] {
		switch ty {
		case ir.F32():
			f32s++
		case ir.F64():
			f64s++
		case ir.I64():
			i64s++
		}
	}
	if f32s != 1 || f64s != 1 || i64s != 1 {
		t.Errorf("merged types wrong: %v", plan.types)
	}
}
