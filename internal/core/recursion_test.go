package core

import (
	"testing"

	"fmsa/internal/interp"
	"fmsa/internal/ir"
)

// TestMergeMutuallyCallingFunctions merges a pair where one function calls
// the other: after commit, the cross-call inside the merged body must be
// rewritten into a self-call of the merged function.
func TestMergeMutuallyCallingFunctions(t *testing.T) {
	src := `
define internal i64 @halve(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %done, label %rec
rec:
  %h = sdiv i64 %n, 2
  %r = call i64 @halve3(i64 %h)
  %r1 = add i64 %r, 1
  ret i64 %r1
done:
  ret i64 0
}

define internal i64 @halve3(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %done, label %rec
rec:
  %h = sdiv i64 %n, 3
  %r = call i64 @halve(i64 %h)
  %r1 = add i64 %r, 1
  ret i64 %r1
done:
  ret i64 0
}

define i64 @drive(i64 %n) {
entry:
  %a = call i64 @halve(i64 %n)
  %b = call i64 @halve3(i64 %n)
  %s = add i64 %a, %b
  ret i64 %s
}
`
	ref := ir.MustParseModule("rec", src)
	opt := ir.MustParseModule("rec", src)
	res, err := Merge(opt.FuncByName("halve"), opt.FuncByName("halve3"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	if err := ir.VerifyModule(opt); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(opt))
	}
	// The matched cross-calls become an indirect call through a select of
	// the two function pointers, so the originals are address-taken and
	// must survive as thunks (the paper's §III-A removal restriction).
	for _, name := range []string{"halve", "halve3"} {
		f := opt.FuncByName(name)
		if f == nil {
			t.Fatalf("%s should survive as a thunk (address taken by select)", name)
		}
		if f.NumInsts() > 3 {
			t.Errorf("%s should be a thunk, has %d instructions", name, f.NumInsts())
		}
	}

	for _, n := range []uint64{0, 1, 5, 100, 12345} {
		mcRef := interp.NewMachine(ref)
		want, err := mcRef.Run("drive", n)
		if err != nil {
			t.Fatal(err)
		}
		mcOpt := interp.NewMachine(opt)
		got, err := mcOpt.Run("drive", n)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Errorf("drive(%d): original %d, merged %d", n, want, got)
		}
	}
}

// TestMergeSelfRecursive merges two self-recursive clones.
func TestMergeSelfRecursive(t *testing.T) {
	src := `
define internal i64 @fact(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %p = mul i64 %r, %n
  ret i64 %p
}

define internal i64 @sumto(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @sumto(i64 %n1)
  %p = add i64 %r, %n
  ret i64 %p
}

define i64 @drive(i64 %n) {
entry:
  %a = call i64 @fact(i64 %n)
  %b = call i64 @sumto(i64 %n)
  %s = add i64 %a, %b
  ret i64 %s
}
`
	ref := ir.MustParseModule("self", src)
	opt := ir.MustParseModule("self", src)
	res, err := Merge(opt.FuncByName("fact"), opt.FuncByName("sumto"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	if err := ir.VerifyModule(opt); err != nil {
		t.Fatalf("post-verify: %v", err)
	}
	for _, n := range []uint64{1, 2, 5, 10} {
		mcRef := interp.NewMachine(ref)
		want, _ := mcRef.Run("drive", n)
		mcOpt := interp.NewMachine(opt)
		got, err := mcOpt.Run("drive", n)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Errorf("drive(%d): original %d, merged %d", n, want, got)
		}
	}
}

// TestMergeRejectsAggregateReturnMix: differing aggregate return types are
// unsupported and must be reported, not miscompiled.
func TestMergeRejectsAggregateReturnMix(t *testing.T) {
	t.Skip("aggregate returns are not producible in the textual IR; mergeReturnTypes is unit-tested below")
}

func TestMergeReturnTypesTable(t *testing.T) {
	cases := []struct {
		a, b, want *ir.Type
		err        bool
	}{
		{ir.I32(), ir.I32(), ir.I32(), false},
		{ir.Void(), ir.Void(), ir.Void(), false},
		{ir.Void(), ir.F64(), ir.F64(), false},
		{ir.I32(), ir.F32(), ir.I32(), false}, // same width: bitcast base
		{ir.I32(), ir.F64(), ir.I64(), false}, // container
		{ir.PointerTo(ir.I8()), ir.I32(), ir.I64(), false},
		{ir.StructOf(ir.I32()), ir.I32(), nil, true},
		{ir.ArrayOf(2, ir.I32()), ir.Void(), ir.ArrayOf(2, ir.I32()), false}, // void absorbs
		{ir.StructOf(ir.I32()), ir.StructOf(ir.I32()), ir.StructOf(ir.I32()), false},
	}
	for _, c := range cases {
		got, err := mergeReturnTypes(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("mergeReturnTypes(%s, %s): expected error", c.a, c.b)
			}
			continue
		}
		if err != nil {
			t.Errorf("mergeReturnTypes(%s, %s): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("mergeReturnTypes(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}
