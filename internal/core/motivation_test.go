package core

import (
	"testing"

	"fmsa/internal/ir"
	"fmsa/internal/tti"
)

// pairReduction merges two functions and returns the percent reduction in
// cost-model size of the pair itself (§II quotes 18% for Fig. 1 and 23%
// for Fig. 2 in machine instructions).
func pairReduction(t *testing.T, src, n1, n2 string, target tti.Target) float64 {
	t.Helper()
	m := ir.MustParseModule("mot", src)
	f1, f2 := m.FuncByName(n1), m.FuncByName(n2)
	before := tti.FuncSize(target, f1) + tti.FuncSize(target, f2)
	res, err := Merge(f1, f2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := tti.FuncSize(target, res.Merged)
	res.Discard()
	return 100 * float64(before-after) / float64(before)
}

// TestMotivationFig1Reduction measures the §II claim on the sphinx pair:
// merging alone (ignoring thunk bookkeeping) removes a double-digit
// percentage of the pair's code.
func TestMotivationFig1Reduction(t *testing.T) {
	for _, tgt := range tti.Targets() {
		red := pairReduction(t, sphinxIR, "glist_add_float32", "glist_add_float64", tgt)
		t.Logf("%s: Fig. 1 pair reduction %.1f%% (paper: 18%% on Intel)", tgt.Name(), red)
		if red < 10 || red > 50 {
			t.Errorf("%s: Fig. 1 pair reduction %.1f%% outside plausible band", tgt.Name(), red)
		}
	}
}

// TestMotivationFig2Reduction measures the §II claim on the libquantum
// pair.
func TestMotivationFig2Reduction(t *testing.T) {
	for _, tgt := range tti.Targets() {
		red := pairReduction(t, libquantumIR, "quantum_cond_phase_inv", "quantum_cond_phase", tgt)
		t.Logf("%s: Fig. 2 pair reduction %.1f%% (paper: 23%% on Intel)", tgt.Name(), red)
		if red < 15 || red > 55 {
			t.Errorf("%s: Fig. 2 pair reduction %.1f%% outside plausible band", tgt.Name(), red)
		}
	}
}
