package core

import (
	"fmt"

	"fmsa/internal/ir"
)

// mergeReturnTypes computes the return type of the merged function (§III-E).
// Identical types are kept; if one side is void the other type wins; scalar
// types of equal width share a bitcast-compatible base; any remaining scalar
// combination is funnelled through i64, which every modelled scalar fits in
// losslessly. Differing aggregate returns are not supported.
func mergeReturnTypes(t1, t2 *ir.Type) (*ir.Type, error) {
	switch {
	case t1 == t2:
		return t1, nil
	case t1.IsVoid():
		return t2, nil
	case t2.IsVoid():
		return t1, nil
	case t1.IsAggregate() || t2.IsAggregate():
		return nil, fmt.Errorf("cannot merge aggregate return types %s and %s", t1, t2)
	case ir.LosslesslyBitcastable(t1, t2):
		return t1, nil
	default:
		return ir.I64(), nil
	}
}

// convertToRet emits instructions before pos converting v to the merged
// return type ret. The conversion is lossless and reversed exactly by
// convertFromRet.
func convertToRet(v ir.Value, ret *ir.Type, insertBlock *ir.Block, pos *ir.Inst) ir.Value {
	t := v.Type()
	if t == ret {
		return v
	}
	emit := func(in *ir.Inst) *ir.Inst {
		insertBlock.InsertBefore(in, pos)
		return in
	}
	if ir.LosslesslyBitcastable(t, ret) {
		return emit(ir.NewInst(ir.OpBitCast, ret, v))
	}
	// Widening path into an integer container (ret is i64 by construction).
	if !ret.IsInt() {
		panic(fmt.Sprintf("core: unexpected merged return type %s", ret))
	}
	switch {
	case t.IsInt():
		return emit(ir.NewInst(ir.OpZExt, ret, v))
	case t.IsFloat():
		asInt := emit(ir.NewInst(ir.OpBitCast, ir.Int(t.Bits), v))
		if t.Bits == ret.Bits {
			return asInt
		}
		return emit(ir.NewInst(ir.OpZExt, ret, asInt))
	case t.IsPointer():
		return emit(ir.NewInst(ir.OpPtrToInt, ret, v))
	default:
		panic(fmt.Sprintf("core: cannot convert %s to return type %s", t, ret))
	}
}

// emitFn places a freshly created instruction somewhere and returns it.
type emitFn func(*ir.Inst) *ir.Inst

// appendEmit returns an emitFn appending to the end of bd's block.
func appendEmit(bd *ir.Builder) emitFn {
	return func(in *ir.Inst) *ir.Inst {
		bd.Block().Append(in)
		return in
	}
}

// convertFromRet emits instructions (through emit) converting a
// merged-return value v back to the original return type want. It is the
// exact inverse of convertToRet.
func convertFromRet(emit emitFn, v ir.Value, want *ir.Type) ir.Value {
	t := v.Type()
	if t == want {
		return v
	}
	if ir.LosslesslyBitcastable(t, want) {
		return emit(ir.NewInst(ir.OpBitCast, want, v))
	}
	if !t.IsInt() {
		panic(fmt.Sprintf("core: cannot unwrap return %s to %s", t, want))
	}
	switch {
	case want.IsInt():
		return emit(ir.NewInst(ir.OpTrunc, want, v))
	case want.IsFloat():
		narrow := v
		if want.Bits < t.Bits {
			narrow = emit(ir.NewInst(ir.OpTrunc, ir.Int(want.Bits), v))
		}
		return emit(ir.NewInst(ir.OpBitCast, want, narrow))
	case want.IsPointer():
		return emit(ir.NewInst(ir.OpIntToPtr, want, v))
	default:
		panic(fmt.Sprintf("core: cannot unwrap return %s to %s", t, want))
	}
}
