package core

import (
	"fmt"
	"time"

	"fmsa/internal/align"
	"fmsa/internal/encode"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
	"fmsa/internal/passes"
)

// Result is the outcome of merging two functions.
type Result struct {
	// Merged is the generated function. It is detached: callers decide
	// whether to commit it to the module (see Commit) or discard it (see
	// Discard) after evaluating profitability.
	Merged *ir.Func
	// F1 and F2 are the original functions, identified by func_id values
	// true and false respectively.
	F1, F2 *ir.Func
	// ParamMap1[i] is the merged parameter slot receiving F1's argument i;
	// likewise ParamMap2. Slot 0 is the function identifier when HasFuncID.
	ParamMap1, ParamMap2 []int
	// HasFuncID reports whether Merged takes the function-identifier
	// parameter in slot 0.
	HasFuncID bool
	// Stats describes the merge.
	Stats Stats

	// scratch is the pooled merger state (value maps, dispatch memo, clone
	// arena) retained until the caller decides the merge's fate: Discard
	// recycles it, Commit drops it (see mergerScratch).
	scratch *mergerScratch
}

// Merge merges two functions of the same module by sequence alignment
// (§III). The returned merged function is detached from the module; use
// Result.Commit to install it and rewrite/erase the originals, or
// Result.Discard to abandon it.
//
// Requirements: both functions must be definitions in the same module,
// non-variadic, and phi-free (run passes.DemotePhis first). Functions with
// differing aggregate return types are rejected.
func Merge(f1, f2 *ir.Func, opts Options) (*Result, error) {
	if f1 == f2 {
		return nil, fmt.Errorf("cannot merge %s with itself", f1.Ident())
	}
	if f1.Parent() == nil || f1.Parent() != f2.Parent() {
		return nil, fmt.Errorf("functions must belong to the same module")
	}
	if f1.IsDecl() || f2.IsDecl() {
		return nil, fmt.Errorf("cannot merge declarations")
	}
	if f1.Sig().Variadic || f2.Sig().Variadic {
		return nil, fmt.Errorf("cannot merge variadic functions")
	}
	if err := checkPhiFree(f1); err != nil {
		return nil, err
	}
	if err := checkPhiFree(f2); err != nil {
		return nil, err
	}
	retTy, err := mergeReturnTypes(f1.ReturnType(), f2.ReturnType())
	if err != nil {
		return nil, err
	}
	if opts.Align == nil {
		opts.Align = align.Align
	}

	// Step 1: linearization (§III-B), through the provider cache when the
	// caller wired one. Owned (inline-linearized) sequences are scratch,
	// recycled through the package pool once code generation is done;
	// borrowed cache entries are left untouched.
	tLin := time.Now()
	enc1, own1 := obtainSeq(f1, &opts)
	enc2, own2 := obtainSeq(f2, &opts)
	seq1, seq2 := enc1.Seq, enc2.Seq
	if opts.Timings != nil {
		opts.Timings.AddLinearize(time.Since(tLin))
	}

	// Step 2: sequence alignment (§III-C) — the coded integer kernel when
	// both sequences carry equivalence codes, the EqFunc closure walk
	// otherwise; both produce bit-identical steps. Mismatch columns are then
	// decomposed into gap pairs so that every column is either an exact
	// match or code unique to one function.
	tAlign := time.Now()
	steps := alignSeqs(enc1, enc2, &opts)
	steps = align.DecomposeMismatches(steps)
	steps = normalizePads(steps, seq1, seq2)
	if opts.Timings != nil {
		opts.Timings.AddAlign(time.Since(tAlign))
	}
	tGen := time.Now()
	defer func() {
		if opts.Timings != nil {
			opts.Timings.AddCodeGen(time.Since(tGen))
		}
	}()

	// Pre-codegen profitability bounding (bound.go): when the admissible
	// bound proves the pair cannot clear the profit threshold, skip code
	// generation — the exact model would reject the merge anyway. Accounted
	// to the CodeGen phase: it replaces code-generation work.
	// The parameter plan is needed ahead of code generation: the bound's
	// arity and operand-divergence floors reuse the exact slot assignment.
	plan := buildParamPlan(f1, f2, seq1, seq2, steps, opts.ReuseParams)

	auditBound, haveBound := 0, false
	if opts.Prune != nil {
		bound, ok := profitUpperBound(f1, f2, seq1, seq2, steps, &plan, opts.Prune)
		pruned := ok && opts.BoundAudit == nil && bound <= opts.Prune.MinProfit
		if opts.Timings != nil {
			opts.Timings.CountBound(pruned)
		}
		if pruned {
			if own1 {
				linearize.Recycle(seq1)
			}
			if own2 {
				linearize.Recycle(seq2)
			}
			return nil, ErrHopeless
		}
		auditBound, haveBound = bound, ok
	}

	// Step 3: code generation (§III-E).
	res, err := generate(f1, f2, seq1, seq2, steps, plan, retTy, opts)
	if own1 {
		linearize.Recycle(seq1)
	}
	if own2 {
		linearize.Recycle(seq2)
	}
	if err == nil && haveBound && opts.BoundAudit != nil {
		exact := res.ProfitWithStatsMemo(opts.Prune.Target, opts.Prune.S1, opts.Prune.S2, opts.Prune.Costs)
		opts.BoundAudit(f1, f2, auditBound, exact)
	}
	return res, err
}

// obtainSeq resolves one function's linearization (and, on the coded path,
// its equivalence-code encoding): from the provider cache when wired and
// warm, inline otherwise. The boolean reports ownership — inline sequences
// are the merge's scratch to recycle, cache entries are borrowed.
func obtainSeq(f *ir.Func, opts *Options) (*encode.Encoded, bool) {
	// The provider counts its own hits and misses (Timings.CountSeqCache):
	// a compute-on-miss provider returns non-nil either way, so counting
	// here would misread every miss as a hit.
	if opts.SeqProvider != nil {
		if enc := opts.SeqProvider(f); enc != nil {
			return enc, false
		}
	}
	seq := linearize.LinearizeOrder(f, opts.Order)
	if opts.AlignCoded == nil {
		return &encode.Encoded{Seq: seq}, true
	}
	in := opts.Interner
	if in == nil {
		in = encode.Default()
	}
	return in.Encode(seq), true
}

// alignSeqs runs the alignment kernel: the coded fast path (with optional
// memoization) when both encodings carry codes, the closure path otherwise.
func alignSeqs(enc1, enc2 *encode.Encoded, opts *Options) []align.Step {
	if opts.AlignCoded != nil && enc1.Codes != nil && enc2.Codes != nil {
		if opts.AlignMemo != nil {
			if steps, ok := opts.AlignMemo.Lookup(enc1, enc2); ok {
				if opts.Timings != nil {
					opts.Timings.CountAlignMemo(true)
				}
				return steps
			}
			if opts.Timings != nil {
				opts.Timings.CountAlignMemo(false)
			}
		}
		steps := opts.AlignCoded(enc1.Codes, enc2.Codes, opts.Scoring)
		if opts.Timings != nil {
			opts.Timings.AddAlignCells(int64(len(enc1.Codes)) * int64(len(enc2.Codes)))
		}
		if opts.AlignMemo != nil {
			opts.AlignMemo.Store(enc1, enc2, steps)
		}
		return steps
	}
	seq1, seq2 := enc1.Seq, enc2.Seq
	eq := func(i, j int) bool { return EntriesEquivalent(seq1[i], seq2[j]) }
	steps := opts.Align(len(seq1), len(seq2), eq, opts.Scoring)
	if opts.Timings != nil {
		opts.Timings.AddAlignCells(int64(len(seq1)) * int64(len(seq2)))
	}
	return steps
}

// generate runs code generation with a panic boundary: an internal
// invariant violation on one pathological pair becomes an error (the
// exploration framework skips the pair) instead of aborting the whole
// module optimization.
func generate(f1, f2 *ir.Func, seq1, seq2 []linearize.Entry, steps []align.Step,
	plan paramPlan, retTy *ir.Type, opts Options) (res *Result, err error) {

	sc := getScratch()
	m := &merger{
		f1: f1, f2: f2,
		seq1: seq1, seq2: seq2,
		steps: steps,
		plan:  plan,
		retTy: retTy,
		sc:    sc,
	}
	defer func() {
		if r := recover(); r != nil {
			if m.fn != nil {
				m.fn.DropBody()
			}
			putScratch(sc)
			res, err = nil, fmt.Errorf("merging %s with %s: %v", f1.Ident(), f2.Ident(), r)
		}
	}()
	name := fmt.Sprintf("%s.%s.%s", opts.NamePrefix, f1.Name(), f2.Name())
	if err := m.run(name); err != nil {
		if m.fn != nil {
			m.fn.DropBody()
		}
		putScratch(sc)
		return nil, err
	}

	res = &Result{
		Merged:    m.fn,
		F1:        f1,
		F2:        f2,
		ParamMap1: plan.map1,
		ParamMap2: plan.map2,
		HasFuncID: true,
		Stats:     m.stats,
	}
	res.scratch = sc
	res.Stats.Len1, res.Stats.Len2 = len(seq1), len(seq2)

	// If the functions turned out to be identical (no divergent code, no
	// operand selects), the function identifier is unused: drop it,
	// emulating identical-function merging (§III-A).
	if m.fn.Params[0].NumUses() == 0 && res.Stats.GapColumns == 0 {
		res.dropFuncID()
	}
	res.Stats.HasFuncID = res.HasFuncID
	return res, nil
}

func checkPhiFree(f *ir.Func) error {
	var bad bool
	f.Insts(func(in *ir.Inst) {
		if in.Op == ir.OpPhi {
			bad = true
		}
	})
	if bad {
		return fmt.Errorf("%s contains phi instructions; run DemotePhis first", f.Ident())
	}
	return nil
}

// Discard abandons a merged function that was never committed, releasing
// its references to module symbols and recycling the merger's pooled side
// tables and clone storage — after DropBody every arena-allocated clone is
// dead, so nothing retained by the scratch can reach the discarded body.
func (r *Result) Discard() {
	r.Merged.DropBody()
	if r.scratch != nil {
		putScratch(r.scratch)
		r.scratch = nil
	}
}

// dropFuncID rebuilds the merged function without the unused func_id
// parameter.
func (r *Result) dropFuncID() {
	old := r.Merged
	sig := old.Sig()
	nf := ir.NewFunc(old.Name(), ir.FuncOf(sig.Ret, sig.Fields[1:]...))
	vmap := map[ir.Value]ir.Value{}
	for i := 1; i < len(old.Params); i++ {
		nf.Params[i-1].SetName(old.Params[i].Name())
		vmap[old.Params[i]] = nf.Params[i-1]
	}
	ir.CloneBody(old, nf, vmap)
	old.DropBody()
	r.Merged = nf
	r.HasFuncID = false
	for i := range r.ParamMap1 {
		r.ParamMap1[i]--
	}
	for i := range r.ParamMap2 {
		r.ParamMap2[i]--
	}
}

// normalizePads rewrites the alignment so that every matched pair of
// landing-block labels is immediately followed by a matched column for
// their landingpad instructions. The aligner is free to emit co-optimal
// alignments that gap the two (identical) pads individually; code
// generation would then split the shared landing block with a func_id
// branch ahead of the pad, which is invalid (§III-D requires the pad to be
// the first instruction of its block).
func normalizePads(steps []align.Step, seq1, seq2 []linearize.Entry) []align.Step {
	pairs := map[[2]int]bool{} // (i, j) pad-entry pairs to force-match
	skip1 := map[int]bool{}
	skip2 := map[int]bool{}
	for _, s := range steps {
		if s.Op != align.OpMatch || !seq1[s.I].IsLabel() {
			continue
		}
		if !seq1[s.I].Block.IsLandingBlock() {
			continue
		}
		// Label equivalence guarantees seq2[s.J] is a landing label too;
		// each landing block's first instruction is its pad.
		pi, pj := s.I+1, s.J+1
		pairs[[2]int{pi, pj}] = true
		skip1[pi] = true
		skip2[pj] = true
	}
	if len(pairs) == 0 {
		return steps
	}
	out := make([]align.Step, 0, len(steps))
	for _, s := range steps {
		switch s.Op {
		case align.OpMatch:
			if seq1[s.I].IsLabel() && seq1[s.I].Block.IsLandingBlock() {
				out = append(out, s,
					align.Step{Op: align.OpMatch, I: s.I + 1, J: s.J + 1})
				continue
			}
			p1, p2 := skip1[s.I], skip2[s.J]
			switch {
			case p1 && p2:
				// Both pads are re-emitted right after their own labels;
				// whether or not they were partners, drop this column.
			case p1:
				out = append(out, align.Step{Op: align.OpGapB, I: -1, J: s.J})
			case p2:
				out = append(out, align.Step{Op: align.OpGapA, I: s.I, J: -1})
			default:
				out = append(out, s)
			}
		case align.OpGapA:
			if !skip1[s.I] {
				out = append(out, s)
			}
		case align.OpGapB:
			if !skip2[s.J] {
				out = append(out, s)
			}
		}
	}
	return out
}

// colRec records one instruction column for the second (operand) pass.
type colRec struct {
	mi     *ir.Inst // merged instruction (cloned, operands empty)
	i1, i2 *ir.Inst // source instructions (nil on the gap side)
}

// merger carries the state of one merge code generation. The value maps,
// dispatch memo, column records and clone arena live in the pooled scratch
// (see mergerScratch) so discarded attempts recycle them wholesale.
type merger struct {
	f1, f2     *ir.Func
	seq1, seq2 []linearize.Entry
	steps      []align.Step
	plan       paramPlan
	retTy      *ir.Type

	fn    *ir.Func
	entry *ir.Block
	// cur1 and cur2 are the blocks currently receiving code for each side.
	// They are equal inside a merged (matched) region.
	cur1, cur2 *ir.Block
	sc         *mergerScratch
	stats      Stats
}

func (m *merger) funcID() ir.Value { return m.fn.Params[0] }

// run executes both code-generation passes (§III-E).
func (m *merger) run(name string) error {
	types := m.plan.types
	m.fn = ir.NewFunc(name, ir.FuncOf(m.retTy, types...))
	m.fn.Linkage = ir.InternalLinkage
	m.fn.Params[0].SetName("func_id")
	m.nameParams()
	m.entry = m.fn.NewBlockIn("entry")

	if err := m.passOne(); err != nil {
		return err
	}

	// Terminate the dispatch entry block.
	e1 := m.sc.vmap1[m.f1.Entry()].(*ir.Block)
	e2 := m.sc.vmap2[m.f2.Entry()].(*ir.Block)
	bd := ir.NewBuilder(m.entry)
	if e1 == e2 {
		bd.Br(e1)
	} else {
		bd.CondBr(m.funcID(), e1, e2)
	}

	if err := m.passTwo(); err != nil {
		return err
	}
	m.demoteNonDominated()
	// Clean the scaffolding the two-pass construction leaves behind
	// (forwarding blocks, straight-line splits) before the cost model
	// sizes the function.
	passes.SimplifyCFG(m.fn)
	return nil
}

// nameParams gives merged parameters readable names derived from the
// originals.
func (m *merger) nameParams() {
	for i, p := range m.f1.Params {
		mp := m.fn.Params[m.plan.map1[i]]
		if p.Name() != "" {
			mp.SetName(p.Name())
		}
	}
	for j, p := range m.f2.Params {
		mp := m.fn.Params[m.plan.map2[j]]
		if mp.Name() == "" && p.Name() != "" {
			mp.SetName(p.Name())
		}
	}
}

// passOne walks the aligned columns creating blocks and (operand-less)
// instruction clones, inserting func_id diamonds at divergence points.
func (m *merger) passOne() error {
	for _, s := range m.steps {
		switch s.Op {
		case align.OpMatch:
			e1, e2 := m.seq1[s.I], m.seq2[s.J]
			if e1.IsLabel() {
				m.matchLabel(e1.Block, e2.Block)
			} else {
				// A matched landingpad is only representable when its
				// labels were matched too; otherwise demote the column to
				// a gap pair.
				if e1.Inst.Op == ir.OpLandingPad && m.cur1 != m.cur2 {
					m.gapInst(1, e1.Inst)
					m.gapInst(2, e2.Inst)
					continue
				}
				m.matchInst(e1.Inst, e2.Inst)
			}
			m.stats.MatchedColumns++
		case align.OpGapA:
			e := m.seq1[s.I]
			if e.IsLabel() {
				m.gapLabel(1, e.Block)
			} else {
				m.gapInst(1, e.Inst)
			}
			m.stats.GapColumns++
		case align.OpGapB:
			e := m.seq2[s.J]
			if e.IsLabel() {
				m.gapLabel(2, e.Block)
			} else {
				m.gapInst(2, e.Inst)
			}
			m.stats.GapColumns++
		default:
			return fmt.Errorf("unexpected mismatch column after decomposition")
		}
	}
	return nil
}

func (m *merger) matchLabel(b1, b2 *ir.Block) {
	mb := ir.NewBlock(b1.Name())
	m.fn.AppendBlock(mb)
	m.sc.vmap1[b1] = mb
	m.sc.vmap2[b2] = mb
	m.cur1, m.cur2 = mb, mb
}

func (m *merger) matchInst(i1, i2 *ir.Inst) {
	if m.cur1 != m.cur2 {
		// Reconverge both sides into a fresh shared block.
		mb := ir.NewBlock("")
		m.fn.AppendBlock(mb)
		m.reconnect(m.cur1, mb)
		m.reconnect(m.cur2, mb)
		m.cur1, m.cur2 = mb, mb
	}
	mi := m.cloneShallow(i1)
	m.cur1.Append(mi)
	m.sc.vmap1[i1] = mi
	m.sc.vmap2[i2] = mi
	m.sc.cols = append(m.sc.cols, colRec{mi: mi, i1: i1, i2: i2})
}

// reconnect terminates b with a branch to mb if it is not yet terminated.
func (m *merger) reconnect(b, mb *ir.Block) {
	if b.Terminator() == nil {
		b.Append(ir.NewInst(ir.OpBr, ir.Void(), mb))
	}
}

func (m *merger) gapLabel(side int, b *ir.Block) {
	nb := ir.NewBlock(b.Name())
	m.fn.AppendBlock(nb)
	if side == 1 {
		m.sc.vmap1[b] = nb
		m.cur1 = nb
	} else {
		m.sc.vmap2[b] = nb
		m.cur2 = nb
	}
}

func (m *merger) gapInst(side int, in *ir.Inst) {
	if m.cur1 == m.cur2 {
		// Diverge: split the shared block with a func_id diamond.
		b1 := ir.NewBlock("")
		b2 := ir.NewBlock("")
		m.fn.AppendBlock(b1)
		m.fn.AppendBlock(b2)
		shared := m.cur1
		shared.Append(ir.NewInst(ir.OpBr, ir.Void(), m.funcID(), b1, b2))
		m.cur1, m.cur2 = b1, b2
	}
	mi := m.cloneShallow(in)
	if side == 1 {
		m.cur1.Append(mi)
		m.sc.vmap1[in] = mi
		m.sc.cols = append(m.sc.cols, colRec{mi: mi, i1: in})
	} else {
		m.cur2.Append(mi)
		m.sc.vmap2[in] = mi
		m.sc.cols = append(m.sc.cols, colRec{mi: mi, i2: in})
	}
}

// cloneShallow copies opcode, type, name and attributes without operands.
// Clones come from the scratch arena: most attempts are discarded, and the
// arena recycles their instruction storage wholesale (see mergerScratch).
func (m *merger) cloneShallow(in *ir.Inst) *ir.Inst {
	ni := m.sc.arena.NewInst(in.Op, in.Type())
	ni.SetName(in.Name())
	ni.Pred = in.Pred
	ni.Alloc = in.Alloc
	if in.Clauses != nil {
		ni.Clauses = append([]string(nil), in.Clauses...)
	}
	return ni
}

// resolve maps a source-function operand to its merged-function value.
func (m *merger) resolve(side int, v ir.Value) ir.Value {
	if v == nil {
		return nil
	}
	vm := m.sc.vmap1
	f := m.f1
	pm := m.plan.map1
	if side == 2 {
		vm = m.sc.vmap2
		f = m.f2
		pm = m.plan.map2
	}
	if mv, ok := vm[v]; ok {
		return mv
	}
	if p, ok := v.(*ir.Param); ok && p.Parent() == f {
		return m.fn.Params[pm[p.Index]]
	}
	return v
}

// passTwo assigns operands: shared values directly, diverging values through
// select instructions, diverging labels through dispatch blocks (§III-E).
func (m *merger) passTwo() error {
	for _, c := range m.sc.cols {
		switch {
		case c.i1 != nil && c.i2 != nil:
			if err := m.fillMatched(c); err != nil {
				return err
			}
		case c.i1 != nil:
			m.fillGap(c.mi, 1, c.i1)
		default:
			m.fillGap(c.mi, 2, c.i2)
		}
	}
	return nil
}

func (m *merger) fillGap(mi *ir.Inst, side int, src *ir.Inst) {
	for _, op := range src.Operands() {
		mi.AppendOperand(m.resolve(side, op))
	}
	m.fixupRet(mi)
}

// fixupRet reconciles a ret instruction with the merged return type.
func (m *merger) fixupRet(mi *ir.Inst) {
	if mi.Op != ir.OpRet || m.retTy.IsVoid() {
		return
	}
	blk := mi.Parent()
	if mi.NumOperands() == 0 {
		// Original function returned void; the merged value is discarded
		// at rewritten call sites.
		mi.AppendOperand(ir.NewUndef(m.retTy))
		return
	}
	v := mi.Operand(0)
	if v.Type() != m.retTy {
		mi.SetOperand(0, convertToRet(v, m.retTy, blk, mi))
	}
}

func (m *merger) fillMatched(c colRec) error {
	mi := c.mi
	ops1 := c.i1.Operands()
	ops2 := c.i2.Operands()
	n := len(ops1)

	r1 := make([]ir.Value, n)
	r2 := make([]ir.Value, n)
	for k := 0; k < n; k++ {
		r1[k] = m.resolve(1, ops1[k])
		r2[k] = m.resolve(2, ops2[k])
	}

	// Commutative operand reordering to maximise matching operands and
	// reduce select instructions (§III-E).
	if mi.Op.IsCommutative() && n == 2 {
		direct := sameCount(r1[0], r2[0]) + sameCount(r1[1], r2[1])
		swapped := sameCount(r1[0], r2[1]) + sameCount(r1[1], r2[0])
		if swapped > direct {
			r2[0], r2[1] = r2[1], r2[0]
		}
	}

	for k := 0; k < n; k++ {
		v1, v2 := r1[k], r2[k]
		if v1 == v2 || ir.ConstantsEqual(v1, v2) {
			mi.AppendOperand(v1)
			continue
		}
		b1, isB1 := v1.(*ir.Block)
		b2, isB2 := v2.(*ir.Block)
		if isB1 && isB2 {
			d, err := m.dispatchBlock(b1, b2)
			if err != nil {
				return err
			}
			mi.AppendOperand(d)
			continue
		}
		if isB1 != isB2 {
			return fmt.Errorf("label operand matched against value operand")
		}
		// Diverging values: select on func_id (§III-E).
		sel := ir.NewInst(ir.OpSelect, v1.Type(), m.funcID(), v1, v2)
		mi.Parent().InsertBefore(sel, mi)
		mi.AppendOperand(sel)
		m.stats.Selects++
	}
	m.fixupRet(mi)
	return nil
}

// sameCount returns 1 when the two resolved operands are interchangeable.
func sameCount(a, b ir.Value) int {
	if a == b || ir.ConstantsEqual(a, b) {
		return 1
	}
	return 0
}

// dispatchBlock returns a block that branches to b1 when func_id is true and
// to b2 otherwise, creating and memoizing it on first use. If b1 and b2 are
// landing blocks, their (identical) landingpad is hoisted into the dispatch
// block, which becomes the landing block; b1 and b2 become normal blocks
// (§III-E).
func (m *merger) dispatchBlock(b1, b2 *ir.Block) (*ir.Block, error) {
	key := [2]*ir.Block{b1, b2}
	if d, ok := m.sc.dispatch[key]; ok {
		return d, nil
	}
	landing1, landing2 := b1.IsLandingBlock(), b2.IsLandingBlock()
	d := ir.NewBlock("dispatch")
	m.fn.AppendBlock(d)
	if landing1 != landing2 {
		return nil, fmt.Errorf("unsupported exception shape: landing block dispatched with normal block")
	}
	if landing1 {
		pad1, pad2 := b1.Insts[0], b2.Insts[0]
		if !landingPadsIdentical(pad1, pad2) {
			return nil, fmt.Errorf("unsupported exception shape: dispatched landing blocks with differing pads")
		}
		hoisted := m.cloneShallow(pad1)
		d.Append(hoisted)
		ir.ReplaceAllUsesWith(pad1, hoisted)
		ir.ReplaceAllUsesWith(pad2, hoisted)
		// Future operand resolution must see the hoisted pad, not the
		// removed clones.
		for k, v := range m.sc.vmap1 {
			if v == pad1 || v == pad2 {
				m.sc.vmap1[k] = hoisted
			}
		}
		for k, v := range m.sc.vmap2 {
			if v == pad1 || v == pad2 {
				m.sc.vmap2[k] = hoisted
			}
		}
		pad1.RemoveFromParent()
		pad2.RemoveFromParent()
	}
	d.Append(ir.NewInst(ir.OpBr, ir.Void(), m.funcID(), b1, b2))
	m.sc.dispatch[key] = d
	m.stats.DispatchBlocks++
	return d, nil
}

// demoteNonDominated restores SSA validity after merging: a definition from
// one function's divergent region can reach a shared use over a path that
// bypasses it (the path of the other function). Such values are demoted to
// entry-block allocas — the moral equivalent of the reg2mem preprocessing
// the paper's implementation relies on. Demoted slots read as zero on paths
// that never stored, which is only observable in select arms that func_id
// discards.
func (m *merger) demoteNonDominated() {
	f := m.fn
	dt := ir.ComputeDomTree(f)
	var offenders []*ir.Inst
	f.Insts(func(in *ir.Inst) {
		if in.Type().IsVoid() || in.Type() == ir.Token() {
			return
		}
		if !dt.Reachable(in.Parent()) {
			return
		}
		for _, u := range in.Uses() {
			if u.User.Parent() == nil || !dt.Reachable(u.User.Parent()) {
				continue
			}
			if !dt.InstDominates(in, u.User, u.Index) {
				offenders = append(offenders, in)
				return
			}
		}
	})
	if len(offenders) == 0 {
		return
	}
	entryTerm := m.entry.Terminator()
	for _, def := range offenders {
		slot := ir.NewInst(ir.OpAlloca, ir.PointerTo(def.Type()))
		slot.Alloc = def.Type()
		m.entry.InsertBefore(slot, entryTerm)

		// Store the value right after its definition. Invokes define their
		// value only along the normal edge, so split that edge.
		if def.Op == ir.OpInvoke {
			normal := def.InvokeNormal()
			eb := ir.NewBlock("")
			f.AppendBlock(eb)
			eb.Append(ir.NewInst(ir.OpStore, ir.Void(), def, slot))
			eb.Append(ir.NewInst(ir.OpBr, ir.Void(), normal))
			def.SetOperand(def.NumOperands()-2, eb)
		} else {
			blk := def.Parent()
			idx := indexOf(blk, def)
			st := ir.NewInst(ir.OpStore, ir.Void(), def, slot)
			if idx+1 < len(blk.Insts) {
				blk.InsertBefore(st, blk.Insts[idx+1])
			} else {
				blk.Append(st)
			}
		}

		// Replace every other use with a load inserted before the user.
		uses := append([]ir.Use(nil), def.Uses()...)
		for _, u := range uses {
			if u.User.Op == ir.OpStore && u.User.Operand(1) == slot {
				continue
			}
			ld := ir.NewInst(ir.OpLoad, def.Type(), slot)
			u.User.Parent().InsertBefore(ld, u.User)
			u.User.SetOperand(u.Index, ld)
		}
	}
}

func indexOf(b *ir.Block, in *ir.Inst) int {
	for i, x := range b.Insts {
		if x == in {
			return i
		}
	}
	panic("core: instruction not in block")
}
