package core

import (
	"testing"

	"fmsa/internal/align"
	"fmsa/internal/interp"
	"fmsa/internal/ir"
	"fmsa/internal/linearize"
)

// TestInvokeCallerRewriteWithConversion exercises the edge-split path of
// rewriteCall: an invoke call site of a merged function whose return type
// widened to the i64 container.
func TestInvokeCallerRewriteWithConversion(t *testing.T) {
	src := `
declare void @throw()
declare void @log(i64)

define internal i32 @geti(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define internal f64 @getf(f64 %x) {
entry:
  %r = fadd f64 %x, 1.0
  ret f64 %r
}

define i32 @viainvoke(i32 %x) {
entry:
  %r = invoke i32 @geti(i32 %x) to label %ok unwind label %lpad
ok:
  %r2 = add i32 %r, 100
  ret i32 %r2
lpad:
  %lp = landingpad cleanup
  ret i32 -1
}

define f64 @viacall(f64 %x) {
entry:
  %r = call f64 @getf(f64 %x)
  ret f64 %r
}
`
	m := ir.MustParseModule("ehconv", src)
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	res, err := Merge(m.FuncByName("geti"), m.FuncByName("getf"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.ReturnType() != ir.I64() {
		t.Fatalf("merged ret = %s, want i64", res.Merged.ReturnType())
	}
	res.Commit()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
	}

	mc := interp.NewMachine(m)
	mc.Register("throw", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, nil
	})
	mc.Register("log", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, nil
	})
	got, err := mc.Run("viainvoke", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 106 {
		t.Errorf("viainvoke(5) = %d, want 106", got)
	}
	gotf, err := mc.Run("viacall", interp.F64(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if interp.ToF64(gotf) != 2.5 {
		t.Errorf("viacall(1.5) = %v, want 2.5", interp.ToF64(gotf))
	}
}

// TestLandingDispatchHoisting merges two functions whose matched invokes
// unwind to landing blocks that end up in different merged blocks: the
// merger must hoist the landingpad into a dispatch block (§III-E).
func TestLandingDispatchHoisting(t *testing.T) {
	// The two functions differ in their landing-block bodies, so the
	// landing labels cannot merge, but the invokes match — forcing the
	// label-dispatch path for the unwind operand.
	src := `
declare void @throw()
declare void @logA(i64)
declare void @logB(i64)

define internal i64 @handlerA(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = add i64 %x, 1
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @logA(i64 %x)
  call void @logA(i64 %x)
  call void @logA(i64 %x)
  ret i64 -1
}

define internal i64 @handlerB(i64 %x) {
entry:
  invoke void @throw() to label %ok unwind label %lpad
ok:
  %r = add i64 %x, 1
  ret i64 %r
lpad:
  %lp = landingpad cleanup
  call void @logB(i64 %x)
  ret i64 -2
}

define i64 @useA(i64 %x) {
entry:
  %r = call i64 @handlerA(i64 %x)
  ret i64 %r
}

define i64 @useB(i64 %x) {
entry:
  %r = call i64 @handlerB(i64 %x)
  ret i64 %r
}
`
	m := ir.MustParseModule("lpdisp", src)
	res, err := Merge(m.FuncByName("handlerA"), m.FuncByName("handlerB"), DefaultOptions())
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	res.Commit()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
	}

	for _, throwing := range []bool{false, true} {
		mc := interp.NewMachine(m)
		var loggedA, loggedB int
		mc.Register("throw", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
			if throwing {
				return 0, interp.ErrUnwind
			}
			return 0, nil
		})
		mc.Register("logA", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
			loggedA++
			return 0, nil
		})
		mc.Register("logB", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
			loggedB++
			return 0, nil
		})
		ra, err := mc.Run("useA", 10)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := mc.Run("useB", 10)
		if err != nil {
			t.Fatal(err)
		}
		if throwing {
			if int64(ra) != -1 || int64(rb) != -2 {
				t.Errorf("throwing: got (%d, %d), want (-1, -2)", int64(ra), int64(rb))
			}
			if loggedA != 3 || loggedB != 1 {
				t.Errorf("throwing: logA=%d logB=%d, want 3/1", loggedA, loggedB)
			}
		} else {
			if ra != 11 || rb != 11 {
				t.Errorf("normal: got (%d, %d), want (11, 11)", ra, rb)
			}
			if loggedA != 0 || loggedB != 0 {
				t.Error("normal path must not log")
			}
		}
	}
}

// TestNormalizePadsDegenerateAlignment forces a co-optimal alignment that
// matches the landing labels but gaps the two (identical) landingpads —
// without normalization, code generation would put a func_id branch ahead
// of the pad in the shared landing block.
func TestNormalizePadsDegenerateAlignment(t *testing.T) {
	m := ir.MustParseModule("np", ehPairIR)
	f1 := m.FuncByName("guard_add")
	f2 := m.FuncByName("guard_mul")

	opts := DefaultOptions()
	opts.AlignCoded = nil // the degenerate closure aligner below must run
	opts.Align = func(n, mm int, eq align.EqFunc, sc align.Scoring) []align.Step {
		steps := align.Align(n, mm, eq, sc)
		// Degenerate rewrite: split every matched landingpad column into
		// a gap pair.
		seq1 := linearize.Linearize(f1)
		var out []align.Step
		for _, s := range steps {
			if s.Op == align.OpMatch && !seq1[s.I].IsLabel() &&
				seq1[s.I].Inst.Op == ir.OpLandingPad {
				out = append(out,
					align.Step{Op: align.OpGapA, I: s.I, J: -1},
					align.Step{Op: align.OpGapB, I: -1, J: s.J})
				continue
			}
			out = append(out, s)
		}
		return out
	}

	res, err := Merge(f1, f2, opts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	res.Commit()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify (pad normalization failed): %v\n%s", err, ir.FormatModule(m))
	}
	mc := interp.NewMachine(m)
	mc.Register("throw", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, interp.ErrUnwind
	})
	mc.Register("log", func(_ *interp.Machine, args []interp.Word) (interp.Word, error) {
		return 0, nil
	})
	got, err := mc.Run("use_ga", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("use_ga under unwind = %d, want 0", got)
	}
}

// TestMergeSwitchTerminators merges functions whose matched switch
// terminators branch to different labels, exercising dispatch blocks on
// switch operands.
func TestMergeSwitchTerminators(t *testing.T) {
	src := `
define internal i64 @swA(i64 %x) {
entry:
  %t = trunc i64 %x to i32
  switch i32 %t, label %def [ i32 1, label %one i32 2, label %two ]
one:
  %a = mul i64 %x, 10
  ret i64 %a
two:
  %b = mul i64 %x, 20
  ret i64 %b
def:
  ret i64 0
}

define internal i64 @swB(i64 %x) {
entry:
  %t = trunc i64 %x to i32
  switch i32 %t, label %def [ i32 1, label %one i32 2, label %two ]
one:
  %a = mul i64 %x, 11
  ret i64 %a
two:
  %b = mul i64 %x, 22
  ret i64 %b
def:
  ret i64 1
}

define i64 @driveA(i64 %x) {
entry:
  %r = call i64 @swA(i64 %x)
  ret i64 %r
}

define i64 @driveB(i64 %x) {
entry:
  %r = call i64 @swB(i64 %x)
  ret i64 %r
}
`
	m := ir.MustParseModule("sw", src)
	res, err := Merge(m.FuncByName("swA"), m.FuncByName("swB"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("post-verify: %v\n%s", err, ir.FormatModule(m))
	}
	mc := interp.NewMachine(m)
	cases := []struct {
		fn       string
		in, want uint64
	}{
		{"driveA", 1, 10}, {"driveA", 2, 40}, {"driveA", 7, 0},
		{"driveB", 1, 11}, {"driveB", 2, 44}, {"driveB", 7, 1},
	}
	for _, c := range cases {
		got, err := mc.Run(c.fn, c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s(%d) = %d, want %d", c.fn, c.in, got, c.want)
		}
	}
}
