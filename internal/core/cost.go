package core

import (
	"fmsa/internal/ir"
	"fmsa/internal/tti"
)

// CallerStats is a snapshot of the caller-facing state of a function: how
// many direct call sites it has and whether its address escapes. The cost
// model only depends on these two numbers, so concurrent speculative merge
// attempts snapshot them once, before any attempt runs, instead of reading
// live use lists that other attempts are transiently growing and shrinking.
// That keeps Profit deterministic regardless of how many parallel attempts
// are in flight.
type CallerStats struct {
	// Callers counts direct call/invoke sites of the function.
	Callers int
	// AddressTaken reports whether the function's address escapes.
	AddressTaken bool
}

// SnapshotCallerStats captures f's caller statistics. Call it only while no
// concurrent merge attempt involving f's module is running (e.g. before
// fanning out a speculative evaluation wave).
func SnapshotCallerStats(f *ir.Func) CallerStats {
	return CallerStats{Callers: len(f.Callers()), AddressTaken: f.HasAddressTaken()}
}

// Profit evaluates the §IV-A cost model for a (not yet committed) merge:
//
//	Δ({f1,f2}, f1,2) = (c(f1) + c(f2)) − (c(f1,2) + ε)
//
// where c is the target-specific code-size cost and ε accumulates the extra
// costs δ(fk, f1,2) of keeping thunks or widening rewritten call sites. The
// merge is profitable when the returned Δ is positive.
func (r *Result) Profit(t tti.Target) int {
	return r.ProfitWithStats(t, SnapshotCallerStats(r.F1), SnapshotCallerStats(r.F2))
}

// ProfitWithStats evaluates the cost model against pre-captured caller
// snapshots instead of the live use lists, making the result independent of
// concurrent speculative merges (see CallerStats).
func (r *Result) ProfitWithStats(t tti.Target, s1, s2 CallerStats) int {
	return r.ProfitWithStatsMemo(t, s1, s2, nil)
}

// ProfitWithStatsMemo is ProfitWithStats with the input-function size terms
// served from a cost memo (nil computes directly). The merged function is
// always sized directly — it is unique to this attempt, so memoizing it
// would only grow the memo. The result is identical to ProfitWithStats.
func (r *Result) ProfitWithStatsMemo(t tti.Target, s1, s2 CallerStats, costs *tti.CostMemo) int {
	before := costs.FuncSize(t, r.F1) + costs.FuncSize(t, r.F2)
	after := tti.FuncSize(t, r.Merged)
	eps := r.delta(t, r.F1, s1) + r.delta(t, r.F2, s2)
	return before - (after + eps)
}

// delta estimates δ(f, merged): the residual cost of redirecting f's callers
// to the merged function. If f can be deleted outright, the cost is the
// per-call-site growth from the widened argument list; otherwise it is the
// size of the thunk that must remain.
func (r *Result) delta(t tti.Target, f *ir.Func, s CallerStats) int {
	callSiteGrowth := r.callGrowth(t, f, s.Callers)
	if f.Linkage == ir.InternalLinkage && !s.AddressTaken {
		return callSiteGrowth
	}
	return r.thunkCost(t, f) + callSiteGrowth
}

// callGrowth estimates the summed per-call-site size increase when calls to
// f are rewritten to call the merged function.
func (r *Result) callGrowth(t tti.Target, f *ir.Func, callers int) int {
	if callers == 0 {
		return 0
	}
	oldCall := syntheticCall(f)
	newCall := syntheticCall(r.Merged)
	growth := t.InstSize(newCall) - t.InstSize(oldCall)
	oldCall.Detach()
	newCall.Detach()
	if growth < 0 {
		growth = 0
	}
	return growth * callers
}

// thunkCost estimates the size of the forwarding thunk left behind for f.
func (r *Result) thunkCost(t tti.Target, f *ir.Func) int {
	call := syntheticCall(r.Merged)
	cost := t.FuncOverhead() + t.InstSize(call)
	call.Detach()
	ret := ir.NewInst(ir.OpRet, ir.Void())
	cost += t.InstSize(ret)
	if f.ReturnType() != r.Merged.ReturnType() && !f.ReturnType().IsVoid() {
		// Unwrap conversion, roughly one cast.
		cast := ir.NewInst(ir.OpBitCast, f.ReturnType())
		cost += t.InstSize(cast)
	}
	return cost
}

// syntheticCall builds a detached call instruction with the right arity for
// size estimation. Callers must Detach it afterwards to release the use of
// callee.
func syntheticCall(callee *ir.Func) *ir.Inst {
	sig := callee.Sig()
	ops := make([]ir.Value, 0, len(sig.Fields)+1)
	ops = append(ops, callee)
	for _, pt := range sig.Fields {
		ops = append(ops, ir.NewUndef(pt))
	}
	return ir.NewInst(ir.OpCall, sig.Ret, ops...)
}
