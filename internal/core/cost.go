package core

import (
	"fmsa/internal/ir"
	"fmsa/internal/tti"
)

// Profit evaluates the §IV-A cost model for a (not yet committed) merge:
//
//	Δ({f1,f2}, f1,2) = (c(f1) + c(f2)) − (c(f1,2) + ε)
//
// where c is the target-specific code-size cost and ε accumulates the extra
// costs δ(fk, f1,2) of keeping thunks or widening rewritten call sites. The
// merge is profitable when the returned Δ is positive.
func (r *Result) Profit(t tti.Target) int {
	before := tti.FuncSize(t, r.F1) + tti.FuncSize(t, r.F2)
	after := tti.FuncSize(t, r.Merged)
	eps := r.delta(t, r.F1, true, r.ParamMap1) + r.delta(t, r.F2, false, r.ParamMap2)
	return before - (after + eps)
}

// delta estimates δ(f, merged): the residual cost of redirecting f's callers
// to the merged function. If f can be deleted outright, the cost is the
// per-call-site growth from the widened argument list; otherwise it is the
// size of the thunk that must remain.
func (r *Result) delta(t tti.Target, f *ir.Func, id bool, pmap []int) int {
	callSiteGrowth := r.callGrowth(t, f, id, pmap)
	if f.Linkage == ir.InternalLinkage && !f.HasAddressTaken() {
		return callSiteGrowth
	}
	return r.thunkCost(t, f, id, pmap) + callSiteGrowth
}

// callGrowth estimates the summed per-call-site size increase when calls to
// f are rewritten to call the merged function.
func (r *Result) callGrowth(t tti.Target, f *ir.Func, id bool, pmap []int) int {
	callers := f.Callers()
	if len(callers) == 0 {
		return 0
	}
	oldCall := syntheticCall(f)
	newCall := syntheticCall(r.Merged)
	growth := t.InstSize(newCall) - t.InstSize(oldCall)
	oldCall.Detach()
	newCall.Detach()
	if growth < 0 {
		growth = 0
	}
	return growth * len(callers)
}

// thunkCost estimates the size of the forwarding thunk left behind for f.
func (r *Result) thunkCost(t tti.Target, f *ir.Func, id bool, pmap []int) int {
	call := syntheticCall(r.Merged)
	cost := t.FuncOverhead() + t.InstSize(call)
	call.Detach()
	ret := ir.NewInst(ir.OpRet, ir.Void())
	cost += t.InstSize(ret)
	if f.ReturnType() != r.Merged.ReturnType() && !f.ReturnType().IsVoid() {
		// Unwrap conversion, roughly one cast.
		cast := ir.NewInst(ir.OpBitCast, f.ReturnType())
		cost += t.InstSize(cast)
	}
	return cost
}

// syntheticCall builds a detached call instruction with the right arity for
// size estimation. Callers must Detach it afterwards to release the use of
// callee.
func syntheticCall(callee *ir.Func) *ir.Inst {
	sig := callee.Sig()
	ops := make([]ir.Value, 0, len(sig.Fields)+1)
	ops = append(ops, callee)
	for _, pt := range sig.Fields {
		ops = append(ops, ir.NewUndef(pt))
	}
	return ir.NewInst(ir.OpCall, sig.Ret, ops...)
}
